// Benchmarks for the semantic certification layer: how much does the
// abstract-interpretation pass cost on top of the syntactic checks, and how
// does it scale with program size and EDB size?

#include <string>

#include "analysis/absint/engine.h"
#include "analysis/checker.h"
#include "analysis/dependency_graph.h"
#include "bench_common.h"
#include "datalog/parser.h"
#include "util/string_util.h"

namespace {

using namespace mad;

// The flagship semantically-certified program: a `C1 >= 0` guard that
// Definition 4.5 rejects but the interval fixpoint discharges.
std::string GuardedShortestPath(int arcs) {
  std::string text =
      ".decl arc(from, to, c: min_real)\n"
      ".decl path(from, mid, to, c: min_real)\n"
      ".decl s(from, to, c: min_real)\n"
      ".constraint arc(direct, Z, C).\n"
      "path(X, direct, Y, C) :- arc(X, Y, C).\n"
      "path(X, Z, Y, C) :- s(X, Z, C1), C1 >= 0, arc(Z, Y, C2), "
      "C = C1 + C2.\n"
      "s(X, Y, C) :- C =r min D : path(X, Z, Y, D).\n";
  for (int i = 0; i < arcs; ++i) {
    text += StrPrintf("arc(n%d, n%d, %d).\n", i, (i + 1) % arcs, (i * 7) % 11);
  }
  return text;
}

// A selective max-flow program: syntactically admissible, bounded chains.
std::string AlarmLevels(int nodes) {
  std::string text =
      ".decl node(x)\n"
      ".decl edge(x, y)\n"
      ".decl sensor(x, c: max_real)\n"
      ".decl level(x, c: max_real) default\n"
      ".constraint sensor(X, C), node(X).\n"
      "level(X, C) :- sensor(X, C).\n"
      "level(Y, C) :- node(Y), C =r max D : (edge(X, Y), level(X, D)).\n";
  for (int i = 0; i < nodes; ++i) {
    text += StrPrintf("node(n%d).\n", i);
    text += StrPrintf("edge(n%d, n%d).\n", i, (i + 1) % nodes);
    if (i % 3 == 0) text += StrPrintf("sensor(n%d, %d).\n", i, i % 13);
  }
  return text;
}

void BM_Certify(benchmark::State& state, const std::string& text) {
  auto parsed = datalog::ParseProgram(text);
  if (!parsed.ok()) {
    state.SkipWithError("parse failed");
    return;
  }
  analysis::DependencyGraph graph(*parsed);
  for (auto _ : state) {
    analysis::absint::CertificateReport report =
        analysis::absint::CertifyProgram(*parsed, graph);
    benchmark::DoNotOptimize(report);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(text.size()));
}

void BM_CertifyGuarded(benchmark::State& state) {
  BM_Certify(state, GuardedShortestPath(static_cast<int>(state.range(0))));
}
BENCHMARK(BM_CertifyGuarded)->RangeMultiplier(4)->Range(16, 1024);

void BM_CertifyAlarm(benchmark::State& state) {
  BM_Certify(state, AlarmLevels(static_cast<int>(state.range(0))));
}
BENCHMARK(BM_CertifyAlarm)->RangeMultiplier(4)->Range(16, 1024);

// Full CheckProgram (syntactic passes + certification + termination), the
// path every Engine::Run pays.
void BM_CheckProgramEndToEnd(benchmark::State& state) {
  std::string text = GuardedShortestPath(static_cast<int>(state.range(0)));
  auto parsed = datalog::ParseProgram(text);
  if (!parsed.ok()) {
    state.SkipWithError("parse failed");
    return;
  }
  analysis::DependencyGraph graph(*parsed);
  for (auto _ : state) {
    analysis::ProgramCheckResult check =
        analysis::CheckProgram(*parsed, graph);
    benchmark::DoNotOptimize(check);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(text.size()));
}
BENCHMARK(BM_CheckProgramEndToEnd)->RangeMultiplier(4)->Range(16, 1024);

}  // namespace

int main(int argc, char** argv) {
  return mad::bench::RunBenchmarks(argc, argv);
}
