// Experiment S2/S4 (static checks): throughput of the parser and of every
// static analysis (range restriction, cost-respecting FD inference,
// conflict-freedom with containment mappings, admissibility) on the paper's
// programs. These are compile-time costs a deployment pays once per program.

#include <benchmark/benchmark.h>

#include <iostream>

#include "analysis/checker.h"
#include "bench_common.h"
#include "util/table_printer.h"

namespace {

using namespace mad;
using bench::CachedProgram;

struct NamedProgram {
  const char* name;
  const char* text;
};

const NamedProgram kPrograms[] = {
    {"shortest_path", workloads::kShortestPathProgram},
    {"company_control", workloads::kCompanyControlProgram},
    {"party", workloads::kPartyProgram},
    {"circuit", workloads::kCircuitProgram},
    {"halfsum", workloads::kHalfsumProgram},
};

void PrintVerdictTable() {
  std::cout << "=== S2/S4: static analysis verdicts for the paper's "
               "programs ===\n";
  TablePrinter table({"program", "range-restricted", "cost-respecting",
                      "conflict-free", "admissible", "components"});
  for (const NamedProgram& np : kPrograms) {
    const datalog::Program& program = CachedProgram(np.text);
    analysis::DependencyGraph graph(program);
    auto result = analysis::CheckProgram(program, graph);
    table.AddRow({np.name, result.range_restricted.ok() ? "yes" : "NO",
                  result.cost_respecting.ok() ? "yes" : "NO",
                  result.conflict_free.ok() ? "yes" : "NO",
                  result.admissible.ok() ? "yes" : "NO",
                  std::to_string(result.components.size())});
  }
  table.Print(std::cout);
  std::cout << "\n";
}

void BM_Parse(benchmark::State& state) {
  const NamedProgram& np = kPrograms[state.range(0)];
  for (auto _ : state) {
    auto p = datalog::ParseProgram(np.text);
    benchmark::DoNotOptimize(p);
  }
  state.SetLabel(np.name);
}
BENCHMARK(BM_Parse)->DenseRange(0, 4);

void BM_FullCheck(benchmark::State& state) {
  const NamedProgram& np = kPrograms[state.range(0)];
  const datalog::Program& program = CachedProgram(np.text);
  for (auto _ : state) {
    analysis::DependencyGraph graph(program);
    auto result = analysis::CheckProgram(program, graph);
    benchmark::DoNotOptimize(result);
  }
  state.SetLabel(np.name);
}
BENCHMARK(BM_FullCheck)->DenseRange(0, 4);

void BM_ParseManyFacts(benchmark::State& state) {
  // Parser throughput on bulk EDB text (facts/second).
  int n = static_cast<int>(state.range(0));
  std::string text = ".decl arc(x, y, c: min_real)\n";
  for (int i = 0; i < n; ++i) {
    text += "arc(n" + std::to_string(i) + ", n" + std::to_string(i + 1) +
            ", 1.5).\n";
  }
  for (auto _ : state) {
    auto p = datalog::ParseProgram(text);
    benchmark::DoNotOptimize(p);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ParseManyFacts)->Arg(1000)->Arg(10000)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  PrintVerdictTable();
  return mad::bench::RunBenchmarks(argc, argv);
}
