// Experiment E4.4: circuit evaluation with default values and the
// pseudo-monotonic AND aggregate, on feed-forward and cyclic circuits.
// Expected shape: the direct simulator wins by a constant factor; cyclic
// feedback raises iteration counts for both; results always agree.

#include <benchmark/benchmark.h>

#include <chrono>
#include <iostream>

#include "baselines/circuit_sim.h"
#include "bench_common.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace {

using namespace mad;
using baselines::Circuit;
using bench::CachedProgram;
using bench::RunProgram;

Circuit MakeCircuit(int gates, double feedback, uint64_t seed) {
  Random rng(seed);
  return workloads::RandomCircuit(16, gates, 4, feedback, &rng);
}

void PrintComparisonTable() {
  std::cout << "=== E4.4: circuit evaluation — engine vs direct simulator "
               "===\n";
  TablePrinter table({"gates", "feedback", "engine (ms)", "simulator (ms)",
                      "wires high", "engine iters"});
  const datalog::Program& program =
      CachedProgram(workloads::kCircuitProgram);
  for (int gates : {100, 400, 1600}) {
    for (double feedback : {0.0, 0.3}) {
      Circuit c = MakeCircuit(gates, feedback, 29);
      datalog::Database edb;
      (void)workloads::AddCircuitFacts(program, c, &edb);
      auto engine_result =
          RunProgram(program, edb, core::Strategy::kSemiNaive);

      auto t0 = std::chrono::steady_clock::now();
      auto direct = baselines::SimulateCircuit(c);
      double direct_ms = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - t0)
                             .count();
      int high = 0;
      for (bool b : direct.wire_values) high += b ? 1 : 0;

      table.AddRow(
          {std::to_string(gates), StrPrintf("%.1f", feedback),
           StrPrintf("%.2f", engine_result.stats.wall_seconds * 1e3),
           StrPrintf("%.3f", direct_ms), std::to_string(high),
           std::to_string(engine_result.stats.iterations)});
    }
  }
  table.Print(std::cout);
  std::cout << "\n";
}

void BM_Engine(benchmark::State& state) {
  int gates = static_cast<int>(state.range(0));
  double feedback = state.range(1) / 10.0;
  Circuit c = MakeCircuit(gates, feedback, 29);
  const datalog::Program& program =
      CachedProgram(workloads::kCircuitProgram);
  datalog::Database edb;
  (void)workloads::AddCircuitFacts(program, c, &edb);
  for (auto _ : state) {
    auto result = RunProgram(program, edb, core::Strategy::kSemiNaive);
    benchmark::DoNotOptimize(result);
  }
}

void BM_Simulator(benchmark::State& state) {
  int gates = static_cast<int>(state.range(0));
  double feedback = state.range(1) / 10.0;
  Circuit c = MakeCircuit(gates, feedback, 29);
  for (auto _ : state) {
    auto result = baselines::SimulateCircuit(c);
    benchmark::DoNotOptimize(result);
  }
}

void RegisterAll() {
  for (int gates : {100, 400, 1600}) {
    for (int fb : {0, 3}) {
      benchmark::RegisterBenchmark(
          StrPrintf("BM_Circuit/engine/g%d/fb0.%d", gates, fb).c_str(),
          BM_Engine)
          ->Args({gates, fb})
          ->Unit(benchmark::kMillisecond);
      benchmark::RegisterBenchmark(
          StrPrintf("BM_Circuit/simulator/g%d/fb0.%d", gates, fb).c_str(),
          BM_Simulator)
          ->Args({gates, fb})
          ->Unit(benchmark::kMillisecond);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  PrintComparisonTable();
  RegisterAll();
  return mad::bench::RunBenchmarks(argc, argv);
}
