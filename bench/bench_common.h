#ifndef MAD_BENCH_BENCH_COMMON_H_
#define MAD_BENCH_BENCH_COMMON_H_

// Shared helpers for the experiment benchmarks: build an EDB for a workload
// and run the engine with a given strategy, returning the stats.

#include <cstdio>
#include <cstdlib>
#include <memory>

#include "core/engine.h"
#include "workloads/generators.h"
#include "workloads/programs.h"
#include "workloads/to_datalog.h"

namespace mad {
namespace bench {

/// A parsed canonical program reused across benchmark iterations.
inline const datalog::Program& CachedProgram(const char* text) {
  static std::map<const char*, std::unique_ptr<datalog::Program>>* cache =
      new std::map<const char*, std::unique_ptr<datalog::Program>>();
  auto it = cache->find(text);
  if (it == cache->end()) {
    auto parsed = datalog::ParseProgram(text);
    if (!parsed.ok()) {
      std::fprintf(stderr, "bench: parse failed: %s\n",
                   parsed.status().ToString().c_str());
      std::abort();
    }
    it = cache
             ->emplace(text, std::make_unique<datalog::Program>(
                                 std::move(parsed).value()))
             .first;
  }
  return *it->second;
}

/// Runs `program` on a clone of `edb`; asserts success; returns the result.
inline core::EvalResult RunProgram(const datalog::Program& program,
                                   const datalog::Database& edb,
                                   core::Strategy strategy) {
  core::EvalOptions options;
  options.strategy = strategy;
  core::Engine engine(program, options);
  auto result = engine.Run(edb.Clone());
  if (!result.ok()) {
    std::fprintf(stderr, "bench: evaluation failed: %s\n",
                 result.status().ToString().c_str());
    std::abort();
  }
  return std::move(result).value();
}

}  // namespace bench
}  // namespace mad

#endif  // MAD_BENCH_BENCH_COMMON_H_
