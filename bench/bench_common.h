#ifndef MAD_BENCH_BENCH_COMMON_H_
#define MAD_BENCH_BENCH_COMMON_H_

// Shared helpers for the experiment benchmarks: build an EDB for a workload
// and run the engine with a given strategy, returning the stats.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "benchmark/benchmark.h"
#include "core/engine.h"
#include "util/string_util.h"
#include "workloads/generators.h"
#include "workloads/programs.h"
#include "workloads/to_datalog.h"

namespace mad {
namespace bench {

/// A parsed canonical program reused across benchmark iterations.
inline const datalog::Program& CachedProgram(const char* text) {
  static std::map<const char*, std::unique_ptr<datalog::Program>>* cache =
      new std::map<const char*, std::unique_ptr<datalog::Program>>();
  auto it = cache->find(text);
  if (it == cache->end()) {
    auto parsed = datalog::ParseProgram(text);
    if (!parsed.ok()) {
      std::fprintf(stderr, "bench: parse failed: %s\n",
                   parsed.status().ToString().c_str());
      std::abort();
    }
    it = cache
             ->emplace(text, std::make_unique<datalog::Program>(
                                 std::move(parsed).value()))
             .first;
  }
  return *it->second;
}

/// Runs `program` on a clone of `edb`; asserts success; returns the result.
inline core::EvalResult RunProgram(const datalog::Program& program,
                                   const datalog::Database& edb,
                                   core::Strategy strategy) {
  core::EvalOptions options;
  options.strategy = strategy;
  core::Engine engine(program, options);
  auto result = engine.Run(edb.Clone());
  if (!result.ok()) {
    std::fprintf(stderr, "bench: evaluation failed: %s\n",
                 result.status().ToString().c_str());
    std::abort();
  }
  return std::move(result).value();
}

// ---------------------------------------------------------------------------
// Machine-readable results: every bench binary also writes BENCH_<name>.json
// next to the working directory — one record per benchmark run with the op
// name, wall time per iteration in nanoseconds, the iteration count, the
// bytes processed (0 when the benchmark does not set SetBytesProcessed), and
// the evaluation thread count (the "num_threads" counter, 1 when unset).
// Thread-sweep benchmarks name their runs ".../t<threads>"; for those the
// sidecar also records speedup_vs_1t — the single-thread sibling's wall time
// divided by this run's, so scaling curves survive into the archived JSON.
// ---------------------------------------------------------------------------

/// Console output as usual, plus a JSON sidecar of the per-run numbers.
class JsonSidecarReporter : public benchmark::ConsoleReporter {
 public:
  explicit JsonSidecarReporter(std::string path) : path_(std::move(path)) {}

  void ReportRuns(const std::vector<Run>& reports) override {
    benchmark::ConsoleReporter::ReportRuns(reports);
    for (const Run& run : reports) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred) continue;
      Record rec;
      rec.name = run.benchmark_name();
      rec.iterations = static_cast<long long>(run.iterations);
      double per_iter = run.iterations > 0
                            ? run.real_accumulated_time /
                                  static_cast<double>(run.iterations)
                            : run.real_accumulated_time;
      rec.wall_ns = per_iter * 1e9;
      auto it = run.counters.find("bytes_per_second");
      if (it != run.counters.end()) {
        rec.bytes = static_cast<long long>(it->second.value * per_iter *
                                           static_cast<double>(run.iterations));
      }
      auto threads = run.counters.find("num_threads");
      if (threads != run.counters.end()) {
        rec.num_threads = static_cast<int>(threads->second.value);
      }
      // Latency distribution, for closed-loop request benchmarks that
      // record per-op samples (bench_server): surfaced via the p50_ns /
      // p95_ns / p99_ns counters and passed through to the sidecar.
      auto p50 = run.counters.find("p50_ns");
      if (p50 != run.counters.end()) rec.p50_ns = p50->second.value;
      auto p95 = run.counters.find("p95_ns");
      if (p95 != run.counters.end()) rec.p95_ns = p95->second.value;
      auto p99 = run.counters.find("p99_ns");
      if (p99 != run.counters.end()) rec.p99_ns = p99->second.value;
      // Replication fan-out, for replica-sweep benchmarks
      // (bench_replication): omitted from the sidecar when unset.
      auto replicas = run.counters.find("num_replicas");
      if (replicas != run.counters.end()) {
        rec.num_replicas = static_cast<int>(replicas->second.value);
      }
      records_.push_back(std::move(rec));
    }
  }

  void Finalize() override {
    benchmark::ConsoleReporter::Finalize();
    std::ofstream out(path_);
    if (!out) {
      std::fprintf(stderr, "bench: cannot write %s\n", path_.c_str());
      return;
    }
    // Single-thread baselines for speedup: runs of the same benchmark that
    // differ only in their trailing /t<threads> component share a base name.
    std::map<std::string, double> wall_1t;
    for (const Record& r : records_) {
      if (r.num_threads == 1) wall_1t[BaseName(r.name)] = r.wall_ns;
    }
    out << "{\n  \"benchmarks\": [\n";
    for (size_t i = 0; i < records_.size(); ++i) {
      const Record& r = records_[i];
      out << "    {\"name\": \"" << Escape(r.name) << "\", \"wall_ns\": "
          << StrPrintf("%.1f", r.wall_ns) << ", \"iterations\": "
          << r.iterations << ", \"bytes\": " << r.bytes
          << ", \"num_threads\": " << r.num_threads;
      auto base = wall_1t.find(BaseName(r.name));
      if (base != wall_1t.end() && r.wall_ns > 0) {
        out << StrPrintf(", \"speedup_vs_1t\": %.3f",
                         base->second / r.wall_ns);
      }
      if (r.p50_ns >= 0) {
        out << StrPrintf(
            ", \"p50_ns\": %.1f, \"p95_ns\": %.1f, \"p99_ns\": %.1f",
            r.p50_ns, r.p95_ns, r.p99_ns);
      }
      if (r.num_replicas >= 0) {
        out << ", \"num_replicas\": " << r.num_replicas;
      }
      out << "}" << (i + 1 < records_.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
  }

 private:
  struct Record {
    std::string name;
    double wall_ns = 0;
    long long iterations = 0;
    long long bytes = 0;
    int num_threads = 1;
    /// Per-op latency percentiles; negative = not recorded (field omitted,
    /// so existing sidecar consumers are unaffected).
    double p50_ns = -1;
    double p95_ns = -1;
    double p99_ns = -1;
    /// Replica fan-out for replication benchmarks; negative = not recorded.
    int num_replicas = -1;
  };

  /// Strips a trailing "/t<digits>" thread-count component, if present.
  static std::string BaseName(const std::string& name) {
    size_t slash = name.find_last_of('/');
    if (slash == std::string::npos) return name;
    const std::string tail = name.substr(slash + 1);
    if (tail.size() >= 2 && tail[0] == 't' &&
        tail.find_first_not_of("0123456789", 1) == std::string::npos) {
      return name.substr(0, slash);
    }
    return name;
  }

  static std::string Escape(const std::string& s) {
    std::string out;
    for (char c : s) {
      if (c == '"' || c == '\\') out.push_back('\\');
      out.push_back(c);
    }
    return out;
  }

  std::string path_;
  std::vector<Record> records_;
};

/// Initialize + run with the JSON sidecar; call from main() after any table
/// printing. The sidecar is BENCH_<basename of argv[0]>.json in the cwd.
inline int RunBenchmarks(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  std::string name = argv[0];
  size_t slash = name.find_last_of('/');
  if (slash != std::string::npos) name = name.substr(slash + 1);
  JsonSidecarReporter reporter("BENCH_" + name + ".json");
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  return 0;
}

}  // namespace bench
}  // namespace mad

#endif  // MAD_BENCH_BENCH_COMMON_H_
