// Experiment E2.7: company control (recursion through sum). The engine's
// declarative evaluation against the hand-written direct fixpoint, plus the
// Section 5.2 r-monotonic rewrite. Expected shape: the direct solver wins by
// a constant factor; both scale together; the rewrite (which skips
// materializing m) is slightly cheaper than the original program.

#include <benchmark/benchmark.h>

#include <chrono>
#include <iostream>

#include "baselines/company_control.h"
#include "bench_common.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace {

using namespace mad;
using baselines::OwnershipNetwork;
using bench::CachedProgram;
using bench::RunProgram;

OwnershipNetwork MakeNetwork(int n, uint64_t seed) {
  Random rng(seed);
  return workloads::RandomOwnership(n, 4, 0.4, &rng);
}

void PrintComparisonTable() {
  std::cout << "=== E2.7: company control — engine vs direct solver ===\n";
  TablePrinter table({"companies", "engine (ms)", "rewrite (ms)",
                      "direct (ms)", "control pairs", "iterations"});
  for (int n : {20, 50, 100}) {
    OwnershipNetwork net = MakeNetwork(n, 23);
    const datalog::Program& program =
        CachedProgram(workloads::kCompanyControlProgram);
    const datalog::Program& rewrite =
        CachedProgram(workloads::kCompanyControlRMonotonic);

    datalog::Database edb1;
    (void)workloads::AddOwnershipFacts(program, net, &edb1);
    auto engine_result =
        RunProgram(program, edb1, core::Strategy::kSemiNaive);

    datalog::Database edb2;
    (void)workloads::AddOwnershipFacts(rewrite, net, &edb2);
    auto rewrite_result =
        RunProgram(rewrite, edb2, core::Strategy::kSemiNaive);

    auto t0 = std::chrono::steady_clock::now();
    auto direct = baselines::SolveCompanyControl(net);
    double direct_ms = std::chrono::duration<double, std::milli>(
                           std::chrono::steady_clock::now() - t0)
                           .count();

    int pairs = 0;
    for (const auto& row : direct.controls) {
      for (bool b : row) pairs += b ? 1 : 0;
    }
    table.AddRow(
        {std::to_string(n),
         StrPrintf("%.2f", engine_result.stats.wall_seconds * 1e3),
         StrPrintf("%.2f", rewrite_result.stats.wall_seconds * 1e3),
         StrPrintf("%.3f", direct_ms), std::to_string(pairs),
         std::to_string(engine_result.stats.iterations)});
  }
  table.Print(std::cout);
  std::cout << "\n";
}

void BM_Engine(benchmark::State& state, const char* program_text) {
  int n = static_cast<int>(state.range(0));
  OwnershipNetwork net = MakeNetwork(n, 23);
  const datalog::Program& program = CachedProgram(program_text);
  datalog::Database edb;
  (void)workloads::AddOwnershipFacts(program, net, &edb);
  for (auto _ : state) {
    auto result = RunProgram(program, edb, core::Strategy::kSemiNaive);
    benchmark::DoNotOptimize(result);
  }
}

void BM_Direct(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  OwnershipNetwork net = MakeNetwork(n, 23);
  for (auto _ : state) {
    auto result = baselines::SolveCompanyControl(net);
    benchmark::DoNotOptimize(result);
  }
}

void RegisterAll() {
  for (int n : {20, 50, 100}) {
    benchmark::RegisterBenchmark(
        StrPrintf("BM_CompanyControl/engine/n%d", n).c_str(), BM_Engine,
        workloads::kCompanyControlProgram)
        ->Arg(n)
        ->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark(
        StrPrintf("BM_CompanyControl/rmonotonic_rewrite/n%d", n).c_str(),
        BM_Engine, workloads::kCompanyControlRMonotonic)
        ->Arg(n)
        ->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark(
        StrPrintf("BM_CompanyControl/direct/n%d", n).c_str(), BM_Direct)
        ->Arg(n)
        ->Unit(benchmark::kMillisecond);
  }
}

}  // namespace

int main(int argc, char** argv) {
  PrintComparisonTable();
  RegisterAll();
  return mad::bench::RunBenchmarks(argc, argv);
}
