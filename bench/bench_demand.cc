// Demand analysis payoffs: what the certified magic-sets rewrite buys on
// point queries against full evaluation of the same program over the same
// EDB. Three workloads:
//
//   * company control: a >100k-ownership-edge network; querying one owner's
//     control values m(a, Y, N) slices evaluation to that owner's cone
//     where full evaluation settles every owner. This is the headline
//     `derivations_ratio` counter (well over 10x on this instance; the
//     `edb_edges` counter records the EDB size).
//   * shortest path: single-source s(src, Y, C) on a random graph vs the
//     all-pairs full model.
//   * circuit: documents the conservative aggregate policy — demand may
//     bind only grouping variables, so t(w, V)'s inner join demands t
//     all-free and the ratio stays 1 (no slicing, same answer).
//
// The first Query call per (pred, adornment) pays the rewrite +
// certification; the engine caches it, so steady-state latency below is the
// sliced evaluation alone. BENCH_bench_demand.json records the wall times.

#include <benchmark/benchmark.h>

#include <string>

#include "bench_common.h"
#include "core/engine.h"
#include "datalog/parser.h"
#include "util/random.h"
#include "util/string_util.h"
#include "workloads/generators.h"
#include "workloads/programs.h"
#include "workloads/to_datalog.h"

namespace {

using namespace mad;

struct Fixture {
  const datalog::Program* program;
  datalog::Database edb;
  int64_t edb_edges = 0;
  datalog::Atom query;
};

/// Runs the demand-vs-full pair: times the demanded point query, then does
/// one untimed full run for the headline ratio.
void RunDemandQuery(benchmark::State& state, Fixture& fx) {
  core::Engine engine(*fx.program, {});
  core::QueryOptions qopts;
  qopts.mode = core::QueryOptions::Mode::kDemand;
  int64_t demand_derivations = 0;
  for (auto _ : state) {
    auto result = engine.Query(fx.query, fx.edb.ShareForRead(), qopts);
    if (!result.ok()) std::abort();
    demand_derivations = result->stats.derivations;
    benchmark::DoNotOptimize(result->rows);
  }
  auto full = engine.Run(fx.edb.ShareForRead());
  if (!full.ok()) std::abort();
  state.counters["derivations"] = static_cast<double>(demand_derivations);
  state.counters["derivations_ratio"] =
      demand_derivations > 0
          ? static_cast<double>(full->stats.derivations) /
                static_cast<double>(demand_derivations)
          : 0.0;
  state.counters["edb_edges"] = static_cast<double>(fx.edb_edges);
}

void RunFull(benchmark::State& state, Fixture& fx) {
  core::Engine engine(*fx.program, {});
  int64_t derivations = 0;
  for (auto _ : state) {
    auto result = engine.Run(fx.edb.ShareForRead());
    if (!result.ok()) std::abort();
    derivations = result->stats.derivations;
    benchmark::DoNotOptimize(result->db);
  }
  state.counters["derivations"] = static_cast<double>(derivations);
  state.counters["edb_edges"] = static_cast<double>(fx.edb_edges);
}

// --- Company control: the >100k-edge headline ------------------------------

Fixture& Control() {
  static Fixture* fx = [] {
    auto* f = new Fixture();
    f->program = &bench::CachedProgram(workloads::kCompanyControlProgram);
    // RandomOwnership's dense share matrix is O(n^2) memory, so at 100k+
    // edges the network is generated sparsely here: each company has a 60%
    // majority holder (the previous company, forming control chains broken
    // with probability 0.3) plus two minority holders, keeping column sums
    // at most 1 as Example 2.7 requires.
    Random rng(20260809);
    const int n = 38000;
    const datalog::PredicateInfo* s = f->program->FindPredicate("s");
    if (s == nullptr) std::abort();
    auto add = [&](int x, int y, double share) {
      datalog::Fact fact;
      fact.pred = s;
      fact.key = {
          datalog::Value::Symbol(baselines::OwnershipNetwork::CompanyName(x)),
          datalog::Value::Symbol(baselines::OwnershipNetwork::CompanyName(y))};
      fact.cost = datalog::Value::Real(share);
      if (!f->edb.AddFact(fact).ok()) std::abort();
    };
    for (int y = 1; y < n; ++y) {
      if (rng.Bernoulli(0.7)) add(y - 1, y, 0.6);
      add(static_cast<int>(rng.Uniform(0, y - 1)), y, 0.2);
      add(static_cast<int>(rng.Uniform(0, y - 1)), y, 0.15);
    }
    const datalog::Relation* rel = f->edb.Find(s);
    f->edb_edges = rel != nullptr ? static_cast<int64_t>(rel->size()) : 0;
    auto atom = datalog::ParseQueryAtom(*f->program, "m(c0, Y, N)");
    if (!atom.ok()) std::abort();
    f->query = std::move(atom).value();
    return f;
  }();
  return *fx;
}

void BM_ControlFull(benchmark::State& state) { RunFull(state, Control()); }
void BM_ControlDemandQuery(benchmark::State& state) {
  RunDemandQuery(state, Control());
}

// --- Circuit: the conservative aggregate policy (ratio 1) -------------------

Fixture& Circuit() {
  static Fixture* fx = [] {
    auto* f = new Fixture();
    f->program = &bench::CachedProgram(workloads::kCircuitProgram);
    Random rng(20260811);
    baselines::Circuit c = workloads::RandomCircuit(200, 4000, 4, 0.1, &rng);
    for (const auto& g : c.gates) {
      f->edb_edges += static_cast<int64_t>(g.input_wires.size());
    }
    auto added = workloads::AddCircuitFacts(*f->program, c, &f->edb);
    if (!added.ok()) std::abort();
    auto atom = datalog::ParseQueryAtom(
        *f->program,
        StrPrintf("t(%s, V)", baselines::Circuit::WireName(240).c_str()));
    if (!atom.ok()) std::abort();
    f->query = std::move(atom).value();
    return f;
  }();
  return *fx;
}

void BM_CircuitDemandQuery(benchmark::State& state) {
  RunDemandQuery(state, Circuit());
}

struct PathFixture {
  const datalog::Program* program;
  datalog::Database edb;
  datalog::Atom query;
};

PathFixture& Path() {
  static PathFixture* fx = [] {
    auto* f = new PathFixture();
    f->program = &bench::CachedProgram(workloads::kShortestPathProgram);
    Random rng(20260810);
    workloads::Graph g =
        workloads::RandomGraph(600, 2400, {1.0, 10.0}, &rng);
    auto added = workloads::AddGraphFacts(*f->program, g, &f->edb);
    if (!added.ok()) std::abort();
    auto atom = datalog::ParseQueryAtom(*f->program, "s(n0, Y, C)");
    if (!atom.ok()) std::abort();
    f->query = std::move(atom).value();
    return f;
  }();
  return *fx;
}

void BM_ShortestPathFull(benchmark::State& state) {
  PathFixture& fx = Path();
  core::Engine engine(*fx.program, {});
  int64_t derivations = 0;
  for (auto _ : state) {
    auto result = engine.Run(fx.edb.ShareForRead());
    if (!result.ok()) std::abort();
    derivations = result->stats.derivations;
    benchmark::DoNotOptimize(result->db);
  }
  state.counters["derivations"] = static_cast<double>(derivations);
}

void BM_ShortestPathDemandQuery(benchmark::State& state) {
  PathFixture& fx = Path();
  core::Engine engine(*fx.program, {});
  core::QueryOptions qopts;
  qopts.mode = core::QueryOptions::Mode::kDemand;
  int64_t derivations = 0;
  for (auto _ : state) {
    auto result = engine.Query(fx.query, fx.edb.ShareForRead(), qopts);
    if (!result.ok()) std::abort();
    derivations = result->stats.derivations;
    benchmark::DoNotOptimize(result->rows);
  }
  state.counters["derivations"] = static_cast<double>(derivations);
}

BENCHMARK(BM_ControlFull)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ControlDemandQuery)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ShortestPathFull)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ShortestPathDemandQuery)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CircuitDemandQuery)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) { return mad::bench::RunBenchmarks(argc, argv); }
