// Experiment F1: reproduces Figure 1 — the paper's table of monotonic
// aggregate functions — as a live inventory (each row instantiated, its
// lattice endpoints and monotonicity class printed) plus a throughput
// benchmark of every aggregate across multiset sizes.

#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_common.h"
#include "lattice/aggregate.h"
#include "util/random.h"
#include "util/table_printer.h"

namespace {

using mad::Random;
using mad::lattice::AggregateFunction;
using mad::lattice::CostDomain;
using mad::lattice::Figure1;
using mad::lattice::Figure1Row;
using mad::lattice::MonotonicityName;
using mad::lattice::NumericDomain;
using mad::lattice::SetDomain;
using mad::datalog::Value;
using mad::datalog::ValueSet;

std::vector<Value> SampleMultiset(const CostDomain* domain, int size,
                                  Random* rng) {
  std::vector<Value> out;
  out.reserve(size);
  for (int i = 0; i < size; ++i) {
    if (const auto* num = dynamic_cast<const NumericDomain*>(domain)) {
      double lo = std::isfinite(num->lo()) ? num->lo() : 0.0;
      double hi = std::isfinite(num->hi()) ? num->hi() : 100.0;
      double v = rng->UniformReal(lo, hi);
      if (num->integral()) v = std::floor(v);
      out.push_back(Value::Real(v));
    } else {
      const auto* set = dynamic_cast<const SetDomain*>(domain);
      ValueSet universe;
      if (set != nullptr && set->universe() != nullptr) {
        universe = *set->universe();
      } else {
        for (int k = 0; k < 12; ++k) {
          universe.push_back(Value::Symbol("u" + std::to_string(k)));
        }
      }
      ValueSet elems;
      for (const Value& u : universe) {
        if (rng->Bernoulli(0.25)) elems.push_back(u);
      }
      out.push_back(Value::Set(std::move(elems)));
    }
  }
  return out;
}

void PrintFigure1Table() {
  std::cout << "=== Figure 1 (Ross & Sagiv 1992): monotonic aggregate "
               "functions ===\n";
  mad::TablePrinter table(
      {"row", "F", "input lattice", "bottom", "output lattice",
       "monotonicity"});
  for (const Figure1Row& row : Figure1()) {
    table.AddRow({std::to_string(row.row_number),
                  std::string(row.fn->name()),
                  std::string(row.fn->input_domain()->name()),
                  row.fn->input_domain()->Bottom().ToString(),
                  std::string(row.fn->output_domain()->name()),
                  MonotonicityName(row.fn->monotonicity())});
  }
  table.Print(std::cout);
  std::cout << "\n";
}

void BM_Figure1Apply(benchmark::State& state) {
  const Figure1Row& row = Figure1()[state.range(0)];
  int size = static_cast<int>(state.range(1));
  Random rng(42);
  std::vector<Value> multiset =
      SampleMultiset(row.fn->input_domain(), size, &rng);
  for (auto _ : state) {
    auto result = row.fn->Apply(multiset);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * size);
  state.SetLabel(std::string(row.fn->name()) + "/" +
                 std::string(row.fn->input_domain()->name()));
}

void RegisterAll() {
  for (int row = 0; row < 11; ++row) {
    // has_path4 (row 11) is super-linear in the graph size; keep it small.
    int max_size = row == 10 ? 64 : 4096;
    for (int size = 16; size <= max_size; size *= 16) {
      benchmark::RegisterBenchmark(
          ("BM_Figure1Apply/row" + std::to_string(row + 1) + "/size" +
           std::to_string(size))
              .c_str(),
          BM_Figure1Apply)
          ->Args({row, size});
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  PrintFigure1Table();
  RegisterAll();
  return mad::bench::RunBenchmarks(argc, argv);
}
