// Experiment E5.1: the halfsum program — T_P monotonic but NOT continuous.
// The table shows the approximation 1 - 2^-k marching toward the least
// fixpoint p(a, 1) that no finite iteration reaches, and the iteration
// counts needed for each ε tolerance. Expected shape: gap halves per round;
// iterations-to-ε grows as log2(1/ε).

#include <benchmark/benchmark.h>

#include <cmath>
#include <iostream>

#include "bench_common.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace {

using namespace mad;

double PofA(const core::ParsedRun& run) {
  auto v = core::LookupCost(*run.program, run.result.db, "p",
                            {datalog::Value::Symbol("a")});
  return v.has_value() ? v->AsDouble() : -1;
}

void PrintApproximationTable() {
  std::cout << "=== E5.1: halfsum — approximations to a fixpoint that is "
               "only reached in the limit ===\n";
  TablePrinter table({"iteration budget", "p(a)", "gap to fixpoint",
                      "fixpoint reached"});
  for (int64_t budget : {2, 4, 8, 16, 32, 52}) {
    core::EvalOptions options;
    options.max_iterations = budget;
    auto run = core::ParseAndRun(workloads::kHalfsumProgram, options);
    double v = PofA(*run);
    table.AddRow({std::to_string(budget), StrPrintf("%.10f", v),
                  StrPrintf("%.2e", 1.0 - v),
                  run->result.stats.reached_fixpoint ? "yes" : "no"});
  }
  table.Print(std::cout);

  std::cout << "\n=== E5.1: iterations to ε-convergence ===\n";
  TablePrinter eps_table({"epsilon", "iterations", "p(a)"});
  for (double eps : {1e-3, 1e-6, 1e-9, 1e-12}) {
    core::EvalOptions options;
    options.epsilon = eps;
    options.max_iterations = 10000;
    auto run = core::ParseAndRun(workloads::kHalfsumProgram, options);
    eps_table.AddRow({StrPrintf("%.0e", eps),
                      std::to_string(run->result.stats.iterations),
                      StrPrintf("%.12f", PofA(*run))});
  }
  eps_table.Print(std::cout);
  std::cout << "\n";
}

void BM_HalfsumToEpsilon(benchmark::State& state) {
  double eps = std::pow(10.0, -static_cast<double>(state.range(0)));
  for (auto _ : state) {
    core::EvalOptions options;
    options.epsilon = eps;
    options.max_iterations = 10000;
    auto run = core::ParseAndRun(workloads::kHalfsumProgram, options);
    benchmark::DoNotOptimize(run);
  }
}

BENCHMARK(BM_HalfsumToEpsilon)->Arg(3)->Arg(6)->Arg(9)->Arg(12);

}  // namespace

int main(int argc, char** argv) {
  PrintApproximationTable();
  return mad::bench::RunBenchmarks(argc, argv);
}
