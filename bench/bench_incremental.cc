// Ablation/extension experiment: incremental maintenance (Engine::Update)
// vs full recomputation after a single-fact insert. The paper lists
// "evaluation and optimization of monotonic programs" as future work
// (Section 7); delta-driven maintenance of the least model is the natural
// first step and falls out of the semi-naive driver machinery. Expected
// shape: update latency is orders of magnitude below recomputation and
// grows with the size of the affected region, not the database.

#include <benchmark/benchmark.h>

#include <chrono>
#include <iostream>

#include "bench_common.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace {

using namespace mad;
using baselines::Graph;
using bench::CachedProgram;
using datalog::Database;
using datalog::Fact;
using datalog::Value;

Fact ArcFact(const datalog::Program& program, int u, int v, double w) {
  Fact f;
  f.pred = program.FindPredicate("arc");
  f.key = {Value::Symbol(Graph::NodeName(u)),
           Value::Symbol(Graph::NodeName(v))};
  f.cost = Value::Real(w);
  return f;
}

void PrintComparisonTable() {
  std::cout << "=== Incremental maintenance vs full recomputation "
               "(shortest paths, one inserted arc) ===\n";
  TablePrinter table({"n", "full run (ms)", "update (ms)", "speedup",
                      "update derivations", "full derivations"});
  const datalog::Program& program =
      CachedProgram(workloads::kShortestPathProgram);
  for (int n : {20, 40, 80}) {
    Random rng(13);
    Graph g = workloads::RandomGraph(n, 4 * n, {1.0, 10.0}, &rng);
    Database edb;
    (void)workloads::AddGraphFacts(program, g, &edb);
    core::Engine engine(program);
    auto base = engine.Run(edb.Clone());
    if (!base.ok()) std::abort();
    double full_ms = base->stats.wall_seconds * 1e3;

    auto t0 = std::chrono::steady_clock::now();
    auto ustats = engine.Update(&base.value(),
                                {ArcFact(program, 1, n - 2, 0.7)});
    double update_ms = std::chrono::duration<double, std::milli>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
    if (!ustats.ok()) std::abort();
    table.AddRow({std::to_string(n), StrPrintf("%.2f", full_ms),
                  StrPrintf("%.3f", update_ms),
                  StrPrintf("%.0fx", full_ms / std::max(update_ms, 1e-6)),
                  std::to_string(ustats->derivations),
                  std::to_string(base->stats.derivations -
                                 ustats->derivations)});
  }
  table.Print(std::cout);
  std::cout << "\n";
}

void BM_Update(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Random rng(13);
  Graph g = workloads::RandomGraph(n, 4 * n, {1.0, 10.0}, &rng);
  const datalog::Program& program =
      CachedProgram(workloads::kShortestPathProgram);
  Database edb;
  (void)workloads::AddGraphFacts(program, g, &edb);
  core::Engine engine(program);
  auto base = engine.Run(std::move(edb));
  if (!base.ok()) std::abort();
  // Re-inserting the same fact is a no-op after the first iteration, so
  // clone the baseline each time.
  int i = 0;
  for (auto _ : state) {
    state.PauseTiming();
    core::EvalResult fresh;
    fresh.db = base->db.Clone();
    state.ResumeTiming();
    auto st = engine.Update(&fresh, {ArcFact(program, 1 + (i % 5), n - 2,
                                             0.7)});
    benchmark::DoNotOptimize(st);
    ++i;
  }
}

void BM_FullRecompute(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Random rng(13);
  Graph g = workloads::RandomGraph(n, 4 * n, {1.0, 10.0}, &rng);
  g.AddEdge(1, n - 2, 0.7);
  const datalog::Program& program =
      CachedProgram(workloads::kShortestPathProgram);
  Database edb;
  (void)workloads::AddGraphFacts(program, g, &edb);
  for (auto _ : state) {
    auto result =
        bench::RunProgram(program, edb, core::Strategy::kSemiNaive);
    benchmark::DoNotOptimize(result);
  }
}

void RegisterAll() {
  for (int n : {20, 40, 80}) {
    benchmark::RegisterBenchmark(
        StrPrintf("BM_Incremental/update/n%d", n).c_str(), BM_Update)
        ->Arg(n)
        ->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark(
        StrPrintf("BM_Incremental/full/n%d", n).c_str(), BM_FullRecompute)
        ->Arg(n)
        ->Unit(benchmark::kMillisecond);
  }
}

}  // namespace

int main(int argc, char** argv) {
  PrintComparisonTable();
  RegisterAll();
  return mad::bench::RunBenchmarks(argc, argv);
}
