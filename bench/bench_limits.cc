// Resource-governor overhead and anytime behaviour.
//
// Two questions, one table each:
//  1. Overhead: the guard must cost (almost) nothing. With no limits the
//     hot path is a single predictable branch per merge batch; with generous
//     limits that never trip it adds one counter update per batch and a
//     clock read every check_interval tuples. Expected shape: the "generous"
//     column within a few percent of "none".
//  2. Anytime value: how much of the shortest-path least model survives ever
//     tighter tuple budgets — coverage should degrade gracefully, never
//     abruptly, and every run stays certified (under-approximation).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <iostream>
#include <memory>

#include "bench_common.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace {

using namespace mad;
using bench::CachedProgram;

ResourceLimits GenerousLimits() {
  ResourceLimits limits;
  limits.deadline = std::chrono::hours(24);
  limits.max_derived_tuples = int64_t{1} << 50;
  limits.max_memory_bytes = int64_t{1} << 50;
  limits.max_total_rounds = int64_t{1} << 40;
  limits.cancellation = std::make_shared<CancellationToken>();
  return limits;
}

core::EvalResult MustRun(const datalog::Program& program,
                         const datalog::Database& edb,
                         const core::EvalOptions& options) {
  core::Engine engine(program, options);
  auto result = engine.Run(edb.Clone());
  if (!result.ok()) {
    std::fprintf(stderr, "bench_limits: evaluation failed: %s\n",
                 result.status().ToString().c_str());
    std::abort();
  }
  return std::move(result).value();
}

void PrintOverheadTable() {
  std::cout << "=== Guard overhead: no limits vs generous (never-tripping) "
               "limits ===\n";
  TablePrinter table({"workload", "size", "none (ms)", "generous (ms)",
                      "overhead", "completeness"});
  for (int n : {40, 80, 160}) {
    Random rng(7);
    auto g = workloads::RandomGraph(n, 6 * n, {1.0, 9.0}, &rng);
    const datalog::Program& program =
        CachedProgram(workloads::kShortestPathProgram);
    datalog::Database edb;
    (void)workloads::AddGraphFacts(program, g, &edb);

    core::EvalOptions plain;
    core::EvalOptions governed;
    governed.limits = GenerousLimits();

    // Best-of-5 to keep the ratio out of allocator noise.
    double best_plain = 1e99, best_governed = 1e99;
    const char* completeness = "?";
    for (int rep = 0; rep < 5; ++rep) {
      best_plain =
          std::min(best_plain, MustRun(program, edb, plain).stats.wall_seconds);
      auto run = MustRun(program, edb, governed);
      best_governed = std::min(best_governed, run.stats.wall_seconds);
      completeness = core::CompletenessName(run.completeness);
    }
    table.AddRow({"sp-er", std::to_string(n),
                  StrPrintf("%.2f", best_plain * 1e3),
                  StrPrintf("%.2f", best_governed * 1e3),
                  StrPrintf("%+.1f%%",
                            100.0 * (best_governed - best_plain) /
                                std::max(best_plain, 1e-9)),
                  completeness});
  }
  table.Print(std::cout);
  std::cout << "\n";
}

void PrintAnytimeTable() {
  std::cout << "=== Anytime: coverage of the least model vs tuple budget "
               "===\n";
  TablePrinter table({"budget", "s rows", "of full", "limit", "completeness"});
  Random rng(13);
  auto g = workloads::RandomGraph(120, 900, {1.0, 9.0}, &rng);
  const datalog::Program& program =
      CachedProgram(workloads::kShortestPathProgram);
  datalog::Database edb;
  (void)workloads::AddGraphFacts(program, g, &edb);

  auto full = MustRun(program, edb, {});
  const datalog::Relation* full_s =
      full.db.Find(program.FindPredicate("s"));
  size_t full_rows = full_s == nullptr ? 0 : full_s->size();

  for (int64_t budget : {1000, 10'000, 100'000, 1'000'000, 0}) {
    core::EvalOptions options;
    options.limits.max_derived_tuples = budget;
    auto run = MustRun(program, edb, options);
    const datalog::Relation* s = run.db.Find(program.FindPredicate("s"));
    size_t rows = s == nullptr ? 0 : s->size();
    table.AddRow({budget == 0 ? "unbounded" : std::to_string(budget),
                  std::to_string(rows),
                  StrPrintf("%.1f%%", full_rows == 0
                                          ? 100.0
                                          : 100.0 * rows / full_rows),
                  LimitKindName(run.limit_tripped),
                  core::CompletenessName(run.completeness)});
  }
  table.Print(std::cout);
  std::cout << "\n";
}

void BM_Governed(benchmark::State& state, bool with_limits) {
  int n = static_cast<int>(state.range(0));
  Random rng(7);
  auto g = workloads::RandomGraph(n, 6 * n, {1.0, 9.0}, &rng);
  const datalog::Program& program =
      CachedProgram(workloads::kShortestPathProgram);
  datalog::Database edb;
  (void)workloads::AddGraphFacts(program, g, &edb);
  core::EvalOptions options;
  if (with_limits) options.limits = GenerousLimits();
  for (auto _ : state) {
    auto result = MustRun(program, edb, options);
    benchmark::DoNotOptimize(result);
  }
}

void RegisterAll() {
  for (int n : {40, 80, 160}) {
    benchmark::RegisterBenchmark(
        StrPrintf("BM_SemiNaive/ungoverned/n%d", n).c_str(), BM_Governed,
        false)
        ->Arg(n)
        ->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark(
        StrPrintf("BM_SemiNaive/governed/n%d", n).c_str(), BM_Governed, true)
        ->Arg(n)
        ->Unit(benchmark::kMillisecond);
  }
}

}  // namespace

int main(int argc, char** argv) {
  PrintOverheadTable();
  PrintAnytimeTable();
  RegisterAll();
  return mad::bench::RunBenchmarks(argc, argv);
}
