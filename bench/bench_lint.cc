// Lint throughput: how the madlint pass manager scales with program size.
// Programs are generated synthetically — a chain of join rules seeded with a
// fixed ratio of lint smells (singleton variables, duplicate rules, a
// recursive cost predicate) so every pass has real work to do — and linted
// with the full and paper-only pipelines. Rendering benchmarks cover the
// cost of the SARIF emitter on the resulting finding lists.

#include <benchmark/benchmark.h>

#include <memory>
#include <sstream>
#include <string>

#include "analysis/checker.h"
#include "analysis/lint/passes.h"
#include "bench_common.h"
#include "datalog/parser.h"

namespace {

using namespace mad;

// A program with `rules` chain rules over `rules + 1` predicates. Every
// fourth rule carries a singleton variable, every eighth is duplicated, and
// one recursive min-cost predicate sits at the end to engage the
// admissibility and termination passes.
std::string GenerateProgram(int rules) {
  std::ostringstream out;
  out << ".decl p0(x, y)\n";
  for (int i = 1; i <= rules; ++i) {
    out << ".decl p" << i << "(x, y)\n";
  }
  out << ".decl sp(x, c: min_real)\n";
  out << ".decl base(x, y, c: min_real)\n";
  out << "p0(a, b).\n";
  out << "base(a, b, 1).\n";
  for (int i = 1; i <= rules; ++i) {
    if (i % 4 == 0) {
      // Singleton variable W.
      out << "p" << i << "(X, Y) :- p" << (i - 1) << "(X, Y), p0(X, W).\n";
    } else {
      out << "p" << i << "(X, Y) :- p" << (i - 1) << "(X, Z), p" << (i - 1)
          << "(Z, Y).\n";
    }
    if (i % 8 == 0) {
      // Alpha-equivalent duplicate of the rule above.
      out << "p" << i << "(A, B) :- p" << (i - 1) << "(A, C), p" << (i - 1)
          << "(C, B).\n";
    }
  }
  out << "sp(X, C) :- base(X, _Y, C).\n";
  out << "sp(X, C) :- sp(Z, C1), base(Z, X, C2), C = C1 + C2.\n";
  return out.str();
}

struct LintInput {
  datalog::Program program;
  std::unique_ptr<analysis::DependencyGraph> graph;
};

LintInput MakeInput(int rules) {
  auto parsed = datalog::ParseProgram(GenerateProgram(rules));
  if (!parsed.ok()) {
    std::fprintf(stderr, "bench_lint: parse failed: %s\n",
                 parsed.status().ToString().c_str());
    std::abort();
  }
  LintInput in{std::move(parsed).value(), nullptr};
  in.graph = std::make_unique<analysis::DependencyGraph>(in.program);
  return in;
}

void BM_LintDefaultPasses(benchmark::State& state) {
  LintInput in = MakeInput(static_cast<int>(state.range(0)));
  analysis::lint::LintContext ctx;
  ctx.program = &in.program;
  ctx.graph = in.graph.get();
  ctx.file = "bench.mdl";
  auto pm = analysis::lint::MakeDefaultPassManager();
  size_t findings = 0;
  for (auto _ : state) {
    analysis::lint::DiagnosticList diags = pm.Run(ctx);
    findings = diags.size();
    benchmark::DoNotOptimize(diags);
  }
  state.SetItemsProcessed(state.iterations() * in.program.rules().size());
  state.counters["rules"] = static_cast<double>(in.program.rules().size());
  state.counters["findings"] = static_cast<double>(findings);
}
BENCHMARK(BM_LintDefaultPasses)->RangeMultiplier(4)->Range(8, 512);

void BM_LintPaperPasses(benchmark::State& state) {
  LintInput in = MakeInput(static_cast<int>(state.range(0)));
  analysis::lint::LintContext ctx;
  ctx.program = &in.program;
  ctx.graph = in.graph.get();
  ctx.file = "bench.mdl";
  auto pm = analysis::lint::MakePaperPassManager();
  for (auto _ : state) {
    analysis::lint::DiagnosticList diags = pm.Run(ctx);
    benchmark::DoNotOptimize(diags);
  }
  state.SetItemsProcessed(state.iterations() * in.program.rules().size());
}
BENCHMARK(BM_LintPaperPasses)->RangeMultiplier(4)->Range(8, 512);

// End-to-end `madlint` cost for a cold file: parse + dependency graph +
// full pass pipeline.
void BM_LintEndToEnd(benchmark::State& state) {
  std::string text = GenerateProgram(static_cast<int>(state.range(0)));
  auto pm = analysis::lint::MakeDefaultPassManager();
  for (auto _ : state) {
    auto parsed = datalog::ParseProgram(text);
    analysis::DependencyGraph graph(*parsed);
    analysis::lint::LintContext ctx;
    ctx.program = &*parsed;
    ctx.graph = &graph;
    ctx.file = "bench.mdl";
    analysis::lint::DiagnosticList diags = pm.Run(ctx);
    benchmark::DoNotOptimize(diags);
  }
  state.SetBytesProcessed(state.iterations() * text.size());
}
BENCHMARK(BM_LintEndToEnd)->RangeMultiplier(4)->Range(8, 512);

void BM_RenderSarif(benchmark::State& state) {
  LintInput in = MakeInput(static_cast<int>(state.range(0)));
  analysis::lint::LintContext ctx;
  ctx.program = &in.program;
  ctx.graph = in.graph.get();
  ctx.file = "bench.mdl";
  analysis::lint::DiagnosticList diags =
      analysis::lint::MakeDefaultPassManager().Run(ctx);
  for (auto _ : state) {
    std::string sarif = diags.RenderSarif();
    benchmark::DoNotOptimize(sarif);
  }
  state.counters["findings"] = static_cast<double>(diags.size());
}
BENCHMARK(BM_RenderSarif)->RangeMultiplier(4)->Range(8, 512);

}  // namespace

int main(int argc, char** argv) {
  return mad::bench::RunBenchmarks(argc, argv);
}
