// Parallel evaluation scaling: the same three recursive-aggregation
// workloads swept across EvalOptions::num_threads in {1, 2, 4, 8}. Each run
// records the thread count as a counter, so the JSON sidecar carries
// num_threads and speedup_vs_1t per data point (the /t1 run is the baseline
// for its benchmark family).
//
// Expected shape on a multi-core host: shortest-path and company-control
// approach the core count until the sharded merge phase and the serial
// residue (delta dedupe, round bookkeeping) flatten the curve (Amdahl);
// halfsum is a single tiny SCC and mostly measures pool overhead. On a
// single-core host every curve is flat at ~1x with a small coordination tax —
// the numbers are recorded either way, never assumed.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <iostream>

#include "bench_common.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace {

using namespace mad;
using baselines::Graph;
using bench::CachedProgram;

/// Runs `program` on a clone of `edb` with `num_threads` pool participants;
/// asserts success; returns the result.
core::EvalResult RunThreaded(const datalog::Program& program,
                             const datalog::Database& edb, int num_threads,
                             double epsilon = 0.0) {
  core::EvalOptions options;
  options.num_threads = num_threads;
  options.epsilon = epsilon;
  core::Engine engine(program, options);
  auto result = engine.Run(edb.Clone());
  if (!result.ok()) {
    std::fprintf(stderr, "bench: evaluation failed: %s\n",
                 result.status().ToString().c_str());
    std::abort();
  }
  return std::move(result).value();
}

datalog::Database ShortestPathEdb(const datalog::Program& program) {
  Random rng(23);
  Graph g = workloads::RandomGraph(64, 256, {1.0, 10.0}, &rng);
  datalog::Database edb;
  (void)workloads::AddGraphFacts(program, g, &edb);
  return edb;
}

datalog::Database CompanyControlEdb(const datalog::Program& program) {
  Random rng(23);
  auto net = workloads::RandomOwnership(120, 4, 0.6, &rng);
  datalog::Database edb;
  (void)workloads::AddOwnershipFacts(program, net, &edb);
  return edb;
}

void BM_ShortestPath(benchmark::State& state, int threads) {
  const datalog::Program& program =
      CachedProgram(workloads::kShortestPathProgram);
  datalog::Database edb = ShortestPathEdb(program);
  int64_t derivations = 0;
  for (auto _ : state) {
    auto result = RunThreaded(program, edb, threads);
    derivations = result.stats.derivations;
    benchmark::DoNotOptimize(result);
  }
  state.counters["num_threads"] = static_cast<double>(threads);
  state.counters["derivations"] = static_cast<double>(derivations);
}

void BM_CompanyControl(benchmark::State& state, int threads) {
  const datalog::Program& program =
      CachedProgram(workloads::kCompanyControlProgram);
  datalog::Database edb = CompanyControlEdb(program);
  int64_t derivations = 0;
  for (auto _ : state) {
    auto result = RunThreaded(program, edb, threads);
    derivations = result.stats.derivations;
    benchmark::DoNotOptimize(result);
  }
  state.counters["num_threads"] = static_cast<double>(threads);
  state.counters["derivations"] = static_cast<double>(derivations);
}

void BM_Halfsum(benchmark::State& state, int threads) {
  const datalog::Program& program = CachedProgram(workloads::kHalfsumProgram);
  // Monotone but not continuous (Example 5.1): epsilon turns the infinite
  // ascent into a long finite one — many tiny rounds, the pool-overhead
  // worst case.
  constexpr double kEpsilon = 1e-9;
  int64_t iterations = 0;
  for (auto _ : state) {
    auto result = RunThreaded(program, datalog::Database(), threads, kEpsilon);
    iterations = result.stats.iterations;
    benchmark::DoNotOptimize(result);
  }
  state.counters["num_threads"] = static_cast<double>(threads);
  state.counters["fixpoint_rounds"] = static_cast<double>(iterations);
}

void PrintScalingTable() {
  std::cout << "=== Parallel semi-naive scaling (wall ms per evaluation) "
               "===\n";
  TablePrinter table({"workload", "t1", "t2", "t4", "t8", "speedup@8"});
  struct Row {
    const char* name;
    const char* text;
    datalog::Database edb;
    double epsilon;
  };
  std::vector<Row> rows;
  {
    const datalog::Program& sp = CachedProgram(workloads::kShortestPathProgram);
    rows.push_back({"shortest-path", workloads::kShortestPathProgram,
                    ShortestPathEdb(sp), 0.0});
    const datalog::Program& cc =
        CachedProgram(workloads::kCompanyControlProgram);
    rows.push_back({"company-control", workloads::kCompanyControlProgram,
                    CompanyControlEdb(cc), 0.0});
    rows.push_back(
        {"half-sum", workloads::kHalfsumProgram, datalog::Database(), 1e-9});
  }
  for (Row& row : rows) {
    const datalog::Program& program = CachedProgram(row.text);
    double ms[4];
    int i = 0;
    for (int threads : {1, 2, 4, 8}) {
      auto result = RunThreaded(program, row.edb, threads, row.epsilon);
      ms[i++] = result.stats.wall_seconds * 1e3;
    }
    table.AddRow({row.name, StrPrintf("%.2f", ms[0]), StrPrintf("%.2f", ms[1]),
                  StrPrintf("%.2f", ms[2]), StrPrintf("%.2f", ms[3]),
                  StrPrintf("%.2fx", ms[0] / ms[3])});
  }
  table.Print(std::cout);
  std::cout << "\n";
}

void RegisterAll() {
  // Registered via capturing lambdas (not ->Args) so the run name ends in
  // exactly "/t<threads>" — the suffix the sidecar reporter keys speedups on.
  for (int threads : {1, 2, 4, 8}) {
    benchmark::RegisterBenchmark(
        StrPrintf("BM_Parallel/shortest_path/t%d", threads).c_str(),
        [threads](benchmark::State& s) { BM_ShortestPath(s, threads); })
        ->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark(
        StrPrintf("BM_Parallel/company_control/t%d", threads).c_str(),
        [threads](benchmark::State& s) { BM_CompanyControl(s, threads); })
        ->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark(
        StrPrintf("BM_Parallel/halfsum/t%d", threads).c_str(),
        [threads](benchmark::State& s) { BM_Halfsum(s, threads); })
        ->Unit(benchmark::kMillisecond);
  }
}

}  // namespace

int main(int argc, char** argv) {
  PrintScalingTable();
  RegisterAll();
  return mad::bench::RunBenchmarks(argc, argv);
}
