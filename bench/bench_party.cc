// Experiment E4.3: party invitations — the "=" count aggregate through
// recursion on cyclic acquaintance graphs. Expected shape: the direct
// solver wins by a constant factor; attendance and iteration counts agree;
// denser graphs converge in fewer rounds (more guests tip immediately).

#include <benchmark/benchmark.h>

#include <chrono>
#include <iostream>

#include "baselines/party_solver.h"
#include "bench_common.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace {

using namespace mad;
using baselines::PartyInstance;
using bench::CachedProgram;
using bench::RunProgram;

PartyInstance MakeParty(int n, double degree, uint64_t seed) {
  Random rng(seed);
  return workloads::RandomParty(n, degree, 3, 0.6, &rng);
}

void PrintComparisonTable() {
  std::cout << "=== E4.3: party invitations — engine vs direct solver ===\n";
  TablePrinter table({"people", "avg degree", "engine (ms)", "direct (ms)",
                      "coming", "engine iters"});
  const datalog::Program& program = CachedProgram(workloads::kPartyProgram);
  for (int n : {50, 200, 800}) {
    for (double degree : {2.0, 6.0}) {
      PartyInstance p = MakeParty(n, degree, 31);
      datalog::Database edb;
      (void)workloads::AddPartyFacts(program, p, &edb);
      auto engine_result =
          RunProgram(program, edb, core::Strategy::kSemiNaive);

      auto t0 = std::chrono::steady_clock::now();
      auto direct = baselines::SolveParty(p);
      double direct_ms = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - t0)
                             .count();
      int coming = 0;
      for (bool b : direct.coming) coming += b ? 1 : 0;

      table.AddRow(
          {std::to_string(n), StrPrintf("%.0f", degree),
           StrPrintf("%.2f", engine_result.stats.wall_seconds * 1e3),
           StrPrintf("%.3f", direct_ms), std::to_string(coming),
           std::to_string(engine_result.stats.iterations)});
    }
  }
  table.Print(std::cout);
  std::cout << "\n";
}

void BM_Engine(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  PartyInstance p = MakeParty(n, 4.0, 31);
  const datalog::Program& program = CachedProgram(workloads::kPartyProgram);
  datalog::Database edb;
  (void)workloads::AddPartyFacts(program, p, &edb);
  for (auto _ : state) {
    auto result = RunProgram(program, edb, core::Strategy::kSemiNaive);
    benchmark::DoNotOptimize(result);
  }
}

void BM_Direct(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  PartyInstance p = MakeParty(n, 4.0, 31);
  for (auto _ : state) {
    auto result = baselines::SolveParty(p);
    benchmark::DoNotOptimize(result);
  }
}

void RegisterAll() {
  for (int n : {50, 200, 800}) {
    benchmark::RegisterBenchmark(
        StrPrintf("BM_Party/engine/n%d", n).c_str(), BM_Engine)
        ->Arg(n)
        ->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark(
        StrPrintf("BM_Party/direct/n%d", n).c_str(), BM_Direct)
        ->Arg(n)
        ->Unit(benchmark::kMillisecond);
  }
}

}  // namespace

int main(int argc, char** argv) {
  PrintComparisonTable();
  RegisterAll();
  return mad::bench::RunBenchmarks(argc, argv);
}
