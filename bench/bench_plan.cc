// Static planning costs and payoffs: how much the whole-program planner
// (type inference + per-rule SIPS join ordering) costs as programs grow, and
// what planned join orders buy at evaluation time against the textual-order
// oracle and the legacy greedy-tier heuristic on the shortest-path workload.

#include <benchmark/benchmark.h>

#include <sstream>
#include <string>

#include "analysis/dependency_graph.h"
#include "analysis/plan/plan.h"
#include "analysis/typing/types.h"
#include "bench_common.h"
#include "core/engine.h"
#include "datalog/parser.h"
#include "util/random.h"
#include "workloads/generators.h"
#include "workloads/programs.h"
#include "workloads/to_datalog.h"

namespace {

using namespace mad;

// A chain of join rules over `rules + 1` binary predicates plus a recursive
// min-cost predicate — the bench_lint shape, minus the intentional smells,
// so the planner sees multi-atom bodies, builtins, and an aggregate.
std::string GenerateProgram(int rules) {
  std::ostringstream out;
  out << ".decl p0(x, y)\n";
  for (int i = 1; i <= rules; ++i) {
    out << ".decl p" << i << "(x, y)\n";
  }
  out << ".decl sp(x, c: min_real)\n";
  out << ".decl base(x, y, c: min_real)\n";
  out << "p0(a, b).\n";
  out << "base(a, b, 1).\n";
  for (int i = 1; i <= rules; ++i) {
    out << "p" << i << "(X, Y) :- p" << (i - 1) << "(X, Z), p" << (i - 1)
        << "(Z, Y).\n";
  }
  out << "sp(X, C) :- base(X, _Y, C).\n";
  out << "sp(X, C) :- sp(Z, C1), base(Z, X, C2), C = C1 + C2.\n";
  return out.str();
}

// ---------------------------------------------------------------------------
// Planning cost: what `mondl --explain` / Engine::Run pay up front.
// ---------------------------------------------------------------------------

void BM_PlanProgram(benchmark::State& state) {
  auto parsed = datalog::ParseProgram(GenerateProgram(
      static_cast<int>(state.range(0))));
  if (!parsed.ok()) std::abort();
  analysis::DependencyGraph graph(*parsed);
  analysis::plan::CardinalityEstimates cards =
      analysis::plan::CardinalityEstimates::FromProgram(*parsed);
  for (auto _ : state) {
    analysis::plan::PlanReport report =
        analysis::plan::PlanProgram(*parsed, graph, cards);
    benchmark::DoNotOptimize(report);
  }
  state.SetItemsProcessed(state.iterations() * parsed->rules().size());
  state.counters["rules"] = static_cast<double>(parsed->rules().size());
}
BENCHMARK(BM_PlanProgram)->RangeMultiplier(4)->Range(8, 512);

void BM_InferTypes(benchmark::State& state) {
  auto parsed = datalog::ParseProgram(GenerateProgram(
      static_cast<int>(state.range(0))));
  if (!parsed.ok()) std::abort();
  for (auto _ : state) {
    analysis::typing::TypeReport report =
        analysis::typing::InferTypes(*parsed);
    benchmark::DoNotOptimize(report);
  }
  state.SetItemsProcessed(state.iterations() * parsed->rules().size());
}
BENCHMARK(BM_InferTypes)->RangeMultiplier(4)->Range(8, 512);

// ---------------------------------------------------------------------------
// Evaluation under the three join-order modes: same least model (certified
// by plan_differential_test), different work. The per-mode subgoal_evals
// counter is the model-independent work metric.
// ---------------------------------------------------------------------------

void EvalWithMode(benchmark::State& state, core::JoinOrderMode mode) {
  const datalog::Program& program =
      bench::CachedProgram(workloads::kShortestPathProgram);
  Random rng(42);
  baselines::Graph g =
      workloads::RandomGraph(static_cast<int>(state.range(0)),
                             4 * static_cast<int>(state.range(0)),
                             {1.0, 9.0}, &rng);
  datalog::Database edb;
  if (!workloads::AddGraphFacts(program, g, &edb).ok()) std::abort();

  core::EvalOptions options;
  options.join_order = mode;
  long long subgoal_evals = 0;
  for (auto _ : state) {
    core::Engine engine(program, options);
    auto result = engine.Run(edb.Clone());
    if (!result.ok()) std::abort();
    subgoal_evals = static_cast<long long>(result->stats.subgoal_evals);
    benchmark::DoNotOptimize(result);
  }
  state.counters["subgoal_evals"] = static_cast<double>(subgoal_evals);
  state.counters["nodes"] = static_cast<double>(g.num_nodes);
}

void BM_EvalPlanned(benchmark::State& state) {
  EvalWithMode(state, core::JoinOrderMode::kPlanned);
}
BENCHMARK(BM_EvalPlanned)->RangeMultiplier(2)->Range(16, 128);

void BM_EvalTextual(benchmark::State& state) {
  EvalWithMode(state, core::JoinOrderMode::kTextual);
}
BENCHMARK(BM_EvalTextual)->RangeMultiplier(2)->Range(16, 128);

void BM_EvalHeuristic(benchmark::State& state) {
  EvalWithMode(state, core::JoinOrderMode::kHeuristic);
}
BENCHMARK(BM_EvalHeuristic)->RangeMultiplier(2)->Range(16, 128);

}  // namespace

int main(int argc, char** argv) {
  return mad::bench::RunBenchmarks(argc, argv);
}
