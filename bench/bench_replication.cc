// Replication benchmarks: acknowledgment-to-replica lag (the time from an
// insert ack on the primary until every replica has applied that epoch) and
// fleet read throughput, each swept over 1/2/4 replicas. Per-op lag samples
// feed the p50/p95/p99 sidecar fields; the replica fan-out lands in the
// sidecar's num_replicas field so the scaling curves survive archiving.
//
// The replicas are in-process ServerStates driven by real Replicator pumps
// over real loopback TCP against a real durable primary — the wire, the
// frame protocol, and the apply path are all in the measured loop; only the
// client connection of a production deployment is elided.
//
// Run:
//   ./build/bench/bench_replication
// Results also land in BENCH_bench_replication.json.

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "server/replication/replicator.h"
#include "server/server.h"
#include "server/state.h"

namespace mad {
namespace bench {
namespace {

using server::Json;
using server::Replicator;
using server::Server;
using server::ServerState;

constexpr const char* kShortestPath = R"(
.decl arc(from, to, c: min_real)
.decl path(from, mid, to, c: min_real)
.decl s(from, to, c: min_real)
.constraint arc(direct, Z, C).

path(X, direct, Y, C) :- arc(X, Y, C).
path(X, Z, Y, C) :- s(X, Z, C1), arc(Z, Y, C2), C = C1 + C2.
s(X, Y, C) :- C =r min D : path(X, Z, Y, D).

arc(a, b, 1).
arc(b, c, 2).
)";

std::string TempDir() {
  std::string tmpl = "/tmp/mad_bench_repl_XXXXXX";
  char* made = ::mkdtemp(tmpl.data());
  if (made == nullptr) std::abort();
  return tmpl;
}

/// Sorted-sample percentile in nanoseconds.
double Percentile(std::vector<double>* samples, double p) {
  if (samples->empty()) return 0;
  std::sort(samples->begin(), samples->end());
  size_t idx =
      static_cast<size_t>(p * static_cast<double>(samples->size() - 1));
  return (*samples)[idx];
}

std::string Batch(int i) {
  return "arc(n" + std::to_string(i % 23) + ", n" +
         std::to_string((i + 1) % 29) + ", " + std::to_string(1 + i % 5) +
         ").";
}

Json InsertRequest(const std::string& facts) {
  Json j = Json::Object();
  j.Set("verb", Json::Str("insert"));
  j.Set("facts", Json::Str(facts));
  return j;
}

/// A primary (durable, fsync off so the pipe — not the disk — is measured)
/// plus N pump-driven replicas, torn down in reverse order.
struct Fleet {
  std::unique_ptr<Server> primary;
  std::vector<std::unique_ptr<ServerState>> replicas;
  std::vector<std::unique_ptr<Replicator>> pumps;

  Fleet() = default;
  Fleet(Fleet&&) = default;
  Fleet& operator=(Fleet&&) = default;
  ~Fleet() {
    for (auto& pump : pumps) pump->Stop();
  }
};

Fleet StartFleet(int num_replicas) {
  Fleet fleet;
  ServerState::LoadOptions options;
  options.durability.data_dir = TempDir();
  options.durability.fsync = server::FsyncPolicy::kNever;
  options.durability.checkpoint_every_epochs = 0;
  options.durability.checkpoint_every_bytes = 0;
  auto state = ServerState::Load(kShortestPath, std::move(options));
  if (!state.ok()) std::abort();
  auto srv = Server::Start(std::move(*state), {});
  if (!srv.ok()) std::abort();
  fleet.primary = std::move(*srv);

  for (int r = 0; r < num_replicas; ++r) {
    ServerState::LoadOptions ropts;
    ropts.replica.enabled = true;
    ropts.replica.primary_host = "127.0.0.1";
    ropts.replica.primary_port = fleet.primary->port();
    auto replica = ServerState::Load(kShortestPath, std::move(ropts));
    if (!replica.ok()) std::abort();
    fleet.replicas.push_back(std::move(*replica));

    Replicator::Options popts;
    popts.primary_host = "127.0.0.1";
    popts.primary_port = fleet.primary->port();
    popts.program_text = kShortestPath;
    popts.poll_wait_ms = 500;  // long-poll: the primary wakes it per insert
    popts.seed = 1 + static_cast<uint64_t>(r);
    fleet.pumps.push_back(
        std::make_unique<Replicator>(fleet.replicas.back().get(), popts));
    fleet.pumps.back()->Start();
  }
  return fleet;
}

/// Ack-to-applied lag: one insert per iteration, then wait until every
/// replica has published that epoch. The sample is the wait alone — the
/// primary's own evaluation cost is excluded.
void BM_ReplicationLag(benchmark::State& state) {
  const int num_replicas = static_cast<int>(state.range(0));
  Fleet fleet = StartFleet(num_replicas);
  std::vector<double> samples;
  int i = 0;
  for (auto _ : state) {
    Json ack = fleet.primary->state().Handle(InsertRequest(Batch(i++)));
    if (!ack.At("ok").boolean) std::abort();
    const int64_t token = ack.IntOr("epoch", 0);
    auto t0 = std::chrono::steady_clock::now();
    for (auto& replica : fleet.replicas) {
      if (!replica->WaitForEpoch(token, std::chrono::seconds(30))) {
        std::abort();
      }
    }
    auto t1 = std::chrono::steady_clock::now();
    samples.push_back(
        std::chrono::duration<double, std::nano>(t1 - t0).count());
  }
  state.counters["p50_ns"] = Percentile(&samples, 0.50);
  state.counters["p95_ns"] = Percentile(&samples, 0.95);
  state.counters["p99_ns"] = Percentile(&samples, 0.99);
  state.counters["num_replicas"] = num_replicas;
}
BENCHMARK(BM_ReplicationLag)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMicrosecond);

/// Fleet read throughput: a caught-up fleet, one reader thread pinned per
/// replica, each hammering full-scan queries. items/s is total fleet reads.
void BM_ReplicaReadThroughput(benchmark::State& state) {
  const int num_replicas = static_cast<int>(state.range(0));
  Fleet fleet = StartFleet(num_replicas);
  for (int i = 0; i < 32; ++i) {
    Json ack = fleet.primary->state().Handle(InsertRequest(Batch(i)));
    if (!ack.At("ok").boolean) std::abort();
  }
  const int64_t head = fleet.primary->state().epoch();
  for (auto& replica : fleet.replicas) {
    if (!replica->WaitForEpoch(head, std::chrono::seconds(30))) std::abort();
  }

  constexpr int kReadsPerReplica = 64;
  Json query = Json::Object();
  query.Set("verb", Json::Str("query"));
  query.Set("pred", Json::Str("s"));
  for (auto _ : state) {
    std::vector<std::thread> readers;
    readers.reserve(fleet.replicas.size());
    for (auto& replica : fleet.replicas) {
      readers.emplace_back([&replica, &query] {
        for (int i = 0; i < kReadsPerReplica; ++i) {
          Json response = replica->Handle(query);
          if (!response.At("ok").boolean) std::abort();
          benchmark::DoNotOptimize(response.obj.size());
        }
      });
    }
    for (std::thread& t : readers) t.join();
  }
  state.SetItemsProcessed(state.iterations() * kReadsPerReplica *
                          num_replicas);
  state.counters["num_replicas"] = num_replicas;
}
BENCHMARK(BM_ReplicaReadThroughput)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace mad

int main(int argc, char** argv) { return mad::bench::RunBenchmarks(argc, argv); }
