// Experiment S5: the Section 5 semantic comparisons, quantified.
//  (a) Definedness: a Kemp-Stuckey-style fully-defined-before-aggregation
//      semantics vs our least model, as cycle coverage grows. Expected
//      shape: the fully-defined semantics is total on DAGs and collapses
//      toward 0% defined as cycles spread; our least model is always total.
//  (b) The GGZ/greedy envelope: greedy evaluation is exact on non-negative
//      weights and loses the least model as negative edges appear (counted
//      as greedy violations and wrong s-facts).
//  (c) The Mumick et al. r-monotonicity classification of the paper's
//      programs (Section 5.2).

#include <benchmark/benchmark.h>

#include <cmath>
#include <iostream>

#include "analysis/admissibility.h"
#include "baselines/fully_defined.h"
#include "baselines/kemp_stuckey.h"
#include "baselines/shortest_path.h"
#include "bench_common.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace {

using namespace mad;
using baselines::Graph;
using bench::CachedProgram;
using bench::RunProgram;

Graph MixedGraph(int n, double cycle_fraction, uint64_t seed) {
  // A layered DAG with a fraction of back-edges: cycle_fraction = 0 is
  // modularly stratified; larger values put more pairs on cycles.
  Random rng(seed);
  Graph g = workloads::LayeredDag(n / 4, 4, 2, {1.0, 5.0}, &rng);
  int back_edges = static_cast<int>(cycle_fraction * g.num_edges);
  for (int i = 0; i < back_edges; ++i) {
    int u = static_cast<int>(rng.Uniform(0, g.num_nodes - 1));
    int v = static_cast<int>(rng.Uniform(0, g.num_nodes - 1));
    if (u > v) g.AddEdge(u, v, rng.UniformReal(1.0, 5.0));
  }
  return g;
}

void PrintDefinednessTable() {
  std::cout << "=== S5(a): definedness — fully-defined-before-aggregation "
               "(Kemp-Stuckey style) vs the monotone least model ===\n";
  TablePrinter table({"back-edge fraction", "KS defined", "KS undefined "
                      "atoms", "least model defined"});
  for (double f : {0.0, 0.05, 0.15, 0.4}) {
    Graph g = MixedGraph(48, f, 17);
    auto wf = baselines::KempStuckeyShortestPaths(g);
    table.AddRow({StrPrintf("%.2f", f),
                  StrPrintf("%.1f%%", 100 * wf.DefinedFraction()),
                  std::to_string(wf.CountUndefined()), "100.0%"});
  }
  table.Print(std::cout);
  std::cout << "(our least model is two-valued on every instance — "
               "Corollary 3.5)\n\n";

  std::cout << "=== S5(a'): the same comparison on company control "
               "(ownership cycles) ===\n";
  TablePrinter cc_table({"companies", "cycle style", "KS defined",
                         "KS undefined", "least model defined"});
  {
    // Acyclic chain: fully defined.
    baselines::OwnershipNetwork chain;
    chain.Resize(20);
    for (int i = 0; i + 1 < 20; ++i) chain.shares[i][i + 1] = 0.6;
    auto wf = baselines::KempStuckeyCompanyControl(chain);
    cc_table.AddRow({"20", "chain (acyclic)",
                     StrPrintf("%.1f%%", 100 * wf.DefinedFraction()),
                     std::to_string(wf.CountUndefined()), "100.0%"});
    // Mutual-ownership pairs: the Section 5.6 situation, scaled up.
    baselines::OwnershipNetwork mutual;
    mutual.Resize(20);
    for (int i = 0; i + 1 < 20; i += 2) {
      mutual.shares[i][i + 1] = 0.6;
      mutual.shares[i + 1][i] = 0.6;
    }
    wf = baselines::KempStuckeyCompanyControl(mutual);
    cc_table.AddRow({"20", "mutual pairs (cyclic)",
                     StrPrintf("%.1f%%", 100 * wf.DefinedFraction()),
                     std::to_string(wf.CountUndefined()), "100.0%"});
    Random rng(23);
    auto random_net = workloads::RandomOwnership(20, 4, 0.4, &rng);
    wf = baselines::KempStuckeyCompanyControl(random_net);
    cc_table.AddRow({"20", "random",
                     StrPrintf("%.1f%%", 100 * wf.DefinedFraction()),
                     std::to_string(wf.CountUndefined()), "100.0%"});
  }
  cc_table.Print(std::cout);
  std::cout << "\n";

  std::cout << "=== S5(a''): generic fully-defined evaluator on every "
               "canonical program ===\n";
  TablePrinter g_table({"program", "instance", "settled", "undefined",
                        "defined fraction"});
  struct Case {
    const char* name;
    std::string text;
  };
  std::vector<Case> cases = {
      {"shortest-path (Ex 3.1 cycle)",
       std::string(workloads::kShortestPathProgram) +
           "arc(a, b, 1).\narc(b, b, 0).\n"},
      {"shortest-path (acyclic)",
       std::string(workloads::kShortestPathProgram) +
           "arc(a, b, 1).\narc(b, c, 2).\narc(a, c, 9).\n"},
      {"company-control (Sec 5.6)",
       std::string(workloads::kCompanyControlProgram) +
           "s(a, b, 0.3).\ns(a, c, 0.3).\ns(b, c, 0.6).\ns(c, b, 0.6).\n"},
      {"circuit (self-fed AND)",
       std::string(workloads::kCircuitProgram) +
           "gate(g1, and).\nconnect(g1, g1).\ngate(g2, or).\n"
           "connect(g2, w1).\ninput(w1, 1).\n"},
      {"halfsum (Ex 5.1)", workloads::kHalfsumProgram},
  };
  for (const Case& c : cases) {
    core::EvalOptions options;
    options.max_iterations = 200;  // halfsum never terminates exactly
    options.epsilon = 1e-12;
    auto run = core::ParseAndRun(c.text, options);
    if (!run.ok()) continue;
    baselines::FullyDefinedEvaluator fd(*run->program, run->result.db);
    if (!fd.Evaluate().ok()) continue;
    g_table.AddRow({c.name, "paper instance",
                    std::to_string(fd.CountSettled()),
                    std::to_string(fd.CountUndefined()),
                    StrPrintf("%.1f%%", 100 * fd.DefinedFraction())});
  }
  g_table.Print(std::cout);
  std::cout << "(the monotone least model is 100% defined on all of these)\n\n";
}

void PrintGreedyEnvelopeTable() {
  std::cout << "=== S5(b): the greedy/GGZ envelope on negative weights "
               "(Section 5.4) ===\n";
  TablePrinter table({"negative-edge fraction", "greedy violations",
                      "wrong s-facts", "exact s-facts"});
  const datalog::Program& program =
      CachedProgram(workloads::kShortestPathProgram);
  for (double neg : {0.0, 0.2, 0.5}) {
    Random rng(19);
    Graph g = workloads::LayeredDag(8, 4, 2, {1.0, 10.0}, &rng);
    g = workloads::WithNegativeWeights(g, neg, &rng);

    datalog::Database edb;
    (void)workloads::AddGraphFacts(program, g, &edb);
    auto exact = RunProgram(program, edb, core::Strategy::kSemiNaive);
    auto greedy = RunProgram(program, edb, core::Strategy::kGreedy);

    // Compare the s relations.
    const auto* s_pred = program.FindPredicate("s");
    const auto* exact_s = exact.db.Find(s_pred);
    const auto* greedy_s = greedy.db.Find(s_pred);
    int wrong = 0, total = 0;
    if (exact_s != nullptr) {
      exact_s->ForEach([&](const datalog::Tuple& key,
                           const datalog::Value& cost) {
        ++total;
        const datalog::Value* gv =
            greedy_s != nullptr ? greedy_s->Find(key) : nullptr;
        if (gv == nullptr ||
            std::fabs(gv->AsDouble() - cost.AsDouble()) > 1e-9) {
          ++wrong;
        }
      });
    }
    table.AddRow({StrPrintf("%.1f", neg),
                  std::to_string(greedy.stats.greedy_violations),
                  std::to_string(wrong), std::to_string(total)});
  }
  table.Print(std::cout);
  std::cout << "(violations and wrong facts appear exactly when weights go "
               "negative; the general fixpoint stays exact)\n\n";
}

void PrintRMonotonicTable() {
  std::cout << "=== S5(c): Section 5.2 classification — our monotonicity vs "
               "Mumick et al.'s r-monotonicity ===\n";
  TablePrinter table({"program", "admissible (monotonic)", "r-monotonic"});
  struct Row {
    const char* name;
    const char* text;
  };
  for (const Row& row : {Row{"shortest-path (Ex 2.6)",
                             workloads::kShortestPathProgram},
                         Row{"company-control (Ex 2.7)",
                             workloads::kCompanyControlProgram},
                         Row{"company-control rewrite (Sec 5.2)",
                             workloads::kCompanyControlRMonotonic},
                         Row{"party (Ex 4.3)", workloads::kPartyProgram},
                         Row{"circuit (Ex 4.4)", workloads::kCircuitProgram},
                         Row{"halfsum (Ex 5.1)",
                             workloads::kHalfsumProgram}}) {
    const datalog::Program& program = CachedProgram(row.text);
    analysis::DependencyGraph graph(program);
    bool admissible = analysis::CheckAdmissible(program, graph).ok();
    bool r_mono = analysis::IsProgramRMonotonic(program);
    table.AddRow({row.name, admissible ? "yes" : "no",
                  r_mono ? "yes" : "no"});
  }
  table.Print(std::cout);
  std::cout << "(every program is monotonic in the paper's sense; only the "
               "Section 5.2 rewrite is r-monotonic)\n\n";
}

void BM_KempStuckeyDefinedness(benchmark::State& state) {
  double f = state.range(0) / 100.0;
  Graph g = MixedGraph(48, f, 17);
  for (auto _ : state) {
    auto wf = baselines::KempStuckeyShortestPaths(g);
    benchmark::DoNotOptimize(wf);
  }
}

BENCHMARK(BM_KempStuckeyDefinedness)->Arg(0)->Arg(15)->Arg(40)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  PrintDefinednessTable();
  PrintGreedyEnvelopeTable();
  PrintRMonotonicTable();
  return mad::bench::RunBenchmarks(argc, argv);
}
