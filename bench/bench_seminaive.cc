// Experiment S6.2: bottom-up evaluation of T_P — naive vs semi-naive vs
// greedy across the paper's three recursive-aggregation workloads.
// Expected shape: identical least models; semi-naive's derivation count
// grows like the output size while naive's grows like output × rounds, so
// the gap widens with instance size (dramatically on long chains).

#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_common.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace {

using namespace mad;
using bench::CachedProgram;
using bench::RunProgram;

void PrintDerivationTable() {
  std::cout << "=== S6.2: naive vs semi-naive work counts ===\n";
  TablePrinter table({"workload", "size", "rounds", "naive derivs",
                      "semi derivs", "ratio", "naive (ms)", "semi (ms)"});

  auto add_row = [&](const char* name, int size,
                     const datalog::Program& program,
                     const datalog::Database& edb) {
    auto naive = RunProgram(program, edb, core::Strategy::kNaive);
    auto semi = RunProgram(program, edb, core::Strategy::kSemiNaive);
    table.AddRow(
        {name, std::to_string(size), std::to_string(naive.stats.iterations),
         std::to_string(naive.stats.derivations),
         std::to_string(semi.stats.derivations),
         StrPrintf("%.1fx", static_cast<double>(naive.stats.derivations) /
                                std::max<int64_t>(1, semi.stats.derivations)),
         StrPrintf("%.2f", naive.stats.wall_seconds * 1e3),
         StrPrintf("%.2f", semi.stats.wall_seconds * 1e3)});
  };

  // Long chains: the adversarial case for naive evaluation.
  for (int len : {20, 40, 80}) {
    Random rng(1);
    auto g = workloads::LayeredDag(len, 1, 1, {1.0, 1.0}, &rng);
    const datalog::Program& program =
        CachedProgram(workloads::kShortestPathProgram);
    datalog::Database edb;
    (void)workloads::AddGraphFacts(program, g, &edb);
    add_row("sp-chain", len, program, edb);
  }
  // Random graphs.
  for (int n : {20, 40}) {
    Random rng(2);
    auto g = workloads::RandomGraph(n, 4 * n, {1.0, 9.0}, &rng);
    const datalog::Program& program =
        CachedProgram(workloads::kShortestPathProgram);
    datalog::Database edb;
    (void)workloads::AddGraphFacts(program, g, &edb);
    add_row("sp-er", n, program, edb);
  }
  // Company control.
  for (int n : {30, 60}) {
    Random rng(3);
    auto net = workloads::RandomOwnership(n, 4, 0.5, &rng);
    const datalog::Program& program =
        CachedProgram(workloads::kCompanyControlProgram);
    datalog::Database edb;
    (void)workloads::AddOwnershipFacts(program, net, &edb);
    add_row("company-control", n, program, edb);
  }
  // Circuits.
  for (int gates : {200, 800}) {
    Random rng(4);
    auto c = workloads::RandomCircuit(16, gates, 4, 0.25, &rng);
    const datalog::Program& program =
        CachedProgram(workloads::kCircuitProgram);
    datalog::Database edb;
    (void)workloads::AddCircuitFacts(program, c, &edb);
    add_row("circuit", gates, program, edb);
  }
  table.Print(std::cout);
  std::cout << "\n";
}

void BM_Strategy(benchmark::State& state, core::Strategy strategy) {
  int len = static_cast<int>(state.range(0));
  Random rng(1);
  auto g = workloads::LayeredDag(len, 1, 1, {1.0, 1.0}, &rng);
  const datalog::Program& program =
      CachedProgram(workloads::kShortestPathProgram);
  datalog::Database edb;
  (void)workloads::AddGraphFacts(program, g, &edb);
  for (auto _ : state) {
    auto result = RunProgram(program, edb, strategy);
    benchmark::DoNotOptimize(result);
  }
}

void RegisterAll() {
  for (int len : {20, 40, 80}) {
    benchmark::RegisterBenchmark(
        StrPrintf("BM_Chain/naive/len%d", len).c_str(), BM_Strategy,
        core::Strategy::kNaive)
        ->Arg(len)
        ->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark(
        StrPrintf("BM_Chain/seminaive/len%d", len).c_str(), BM_Strategy,
        core::Strategy::kSemiNaive)
        ->Arg(len)
        ->Unit(benchmark::kMillisecond);
  }
}

}  // namespace

int main(int argc, char** argv) {
  PrintDerivationTable();
  RegisterAll();
  return mad::bench::RunBenchmarks(argc, argv);
}
