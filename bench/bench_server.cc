// Serving-layer benchmarks: closed-loop request latency against an
// in-process madd (real loopback TCP, real frames) for each verb, a reader
// fan-out to measure snapshot-pinning contention, and the writer's insert
// path. Per-op latencies feed the p50/p95/p99 sidecar fields via the
// "p50_ns"/"p95_ns"/"p99_ns" counters (see JsonSidecarReporter).
//
// Run:
//   ./build/bench/bench_server
// Results also land in BENCH_bench_server.json.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "server/client.h"
#include "server/server.h"
#include "server/state.h"
#include "util/string_util.h"

namespace mad {
namespace bench {
namespace {

using server::Client;
using server::Json;
using server::Server;
using server::ServerState;

/// Program + EDB served by every benchmark: shortest paths over a random
/// graph, the paper's flagship workload.
std::string ServedProgram(int nodes, int edges) {
  std::string text = workloads::kShortestPathProgram;
  Random rng(42);
  baselines::Graph g = workloads::RandomGraph(nodes, edges, {1.0, 9.0}, &rng);
  for (int u = 0; u < g.num_nodes; ++u) {
    for (const baselines::Graph::Edge& e : g.adj[u]) {
      text += StrPrintf("arc(%s, %s, %g).\n",
                        baselines::Graph::NodeName(u).c_str(),
                        baselines::Graph::NodeName(e.to).c_str(), e.weight);
    }
  }
  return text;
}

/// One server per benchmark invocation; ephemeral port.
std::unique_ptr<Server> StartServer(int nodes, int edges) {
  auto state = ServerState::Load(ServedProgram(nodes, edges), {});
  if (!state.ok()) {
    std::fprintf(stderr, "bench_server: load failed: %s\n",
                 state.status().ToString().c_str());
    std::abort();
  }
  auto srv = Server::Start(std::move(*state), {});
  if (!srv.ok()) {
    std::fprintf(stderr, "bench_server: start failed: %s\n",
                 srv.status().ToString().c_str());
    std::abort();
  }
  return std::move(*srv);
}

Client MustConnect(const Server& server) {
  auto c = Client::Connect("127.0.0.1", server.port());
  if (!c.ok()) {
    std::fprintf(stderr, "bench_server: connect failed: %s\n",
                 c.status().ToString().c_str());
    std::abort();
  }
  return std::move(*c);
}

/// Sorted-sample percentile in nanoseconds.
double Percentile(std::vector<double>* samples, double p) {
  if (samples->empty()) return 0;
  std::sort(samples->begin(), samples->end());
  size_t idx =
      static_cast<size_t>(p * static_cast<double>(samples->size() - 1));
  return (*samples)[idx];
}

void SetLatencyCounters(benchmark::State& state,
                        std::vector<double>* samples) {
  state.counters["p50_ns"] = Percentile(samples, 0.50);
  state.counters["p95_ns"] = Percentile(samples, 0.95);
  state.counters["p99_ns"] = Percentile(samples, 0.99);
}

/// Runs `call` once per benchmark iteration, recording per-op latency.
template <typename Fn>
void ClosedLoop(benchmark::State& state, Fn&& call) {
  std::vector<double> samples;
  for (auto _ : state) {
    auto t0 = std::chrono::steady_clock::now();
    call();
    auto t1 = std::chrono::steady_clock::now();
    samples.push_back(
        std::chrono::duration<double, std::nano>(t1 - t0).count());
  }
  SetLatencyCounters(state, &samples);
}

void BM_ServerPing(benchmark::State& state) {
  auto server = StartServer(20, 60);
  Client client = MustConnect(*server);
  ClosedLoop(state, [&] {
    auto r = client.Ping();
    if (!r.ok()) std::abort();
    benchmark::DoNotOptimize(r->obj.size());
  });
}
BENCHMARK(BM_ServerPing);

void BM_ServerQueryPoint(benchmark::State& state) {
  auto server = StartServer(20, 60);
  Client client = MustConnect(*server);
  Json req = Json::Object();
  req.Set("verb", Json::Str("query"));
  req.Set("pred", Json::Str("s"));
  Json key = Json::Array();
  key.Push(Json::Str("n0"));
  key.Push(Json::Str("n1"));
  req.Set("key", std::move(key));
  ClosedLoop(state, [&] {
    auto r = client.Call(req);
    if (!r.ok()) std::abort();
    benchmark::DoNotOptimize(r->obj.size());
  });
}
BENCHMARK(BM_ServerQueryPoint);

void BM_ServerQueryScan(benchmark::State& state) {
  const int nodes = static_cast<int>(state.range(0));
  auto server = StartServer(nodes, 3 * nodes);
  Client client = MustConnect(*server);
  Json req = Json::Object();
  req.Set("verb", Json::Str("query"));
  req.Set("pred", Json::Str("s"));
  ClosedLoop(state, [&] {
    auto r = client.Call(req);
    if (!r.ok()) std::abort();
    benchmark::DoNotOptimize(r->obj.size());
  });
}
BENCHMARK(BM_ServerQueryScan)->Arg(10)->Arg(30);

void BM_ServerInsertIdempotent(benchmark::State& state) {
  // Re-inserting a known fact: the full writer path (parse, Update, epoch
  // bump, snapshot publish) with a no-op delta-closure — the floor of
  // insert latency.
  auto server = StartServer(20, 60);
  Client client = MustConnect(*server);
  ClosedLoop(state, [&] {
    auto r = client.Insert("arc(n0, n1, 1).");
    if (!r.ok()) std::abort();
    benchmark::DoNotOptimize(r->obj.size());
  });
}
BENCHMARK(BM_ServerInsertIdempotent);

void BM_ServerConcurrentReaders(benchmark::State& state) {
  // Fixed background read pressure; the measured client's latency shows the
  // cost of snapshot pinning under contention.
  const int kBackground = static_cast<int>(state.range(0));
  auto server = StartServer(20, 60);
  std::atomic<bool> stop{false};
  std::vector<std::thread> background;
  for (int i = 0; i < kBackground; ++i) {
    background.emplace_back([&] {
      Client c = MustConnect(*server);
      while (!stop.load(std::memory_order_acquire)) {
        if (!c.Dump().ok()) return;
      }
    });
  }
  Client client = MustConnect(*server);
  ClosedLoop(state, [&] {
    auto r = client.Dump();
    if (!r.ok()) std::abort();
    benchmark::DoNotOptimize(r->obj.size());
  });
  stop.store(true, std::memory_order_release);
  server->RequestShutdown();
  for (std::thread& t : background) t.join();
}
BENCHMARK(BM_ServerConcurrentReaders)->Arg(0)->Arg(4)->Arg(16);

}  // namespace
}  // namespace bench
}  // namespace mad

int main(int argc, char** argv) {
  return mad::bench::RunBenchmarks(argc, argv);
}
