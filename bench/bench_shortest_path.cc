// Experiment E2.6/E3.1: shortest paths. Regenerates the comparison the
// paper's motivating example implies: the monotone lattice engine (three
// strategies) against the classical algorithms, across graph families and
// sizes. Expected shape: all evaluators agree; Dijkstra wins by a constant
// interpretation-overhead factor; semi-naive beats naive by a growing
// factor; greedy sits between semi-naive and Dijkstra on non-negative
// weights.

#include <benchmark/benchmark.h>

#include <chrono>
#include <iostream>

#include "baselines/shortest_path.h"
#include "bench_common.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace {

using namespace mad;
using baselines::Graph;
using bench::CachedProgram;
using bench::RunProgram;

Graph MakeGraph(int family, int n, uint64_t seed) {
  Random rng(seed);
  switch (family) {
    case 0:
      return workloads::RandomGraph(n, 4 * n, {1.0, 10.0}, &rng);
    case 1:
      return workloads::CycleGraph(n, n / 2, {1.0, 10.0}, &rng);
    default:
      return workloads::GridGraph(n, n, {1.0, 10.0}, &rng);
  }
}

const char* FamilyName(int family) {
  switch (family) {
    case 0:
      return "er";
    case 1:
      return "cycle";
    default:
      return "grid";
  }
}

void PrintComparisonTable() {
  std::cout << "=== E2.6: shortest-path program vs classical algorithms "
               "(ER graphs, m = 4n) ===\n";
  TablePrinter table({"n", "naive (ms)", "semi-naive (ms)", "greedy (ms)",
                      "dijkstra (ms)", "naive/semi", "semi derivations",
                      "naive derivations"});
  const datalog::Program& program =
      CachedProgram(workloads::kShortestPathProgram);
  for (int n : {20, 40, 80}) {
    Graph g = MakeGraph(0, n, 97);
    datalog::Database edb;
    (void)workloads::AddGraphFacts(program, g, &edb);

    auto naive = RunProgram(program, edb, core::Strategy::kNaive);
    auto semi = RunProgram(program, edb, core::Strategy::kSemiNaive);
    auto greedy = RunProgram(program, edb, core::Strategy::kGreedy);

    auto t0 = std::chrono::steady_clock::now();
    auto dist = baselines::AllPairsNonEmptyDijkstra(g);
    double dijkstra_ms = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - t0)
                             .count();
    benchmark::DoNotOptimize(dist);

    table.AddRow({std::to_string(n),
                  StrPrintf("%.2f", naive.stats.wall_seconds * 1e3),
                  StrPrintf("%.2f", semi.stats.wall_seconds * 1e3),
                  StrPrintf("%.2f", greedy.stats.wall_seconds * 1e3),
                  StrPrintf("%.3f", dijkstra_ms),
                  StrPrintf("%.1fx", naive.stats.wall_seconds /
                                         semi.stats.wall_seconds),
                  std::to_string(semi.stats.derivations),
                  std::to_string(naive.stats.derivations)});
  }
  table.Print(std::cout);
  std::cout << "\n";
}

void BM_Engine(benchmark::State& state, core::Strategy strategy) {
  int family = static_cast<int>(state.range(0));
  int n = static_cast<int>(state.range(1));
  Graph g = MakeGraph(family, n, 11);
  const datalog::Program& program =
      CachedProgram(workloads::kShortestPathProgram);
  datalog::Database edb;
  (void)workloads::AddGraphFacts(program, g, &edb);
  int64_t derivations = 0;
  for (auto _ : state) {
    auto result = RunProgram(program, edb, strategy);
    derivations = result.stats.derivations;
    benchmark::DoNotOptimize(result);
  }
  state.counters["derivations"] = static_cast<double>(derivations);
  state.SetLabel(FamilyName(family));
}

void BM_Dijkstra(benchmark::State& state) {
  int family = static_cast<int>(state.range(0));
  int n = static_cast<int>(state.range(1));
  Graph g = MakeGraph(family, n, 11);
  for (auto _ : state) {
    auto dist = baselines::AllPairsNonEmptyDijkstra(g);
    benchmark::DoNotOptimize(dist);
  }
  state.SetLabel(FamilyName(family));
}

void BM_BellmanFord(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Graph g = MakeGraph(0, n, 11);
  for (auto _ : state) {
    for (int s = 0; s < g.num_nodes; ++s) {
      auto d = baselines::BellmanFord(g, s);
      benchmark::DoNotOptimize(d);
    }
  }
}

void RegisterAll() {
  for (int family : {0, 1, 2}) {
    for (int n : {16, 32, 64}) {
      int size = family == 2 ? n / 4 : n;  // grid n is the side length
      benchmark::RegisterBenchmark(
          StrPrintf("BM_ShortestPath/naive/%s/n%d", FamilyName(family), size)
              .c_str(),
          BM_Engine, core::Strategy::kNaive)
          ->Args({family, size})
          ->Unit(benchmark::kMillisecond);
      benchmark::RegisterBenchmark(
          StrPrintf("BM_ShortestPath/seminaive/%s/n%d", FamilyName(family),
                    size)
              .c_str(),
          BM_Engine, core::Strategy::kSemiNaive)
          ->Args({family, size})
          ->Unit(benchmark::kMillisecond);
      benchmark::RegisterBenchmark(
          StrPrintf("BM_ShortestPath/greedy/%s/n%d", FamilyName(family), size)
              .c_str(),
          BM_Engine, core::Strategy::kGreedy)
          ->Args({family, size})
          ->Unit(benchmark::kMillisecond);
      benchmark::RegisterBenchmark(
          StrPrintf("BM_ShortestPath/dijkstra/%s/n%d", FamilyName(family),
                    size)
              .c_str(),
          BM_Dijkstra)
          ->Args({family, size})
          ->Unit(benchmark::kMillisecond);
    }
  }
  benchmark::RegisterBenchmark("BM_ShortestPath/bellmanford/er/n64",
                               BM_BellmanFord)
      ->Arg(64)
      ->Unit(benchmark::kMillisecond);
}

}  // namespace

int main(int argc, char** argv) {
  PrintComparisonTable();
  RegisterAll();
  return mad::bench::RunBenchmarks(argc, argv);
}
