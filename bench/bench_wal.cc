// Durability cost model: what does the WAL charge per accepted batch, and
// what does a restart cost as the log grows? Three families:
//
//   BM_WalAppend/<policy>     append throughput under fsync=always vs never —
//                             the price of "acknowledged means durable".
//   BM_WalSegmentRead/<n>     raw segment scan (CRC + framing) per record.
//   BM_Recovery/<n>           full ServerState::Load over a data dir holding
//                             n logged batches — replay-only vs from a
//                             checkpoint (which shortens replay to zero).
//
// Results land in the BENCH_bench_wal.json sidecar; EXPERIMENTS.md cites
// them in the recovery-time entry.

#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "server/json.h"
#include "server/state.h"
#include "server/wal.h"
#include "util/posix_file.h"

namespace mad {
namespace bench {
namespace {

constexpr const char* kProgram = R"(
.decl arc(from, to, c: min_real)
.decl path(from, mid, to, c: min_real)
.decl s(from, to, c: min_real)
.constraint arc(direct, Z, C).

path(X, direct, Y, C) :- arc(X, Y, C).
path(X, Z, Y, C) :- s(X, Z, C1), arc(Z, Y, C2), C = C1 + C2.
s(X, Y, C) :- C =r min D : path(X, Z, Y, D).

arc(v0, v1, 1).
)";

std::string TempDir() {
  std::string tmpl = "/tmp/mad_bench_wal_XXXXXX";
  if (::mkdtemp(tmpl.data()) == nullptr) {
    std::perror("mkdtemp");
    std::abort();
  }
  return tmpl;
}

void RemoveTree(const std::string& dir) {
  auto entries = util::ListDir(dir);
  if (entries.ok()) {
    for (const std::string& name : *entries) {
      (void)util::RemoveFile(dir + "/" + name);
    }
  }
  ::rmdir(dir.c_str());
}

/// One realistic insert batch: a handful of arcs, ~100 bytes of fact text.
std::string Batch(int i) {
  return StrPrintf("arc(v%d, v%d, %d). arc(v%d, v%d, %d).", i % 97,
                   (i + 1) % 97, 1 + i % 7, (i + 13) % 97, (i + 14) % 97,
                   2 + i % 5);
}

void BM_WalAppend(benchmark::State& state) {
  const auto policy = state.range(0) == 0 ? server::FsyncPolicy::kAlways
                                          : server::FsyncPolicy::kNever;
  const std::string dir = TempDir();
  auto writer = server::WalWriter::Create(dir, 0, policy, nullptr);
  if (!writer.ok()) {
    state.SkipWithError(writer.status().ToString().c_str());
    RemoveTree(dir);
    return;
  }
  server::WalRecord record;
  record.type = server::WalRecordType::kInsert;
  int64_t bytes = 0;
  int i = 0;
  for (auto _ : state) {
    record.epoch = ++i;
    record.facts_text = Batch(i);
    Status st = writer->Append(record);
    if (!st.ok()) {
      state.SkipWithError(st.ToString().c_str());
      break;
    }
    bytes += static_cast<int64_t>(server::EncodeWalRecord(record).size());
  }
  state.SetBytesProcessed(bytes);
  state.SetLabel(server::FsyncPolicyName(policy));
  RemoveTree(dir);
}
BENCHMARK(BM_WalAppend)->Arg(0)->Arg(1)->ArgNames({"fsync"});

void BM_WalSegmentRead(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const std::string dir = TempDir();
  {
    auto writer =
        server::WalWriter::Create(dir, 0, server::FsyncPolicy::kNever, nullptr);
    server::WalRecord record;
    for (int i = 0; i < n; ++i) {
      record.epoch = i + 1;
      record.facts_text = Batch(i);
      (void)writer->Append(record);
    }
  }
  const std::string path = dir + "/" + server::WalSegmentName(0);
  int64_t bytes = 0;
  for (auto _ : state) {
    auto read = server::ReadWalSegment(path);
    if (!read.ok() || static_cast<int>(read->records.size()) != n) {
      state.SkipWithError("segment read failed");
      break;
    }
    bytes += read->valid_bytes;
  }
  state.SetBytesProcessed(bytes);
  RemoveTree(dir);
}
BENCHMARK(BM_WalSegmentRead)->Arg(64)->Arg(512)->Arg(4096)->ArgNames({"recs"});

/// Builds a data dir with `n` accepted batches. With `checkpoint` the final
/// state is checkpointed (sync verb) so recovery replays nothing; without,
/// the full WAL replays at Load.
std::string PrepareDataDir(int n, bool checkpoint) {
  const std::string dir = TempDir();
  server::ServerState::LoadOptions load;
  load.durability.data_dir = dir;
  load.durability.fsync = server::FsyncPolicy::kNever;
  load.durability.checkpoint_every_epochs = 0;  // only explicit checkpoints
  load.durability.checkpoint_every_bytes = 0;
  load.durability.verify_recovery = false;
  auto state = server::ServerState::Load(kProgram, load);
  if (!state.ok()) {
    std::fprintf(stderr, "bench_wal: load failed: %s\n",
                 state.status().ToString().c_str());
    std::abort();
  }
  for (int i = 0; i < n; ++i) {
    server::Json request = server::Json::Object();
    request.Set("verb", server::Json::Str("insert"));
    request.Set("facts", server::Json::Str(Batch(i)));
    server::Json response = (*state)->Handle(request);
    if (!response.At("ok").boolean) {
      std::fprintf(stderr, "bench_wal: insert %d refused\n", i);
      std::abort();
    }
  }
  if (checkpoint) {
    server::Json request = server::Json::Object();
    request.Set("verb", server::Json::Str("sync"));
    request.Set("checkpoint", server::Json::Bool(true));
    (void)(*state)->Handle(request);
  }
  return dir;
}

/// Copies the template data dir so every Load sees the same on-disk state
/// (Load itself rotates to a fresh segment, which would otherwise pile up).
std::string CloneDataDir(const std::string& src) {
  const std::string dst = TempDir();
  auto entries = util::ListDir(src);
  for (const std::string& name : *entries) {
    auto bytes = util::ReadFileToString(src + "/" + name);
    if (!bytes.ok() ||
        !util::WriteFileAtomic(dst + "/" + name, *bytes, nullptr).ok()) {
      std::fprintf(stderr, "bench_wal: clone failed for %s\n", name.c_str());
      std::abort();
    }
  }
  return dst;
}

void BM_Recovery(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const bool checkpointed = state.range(1) != 0;
  const std::string tmpl = PrepareDataDir(n, checkpointed);
  for (auto _ : state) {
    state.PauseTiming();
    const std::string dir = CloneDataDir(tmpl);
    server::ServerState::LoadOptions load;
    load.durability.data_dir = dir;
    load.durability.fsync = server::FsyncPolicy::kNever;
    load.durability.verify_recovery = false;
    state.ResumeTiming();
    auto recovered = server::ServerState::Load(kProgram, load);
    state.PauseTiming();
    if (!recovered.ok()) {
      state.SkipWithError(recovered.status().ToString().c_str());
      RemoveTree(dir);
      state.ResumeTiming();
      break;
    }
    recovered->reset();  // close the rotated segment before deleting
    RemoveTree(dir);
    state.ResumeTiming();
  }
  state.SetLabel(checkpointed ? "from-checkpoint" : "replay-only");
  RemoveTree(tmpl);
}
BENCHMARK(BM_Recovery)
    ->Args({64, 0})
    ->Args({64, 1})
    ->Args({512, 0})
    ->Args({512, 1})
    ->ArgNames({"recs", "ckpt"})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace mad

int main(int argc, char** argv) {
  return mad::bench::RunBenchmarks(argc, argv);
}
