file(REMOVE_RECURSE
  "CMakeFiles/bench_company_control.dir/bench_company_control.cc.o"
  "CMakeFiles/bench_company_control.dir/bench_company_control.cc.o.d"
  "bench_company_control"
  "bench_company_control.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_company_control.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
