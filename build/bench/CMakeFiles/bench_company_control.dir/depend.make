# Empty dependencies file for bench_company_control.
# This may be replaced when dependencies are built.
