file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_aggregates.dir/bench_fig1_aggregates.cc.o"
  "CMakeFiles/bench_fig1_aggregates.dir/bench_fig1_aggregates.cc.o.d"
  "bench_fig1_aggregates"
  "bench_fig1_aggregates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_aggregates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
