# Empty dependencies file for bench_fig1_aggregates.
# This may be replaced when dependencies are built.
