file(REMOVE_RECURSE
  "CMakeFiles/bench_halfsum.dir/bench_halfsum.cc.o"
  "CMakeFiles/bench_halfsum.dir/bench_halfsum.cc.o.d"
  "bench_halfsum"
  "bench_halfsum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_halfsum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
