# Empty dependencies file for bench_halfsum.
# This may be replaced when dependencies are built.
