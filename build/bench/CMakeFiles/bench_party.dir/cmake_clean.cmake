file(REMOVE_RECURSE
  "CMakeFiles/bench_party.dir/bench_party.cc.o"
  "CMakeFiles/bench_party.dir/bench_party.cc.o.d"
  "bench_party"
  "bench_party.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_party.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
