# Empty dependencies file for bench_party.
# This may be replaced when dependencies are built.
