file(REMOVE_RECURSE
  "CMakeFiles/bench_seminaive.dir/bench_seminaive.cc.o"
  "CMakeFiles/bench_seminaive.dir/bench_seminaive.cc.o.d"
  "bench_seminaive"
  "bench_seminaive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_seminaive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
