# Empty compiler generated dependencies file for bench_seminaive.
# This may be replaced when dependencies are built.
