file(REMOVE_RECURSE
  "CMakeFiles/bench_shortest_path.dir/bench_shortest_path.cc.o"
  "CMakeFiles/bench_shortest_path.dir/bench_shortest_path.cc.o.d"
  "bench_shortest_path"
  "bench_shortest_path.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_shortest_path.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
