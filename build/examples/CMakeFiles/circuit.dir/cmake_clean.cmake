file(REMOVE_RECURSE
  "CMakeFiles/circuit.dir/circuit.cpp.o"
  "CMakeFiles/circuit.dir/circuit.cpp.o.d"
  "circuit"
  "circuit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/circuit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
