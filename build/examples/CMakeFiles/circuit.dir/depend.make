# Empty dependencies file for circuit.
# This may be replaced when dependencies are built.
