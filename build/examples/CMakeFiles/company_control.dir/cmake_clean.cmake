file(REMOVE_RECURSE
  "CMakeFiles/company_control.dir/company_control.cpp.o"
  "CMakeFiles/company_control.dir/company_control.cpp.o.d"
  "company_control"
  "company_control.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/company_control.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
