# Empty compiler generated dependencies file for company_control.
# This may be replaced when dependencies are built.
