file(REMOVE_RECURSE
  "CMakeFiles/mondl.dir/mondl.cpp.o"
  "CMakeFiles/mondl.dir/mondl.cpp.o.d"
  "mondl"
  "mondl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mondl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
