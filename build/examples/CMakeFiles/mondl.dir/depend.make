# Empty dependencies file for mondl.
# This may be replaced when dependencies are built.
