file(REMOVE_RECURSE
  "CMakeFiles/party.dir/party.cpp.o"
  "CMakeFiles/party.dir/party.cpp.o.d"
  "party"
  "party.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/party.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
