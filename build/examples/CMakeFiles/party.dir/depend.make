# Empty dependencies file for party.
# This may be replaced when dependencies are built.
