
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/admissibility.cc" "src/analysis/CMakeFiles/mad_analysis.dir/admissibility.cc.o" "gcc" "src/analysis/CMakeFiles/mad_analysis.dir/admissibility.cc.o.d"
  "/root/repo/src/analysis/checker.cc" "src/analysis/CMakeFiles/mad_analysis.dir/checker.cc.o" "gcc" "src/analysis/CMakeFiles/mad_analysis.dir/checker.cc.o.d"
  "/root/repo/src/analysis/conflict_free.cc" "src/analysis/CMakeFiles/mad_analysis.dir/conflict_free.cc.o" "gcc" "src/analysis/CMakeFiles/mad_analysis.dir/conflict_free.cc.o.d"
  "/root/repo/src/analysis/cost_respecting.cc" "src/analysis/CMakeFiles/mad_analysis.dir/cost_respecting.cc.o" "gcc" "src/analysis/CMakeFiles/mad_analysis.dir/cost_respecting.cc.o.d"
  "/root/repo/src/analysis/dependency_graph.cc" "src/analysis/CMakeFiles/mad_analysis.dir/dependency_graph.cc.o" "gcc" "src/analysis/CMakeFiles/mad_analysis.dir/dependency_graph.cc.o.d"
  "/root/repo/src/analysis/range_restriction.cc" "src/analysis/CMakeFiles/mad_analysis.dir/range_restriction.cc.o" "gcc" "src/analysis/CMakeFiles/mad_analysis.dir/range_restriction.cc.o.d"
  "/root/repo/src/analysis/termination.cc" "src/analysis/CMakeFiles/mad_analysis.dir/termination.cc.o" "gcc" "src/analysis/CMakeFiles/mad_analysis.dir/termination.cc.o.d"
  "/root/repo/src/analysis/unification.cc" "src/analysis/CMakeFiles/mad_analysis.dir/unification.cc.o" "gcc" "src/analysis/CMakeFiles/mad_analysis.dir/unification.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/datalog/CMakeFiles/mad_datalog.dir/DependInfo.cmake"
  "/root/repo/build/src/lattice/CMakeFiles/mad_lattice.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mad_util.dir/DependInfo.cmake"
  "/root/repo/build/src/datalog/CMakeFiles/mad_value.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
