file(REMOVE_RECURSE
  "CMakeFiles/mad_analysis.dir/admissibility.cc.o"
  "CMakeFiles/mad_analysis.dir/admissibility.cc.o.d"
  "CMakeFiles/mad_analysis.dir/checker.cc.o"
  "CMakeFiles/mad_analysis.dir/checker.cc.o.d"
  "CMakeFiles/mad_analysis.dir/conflict_free.cc.o"
  "CMakeFiles/mad_analysis.dir/conflict_free.cc.o.d"
  "CMakeFiles/mad_analysis.dir/cost_respecting.cc.o"
  "CMakeFiles/mad_analysis.dir/cost_respecting.cc.o.d"
  "CMakeFiles/mad_analysis.dir/dependency_graph.cc.o"
  "CMakeFiles/mad_analysis.dir/dependency_graph.cc.o.d"
  "CMakeFiles/mad_analysis.dir/range_restriction.cc.o"
  "CMakeFiles/mad_analysis.dir/range_restriction.cc.o.d"
  "CMakeFiles/mad_analysis.dir/termination.cc.o"
  "CMakeFiles/mad_analysis.dir/termination.cc.o.d"
  "CMakeFiles/mad_analysis.dir/unification.cc.o"
  "CMakeFiles/mad_analysis.dir/unification.cc.o.d"
  "libmad_analysis.a"
  "libmad_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mad_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
