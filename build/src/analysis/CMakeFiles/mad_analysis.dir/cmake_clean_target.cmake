file(REMOVE_RECURSE
  "libmad_analysis.a"
)
