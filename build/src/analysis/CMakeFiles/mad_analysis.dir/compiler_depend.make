# Empty compiler generated dependencies file for mad_analysis.
# This may be replaced when dependencies are built.
