
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/circuit_sim.cc" "src/baselines/CMakeFiles/mad_baselines.dir/circuit_sim.cc.o" "gcc" "src/baselines/CMakeFiles/mad_baselines.dir/circuit_sim.cc.o.d"
  "/root/repo/src/baselines/company_control.cc" "src/baselines/CMakeFiles/mad_baselines.dir/company_control.cc.o" "gcc" "src/baselines/CMakeFiles/mad_baselines.dir/company_control.cc.o.d"
  "/root/repo/src/baselines/fully_defined.cc" "src/baselines/CMakeFiles/mad_baselines.dir/fully_defined.cc.o" "gcc" "src/baselines/CMakeFiles/mad_baselines.dir/fully_defined.cc.o.d"
  "/root/repo/src/baselines/kemp_stuckey.cc" "src/baselines/CMakeFiles/mad_baselines.dir/kemp_stuckey.cc.o" "gcc" "src/baselines/CMakeFiles/mad_baselines.dir/kemp_stuckey.cc.o.d"
  "/root/repo/src/baselines/party_solver.cc" "src/baselines/CMakeFiles/mad_baselines.dir/party_solver.cc.o" "gcc" "src/baselines/CMakeFiles/mad_baselines.dir/party_solver.cc.o.d"
  "/root/repo/src/baselines/shortest_path.cc" "src/baselines/CMakeFiles/mad_baselines.dir/shortest_path.cc.o" "gcc" "src/baselines/CMakeFiles/mad_baselines.dir/shortest_path.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/datalog/CMakeFiles/mad_datalog.dir/DependInfo.cmake"
  "/root/repo/build/src/lattice/CMakeFiles/mad_lattice.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mad_util.dir/DependInfo.cmake"
  "/root/repo/build/src/datalog/CMakeFiles/mad_value.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
