file(REMOVE_RECURSE
  "CMakeFiles/mad_baselines.dir/circuit_sim.cc.o"
  "CMakeFiles/mad_baselines.dir/circuit_sim.cc.o.d"
  "CMakeFiles/mad_baselines.dir/company_control.cc.o"
  "CMakeFiles/mad_baselines.dir/company_control.cc.o.d"
  "CMakeFiles/mad_baselines.dir/fully_defined.cc.o"
  "CMakeFiles/mad_baselines.dir/fully_defined.cc.o.d"
  "CMakeFiles/mad_baselines.dir/kemp_stuckey.cc.o"
  "CMakeFiles/mad_baselines.dir/kemp_stuckey.cc.o.d"
  "CMakeFiles/mad_baselines.dir/party_solver.cc.o"
  "CMakeFiles/mad_baselines.dir/party_solver.cc.o.d"
  "CMakeFiles/mad_baselines.dir/shortest_path.cc.o"
  "CMakeFiles/mad_baselines.dir/shortest_path.cc.o.d"
  "libmad_baselines.a"
  "libmad_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mad_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
