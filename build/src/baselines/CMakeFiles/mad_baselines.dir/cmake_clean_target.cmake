file(REMOVE_RECURSE
  "libmad_baselines.a"
)
