# Empty compiler generated dependencies file for mad_baselines.
# This may be replaced when dependencies are built.
