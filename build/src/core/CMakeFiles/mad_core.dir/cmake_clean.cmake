file(REMOVE_RECURSE
  "CMakeFiles/mad_core.dir/compiled_rule.cc.o"
  "CMakeFiles/mad_core.dir/compiled_rule.cc.o.d"
  "CMakeFiles/mad_core.dir/engine.cc.o"
  "CMakeFiles/mad_core.dir/engine.cc.o.d"
  "CMakeFiles/mad_core.dir/executor.cc.o"
  "CMakeFiles/mad_core.dir/executor.cc.o.d"
  "CMakeFiles/mad_core.dir/provenance.cc.o"
  "CMakeFiles/mad_core.dir/provenance.cc.o.d"
  "libmad_core.a"
  "libmad_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mad_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
