file(REMOVE_RECURSE
  "libmad_core.a"
)
