# Empty compiler generated dependencies file for mad_core.
# This may be replaced when dependencies are built.
