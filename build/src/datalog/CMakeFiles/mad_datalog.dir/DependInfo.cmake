
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/datalog/ast.cc" "src/datalog/CMakeFiles/mad_datalog.dir/ast.cc.o" "gcc" "src/datalog/CMakeFiles/mad_datalog.dir/ast.cc.o.d"
  "/root/repo/src/datalog/database.cc" "src/datalog/CMakeFiles/mad_datalog.dir/database.cc.o" "gcc" "src/datalog/CMakeFiles/mad_datalog.dir/database.cc.o.d"
  "/root/repo/src/datalog/parser.cc" "src/datalog/CMakeFiles/mad_datalog.dir/parser.cc.o" "gcc" "src/datalog/CMakeFiles/mad_datalog.dir/parser.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/datalog/CMakeFiles/mad_value.dir/DependInfo.cmake"
  "/root/repo/build/src/lattice/CMakeFiles/mad_lattice.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mad_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
