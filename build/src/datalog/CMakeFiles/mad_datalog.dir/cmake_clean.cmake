file(REMOVE_RECURSE
  "CMakeFiles/mad_datalog.dir/ast.cc.o"
  "CMakeFiles/mad_datalog.dir/ast.cc.o.d"
  "CMakeFiles/mad_datalog.dir/database.cc.o"
  "CMakeFiles/mad_datalog.dir/database.cc.o.d"
  "CMakeFiles/mad_datalog.dir/parser.cc.o"
  "CMakeFiles/mad_datalog.dir/parser.cc.o.d"
  "libmad_datalog.a"
  "libmad_datalog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mad_datalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
