file(REMOVE_RECURSE
  "libmad_datalog.a"
)
