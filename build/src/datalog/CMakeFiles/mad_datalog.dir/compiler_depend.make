# Empty compiler generated dependencies file for mad_datalog.
# This may be replaced when dependencies are built.
