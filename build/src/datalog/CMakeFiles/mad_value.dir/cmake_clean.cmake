file(REMOVE_RECURSE
  "CMakeFiles/mad_value.dir/value.cc.o"
  "CMakeFiles/mad_value.dir/value.cc.o.d"
  "libmad_value.a"
  "libmad_value.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mad_value.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
