file(REMOVE_RECURSE
  "libmad_value.a"
)
