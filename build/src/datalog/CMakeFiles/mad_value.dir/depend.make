# Empty dependencies file for mad_value.
# This may be replaced when dependencies are built.
