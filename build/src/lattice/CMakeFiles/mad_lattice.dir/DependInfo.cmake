
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lattice/aggregate.cc" "src/lattice/CMakeFiles/mad_lattice.dir/aggregate.cc.o" "gcc" "src/lattice/CMakeFiles/mad_lattice.dir/aggregate.cc.o.d"
  "/root/repo/src/lattice/cost_domain.cc" "src/lattice/CMakeFiles/mad_lattice.dir/cost_domain.cc.o" "gcc" "src/lattice/CMakeFiles/mad_lattice.dir/cost_domain.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/datalog/CMakeFiles/mad_value.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mad_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
