file(REMOVE_RECURSE
  "CMakeFiles/mad_lattice.dir/aggregate.cc.o"
  "CMakeFiles/mad_lattice.dir/aggregate.cc.o.d"
  "CMakeFiles/mad_lattice.dir/cost_domain.cc.o"
  "CMakeFiles/mad_lattice.dir/cost_domain.cc.o.d"
  "libmad_lattice.a"
  "libmad_lattice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mad_lattice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
