file(REMOVE_RECURSE
  "libmad_lattice.a"
)
