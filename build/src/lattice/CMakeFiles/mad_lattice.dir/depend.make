# Empty dependencies file for mad_lattice.
# This may be replaced when dependencies are built.
