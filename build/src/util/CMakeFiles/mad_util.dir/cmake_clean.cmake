file(REMOVE_RECURSE
  "CMakeFiles/mad_util.dir/status.cc.o"
  "CMakeFiles/mad_util.dir/status.cc.o.d"
  "CMakeFiles/mad_util.dir/string_util.cc.o"
  "CMakeFiles/mad_util.dir/string_util.cc.o.d"
  "CMakeFiles/mad_util.dir/table_printer.cc.o"
  "CMakeFiles/mad_util.dir/table_printer.cc.o.d"
  "libmad_util.a"
  "libmad_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mad_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
