file(REMOVE_RECURSE
  "libmad_util.a"
)
