# Empty compiler generated dependencies file for mad_util.
# This may be replaced when dependencies are built.
