file(REMOVE_RECURSE
  "CMakeFiles/mad_workloads.dir/generators.cc.o"
  "CMakeFiles/mad_workloads.dir/generators.cc.o.d"
  "CMakeFiles/mad_workloads.dir/to_datalog.cc.o"
  "CMakeFiles/mad_workloads.dir/to_datalog.cc.o.d"
  "libmad_workloads.a"
  "libmad_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mad_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
