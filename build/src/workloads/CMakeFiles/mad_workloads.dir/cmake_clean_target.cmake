file(REMOVE_RECURSE
  "libmad_workloads.a"
)
