# Empty compiler generated dependencies file for mad_workloads.
# This may be replaced when dependencies are built.
