file(REMOVE_RECURSE
  "CMakeFiles/admissibility_test.dir/admissibility_test.cc.o"
  "CMakeFiles/admissibility_test.dir/admissibility_test.cc.o.d"
  "admissibility_test"
  "admissibility_test.pdb"
  "admissibility_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/admissibility_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
