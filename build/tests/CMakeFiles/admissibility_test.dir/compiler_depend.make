# Empty compiler generated dependencies file for admissibility_test.
# This may be replaced when dependencies are built.
