file(REMOVE_RECURSE
  "CMakeFiles/aggregate_property_test.dir/aggregate_property_test.cc.o"
  "CMakeFiles/aggregate_property_test.dir/aggregate_property_test.cc.o.d"
  "aggregate_property_test"
  "aggregate_property_test.pdb"
  "aggregate_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aggregate_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
