file(REMOVE_RECURSE
  "CMakeFiles/company_control_test.dir/company_control_test.cc.o"
  "CMakeFiles/company_control_test.dir/company_control_test.cc.o.d"
  "company_control_test"
  "company_control_test.pdb"
  "company_control_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/company_control_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
