# Empty compiler generated dependencies file for company_control_test.
# This may be replaced when dependencies are built.
