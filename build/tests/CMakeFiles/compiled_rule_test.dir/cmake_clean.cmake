file(REMOVE_RECURSE
  "CMakeFiles/compiled_rule_test.dir/compiled_rule_test.cc.o"
  "CMakeFiles/compiled_rule_test.dir/compiled_rule_test.cc.o.d"
  "compiled_rule_test"
  "compiled_rule_test.pdb"
  "compiled_rule_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compiled_rule_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
