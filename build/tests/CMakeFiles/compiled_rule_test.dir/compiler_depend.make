# Empty compiler generated dependencies file for compiled_rule_test.
# This may be replaced when dependencies are built.
