file(REMOVE_RECURSE
  "CMakeFiles/conflict_free_test.dir/conflict_free_test.cc.o"
  "CMakeFiles/conflict_free_test.dir/conflict_free_test.cc.o.d"
  "conflict_free_test"
  "conflict_free_test.pdb"
  "conflict_free_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/conflict_free_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
