# Empty compiler generated dependencies file for conflict_free_test.
# This may be replaced when dependencies are built.
