file(REMOVE_RECURSE
  "CMakeFiles/cost_respecting_test.dir/cost_respecting_test.cc.o"
  "CMakeFiles/cost_respecting_test.dir/cost_respecting_test.cc.o.d"
  "cost_respecting_test"
  "cost_respecting_test.pdb"
  "cost_respecting_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cost_respecting_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
