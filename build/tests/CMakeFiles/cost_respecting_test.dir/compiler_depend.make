# Empty compiler generated dependencies file for cost_respecting_test.
# This may be replaced when dependencies are built.
