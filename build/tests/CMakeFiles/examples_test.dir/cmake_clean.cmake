file(REMOVE_RECURSE
  "CMakeFiles/examples_test.dir/examples_test.cc.o"
  "CMakeFiles/examples_test.dir/examples_test.cc.o.d"
  "examples_test"
  "examples_test.pdb"
  "examples_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/examples_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
