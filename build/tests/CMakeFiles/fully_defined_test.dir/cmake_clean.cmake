file(REMOVE_RECURSE
  "CMakeFiles/fully_defined_test.dir/fully_defined_test.cc.o"
  "CMakeFiles/fully_defined_test.dir/fully_defined_test.cc.o.d"
  "fully_defined_test"
  "fully_defined_test.pdb"
  "fully_defined_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fully_defined_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
