# Empty dependencies file for fully_defined_test.
# This may be replaced when dependencies are built.
