file(REMOVE_RECURSE
  "CMakeFiles/halfsum_test.dir/halfsum_test.cc.o"
  "CMakeFiles/halfsum_test.dir/halfsum_test.cc.o.d"
  "halfsum_test"
  "halfsum_test.pdb"
  "halfsum_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/halfsum_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
