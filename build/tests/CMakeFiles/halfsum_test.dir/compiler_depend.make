# Empty compiler generated dependencies file for halfsum_test.
# This may be replaced when dependencies are built.
