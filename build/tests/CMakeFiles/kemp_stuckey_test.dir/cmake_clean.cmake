file(REMOVE_RECURSE
  "CMakeFiles/kemp_stuckey_test.dir/kemp_stuckey_test.cc.o"
  "CMakeFiles/kemp_stuckey_test.dir/kemp_stuckey_test.cc.o.d"
  "kemp_stuckey_test"
  "kemp_stuckey_test.pdb"
  "kemp_stuckey_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kemp_stuckey_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
