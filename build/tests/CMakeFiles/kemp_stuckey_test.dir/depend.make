# Empty dependencies file for kemp_stuckey_test.
# This may be replaced when dependencies are built.
