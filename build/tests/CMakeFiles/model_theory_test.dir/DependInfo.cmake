
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/model_theory_test.cc" "tests/CMakeFiles/model_theory_test.dir/model_theory_test.cc.o" "gcc" "tests/CMakeFiles/model_theory_test.dir/model_theory_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/mad_core.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/mad_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/mad_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/mad_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/datalog/CMakeFiles/mad_datalog.dir/DependInfo.cmake"
  "/root/repo/build/src/lattice/CMakeFiles/mad_lattice.dir/DependInfo.cmake"
  "/root/repo/build/src/datalog/CMakeFiles/mad_value.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mad_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
