file(REMOVE_RECURSE
  "CMakeFiles/model_theory_test.dir/model_theory_test.cc.o"
  "CMakeFiles/model_theory_test.dir/model_theory_test.cc.o.d"
  "model_theory_test"
  "model_theory_test.pdb"
  "model_theory_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_theory_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
