# Empty compiler generated dependencies file for model_theory_test.
# This may be replaced when dependencies are built.
