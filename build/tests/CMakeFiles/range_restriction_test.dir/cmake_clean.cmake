file(REMOVE_RECURSE
  "CMakeFiles/range_restriction_test.dir/range_restriction_test.cc.o"
  "CMakeFiles/range_restriction_test.dir/range_restriction_test.cc.o.d"
  "range_restriction_test"
  "range_restriction_test.pdb"
  "range_restriction_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/range_restriction_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
