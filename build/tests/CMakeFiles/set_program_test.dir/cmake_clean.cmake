file(REMOVE_RECURSE
  "CMakeFiles/set_program_test.dir/set_program_test.cc.o"
  "CMakeFiles/set_program_test.dir/set_program_test.cc.o.d"
  "set_program_test"
  "set_program_test.pdb"
  "set_program_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/set_program_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
