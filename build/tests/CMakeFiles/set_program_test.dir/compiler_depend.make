# Empty compiler generated dependencies file for set_program_test.
# This may be replaced when dependencies are built.
