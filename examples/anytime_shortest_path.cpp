// Anytime evaluation: shortest paths under a wall-clock deadline.
//
// The engine is run on the same large random graph with ever larger time
// budgets. A run that hits its deadline does not fail — the shortest-path
// component is prefix-sound (monotone T_P, strictly monotonic min), so the
// interrupted fixpoint is returned as a *certified under-approximation*:
// every settled pair is a real pair and no reported distance undercuts the
// true one (in the min-lattice, partial costs can only sit ⊑-below, i.e.
// numerically above, their final values). More budget buys more coverage;
// the unbounded run is the least model itself.
//
// Build & run:   ./build/examples/anytime_shortest_path [nodes] [edges] [seed]

#include <chrono>
#include <cstdlib>
#include <iostream>
#include <string>

#include "core/engine.h"
#include "util/string_util.h"
#include "util/table_printer.h"
#include "workloads/generators.h"
#include "workloads/programs.h"
#include "workloads/to_datalog.h"

using namespace mad;

int main(int argc, char** argv) {
  int nodes = argc > 1 ? std::atoi(argv[1]) : 300;
  int edges = argc > 2 ? std::atoi(argv[2]) : 2400;
  uint64_t seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 17;

  Random rng(seed);
  baselines::Graph g = workloads::RandomGraph(nodes, edges, {1.0, 10.0}, &rng);
  std::cout << "== Anytime shortest paths: " << nodes << " nodes, "
            << g.num_edges << " edges, seed " << seed << " ==\n\n";

  auto program = datalog::ParseProgram(workloads::kShortestPathProgram);
  if (!program.ok()) {
    std::cerr << program.status() << "\n";
    return 1;
  }
  datalog::Database edb;
  if (auto st = workloads::AddGraphFacts(*program, g, &edb); !st.ok()) {
    std::cerr << st << "\n";
    return 1;
  }

  // The unbounded least model, for the coverage column.
  core::Engine reference(*program);
  auto full = reference.Run(edb.Clone());
  if (!full.ok()) {
    std::cerr << full.status() << "\n";
    return 1;
  }
  const datalog::Relation* full_s =
      full->db.Find(program->FindPredicate("s"));
  size_t full_rows = full_s == nullptr ? 0 : full_s->size();

  TablePrinter table({"deadline", "completeness", "limit", "s-facts",
                      "coverage", "wall (ms)"});
  for (int64_t ms : {1, 10, 100, -1}) {
    core::EvalOptions options;
    if (ms >= 0) {
      options.limits =
          ResourceLimits::Deadline(std::chrono::milliseconds(ms));
    }
    core::Engine engine(*program, options);
    auto run = engine.Run(edb.Clone());
    if (!run.ok()) {
      // Unreachable for this program: shortest path is prefix-sound, so a
      // deadline can only degrade the run, never fail it.
      std::cerr << run.status() << "\n";
      return 1;
    }
    const datalog::Relation* s = run->db.Find(program->FindPredicate("s"));
    size_t rows = s == nullptr ? 0 : s->size();
    table.AddRow(
        {ms < 0 ? "unbounded" : StrPrintf("%lld ms", (long long)ms),
         core::CompletenessName(run->completeness),
         LimitKindName(run->limit_tripped), std::to_string(rows),
         full_rows == 0 ? "n/a"
                        : StrPrintf("%.1f%%", 100.0 * rows / full_rows),
         StrPrintf("%.2f", run->stats.wall_seconds * 1e3)});
  }
  table.Print(std::cout);

  std::cout <<
      "\nEvery bounded row is a sound partial answer: present pairs are real\n"
      "and their costs never undercut the true shortest distance. Tighten or\n"
      "loosen the deadline to trade latency for coverage.\n";
  return 0;
}
