// Example 4.4 end-to-end: cyclic circuits with default-value wires and the
// pseudo-monotonic AND aggregate; minimal vs maximal latch behaviour.
//
// Build & run:   ./build/examples/circuit [gates] [seed]

#include <cstdlib>
#include <iostream>

#include "baselines/circuit_sim.h"
#include "core/engine.h"
#include "util/table_printer.h"
#include "workloads/generators.h"
#include "workloads/programs.h"
#include "workloads/to_datalog.h"

using namespace mad;

int main(int argc, char** argv) {
  int gates = argc > 1 ? std::atoi(argv[1]) : 200;
  uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 3;

  // --- Part 1: an SR-latch-like cyclic fragment ----------------------------
  std::cout << "== Cyclic fragment: g1 = AND(g1); g2 = OR(w0, g2) ==\n";
  auto latch = core::ParseAndRun(std::string(workloads::kCircuitProgram) + R"(
gate(g1, and).
connect(g1, g1).
gate(g2, or).
connect(g2, w0). connect(g2, g2).
input(w0, 1).
)");
  if (!latch.ok()) {
    std::cerr << latch.status() << "\n";
    return 1;
  }
  std::cout << latch->result.db.ToString()
            << "(minimal behaviour: the self-fed AND stays 0; the OR latch "
               "locks in 1 once w0 is 1)\n\n";

  // --- Part 2: a random cyclic circuit vs the direct simulator -------------
  Random rng(seed);
  baselines::Circuit circuit =
      workloads::RandomCircuit(16, gates, 4, /*feedback_fraction=*/0.25,
                               &rng);
  auto program = datalog::ParseProgram(workloads::kCircuitProgram);
  if (!program.ok()) {
    std::cerr << program.status() << "\n";
    return 1;
  }
  datalog::Database edb;
  if (auto st = workloads::AddCircuitFacts(*program, circuit, &edb);
      !st.ok()) {
    std::cerr << st << "\n";
    return 1;
  }
  core::Engine engine(*program);
  auto result = engine.Run(std::move(edb));
  if (!result.ok()) {
    std::cerr << result.status() << "\n";
    return 1;
  }
  baselines::CircuitResult direct = baselines::SimulateCircuit(circuit);

  // Compare wire values.
  int high_engine = 0, high_direct = 0, mismatches = 0;
  const auto* t = result->db.Find(program->FindPredicate("t"));
  for (int w = 0; w < circuit.num_wires; ++w) {
    auto v = core::LookupCost(
        *program, result->db, "t",
        {datalog::Value::Symbol(baselines::Circuit::WireName(w))});
    bool engine_high = v.has_value() && v->AsDouble() > 0.5;
    high_engine += engine_high;
    high_direct += direct.wire_values[w];
    if (engine_high != direct.wire_values[w]) ++mismatches;
  }

  TablePrinter table({"metric", "mad engine", "direct simulator"});
  table.AddRow({"wires high", std::to_string(high_engine),
                std::to_string(high_direct)});
  table.AddRow({"iterations", std::to_string(result->stats.iterations),
                std::to_string(direct.iterations)});
  table.AddRow({"stored t-core", std::to_string(t != nullptr ? t->size() : 0),
                std::to_string(circuit.num_wires)});
  table.Print(std::cout);
  std::cout << "mismatches: " << mismatches << "\n";
  return mismatches == 0 ? 0 : 1;
}
