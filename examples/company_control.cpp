// Example 2.7 end-to-end: company control (recursion through sum), on the
// Section 5.6 four-company network and on a random ownership network,
// cross-checked against the direct solver.
//
// Build & run:   ./build/examples/company_control [companies] [seed]

#include <cstdlib>
#include <iostream>

#include "baselines/company_control.h"
#include "core/engine.h"
#include "util/table_printer.h"
#include "workloads/generators.h"
#include "workloads/programs.h"
#include "workloads/to_datalog.h"

using namespace mad;

int main(int argc, char** argv) {
  int companies = argc > 1 ? std::atoi(argv[1]) : 30;
  uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 11;

  // --- Part 1: Van Gelder's network (Section 5.6) --------------------------
  std::cout << "== Section 5.6 network ==\n";
  auto vg = core::ParseAndRun(std::string(workloads::kCompanyControlProgram) +
                              R"(
s(a, b, 0.3).
s(a, c, 0.3).
s(b, c, 0.6).
s(c, b, 0.6).
)");
  if (!vg.ok()) {
    std::cerr << vg.status() << "\n";
    return 1;
  }
  std::cout << vg->result.db.ToString()
            << "(note: c(a,b) and c(a,c) are FALSE in the least model — a "
               "well-founded treatment would leave them undefined)\n\n";

  // --- Part 2: random network vs direct solver -----------------------------
  Random rng(seed);
  baselines::OwnershipNetwork net =
      workloads::RandomOwnership(companies, 4, 0.4, &rng);
  auto program = datalog::ParseProgram(workloads::kCompanyControlProgram);
  if (!program.ok()) {
    std::cerr << program.status() << "\n";
    return 1;
  }
  datalog::Database edb;
  if (auto st = workloads::AddOwnershipFacts(*program, net, &edb); !st.ok()) {
    std::cerr << st << "\n";
    return 1;
  }
  core::Engine engine(*program);
  auto result = engine.Run(std::move(edb));
  if (!result.ok()) {
    std::cerr << result.status() << "\n";
    return 1;
  }
  baselines::ControlResult direct = baselines::SolveCompanyControl(net);

  int engine_controls = 0;
  if (const auto* c = result->db.Find(program->FindPredicate("c"))) {
    engine_controls = static_cast<int>(c->size());
  }
  int direct_controls = 0;
  for (const auto& row : direct.controls) {
    for (bool b : row) direct_controls += b ? 1 : 0;
  }

  TablePrinter table({"solver", "controls-pairs", "iterations"});
  table.AddRow({"mad engine (semi-naive)", std::to_string(engine_controls),
                std::to_string(result->stats.iterations)});
  table.AddRow({"direct fixpoint", std::to_string(direct_controls),
                std::to_string(direct.iterations)});
  table.Print(std::cout);

  if (engine_controls != direct_controls) {
    std::cerr << "BUG: engine and direct solver disagree\n";
    return 1;
  }
  std::cout << "engine agrees with the direct solver on all "
            << engine_controls << " control pairs\n";
  return 0;
}
