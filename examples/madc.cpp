// madc — command-line client for a running madd.
//
// Usage:
//   madc [--host=A] [--port=N] [--retries=N] [--endpoint=H:P ...]
//        [--min-epoch=N] <verb> [args]
//
// Verbs:
//   ping
//   query PRED [ARG...]      ARG is a key value; `_` leaves the position
//                            unbound (integer/real/true/false lexemes map to
//                            the corresponding value kinds, anything else is
//                            a symbol). Omit all args for a full scan.
//   query 'ATOM'             demand-driven point query: a single argument
//                            containing '(' is sent as an `.mdl` atom (e.g.
//                            "s(a, Y, C)") and answered by the certified
//                            magic-sets slice when one applies. --mode=demand
//                            makes a bail-out an error, --mode=full forces
//                            the full-evaluation oracle (default: auto).
//   insert FACTS|-           FACTS is `.mdl` fact text; `-` reads stdin.
//   dump
//   stats
//   sync [checkpoint]        fsync the WAL; `checkpoint` also forces one.
//   recover                  clear writer poison / reopen a degraded WAL.
//   shutdown
//
// --retries=N resends through transient transport failures (connection
// refused while the server restarts, a reset mid-call) with capped
// exponential backoff — safe because madd's inserts are idempotent lattice
// joins. Non-transient errors never retry.
//
// Replication-aware routing:
//   --endpoint=H:P           repeatable; the fleet to route over. Reads try
//                            each endpoint in order and fail over on
//                            transport errors or replica lag; writes do the
//                            same but additionally follow the kNotPrimary
//                            redirect a replica answers with, so pointing
//                            madc at any node of the fleet works.
//   --min-epoch=N            read-your-writes: attach the epoch token an
//                            insert acknowledgment returned. A replica
//                            holds the read until it has applied that epoch
//                            (bounded by --min-epoch-wait-ms) and answers
//                            ReplicaLagging rather than stale.
//   --min-epoch-wait-ms=N    per-endpoint lag deadline (server default 2s).
//
// The raw JSON response prints on stdout. Exit codes:
//   0  server answered ok:true
//   1  server answered ok:false (application error; see "error" in the JSON)
//   2  usage error
//   3  transport failure that persisted through every retry
//   4  non-retryable client-side failure (bad address, protocol violation)
//
// Examples:
//   madc --port=7407 query sp a _
//   echo 'edge(a, b, 3.0).' | madc --retries=5 insert -

#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "server/client.h"

using namespace mad;

namespace {

int Usage() {
  std::cerr << "usage: madc [--host=A] [--port=N] [--retries=N] "
               "[--mode=auto|demand|full]\n"
               "            [--endpoint=H:P ...] [--min-epoch=N] "
               "[--min-epoch-wait-ms=N]\n"
               "            "
               "ping|query|insert|dump|stats|sync|recover|shutdown [args]\n"
               "       madc query PRED [ARG|_ ...]\n"
               "       madc query 's(a, Y, C)'\n"
               "       madc insert 'fact(a, 1).' | madc insert -\n"
               "       madc sync [checkpoint]\n";
  return 2;
}

struct Endpoint {
  std::string host;
  int port = 0;
};

bool ParseEndpoint(const std::string& text, Endpoint* out) {
  const size_t colon = text.rfind(':');
  if (colon == std::string::npos || colon == 0) return false;
  out->host = text.substr(0, colon);
  try {
    out->port = static_cast<int>(std::stol(text.substr(colon + 1)));
  } catch (...) {
    return false;
  }
  return out->port > 0 && out->port <= 65535;
}

/// CLI argument -> JSON request value, mirroring the server's JsonToValue
/// mapping (integral lexeme -> Int, numeric -> Double, bools, else symbol).
server::Json ParseArg(const std::string& arg) {
  if (arg == "true") return server::Json::Bool(true);
  if (arg == "false") return server::Json::Bool(false);
  try {
    size_t used = 0;
    long long i = std::stoll(arg, &used);
    if (used == arg.size()) return server::Json::Int(i);
  } catch (...) {
  }
  try {
    size_t used = 0;
    double d = std::stod(arg, &used);
    if (used == arg.size()) return server::Json::Double(d);
  } catch (...) {
  }
  return server::Json::Str(arg);
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  int port = 7407;
  int retries = 1;
  int64_t min_epoch = 0;
  int64_t min_epoch_wait_ms = -1;
  std::string mode;
  std::vector<Endpoint> endpoints;
  std::vector<std::string> rest;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--host=", 0) == 0) {
      host = arg.substr(7);
    } else if (arg.rfind("--port=", 0) == 0) {
      port = static_cast<int>(std::stol(arg.substr(7)));
    } else if (arg.rfind("--retries=", 0) == 0) {
      retries = static_cast<int>(std::stol(arg.substr(10)));
      if (retries < 1) return Usage();
    } else if (arg.rfind("--endpoint=", 0) == 0) {
      Endpoint ep;
      if (!ParseEndpoint(arg.substr(11), &ep)) return Usage();
      endpoints.push_back(ep);
    } else if (arg.rfind("--min-epoch=", 0) == 0) {
      min_epoch = std::stoll(arg.substr(12));
      if (min_epoch < 0) return Usage();
    } else if (arg.rfind("--min-epoch-wait-ms=", 0) == 0) {
      min_epoch_wait_ms = std::stoll(arg.substr(20));
      if (min_epoch_wait_ms < 0) return Usage();
    } else if (arg.rfind("--mode=", 0) == 0) {
      mode = arg.substr(7);
      if (mode != "auto" && mode != "demand" && mode != "full") {
        return Usage();
      }
    } else if (!arg.empty() && arg[0] == '-' && arg != "-") {
      return Usage();
    } else {
      rest.push_back(arg);
    }
  }
  if (rest.empty()) return Usage();
  const std::string verb = rest[0];

  server::Json request = server::Json::Object();
  request.Set("verb", server::Json::Str(verb));
  if (verb == "query") {
    if (rest.size() < 2) return Usage();
    if (rest.size() == 2 && rest[1].find('(') != std::string::npos) {
      // Atom form: demand-driven point query.
      request.Set("atom", server::Json::Str(rest[1]));
      if (!mode.empty()) request.Set("mode", server::Json::Str(mode));
    } else {
      if (!mode.empty()) return Usage();  // --mode= is atom-form only
      request.Set("pred", server::Json::Str(rest[1]));
      if (rest.size() > 2) {
        server::Json key = server::Json::Array();
        for (size_t i = 2; i < rest.size(); ++i) {
          key.Push(rest[i] == "_" ? server::Json::Null() : ParseArg(rest[i]));
        }
        request.Set("key", std::move(key));
      }
    }
  } else if (verb == "insert") {
    if (rest.size() != 2) return Usage();
    std::string facts = rest[1];
    if (facts == "-") {
      std::stringstream buffer;
      buffer << std::cin.rdbuf();
      facts = buffer.str();
    }
    request.Set("facts", server::Json::Str(facts));
  } else if (verb == "sync") {
    if (rest.size() > 2 || (rest.size() == 2 && rest[1] != "checkpoint")) {
      return Usage();
    }
    if (rest.size() == 2) request.Set("checkpoint", server::Json::Bool(true));
  } else if (verb != "ping" && verb != "dump" && verb != "stats" &&
             verb != "recover" && verb != "shutdown") {
    return Usage();
  } else if (rest.size() != 1) {
    return Usage();
  }

  const bool is_read =
      verb == "ping" || verb == "query" || verb == "dump" || verb == "stats";
  if (min_epoch > 0) {
    request.Set("min_epoch", server::Json::Int(min_epoch));
    if (min_epoch_wait_ms >= 0) {
      request.Set("min_epoch_wait_ms", server::Json::Int(min_epoch_wait_ms));
    }
  }
  if (endpoints.empty()) endpoints.push_back(Endpoint{host, port});

  server::RetryOptions retry;
  retry.max_attempts = retries;

  // Route over the fleet: reads take the first endpoint that answers without
  // transport failure or replica lag; writes do the same but also follow the
  // kNotPrimary redirect a replica responds with. The last response (or
  // error) wins if every endpoint falls short.
  Status last_error;
  std::optional<server::Json> last_response;
  for (size_t e = 0; e < endpoints.size(); ++e) {
    Endpoint target = endpoints[e];
    // A redirect chain longer than the fleet means misconfiguration.
    for (size_t hops = 0; hops <= endpoints.size(); ++hops) {
      auto client = server::Client::ConnectWithRetry(target.host, target.port,
                                                     retry);
      if (!client.ok()) {
        last_error = client.status();
        break;  // next endpoint
      }
      auto response = client->CallWithRetry(request, retry);
      if (!response.ok()) {
        last_error = response.status();
        break;  // next endpoint
      }
      last_error = Status::OK();
      last_response = *response;
      const std::string code = response->At("error").StrOr("code", "");
      if (!is_read && code == "NotPrimary" &&
          response->At("redirect").is_object()) {
        const server::Json& redirect = response->At("redirect");
        target.host = redirect.StrOr("host", target.host);
        target.port = static_cast<int>(redirect.IntOr("port", target.port));
        continue;  // re-send at the primary
      }
      if (is_read && code == "ReplicaLagging" && e + 1 < endpoints.size()) {
        break;  // this replica is behind the token; try the next endpoint
      }
      std::cout << response->Dump() << "\n";
      return response->At("ok").boolean ? 0 : 1;
    }
  }
  if (last_response.has_value()) {
    // Every endpoint answered but none satisfied the request (all lagging,
    // or a redirect loop): report the final answer as an application error.
    std::cout << last_response->Dump() << "\n";
    return 1;
  }
  std::cerr << "madc: " << last_error << "\n";
  return last_error.code() == StatusCode::kUnavailable ? 3 : 4;
}
