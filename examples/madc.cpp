// madc — command-line client for a running madd.
//
// Usage:
//   madc [--host=A] [--port=N] <verb> [args]
//
// Verbs:
//   ping
//   query PRED [ARG...]      ARG is a key value; `_` leaves the position
//                            unbound (integer/real/true/false lexemes map to
//                            the corresponding value kinds, anything else is
//                            a symbol). Omit all args for a full scan.
//   insert FACTS|-           FACTS is `.mdl` fact text; `-` reads stdin.
//   dump
//   stats
//   shutdown
//
// The raw JSON response prints on stdout; the exit code is 0 iff the server
// answered ok:true.
//
// Examples:
//   madc --port=7407 query sp a _
//   echo 'edge(a, b, 3.0).' | madc insert -

#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "server/client.h"

using namespace mad;

namespace {

int Usage() {
  std::cerr << "usage: madc [--host=A] [--port=N] "
               "ping|query|insert|dump|stats|shutdown [args]\n"
               "       madc query PRED [ARG|_ ...]\n"
               "       madc insert 'fact(a, 1).' | madc insert -\n";
  return 2;
}

/// CLI argument -> JSON request value, mirroring the server's JsonToValue
/// mapping (integral lexeme -> Int, numeric -> Double, bools, else symbol).
server::Json ParseArg(const std::string& arg) {
  if (arg == "true") return server::Json::Bool(true);
  if (arg == "false") return server::Json::Bool(false);
  try {
    size_t used = 0;
    long long i = std::stoll(arg, &used);
    if (used == arg.size()) return server::Json::Int(i);
  } catch (...) {
  }
  try {
    size_t used = 0;
    double d = std::stod(arg, &used);
    if (used == arg.size()) return server::Json::Double(d);
  } catch (...) {
  }
  return server::Json::Str(arg);
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  int port = 7407;
  std::vector<std::string> rest;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--host=", 0) == 0) {
      host = arg.substr(7);
    } else if (arg.rfind("--port=", 0) == 0) {
      port = static_cast<int>(std::stol(arg.substr(7)));
    } else if (!arg.empty() && arg[0] == '-' && arg != "-") {
      return Usage();
    } else {
      rest.push_back(arg);
    }
  }
  if (rest.empty()) return Usage();
  const std::string verb = rest[0];

  server::Json request = server::Json::Object();
  request.Set("verb", server::Json::Str(verb));
  if (verb == "query") {
    if (rest.size() < 2) return Usage();
    request.Set("pred", server::Json::Str(rest[1]));
    if (rest.size() > 2) {
      server::Json key = server::Json::Array();
      for (size_t i = 2; i < rest.size(); ++i) {
        key.Push(rest[i] == "_" ? server::Json::Null() : ParseArg(rest[i]));
      }
      request.Set("key", std::move(key));
    }
  } else if (verb == "insert") {
    if (rest.size() != 2) return Usage();
    std::string facts = rest[1];
    if (facts == "-") {
      std::stringstream buffer;
      buffer << std::cin.rdbuf();
      facts = buffer.str();
    }
    request.Set("facts", server::Json::Str(facts));
  } else if (verb != "ping" && verb != "dump" && verb != "stats" &&
             verb != "shutdown") {
    return Usage();
  } else if (rest.size() != 1) {
    return Usage();
  }

  auto client = server::Client::Connect(host, port);
  if (!client.ok()) {
    std::cerr << "madc: " << client.status() << "\n";
    return 1;
  }
  auto response = client->Call(request);
  if (!response.ok()) {
    std::cerr << "madc: " << response.status() << "\n";
    return 1;
  }
  std::cout << response->Dump() << "\n";
  return response->At("ok").boolean ? 0 : 1;
}
