// madcert — the semantic certification driver for `.mdl` programs.
//
// Runs the abstract interpreter (analysis/absint) over every component and
// reports the certificate each one earned: syntactically admissible
// (Definition 4.5), semantically monotonic (rejected by the syntactic check
// but proven monotone over the interval fixpoint), or uncertified. With
// --differential=N the claim is also validated empirically: N randomized
// small EDBs are evaluated brute-force under shuffled rule/tuple orderings,
// and certified components must produce order-invariant least models.
//
// Usage:
//   madcert [options] program.mdl [more.mdl ...]
//
// Options:
//   --json             emit the certificate report as JSON
//   --trace            include the per-rule abstract derivation traces
//   --differential=N   cross-check with N randomized EDBs (default off)
//
// Exit status: 0 when every file is accepted for evaluation (and, when
// requested, the differential harness found no mismatch), 1 otherwise,
// 2 on usage or I/O problems.

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/absint/differential.h"
#include "analysis/absint/engine.h"
#include "analysis/checker.h"
#include "analysis/dependency_graph.h"
#include "datalog/parser.h"

using namespace mad;

namespace {

int Usage() {
  std::cerr << "usage: madcert [--json] [--trace] [--differential=N] "
               "program.mdl [more.mdl ...]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  bool trace = false;
  int differential = 0;
  std::vector<std::string> paths;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--trace") {
      trace = true;
    } else if (arg.rfind("--differential=", 0) == 0) {
      differential = std::atoi(arg.c_str() + std::string("--differential=").size());
      if (differential <= 0) return Usage();
    } else if (!arg.empty() && arg[0] == '-') {
      return Usage();
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) return Usage();

  bool all_ok = true;
  for (const std::string& path : paths) {
    std::ifstream in(path);
    if (!in) {
      std::cerr << "madcert: cannot open " << path << "\n";
      return 2;
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    auto program = datalog::ParseProgram(buffer.str());
    if (!program.ok()) {
      std::cerr << "madcert: " << path << ": " << program.status() << "\n";
      return 2;
    }
    analysis::DependencyGraph graph(*program);
    analysis::ProgramCheckResult check =
        analysis::CheckProgram(*program, graph, path);
    bool accepted = check.overall().ok();
    all_ok = all_ok && accepted;

    if (json) {
      std::cout << check.certificates.ToJson();
    } else {
      std::cout << path << ": "
                << (accepted ? "ACCEPTED" : "REJECTED")
                << (check.certificates.AnySemantic()
                        ? " (via semantic certificate)"
                        : "")
                << "\n";
      std::cout << check.certificates.ToString();
      if (trace) {
        for (const analysis::absint::ComponentCertificate& c :
             check.certificates.components) {
          for (const analysis::absint::RuleTrace& t : c.traces) {
            std::cout << t.ToString();
          }
        }
      }
    }

    if (differential > 0) {
      analysis::absint::DifferentialOptions opts;
      opts.trials = differential;
      analysis::absint::DifferentialResult r =
          analysis::absint::RunDifferential(*program, graph, opts);
      std::cout << path << ": " << r.ToString() << "\n";
      all_ok = all_ok && r.ok();
    }
  }
  return all_ok ? 0 : 1;
}
