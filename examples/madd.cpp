// madd — the monotonic-aggregation Datalog daemon.
//
// Loads a `.mdl` program, runs the static check-and-certify pipeline,
// evaluates the initial least model, then serves it over a loopback TCP
// socket speaking the framed-JSON protocol of src/server/wire.h. One writer
// applies `insert` batches incrementally (Engine::Update) and publishes
// immutable snapshots; any number of concurrent readers `query`/`dump`
// against their pinned snapshot — see DESIGN.md "Serving".
//
// Usage:
//   madd [options] program.mdl
//
// Options:
//   --port=N                            listen port (default 7407; 0 = ephemeral)
//   --host=A                            bind address (default 127.0.0.1)
//   --strategy=naive|seminaive|greedy   initial-evaluation strategy
//   --threads=N                         evaluation threads
//   --max-iterations=N                  fixpoint round budget
//   --data-dir=DIR                      enable durability: WAL + checkpoints
//                                       in DIR, crash recovery on startup
//   --fsync-policy=always|never         fsync each accepted batch (default
//                                       always) or leave it to the OS
//   --checkpoint-every-epochs=N         checkpoint cadence by insert count
//                                       (default 256; 0 disables)
//   --checkpoint-every-bytes=N          ... or by WAL growth (default 16 MiB;
//                                       0 disables)
//   --no-verify-recovery                skip the differential recovery check
//                                       (recovered state vs from-scratch
//                                       evaluation of program + history)
//   --replica-of=HOST:PORT              run as a read replica of the primary
//                                       at HOST:PORT: pull its WAL over the
//                                       wire and serve reads; writes are
//                                       refused with a redirect. The program
//                                       is fetched from the primary, so the
//                                       program.mdl argument is optional
//                                       (if given, it must match). Mutually
//                                       exclusive with --data-dir.
//
// On startup madd prints exactly one line to stdout:
//   madd: serving on <host>:<port>
// so scripts (and the test harness) can scrape the resolved ephemeral port.
//
// Shutdown: SIGINT/SIGTERM or the `shutdown` verb. Either way the listener
// closes, in-flight requests drain to completion, and long evaluations are
// interrupted through the shared CancellationToken (their responses degrade
// to certified under-approximations rather than being dropped).

#include <csignal>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>

#include "server/replication/replicator.h"
#include "server/server.h"

using namespace mad;

namespace {

int Usage() {
  std::cerr << "usage: madd [--port=N] [--host=A] "
               "[--strategy=naive|seminaive|greedy]\n"
               "            [--threads=N] [--max-iterations=N]\n"
               "            [--data-dir=DIR] [--fsync-policy=always|never]\n"
               "            [--checkpoint-every-epochs=N] "
               "[--checkpoint-every-bytes=N]\n"
               "            [--no-verify-recovery] "
               "[--replica-of=HOST:PORT] [program.mdl]\n";
  return 2;
}

// "HOST:PORT" (the last colon splits, so bracketless IPv6 is out of scope
// — same as the rest of the loopback-oriented tooling).
bool ParseEndpoint(const std::string& text, std::string* host, int* port) {
  const size_t colon = text.rfind(':');
  if (colon == std::string::npos || colon == 0) return false;
  *host = text.substr(0, colon);
  try {
    *port = static_cast<int>(std::stol(text.substr(colon + 1)));
  } catch (...) {
    return false;
  }
  return *port > 0 && *port <= 65535;
}

// Signal handling: the handler only flips lock-free atomics (both
// async-signal-safe); the main thread polls and runs the actual drain.
CancellationToken* g_cancel = nullptr;
volatile std::sig_atomic_t g_stop = 0;

void OnSignal(int) {
  g_stop = 1;
  if (g_cancel != nullptr) g_cancel->Cancel();
}

}  // namespace

int main(int argc, char** argv) {
  server::Server::Options net;
  net.port = 7407;
  server::ServerState::LoadOptions load;
  std::string path;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto value_of = [&](const std::string& prefix) {
      return arg.substr(prefix.size());
    };
    if (arg.rfind("--port=", 0) == 0) {
      net.port = static_cast<int>(std::stol(value_of("--port=")));
    } else if (arg.rfind("--host=", 0) == 0) {
      net.host = value_of("--host=");
    } else if (arg.rfind("--strategy=", 0) == 0) {
      std::string s = value_of("--strategy=");
      if (s == "naive") {
        load.eval.strategy = core::Strategy::kNaive;
      } else if (s == "seminaive") {
        load.eval.strategy = core::Strategy::kSemiNaive;
      } else if (s == "greedy") {
        load.eval.strategy = core::Strategy::kGreedy;
      } else {
        return Usage();
      }
    } else if (arg.rfind("--threads=", 0) == 0) {
      load.eval.num_threads =
          static_cast<int>(std::stol(value_of("--threads=")));
      if (load.eval.num_threads < 1) return Usage();
    } else if (arg.rfind("--max-iterations=", 0) == 0) {
      load.eval.max_iterations = std::stoll(value_of("--max-iterations="));
    } else if (arg.rfind("--data-dir=", 0) == 0) {
      load.durability.data_dir = value_of("--data-dir=");
      if (load.durability.data_dir.empty()) return Usage();
    } else if (arg.rfind("--fsync-policy=", 0) == 0) {
      std::string p = value_of("--fsync-policy=");
      if (p == "always") {
        load.durability.fsync = server::FsyncPolicy::kAlways;
      } else if (p == "never") {
        load.durability.fsync = server::FsyncPolicy::kNever;
      } else {
        return Usage();
      }
    } else if (arg.rfind("--checkpoint-every-epochs=", 0) == 0) {
      load.durability.checkpoint_every_epochs =
          std::stoll(value_of("--checkpoint-every-epochs="));
    } else if (arg.rfind("--checkpoint-every-bytes=", 0) == 0) {
      load.durability.checkpoint_every_bytes =
          std::stoll(value_of("--checkpoint-every-bytes="));
    } else if (arg == "--no-verify-recovery") {
      load.durability.verify_recovery = false;
    } else if (arg.rfind("--replica-of=", 0) == 0) {
      load.replica.enabled = true;
      if (!ParseEndpoint(value_of("--replica-of="), &load.replica.primary_host,
                         &load.replica.primary_port)) {
        return Usage();
      }
    } else if (!arg.empty() && arg[0] == '-') {
      return Usage();
    } else if (path.empty()) {
      path = arg;
    } else {
      return Usage();
    }
  }
  if (path.empty() && !load.replica.enabled) return Usage();

  std::string program_text;
  if (!path.empty()) {
    std::ifstream in(path);
    if (!in) {
      std::cerr << "madd: cannot open " << path << "\n";
      return 1;
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    program_text = buffer.str();
  } else {
    // Replica with no local .mdl: the primary is the source of truth for
    // the program too.
    server::RetryOptions retry;
    retry.max_attempts = 10;
    auto fetched = server::Replicator::FetchProgram(
        load.replica.primary_host, load.replica.primary_port, retry);
    if (!fetched.ok()) {
      std::cerr << "madd: cannot fetch program from primary "
                << load.replica.primary_host << ":"
                << load.replica.primary_port << ": " << fetched.status()
                << "\n";
      return 1;
    }
    program_text = std::move(fetched).value();
  }

  load.cancellation = std::make_shared<CancellationToken>();
  g_cancel = load.cancellation.get();
  std::signal(SIGINT, OnSignal);
  std::signal(SIGTERM, OnSignal);

  auto state = server::ServerState::Load(program_text, load);
  if (!state.ok()) {
    std::cerr << "madd: " << state.status() << "\n";
    return 1;
  }
  if (!load.durability.data_dir.empty()) {
    std::cerr << "madd: durable in " << load.durability.data_dir
              << " (recovered to epoch " << (*state)->epoch() << ")\n";
  }

  auto srv = server::Server::Start(std::move(*state), net);
  if (!srv.ok()) {
    std::cerr << "madd: " << srv.status() << "\n";
    return 1;
  }
  server::Server& server = **srv;

  std::unique_ptr<server::Replicator> replicator;
  if (load.replica.enabled) {
    server::Replicator::Options ropts;
    ropts.primary_host = load.replica.primary_host;
    ropts.primary_port = load.replica.primary_port;
    ropts.program_text = program_text;
    replicator = std::make_unique<server::Replicator>(&server.state(), ropts);
    replicator->Start();
    std::cerr << "madd: replicating from " << ropts.primary_host << ":"
              << ropts.primary_port << "\n";
  }

  std::cout << "madd: serving on " << net.host << ":" << server.port()
            << std::endl;

  // The accept and connection threads do the work; this thread just waits
  // for a reason to drain.
  while (g_stop == 0 && !server.stopping()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  std::cerr << "madd: draining...\n";
  if (replicator != nullptr) replicator->Stop();
  server.RequestShutdown();
  server.Wait();
  std::cerr << "madd: bye (final epoch " << server.state().epoch() << ")\n";
  return 0;
}
