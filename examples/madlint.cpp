// madlint — a structured lint driver for `.mdl` monotonic-aggregation
// Datalog programs.
//
// Unlike `mondl --check`, which mirrors the evaluator's accept/reject
// decision, madlint runs the full pass set (the paper's five checks plus the
// hygiene and performance passes) and reports *every* finding in one run,
// with stable rule IDs and source spans.
//
// Usage:
//   madlint [options] program.mdl [more.mdl ...]
//
// Options:
//   --format=text|json|sarif   output renderer (default text)
//   --paper-only               run only the paper checks (MAD001-MAD008)
//   --fail-on=error|warning|note  severity threshold for exit status 1
//                              (default error)
//   --rules                    print the rule registry and exit
//
// Exit status: 0 when no finding at or above the --fail-on threshold was
// reported (default: no error-severity finding), 1 otherwise, 2 on usage or
// I/O problems.

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/absint/engine.h"
#include "analysis/dependency_graph.h"
#include "analysis/lint/passes.h"
#include "datalog/parser.h"

using namespace mad;

namespace {

int Usage() {
  std::cerr << "usage: madlint [--format=text|json|sarif] [--paper-only]\n"
               "               [--fail-on=error|warning|note] [--rules] "
               "program.mdl [more.mdl ...]\n";
  return 2;
}

int PrintRules() {
  for (const analysis::lint::LintRuleDesc& r :
       analysis::lint::AllLintRules()) {
    std::cout << r.FullId() << " (" << SeverityName(r.default_severity)
              << ") [" << r.paper_ref << "]\n    " << r.summary << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string format = "text";
  bool paper_only = false;
  // Severities at or above (≤ in enum order) this threshold flip the exit
  // status to 1. The default preserves the historical errors-only contract.
  analysis::lint::Severity fail_on = analysis::lint::Severity::kError;
  std::vector<std::string> paths;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--format=", 0) == 0) {
      format = arg.substr(std::string("--format=").size());
      if (format != "text" && format != "json" && format != "sarif") {
        return Usage();
      }
    } else if (arg.rfind("--fail-on=", 0) == 0) {
      std::string s = arg.substr(std::string("--fail-on=").size());
      if (s == "error") {
        fail_on = analysis::lint::Severity::kError;
      } else if (s == "warning") {
        fail_on = analysis::lint::Severity::kWarning;
      } else if (s == "note") {
        fail_on = analysis::lint::Severity::kNote;
      } else {
        return Usage();
      }
    } else if (arg == "--paper-only") {
      paper_only = true;
    } else if (arg == "--rules") {
      return PrintRules();
    } else if (!arg.empty() && arg[0] == '-') {
      return Usage();
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) return Usage();

  analysis::lint::PassManager pm =
      paper_only ? analysis::lint::MakePaperPassManager()
                 : analysis::lint::MakeDefaultPassManager();

  analysis::lint::DiagnosticList all;
  for (const std::string& path : paths) {
    std::ifstream in(path);
    if (!in) {
      std::cerr << "madlint: cannot open " << path << "\n";
      return 2;
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    auto program = datalog::ParseProgram(buffer.str());
    if (!program.ok()) {
      std::cerr << "madlint: " << path << ": " << program.status() << "\n";
      return 2;
    }
    analysis::DependencyGraph graph(*program);
    // Certify once per file; the MAD015-MAD018 passes would otherwise each
    // recompute the abstract fixpoint on their own.
    analysis::absint::CertificateReport certs =
        analysis::absint::CertifyProgram(*program, graph);
    analysis::lint::LintContext ctx;
    ctx.program = &*program;
    ctx.graph = &graph;
    ctx.certificates = &certs;
    ctx.file = path;
    all.Extend(pm.Run(ctx));
  }
  all.Sort();

  if (format == "json") {
    std::cout << all.RenderJson();
  } else if (format == "sarif") {
    std::cout << all.RenderSarif();
  } else {
    std::string text = all.RenderText();
    if (text.empty()) {
      std::cout << "no findings in " << paths.size() << " file(s)\n";
    } else {
      std::cout << text;
    }
  }
  for (const analysis::lint::Diagnostic& d : all.diagnostics()) {
    if (d.severity <= fail_on) return 1;
  }
  return 0;
}
