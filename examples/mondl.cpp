// mondl — a command-line runner for `.mdl` monotonic-aggregation Datalog
// programs.
//
// Usage:
//   mondl [options] program.mdl
//
// Options:
//   --strategy=naive|seminaive|greedy   evaluation strategy (default seminaive)
//   --max-iterations=N                  fixpoint round budget
//   --epsilon=E                         numeric convergence tolerance
//   --threads=N                         evaluation threads (default 1)
//   --no-validate                       skip the static checks
//   --check                             print the static report and exit
//   --explain                           print the static query plans (per-rule
//                                       adornments, inferred column types and
//                                       join order) and exit; honors --format
//   --join-order=planned|textual|heuristic  subgoal scheduling (default
//                                       planned; all modes compute the same
//                                       least model)
//   --stats                             print evaluation statistics
//   --format=text|json                  output format (default text)
//   --dump=PRED[,PRED...]               print only these relations
//   --query=ATOM                        answer one point query (e.g.
//                                       --query='s(a, Y, C)') through the
//                                       demand analysis instead of printing
//                                       the model; bound constants select,
//                                       variables project
//   --query-mode=auto|demand|full       auto (default) takes the certified
//                                       magic-sets slice when one applies;
//                                       demand makes a bail-out an error;
//                                       full forces the oracle
//   --query-check                       evaluate every declared .query both
//                                       demand-driven and in full; exit 1
//                                       unless the answers are byte-identical
//
// SIGINT cancels the evaluation cooperatively: for a monotone program the
// interrupted state is still ⊑-below the least model, so mondl prints the
// partial database as a *certified under-approximation* instead of dying
// with nothing (a second SIGINT falls back to default handling).
//
// Example:
//   ./build/examples/mondl --stats examples/shortest_path.mdl

#include <csignal>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/engine.h"
#include "server/result_json.h"

using namespace mad;

namespace {

int Usage() {
  std::cerr
      << "usage: mondl [--strategy=naive|seminaive|greedy] "
         "[--max-iterations=N]\n"
         "             [--epsilon=E] [--threads=N] [--no-validate] [--check]\n"
         "             [--explain] [--join-order=planned|textual|heuristic]\n"
         "             [--stats] [--format=text|json]\n"
         "             [--dump=PRED[,PRED...]] [--query=ATOM]\n"
         "             [--query-mode=auto|demand|full] [--query-check]\n"
         "             program.mdl\n";
  return 2;
}

// Written once before the handler is installed, read from the handler:
// Cancel() is a lock-free atomic store, so this is async-signal-safe.
CancellationToken* g_cancel = nullptr;

void OnSigInt(int) {
  if (g_cancel != nullptr) g_cancel->Cancel();
  // A second ^C should actually kill a run that is stuck outside the
  // evaluator's poll points.
  std::signal(SIGINT, SIG_DFL);
}

}  // namespace

int main(int argc, char** argv) {
  core::EvalOptions options;
  bool check_only = false;
  bool explain_only = false;
  bool print_stats = false;
  std::string format = "text";
  std::vector<std::string> dump;
  std::string query_atom;
  std::string query_mode = "auto";
  bool query_check = false;
  std::string path;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto value_of = [&](const std::string& prefix) {
      return arg.substr(prefix.size());
    };
    if (arg.rfind("--strategy=", 0) == 0) {
      std::string s = value_of("--strategy=");
      if (s == "naive") {
        options.strategy = core::Strategy::kNaive;
      } else if (s == "seminaive") {
        options.strategy = core::Strategy::kSemiNaive;
      } else if (s == "greedy") {
        options.strategy = core::Strategy::kGreedy;
      } else {
        return Usage();
      }
    } else if (arg.rfind("--max-iterations=", 0) == 0) {
      options.max_iterations = std::stoll(value_of("--max-iterations="));
    } else if (arg.rfind("--epsilon=", 0) == 0) {
      options.epsilon = std::stod(value_of("--epsilon="));
    } else if (arg.rfind("--threads=", 0) == 0) {
      options.num_threads = static_cast<int>(std::stol(value_of("--threads=")));
      if (options.num_threads < 1) return Usage();
    } else if (arg == "--no-validate") {
      options.validate = false;
    } else if (arg == "--check") {
      check_only = true;
    } else if (arg == "--explain") {
      explain_only = true;
    } else if (arg.rfind("--join-order=", 0) == 0) {
      std::string s = value_of("--join-order=");
      if (s == "planned") {
        options.join_order = core::JoinOrderMode::kPlanned;
      } else if (s == "textual") {
        options.join_order = core::JoinOrderMode::kTextual;
      } else if (s == "heuristic") {
        options.join_order = core::JoinOrderMode::kHeuristic;
      } else {
        return Usage();
      }
    } else if (arg == "--stats") {
      print_stats = true;
    } else if (arg.rfind("--format=", 0) == 0) {
      format = value_of("--format=");
      if (format != "text" && format != "json") return Usage();
    } else if (arg.rfind("--dump=", 0) == 0) {
      std::stringstream ss(value_of("--dump="));
      std::string item;
      while (std::getline(ss, item, ',')) dump.push_back(item);
    } else if (arg.rfind("--query=", 0) == 0) {
      query_atom = value_of("--query=");
      if (query_atom.empty()) return Usage();
    } else if (arg.rfind("--query-mode=", 0) == 0) {
      query_mode = value_of("--query-mode=");
      if (query_mode != "auto" && query_mode != "demand" &&
          query_mode != "full") {
        return Usage();
      }
    } else if (arg == "--query-check") {
      query_check = true;
    } else if (!arg.empty() && arg[0] == '-') {
      return Usage();
    } else if (path.empty()) {
      path = arg;
    } else {
      return Usage();
    }
  }
  if (path.empty()) return Usage();

  std::ifstream in(path);
  if (!in) {
    std::cerr << "mondl: cannot open " << path << "\n";
    return 1;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();

  auto program = datalog::ParseProgram(buffer.str());
  if (!program.ok()) {
    std::cerr << "mondl: " << program.status() << "\n";
    return 1;
  }

  if (check_only) {
    analysis::DependencyGraph graph(*program);
    analysis::ProgramCheckResult check =
        analysis::CheckProgram(*program, graph, path);
    std::cout << check.ToString();
    // Mirror the evaluator's decision: errors reject, warnings don't.
    return check.overall().ok() ? 0 : 1;
  }

  if (explain_only) {
    analysis::DependencyGraph graph(*program);
    analysis::plan::PlanReport plans = analysis::plan::PlanProgram(
        *program, graph,
        analysis::plan::CardinalityEstimates::FromProgram(*program));
    std::cout << (format == "json" ? plans.ToJson() + "\n" : plans.ToString());
    return 0;
  }

  auto cancel = std::make_shared<CancellationToken>();
  options.limits.cancellation = cancel;
  g_cancel = cancel.get();
  std::signal(SIGINT, OnSigInt);

  if (query_check) {
    // Differential gate: every declared .query, demand-driven vs the
    // full-evaluation oracle, must agree byte for byte.
    core::Engine engine(*program, options);
    const std::vector<datalog::Atom>& queries = program->queries();
    if (queries.empty()) {
      std::cout << "mondl: " << path << ": no declared .query directives\n";
      return 0;
    }
    int mismatches = 0;
    for (const datalog::Atom& q : queries) {
      core::QueryOptions auto_opts;
      core::QueryOptions full_opts;
      full_opts.mode = core::QueryOptions::Mode::kFull;
      auto answer = engine.Query(q, datalog::Database(), auto_opts);
      auto oracle = engine.Query(q, datalog::Database(), full_opts);
      if (!answer.ok() || !oracle.ok()) {
        std::cerr << "mondl: query failed: "
                  << (answer.ok() ? oracle.status() : answer.status()) << "\n";
        ++mismatches;
        continue;
      }
      const bool same = answer->ToString() == oracle->ToString();
      std::cout << q.pred->name << "^" << answer->adornment << ": "
                << answer->rows.size() << " rows, "
                << (answer->used_demand ? "demand" : "full (bail-out)")
                << (same ? ", matches oracle" : ", MISMATCH") << "\n";
      if (!same) ++mismatches;
    }
    return mismatches == 0 ? 0 : 1;
  }

  if (!query_atom.empty()) {
    auto atom = datalog::ParseQueryAtom(*program, query_atom);
    if (!atom.ok()) {
      std::cerr << "mondl: " << atom.status() << "\n";
      return 1;
    }
    core::QueryOptions qopts;
    if (query_mode == "demand") {
      qopts.mode = core::QueryOptions::Mode::kDemand;
    } else if (query_mode == "full") {
      qopts.mode = core::QueryOptions::Mode::kFull;
    }
    core::Engine engine(*program, options);
    auto result = engine.Query(*atom, datalog::Database(), qopts);
    std::signal(SIGINT, SIG_DFL);
    if (!result.ok()) {
      std::cerr << "mondl: " << result.status() << "\n";
      return 1;
    }
    if (format == "json") {
      server::Json j = server::Json::Object();
      j.Set("pred", server::Json::Str(result->pred->name));
      j.Set("adornment", server::Json::Str(result->adornment));
      j.Set("used_demand", server::Json::Bool(result->used_demand));
      if (!result->bailout_reason.empty()) {
        j.Set("bailout_reason", server::Json::Str(result->bailout_reason));
      }
      if (result->cost_widened) {
        j.Set("cost_widened", server::Json::Bool(true));
      }
      server::Json rows = server::Json::Array();
      for (const datalog::Fact& f : result->rows) {
        server::Json row = server::Json::Object();
        server::Json key = server::Json::Array();
        for (const datalog::Value& v : f.key) key.Push(server::ValueToJson(v));
        row.Set("key", std::move(key));
        if (f.cost.has_value()) row.Set("cost", server::ValueToJson(*f.cost));
        rows.Push(std::move(row));
      }
      j.Set("row_count", server::Json::Int(
                             static_cast<int64_t>(result->rows.size())));
      j.Set("rows", std::move(rows));
      j.Set("stats", server::EvalStatsToJson(result->stats));
      std::cout << j.Dump() << "\n";
    } else {
      std::cout << result->ToString();
    }
    if (print_stats) {
      std::cerr << result->pred->name << "^" << result->adornment
                << (result->used_demand ? " (demand slice)"
                                        : " (full evaluation)")
                << "\n"
                << result->stats.ToString() << "\n";
    }
    return 0;
  }

  core::Engine engine(*program, options);
  auto result = engine.Run(datalog::Database());
  std::signal(SIGINT, SIG_DFL);
  if (!result.ok()) {
    std::cerr << "mondl: " << result.status() << "\n";
    return 1;
  }
  if (result->completeness == core::Completeness::kUnderApproximation) {
    std::cerr << "mondl: evaluation stopped early ("
              << LimitKindName(result->limit_tripped)
              << "); printing a certified under-approximation of the least "
                 "model\n";
  }

  if (format == "json") {
    server::Json j = server::ResultToJson(*program, *result);
    if (!dump.empty()) {
      server::Json filtered = server::Json::Array();
      for (server::Json& rel : j.obj["relations"].arr) {
        for (const std::string& name : dump) {
          if (rel.StrOr("pred", "") == name) {
            filtered.Push(std::move(rel));
            break;
          }
        }
      }
      j.Set("relations", std::move(filtered));
    }
    std::cout << j.Dump() << "\n";
    return 0;
  }

  if (dump.empty()) {
    std::cout << result->db.ToString();
  } else {
    for (const std::string& name : dump) {
      const datalog::PredicateInfo* pred = program->FindPredicate(name);
      const datalog::Relation* rel =
          pred != nullptr ? result->db.Find(pred) : nullptr;
      if (rel == nullptr) {
        std::cerr << "mondl: no relation '" << name << "'\n";
        continue;
      }
      rel->ForEach([&](const datalog::Tuple& key, const datalog::Value& c) {
        std::cout << name << "(";
        for (size_t i = 0; i < key.size(); ++i) {
          if (i > 0) std::cout << ", ";
          std::cout << key[i].ToString();
        }
        if (pred->has_cost) {
          if (!key.empty()) std::cout << ", ";
          std::cout << c.ToString();
        }
        std::cout << ").\n";
      });
    }
  }
  if (print_stats) {
    std::cerr << result->stats.ToString() << "\n";
    if (!result->stats.reached_fixpoint) {
      std::cerr << "mondl: warning: iteration budget exhausted before the "
                   "fixpoint (see --max-iterations / --epsilon)\n";
    }
  }
  return 0;
}
