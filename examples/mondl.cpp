// mondl — a command-line runner for `.mdl` monotonic-aggregation Datalog
// programs.
//
// Usage:
//   mondl [options] program.mdl
//
// Options:
//   --strategy=naive|seminaive|greedy   evaluation strategy (default seminaive)
//   --max-iterations=N                  fixpoint round budget
//   --epsilon=E                         numeric convergence tolerance
//   --threads=N                         evaluation threads (default 1)
//   --no-validate                       skip the static checks
//   --check                             print the static report and exit
//   --stats                             print evaluation statistics
//   --dump=PRED[,PRED...]               print only these relations
//
// Example:
//   ./build/examples/mondl --stats examples/shortest_path.mdl

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/engine.h"

using namespace mad;

namespace {

int Usage() {
  std::cerr
      << "usage: mondl [--strategy=naive|seminaive|greedy] "
         "[--max-iterations=N]\n"
         "             [--epsilon=E] [--threads=N] [--no-validate] [--check]\n"
         "             [--stats]\n"
         "             [--dump=PRED[,PRED...]] program.mdl\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  core::EvalOptions options;
  bool check_only = false;
  bool print_stats = false;
  std::vector<std::string> dump;
  std::string path;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto value_of = [&](const std::string& prefix) {
      return arg.substr(prefix.size());
    };
    if (arg.rfind("--strategy=", 0) == 0) {
      std::string s = value_of("--strategy=");
      if (s == "naive") {
        options.strategy = core::Strategy::kNaive;
      } else if (s == "seminaive") {
        options.strategy = core::Strategy::kSemiNaive;
      } else if (s == "greedy") {
        options.strategy = core::Strategy::kGreedy;
      } else {
        return Usage();
      }
    } else if (arg.rfind("--max-iterations=", 0) == 0) {
      options.max_iterations = std::stoll(value_of("--max-iterations="));
    } else if (arg.rfind("--epsilon=", 0) == 0) {
      options.epsilon = std::stod(value_of("--epsilon="));
    } else if (arg.rfind("--threads=", 0) == 0) {
      options.num_threads = static_cast<int>(std::stol(value_of("--threads=")));
      if (options.num_threads < 1) return Usage();
    } else if (arg == "--no-validate") {
      options.validate = false;
    } else if (arg == "--check") {
      check_only = true;
    } else if (arg == "--stats") {
      print_stats = true;
    } else if (arg.rfind("--dump=", 0) == 0) {
      std::stringstream ss(value_of("--dump="));
      std::string item;
      while (std::getline(ss, item, ',')) dump.push_back(item);
    } else if (!arg.empty() && arg[0] == '-') {
      return Usage();
    } else if (path.empty()) {
      path = arg;
    } else {
      return Usage();
    }
  }
  if (path.empty()) return Usage();

  std::ifstream in(path);
  if (!in) {
    std::cerr << "mondl: cannot open " << path << "\n";
    return 1;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();

  auto program = datalog::ParseProgram(buffer.str());
  if (!program.ok()) {
    std::cerr << "mondl: " << program.status() << "\n";
    return 1;
  }

  if (check_only) {
    analysis::DependencyGraph graph(*program);
    analysis::ProgramCheckResult check =
        analysis::CheckProgram(*program, graph, path);
    std::cout << check.ToString();
    // Mirror the evaluator's decision: errors reject, warnings don't.
    return check.overall().ok() ? 0 : 1;
  }

  core::Engine engine(*program, options);
  auto result = engine.Run(datalog::Database());
  if (!result.ok()) {
    std::cerr << "mondl: " << result.status() << "\n";
    return 1;
  }

  if (dump.empty()) {
    std::cout << result->db.ToString();
  } else {
    for (const std::string& name : dump) {
      const datalog::PredicateInfo* pred = program->FindPredicate(name);
      const datalog::Relation* rel =
          pred != nullptr ? result->db.Find(pred) : nullptr;
      if (rel == nullptr) {
        std::cerr << "mondl: no relation '" << name << "'\n";
        continue;
      }
      rel->ForEach([&](const datalog::Tuple& key, const datalog::Value& c) {
        std::cout << name << "(";
        for (size_t i = 0; i < key.size(); ++i) {
          if (i > 0) std::cout << ", ";
          std::cout << key[i].ToString();
        }
        if (pred->has_cost) {
          if (!key.empty()) std::cout << ", ";
          std::cout << c.ToString();
        }
        std::cout << ").\n";
      });
    }
  }
  if (print_stats) {
    std::cerr << result->stats.ToString() << "\n";
    if (!result->stats.reached_fixpoint) {
      std::cerr << "mondl: warning: iteration budget exhausted before the "
                   "fixpoint (see --max-iterations / --epsilon)\n";
    }
  }
  return 0;
}
