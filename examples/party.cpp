// Example 4.3 end-to-end: party invitations — a count aggregate through
// recursion with per-guest thresholds, on a cyclic acquaintance graph.
//
// Build & run:   ./build/examples/party [people] [seed]

#include <cstdlib>
#include <iostream>

#include "baselines/party_solver.h"
#include "core/engine.h"
#include "util/table_printer.h"
#include "workloads/generators.h"
#include "workloads/programs.h"
#include "workloads/to_datalog.h"

using namespace mad;

int main(int argc, char** argv) {
  int people = argc > 1 ? std::atoi(argv[1]) : 60;
  uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 5;

  // --- Part 1: the hand-written scenario -----------------------------------
  std::cout << "== Scenario: ann needs nobody, bob & cyd need one friend, "
               "dan needs two ==\n";
  auto tiny = core::ParseAndRun(std::string(workloads::kPartyProgram) + R"(
requires(ann, 0).
requires(bob, 1).
requires(cyd, 1).
requires(dan, 2).
knows(bob, cyd). knows(cyd, bob).
knows(bob, ann). knows(cyd, ann).
knows(dan, bob). knows(dan, cyd).
)");
  if (!tiny.ok()) {
    std::cerr << tiny.status() << "\n";
    return 1;
  }
  const auto* coming =
      tiny->result.db.Find(tiny->program->FindPredicate("coming"));
  std::cout << "coming:";
  if (coming != nullptr) {
    coming->ForEach([](const datalog::Tuple& key, const datalog::Value&) {
      std::cout << " " << key[0].ToString();
    });
  }
  std::cout << "\n(note the knows-relation is cyclic: bob and cyd know each "
               "other; modular stratification would reject this)\n\n";

  // --- Part 2: a random crowd vs the direct solver -------------------------
  Random rng(seed);
  baselines::PartyInstance instance =
      workloads::RandomParty(people, 4.0, 3, 0.6, &rng);
  auto program = datalog::ParseProgram(workloads::kPartyProgram);
  if (!program.ok()) {
    std::cerr << program.status() << "\n";
    return 1;
  }
  datalog::Database edb;
  if (auto st = workloads::AddPartyFacts(*program, instance, &edb);
      !st.ok()) {
    std::cerr << st << "\n";
    return 1;
  }
  core::Engine engine(*program);
  auto result = engine.Run(std::move(edb));
  if (!result.ok()) {
    std::cerr << result.status() << "\n";
    return 1;
  }
  baselines::PartyResult direct = baselines::SolveParty(instance);

  int direct_coming = 0;
  for (bool b : direct.coming) direct_coming += b ? 1 : 0;
  const auto* rel = result->db.Find(program->FindPredicate("coming"));
  int engine_coming = rel != nullptr ? static_cast<int>(rel->size()) : 0;

  TablePrinter table({"solver", "guests coming", "iterations"});
  table.AddRow({"mad engine", std::to_string(engine_coming),
                std::to_string(result->stats.iterations)});
  table.AddRow({"direct fixpoint", std::to_string(direct_coming),
                std::to_string(direct.iterations)});
  table.Print(std::cout);
  if (engine_coming != direct_coming) {
    std::cerr << "BUG: engine and direct solver disagree\n";
    return 1;
  }
  std::cout << "engine agrees with the direct solver (" << engine_coming
            << "/" << people << " guests attend)\n";
  return 0;
}
