// Quickstart: define a lattice-Datalog program with recursion through
// aggregation, run it to its least fixpoint, inspect the results.
//
// Build & run:   ./build/examples/quickstart

#include <iostream>

#include "core/engine.h"

int main() {
  // A tiny "cheapest flight" program. `fare` is an EDB relation; `best` is
  // defined by recursion *through* the min aggregate — which classical
  // stratified aggregation cannot express when routes contain cycles.
  const char* program = R"mdl(
.decl fare(from, to, price: min_real)
.decl hop(from, via, to, price: min_real)
.decl best(from, to, price: min_real)
.constraint fare(nonstop, Z, C).

hop(X, nonstop, Y, C) :- fare(X, Y, C).
hop(X, Z, Y, C) :- best(X, Z, C1), fare(Z, Y, C2), C = C1 + C2.
best(X, Y, C) :- C =r min P : hop(X, Z, Y, P).

fare(sfo, jfk, 300).
fare(sfo, ord, 150).
fare(ord, jfk, 120).
fare(jfk, ord, 90).
fare(ord, sfo, 140).
)mdl";

  // ParseAndRun parses, statically checks (range restriction, conflict
  // freedom, admissibility => monotonicity) and evaluates bottom-up.
  auto run = mad::core::ParseAndRun(program);
  if (!run.ok()) {
    std::cerr << "error: " << run.status() << "\n";
    return 1;
  }

  std::cout << "--- static analysis ---\n"
            << run->result.check.ToString() << "\n";

  std::cout << "--- least model (all derived facts) ---\n"
            << run->result.db.ToString() << "\n";

  // Point lookups against the least model.
  using mad::datalog::Value;
  auto best = mad::core::LookupCost(
      *run->program, run->result.db, "best",
      {Value::Symbol("sfo"), Value::Symbol("jfk")});
  std::cout << "cheapest sfo -> jfk: "
            << (best ? best->ToString() : "(no route)") << "\n";

  std::cout << "\n--- evaluation statistics ---\n"
            << run->result.stats.ToString() << "\n";
  return 0;
}
