// Example 2.6 / 3.1 end-to-end: the shortest-path program on the paper's
// cyclic two-node graph and on a random graph, cross-checked against
// Dijkstra, with all three evaluation strategies.
//
// Build & run:   ./build/examples/shortest_path [nodes] [edges] [seed]

#include <cstdlib>
#include <iostream>

#include "baselines/shortest_path.h"
#include "core/engine.h"
#include "util/string_util.h"
#include "util/table_printer.h"
#include "workloads/generators.h"
#include "workloads/programs.h"
#include "workloads/to_datalog.h"

using namespace mad;

int main(int argc, char** argv) {
  int nodes = argc > 1 ? std::atoi(argv[1]) : 40;
  int edges = argc > 2 ? std::atoi(argv[2]) : 160;
  uint64_t seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 7;

  // --- Part 1: the paper's Example 3.1 graph ------------------------------
  std::cout << "== Example 3.1: arc(a,b,1), arc(b,b,0) ==\n";
  auto ex31 = core::ParseAndRun(std::string(workloads::kShortestPathProgram) +
                                "arc(a, b, 1).\narc(b, b, 0).\n");
  if (!ex31.ok()) {
    std::cerr << ex31.status() << "\n";
    return 1;
  }
  std::cout << ex31->result.db.ToString()
            << "(this is the unique minimal model M1 of Example 3.1 — note "
               "s(a,b,1), not M2's s(a,b,0))\n\n";

  // --- Part 2: a random graph, three strategies vs Dijkstra ----------------
  Random rng(seed);
  baselines::Graph g = workloads::RandomGraph(nodes, edges, {1.0, 10.0}, &rng);
  std::cout << "== Random graph: " << nodes << " nodes, " << g.num_edges
            << " edges, seed " << seed << " ==\n";

  auto program = datalog::ParseProgram(workloads::kShortestPathProgram);
  if (!program.ok()) {
    std::cerr << program.status() << "\n";
    return 1;
  }

  TablePrinter table({"evaluator", "s-facts", "iterations", "derivations",
                      "wall (ms)"});
  std::string reference;
  for (core::Strategy strategy :
       {core::Strategy::kNaive, core::Strategy::kSemiNaive,
        core::Strategy::kGreedy}) {
    datalog::Database edb;
    if (auto st = workloads::AddGraphFacts(*program, g, &edb); !st.ok()) {
      std::cerr << st << "\n";
      return 1;
    }
    core::EvalOptions options;
    options.strategy = strategy;
    core::Engine engine(*program, options);
    auto result = engine.Run(std::move(edb));
    if (!result.ok()) {
      std::cerr << result.status() << "\n";
      return 1;
    }
    const auto* s = result->db.Find(program->FindPredicate("s"));
    table.AddRow({StrategyName(strategy),
                  std::to_string(s != nullptr ? s->size() : 0),
                  std::to_string(result->stats.iterations),
                  std::to_string(result->stats.derivations),
                  StrPrintf("%.2f", result->stats.wall_seconds * 1e3)});
    std::string model = result->db.ToString();
    if (reference.empty()) {
      reference = model;
    } else if (model != reference) {
      std::cerr << "BUG: strategies disagree!\n";
      return 1;
    }
  }
  table.Print(std::cout);

  // Cross-check a few entries against Dijkstra.
  auto want = baselines::AllPairsNonEmptyDijkstra(g);
  datalog::Database edb;
  (void)workloads::AddGraphFacts(*program, g, &edb);
  core::Engine engine(*program);
  auto result = engine.Run(std::move(edb));
  int checked = 0, mismatches = 0;
  for (int x = 0; x < nodes; ++x) {
    for (int y = 0; y < nodes; ++y) {
      auto v = core::LookupCost(
          *program, result->db, "s",
          {datalog::Value::Symbol(baselines::Graph::NodeName(x)),
           datalog::Value::Symbol(baselines::Graph::NodeName(y))});
      double got =
          v.has_value() ? v->AsDouble() : baselines::kUnreachable;
      ++checked;
      if (std::abs(got - want[x][y]) > 1e-9 &&
          !(std::isinf(got) && std::isinf(want[x][y]))) {
        ++mismatches;
      }
    }
  }
  std::cout << "cross-check vs Dijkstra: " << checked << " pairs, "
            << mismatches << " mismatches\n";
  return mismatches == 0 ? 0 : 1;
}
