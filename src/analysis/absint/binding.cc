#include "analysis/absint/binding.h"

#include "util/string_util.h"

namespace mad {
namespace analysis {
namespace absint {

namespace {

using datalog::Expr;
using datalog::Rule;
using datalog::Subgoal;

bool ExprGround(const Expr& e, const std::map<std::string, Binding>& env) {
  std::vector<std::string> vars;
  e.CollectVars(&vars);
  for (const std::string& v : vars) {
    auto it = env.find(v);
    if (it == env.end() || it->second != Binding::kGround) return false;
  }
  return true;
}

}  // namespace

const char* BindingName(Binding b) {
  switch (b) {
    case Binding::kFree:
      return "free";
    case Binding::kGround:
      return "ground";
  }
  return "?";
}

Binding BindingInfo::Of(const std::string& var) const {
  auto it = bindings.find(var);
  return it == bindings.end() ? Binding::kFree : it->second;
}

BindingInfo AnalyzeBindings(const Rule& rule) {
  BindingInfo out;
  for (const std::string& v : rule.AllVars()) {
    out.bindings[v] = Binding::kFree;
  }

  auto ground = [&](const std::string& v, const char* why) {
    auto it = out.bindings.find(v);
    if (it == out.bindings.end() || it->second == Binding::kGround) return;
    it->second = Binding::kGround;
    out.steps.push_back(StrPrintf("%s ground (%s)", v.c_str(), why));
  };

  // Seed: positive atoms and aggregate subgoals bind their variables
  // (aggregate-local variables are ground within the group evaluation, and
  // shared ones are ground in every satisfying substitution of the rule).
  for (const Subgoal& sg : rule.body) {
    switch (sg.kind) {
      case Subgoal::Kind::kAtom:
        for (const std::string& v : sg.Vars()) ground(v, sg.atom.pred->name.c_str());
        break;
      case Subgoal::Kind::kAggregate:
        if (sg.aggregate.result.is_var()) {
          ground(sg.aggregate.result.var, "aggregate result");
        }
        for (const std::string& v : sg.aggregate.AtomVars()) {
          ground(v, "aggregate body");
        }
        break;
      case Subgoal::Kind::kNegatedAtom:  // negation binds nothing
      case Subgoal::Kind::kBuiltin:
        break;
    }
  }

  // Fixpoint over defining equalities: V = expr (or expr = V) with V free
  // and every expr variable ground. Terminates: each pass grounds at least
  // one variable or stops.
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t i = 0; i < rule.body.size(); ++i) {
      const Subgoal& sg = rule.body[i];
      if (sg.kind != Subgoal::Kind::kBuiltin) continue;
      if (out.IsDefining(static_cast<int>(i))) continue;
      if (sg.builtin.op != datalog::CmpOp::kEq) continue;
      const Expr& lhs = *sg.builtin.lhs;
      const Expr& rhs = *sg.builtin.rhs;
      const Expr* defined = nullptr;
      const Expr* source = nullptr;
      if (lhs.kind == Expr::Kind::kVar && out.Of(lhs.var) == Binding::kFree &&
          ExprGround(rhs, out.bindings)) {
        defined = &lhs;
        source = &rhs;
      } else if (rhs.kind == Expr::Kind::kVar && out.Of(rhs.var) == Binding::kFree &&
                 ExprGround(lhs, out.bindings)) {
        defined = &rhs;
        source = &lhs;
      }
      if (defined == nullptr) continue;
      (void)source;
      out.defining_builtins.insert(static_cast<int>(i));
      ground(defined->var, "defining equality");
      changed = true;
    }
  }
  return out;
}

}  // namespace absint
}  // namespace analysis
}  // namespace mad
