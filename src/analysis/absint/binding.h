#ifndef MAD_ANALYSIS_ABSINT_BINDING_H_
#define MAD_ANALYSIS_ABSINT_BINDING_H_

// Groundness/binding domain of the certification layer: a two-point lattice
// kFree ⊑ kGround per rule variable. The abstract rule evaluator uses it to
// tell *defining* built-in equalities (which bind a fresh variable and carry
// interval information) apart from *checks* (which constrain already-bound
// variables and must be proven stable for certification).

#include <map>
#include <set>
#include <string>
#include <vector>

#include "datalog/ast.h"

namespace mad {
namespace analysis {
namespace absint {

enum class Binding {
  kFree,    ///< not bound by any subgoal considered so far
  kGround,  ///< bound to a concrete value in every satisfying substitution
};

const char* BindingName(Binding b);

/// Result of the binding fixpoint over one rule.
struct BindingInfo {
  std::map<std::string, Binding> bindings;
  /// Indices into rule.body of built-in equalities consumed as definitions
  /// (they ground a previously free variable); every other built-in subgoal
  /// is a check.
  std::set<int> defining_builtins;
  /// Human-readable derivation steps, appended to rule traces.
  std::vector<std::string> steps;

  Binding Of(const std::string& var) const;
  bool IsDefining(int builtin_index) const {
    return defining_builtins.count(builtin_index) > 0;
  }
};

/// Runs the binding analysis to a fixpoint: variables of positive atoms and
/// aggregate results start ground (range restriction already guarantees
/// this for well-formed programs); a built-in equality with exactly one free
/// bare-variable side and a ground opposite side grounds that variable and
/// is recorded as defining. Head-only variables stay free unless defined.
BindingInfo AnalyzeBindings(const datalog::Rule& rule);

}  // namespace absint
}  // namespace analysis
}  // namespace mad

#endif  // MAD_ANALYSIS_ABSINT_BINDING_H_
