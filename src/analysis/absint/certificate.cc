#include "analysis/absint/certificate.h"

#include "analysis/lint/diagnostic.h"
#include "util/string_util.h"

namespace mad {
namespace analysis {
namespace absint {

const char* CertificateKindName(CertificateKind k) {
  switch (k) {
    case CertificateKind::kSyntacticallyAdmissible:
      return "syntactically-admissible";
    case CertificateKind::kSemanticallyMonotonic:
      return "semantically-monotonic";
    case CertificateKind::kUncertified:
      return "uncertified";
  }
  return "?";
}

std::string RuleTrace::ToString() const {
  std::string out = StrPrintf("    rule #%d (%s):\n", rule_index,
                              span.ToString().c_str());
  for (const std::string& s : steps) {
    out += "      " + s + "\n";
  }
  return out;
}

std::string ComponentCertificate::ToString() const {
  std::string out = StrPrintf("  component %d: %s", component_index,
                              CertificateKindName(kind));
  if (!reason.empty()) out += StrPrintf(" — %s", reason.c_str());
  out += "\n";
  for (const auto& [pred, iv] : predicate_intervals) {
    out += StrPrintf("    %s ∈ %s\n", pred.c_str(), iv.ToString().c_str());
  }
  if (chains_bounded) {
    out += static_chain_height >= 0
               ? StrPrintf("    chains bounded, height %lld\n",
                           static_chain_height)
               : std::string(
                     "    chains bounded by distinct values at entry\n");
  }
  if (widened) {
    std::string names;
    for (const std::string& p : widened_predicates) {
      if (!names.empty()) names += ", ";
      names += p;
    }
    out += StrPrintf("    widened: %s\n", names.c_str());
  }
  for (const RuleTrace& t : traces) out += t.ToString();
  return out;
}

const ComponentCertificate* CertificateReport::ForComponent(int index) const {
  for (const ComponentCertificate& c : components) {
    if (c.component_index == index) return &c;
  }
  return nullptr;
}

bool CertificateReport::AnySemantic() const {
  for (const ComponentCertificate& c : components) {
    if (c.kind == CertificateKind::kSemanticallyMonotonic) return true;
  }
  return false;
}

std::string CertificateReport::ToString() const {
  std::string out = "certificates:\n";
  for (const ComponentCertificate& c : components) out += c.ToString();
  return out;
}

std::string CertificateReport::ToJson() const {
  using lint::JsonEscape;
  std::string out = "{\n  \"components\": [\n";
  for (size_t i = 0; i < components.size(); ++i) {
    const ComponentCertificate& c = components[i];
    out += "    {\n";
    out += StrPrintf("      \"index\": %d,\n", c.component_index);
    out += StrPrintf("      \"kind\": \"%s\",\n", CertificateKindName(c.kind));
    out += StrPrintf("      \"reason\": \"%s\",\n",
                     JsonEscape(c.reason).c_str());
    out += StrPrintf("      \"chains_bounded\": %s,\n",
                     c.chains_bounded ? "true" : "false");
    out += StrPrintf("      \"static_chain_height\": %lld,\n",
                     c.static_chain_height);
    out += StrPrintf("      \"widened\": %s,\n", c.widened ? "true" : "false");
    out += "      \"intervals\": {";
    bool first = true;
    for (const auto& [pred, iv] : c.predicate_intervals) {
      if (!first) out += ", ";
      first = false;
      out += StrPrintf("\"%s\": \"%s\"", JsonEscape(pred).c_str(),
                       JsonEscape(iv.ToString()).c_str());
    }
    out += "},\n";
    out += "      \"traces\": [\n";
    for (size_t t = 0; t < c.traces.size(); ++t) {
      const RuleTrace& tr = c.traces[t];
      out += StrPrintf("        {\"rule\": %d, \"span\": \"%s\", \"steps\": [",
                       tr.rule_index,
                       JsonEscape(tr.span.ToString()).c_str());
      for (size_t s = 0; s < tr.steps.size(); ++s) {
        if (s > 0) out += ", ";
        out += StrPrintf("\"%s\"", JsonEscape(tr.steps[s]).c_str());
      }
      out += StrPrintf("]}%s\n", t + 1 < c.traces.size() ? "," : "");
    }
    out += "      ]\n";
    out += StrPrintf("    }%s\n", i + 1 < components.size() ? "," : "");
  }
  out += "  ]\n}\n";
  return out;
}

}  // namespace absint
}  // namespace analysis
}  // namespace mad
