#ifndef MAD_ANALYSIS_ABSINT_CERTIFICATE_H_
#define MAD_ANALYSIS_ABSINT_CERTIFICATE_H_

// Machine-checkable certificates produced by the abstract interpreter. One
// certificate per dependency-graph component records how the component was
// admitted (or why it was not), the abstract fixpoint that justifies the
// decision, and a per-rule trace of the abstract derivation — enough for an
// external checker (or the differential harness) to re-validate the claim.

#include <map>
#include <string>
#include <vector>

#include "analysis/absint/interval.h"
#include "datalog/ast.h"

namespace mad {
namespace analysis {
namespace absint {

/// How a component earned the right to be evaluated.
enum class CertificateKind {
  /// Every rule passes Definition 4.5 — today's syntactic path.
  kSyntacticallyAdmissible,
  /// Some rule is rejected by Definition 4.5, but the abstract fixpoint
  /// proves every offending comparison stable at all iteration stages, so
  /// T_P restricted to this component is monotonic anyway.
  kSemanticallyMonotonic,
  /// Neither path applies; the component keeps its syntactic rejection.
  kUncertified,
};

const char* CertificateKindName(CertificateKind k);

/// Abstract derivation record for one rule.
struct RuleTrace {
  int rule_index = -1;
  datalog::SourceSpan span;
  /// Ordered derivation steps: bindings, per-subgoal intervals, comparison
  /// verdicts, head interval.
  std::vector<std::string> steps;

  std::string ToString() const;
};

/// The certificate for one component.
struct ComponentCertificate {
  int component_index = -1;
  CertificateKind kind = CertificateKind::kSyntacticallyAdmissible;
  /// One-line justification (for kUncertified: the blocking violation).
  std::string reason;
  /// Span of the certifying construct (the discharged guard / rule) for
  /// kSemanticallyMonotonic, or of the blocking construct for kUncertified.
  datalog::SourceSpan span;
  std::vector<RuleTrace> traces;

  /// Chain analysis: true when every cost value derivable in this component
  /// is selected from the values present at component entry (plus rule
  /// constants), so per-key ascending chains are bounded by the number of
  /// distinct cost values — even on lattices with infinite chains.
  bool chains_bounded = false;
  /// Static chain height when the widened fixpoint pins an integral cost
  /// predicate to a finite interval (e.g. booleans: 2); -1 when the bound
  /// is only known at runtime (|distinct values| at component entry).
  long long static_chain_height = -1;
  /// True when widening fired; the named predicates lost a finite bound.
  bool widened = false;
  std::vector<std::string> widened_predicates;
  /// Final abstract value per cost predicate of the component.
  std::map<std::string, Interval> predicate_intervals;

  std::string ToString() const;
};

/// Certificates for every component, indexed like DependencyGraph components.
struct CertificateReport {
  std::vector<ComponentCertificate> components;

  const ComponentCertificate* ForComponent(int index) const;
  /// True iff some component needed (and received) the semantic path.
  bool AnySemantic() const;

  std::string ToString() const;
  std::string ToJson() const;
};

}  // namespace absint
}  // namespace analysis
}  // namespace mad

#endif  // MAD_ANALYSIS_ABSINT_CERTIFICATE_H_
