#include "analysis/absint/differential.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "analysis/checker.h"
#include "datalog/database.h"
#include "lattice/cost_domain.h"
#include "util/random.h"
#include "util/string_util.h"

namespace mad {
namespace analysis {
namespace absint {

namespace {

using datalog::Atom;
using datalog::CmpOp;
using datalog::Database;
using datalog::Expr;
using datalog::Fact;
using datalog::PredicateInfo;
using datalog::Program;
using datalog::Relation;
using datalog::Rule;
using datalog::Subgoal;
using datalog::Term;
using datalog::Tuple;
using datalog::Value;
using lattice::CostDomain;
using lattice::NumericDomain;

// ---------------------------------------------------------------------------
// Brute-force naive evaluator
//
// A deliberately dumb re-implementation of the rule semantics (Sections 2-3)
// that shares no code with core/: full scans instead of indexes, a name ->
// value map instead of compiled slots, chaotic per-rule merging instead of
// batched T_P rounds. Its only job is to be an independent oracle for the
// differential harness.
// ---------------------------------------------------------------------------

using Env = std::map<std::string, Value>;

struct BfDerivation {
  const PredicateInfo* pred = nullptr;
  Tuple key;
  std::optional<Value> cost;
};

class BruteForce {
 public:
  explicit BruteForce(const Database* db) : db_(db) {}

  bool unsupported() const { return unsupported_; }

  /// Appends every head instance `rule` derives from the current database.
  void EvalRule(const Rule& rule, std::vector<BfDerivation>* out) {
    env_.clear();
    std::vector<bool> used(rule.body.size(), false);
    Step(rule, &used, out);
  }

 private:
  std::optional<Value> Lookup(const std::string& var) const {
    auto it = env_.find(var);
    if (it == env_.end()) return std::nullopt;
    return it->second;
  }

  bool ExprReady(const Expr& e) const {
    switch (e.kind) {
      case Expr::Kind::kConst:
        return true;
      case Expr::Kind::kVar:
        return env_.count(e.var) > 0;
      default:
        return ExprReady(*e.lhs) && ExprReady(*e.rhs);
    }
  }

  std::optional<Value> EvalExpr(const Expr& e) const {
    switch (e.kind) {
      case Expr::Kind::kConst:
        return e.constant;
      case Expr::Kind::kVar:
        return Lookup(e.var);
      default: {
        std::optional<Value> l = EvalExpr(*e.lhs);
        std::optional<Value> r = EvalExpr(*e.rhs);
        if (!l.has_value() || !r.has_value()) return std::nullopt;
        bool lnum = l->is_numeric() || l->is_bool();
        bool rnum = r->is_numeric() || r->is_bool();
        if (!lnum || !rnum) return std::nullopt;
        bool as_int = l->is_int() && r->is_int();
        switch (e.kind) {
          case Expr::Kind::kAdd:
            return as_int ? Value::Int(l->int_value() + r->int_value())
                          : Value::Real(l->AsDouble() + r->AsDouble());
          case Expr::Kind::kSub:
            return as_int ? Value::Int(l->int_value() - r->int_value())
                          : Value::Real(l->AsDouble() - r->AsDouble());
          case Expr::Kind::kMul:
            return as_int ? Value::Int(l->int_value() * r->int_value())
                          : Value::Real(l->AsDouble() * r->AsDouble());
          case Expr::Kind::kDiv: {
            double denom = r->AsDouble();
            if (denom == 0.0) return std::nullopt;
            return Value::Real(l->AsDouble() / denom);
          }
          case Expr::Kind::kMin2:
            return Value::NumericCompare(*l, *r) <= 0 ? *l : *r;
          case Expr::Kind::kMax2:
            return Value::NumericCompare(*l, *r) >= 0 ? *l : *r;
          default:
            return std::nullopt;
        }
      }
    }
  }

  static bool EvalCompare(CmpOp op, const Value& a, const Value& b) {
    bool anum = a.is_numeric() || a.is_bool();
    bool bnum = b.is_numeric() || b.is_bool();
    if (anum && bnum) {
      int c = Value::NumericCompare(a, b);
      switch (op) {
        case CmpOp::kEq: return c == 0;
        case CmpOp::kNe: return c != 0;
        case CmpOp::kLt: return c < 0;
        case CmpOp::kLe: return c <= 0;
        case CmpOp::kGt: return c > 0;
        case CmpOp::kGe: return c >= 0;
      }
      return false;
    }
    switch (op) {
      case CmpOp::kEq: return a == b;
      case CmpOp::kNe: return !(a == b);
      default: return false;
    }
  }

  std::optional<Value> ResolveTerm(const Term& t) const {
    if (t.is_const()) return t.constant;
    return Lookup(t.var);
  }

  bool TermsResolvable(const std::vector<Term>& terms, size_t count) const {
    for (size_t i = 0; i < count; ++i) {
      if (terms[i].is_var() && env_.count(terms[i].var) == 0) return false;
    }
    return true;
  }

  /// Enumerates matches of one positive atom, calling `cont` per match with
  /// the atom's variables bound. Default-value predicates need ground keys
  /// (the stored value or the lattice bottom is the answer).
  void EnumAtom(const Atom& atom, const std::function<void()>& cont) {
    const PredicateInfo* pred = atom.pred;
    const Relation* rel = db_->Find(pred);
    size_t key_arity = static_cast<size_t>(pred->key_arity());

    if (pred->has_default) {
      if (!TermsResolvable(atom.args, key_arity)) {
        unsupported_ = true;
        return;
      }
      Tuple key;
      key.reserve(key_arity);
      for (size_t i = 0; i < key_arity; ++i) key.push_back(*ResolveTerm(atom.args[i]));
      const Value* stored = rel != nullptr ? rel->Find(key) : nullptr;
      Value cost = stored != nullptr ? *stored : pred->domain->Bottom();
      if (!pred->has_cost) {
        cont();
        return;
      }
      MatchCostAndContinue(atom.args.back(), pred, cost, cont);
      return;
    }

    if (rel == nullptr) return;
    rel->ForEach([&](const Tuple& key, const Value& cost) {
      std::vector<std::string> trail;
      bool ok = true;
      for (size_t i = 0; i < key_arity && ok; ++i) {
        const Term& t = atom.args[i];
        if (t.is_const()) {
          ok = t.constant == key[i];
        } else if (auto bound = Lookup(t.var)) {
          ok = *bound == key[i];
        } else {
          env_[t.var] = key[i];
          trail.push_back(t.var);
        }
      }
      if (ok && pred->has_cost) {
        const Term& ct = atom.args.back();
        if (ct.is_var() && env_.count(ct.var) == 0) {
          env_[ct.var] = cost;
          trail.push_back(ct.var);
        } else {
          Value expected = *ResolveTerm(ct);
          ok = pred->domain->Contains(expected) &&
               pred->domain->Equal(pred->domain->Normalize(expected), cost);
        }
      }
      if (ok) cont();
      for (const std::string& v : trail) env_.erase(v);
    });
  }

  void MatchCostAndContinue(const Term& ct, const PredicateInfo* pred,
                            const Value& cost,
                            const std::function<void()>& cont) {
    if (ct.is_var() && env_.count(ct.var) == 0) {
      env_[ct.var] = cost;
      cont();
      env_.erase(ct.var);
      return;
    }
    Value expected = *ResolveTerm(ct);
    if (pred->domain->Contains(expected) &&
        pred->domain->Equal(pred->domain->Normalize(expected), cost)) {
      cont();
    }
  }

  /// Enumerates a conjunction of positive atoms, deferring default-value
  /// atoms until their keys are ground.
  void EnumAtomList(const std::vector<Atom>& atoms, std::vector<bool>* used,
                    const std::function<void()>& cont) {
    size_t pick = atoms.size();
    for (size_t i = 0; i < atoms.size(); ++i) {
      if ((*used)[i]) continue;
      const Atom& a = atoms[i];
      bool ready = !a.pred->has_default ||
                   TermsResolvable(a.args, a.pred->key_arity());
      if (ready) {
        pick = i;
        break;
      }
      if (pick == atoms.size()) pick = i;  // fall back to the first unused
    }
    if (pick == atoms.size()) {
      cont();
      return;
    }
    (*used)[pick] = true;
    EnumAtom(atoms[pick], [&]() { EnumAtomList(atoms, used, cont); });
    (*used)[pick] = false;
  }

  void EnumAtoms(const std::vector<Atom>& atoms,
                 const std::function<void()>& cont) {
    std::vector<bool> used(atoms.size(), false);
    EnumAtomList(atoms, &used, cont);
  }

  bool NegationHolds(const Atom& atom) {
    const PredicateInfo* pred = atom.pred;
    size_t key_arity = static_cast<size_t>(pred->key_arity());
    Tuple key;
    key.reserve(key_arity);
    for (size_t i = 0; i < key_arity; ++i) key.push_back(*ResolveTerm(atom.args[i]));
    const Relation* rel = db_->Find(pred);
    const Value* stored = rel != nullptr ? rel->Find(key) : nullptr;
    if (!pred->has_cost) return stored == nullptr && (rel == nullptr || !rel->Contains(key));
    std::optional<Value> actual;
    if (stored != nullptr) {
      actual = *stored;
    } else if (pred->has_default) {
      actual = pred->domain->Bottom();
    }
    if (!actual.has_value()) return true;
    Value expected = *ResolveTerm(atom.args.back());
    if (!pred->domain->Contains(expected)) return true;
    return !pred->domain->Equal(pred->domain->Normalize(expected), *actual);
  }

  void EvalAggregate(const datalog::AggregateSubgoal& agg,
                     const std::function<void()>& cont) {
    auto eval_one_group = [&]() {
      std::vector<Value> multiset;
      EnumAtoms(agg.atoms, [&]() {
        if (!agg.multiset_var.empty()) {
          auto it = env_.find(agg.multiset_var);
          multiset.push_back(it != env_.end() ? it->second : Value::Bool(true));
        } else {
          multiset.push_back(Value::Bool(true));
        }
      });
      if (agg.restricted && multiset.empty()) return;
      StatusOr<Value> applied = agg.function->Apply(multiset);
      if (!applied.ok()) return;
      const CostDomain* dom = agg.function->output_domain();
      Value norm = dom->Normalize(applied.value());
      if (agg.result.is_var() && env_.count(agg.result.var) == 0) {
        env_[agg.result.var] = norm;
        cont();
        env_.erase(agg.result.var);
        return;
      }
      Value expected = *ResolveTerm(agg.result);
      if (dom->Contains(expected) &&
          dom->Equal(dom->Normalize(expected), norm)) {
        cont();
      }
    };

    std::vector<std::string> unbound;
    for (const std::string& g : agg.grouping_vars) {
      if (env_.count(g) == 0) unbound.push_back(g);
    }
    if (unbound.empty()) {
      eval_one_group();
      return;
    }
    // "=r" form reached with unbound grouping variables: enumerate the
    // non-empty groups, then aggregate once per group.
    std::vector<Tuple> groups;
    EnumAtoms(agg.atoms, [&]() {
      Tuple g;
      g.reserve(agg.grouping_vars.size());
      for (const std::string& v : agg.grouping_vars) g.push_back(env_.at(v));
      groups.push_back(std::move(g));
    });
    std::sort(groups.begin(), groups.end());
    groups.erase(std::unique(groups.begin(), groups.end()), groups.end());
    for (const Tuple& g : groups) {
      for (size_t i = 0; i < agg.grouping_vars.size(); ++i) {
        if (env_.count(agg.grouping_vars[i]) == 0) {
          env_[agg.grouping_vars[i]] = g[i];
        }
      }
      eval_one_group();
      for (const std::string& v : unbound) env_.erase(v);
    }
  }

  void Step(const Rule& rule, std::vector<bool>* used,
            std::vector<BfDerivation>* out) {
    if (unsupported_) return;
    // Pick the next evaluable subgoal: positive atoms first (they bind),
    // then ready builtins/negations, aggregates last.
    size_t pick = rule.body.size();
    int pick_rank = 99;
    for (size_t i = 0; i < rule.body.size(); ++i) {
      if ((*used)[i]) continue;
      const Subgoal& sg = rule.body[i];
      int rank = -1;
      switch (sg.kind) {
        case Subgoal::Kind::kAtom:
          if (!sg.atom.pred->has_default ||
              TermsResolvable(sg.atom.args, sg.atom.pred->key_arity())) {
            rank = 0;
          }
          break;
        case Subgoal::Kind::kBuiltin: {
          const datalog::BuiltinSubgoal& b = sg.builtin;
          bool assign =
              b.op == CmpOp::kEq &&
              ((b.lhs->kind == Expr::Kind::kVar &&
                env_.count(b.lhs->var) == 0 && ExprReady(*b.rhs)) ||
               (b.rhs->kind == Expr::Kind::kVar &&
                env_.count(b.rhs->var) == 0 && ExprReady(*b.lhs)));
          if (assign || (ExprReady(*b.lhs) && ExprReady(*b.rhs))) rank = 1;
          break;
        }
        case Subgoal::Kind::kNegatedAtom: {
          bool ready = true;
          for (const Term& t : sg.atom.args) {
            if (t.is_var() && env_.count(t.var) == 0) ready = false;
          }
          if (ready) rank = 1;
          break;
        }
        case Subgoal::Kind::kAggregate:
          rank = 2;  // group enumeration copes with unbound grouping vars
          break;
      }
      if (rank >= 0 && rank < pick_rank) {
        pick = i;
        pick_rank = rank;
        if (rank == 0) break;
      }
    }
    if (pick == rule.body.size()) {
      bool all_used = true;
      for (bool u : *used) all_used = all_used && u;
      if (!all_used) {
        unsupported_ = true;  // e.g. a builtin over never-bound variables
        return;
      }
      EmitHead(rule, out);
      return;
    }

    (*used)[pick] = true;
    const Subgoal& sg = rule.body[pick];
    auto next = [&]() { Step(rule, used, out); };
    switch (sg.kind) {
      case Subgoal::Kind::kAtom:
        EnumAtom(sg.atom, next);
        break;
      case Subgoal::Kind::kNegatedAtom:
        if (NegationHolds(sg.atom)) next();
        break;
      case Subgoal::Kind::kBuiltin: {
        const datalog::BuiltinSubgoal& b = sg.builtin;
        const Expr* target = nullptr;
        const Expr* source = nullptr;
        if (b.op == CmpOp::kEq && b.lhs->kind == Expr::Kind::kVar &&
            env_.count(b.lhs->var) == 0 && ExprReady(*b.rhs)) {
          target = b.lhs.get();
          source = b.rhs.get();
        } else if (b.op == CmpOp::kEq && b.rhs->kind == Expr::Kind::kVar &&
                   env_.count(b.rhs->var) == 0 && ExprReady(*b.lhs)) {
          target = b.rhs.get();
          source = b.lhs.get();
        }
        if (target != nullptr) {
          std::optional<Value> v = EvalExpr(*source);
          if (v.has_value()) {
            env_[target->var] = std::move(*v);
            next();
            env_.erase(target->var);
          }
          break;
        }
        std::optional<Value> l = EvalExpr(*b.lhs);
        std::optional<Value> r = EvalExpr(*b.rhs);
        if (l.has_value() && r.has_value() && EvalCompare(b.op, *l, *r)) {
          next();
        }
        break;
      }
      case Subgoal::Kind::kAggregate:
        EvalAggregate(sg.aggregate, next);
        break;
    }
    (*used)[pick] = false;
  }

  void EmitHead(const Rule& rule, std::vector<BfDerivation>* out) {
    const PredicateInfo* pred = rule.head.pred;
    BfDerivation d;
    d.pred = pred;
    size_t key_arity = static_cast<size_t>(pred->key_arity());
    for (size_t i = 0; i < key_arity; ++i) {
      std::optional<Value> v = ResolveTerm(rule.head.args[i]);
      if (!v.has_value()) return;  // not range-restricted; nothing to derive
      d.key.push_back(std::move(*v));
    }
    if (pred->has_cost) {
      std::optional<Value> raw = ResolveTerm(rule.head.args.back());
      if (!raw.has_value()) return;
      if (!pred->domain->Contains(*raw)) return;
      d.cost = pred->domain->Normalize(*raw);
    }
    out->push_back(std::move(d));
  }

  const Database* db_;
  Env env_;
  bool unsupported_ = false;
};

// ---------------------------------------------------------------------------
// Randomized EDBs
// ---------------------------------------------------------------------------

/// Predicates that may receive random facts: referenced in some rule body but
/// never derived by a rule head, with numeric/boolean (or absent) costs.
std::vector<const PredicateInfo*> EdbPredicates(const Program& program) {
  std::set<const PredicateInfo*> heads = program.HeadPredicates();
  std::set<const PredicateInfo*> seen;
  std::vector<const PredicateInfo*> out;
  auto add = [&](const PredicateInfo* p) {
    if (p == nullptr || heads.count(p) > 0 || !seen.insert(p).second) return;
    if (p->has_cost &&
        dynamic_cast<const NumericDomain*>(p->domain) == nullptr) {
      return;  // set-valued EDB costs: inline facts only
    }
    out.push_back(p);
  };
  for (const Rule& rule : program.rules()) {
    for (const Subgoal& sg : rule.body) {
      switch (sg.kind) {
        case Subgoal::Kind::kAtom:
        case Subgoal::Kind::kNegatedAtom:
          add(sg.atom.pred);
          break;
        case Subgoal::Kind::kAggregate:
          for (const Atom& a : sg.aggregate.atoms) add(a.pred);
          break;
        case Subgoal::Kind::kBuiltin:
          break;
      }
    }
  }
  for (const Fact& f : program.facts()) add(f.pred);
  return out;
}

std::vector<Fact> RandomFacts(const Program& program, Random* rng,
                              int max_facts) {
  // Key-column value pools from the inline facts, so generated keys overlap
  // with whatever constants the rules mention via those facts.
  std::map<const PredicateInfo*, std::vector<std::vector<Value>>> pools;
  for (const Fact& f : program.facts()) {
    auto& cols = pools[f.pred];
    cols.resize(f.pred->key_arity());
    for (size_t i = 0; i < f.key.size(); ++i) cols[i].push_back(f.key[i]);
  }
  std::vector<Value> fallback;
  for (int i = 0; i < 5; ++i) {
    fallback.push_back(Value::Symbol(StrPrintf("n%d", i)));
  }

  std::vector<Fact> facts;
  for (const PredicateInfo* pred : EdbPredicates(program)) {
    int n = static_cast<int>(rng->Uniform(1, std::max(1, max_facts)));
    for (int i = 0; i < n; ++i) {
      Fact f;
      f.pred = pred;
      for (int col = 0; col < pred->key_arity(); ++col) {
        const std::vector<Value>* pool = &fallback;
        auto it = pools.find(pred);
        if (it != pools.end() && col < static_cast<int>(it->second.size()) &&
            !it->second[col].empty() && rng->Bernoulli(0.7)) {
          pool = &it->second[col];
        }
        f.key.push_back((*pool)[rng->Uniform(0, pool->size() - 1)]);
      }
      if (pred->has_cost) {
        const auto* num = static_cast<const NumericDomain*>(pred->domain);
        double lo = std::max(num->lo(), -8.0);
        double hi = std::min(num->hi(), 8.0);
        if (lo > hi) lo = hi = std::isfinite(num->lo()) ? num->lo() : num->hi();
        if (num->integral()) {
          f.cost = Value::Int(rng->Uniform(static_cast<int64_t>(std::ceil(lo)),
                                           static_cast<int64_t>(std::floor(hi))));
        } else {
          // Quarter-step quantization so distinct facts collide on values,
          // exercising the lattice-join path.
          double v = rng->UniformReal(lo, hi);
          f.cost = Value::Real(std::round(v * 4.0) / 4.0);
        }
      }
      facts.push_back(std::move(f));
    }
  }
  return facts;
}

/// One full bottom-up evaluation under a specific ordering. Returns the
/// model rendered as sorted fact lines, or nullopt when the program uses a
/// construct the brute-force evaluator does not support / diverges.
struct EvalOutcome {
  bool unsupported = false;
  bool diverged = false;
  std::string model;
};

EvalOutcome EvaluateOnce(const Program& program, const DependencyGraph& graph,
                         const std::vector<Fact>& facts, Random* rng,
                         int max_rounds) {
  EvalOutcome outcome;
  Database db;
  std::vector<int> fact_order = rng->Permutation(static_cast<int>(facts.size()));
  for (int idx : fact_order) {
    // Out-of-domain inline facts would have failed parsing already.
    (void)db.AddFact(facts[idx]);
  }

  for (const Component& comp : graph.components()) {
    std::vector<Rule> rules;
    std::vector<int> order =
        rng->Permutation(static_cast<int>(comp.rule_indices.size()));
    for (int oi : order) {
      Rule clone = program.rules()[comp.rule_indices[oi]].Clone();
      // Shuffle the body too: the evaluator schedules greedily, so this
      // permutes tie-breaking among simultaneously-ready subgoals.
      std::vector<int> body_order =
          rng->Permutation(static_cast<int>(clone.body.size()));
      std::vector<Subgoal> body;
      body.reserve(clone.body.size());
      for (int bi : body_order) body.push_back(std::move(clone.body[bi]));
      clone.body = std::move(body);
      clone.Finalize();
      rules.push_back(std::move(clone));
    }

    bool changed = true;
    int rounds = 0;
    while (changed) {
      if (++rounds > max_rounds) {
        outcome.diverged = true;
        return outcome;
      }
      changed = false;
      for (const Rule& rule : rules) {
        BruteForce bf(&db);
        std::vector<BfDerivation> derivs;
        bf.EvalRule(rule, &derivs);
        if (bf.unsupported()) {
          outcome.unsupported = true;
          return outcome;
        }
        for (const BfDerivation& d : derivs) {
          Relation* rel = db.GetOrCreate(d.pred);
          Relation::MergeResult r =
              rel->Merge(d.key, d.cost.value_or(Value::Bool(true)));
          if (r != Relation::MergeResult::kUnchanged) changed = true;
        }
      }
    }
  }
  outcome.model = db.ToString();
  return outcome;
}

}  // namespace

std::string DifferentialResult::ToString() const {
  std::string out = StrPrintf(
      "differential: %d trial(s), %d skipped, %d mismatch(es)", trials_run,
      skipped, mismatches);
  if (!first_mismatch.empty()) out += "\n  first: " + first_mismatch;
  return out;
}

DifferentialResult RunDifferential(const datalog::Program& program,
                                   const DependencyGraph& graph,
                                   const DifferentialOptions& options) {
  DifferentialResult result;
  Random rng(options.seed);
  for (int trial = 0; trial < options.trials; ++trial) {
    std::vector<Fact> random_facts =
        RandomFacts(program, &rng, options.max_facts);

    // Certify against THIS database: a certificate is only valid for the
    // fact values the interpreter has seen.
    Database cert_db;
    for (const Fact& f : random_facts) (void)cert_db.AddFact(f);
    ProgramCheckResult check = CheckProgram(program, graph, "", &cert_db);
    if (!check.overall().ok()) {
      ++result.skipped;
      continue;
    }
    // Failing to reach a fixpoint in max_rounds is only a certificate
    // violation when the check promised termination; an accepted program on
    // an infinite-chain lattice (e.g. min_real with a negative cycle) can
    // legitimately descend forever, and there is no model to compare.
    bool termination_guaranteed = true;
    for (const ComponentTermination& t : check.termination.components) {
      termination_guaranteed =
          termination_guaranteed &&
          (t.verdict == TerminationVerdict::kGuaranteed ||
           t.verdict == TerminationVerdict::kBoundedChains);
    }

    std::vector<Fact> all_facts = random_facts;
    for (const Fact& f : program.facts()) all_facts.push_back(f);

    std::string reference;
    bool counted = false;
    for (int o = 0; o < std::max(2, options.orderings); ++o) {
      EvalOutcome outcome = EvaluateOnce(program, graph, all_facts, &rng,
                                         options.max_rounds);
      if (outcome.unsupported) {
        ++result.skipped;
        counted = true;
        break;
      }
      if (outcome.diverged) {
        if (!termination_guaranteed) {
          ++result.skipped;
        } else {
          ++result.mismatches;
          if (result.first_mismatch.empty()) {
            result.first_mismatch = StrPrintf(
                "trial %d ordering %d: termination was certified but no "
                "fixpoint within %d naive rounds",
                trial, o, options.max_rounds);
          }
          ++result.trials_run;
        }
        counted = true;
        break;
      }
      if (o == 0) {
        reference = outcome.model;
        continue;
      }
      if (outcome.model != reference) {
        ++result.mismatches;
        if (result.first_mismatch.empty()) {
          result.first_mismatch = StrPrintf(
              "trial %d: ordering %d disagrees with ordering 0 on the least "
              "model (%zu vs %zu bytes)",
              trial, o, outcome.model.size(), reference.size());
        }
        ++result.trials_run;
        counted = true;
        break;
      }
    }
    if (!counted) ++result.trials_run;
  }
  return result;
}

}  // namespace absint
}  // namespace analysis
}  // namespace mad
