#ifndef MAD_ANALYSIS_ABSINT_DIFFERENTIAL_H_
#define MAD_ANALYSIS_ABSINT_DIFFERENTIAL_H_

// Differential validation of the semantic certificates: a certificate claims
// the component's T_P is monotonic, and a monotone operator has ONE least
// fixpoint no matter how the chaotic iteration is ordered. The harness
// checks that claim empirically — randomized small EDBs, several rule/fact
// orderings each, evaluated by a brute-force naive evaluator that shares no
// code with the production engine — and reports any pair of orderings that
// disagree on the least model. Programs the checker rejects (uncertified
// non-monotonic components) are skipped, not counted as failures: the
// harness validates accepted programs, it does not re-litigate rejections.

#include <cstdint>
#include <string>

#include "analysis/dependency_graph.h"
#include "datalog/ast.h"

namespace mad {
namespace analysis {
namespace absint {

struct DifferentialOptions {
  /// Number of randomized EDBs to try.
  int trials = 100;
  /// Orderings per EDB (rule order within components, body subgoal order,
  /// fact insertion order). All orderings must yield byte-identical models.
  int orderings = 3;
  /// Random facts added per EDB predicate (on top of the inline facts).
  int max_facts = 8;
  /// Naive rounds before declaring divergence (a certificate violation for
  /// bounded-chain components, since the concrete chains should be finite).
  int max_rounds = 400;
  uint64_t seed = 0x5eedULL;
};

struct DifferentialResult {
  int trials_run = 0;   ///< EDBs actually evaluated
  int skipped = 0;      ///< EDBs whose check rejected (or unsupported rules)
  int mismatches = 0;   ///< EDBs where two orderings disagreed (or diverged)
  std::string first_mismatch;  ///< human-readable detail of the first failure

  bool ok() const { return mismatches == 0; }
  std::string ToString() const;
};

/// Runs the harness over `program`. `graph` must be built from `program`.
/// Each trial re-runs the full static checker (including certification)
/// against the trial's EDB; only accepted programs are evaluated.
DifferentialResult RunDifferential(const datalog::Program& program,
                                   const DependencyGraph& graph,
                                   const DifferentialOptions& options = {});

}  // namespace absint
}  // namespace analysis
}  // namespace mad

#endif  // MAD_ANALYSIS_ABSINT_DIFFERENTIAL_H_
