#include "analysis/absint/engine.h"

#include <algorithm>

#include "analysis/absint/binding.h"
#include "analysis/absint/transfer.h"
#include "analysis/admissibility.h"
#include "lattice/cost_domain.h"
#include "util/string_util.h"

namespace mad {
namespace analysis {
namespace absint {

namespace {

using datalog::Atom;
using datalog::CmpOp;
using datalog::Expr;
using datalog::PredicateInfo;
using datalog::Program;
using datalog::Rule;
using datalog::Subgoal;
using datalog::Term;
using datalog::Value;
using lattice::CostDomain;
using lattice::NumericDomain;

const NumericDomain* NumericDomainOf(const PredicateInfo* pred) {
  if (pred == nullptr || !pred->has_cost) return nullptr;
  return dynamic_cast<const NumericDomain*>(pred->domain);
}

Interval DomainBounds(const NumericDomain* num) {
  return Interval::Range(num->lo(), num->hi());
}

/// Abstract state: per cost predicate, the hull of every value it can hold
/// at any stage of the concrete iteration. Absent = no value reaches it.
using AbstractState = std::map<const PredicateInfo*, Interval>;

Interval PredInterval(const AbstractState& state, const PredicateInfo* pred) {
  auto it = state.find(pred);
  return it == state.end() ? Interval::Empty() : it->second;
}

void JoinInto(AbstractState* state, const PredicateInfo* pred,
              const Interval& iv) {
  if (iv.IsEmpty()) return;
  auto it = state->find(pred);
  if (it == state->end()) {
    state->emplace(pred, iv);
  } else {
    it->second = Join(it->second, iv);
  }
}

// ---------------------------------------------------------------------------
// Abstract rule evaluation
// ---------------------------------------------------------------------------

/// Variable environment of one abstract rule application. Absent = the
/// variable is unconstrained (⊤); an empty interval means no concrete
/// binding can reach the variable, so the rule never fires.
using VarEnv = std::map<std::string, Interval>;

Interval EnvLookup(const VarEnv& env, const std::string& var) {
  auto it = env.find(var);
  return it == env.end() ? Interval::All() : it->second;
}

/// Meets `iv` into the environment (a variable constrained by two subgoals
/// takes values in the intersection of both abstractions).
bool Constrain(VarEnv* env, const std::string& var, const Interval& iv) {
  auto it = env->find(var);
  if (it == env->end()) {
    env->emplace(var, iv);
    return true;
  }
  Interval met = Meet(it->second, iv);
  if (met == it->second) return false;
  it->second = met;
  return true;
}

Interval EvalExpr(const Expr& e, const VarEnv& env) {
  switch (e.kind) {
    case Expr::Kind::kConst:
      if (e.constant.is_numeric() || e.constant.is_bool()) {
        return Interval::Point(e.constant.AsDouble());
      }
      return Interval::All();  // symbolic constant: no numeric abstraction
    case Expr::Kind::kVar:
      return EnvLookup(env, e.var);
    case Expr::Kind::kAdd:
      return Add(EvalExpr(*e.lhs, env), EvalExpr(*e.rhs, env));
    case Expr::Kind::kSub:
      return Sub(EvalExpr(*e.lhs, env), EvalExpr(*e.rhs, env));
    case Expr::Kind::kMul:
      return Mul(EvalExpr(*e.lhs, env), EvalExpr(*e.rhs, env));
    case Expr::Kind::kDiv:
      return Div(EvalExpr(*e.lhs, env), EvalExpr(*e.rhs, env));
    case Expr::Kind::kMin2:
      return Min2(EvalExpr(*e.lhs, env), EvalExpr(*e.rhs, env));
    case Expr::Kind::kMax2:
      return Max2(EvalExpr(*e.lhs, env), EvalExpr(*e.rhs, env));
  }
  return Interval::All();
}

struct RuleAbstraction {
  /// Head cost interval (empty when some subgoal is abstractly
  /// unsatisfiable, e.g. an atom over a predicate with no facts yet).
  Interval head;
  /// Three-valued verdict per *check* built-in (body index); defining
  /// equalities are consumed as interval assignments instead.
  std::map<int, Truth> check_truth;
  /// Checks whose verdict rests on an empty operand interval — vacuously
  /// true because no fact value reaches the comparison at all. Vacuous
  /// truth is not evidence: it would certify any program over an empty
  /// database.
  std::set<int> vacuous_checks;
  std::vector<std::string> steps;
};

RuleAbstraction AbstractRule(const Rule& rule, const BindingInfo& binding,
                             const AbstractState& state) {
  RuleAbstraction out;
  VarEnv env;

  // Constraint-propagation passes: atoms and aggregates constrain their
  // cost variables, defining equalities evaluate their right-hand sides.
  // Each pass only meets intervals, so a handful of passes reaches the
  // greatest consistent environment for chains of definitions.
  size_t passes = rule.body.size() + 1;
  for (size_t pass = 0; pass < passes; ++pass) {
    bool changed = false;
    for (size_t i = 0; i < rule.body.size(); ++i) {
      const Subgoal& sg = rule.body[i];
      switch (sg.kind) {
        case Subgoal::Kind::kAtom: {
          const NumericDomain* num = NumericDomainOf(sg.atom.pred);
          const Term* cost = sg.atom.CostTerm();
          if (num != nullptr && cost != nullptr && cost->is_var()) {
            changed |= Constrain(&env, cost->var,
                                 PredInterval(state, sg.atom.pred));
          }
          break;
        }
        case Subgoal::Kind::kNegatedAtom:
          break;  // carries no numeric information
        case Subgoal::Kind::kAggregate: {
          // Inner atoms constrain their own (possibly local) variables in
          // the same environment; the element interval is whatever the
          // multiset variable ends up with.
          for (const Atom& a : sg.aggregate.atoms) {
            const NumericDomain* num = NumericDomainOf(a.pred);
            const Term* cost = a.CostTerm();
            if (num != nullptr && cost != nullptr && cost->is_var()) {
              changed |= Constrain(&env, cost->var,
                                   PredInterval(state, a.pred));
            }
          }
          Interval element =
              sg.aggregate.multiset_var.empty()
                  ? Interval::Point(1.0)  // implicit boolean element
                  : EnvLookup(env, sg.aggregate.multiset_var);
          AggregateTransfer t = TransferAggregate(sg.aggregate, element);
          if (sg.aggregate.result.is_var()) {
            changed |= Constrain(&env, sg.aggregate.result.var, t.out);
          }
          break;
        }
        case Subgoal::Kind::kBuiltin: {
          if (!binding.IsDefining(static_cast<int>(i))) break;
          const Expr& lhs = *sg.builtin.lhs;
          const Expr& rhs = *sg.builtin.rhs;
          // The defining side is the bare variable (binding.cc picked it).
          if (lhs.kind == Expr::Kind::kVar) {
            changed |= Constrain(&env, lhs.var, EvalExpr(rhs, env));
          } else if (rhs.kind == Expr::Kind::kVar) {
            changed |= Constrain(&env, rhs.var, EvalExpr(lhs, env));
          }
          break;
        }
      }
    }
    if (!changed) break;
  }

  // Checks are evaluated three-valued but never refine the environment:
  // using a guard to narrow the intervals that then certify the same guard
  // would be circular.
  for (size_t i = 0; i < rule.body.size(); ++i) {
    const Subgoal& sg = rule.body[i];
    if (sg.kind != Subgoal::Kind::kBuiltin) continue;
    if (binding.IsDefining(static_cast<int>(i))) continue;
    Interval lhs = EvalExpr(*sg.builtin.lhs, env);
    Interval rhs = EvalExpr(*sg.builtin.rhs, env);
    Truth t = Compare(sg.builtin.op, lhs, rhs);
    out.check_truth[static_cast<int>(i)] = t;
    if (lhs.IsEmpty() || rhs.IsEmpty()) {
      out.vacuous_checks.insert(static_cast<int>(i));
    }
    out.steps.push_back(StrPrintf(
        "check %s: lhs %s, rhs %s — %s", sg.builtin.ToString().c_str(),
        lhs.ToString().c_str(), rhs.ToString().c_str(), TruthName(t)));
  }

  // Head interval.
  if (NumericDomainOf(rule.head.pred) != nullptr) {
    const Term* cost = rule.head.CostTerm();
    if (cost != nullptr) {
      out.head = cost->is_var() ? EnvLookup(env, cost->var)
                 : (cost->constant.is_numeric() || cost->constant.is_bool())
                     ? Interval::Point(cost->constant.AsDouble())
                     : Interval::All();
      // An abstractly unsatisfiable body (some constrained variable has an
      // empty interval) means the rule cannot fire at any stage.
      for (const auto& [_, iv] : env) {
        if (iv.IsEmpty()) {
          out.head = Interval::Empty();
          break;
        }
      }
      out.steps.push_back(
          StrPrintf("head %s cost ∈ %s", rule.head.pred->name.c_str(),
                    out.head.ToString().c_str()));
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Flippability (mirror of the Definition 4.4 polarity check)
// ---------------------------------------------------------------------------

Sign NegateSign(Sign s) {
  switch (s) {
    case Sign::kUp:
      return Sign::kDown;
    case Sign::kDown:
      return Sign::kUp;
    default:
      return s;
  }
}

Sign AddSigns(Sign a, Sign b) {
  if (a == Sign::kFixed) return b;
  if (b == Sign::kFixed) return a;
  if (a == b) return a;
  return Sign::kUnknown;
}

/// Seeds for PolarityAnalysis, mirroring admissibility.cc's CdbCostVars:
/// cost variables of CDB atoms and results of CDB aggregates, signed by
/// their lattice direction.
std::map<std::string, Sign> PolaritySeeds(const Rule& rule,
                                          const DependencyGraph& graph) {
  std::map<std::string, Sign> seeds;
  auto seed = [&](const std::string& var, const CostDomain* domain) {
    const auto* num = dynamic_cast<const NumericDomain*>(domain);
    if (num == nullptr) {
      seeds[var] = Sign::kUnknown;
    } else {
      seeds[var] = num->ascending() ? Sign::kUp : Sign::kDown;
    }
  };
  for (const Subgoal& sg : rule.body) {
    switch (sg.kind) {
      case Subgoal::Kind::kAtom:
      case Subgoal::Kind::kNegatedAtom: {
        if (!graph.IsCdbFor(rule, sg.atom.pred)) break;
        const Term* cost = sg.atom.CostTerm();
        if (cost != nullptr && cost->is_var()) {
          seed(cost->var, sg.atom.pred->domain);
        }
        break;
      }
      case Subgoal::Kind::kAggregate: {
        bool cdb = false;
        for (const Atom& a : sg.aggregate.atoms) {
          cdb = cdb || graph.IsCdbFor(rule, a.pred);
        }
        if (cdb && sg.aggregate.result.is_var() &&
            sg.aggregate.function != nullptr) {
          seed(sg.aggregate.result.var,
               sg.aggregate.function->output_domain());
        }
        break;
      }
      case Subgoal::Kind::kBuiltin:
        break;
    }
  }
  return seeds;
}

/// True when the comparison can flip from satisfied to unsatisfied as the
/// CDB interpretation grows — the failure mode Definition 4.4 forbids.
/// Mirrors PolarityAnalysis::CheckComparisons: the lhs−rhs difference must
/// not move against the comparison's direction.
bool ComparisonCanFlip(CmpOp op, Sign lhs, Sign rhs) {
  Sign diff = AddSigns(lhs, NegateSign(rhs));
  switch (op) {
    case CmpOp::kGt:
    case CmpOp::kGe:
      return diff != Sign::kUp && diff != Sign::kFixed;
    case CmpOp::kLt:
    case CmpOp::kLe:
      return diff != Sign::kDown && diff != Sign::kFixed;
    case CmpOp::kEq:
    case CmpOp::kNe:
      return diff != Sign::kFixed;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Selective cost flow (bounded chains on infinite lattices)
// ---------------------------------------------------------------------------

/// True when `e` only selects among existing cost values and constants:
/// variables, constants, and min/max combinations thereof. Arithmetic
/// (+,−,×,÷) can manufacture fresh values and breaks the property.
bool SelectiveExpr(const Expr& e) {
  switch (e.kind) {
    case Expr::Kind::kConst:
    case Expr::Kind::kVar:
      return true;
    case Expr::Kind::kMin2:
    case Expr::Kind::kMax2:
      return SelectiveExpr(*e.lhs) && SelectiveExpr(*e.rhs);
    default:
      return false;
  }
}

/// True when every cost value this rule can put in its head is drawn from
/// values already present in body predicates, rule constants, or selective
/// aggregates over them — so the rule never extends the set of cost values
/// in play, and per-key chains are bounded by the number of distinct values
/// at component entry.
bool RuleHasSelectiveCostFlow(const Rule& rule, const BindingInfo& binding) {
  if (!rule.head.pred->has_cost) return true;  // keys only: nothing to grow
  const Term* cost = rule.head.CostTerm();
  if (cost == nullptr) return true;
  if (cost->is_const()) return true;  // one fixed value
  const std::string& hv = cost->var;

  for (size_t i = 0; i < rule.body.size(); ++i) {
    const Subgoal& sg = rule.body[i];
    switch (sg.kind) {
      case Subgoal::Kind::kAtom: {
        const Term* c = sg.atom.CostTerm();
        if (c != nullptr && c->is_var() && c->var == hv) return true;
        break;
      }
      case Subgoal::Kind::kAggregate:
        if (sg.aggregate.result.is_var() && sg.aggregate.result.var == hv) {
          return sg.aggregate.function != nullptr &&
                 IsSelective(*sg.aggregate.function);
        }
        break;
      case Subgoal::Kind::kBuiltin: {
        if (!binding.IsDefining(static_cast<int>(i))) break;
        const Expr& lhs = *sg.builtin.lhs;
        const Expr& rhs = *sg.builtin.rhs;
        if (lhs.kind == Expr::Kind::kVar && lhs.var == hv) {
          return SelectiveExpr(rhs);
        }
        if (rhs.kind == Expr::Kind::kVar && rhs.var == hv) {
          return SelectiveExpr(lhs);
        }
        break;
      }
      case Subgoal::Kind::kNegatedAtom:
        break;
    }
  }
  // The head variable is bound some other way (e.g. a key position);
  // conservatively treat the flow as generative.
  return false;
}

}  // namespace

// ---------------------------------------------------------------------------
// CertifyProgram
// ---------------------------------------------------------------------------

CertificateReport CertifyProgram(const Program& program,
                                 const DependencyGraph& graph,
                                 const datalog::Database* edb,
                                 const AbsintOptions& options) {
  CertificateReport report;

  // Initial abstract state: the hull of every known fact value. A
  // certificate is relative to these values; callers evaluating against an
  // external database pass it here so the intervals cover its rows too.
  AbstractState state;
  for (const datalog::Fact& f : program.facts()) {
    const NumericDomain* num = NumericDomainOf(f.pred);
    if (num == nullptr || !f.cost.has_value()) continue;
    if (f.cost->is_numeric() || f.cost->is_bool()) {
      JoinInto(&state, f.pred, Interval::Point(f.cost->AsDouble()));
    }
  }
  if (edb != nullptr) {
    for (const auto& [_, rel] : edb->relations()) {
      const NumericDomain* num = NumericDomainOf(rel->pred());
      if (num == nullptr) continue;
      const PredicateInfo* pred = rel->pred();
      rel->ForEach([&](const datalog::Tuple&, const Value& cost) {
        if (cost.is_numeric() || cost.is_bool()) {
          JoinInto(&state, pred, Interval::Point(cost.AsDouble()));
        }
      });
    }
  }
  // Stored values always lie inside their declared domain.
  for (auto& [pred, iv] : state) {
    const NumericDomain* num = NumericDomainOf(pred);
    if (num != nullptr) iv = Meet(iv, DomainBounds(num));
  }

  for (const Component& component : graph.components()) {
    ComponentCertificate cert;
    cert.component_index = component.index;

    std::vector<const Rule*> rules;
    std::vector<BindingInfo> bindings;
    for (int ri : component.rule_indices) {
      rules.push_back(&program.rules()[ri]);
      bindings.push_back(AnalyzeBindings(*rules.back()));
    }

    // --- Abstract fixpoint with widening (simultaneous rounds, mirroring
    // the naive T_P iteration the soundness argument is phrased over).
    std::set<std::string> widened;
    for (int round = 0; round < options.max_rounds; ++round) {
      AbstractState next = state;
      for (size_t r = 0; r < rules.size(); ++r) {
        RuleAbstraction ra = AbstractRule(*rules[r], bindings[r], state);
        const NumericDomain* num = NumericDomainOf(rules[r]->head.pred);
        if (num != nullptr) {
          JoinInto(&next, rules[r]->head.pred, Meet(ra.head,
                                                    DomainBounds(num)));
        }
      }
      bool changed = false;
      for (const PredicateInfo* pred : component.predicates) {
        Interval before = PredInterval(state, pred);
        Interval after = PredInterval(next, pred);
        if (round >= options.widen_after) {
          Interval wide = Widen(before, after);
          if (wide != after) {
            widened.insert(pred->name);
            const NumericDomain* num = NumericDomainOf(pred);
            if (num != nullptr) wide = Meet(wide, DomainBounds(num));
          }
          after = wide;
        }
        if (after != before) {
          changed = true;
          if (!after.IsEmpty()) state[pred] = after;
        }
      }
      if (!changed) break;
    }
    cert.widened = !widened.empty();
    cert.widened_predicates.assign(widened.begin(), widened.end());

    // --- Final pass: traces, check verdicts, certification.
    std::vector<RuleAbstraction> finals;
    for (size_t r = 0; r < rules.size(); ++r) {
      finals.push_back(AbstractRule(*rules[r], bindings[r], state));
      RuleTrace trace;
      trace.rule_index = component.rule_indices[r];
      trace.span = rules[r]->span;
      trace.steps = bindings[r].steps;
      trace.steps.insert(trace.steps.end(), finals.back().steps.begin(),
                         finals.back().steps.end());
      cert.traces.push_back(std::move(trace));
    }

    bool any_inadmissible = false;
    bool all_discharged = true;
    datalog::SourceSpan certifying_span;
    for (size_t r = 0; r < rules.size() && all_discharged; ++r) {
      const Rule& rule = *rules[r];
      RuleAdmissibility adm = CheckRuleAdmissible(rule, graph);
      if (adm.admissible()) continue;
      any_inadmissible = true;

      // Only Definition 4.4 *comparison* violations are dischargeable: the
      // interval fixpoint can prove a guard never flips, but it cannot
      // repair negation, a non-monotonic aggregate, or a head value moving
      // against its lattice.
      for (const AdmissibilityViolation& v : adm.violations) {
        if (v.aspect != AdmissibilityAspect::kBuiltin) {
          all_discharged = false;
          cert.reason = StrPrintf("rule #%d: [%s] %s",
                                  component.rule_indices[r],
                                  AdmissibilityAspectName(v.aspect),
                                  v.message.c_str());
          cert.span = v.span;
          break;
        }
      }
      if (!all_discharged) break;

      // Every comparison the polarity analysis cannot pin down must be
      // interval-stable. (Re-deriving the flippable set instead of parsing
      // the violation keeps the criterion independent of message text.)
      PolarityAnalysis polarity(rule, PolaritySeeds(rule, graph));
      for (size_t i = 0; i < rule.body.size(); ++i) {
        const Subgoal& sg = rule.body[i];
        if (sg.kind != Subgoal::Kind::kBuiltin) continue;
        if (bindings[r].IsDefining(static_cast<int>(i))) continue;
        Sign ls = polarity.ExprSign(*sg.builtin.lhs);
        Sign rs = polarity.ExprSign(*sg.builtin.rhs);
        if (!ComparisonCanFlip(sg.builtin.op, ls, rs)) continue;
        auto it = finals[r].check_truth.find(static_cast<int>(i));
        Truth t = it == finals[r].check_truth.end() ? Truth::kUnknown
                                                    : it->second;
        bool vacuous = finals[r].vacuous_checks.count(static_cast<int>(i)) > 0;
        if (t != Truth::kAlwaysTrue || vacuous) {
          all_discharged = false;
          cert.reason =
              vacuous
                  ? StrPrintf(
                        "rule #%d: comparison %s is only vacuously true — no "
                        "fact value reaches it",
                        component.rule_indices[r],
                        sg.builtin.ToString().c_str())
                  : StrPrintf(
                        "rule #%d: comparison %s is %s over the abstract "
                        "fixpoint",
                        component.rule_indices[r],
                        sg.builtin.ToString().c_str(), TruthName(t));
          cert.span = rule.span;
          break;
        }
        certifying_span = rule.span;
        cert.traces[r].steps.push_back(
            StrPrintf("discharged guard %s: always-true at every stage",
                      sg.builtin.ToString().c_str()));
      }
    }

    if (!any_inadmissible) {
      cert.kind = CertificateKind::kSyntacticallyAdmissible;
    } else if (all_discharged) {
      cert.kind = CertificateKind::kSemanticallyMonotonic;
      cert.span = certifying_span;
      cert.reason =
          "every Definition 4.4 comparison violation is interval-stable at "
          "all iteration stages";
    } else {
      cert.kind = CertificateKind::kUncertified;
    }

    // --- Chain analysis: bounded ascent despite an infinite lattice.
    bool all_numeric = true;
    bool all_integral = true;
    bool intervals_finite = true;
    long long height = 0;
    for (const PredicateInfo* pred : component.predicates) {
      if (!pred->has_cost) continue;
      const NumericDomain* num = NumericDomainOf(pred);
      if (num == nullptr) {
        all_numeric = false;
        all_integral = false;
        break;
      }
      if (!num->integral()) all_integral = false;
      Interval iv = PredInterval(state, pred);
      cert.predicate_intervals[pred->name] = iv;
      long long points = iv.IntegerPoints();
      if (points < 0) {
        intervals_finite = false;
      } else {
        height = std::max(height, points);
      }
    }
    bool selective = all_numeric;
    for (size_t r = 0; r < rules.size() && selective; ++r) {
      selective = RuleHasSelectiveCostFlow(*rules[r], bindings[r]);
    }
    if (all_numeric && all_integral && intervals_finite) {
      // The widened fixpoint pins every cost predicate to finitely many
      // integral points: chains are statically bounded.
      cert.chains_bounded = true;
      cert.static_chain_height = std::max(height, 1LL);
    } else if (selective) {
      // Selective flows never mint new cost values; the chain height is
      // the number of distinct values at component entry (runtime bound).
      cert.chains_bounded = true;
      cert.static_chain_height = -1;
    }

    report.components.push_back(std::move(cert));
  }
  return report;
}

}  // namespace absint
}  // namespace analysis
}  // namespace mad
