#ifndef MAD_ANALYSIS_ABSINT_ENGINE_H_
#define MAD_ANALYSIS_ABSINT_ENGINE_H_

// The abstract interpreter behind the semantic certification layer. It runs
// each dependency-graph component's rules over abstract domains instead of
// concrete tuples — groundness for variables (binding.h), intervals for
// cost values (interval.h), transfer functions for the Figure 1 aggregates
// (transfer.h) — computes an abstract fixpoint with widening, and emits a
// machine-checkable certificate per component (certificate.h).
//
// Soundness of the interval fixpoint: predicate intervals start at the hull
// of the known facts and only grow by joins, and every transfer function
// over-approximates its concrete counterpart, so the widened fixpoint
// over-approximates the set of cost values derivable at *every* stage of
// the concrete iteration — not just the final model. A comparison that is
// always-true over those intervals therefore never flips during evaluation,
// which is exactly the Definition 4.4 obligation the syntactic polarity
// check could not discharge.

#include "analysis/absint/certificate.h"
#include "analysis/dependency_graph.h"
#include "datalog/ast.h"
#include "datalog/database.h"

namespace mad {
namespace analysis {
namespace absint {

struct AbsintOptions {
  /// Abstract rounds per component before giving up (safety net; widening
  /// converges far earlier).
  int max_rounds = 64;
  /// Rounds of precise iteration before widening kicks in. A small delay
  /// lets short chains (booleans, small integral domains) stabilize with
  /// exact bounds instead of being widened to ±∞.
  int widen_after = 4;
};

/// Certifies every component of `program` bottom-up. `edb` optionally
/// supplies externally loaded facts whose cost values are folded into the
/// initial intervals alongside the program's inline facts — callers that
/// evaluate against a database MUST pass it, because a certificate is only
/// valid for the fact values it has seen (the differential harness and
/// Engine::Run both recompute certificates per database).
CertificateReport CertifyProgram(const datalog::Program& program,
                                 const DependencyGraph& graph,
                                 const datalog::Database* edb = nullptr,
                                 const AbsintOptions& options = {});

}  // namespace absint
}  // namespace analysis
}  // namespace mad

#endif  // MAD_ANALYSIS_ABSINT_ENGINE_H_
