#include "analysis/absint/interval.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/string_util.h"

namespace mad {
namespace analysis {
namespace absint {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Endpoint product with the interval-arithmetic convention 0 · ±∞ = 0
/// (the concrete set {x·y : x ∈ a, y ∈ b} never contains NaN, so the hull
/// of the finite products is the sound bound).
double EndpointMul(double x, double y) {
  if (x == 0.0 || y == 0.0) return 0.0;
  return x * y;
}

}  // namespace

Interval::Interval() : lo(kInf), hi(-kInf) {}

Interval Interval::Empty() { return Interval(); }

Interval Interval::All() { return Interval(-kInf, kInf); }

Interval Interval::AtLeast(double lo) { return Interval(lo, kInf); }

Interval Interval::AtMost(double hi) { return Interval(-kInf, hi); }

bool Interval::IsAll() const { return lo == -kInf && hi == kInf; }

long long Interval::IntegerPoints() const {
  if (IsEmpty() || !std::isfinite(lo) || !std::isfinite(hi)) return -1;
  double n = std::floor(hi) - std::ceil(lo) + 1.0;
  if (n < 0.0) return 0;
  if (n > 1e15) return -1;
  return static_cast<long long>(n);
}

bool Interval::operator==(const Interval& o) const {
  if (IsEmpty() && o.IsEmpty()) return true;
  return lo == o.lo && hi == o.hi;
}

std::string Interval::ToString() const {
  if (IsEmpty()) return "⊥";
  auto bound = [](double v) -> std::string {
    if (v == kInf) return "+inf";
    if (v == -kInf) return "-inf";
    return StrPrintf("%g", v);
  };
  return StrPrintf("[%s, %s]", bound(lo).c_str(), bound(hi).c_str());
}

Interval Join(const Interval& a, const Interval& b) {
  if (a.IsEmpty()) return b;
  if (b.IsEmpty()) return a;
  return Interval(std::min(a.lo, b.lo), std::max(a.hi, b.hi));
}

Interval Meet(const Interval& a, const Interval& b) {
  if (a.IsEmpty() || b.IsEmpty()) return Interval::Empty();
  Interval m(std::max(a.lo, b.lo), std::min(a.hi, b.hi));
  return m.IsEmpty() ? Interval::Empty() : m;
}

Interval Widen(const Interval& older, const Interval& newer) {
  if (older.IsEmpty()) return newer;
  if (newer.IsEmpty()) return older;
  return Interval(newer.lo < older.lo ? -kInf : older.lo,
                  newer.hi > older.hi ? kInf : older.hi);
}

Interval Add(const Interval& a, const Interval& b) {
  if (a.IsEmpty() || b.IsEmpty()) return Interval::Empty();
  double lo = a.lo + b.lo;
  double hi = a.hi + b.hi;
  // ∞ + (−∞) has no concrete witness on the matching bound; widen it out.
  if (std::isnan(lo)) lo = -kInf;
  if (std::isnan(hi)) hi = kInf;
  return Interval(lo, hi);
}

Interval Sub(const Interval& a, const Interval& b) {
  if (a.IsEmpty() || b.IsEmpty()) return Interval::Empty();
  double lo = a.lo - b.hi;
  double hi = a.hi - b.lo;
  if (std::isnan(lo)) lo = -kInf;
  if (std::isnan(hi)) hi = kInf;
  return Interval(lo, hi);
}

Interval Mul(const Interval& a, const Interval& b) {
  if (a.IsEmpty() || b.IsEmpty()) return Interval::Empty();
  double c[4] = {EndpointMul(a.lo, b.lo), EndpointMul(a.lo, b.hi),
                 EndpointMul(a.hi, b.lo), EndpointMul(a.hi, b.hi)};
  double lo = c[0];
  double hi = c[0];
  for (double v : c) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  return Interval(lo, hi);
}

Interval Div(const Interval& a, const Interval& b) {
  if (a.IsEmpty() || b.IsEmpty()) return Interval::Empty();
  // A divisor interval containing zero makes the quotient unbounded (and the
  // concrete evaluator's division-by-zero behaviour out of scope): give up.
  if (b.Contains(0.0)) return Interval::All();
  double c[4] = {a.lo / b.lo, a.lo / b.hi, a.hi / b.lo, a.hi / b.hi};
  double lo = c[0];
  double hi = c[0];
  for (double v : c) {
    if (std::isnan(v)) return Interval::All();
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  return Interval(lo, hi);
}

Interval Min2(const Interval& a, const Interval& b) {
  if (a.IsEmpty() || b.IsEmpty()) return Interval::Empty();
  return Interval(std::min(a.lo, b.lo), std::min(a.hi, b.hi));
}

Interval Max2(const Interval& a, const Interval& b) {
  if (a.IsEmpty() || b.IsEmpty()) return Interval::Empty();
  return Interval(std::max(a.lo, b.lo), std::max(a.hi, b.hi));
}

const char* TruthName(Truth t) {
  switch (t) {
    case Truth::kAlwaysTrue:
      return "always-true";
    case Truth::kAlwaysFalse:
      return "always-false";
    case Truth::kUnknown:
      return "unknown";
  }
  return "?";
}

Truth Compare(datalog::CmpOp op, const Interval& lhs, const Interval& rhs) {
  using datalog::CmpOp;
  if (lhs.IsEmpty() || rhs.IsEmpty()) return Truth::kAlwaysTrue;
  switch (op) {
    case CmpOp::kLt:
      if (lhs.hi < rhs.lo) return Truth::kAlwaysTrue;
      if (lhs.lo >= rhs.hi) return Truth::kAlwaysFalse;
      return Truth::kUnknown;
    case CmpOp::kLe:
      if (lhs.hi <= rhs.lo) return Truth::kAlwaysTrue;
      if (lhs.lo > rhs.hi) return Truth::kAlwaysFalse;
      return Truth::kUnknown;
    case CmpOp::kGt:
      return Compare(CmpOp::kLt, rhs, lhs);
    case CmpOp::kGe:
      return Compare(CmpOp::kLe, rhs, lhs);
    case CmpOp::kEq:
      if (lhs.IsPoint() && rhs.IsPoint() && lhs.lo == rhs.lo) {
        return Truth::kAlwaysTrue;
      }
      if (Meet(lhs, rhs).IsEmpty()) return Truth::kAlwaysFalse;
      return Truth::kUnknown;
    case CmpOp::kNe:
      if (Meet(lhs, rhs).IsEmpty()) return Truth::kAlwaysTrue;
      if (lhs.IsPoint() && rhs.IsPoint() && lhs.lo == rhs.lo) {
        return Truth::kAlwaysFalse;
      }
      return Truth::kUnknown;
  }
  return Truth::kUnknown;
}

}  // namespace absint
}  // namespace analysis
}  // namespace mad
