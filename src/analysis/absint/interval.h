#ifndef MAD_ANALYSIS_ABSINT_INTERVAL_H_
#define MAD_ANALYSIS_ABSINT_INTERVAL_H_

// The numeric abstract domain of the certification layer: closed real
// intervals with ±∞ endpoints, ordered by inclusion. An interval
// over-approximates the set of cost values a variable or predicate can take
// at *any* stage of the concrete fixpoint iteration, which is what lets the
// three-valued comparison below certify that a guard can never flip.

#include <string>

#include "datalog/ast.h"

namespace mad {
namespace analysis {
namespace absint {

/// A closed interval [lo, hi] ⊆ ℝ ∪ {±∞}. Empty when lo > hi (the default:
/// "no concrete value reaches this point"). Join is the convex hull — this
/// domain has no holes, which keeps widening trivial.
struct Interval {
  double lo;
  double hi;

  Interval();  // empty
  Interval(double l, double h) : lo(l), hi(h) {}

  static Interval Empty();
  static Interval All();
  static Interval Point(double v) { return Interval(v, v); }
  static Interval Range(double lo, double hi) { return Interval(lo, hi); }
  static Interval AtLeast(double lo);
  static Interval AtMost(double hi);

  bool IsEmpty() const { return lo > hi; }
  bool IsAll() const;
  bool IsPoint() const { return lo == hi && !IsEmpty(); }
  bool Contains(double v) const { return !IsEmpty() && lo <= v && v <= hi; }
  /// Number of integer points in the interval, or -1 when unbounded/empty
  /// intervals make the count meaningless (used for static chain heights).
  long long IntegerPoints() const;

  bool operator==(const Interval& o) const;
  bool operator!=(const Interval& o) const { return !(*this == o); }

  std::string ToString() const;
};

/// Lattice operations. Join is the hull of the union; Meet the intersection.
Interval Join(const Interval& a, const Interval& b);
Interval Meet(const Interval& a, const Interval& b);

/// Standard interval widening: any bound that moved between `older` and
/// `newer` jumps straight to ±∞, stable bounds are kept. Guarantees the
/// abstract fixpoint converges in O(1) extra rounds per variable.
Interval Widen(const Interval& older, const Interval& newer);

/// Interval arithmetic, conservative on every edge case (∞−∞, 0·∞, division
/// by an interval containing zero all go to the sound over-approximation).
Interval Add(const Interval& a, const Interval& b);
Interval Sub(const Interval& a, const Interval& b);
Interval Mul(const Interval& a, const Interval& b);
Interval Div(const Interval& a, const Interval& b);
Interval Min2(const Interval& a, const Interval& b);
Interval Max2(const Interval& a, const Interval& b);

/// Three-valued truth of a comparison between abstract values.
enum class Truth {
  kAlwaysTrue,   ///< holds for every pair of concrete values
  kAlwaysFalse,  ///< fails for every pair of concrete values
  kUnknown,      ///< depends on the concrete instantiation
};

const char* TruthName(Truth t);

/// Evaluates `lhs op rhs` over intervals. Comparisons against an empty
/// interval are vacuously kAlwaysTrue: no concrete binding reaches them.
Truth Compare(datalog::CmpOp op, const Interval& lhs, const Interval& rhs);

}  // namespace absint
}  // namespace analysis
}  // namespace mad

#endif  // MAD_ANALYSIS_ABSINT_INTERVAL_H_
