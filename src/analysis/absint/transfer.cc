#include "analysis/absint/transfer.h"

#include "util/string_util.h"

namespace mad {
namespace analysis {
namespace absint {

namespace {

bool SameDomain(const lattice::AggregateFunction& fn) {
  return fn.input_domain() == fn.output_domain();
}

}  // namespace

bool DistributesIntoFixpoint(const lattice::AggregateFunction& fn) {
  std::string_view n = fn.name();
  bool extremal = n == "min" || n == "max" || n == "and" || n == "or" ||
                  n == "union" || n == "intersection";
  return extremal && SameDomain(fn);
}

bool IsSelective(const lattice::AggregateFunction& fn) {
  std::string_view n = fn.name();
  bool picks_element = n == "min" || n == "max" || n == "and" || n == "or";
  return picks_element && SameDomain(fn);
}

AggregateTransfer TransferAggregate(const datalog::AggregateSubgoal& agg,
                                    const Interval& element) {
  AggregateTransfer t;
  const lattice::AggregateFunction* fn = agg.function;
  if (fn == nullptr) {
    t.out = Interval::All();
    t.note = StrPrintf("%s: unresolved aggregate, no abstraction",
                       agg.function_name.c_str());
    return t;
  }
  t.selective = IsSelective(*fn);
  t.distributes = DistributesIntoFixpoint(*fn);
  std::string_view n = fn->name();

  if (t.selective) {
    // The result of an extremal aggregate is one of its elements.
    t.out = element;
  } else if (n == "sum" || n == "halfsum") {
    // Non-negative ascending domains only (enforced by MakeAggregate): a
    // singleton multiset realizes the least element (halved for halfsum),
    // and more elements only grow the total.
    if (!element.IsEmpty() && element.lo >= 0.0) {
      t.out = Interval::AtLeast(n == "halfsum" ? element.lo / 2.0
                                               : element.lo);
    } else {
      t.out = element.IsEmpty() ? Interval::Empty() : Interval::All();
    }
  } else if (n == "count") {
    // A non-empty group has at least one row; ∞ is the domain's top.
    t.out = element.IsEmpty() ? Interval::Empty() : Interval::AtLeast(1.0);
  } else if (n == "product") {
    // Domains bounded below by 1: factors only grow the product.
    if (!element.IsEmpty() && element.lo >= 1.0) {
      t.out = Interval::AtLeast(element.lo);
    } else {
      t.out = element.IsEmpty() ? Interval::Empty() : Interval::All();
    }
  } else if (n == "avg") {
    // The mean of a multiset lies inside the hull of its elements.
    t.out = element;
  } else {
    // Set-valued or unknown aggregates carry no numeric abstraction.
    t.out = element.IsEmpty() ? Interval::Empty() : Interval::All();
  }

  // The unrestricted "=" form also fires on empty groups, yielding the
  // aggregate's empty-multiset value (sum 0, count 0, and 1, ...). Join it
  // in; aggregates undefined on ∅ (avg, min, =r form) contribute nothing.
  if (!agg.restricted) {
    auto empty = fn->Apply({});
    if (empty.ok() && (empty->is_numeric() || empty->is_bool())) {
      t.out = Join(t.out, Interval::Point(empty->AsDouble()));
    }
  }

  t.note = StrPrintf("%s: out %s%s%s", agg.function_name.c_str(),
                     t.out.ToString().c_str(),
                     t.selective ? ", selective" : "",
                     t.distributes ? ", distributes (PreM)" : "");
  return t;
}

}  // namespace absint
}  // namespace analysis
}  // namespace mad
