#ifndef MAD_ANALYSIS_ABSINT_TRANSFER_H_
#define MAD_ANALYSIS_ABSINT_TRANSFER_H_

// Abstract transfer functions for every Figure 1 aggregate: given an
// interval over-approximating the aggregated multiset's *elements*, produce
// an interval for the aggregate's *result*, plus the two structural facts
// the certifier and the termination analysis consume — whether the
// aggregate is selective (its result is always one of its inputs, so it
// creates no new cost values) and whether it distributes into the fixpoint
// in the PreM sense of Zaniolo et al. (arXiv:1707.05681).

#include <string>

#include "analysis/absint/interval.h"
#include "datalog/ast.h"
#include "lattice/aggregate.h"

namespace mad {
namespace analysis {
namespace absint {

/// Result of abstracting one aggregate application.
struct AggregateTransfer {
  Interval out;
  /// Result ∈ input multiset for every non-empty multiset (min/max/and/or):
  /// the aggregate can only *select* existing cost values, never invent
  /// new ones — the load-bearing fact behind bounded-chain certificates.
  bool selective = false;
  /// PreM: F(T(J)) = T'(F(J)) — the aggregate commutes with the immediate
  /// consequence operator, so pushing it into the fixpoint preserves the
  /// least model. Holds for the idempotent extremal aggregates.
  bool distributes = false;
  /// One-line explanation for rule traces.
  std::string note;
};

/// True iff `fn` distributes into the fixpoint (PreM): the idempotent
/// extremal aggregates min/max/and/or/union/intersection applied at their
/// own lattice (input domain == output domain).
bool DistributesIntoFixpoint(const lattice::AggregateFunction& fn);

/// True iff `fn` is selective: every result is a member of the input
/// multiset (min/max/and/or with input domain == output domain).
bool IsSelective(const lattice::AggregateFunction& fn);

/// Abstracts one application of `agg` whose elements lie in `element`.
/// Handles the unrestricted "=" form by joining the empty-multiset value
/// (e.g. sum's 0, and's 1) into the result interval; the "=r" form is
/// simply unsatisfied on empty groups.
AggregateTransfer TransferAggregate(const datalog::AggregateSubgoal& agg,
                                    const Interval& element);

}  // namespace absint
}  // namespace analysis
}  // namespace mad

#endif  // MAD_ANALYSIS_ABSINT_TRANSFER_H_
