#include "analysis/admissibility.h"

#include <algorithm>

#include "lattice/cost_domain.h"
#include "util/string_util.h"

namespace mad {
namespace analysis {

using datalog::Atom;
using datalog::CmpOp;
using datalog::Expr;
using datalog::Rule;
using datalog::Subgoal;
using datalog::Term;
using lattice::CostDomain;
using lattice::Monotonicity;
using lattice::NumericDomain;

const char* SignName(Sign s) {
  switch (s) {
    case Sign::kFixed:
      return "fixed";
    case Sign::kUp:
      return "non-decreasing";
    case Sign::kDown:
      return "non-increasing";
    case Sign::kUnknown:
      return "unknown";
  }
  return "?";
}

const char* AdmissibilityAspectName(AdmissibilityAspect aspect) {
  switch (aspect) {
    case AdmissibilityAspect::kWellTyped:
      return "well-typed";
    case AdmissibilityAspect::kWellFormed:
      return "well-formed";
    case AdmissibilityAspect::kAggregate:
      return "aggregate-monotonicity";
    case AdmissibilityAspect::kPseudoMonotonicNoDefault:
      return "pseudo-monotonic-no-default";
    case AdmissibilityAspect::kBuiltin:
      return "builtin-monotonicity";
    case AdmissibilityAspect::kHeadAlignment:
      return "head-alignment";
    case AdmissibilityAspect::kNegation:
      return "negation";
  }
  return "?";
}

namespace {

Sign Negate(Sign s) {
  switch (s) {
    case Sign::kUp:
      return Sign::kDown;
    case Sign::kDown:
      return Sign::kUp;
    default:
      return s;
  }
}

/// Sign of a sum of two signed quantities.
Sign AddSigns(Sign a, Sign b) {
  if (a == Sign::kFixed) return b;
  if (b == Sign::kFixed) return a;
  if (a == b) return a;
  return Sign::kUnknown;
}

/// Variables occurring in non-built-in body subgoals (these are pinned by
/// Definition 4.3's partial assignment and may not be redefined).
std::set<std::string> NonBuiltinVars(const Rule& rule) {
  std::set<std::string> out;
  for (const Subgoal& sg : rule.body) {
    if (sg.kind == Subgoal::Kind::kBuiltin) continue;
    for (const std::string& v : sg.Vars()) out.insert(v);
  }
  return out;
}

/// True iff the numeric domain exists and is ascending; set-valued or
/// missing domains yield nullopt (no numeric sign applies).
std::optional<bool> NumericAscending(const CostDomain* domain) {
  const auto* num = dynamic_cast<const NumericDomain*>(domain);
  if (num == nullptr) return std::nullopt;
  return num->ascending();
}

}  // namespace

// ---------------------------------------------------------------------------
// PolarityAnalysis
// ---------------------------------------------------------------------------

PolarityAnalysis::PolarityAnalysis(const Rule& rule,
                                   std::map<std::string, Sign> seeds)
    : rule_(&rule), signs_(std::move(seeds)) {
  std::set<std::string> pinned = NonBuiltinVars(rule);
  for (const std::string& v : rule.AllVars()) {
    if (!signs_.count(v)) signs_[v] = Sign::kFixed;
    if (!pinned.count(v)) definable_.insert(v);
  }
  Propagate();
}

Sign PolarityAnalysis::SignOf(const std::string& var) const {
  auto it = signs_.find(var);
  return it == signs_.end() ? Sign::kFixed : it->second;
}

Sign PolarityAnalysis::ExprSign(const Expr& e) const {
  switch (e.kind) {
    case Expr::Kind::kConst:
      return Sign::kFixed;
    case Expr::Kind::kVar:
      return SignOf(e.var);
    case Expr::Kind::kAdd:
    case Expr::Kind::kMin2:
    case Expr::Kind::kMax2:
      // All monotone-nondecreasing in both arguments.
      return AddSigns(ExprSign(*e.lhs), ExprSign(*e.rhs));
    case Expr::Kind::kSub:
      return AddSigns(ExprSign(*e.lhs), Negate(ExprSign(*e.rhs)));
    case Expr::Kind::kMul: {
      // Sound only when one side is a constant of known sign.
      auto signed_const = [](const Expr& c) -> std::optional<double> {
        if (c.kind != Expr::Kind::kConst) return std::nullopt;
        if (!(c.constant.is_numeric() || c.constant.is_bool())) {
          return std::nullopt;
        }
        return c.constant.AsDouble();
      };
      Sign ls = ExprSign(*e.lhs);
      Sign rs = ExprSign(*e.rhs);
      if (ls == Sign::kFixed && rs == Sign::kFixed) return Sign::kFixed;
      if (auto c = signed_const(*e.lhs)) {
        return *c >= 0 ? rs : Negate(rs);
      }
      if (auto c = signed_const(*e.rhs)) {
        return *c >= 0 ? ls : Negate(ls);
      }
      return Sign::kUnknown;
    }
    case Expr::Kind::kDiv: {
      Sign ls = ExprSign(*e.lhs);
      Sign rs = ExprSign(*e.rhs);
      if (ls == Sign::kFixed && rs == Sign::kFixed) return Sign::kFixed;
      if (e.rhs->kind == Expr::Kind::kConst &&
          (e.rhs->constant.is_numeric() || e.rhs->constant.is_bool())) {
        double c = e.rhs->constant.AsDouble();
        if (c > 0) return ls;
        if (c < 0) return Negate(ls);
      }
      return Sign::kUnknown;
    }
  }
  return Sign::kUnknown;
}

void PolarityAnalysis::Propagate() {
  // Repeatedly fold defining equalities V = expr (V definable) until signs
  // stabilize. A chain like C2 = C1 + 1, C3 = 2 * C2 needs the loop.
  bool changed = true;
  while (changed) {
    changed = false;
    for (int i = 0; i < static_cast<int>(rule_->body.size()); ++i) {
      const Subgoal& sg = rule_->body[i];
      if (sg.kind != Subgoal::Kind::kBuiltin) continue;
      if (sg.builtin.op != CmpOp::kEq) continue;
      auto try_define = [&](const Expr& lhs, const Expr& rhs) {
        if (lhs.kind != Expr::Kind::kVar) return;
        if (!definable_.count(lhs.var)) return;
        Sign s = ExprSign(rhs);
        if (signs_[lhs.var] != s && signs_[lhs.var] == Sign::kFixed) {
          signs_[lhs.var] = s;
          defining_builtins_.insert(i);
          changed = true;
        }
      };
      try_define(*sg.builtin.lhs, *sg.builtin.rhs);
      try_define(*sg.builtin.rhs, *sg.builtin.lhs);
    }
  }
}

Status PolarityAnalysis::CheckComparisons() const {
  for (int i = 0; i < static_cast<int>(rule_->body.size()); ++i) {
    const Subgoal& sg = rule_->body[i];
    if (sg.kind != Subgoal::Kind::kBuiltin) continue;
    if (defining_builtins_.count(i)) continue;

    Sign ls = ExprSign(*sg.builtin.lhs);
    Sign rs = ExprSign(*sg.builtin.rhs);
    if (ls == Sign::kFixed && rs == Sign::kFixed) continue;

    Sign diff = AddSigns(ls, Negate(rs));  // sign of (lhs - rhs)
    bool ok = false;
    switch (sg.builtin.op) {
      case CmpOp::kGt:
      case CmpOp::kGe:
        // lhs - rhs only grows: once satisfied, stays satisfied.
        ok = diff == Sign::kUp || diff == Sign::kFixed;
        break;
      case CmpOp::kLt:
      case CmpOp::kLe:
        ok = diff == Sign::kDown || diff == Sign::kFixed;
        break;
      case CmpOp::kEq:
      case CmpOp::kNe:
        ok = diff == Sign::kFixed;
        break;
    }
    if (!ok) {
      return Status::AnalysisError(StrPrintf(
          "built-in subgoal '%s' is not monotonic: the comparison can flip "
          "as CDB cost values grow (lhs %s, rhs %s)",
          sg.builtin.ToString().c_str(), SignName(ls), SignName(rs)));
    }
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Admissibility (Definition 4.5)
// ---------------------------------------------------------------------------

namespace {

/// CDB cost variables of a rule (Section 4.2): variables in cost arguments
/// of CDB atoms plus aggregate variables of CDB aggregates. Returns for each
/// variable the domain that drives its growth direction.
std::map<std::string, const CostDomain*> CdbCostVars(
    const Rule& rule, const DependencyGraph& graph) {
  std::map<std::string, const CostDomain*> out;
  for (const Subgoal& sg : rule.body) {
    switch (sg.kind) {
      case Subgoal::Kind::kAtom:
      case Subgoal::Kind::kNegatedAtom: {
        if (!graph.IsCdbFor(rule, sg.atom.pred)) break;
        const Term* cost = sg.atom.CostTerm();
        if (cost != nullptr && cost->is_var()) {
          out.emplace(cost->var, sg.atom.pred->domain);
        }
        break;
      }
      case Subgoal::Kind::kAggregate: {
        bool cdb = false;
        for (const Atom& a : sg.aggregate.atoms) {
          cdb = cdb || graph.IsCdbFor(rule, a.pred);
        }
        if (cdb && sg.aggregate.result.is_var()) {
          out.emplace(sg.aggregate.result.var,
                      sg.aggregate.function->output_domain());
        }
        break;
      }
      case Subgoal::Kind::kBuiltin:
        break;
    }
  }
  return out;
}

void Fail(RuleAdmissibility* out, bool RuleAdmissibility::*field,
          AdmissibilityAspect aspect, datalog::SourceSpan span,
          std::string diagnostic) {
  out->*field = false;
  if (out->diagnostic.empty()) out->diagnostic = diagnostic;
  out->violations.push_back({aspect, std::move(diagnostic), span});
}

/// Most specific valid span among the candidates, else the rule span.
datalog::SourceSpan BestSpan(const Rule& rule,
                             std::initializer_list<datalog::SourceSpan> prefs) {
  for (const datalog::SourceSpan& s : prefs) {
    if (s.valid()) return s;
  }
  return rule.span;
}

}  // namespace

RuleAdmissibility CheckRuleAdmissible(const Rule& rule,
                                      const DependencyGraph& graph) {
  RuleAdmissibility out;

  // --- Well typed: cost constants must live in the declared domains, and
  // aggregate result domains must agree with the head domain when the result
  // flows directly into the head cost argument.
  auto check_atom_types = [&](const Atom& a) {
    const Term* cost = a.CostTerm();
    if (cost != nullptr && cost->is_const() &&
        !a.pred->domain->Contains(cost->constant)) {
      Fail(&out, &RuleAdmissibility::well_typed,
           AdmissibilityAspect::kWellTyped,
           BestSpan(rule, {cost->span, a.span}),
           StrPrintf("cost constant %s outside domain %s in atom %s",
                     cost->constant.ToString().c_str(),
                     std::string(a.pred->domain->name()).c_str(),
                     a.ToString().c_str()));
    }
  };
  check_atom_types(rule.head);
  for (const Subgoal& sg : rule.body) {
    if (sg.kind == Subgoal::Kind::kAtom ||
        sg.kind == Subgoal::Kind::kNegatedAtom) {
      check_atom_types(sg.atom);
    } else if (sg.kind == Subgoal::Kind::kAggregate) {
      for (const Atom& a : sg.aggregate.atoms) check_atom_types(a);
    }
  }

  // --- Well formed (Definition 4.2). Item 1 (no built-ins inside aggregate
  // subgoals) holds by construction of the grammar.
  std::map<std::string, const CostDomain*> cdb_vars =
      CdbCostVars(rule, graph);

  // Item 2: only variables in cost arguments of CDB predicates and in
  // aggregate results.
  auto check_cost_is_var = [&](const Atom& a, const char* where) {
    if (!graph.IsCdbFor(rule, a.pred)) return;
    const Term* cost = a.CostTerm();
    if (cost != nullptr && !cost->is_var()) {
      Fail(&out, &RuleAdmissibility::well_formed,
           AdmissibilityAspect::kWellFormed,
           BestSpan(rule, {cost->span, a.span}),
           StrPrintf("constant in cost argument of CDB atom %s (%s); "
                     "Definition 4.2(2) requires a variable",
                     a.ToString().c_str(), where));
    }
  };
  check_cost_is_var(rule.head, "head");
  for (const Subgoal& sg : rule.body) {
    if (sg.kind == Subgoal::Kind::kAtom ||
        sg.kind == Subgoal::Kind::kNegatedAtom) {
      check_cost_is_var(sg.atom, "body");
    } else if (sg.kind == Subgoal::Kind::kAggregate) {
      for (const Atom& a : sg.aggregate.atoms) check_cost_is_var(a, "aggregate");
      if (!sg.aggregate.result.is_var()) {
        bool cdb = false;
        for (const Atom& a : sg.aggregate.atoms) {
          cdb = cdb || graph.IsCdbFor(rule, a.pred);
        }
        if (cdb) {
          Fail(&out, &RuleAdmissibility::well_formed,
               AdmissibilityAspect::kWellFormed,
               BestSpan(rule, {sg.aggregate.result.span, sg.aggregate.span}),
               StrPrintf("constant aggregate result in '%s'; Definition "
                         "4.2(2) requires a variable",
                         sg.aggregate.ToString().c_str()));
        }
      }
    }
  }

  // Item 3: each CDB cost variable occurs at most once among the non-built-in
  // subgoals.
  for (const auto& [var, _] : cdb_vars) {
    int occurrences = 0;
    for (const Subgoal& sg : rule.body) {
      if (sg.kind == Subgoal::Kind::kBuiltin) continue;
      std::vector<std::string> vars = sg.Vars();
      occurrences += static_cast<int>(
          std::count(vars.begin(), vars.end(), var));
    }
    if (occurrences > 1) {
      Fail(&out, &RuleAdmissibility::well_formed,
           AdmissibilityAspect::kWellFormed, rule.span,
           StrPrintf("CDB cost variable %s occurs %d times among non-built-in "
                     "subgoals; Definition 4.2(3) allows one",
                     var.c_str(), occurrences));
    }
  }

  // --- Negation: monotone components may negate LDB predicates only
  // (Proposition 6.1).
  for (const Subgoal& sg : rule.body) {
    if (sg.kind != Subgoal::Kind::kNegatedAtom) continue;
    if (graph.IsCdbFor(rule, sg.atom.pred)) {
      Fail(&out, &RuleAdmissibility::negation_ok,
           AdmissibilityAspect::kNegation, BestSpan(rule, {sg.atom.span}),
           StrPrintf("negated CDB subgoal !%s: negation through recursion is "
                     "outside the monotone semantics",
                     sg.atom.ToString().c_str()));
    }
  }

  // --- Aggregate condition of Definition 4.5.
  for (const Subgoal& sg : rule.body) {
    if (sg.kind != Subgoal::Kind::kAggregate) continue;
    bool cdb = false;
    for (const Atom& a : sg.aggregate.atoms) {
      cdb = cdb || graph.IsCdbFor(rule, a.pred);
    }
    if (!cdb) continue;  // LDB aggregates are unrestricted
    switch (sg.aggregate.function->monotonicity()) {
      case Monotonicity::kMonotonic:
        break;
      case Monotonicity::kPseudoMonotonic: {
        for (const Atom& a : sg.aggregate.atoms) {
          if (graph.IsCdbFor(rule, a.pred) && !a.pred->has_default) {
            Fail(&out, &RuleAdmissibility::aggregates_ok,
                 AdmissibilityAspect::kPseudoMonotonicNoDefault,
                 BestSpan(rule, {a.span, sg.aggregate.span}),
                 StrPrintf("pseudo-monotonic aggregate '%s' over CDB "
                           "predicate %s, which is not a default-value cost "
                           "predicate (Definition 4.5)",
                           sg.aggregate.function_name.c_str(),
                           a.pred->name.c_str()));
          }
        }
        break;
      }
      case Monotonicity::kNone:
        Fail(&out, &RuleAdmissibility::aggregates_ok,
             AdmissibilityAspect::kAggregate,
             BestSpan(rule, {sg.aggregate.span}),
             StrPrintf("aggregate '%s' is not monotonic on its domain and "
                       "appears in a CDB aggregate subgoal",
                       sg.aggregate.function_name.c_str()));
        break;
    }
  }

  // --- Built-in monotonicity (Definition 4.4 sufficient conditions).
  std::map<std::string, Sign> seeds;
  bool sign_analysis_possible = true;
  for (const auto& [var, domain] : cdb_vars) {
    std::optional<bool> asc = NumericAscending(domain);
    if (!asc.has_value()) {
      // Set-valued CDB cost variable: fine as long as it never enters a
      // built-in subgoal and flows into a same-domain head position.
      seeds[var] = Sign::kUnknown;
      sign_analysis_possible = false;
      continue;
    }
    seeds[var] = *asc ? Sign::kUp : Sign::kDown;
  }
  PolarityAnalysis polarity(rule, std::move(seeds));
  Status cmp = polarity.CheckComparisons();
  if (!cmp.ok()) {
    Fail(&out, &RuleAdmissibility::builtins_monotonic,
         AdmissibilityAspect::kBuiltin, rule.span,
         std::string(cmp.message()));
  }

  // Head cost growth must align with the head's lattice direction.
  if (rule.head.pred->has_cost && rule.head.args.back().is_var()) {
    const std::string& hv = rule.head.args.back().var;
    auto cdb_it = cdb_vars.find(hv);
    if (cdb_it != cdb_vars.end() &&
        cdb_it->second == rule.head.pred->domain) {
      // Direct pass-through of a same-lattice CDB value (covers set-valued
      // domains too): grows with J by construction.
    } else {
      std::optional<bool> head_asc =
          NumericAscending(rule.head.pred->domain);
      Sign hs = polarity.SignOf(hv);
      bool ok = head_asc.has_value()
                    ? (hs == Sign::kFixed ||
                       hs == (*head_asc ? Sign::kUp : Sign::kDown))
                    : hs == Sign::kFixed;
      if (!ok || (!sign_analysis_possible && hs == Sign::kUnknown)) {
        Fail(&out, &RuleAdmissibility::builtins_monotonic,
             AdmissibilityAspect::kHeadAlignment,
             BestSpan(rule, {rule.head.args.back().span, rule.head.span}),
             StrPrintf("head cost variable %s grows %s, which does not align "
                       "with the head lattice %s",
                       hv.c_str(), SignName(hs),
                       std::string(rule.head.pred->domain->name()).c_str()));
      }
    }
  }

  return out;
}

Status CheckAdmissible(const datalog::Program& program,
                       const DependencyGraph& graph) {
  for (const Rule& rule : program.rules()) {
    RuleAdmissibility a = CheckRuleAdmissible(rule, graph);
    if (!a.admissible()) {
      return Status::AnalysisError(
          StrPrintf("rule '%s' (line %d) is not admissible: %s",
                    rule.ToString().c_str(), rule.source_line,
                    a.diagnostic.c_str()));
    }
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Update-time monotonicity (Engine::Update's precondition)
// ---------------------------------------------------------------------------

namespace {

/// One growing value source inside a rule: a cost variable together with
/// its growth direction and the predicates to blame if a rule consumes it
/// antitonically.
struct ValueSource {
  std::string var;
  Sign direction = Sign::kUnknown;
  std::vector<const datalog::PredicateInfo*> blamed;
  /// True for aggregate results: even *new* rows in the blamed predicates
  /// move the value, so a violation is fatal rather than merely making the
  /// blamed predicates increase-unsafe.
  bool from_aggregate = false;
  /// True when the value flows unchanged into a same-lattice head position
  /// and is otherwise unused — aligned by construction (covers set
  /// lattices, where no numeric sign exists).
  bool aligned_pass_through = false;
};

/// Checks the rule with only `source.var` treated as growing. Returns OK
/// if every comparison stays satisfied and the head stays aligned.
Status CheckSource(const Rule& rule, const ValueSource& source) {
  if (source.aligned_pass_through) return Status::OK();
  PolarityAnalysis polarity(rule, {{source.var, source.direction}});
  MAD_RETURN_IF_ERROR(polarity.CheckComparisons());
  if (rule.head.pred->has_cost && rule.head.args.back().is_var()) {
    Sign hs = polarity.SignOf(rule.head.args.back().var);
    std::optional<bool> head_asc = NumericAscending(rule.head.pred->domain);
    bool ok = head_asc.has_value()
                  ? (hs == Sign::kFixed ||
                     hs == (*head_asc ? Sign::kUp : Sign::kDown))
                  : hs == Sign::kFixed;
    if (!ok) {
      return Status::InvalidArgument(StrPrintf(
          "value %s grows %s but the head lattice '%s' disagrees",
          source.var.c_str(), SignName(hs),
          std::string(rule.head.pred->domain->name()).c_str()));
    }
  }
  return Status::OK();
}

}  // namespace

UpdateSafety AnalyzeUpdateSafety(const datalog::Program& program) {
  UpdateSafety out;
  for (const Rule& rule : program.rules()) {
    // Which variables appear in built-ins (disqualifies pass-through).
    std::set<std::string> builtin_vars;
    // Non-built-in occurrence counts (a cost value joined in two places is
    // increase-sensitive at both sources).
    std::map<std::string, int> occurrences;
    for (const Subgoal& sg : rule.body) {
      if (sg.kind == Subgoal::Kind::kBuiltin) {
        for (const std::string& v : sg.builtin.Vars()) builtin_vars.insert(v);
      } else {
        for (const std::string& v : sg.Vars()) ++occurrences[v];
      }
    }
    const Term* head_cost =
        rule.head.pred->has_cost ? &rule.head.args.back() : nullptr;

    std::vector<ValueSource> sources;
    for (const Subgoal& sg : rule.body) {
      switch (sg.kind) {
        case Subgoal::Kind::kNegatedAtom:
          out.basic = Status::InvalidArgument(StrPrintf(
              "rule '%s' (line %d): negation makes insert-only maintenance "
              "unsound",
              rule.ToString().c_str(), rule.source_line));
          return out;
        case Subgoal::Kind::kAtom: {
          const Term* cost = sg.atom.CostTerm();
          if (cost == nullptr || !cost->is_var()) break;
          ValueSource src;
          src.var = cost->var;
          src.blamed = {sg.atom.pred};
          std::optional<bool> asc = NumericAscending(sg.atom.pred->domain);
          src.direction = asc.has_value()
                              ? (*asc ? Sign::kUp : Sign::kDown)
                              : Sign::kUnknown;
          src.aligned_pass_through =
              head_cost != nullptr && head_cost->is_var() &&
              head_cost->var == src.var &&
              sg.atom.pred->domain == rule.head.pred->domain &&
              !builtin_vars.count(src.var) && occurrences[src.var] == 1;
          sources.push_back(std::move(src));
          break;
        }
        case Subgoal::Kind::kAggregate: {
          const auto& agg = sg.aggregate;
          // A new inner row may shrink a non-monotonic aggregate (AND
          // gaining a 0 input): fatal regardless of how the result is used.
          if (agg.function->monotonicity() != Monotonicity::kMonotonic) {
            out.basic = Status::InvalidArgument(StrPrintf(
                "rule '%s' (line %d): aggregate '%s' is not fully monotonic;"
                " an inserted inner row could lower its value",
                rule.ToString().c_str(), rule.source_line,
                agg.function_name.c_str()));
            return out;
          }
          if (!agg.result.is_var()) break;
          ValueSource src;
          src.var = agg.result.var;
          src.from_aggregate = true;
          for (const Atom& a : agg.atoms) src.blamed.push_back(a.pred);
          std::optional<bool> asc =
              NumericAscending(agg.function->output_domain());
          src.direction = asc.has_value()
                              ? (*asc ? Sign::kUp : Sign::kDown)
                              : Sign::kUnknown;
          src.aligned_pass_through =
              head_cost != nullptr && head_cost->is_var() &&
              head_cost->var == src.var &&
              agg.function->output_domain() == rule.head.pred->domain &&
              !builtin_vars.count(src.var) && occurrences[src.var] == 1;
          sources.push_back(std::move(src));
          break;
        }
        case Subgoal::Kind::kBuiltin:
          break;
      }
    }

    for (const ValueSource& src : sources) {
      // A cost value joined across several non-built-in subgoals is
      // increase-sensitive: raising it breaks the old join bindings.
      bool joined = occurrences[src.var] > 1;
      Status check = joined ? Status::InvalidArgument(StrPrintf(
                                  "value %s joins multiple subgoals",
                                  src.var.c_str()))
                            : CheckSource(rule, src);
      if (check.ok()) continue;
      if (src.from_aggregate) {
        // New rows in the inner predicates already move the aggregate;
        // no insert is safe.
        out.basic = Status::InvalidArgument(StrPrintf(
            "rule '%s' (line %d): aggregate value %s is used antitonically "
            "(%s); inserts into its inner predicates are unsound",
            rule.ToString().c_str(), rule.source_line, src.var.c_str(),
            check.message().c_str()));
        return out;
      }
      for (const datalog::PredicateInfo* p : src.blamed) {
        out.increase_unsafe.insert(p);
      }
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// r-monotonicity (Definition 5.1, Mumick et al.)
// ---------------------------------------------------------------------------

bool IsRuleRMonotonic(const Rule& rule) {
  std::map<std::string, Sign> seeds;
  std::set<std::string> aggregate_vars;
  for (const Subgoal& sg : rule.body) {
    if (sg.kind == Subgoal::Kind::kNegatedAtom) return false;
    if (sg.kind != Subgoal::Kind::kAggregate) continue;
    const auto& agg = sg.aggregate;
    if (!agg.result.is_var()) return false;
    aggregate_vars.insert(agg.result.var);
    // Aggregate values may not flow into the head: Mumick et al. treat an
    // earlier head tuple with the old value as invalidated, which is
    // exactly what r-monotonicity forbids.
    for (const Term& t : rule.head.args) {
      if (t.is_var() && t.var == agg.result.var) return false;
    }
    std::optional<bool> asc =
        NumericAscending(agg.function->output_domain());
    if (!asc.has_value()) return false;
    // As tuples are *added* to the aggregated relations, the aggregate moves
    // up its output lattice; numerically that is up for ascending lattices
    // and down for descending ones.
    seeds[agg.result.var] = *asc ? Sign::kUp : Sign::kDown;
  }
  // Mumick et al.'s syntactic test additionally requires that an aggregate
  // value be compared only against *ground* (variable-free) expressions —
  // this is exactly why the paper classifies Example 4.3 (N >= K with K a
  // requires-variable) as not r-monotonic, despite our Definition 4.4
  // admitting it.
  for (const Subgoal& sg : rule.body) {
    if (sg.kind != Subgoal::Kind::kBuiltin) continue;
    std::vector<std::string> vars = sg.builtin.Vars();
    bool mentions_aggregate = false;
    for (const std::string& v : vars) {
      mentions_aggregate = mentions_aggregate || aggregate_vars.count(v) > 0;
    }
    if (!mentions_aggregate) continue;
    for (const std::string& v : vars) {
      if (!aggregate_vars.count(v)) return false;
    }
  }

  // Cost values of ordinary subgoals are ordinary columns for Mumick et al.;
  // adding tuples does not change existing bindings, so everything else is
  // fixed and only the aggregate-fed comparisons matter.
  PolarityAnalysis polarity(rule, std::move(seeds));
  return polarity.CheckComparisons().ok();
}

bool IsProgramRMonotonic(const datalog::Program& program) {
  for (const Rule& rule : program.rules()) {
    if (!IsRuleRMonotonic(rule)) return false;
  }
  return true;
}

}  // namespace analysis
}  // namespace mad
