#ifndef MAD_ANALYSIS_ADMISSIBILITY_H_
#define MAD_ANALYSIS_ADMISSIBILITY_H_

#include <map>
#include <string>
#include <vector>

#include "analysis/dependency_graph.h"
#include "datalog/ast.h"
#include "util/status.h"

namespace mad {
namespace analysis {

/// Numeric growth direction of a variable's value as the CDB interpretation
/// J grows in ⊑ (used by the Definition 4.4 sufficient conditions).
enum class Sign {
  kFixed,    ///< value identical under σ1 and σ2 (LDB / key variables)
  kUp,       ///< numerically non-decreasing
  kDown,     ///< numerically non-increasing
  kUnknown,  ///< cannot be bounded — conservative failure
};

const char* SignName(Sign s);

/// Derives growth signs for all rule variables from seed signs (typically:
/// CDB cost variables get kUp/kDown from their lattice direction, everything
/// else kFixed) by propagating through built-in equalities that *define*
/// variables, then validates that every remaining built-in comparison stays
/// satisfiable as the CDB values grow. This is the checkable sufficient
/// condition for "E_r is monotonic" (Definition 4.4).
class PolarityAnalysis {
 public:
  /// `seeds` assigns signs to some variables; all other variables start
  /// kFixed. `defined_exempt` names variables that may be (re)defined by
  /// built-ins (everything not occurring in a non-built-in subgoal).
  PolarityAnalysis(const datalog::Rule& rule,
                   std::map<std::string, Sign> seeds);

  /// Growth sign of `var` after propagation.
  Sign SignOf(const std::string& var) const;

  /// Checks all non-defining comparisons; returns OK or a diagnosis of the
  /// first comparison that could flip from satisfied to unsatisfied.
  Status CheckComparisons() const;

  /// Sign of an arbitrary expression under the derived variable signs.
  Sign ExprSign(const datalog::Expr& e) const;

 private:
  void Propagate();

  const datalog::Rule* rule_;
  std::map<std::string, Sign> signs_;
  /// Variables eligible for definition by built-in equalities.
  std::set<std::string> definable_;
  /// Builtin indices consumed as definitions (not checks).
  std::set<int> defining_builtins_;
};

/// Which clause of the admissibility definition a violation falls under.
/// Distinguished so lint diagnostics can carry per-aspect rule IDs.
enum class AdmissibilityAspect {
  kWellTyped,     ///< Definition 4.5: cost constants outside their domain
  kWellFormed,    ///< Definition 4.2 items 2/3
  kAggregate,     ///< non-monotonic aggregate over a CDB predicate
  kPseudoMonotonicNoDefault,  ///< Section 4.1: pseudo-monotonic aggregate
                              ///< over a CDB predicate lacking `default`
  kBuiltin,       ///< Definition 4.4: a comparison can flip as J grows
  kHeadAlignment,  ///< Definition 4.4: head cost can move against its lattice
  kNegation,      ///< Proposition 6.1: negated CDB subgoal
};

const char* AdmissibilityAspectName(AdmissibilityAspect aspect);

/// One admissibility violation, with the most specific span available.
struct AdmissibilityViolation {
  AdmissibilityAspect aspect = AdmissibilityAspect::kWellFormed;
  std::string message;
  datalog::SourceSpan span;
};

/// Detailed admissibility verdict for a single rule (Definition 4.5),
/// relative to the component structure in `graph`.
struct RuleAdmissibility {
  bool well_typed = true;
  bool well_formed = true;
  bool aggregates_ok = true;
  bool builtins_monotonic = true;
  bool negation_ok = true;
  std::string diagnostic;  ///< first failure, empty when admissible
  /// Every violation found, in source order of the offending construct.
  std::vector<AdmissibilityViolation> violations;

  bool admissible() const {
    return well_typed && well_formed && aggregates_ok && builtins_monotonic &&
           negation_ok;
  }
};

/// Checks one rule against Definition 4.5 (well typed + well formed +
/// aggregate monotonicity/pseudo-monotonicity + monotone built-ins) and the
/// Proposition 6.1 restriction (no negated CDB subgoals).
RuleAdmissibility CheckRuleAdmissible(const datalog::Rule& rule,
                                      const DependencyGraph& graph);

/// Checks every rule; per Lemma 4.1 an all-admissible program is monotonic.
Status CheckAdmissible(const datalog::Program& program,
                       const DependencyGraph& graph);

/// Safety analysis behind incremental insert-only maintenance
/// (Engine::Update). Batch evaluation fixes the LDB, so admissibility
/// (Definition 4.5) only constrains CDB cost variables; during incremental
/// updates *every* relation can move up its lattice, which needs more:
///
///  * `basic` is an error when no sequence of updates is maintainable —
///    negation (inserts can invalidate negative support), non-monotonic or
///    pseudo-monotonic aggregates (a new inner row can lower the aggregate:
///    think AND gaining a 0 input), or an aggregate value used antitonically
///    (a new inner row raises a count used under `<`).
///  * `increase_unsafe` lists predicates whose *existing keys'* values may
///    not increase during an update: some rule consumes their cost
///    variables antitonically (e.g. an ascending count feeding a min_real
///    head via C = N + 1, or a threshold compared with `>=`), or joins on
///    the raw cost value. Inserting fresh keys for these predicates is
///    still fine — new keys only add ground instances.
struct UpdateSafety {
  Status basic;
  std::set<const datalog::PredicateInfo*> increase_unsafe;

  bool IncreaseUnsafe(const datalog::PredicateInfo* p) const {
    return increase_unsafe.count(p) > 0;
  }
};

UpdateSafety AnalyzeUpdateSafety(const datalog::Program& program);

/// Syntactic r-monotonicity in the sense of Mumick et al. (Definition 5.1):
/// adding tuples to body relations can only add head tuples. True iff the
/// rule has no negation, no aggregate value flowing into the head, and
/// aggregate values appear only in comparisons that stay satisfied as the
/// aggregate grows in its output order.
bool IsRuleRMonotonic(const datalog::Rule& rule);

/// True iff every rule is r-monotonic.
bool IsProgramRMonotonic(const datalog::Program& program);

}  // namespace analysis
}  // namespace mad

#endif  // MAD_ANALYSIS_ADMISSIBILITY_H_
