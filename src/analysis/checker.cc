#include "analysis/checker.h"

#include "analysis/absint/engine.h"
#include "analysis/admissibility.h"
#include "analysis/conflict_free.h"
#include "analysis/cost_respecting.h"
#include "analysis/lint/passes.h"
#include "analysis/range_restriction.h"
#include "lattice/aggregate.h"
#include "util/string_util.h"

namespace mad {
namespace analysis {

namespace {

/// True iff `rule` applies a non-strictly-monotonic aggregate to a predicate
/// that is recursive with the rule's head. Such components rely on Lemma 4.1's
/// fixed-cardinality argument, which only holds at the fixpoint — interrupted
/// iterations cannot be certified (see ComponentVerdict::prefix_sound).
bool UsesNonMonotonicCdbAggregate(const datalog::Rule& rule,
                                  const DependencyGraph& graph) {
  for (const datalog::Subgoal& sg : rule.body) {
    if (sg.kind != datalog::Subgoal::Kind::kAggregate) continue;
    for (const datalog::Atom& a : sg.aggregate.atoms) {
      if (graph.IsCdbFor(rule, a.pred) &&
          sg.aggregate.function->monotonicity() !=
              lattice::Monotonicity::kMonotonic) {
        return true;
      }
    }
  }
  return false;
}

}  // namespace

Status ProgramCheckResult::overall() const {
  MAD_RETURN_IF_ERROR(range_restricted);
  MAD_RETURN_IF_ERROR(conflict_free);
  for (const ComponentVerdict& c : components) {
    // Non-recursive components and plain positive recursion are always fine;
    // recursion through aggregation/negation needs the monotone guarantee.
    // A semantic certificate from the abstract interpreter stands in for the
    // syntactic Definition 4.5 proof (PreM-style monotonicity).
    if ((c.recursive_aggregation || c.recursive_negation) && !c.monotonic &&
        c.certificate != absint::CertificateKind::kSemanticallyMonotonic) {
      std::string why = "recursion through negation";
      for (const lint::Diagnostic& d : c.diagnostics) {
        if (d.severity == lint::Severity::kError) {
          why = d.message;
          break;
        }
      }
      return Status::AnalysisError(StrPrintf(
          "component %d (%s) recurses through %s but is not monotonic: %s",
          c.index, Join(c.predicate_names, ", ").c_str(),
          c.recursive_negation ? "negation" : "aggregation", why.c_str()));
    }
  }
  return Status::OK();
}

std::string ProgramCheckResult::ToString() const {
  std::string out;
  out += "range-restricted: " + range_restricted.ToString() + "\n";
  out += "cost-respecting:  " + cost_respecting.ToString() + "\n";
  out += "conflict-free:    " + conflict_free.ToString() + "\n";
  out += "admissible:       " + admissible.ToString() + "\n";
  out += StrPrintf("r-monotonic (Mumick et al.): %s\n",
                   r_monotonic ? "yes" : "no");
  for (const ComponentVerdict& c : components) {
    out += StrPrintf("component %d [%s]:%s%s%s monotonic=%s", c.index,
                     Join(c.predicate_names, ", ").c_str(),
                     c.recursive ? " recursive" : "",
                     c.recursive_aggregation ? " thru-aggregation" : "",
                     c.recursive_negation ? " thru-negation" : "",
                     c.monotonic ? "yes" : "no");
    if (!c.monotonic &&
        c.certificate == absint::CertificateKind::kSemanticallyMonotonic) {
      out += " certificate=semantically-monotonic";
    }
    if (c.monotonic && !c.prefix_sound) out += " prefix-sound=no";
    if (!c.diagnostics.empty()) {
      out += " (" + c.diagnostics.front().message + ")";
    }
    out += "\n";
  }
  out += StrPrintf("termination: %s\n",
                   termination.AllGuaranteed()
                       ? "guaranteed for every component"
                       : "not guaranteed (see max_iterations/epsilon)");
  for (const ComponentTermination& t : termination.components) {
    if (t.verdict != TerminationVerdict::kBoundedChains) continue;
    out += StrPrintf("  component %d: bounded chains (%s)\n", t.component_index,
                     t.chain_height >= 0
                         ? StrPrintf("height %lld", t.chain_height).c_str()
                         : "selective cost flow");
  }
  // The shared lint formatter renders the same lines `madlint` would, so
  // `mondl --check` and the lint tool agree finding-for-finding.
  if (!diagnostics.empty()) {
    out += "diagnostics:\n" + diagnostics.RenderText();
  }
  return out;
}

ProgramCheckResult CheckProgram(const datalog::Program& program,
                                const DependencyGraph& graph,
                                const std::string& file,
                                const datalog::Database* edb) {
  ProgramCheckResult result;
  result.range_restricted = CheckRangeRestricted(program);
  result.cost_respecting = CheckCostRespecting(program);
  result.conflict_free = CheckConflictFree(program);
  result.admissible = CheckAdmissible(program, graph);
  result.r_monotonic = IsProgramRMonotonic(program);
  result.certificates = absint::CertifyProgram(program, graph, edb);
  result.termination =
      AnalyzeTermination(program, graph, &result.certificates);

  lint::LintContext ctx;
  ctx.program = &program;
  ctx.graph = &graph;
  ctx.file = file;
  ctx.certificates = &result.certificates;
  result.diagnostics = lint::MakePaperPassManager().Run(ctx);

  for (const Component& comp : graph.components()) {
    ComponentVerdict v;
    v.index = comp.index;
    for (const PredicateInfo* p : comp.predicates) {
      v.predicate_names.push_back(p->name);
    }
    v.recursive = comp.recursive;
    v.recursive_aggregation = comp.recursive_aggregation;
    v.recursive_negation = comp.recursive_negation;
    v.monotonic = !comp.recursive_negation;
    v.prefix_sound = v.monotonic;
    if (const absint::ComponentCertificate* cert =
            result.certificates.ForComponent(comp.index)) {
      v.certificate = cert->kind;
    }
    for (int ri : comp.rule_indices) {
      const datalog::Rule& rule = program.rules()[ri];
      RuleAdmissibility a = CheckRuleAdmissible(rule, graph);
      if (!a.admissible()) {
        v.monotonic = false;
        v.prefix_sound = false;
      }
      for (const AdmissibilityViolation& violation : a.violations) {
        v.diagnostics.push_back(lint::AdmissibilityDiagnostic(
            violation, rule, graph, file, &result.certificates));
      }
      if (UsesNonMonotonicCdbAggregate(rule, graph)) v.prefix_sound = false;
    }
    // A semantically certified component is evaluated despite failing the
    // syntactic check, but its interrupted prefixes carry no guarantee.
    if (!v.monotonic &&
        v.certificate == absint::CertificateKind::kSemanticallyMonotonic) {
      v.prefix_sound = false;
    }
    result.components.push_back(std::move(v));
  }
  return result;
}

Status ValidateForEvaluation(const datalog::Program& program) {
  DependencyGraph graph(program);
  ProgramCheckResult result = CheckProgram(program, graph);
  return result.overall();
}

}  // namespace analysis
}  // namespace mad
