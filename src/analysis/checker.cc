#include "analysis/checker.h"

#include "analysis/admissibility.h"
#include "analysis/conflict_free.h"
#include "analysis/cost_respecting.h"
#include "analysis/range_restriction.h"
#include "util/string_util.h"

namespace mad {
namespace analysis {

Status ProgramCheckResult::overall() const {
  MAD_RETURN_IF_ERROR(range_restricted);
  MAD_RETURN_IF_ERROR(conflict_free);
  for (const ComponentVerdict& c : components) {
    // Non-recursive components and plain positive recursion are always fine;
    // recursion through aggregation/negation needs the monotone guarantee.
    if ((c.recursive_aggregation || c.recursive_negation) && !c.monotonic) {
      return Status::AnalysisError(StrPrintf(
          "component %d (%s) recurses through %s but is not monotonic: %s",
          c.index, Join(c.predicate_names, ", ").c_str(),
          c.recursive_negation ? "negation" : "aggregation",
          c.diagnostic.c_str()));
    }
  }
  return Status::OK();
}

std::string ProgramCheckResult::ToString() const {
  std::string out;
  out += "range-restricted: " + range_restricted.ToString() + "\n";
  out += "cost-respecting:  " + cost_respecting.ToString() + "\n";
  out += "conflict-free:    " + conflict_free.ToString() + "\n";
  out += "admissible:       " + admissible.ToString() + "\n";
  out += StrPrintf("r-monotonic (Mumick et al.): %s\n",
                   r_monotonic ? "yes" : "no");
  for (const ComponentVerdict& c : components) {
    out += StrPrintf("component %d [%s]:%s%s%s monotonic=%s", c.index,
                     Join(c.predicate_names, ", ").c_str(),
                     c.recursive ? " recursive" : "",
                     c.recursive_aggregation ? " thru-aggregation" : "",
                     c.recursive_negation ? " thru-negation" : "",
                     c.monotonic ? "yes" : "no");
    if (!c.diagnostic.empty()) out += " (" + c.diagnostic + ")";
    out += "\n";
  }
  out += StrPrintf("termination: %s\n",
                   termination.AllGuaranteed()
                       ? "guaranteed for every component"
                       : "not guaranteed (see max_iterations/epsilon)");
  return out;
}

ProgramCheckResult CheckProgram(const datalog::Program& program,
                                const DependencyGraph& graph) {
  ProgramCheckResult result;
  result.range_restricted = CheckRangeRestricted(program);
  result.cost_respecting = CheckCostRespecting(program);
  result.conflict_free = CheckConflictFree(program);
  result.admissible = CheckAdmissible(program, graph);
  result.r_monotonic = IsProgramRMonotonic(program);
  result.termination = AnalyzeTermination(program, graph);

  for (const Component& comp : graph.components()) {
    ComponentVerdict v;
    v.index = comp.index;
    for (const PredicateInfo* p : comp.predicates) {
      v.predicate_names.push_back(p->name);
    }
    v.recursive = comp.recursive;
    v.recursive_aggregation = comp.recursive_aggregation;
    v.recursive_negation = comp.recursive_negation;
    v.monotonic = !comp.recursive_negation;
    for (int ri : comp.rule_indices) {
      RuleAdmissibility a =
          CheckRuleAdmissible(program.rules()[ri], graph);
      if (!a.admissible()) {
        v.monotonic = false;
        if (v.diagnostic.empty()) v.diagnostic = a.diagnostic;
      }
    }
    if (comp.recursive_negation && v.diagnostic.empty()) {
      v.diagnostic = "recursion through negation";
    }
    result.components.push_back(std::move(v));
  }
  return result;
}

Status ValidateForEvaluation(const datalog::Program& program) {
  DependencyGraph graph(program);
  ProgramCheckResult result = CheckProgram(program, graph);
  return result.overall();
}

}  // namespace analysis
}  // namespace mad
