#ifndef MAD_ANALYSIS_CHECKER_H_
#define MAD_ANALYSIS_CHECKER_H_

#include <memory>
#include <string>
#include <vector>

#include "analysis/absint/certificate.h"
#include "analysis/dependency_graph.h"
#include "analysis/lint/diagnostic.h"
#include "analysis/termination.h"
#include "datalog/ast.h"
#include "datalog/database.h"
#include "util/status.h"

namespace mad {
namespace analysis {

/// Verdict for one program component (SCC).
struct ComponentVerdict {
  int index = -1;
  std::vector<std::string> predicate_names;
  bool recursive = false;
  bool recursive_aggregation = false;
  bool recursive_negation = false;
  /// All rules of the component are admissible (Definition 4.5) and no CDB
  /// negation occurs — by Lemma 4.1 T_P is then monotonic and the least
  /// fixpoint exists (Proposition 3.3).
  bool monotonic = false;
  /// Any ⊑-prefix of this component's fixpoint iteration is itself a sound
  /// under-approximation of the least model: the component is monotonic AND
  /// uses only strictly monotonic aggregates over recursive (CDB) predicates.
  /// Pseudo-monotonic aggregates (Section 4.1) are admissible only because
  /// default-value predicates keep the inner cardinality fixed; an
  /// *interrupted* iteration has not yet derived all inner keys, so partial
  /// states are not certifiable and resource trips become hard errors.
  bool prefix_sound = false;
  /// How the abstract interpreter certified this component. Components
  /// rejected by the syntactic Definition 4.5 check still evaluate when the
  /// certificate is kSemanticallyMonotonic.
  absint::CertificateKind certificate =
      absint::CertificateKind::kSyntacticallyAdmissible;
  /// Every admissibility finding against this component's rules, in rule
  /// order (empty iff all rules are admissible). Error severity marks the
  /// findings that make overall() reject.
  std::vector<lint::Diagnostic> diagnostics;
};

/// Complete static report for a program.
struct ProgramCheckResult {
  Status range_restricted;
  Status cost_respecting;
  Status conflict_free;
  Status admissible;
  /// Mumick et al. classification (Section 5.2), for comparison only.
  bool r_monotonic = false;
  std::vector<ComponentVerdict> components;
  /// Section 6.2 termination analysis (informational; never rejects).
  TerminationReport termination;
  /// Abstract-interpretation certificates per component (the semantic layer
  /// behind the kSemanticallyMonotonic acceptances and the kBoundedChains
  /// termination verdicts).
  absint::CertificateReport certificates;
  /// Every finding of the paper checks (MAD001–MAD008), collected in one
  /// run — never just the first violation. Error-severity entries exist
  /// iff overall() fails; warnings and notes are advisory.
  lint::DiagnosticList diagnostics;

  /// OK iff the program can be evaluated under the paper's semantics:
  /// range-restricted, conflict-free, and every recursive-through-aggregation
  /// or recursive-through-negation component monotonic. Equivalently: no
  /// error-severity entry in `diagnostics`.
  Status overall() const;

  std::string ToString() const;
};

/// Runs all static checks. `graph` must be built from `program`. `file`
/// is stamped into the collected diagnostics (empty for programmatic input).
/// `edb` optionally supplies the database the program will run against; the
/// abstract interpreter folds its cost values into the certificate's
/// initial intervals (certificates are only valid for the facts they have
/// seen — Engine::Run always passes its database).
ProgramCheckResult CheckProgram(const datalog::Program& program,
                                const DependencyGraph& graph,
                                const std::string& file = "",
                                const datalog::Database* edb = nullptr);

/// Convenience: builds the graph and checks; returns an error Status if the
/// program is rejected.
Status ValidateForEvaluation(const datalog::Program& program);

}  // namespace analysis
}  // namespace mad

#endif  // MAD_ANALYSIS_CHECKER_H_
