#include "analysis/conflict_free.h"

#include "analysis/cost_respecting.h"
#include "analysis/unification.h"
#include "util/string_util.h"

namespace mad {
namespace analysis {

using datalog::Program;
using datalog::Rule;
using datalog::Subgoal;

std::vector<RuleConflict> CollectRuleConflicts(const Program& program) {
  std::vector<RuleConflict> out;
  const auto& rules = program.rules();
  for (size_t i = 0; i < rules.size(); ++i) {
    // Only heads with cost arguments can conflict on cost values.
    if (!rules[i].head.pred->has_cost) continue;
    for (size_t j = i + 1; j < rules.size(); ++j) {
      if (rules[i].head.pred != rules[j].head.pred) continue;

      // Rename apart, then unify the heads on the non-cost arguments.
      Rule r1 = RenameVariables(rules[i], "#1");
      Rule r2 = RenameVariables(rules[j], "#2");
      std::optional<Substitution> theta =
          UnifyHeadsOnKeys(r1.head, r2.head);
      if (!theta.has_value()) continue;  // heads cannot clash
      Rule r1t = ApplySubst(r1, *theta);
      Rule r2t = ApplySubst(r2, *theta);

      if (HasContainmentMapping(r1t, r2t) ||
          HasContainmentMapping(r2t, r1t)) {
        continue;
      }

      // Case 2: the conjunction of both bodies fires an integrity
      // constraint, so the two rules can never both apply.
      std::vector<Subgoal> conjunction;
      for (const Subgoal& sg : r1t.body) conjunction.push_back(sg.Clone());
      for (const Subgoal& sg : r2t.body) conjunction.push_back(sg.Clone());
      bool excluded = false;
      for (const auto& constraint : program.constraints()) {
        if (ContainsConstraintInstance(conjunction, constraint)) {
          excluded = true;
          break;
        }
      }
      if (excluded) continue;

      RuleConflict c;
      c.rule_index_1 = static_cast<int>(i);
      c.rule_index_2 = static_cast<int>(j);
      c.head = rules[i].head.pred;
      c.message = StrPrintf(
          "rules at lines %d and %d both define cost predicate '%s', their "
          "heads unify on the non-cost arguments, and neither a containment "
          "mapping nor an integrity constraint rules out a conflict "
          "(Definition 2.10)",
          rules[i].source_line, rules[j].source_line,
          rules[i].head.pred->name.c_str());
      c.span_1 = rules[i].span;
      c.span_2 = rules[j].span;
      out.push_back(std::move(c));
    }
  }
  return out;
}

Status CheckConflictFree(const Program& program) {
  MAD_RETURN_IF_ERROR(CheckCostRespecting(program));
  std::vector<RuleConflict> conflicts = CollectRuleConflicts(program);
  if (conflicts.empty()) return Status::OK();
  return Status::AnalysisError(conflicts.front().message);
}

}  // namespace analysis
}  // namespace mad
