#ifndef MAD_ANALYSIS_CONFLICT_FREE_H_
#define MAD_ANALYSIS_CONFLICT_FREE_H_

#include <string>
#include <vector>

#include "datalog/ast.h"
#include "util/status.h"

namespace mad {
namespace analysis {

/// A pair of rules that may derive distinct costs for the same key tuple —
/// one violation of Definition 2.10.
struct RuleConflict {
  int rule_index_1 = -1;  ///< index into Program::rules()
  int rule_index_2 = -1;
  const datalog::PredicateInfo* head = nullptr;
  std::string message;
  datalog::SourceSpan span_1;  ///< span of the first rule
  datalog::SourceSpan span_2;  ///< span of the second rule
};

/// Collects *every* conflicting rule pair (Definition 2.10). Does NOT fold
/// in the cost-respecting precondition — run CheckCostRespecting (or the
/// MAD002 lint pass) separately.
std::vector<RuleConflict> CollectRuleConflicts(const datalog::Program& program);

/// Checks the conflict-freedom condition of Definition 2.10, the syntactic
/// sufficient condition for cost-consistency (Lemma 2.3):
///  * every rule is cost-respecting (Definition 2.7), and
///  * for every pair of rules whose heads unify on the non-cost arguments
///    with mgu θ, either a containment mapping exists between r1θ and r2θ
///    (in one direction or the other), or the conjunction of the two bodies
///    contains an instance of a declared integrity constraint.
/// Reports the first violation only; CollectRuleConflicts returns them all.
Status CheckConflictFree(const datalog::Program& program);

}  // namespace analysis
}  // namespace mad

#endif  // MAD_ANALYSIS_CONFLICT_FREE_H_
