#ifndef MAD_ANALYSIS_CONFLICT_FREE_H_
#define MAD_ANALYSIS_CONFLICT_FREE_H_

#include "datalog/ast.h"
#include "util/status.h"

namespace mad {
namespace analysis {

/// Checks the conflict-freedom condition of Definition 2.10, the syntactic
/// sufficient condition for cost-consistency (Lemma 2.3):
///  * every rule is cost-respecting (Definition 2.7), and
///  * for every pair of rules whose heads unify on the non-cost arguments
///    with mgu θ, either a containment mapping exists between r1θ and r2θ
///    (in one direction or the other), or the conjunction of the two bodies
///    contains an instance of a declared integrity constraint.
Status CheckConflictFree(const datalog::Program& program);

}  // namespace analysis
}  // namespace mad

#endif  // MAD_ANALYSIS_CONFLICT_FREE_H_
