#include "analysis/cost_respecting.h"

#include "util/string_util.h"

namespace mad {
namespace analysis {

using datalog::Atom;
using datalog::CmpOp;
using datalog::Expr;
using datalog::Rule;
using datalog::Subgoal;
using datalog::Term;

std::string FunctionalDependency::ToString() const {
  std::string out = "{";
  bool first = true;
  for (const std::string& v : lhs) {
    if (!first) out += ", ";
    first = false;
    out += v;
  }
  out += "} -> " + rhs;
  return out;
}

std::vector<FunctionalDependency> CollectBodyFds(const Rule& rule) {
  std::vector<FunctionalDependency> fds;

  auto add_atom_fd = [&](const Atom& a) {
    const Term* cost = a.CostTerm();
    if (cost == nullptr || !cost->is_var()) return;
    FunctionalDependency fd;
    for (int i = 0; i < a.pred->key_arity(); ++i) {
      if (a.args[i].is_var()) fd.lhs.insert(a.args[i].var);
    }
    fd.rhs = cost->var;
    fds.push_back(std::move(fd));
  };

  for (const Subgoal& sg : rule.body) {
    switch (sg.kind) {
      case Subgoal::Kind::kAtom:
        add_atom_fd(sg.atom);
        break;
      case Subgoal::Kind::kNegatedAtom:
        break;
      case Subgoal::Kind::kAggregate: {
        // The aggregate's value is functionally dependent on the grouping
        // variables (Definition 2.7 item 2).
        if (sg.aggregate.result.is_var()) {
          FunctionalDependency fd;
          for (const std::string& v : sg.aggregate.grouping_vars) {
            fd.lhs.insert(v);
          }
          fd.rhs = sg.aggregate.result.var;
          fds.push_back(std::move(fd));
        }
        break;
      }
      case Subgoal::Kind::kBuiltin: {
        if (sg.builtin.op != CmpOp::kEq) break;
        auto add_eq_fd = [&](const Expr& def, const Expr& src) {
          if (def.kind != Expr::Kind::kVar) return;
          FunctionalDependency fd;
          std::vector<std::string> vars;
          src.CollectVars(&vars);
          fd.lhs.insert(vars.begin(), vars.end());
          fd.rhs = def.var;
          fds.push_back(std::move(fd));
        };
        add_eq_fd(*sg.builtin.lhs, *sg.builtin.rhs);
        add_eq_fd(*sg.builtin.rhs, *sg.builtin.lhs);
        break;
      }
    }
  }
  return fds;
}

std::set<std::string> FdClosure(const std::set<std::string>& seed,
                                const std::vector<FunctionalDependency>& fds) {
  std::set<std::string> closure = seed;
  bool changed = true;
  while (changed) {
    changed = false;
    for (const FunctionalDependency& fd : fds) {
      if (closure.count(fd.rhs)) continue;
      bool applies = true;
      for (const std::string& v : fd.lhs) {
        if (!closure.count(v)) {
          applies = false;
          break;
        }
      }
      if (applies) {
        closure.insert(fd.rhs);
        changed = true;
      }
    }
  }
  return closure;
}

std::vector<CheckViolation> CollectCostRespectingViolations(const Rule& rule) {
  const Atom& head = rule.head;
  if (!head.pred->has_cost) return {};
  const Term& cost = head.args.back();
  if (cost.is_const()) return {};

  std::set<std::string> head_keys;
  for (int i = 0; i < head.pred->key_arity(); ++i) {
    if (head.args[i].is_var()) head_keys.insert(head.args[i].var);
  }
  std::vector<FunctionalDependency> fds = CollectBodyFds(rule);
  std::set<std::string> closure = FdClosure(head_keys, fds);
  if (closure.count(cost.var)) return {};

  std::string fd_list;
  for (const FunctionalDependency& fd : fds) {
    if (!fd_list.empty()) fd_list += "; ";
    fd_list += fd.ToString();
  }
  CheckViolation v;
  v.message = StrPrintf(
      "head cost variable %s is not determined by the head keys via body "
      "FDs [%s]",
      cost.var.c_str(), fd_list.c_str());
  v.span = cost.span.valid() ? cost.span : rule.span;
  return {std::move(v)};
}

Status CheckRuleCostRespecting(const Rule& rule) {
  std::vector<CheckViolation> violations =
      CollectCostRespectingViolations(rule);
  if (violations.empty()) return Status::OK();
  return Status::AnalysisError(StrPrintf(
      "rule '%s' (line %d) is not cost-respecting: %s",
      rule.ToString().c_str(), rule.source_line,
      violations.front().message.c_str()));
}

Status CheckCostRespecting(const datalog::Program& program) {
  for (const Rule& rule : program.rules()) {
    MAD_RETURN_IF_ERROR(CheckRuleCostRespecting(rule));
  }
  return Status::OK();
}

}  // namespace analysis
}  // namespace mad
