#ifndef MAD_ANALYSIS_COST_RESPECTING_H_
#define MAD_ANALYSIS_COST_RESPECTING_H_

#include <set>
#include <string>
#include <vector>

#include "analysis/violation.h"
#include "datalog/ast.h"
#include "util/status.h"

namespace mad {
namespace analysis {

/// A functional dependency over a rule's variables: lhs -> rhs.
struct FunctionalDependency {
  std::set<std::string> lhs;
  std::string rhs;
  std::string ToString() const;
};

/// Collects the functional dependencies available in `rule`'s body
/// (Definition 2.7 items 1 and 2):
///  * each positive cost atom contributes {key vars} -> cost var;
///  * each aggregate subgoal contributes {grouping vars} -> aggregate var;
///  * each built-in equality `V = E` contributes vars(E) -> V (and the
///    reverse for bare-variable equalities).
std::vector<FunctionalDependency> CollectBodyFds(const datalog::Rule& rule);

/// Armstrong-closure of `seed` under `fds` (the textbook attribute-set
/// closure algorithm realizes reflexivity/augmentation/transitivity [3]).
std::set<std::string> FdClosure(const std::set<std::string>& seed,
                                const std::vector<FunctionalDependency>& fds);

/// Collects the cost-respecting violation of `rule` if any (Definition 2.7
/// admits at most one per rule: the head cost is either determined or not),
/// with a span pointing at the head cost argument.
std::vector<CheckViolation> CollectCostRespectingViolations(
    const datalog::Rule& rule);

/// Checks that `rule` is cost-respecting (Definition 2.7): the head's cost
/// argument is functionally determined by the head's non-cost arguments.
/// Rules whose head predicate has no cost argument vacuously pass.
Status CheckRuleCostRespecting(const datalog::Rule& rule);

/// Checks every rule in the program.
Status CheckCostRespecting(const datalog::Program& program);

}  // namespace analysis
}  // namespace mad

#endif  // MAD_ANALYSIS_COST_RESPECTING_H_
