// Structural certification of the demand rewrite (see demand.h). The
// rewriter's own bookkeeping (patterns, copy_sources, magic_sources) is
// treated as the *specification* and the emitted Program as the artifact;
// every check below cross-validates the two, so a bug in either half turns
// into a bail-out (full evaluation) instead of a wrong answer.

#include <algorithm>
#include <map>
#include <set>
#include <string>

#include "analysis/demand/demand.h"
#include "util/string_util.h"

namespace mad {
namespace analysis {
namespace demand {

using datalog::Atom;
using datalog::PredicateInfo;
using datalog::Program;
using datalog::Rule;
using datalog::Subgoal;
using datalog::Term;

namespace {

std::string MagicNameFor(const DemandPattern& p) {
  return "m_" + p.pred->name + "_" + p.adornment;
}

Status Fail(const std::string& msg) { return Status::InvalidArgument(msg); }

/// Renders a rule body (subgoal list) for structural comparison.
std::string BodyKey(const Rule& r, size_t first_subgoal) {
  std::string out;
  for (size_t i = first_subgoal; i < r.body.size(); ++i) {
    if (!out.empty()) out += ", ";
    out += r.body[i].ToString();
  }
  return out;
}

std::string RuleKey(const Rule& r, size_t first_subgoal) {
  return r.head.ToString() + " :- " + BodyKey(r, first_subgoal);
}

}  // namespace

Status CertifyRewrite(const Program& original, const DemandRewrite& rewrite) {
  const Program& rw = rewrite.rewritten;

  // -- 1. Predicate alignment: every original predicate redeclared first,
  //       identical signature and id, so relation maps line up.
  if (rw.predicates().size() < original.predicates().size()) {
    return Fail("rewritten program drops predicates");
  }
  for (size_t i = 0; i < original.predicates().size(); ++i) {
    const PredicateInfo* a = original.predicates()[i].get();
    const PredicateInfo* b = rw.predicates()[i].get();
    if (a->name != b->name || a->arity != b->arity ||
        a->has_cost != b->has_cost || a->domain != b->domain ||
        a->has_default != b->has_default || a->id != b->id ||
        b->is_magic) {
      return Fail(StrPrintf("predicate %zu ('%s') misaligned in rewrite", i,
                            a->name.c_str()));
    }
  }

  // -- 2. Magic predicate shape: exactly one per bound demand pattern,
  //       cost-free, arity == bound count.
  size_t bound_patterns = 0;
  for (const DemandPattern& p : rewrite.patterns) {
    if (static_cast<int>(p.adornment.size()) != p.pred->key_arity()) {
      return Fail("pattern " + p.ToString() + " has wrong adornment length");
    }
    if (!p.HasBound()) continue;
    ++bound_patterns;
    const PredicateInfo* magic = rw.FindPredicate(MagicNameFor(p));
    if (magic == nullptr || !magic->is_magic || magic->has_cost ||
        magic->arity != p.BoundCount()) {
      return Fail("magic predicate for " + p.ToString() +
                  " missing or malformed");
    }
  }
  size_t declared_magic = 0;
  for (size_t i = original.predicates().size(); i < rw.predicates().size();
       ++i) {
    if (!rw.predicates()[i]->is_magic) {
      return Fail("rewritten program declares a non-magic extra predicate '" +
                  rw.predicates()[i]->name + "'");
    }
    ++declared_magic;
  }
  if (declared_magic != bound_patterns) {
    return Fail(StrPrintf("%zu magic predicates declared for %zu bound "
                          "patterns",
                          declared_magic, bound_patterns));
  }

  // Build the original rule lookup: head pred -> rule indices, and the
  // structural key of each original rule. Keys are ORIGINAL PredicateInfo
  // pointers; rewritten-program preds are mapped over via their aligned id.
  std::map<const PredicateInfo*, std::vector<int>> rules_by_head;
  for (size_t ri = 0; ri < original.rules().size(); ++ri) {
    rules_by_head[original.rules()[ri].head.pred].push_back(
        static_cast<int>(ri));
  }
  auto original_pred = [&](const PredicateInfo* pred) {
    return original.predicates()[pred->id].get();
  };

  // -- 3. Copy faithfulness. Classify every rewritten rule; each non-magic
  //       rule must be `original rule + optional leading guard`, and the
  //       guard must be over exactly the head's bound key terms.
  std::set<std::pair<int, std::string>> present_copies;  // (orig rule, adorn)
  size_t magic_rule_count = 0;
  for (size_t ri = 0; ri < rw.rules().size(); ++ri) {
    const Rule& r = rw.rules()[ri];
    if (r.head.pred->is_magic) {
      ++magic_rule_count;
      continue;  // validated against magic_sources below
    }
    size_t strip = 0;
    std::string adornment(r.head.pred->key_arity(), 'f');
    if (!r.body.empty() && r.body[0].kind == Subgoal::Kind::kAtom &&
        r.body[0].atom.pred->is_magic) {
      const Atom& guard = r.body[0].atom;
      strip = 1;
      // Recover the adornment from the guard's argument terms: they must be
      // exactly the head's key terms at the bound positions, in order.
      size_t gi = 0;
      const PredicateInfo* head = r.head.pred;
      std::string expected_name = "m_" + head->name + "_";
      for (int k = 0; k < head->key_arity() && gi < guard.args.size(); ++k) {
        if (guard.args[gi] == r.head.args[k]) {
          adornment[k] = 'b';
          ++gi;
        }
      }
      if (gi != guard.args.size() ||
          guard.pred->name != expected_name + adornment) {
        return Fail(StrPrintf("rewritten rule %zu: guard %s does not project "
                              "the head's bound key terms",
                              ri, guard.ToString().c_str()));
      }
    }
    // The stripped remainder must be an original rule with this head.
    const std::string key = RuleKey(r, strip);
    bool matched = false;
    for (int ori : rules_by_head[original_pred(r.head.pred)]) {
      if (RuleKey(original.rules()[ori], 0) == key) {
        present_copies.insert({ori, adornment});
        matched = true;
        break;
      }
    }
    if (!matched) {
      return Fail(StrPrintf("rewritten rule %zu does not correspond to any "
                            "original rule: %s",
                            ri, r.ToString().c_str()));
    }
    DemandPattern head_pattern{original_pred(r.head.pred), adornment};
    if (rewrite.patterns.count(head_pattern) == 0) {
      return Fail(StrPrintf("rewritten rule %zu guarded by undemanded "
                            "pattern %s",
                            ri, head_pattern.ToString().c_str()));
    }
  }

  // -- 4. Copy completeness: every demanded (p, alpha) guards a copy of
  //       every original rule with head p.
  for (const DemandPattern& p : rewrite.patterns) {
    for (int ori : rules_by_head[p.pred]) {
      if (present_copies.count({ori, p.adornment}) == 0) {
        return Fail(StrPrintf("demanded pattern %s lacks a copy of original "
                              "rule %d",
                              p.ToString().c_str(), ori));
      }
    }
  }
  //       ... and nothing outside the cone leaked in.
  for (int unreachable : rewrite.unreachable_rules) {
    for (const auto& [ori, adorn] : present_copies) {
      if (ori == unreachable) {
        return Fail(StrPrintf("rule %d is marked demand-unreachable but was "
                              "copied",
                              unreachable));
      }
    }
  }

  // -- 5. Cone closure: every IDB predicate a kept copy references is
  //       demanded; negated IDB predicates are demanded all-free.
  std::set<const PredicateInfo*> demanded_preds;
  std::set<const PredicateInfo*> demanded_all_free;
  for (const DemandPattern& p : rewrite.patterns) {
    demanded_preds.insert(p.pred);
    if (!p.HasBound()) demanded_all_free.insert(p.pred);
  }
  auto is_idb = [&](const PredicateInfo* pred) {
    return !pred->is_magic &&
           rules_by_head.count(original_pred(pred)) > 0;
  };
  for (const Rule& r : rw.rules()) {
    if (r.head.pred->is_magic) continue;
    for (const Subgoal& sg : r.body) {
      switch (sg.kind) {
        case Subgoal::Kind::kAtom:
          if (!sg.atom.pred->is_magic && is_idb(sg.atom.pred) &&
              demanded_preds.count(original_pred(sg.atom.pred)) == 0) {
            return Fail("cone not closed under positive atom " +
                        sg.atom.ToString());
          }
          break;
        case Subgoal::Kind::kNegatedAtom:
          if (is_idb(sg.atom.pred) &&
              demanded_all_free.count(original_pred(sg.atom.pred)) == 0) {
            return Fail("negated predicate '" + sg.atom.pred->name +
                        "' must be demanded all-free");
          }
          break;
        case Subgoal::Kind::kAggregate:
          for (const Atom& a : sg.aggregate.atoms) {
            if (is_idb(a.pred) &&
                demanded_preds.count(original_pred(a.pred)) == 0) {
              return Fail("cone not closed under aggregate-inner atom " +
                          a.ToString());
            }
          }
          break;
        case Subgoal::Kind::kBuiltin:
          break;
      }
    }
  }

  // -- 6. Magic rule validation + aggregate grouping-variable policy.
  if (magic_rule_count != rewrite.magic_sources.size()) {
    return Fail(StrPrintf("%zu magic rules emitted but %zu sources recorded",
                          magic_rule_count, rewrite.magic_sources.size()));
  }
  for (const MagicRuleSource& src : rewrite.magic_sources) {
    if (src.rewritten_rule_index < 0 ||
        src.rewritten_rule_index >= static_cast<int>(rw.rules().size()) ||
        src.original_rule_index < 0 ||
        src.original_rule_index >= static_cast<int>(original.rules().size())) {
      return Fail("magic source indexes out of range");
    }
    const Rule& magic = rw.rules()[src.rewritten_rule_index];
    if (!magic.head.pred->is_magic ||
        magic.head.pred->name != MagicNameFor(src.target)) {
      return Fail("magic rule head does not match its target pattern " +
                  src.target.ToString());
    }
    const Rule& source_rule = original.rules()[src.original_rule_index];
    if (src.subgoal_index < 0 ||
        src.subgoal_index >= static_cast<int>(source_rule.body.size())) {
      return Fail("magic source subgoal out of range");
    }
    const Subgoal& sg = source_rule.body[src.subgoal_index];
    const Atom* demanded = nullptr;
    if (src.aggregate_atom_index >= 0) {
      if (sg.kind != Subgoal::Kind::kAggregate ||
          src.aggregate_atom_index >=
              static_cast<int>(sg.aggregate.atoms.size())) {
        return Fail("magic source does not name an aggregate-inner atom");
      }
      demanded = &sg.aggregate.atoms[src.aggregate_atom_index];
    } else {
      if (sg.kind != Subgoal::Kind::kAtom) {
        return Fail("magic source does not name a positive atom");
      }
      demanded = &sg.atom;
    }
    if (original_pred(demanded->pred) != src.target.pred) {
      return Fail("magic rule targets a different predicate than its "
                  "demanding atom");
    }
    // The head must project the demanding atom's key terms at exactly the
    // target's bound positions.
    std::vector<Term> expected;
    for (int k = 0; k < src.target.pred->key_arity(); ++k) {
      if (src.target.adornment[k] == 'b') {
        expected.push_back(demanded->args[k]);
      }
    }
    if (expected.size() != magic.head.args.size() ||
        !std::equal(expected.begin(), expected.end(),
                    magic.head.args.begin())) {
      return Fail("magic rule head does not project the demanded atom's "
                  "bound key terms (" + magic.ToString() + ")");
    }
    // Lattice policy: demand reaching into an aggregate may bind only
    // constants and grouping variables — then each demanded group's inner
    // multiset is complete and the aggregate value equals the full model's.
    if (src.aggregate_atom_index >= 0) {
      const auto& grouping = sg.aggregate.grouping_vars;
      for (int k = 0; k < src.target.pred->key_arity(); ++k) {
        if (src.target.adornment[k] != 'b') continue;
        const Term& t = demanded->args[k];
        if (t.is_var() && std::find(grouping.begin(), grouping.end(),
                                    t.var) == grouping.end()) {
          return Fail(StrPrintf(
              "aggregate-inner demand %s binds non-grouping variable %s",
              src.target.ToString().c_str(), t.var.c_str()));
        }
      }
    }
  }

  return Status::OK();
}

}  // namespace demand
}  // namespace analysis
}  // namespace mad
