#include "analysis/demand/demand.h"

#include <algorithm>
#include <deque>
#include <map>
#include <utility>

#include "analysis/checker.h"
#include "analysis/plan/plan.h"
#include "util/string_util.h"

namespace mad {
namespace analysis {
namespace demand {

using datalog::Atom;
using datalog::Expr;
using datalog::Fact;
using datalog::PredicateInfo;
using datalog::Program;
using datalog::Rule;
using datalog::Subgoal;
using datalog::Term;

namespace {

/// Demand-pattern explosion guard: a program whose rules keep minting new
/// adornments (e.g. through argument permutations in recursion) is rewritten
/// only up to this many (pred, adornment) pairs, then bailed out (MAD025).
constexpr size_t kMaxPatterns = 128;

std::string MagicName(const DemandPattern& p) {
  return "m_" + p.pred->name + "_" + p.adornment;
}

/// Key adornment of `a` under the demand-bound variable set: constants and
/// bound variables are 'b'. Cost columns are never adorned (lattice policy).
std::string KeyAdornment(const Atom& a, const std::set<std::string>& bound) {
  std::string ad;
  int keys = a.pred->key_arity();
  ad.reserve(keys);
  for (int i = 0; i < keys; ++i) {
    const Term& t = a.args[i];
    ad += (t.is_const() || bound.count(t.var) > 0) ? 'b' : 'f';
  }
  return ad;
}

/// The rewrite builds a fresh Program, so every atom cloned from the
/// original must have its PredicateInfo pointer remapped by name.
class Remapper {
 public:
  explicit Remapper(const Program* target) : target_(target) {}

  void Remap(Atom* a) const { a->pred = target_->FindPredicate(a->pred->name); }

  void Remap(Subgoal* sg) const {
    switch (sg->kind) {
      case Subgoal::Kind::kAtom:
      case Subgoal::Kind::kNegatedAtom:
        Remap(&sg->atom);
        break;
      case Subgoal::Kind::kAggregate:
        for (Atom& a : sg->aggregate.atoms) Remap(&a);
        break;
      case Subgoal::Kind::kBuiltin:
        break;
    }
  }

  Rule Remap(const Rule& rule) const {
    Rule out = rule.Clone();
    Remap(&out.head);
    for (Subgoal& sg : out.body) Remap(&sg);
    return out;
  }

 private:
  const Program* target_;
};

/// Per-position meet of two adornments over the same predicate: a column is
/// bound only if both adornments bind it. Widening (fewer bound columns)
/// demands a superset of the tighter slice, so it is always sound.
std::string MeetAdornment(const std::string& a, const std::string& b) {
  std::string out = a;
  for (size_t i = 0; i < out.size() && i < b.size(); ++i) {
    if (b[i] != 'b') out[i] = 'f';
  }
  return out;
}

/// Bookkeeping for one in-flight rewrite. The rewrite keeps at most ONE
/// demand pattern per predicate: if propagation would mint a second
/// adornment for a predicate, the two are widened to their meet and the
/// whole rewrite restarts with that predicate pinned (see `forced`). One
/// pattern per predicate means one guarded copy per rule, which keeps the
/// conflict-freedom re-check (Definition 2.10) of the rewritten program
/// isomorphic to the original's — two copies of the same cost rule with
/// different guards would otherwise unify their heads with nothing to rule
/// the conflict out.
class Rewriter {
 public:
  Rewriter(const Program& program, const DependencyGraph& graph,
           const DemandPattern& query,
           std::map<const PredicateInfo*, std::string>* forced)
      : program_(program),
        graph_(graph),
        cards_(plan::CardinalityEstimates::FromProgram(program)),
        idb_(program.HeadPredicates()),
        forced_(forced) {
    result_.query_pattern = query;
  }

  bool needs_restart() const { return needs_restart_; }

  DemandRewrite Run() {
    if (!DeclareOriginalPredicates()) return std::move(result_);
    result_.query_pattern = Demand(result_.query_pattern);
    while (!queue_.empty() && result_.bailout_reason.empty() &&
           !needs_restart_) {
      DemandPattern p = queue_.front();
      queue_.pop_front();
      ProcessPattern(p);
    }
    if (needs_restart_) return std::move(result_);
    if (!result_.bailout_reason.empty()) return std::move(result_);
    EmitProgram();
    if (result_.query_pattern.HasBound()) {
      result_.seed_pred =
          result_.rewritten.FindPredicate(MagicName(result_.query_pattern));
    }
    for (int i = 0; i < result_.query_pattern.pred->key_arity(); ++i) {
      if (result_.query_pattern.adornment[i] == 'b') {
        result_.bound_key_positions.push_back(i);
      }
    }
    for (size_t ri = 0; ri < program_.rules().size(); ++ri) {
      if (copied_rules_.count(static_cast<int>(ri)) == 0) {
        result_.unreachable_rules.push_back(static_cast<int>(ri));
      }
    }
    Certify();
    if (result_.bailout_reason.empty()) result_.ok = true;
    return std::move(result_);
  }

 private:
  void Bail(std::string reason) {
    if (result_.bailout_reason.empty()) {
      result_.bailout_reason = std::move(reason);
    }
  }

  bool IsIdb(const PredicateInfo* pred) const { return idb_.count(pred) > 0; }

  /// Redeclares every original predicate, in declaration order, so ids (and
  /// therefore Database relation keys) line up between the two programs.
  bool DeclareOriginalPredicates() {
    for (const auto& p : program_.predicates()) {
      PredicateInfo info;
      info.name = p->name;
      info.arity = p->arity;
      info.has_cost = p->has_cost;
      info.domain = p->domain;
      info.has_default = p->has_default;
      if (p->is_magic) {
        Bail(StrPrintf("predicate '%s' is already a magic predicate "
                       "(program was rewritten before)",
                       p->name.c_str()));
        return false;
      }
      auto declared = result_.rewritten.DeclarePredicate(std::move(info));
      if (!declared.ok()) {
        Bail("redeclaration failed: " + declared.status().ToString());
        return false;
      }
    }
    return true;
  }

  /// Registers demand for `p` (after applying any forced widening) and
  /// returns the pattern actually used. When a different adornment for the
  /// same predicate is already live, records the meet in `forced_` and flags
  /// a restart instead.
  DemandPattern Demand(DemandPattern p) {
    if (static_cast<int>(p.adornment.size()) != p.pred->key_arity()) {
      Bail(StrPrintf("adornment '%s' does not match key arity %d of '%s'",
                     p.adornment.c_str(), p.pred->key_arity(),
                     p.pred->name.c_str()));
      return p;
    }
    auto forced_it = forced_->find(p.pred);
    if (forced_it != forced_->end()) {
      p.adornment = MeetAdornment(p.adornment, forced_it->second);
    }
    auto chosen_it = chosen_.find(p.pred);
    if (chosen_it != chosen_.end()) {
      if (chosen_it->second == p.adornment) return p;
      // Second adornment for this predicate: widen to the meet and restart
      // with the predicate pinned. Each restart strictly clears bound bits,
      // so the outer loop terminates.
      (*forced_)[p.pred] = MeetAdornment(chosen_it->second, p.adornment);
      needs_restart_ = true;
      return p;
    }
    if (result_.patterns.size() >= kMaxPatterns) {
      Bail(StrPrintf("demand-pattern explosion: more than %zu distinct "
                     "(predicate, adornment) pairs",
                     kMaxPatterns));
      return p;
    }
    chosen_[p.pred] = p.adornment;
    result_.patterns.insert(p);
    if (p.HasBound()) {
      PredicateInfo magic;
      magic.name = MagicName(p);
      if (program_.FindPredicate(magic.name) != nullptr) {
        Bail(StrPrintf("magic predicate name '%s' collides with a declared "
                       "predicate",
                       magic.name.c_str()));
        return p;
      }
      magic.arity = p.BoundCount();
      magic.is_magic = true;
      auto declared = result_.rewritten.DeclarePredicate(std::move(magic));
      if (!declared.ok()) {
        Bail("magic declaration failed: " + declared.status().ToString());
        return p;
      }
    }
    queue_.push_back(p);
    return p;
  }

  /// The guard atom of a rule copy under head pattern `p`: the magic
  /// predicate applied to the head's key terms at the bound positions.
  Atom GuardFor(const Rule& rule, const DemandPattern& p) const {
    Atom guard;
    guard.pred = result_.rewritten.FindPredicate(MagicName(p));
    for (int i = 0; i < p.pred->key_arity(); ++i) {
      if (p.adornment[i] == 'b') guard.args.push_back(rule.head.args[i]);
    }
    return guard;
  }

  /// Emits the magic rule feeding `target` from the demanding atom `a`,
  /// guarded by the demanding rule's own magic guard plus the includable
  /// prefix. An empty body is legal only when every bound term is constant
  /// (the rule degenerates to a fact).
  void EmitMagicRule(const DemandPattern& target, const Atom& a,
                     const std::set<std::string>& bound,
                     const Atom* guard, const std::vector<int>& prefix,
                     const Rule& source_rule, MagicRuleSource src) {
    Rule magic;
    magic.head.pred = nullptr;  // resolved at emission (rewritten program)
    magic.head.args.clear();
    for (int i = 0; i < target.pred->key_arity(); ++i) {
      if (target.adornment[i] == 'b') magic.head.args.push_back(a.args[i]);
    }
    magic.source_line = source_rule.source_line;
    if (guard != nullptr) magic.body.push_back(Subgoal::Positive(*guard));
    for (int sg_index : prefix) {
      magic.body.push_back(source_rule.body[sg_index].Clone());
    }
    (void)bound;
    src.target = target;
    pending_magic_.push_back({std::move(magic), MagicName(target), src});
  }

  /// Processes one demanded (pred, adornment): emits a guarded copy of every
  /// rule with that head predicate and propagates demand into the bodies
  /// along the planner's SIPS order.
  void ProcessPattern(const DemandPattern& p) {
    for (size_t ri = 0; ri < program_.rules().size(); ++ri) {
      const Rule& rule = program_.rules()[ri];
      if (rule.head.pred != p.pred) continue;
      ProcessRule(rule, static_cast<int>(ri), p);
      if (!result_.bailout_reason.empty() || needs_restart_) return;
    }
  }

  void ProcessRule(const Rule& rule, int rule_index, const DemandPattern& p) {
    // Head key variables at bound positions seed the SIPS.
    std::set<std::string> head_bound;
    for (int i = 0; i < p.pred->key_arity(); ++i) {
      if (p.adornment[i] == 'b' && rule.head.args[i].is_var()) {
        head_bound.insert(rule.head.args[i].var);
      }
    }
    plan::QueryPlan body_plan = plan::PlanRuleWithBound(
        rule, rule_index, graph_, cards_, head_bound);
    if (!body_plan.complete) {
      Bail(StrPrintf("rule %d (line %d) has no safe evaluation order under "
                     "adornment %s^%s",
                     rule_index, rule.source_line, p.pred->name.c_str(),
                     p.adornment.c_str()));
      return;
    }

    Atom guard;
    const Atom* guard_ptr = nullptr;
    if (p.HasBound()) {
      guard = GuardFor(rule, p);
      guard_ptr = &guard;
    }

    // Walk the planned order, maintaining the *demand-bound* variable set D
    // (a subset of the plan's bound set: only bindings from includable
    // steps count, so every demand adornment is justified by the magic rule
    // body that accompanies it — skipping a step widens demand, never
    // narrows it, which is the sound direction).
    std::set<std::string> dbound = head_bound;
    std::vector<int> prefix;  // includable subgoal indices, planned order
    for (const plan::PlanStep& step : body_plan.steps) {
      const Subgoal& sg = rule.body[step.subgoal_index];
      switch (sg.kind) {
        case Subgoal::Kind::kAtom: {
          const Atom& a = sg.atom;
          if (IsIdb(a.pred)) {
            DemandPattern sub = Demand({a.pred, KeyAdornment(a, dbound)});
            if (!result_.bailout_reason.empty() || needs_restart_) return;
            if (sub.HasBound()) {
              MagicRuleSource src;
              src.original_rule_index = rule_index;
              src.subgoal_index = step.subgoal_index;
              EmitMagicRule(sub, a, dbound, guard_ptr, prefix, rule, src);
            }
          }
          prefix.push_back(step.subgoal_index);
          for (const Term& t : a.args) {
            if (t.is_var()) dbound.insert(t.var);
          }
          break;
        }
        case Subgoal::Kind::kNegatedAtom: {
          // A negated IDB predicate's cone is evaluated in full: slicing the
          // complement of a partial relation is unsound, so demand all-free
          // and leave the step out of magic-rule prefixes.
          if (IsIdb(sg.atom.pred)) {
            Demand({sg.atom.pred,
                    std::string(sg.atom.pred->key_arity(), 'f')});
            if (!result_.bailout_reason.empty() || needs_restart_) return;
          }
          break;
        }
        case Subgoal::Kind::kBuiltin: {
          std::vector<std::string> vars = sg.builtin.Vars();
          bool all_bound = true;
          for (const std::string& v : vars) {
            all_bound = all_bound && dbound.count(v) > 0;
          }
          if (all_bound) {
            // Fully-bound filter: including it keeps magic sets tight.
            prefix.push_back(step.subgoal_index);
            break;
          }
          // Assignment V = expr with expr bound under D binds V.
          if (sg.builtin.op == datalog::CmpOp::kEq) {
            auto try_assign = [&](const Expr& var_side,
                                  const Expr& expr_side) -> bool {
              if (var_side.kind != Expr::Kind::kVar) return false;
              if (dbound.count(var_side.var) > 0) return false;
              std::vector<std::string> evars;
              expr_side.CollectVars(&evars);
              for (const std::string& v : evars) {
                if (dbound.count(v) == 0) return false;
              }
              dbound.insert(var_side.var);
              prefix.push_back(step.subgoal_index);
              return true;
            };
            if (try_assign(*sg.builtin.lhs, *sg.builtin.rhs) ||
                try_assign(*sg.builtin.rhs, *sg.builtin.lhs)) {
              break;
            }
          }
          // Not computable from demand-bound vars: skip (over-demand).
          break;
        }
        case Subgoal::Kind::kAggregate: {
          // Inner atoms are demanded through bound grouping variables only
          // (constants aside, an inner atom's key variable bound under D is
          // by definition a grouping variable — it occurs outside the
          // aggregate). The aggregate step itself never joins a magic-rule
          // prefix: magic predicates stay cost-free and the rewrite can
          // never introduce recursion through aggregation that the original
          // program did not have.
          for (size_t ai = 0; ai < sg.aggregate.atoms.size(); ++ai) {
            const Atom& a = sg.aggregate.atoms[ai];
            if (!IsIdb(a.pred)) continue;
            DemandPattern sub = Demand({a.pred, KeyAdornment(a, dbound)});
            if (!result_.bailout_reason.empty() || needs_restart_) return;
            if (sub.HasBound()) {
              MagicRuleSource src;
              src.original_rule_index = rule_index;
              src.subgoal_index = step.subgoal_index;
              src.aggregate_atom_index = static_cast<int>(ai);
              EmitMagicRule(sub, a, dbound, guard_ptr, prefix, rule, src);
            }
          }
          break;
        }
      }
    }

    pending_copies_.push_back({rule_index, p, guard_ptr != nullptr});
    copied_rules_.insert(rule_index);
  }

  /// Emits facts and rules into the rewritten program in deterministic
  /// order: original inline facts, then rule copies (original order, then
  /// adornment), then magic rules (discovery order).
  void EmitProgram() {
    Remapper remap(&result_.rewritten);
    // Integrity constraints are application-level promises about the same
    // predicates; the conflict-freedom re-check of the rewritten program
    // depends on them exactly as the original check did.
    for (const datalog::IntegrityConstraint& c : program_.constraints()) {
      datalog::IntegrityConstraint copy;
      copy.body.reserve(c.body.size());
      for (const Subgoal& sg : c.body) {
        Subgoal s = sg.Clone();
        remap.Remap(&s);
        copy.body.push_back(std::move(s));
      }
      result_.rewritten.AddConstraint(std::move(copy));
    }
    for (const Fact& f : program_.facts()) {
      Fact copy = f;
      copy.pred = result_.rewritten.FindPredicate(f.pred->name);
      result_.rewritten.AddFact(std::move(copy));
    }

    std::stable_sort(pending_copies_.begin(), pending_copies_.end(),
                     [](const PendingCopy& a, const PendingCopy& b) {
                       if (a.rule_index != b.rule_index) {
                         return a.rule_index < b.rule_index;
                       }
                       return a.pattern.adornment < b.pattern.adornment;
                     });
    for (const PendingCopy& pc : pending_copies_) {
      const Rule& original = program_.rules()[pc.rule_index];
      Rule copy = remap.Remap(original);
      if (pc.guarded) {
        Atom guard = GuardFor(original, pc.pattern);
        copy.body.insert(copy.body.begin(), Subgoal::Positive(guard));
      }
      RuleCopySource src;
      src.rewritten_rule_index =
          static_cast<int>(result_.rewritten.rules().size());
      src.original_rule_index = pc.rule_index;
      src.head_pattern = pc.pattern;
      src.guarded = pc.guarded;
      result_.copy_sources.push_back(src);
      result_.rewritten.AddRule(std::move(copy));
    }

    for (PendingMagic& pm : pending_magic_) {
      Rule magic = std::move(pm.rule);
      magic.head.pred = result_.rewritten.FindPredicate(pm.magic_name);
      Remapper r(&result_.rewritten);
      for (Subgoal& sg : magic.body) r.Remap(&sg);
      pm.source.rewritten_rule_index =
          static_cast<int>(result_.rewritten.rules().size());
      result_.magic_sources.push_back(pm.source);
      result_.rewritten.AddRule(std::move(magic));
    }
  }

  /// Static certification: the structural CertifyRewrite checks plus a full
  /// admissibility/monotonicity/absint re-check of the rewritten program.
  /// Any failure downgrades the whole rewrite to a bail-out — the caller
  /// falls back to full evaluation, never to an uncertified slice.
  void Certify() {
    Status structural = CertifyRewrite(program_, result_);
    if (!structural.ok()) {
      Bail("certification failed: " + std::string(structural.message()));
      return;
    }
    DependencyGraph rewritten_graph(result_.rewritten);
    ProgramCheckResult check =
        CheckProgram(result_.rewritten, rewritten_graph, "<demand-rewrite>");
    if (!check.overall().ok()) {
      Bail("rewritten program fails static checks: " +
           std::string(check.overall().message()));
    }
  }

  struct PendingCopy {
    int rule_index;
    DemandPattern pattern;
    bool guarded;
  };
  struct PendingMagic {
    Rule rule;
    std::string magic_name;
    MagicRuleSource source;
  };

  const Program& program_;
  const DependencyGraph& graph_;
  plan::CardinalityEstimates cards_;
  std::set<const PredicateInfo*> idb_;
  /// Cross-restart widening pins (owned by RewriteForPattern's driver loop).
  std::map<const PredicateInfo*, std::string>* forced_;
  /// The single adornment chosen for each predicate in this attempt.
  std::map<const PredicateInfo*, std::string> chosen_;
  bool needs_restart_ = false;
  DemandRewrite result_;
  std::deque<DemandPattern> queue_;
  std::vector<PendingCopy> pending_copies_;
  std::vector<PendingMagic> pending_magic_;
  std::set<int> copied_rules_;
};

}  // namespace

std::string DemandPattern::ToString() const {
  return (pred != nullptr ? pred->name : "?") + "^" + adornment;
}

std::string DemandRewrite::ToString() const {
  std::string out;
  if (!ok) {
    out += "demand rewrite: BAILOUT (" + bailout_reason + ")\n";
    return out;
  }
  out += "demand rewrite for " + query_pattern.ToString() + "\n";
  out += "  demanded patterns:";
  for (const DemandPattern& p : patterns) out += " " + p.ToString();
  out += "\n";
  if (!unreachable_rules.empty()) {
    out += "  unreachable rules:";
    for (int r : unreachable_rules) out += StrPrintf(" %d", r);
    out += "\n";
  }
  out += StrPrintf("  rewritten: %zu rules (%zu copies, %zu magic)\n",
                   rewritten.rules().size(), copy_sources.size(),
                   magic_sources.size());
  return out;
}

DemandPattern PatternForQuery(const datalog::Atom& query,
                              bool* cost_widened) {
  DemandPattern p;
  p.pred = query.pred;
  int keys = query.pred->key_arity();
  for (int i = 0; i < keys; ++i) {
    p.adornment += query.args[i].is_const() ? 'b' : 'f';
  }
  if (cost_widened != nullptr) {
    const Term* cost = query.CostTerm();
    *cost_widened = cost != nullptr && cost->is_const();
  }
  return p;
}

DemandRewrite RewriteForPattern(const datalog::Program& program,
                                const DependencyGraph& graph,
                                const DemandPattern& pattern) {
  // Restart loop for one-pattern-per-predicate widening: each restart pins
  // at least one predicate to a strictly wider (fewer bound bits) adornment,
  // so the number of rounds is bounded by the total key-column count. The
  // cap is a safety net, not a budget.
  std::map<const datalog::PredicateInfo*, std::string> forced;
  DemandRewrite last;
  for (int round = 0; round < 64; ++round) {
    Rewriter rewriter(program, graph, pattern, &forced);
    last = rewriter.Run();
    if (!rewriter.needs_restart()) return last;
  }
  last.ok = false;
  if (last.bailout_reason.empty()) {
    last.bailout_reason =
        "demand widening failed to converge (restart cap exceeded)";
  }
  return last;
}

}  // namespace demand
}  // namespace analysis
}  // namespace mad
