#ifndef MAD_ANALYSIS_DEMAND_DEMAND_H_
#define MAD_ANALYSIS_DEMAND_DEMAND_H_

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "analysis/dependency_graph.h"
#include "datalog/ast.h"
#include "util/status.h"

namespace mad {
namespace analysis {
namespace demand {

/// A demand pattern: one predicate together with a bound/free adornment over
/// its KEY columns only. Lattice-column policy: the cost column never appears
/// in an adornment — cost values are what the query *asks for*, and demanding
/// them would slice an aggregate's input multiset, breaking the completeness
/// induction that makes magic sets sound for monotone aggregation. A query
/// that binds a cost column is answered by post-filtering the demanded slice
/// (MAD027, free-cost-column demand widening).
struct DemandPattern {
  const datalog::PredicateInfo* pred = nullptr;
  /// Length == pred->key_arity(); 'b' = bound, 'f' = free.
  std::string adornment;

  bool HasBound() const {
    return adornment.find('b') != std::string::npos;
  }
  int BoundCount() const {
    return static_cast<int>(std::count(adornment.begin(), adornment.end(),
                                       'b'));
  }
  bool operator<(const DemandPattern& o) const {
    if (pred != o.pred) return pred->id < o.pred->id;
    return adornment < o.adornment;
  }
  bool operator==(const DemandPattern& o) const {
    return pred == o.pred && adornment == o.adornment;
  }
  /// "sp^bf" — the notation used in diagnostics and --explain dumps.
  std::string ToString() const;
};

/// Provenance of one emitted magic rule, retained so the certifier can
/// independently re-derive what the rule's head must look like (and enforce
/// the aggregate grouping-variable policy) without trusting the rewriter.
struct MagicRuleSource {
  int rewritten_rule_index = -1;  ///< index into rewritten.rules()
  int original_rule_index = -1;   ///< rule whose body demanded the atom
  int subgoal_index = -1;         ///< body position of the demanding subgoal
  /// >= 0 when the demanded atom sits inside an aggregate subgoal (its index
  /// in AggregateSubgoal::atoms); -1 for a plain body atom.
  int aggregate_atom_index = -1;
  DemandPattern target;           ///< pattern the magic rule feeds
};

/// One guarded (or unguarded, for all-free patterns) copy of an original
/// rule in the rewritten program.
struct RuleCopySource {
  int rewritten_rule_index = -1;
  int original_rule_index = -1;
  DemandPattern head_pattern;  ///< demand pattern of the copy's head
  bool guarded = false;        ///< first body subgoal is the magic guard
};

/// The outcome of the demand transformation for one query pattern. When
/// `ok`, `rewritten` is an ordinary Program — the existing checker, absint
/// certifier, planner and engine consume it unchanged — whose least model,
/// restricted to the demanded slice, equals the original program's
/// (certified statically by CertifyRewrite and dynamically by the
/// demand differential gate).
struct DemandRewrite {
  bool ok = false;
  /// MAD025 payload: why the transformation conservatively bailed out
  /// (evaluate the full program instead). Empty iff `ok`.
  std::string bailout_reason;

  datalog::Program rewritten;
  /// The query's own demand pattern (over the original program's pred).
  DemandPattern query_pattern;
  /// Magic predicate to seed with the query's bound key values, or nullptr
  /// when the query pattern is all-free (pure cone restriction, no guards).
  /// Owned by `rewritten`.
  const datalog::PredicateInfo* seed_pred = nullptr;
  /// Key-column indices (ascending) of the 'b' positions in query_pattern —
  /// the columns whose query constants form the seed fact's tuple.
  std::vector<int> bound_key_positions;

  /// Every demanded (pred, adornment); preds point into the ORIGINAL program.
  std::set<DemandPattern> patterns;
  /// Original rule indices outside the query's cone (MAD026): no copy of
  /// them appears in the rewritten program.
  std::vector<int> unreachable_rules;
  /// Emission metadata consumed by the certifier.
  std::vector<MagicRuleSource> magic_sources;
  std::vector<RuleCopySource> copy_sources;

  /// Human-readable transformation trace (patterns, rules, bail-out).
  std::string ToString() const;
};

/// Derives the demand pattern of a query atom: key columns with constant
/// arguments are 'b', variables (including `_`) are 'f'. `cost_widened` is
/// set when the atom binds its cost column — the pattern stays free there
/// (see DemandPattern) and callers post-filter (MAD027).
DemandPattern PatternForQuery(const datalog::Atom& query,
                              bool* cost_widened);

/// The demand transformation: propagates `pattern` through `program`'s rules
/// along the static planner's sideways-information-passing order, emits the
/// magic-sets rewrite (magic predicates + guarded rule copies + magic
/// rules), and statically certifies it (CertifyRewrite + a full re-check of
/// the rewritten program). Value-independent: the same pattern serves every
/// bound constant, so results are cacheable per (pred, adornment).
///
/// Never fails outright — an untransformable query returns ok=false with a
/// structured bail-out reason, and the caller evaluates the full program.
DemandRewrite RewriteForPattern(const datalog::Program& program,
                                const DependencyGraph& graph,
                                const DemandPattern& pattern);

/// Independent structural certification of a rewrite, called by
/// RewriteForPattern (a failure downgrades the rewrite to a bail-out) and
/// directly by tests. Verifies, without trusting the rewriter's bookkeeping:
///   1. predicate alignment — every original predicate is redeclared first,
///      same id/name/arity/cost signature, so relation ids line up and
///      snapshot relations can be shared into the demand evaluation;
///   2. magic predicate shape — cost-free, is_magic, arity == bound count;
///   3. copy faithfulness — every non-magic rewritten rule is an original
///      rule plus (at most) one leading magic guard over exactly the head's
///      bound key terms;
///   4. copy completeness — every demanded (p, alpha) guards a copy of every
///      original rule with head p (unguarded when alpha is all-free);
///   5. cone closure — every IDB predicate referenced by a kept copy
///      (positive, negated, or aggregate-inner) is demanded; negated ones
///      are demanded all-free (their cone is fully evaluated);
///   6. aggregate policy — magic rules that demand an aggregate-inner atom
///      bind only constants and grouping variables, keeping each demanded
///      group's multiset complete (the monotone-aggregation soundness
///      condition).
/// Together with the admissibility/monotonicity re-check of the rewritten
/// program and the dynamic differential gate, this is the evidence that the
/// demanded slice of the rewritten least model equals the original's.
Status CertifyRewrite(const datalog::Program& original,
                      const DemandRewrite& rewrite);

}  // namespace demand
}  // namespace analysis
}  // namespace mad

#endif  // MAD_ANALYSIS_DEMAND_DEMAND_H_
