#include "analysis/dependency_graph.h"

#include <algorithm>
#include <cassert>
#include <functional>

#include "util/string_util.h"

namespace mad {
namespace analysis {

using datalog::Subgoal;

bool Component::ContainsPredicate(const PredicateInfo* p) const {
  return std::find(predicates.begin(), predicates.end(), p) !=
         predicates.end();
}

DependencyGraph::DependencyGraph(const Program& program) : program_(&program) {
  const auto& rules = program.rules();
  for (int ri = 0; ri < static_cast<int>(rules.size()); ++ri) {
    const Rule& rule = rules[ri];
    const PredicateInfo* head = rule.head.pred;
    nodes_.insert(head);
    for (const Subgoal& sg : rule.body) {
      switch (sg.kind) {
        case Subgoal::Kind::kAtom:
          AddEdge(sg.atom.pred, head, EdgeKind::kPositive, ri);
          break;
        case Subgoal::Kind::kNegatedAtom:
          AddEdge(sg.atom.pred, head, EdgeKind::kNegative, ri);
          break;
        case Subgoal::Kind::kAggregate:
          for (const datalog::Atom& a : sg.aggregate.atoms) {
            AddEdge(a.pred, head, EdgeKind::kAggregate, ri);
          }
          break;
        case Subgoal::Kind::kBuiltin:
          break;
      }
    }
  }
  // Facts and declared-but-unused predicates still get nodes so ComponentOf
  // is total over the program.
  for (const auto& p : program.predicates()) nodes_.insert(p.get());
  ComputeSccs();
}

void DependencyGraph::AddEdge(const PredicateInfo* from,
                              const PredicateInfo* to, EdgeKind kind,
                              int rule_index) {
  nodes_.insert(from);
  nodes_.insert(to);
  edges_.push_back({from, to, kind, rule_index});
}

void DependencyGraph::ComputeSccs() {
  // Tarjan's algorithm (iterative-friendly sizes here, recursion is fine).
  std::map<const PredicateInfo*, std::vector<const PredicateInfo*>> succ;
  for (const DepEdge& e : edges_) succ[e.from].push_back(e.to);

  std::map<const PredicateInfo*, int> index, lowlink;
  std::vector<const PredicateInfo*> stack;
  std::set<const PredicateInfo*> on_stack;
  int next_index = 0;
  std::vector<std::vector<const PredicateInfo*>> sccs;

  std::function<void(const PredicateInfo*)> strongconnect =
      [&](const PredicateInfo* v) {
        index[v] = lowlink[v] = next_index++;
        stack.push_back(v);
        on_stack.insert(v);
        auto it = succ.find(v);
        if (it != succ.end()) {
          for (const PredicateInfo* w : it->second) {
            if (!index.count(w)) {
              strongconnect(w);
              lowlink[v] = std::min(lowlink[v], lowlink[w]);
            } else if (on_stack.count(w)) {
              lowlink[v] = std::min(lowlink[v], index[w]);
            }
          }
        }
        if (lowlink[v] == index[v]) {
          std::vector<const PredicateInfo*> scc;
          while (true) {
            const PredicateInfo* w = stack.back();
            stack.pop_back();
            on_stack.erase(w);
            scc.push_back(w);
            if (w == v) break;
          }
          sccs.push_back(std::move(scc));
        }
      };

  for (const PredicateInfo* v : nodes_) {
    if (!index.count(v)) strongconnect(v);
  }

  // With edges directed body -> head, Tarjan completes head components
  // before the components they read from, i.e. emission is top-down.
  // Reverse to obtain the bottom-up (LDB-before-CDB) order of Section 6.3.
  std::reverse(sccs.begin(), sccs.end());
  components_.resize(sccs.size());
  for (size_t ci = 0; ci < sccs.size(); ++ci) {
    Component& c = components_[ci];
    c.index = static_cast<int>(ci);
    c.predicates = std::move(sccs[ci]);
    std::sort(c.predicates.begin(), c.predicates.end(),
              [](const PredicateInfo* a, const PredicateInfo* b) {
                return a->id < b->id;
              });
    for (const PredicateInfo* p : c.predicates) component_of_[p] = c.index;
  }

  const auto& rules = program_->rules();
  for (int ri = 0; ri < static_cast<int>(rules.size()); ++ri) {
    components_[component_of_[rules[ri].head.pred]].rule_indices.push_back(ri);
  }
  for (const DepEdge& e : edges_) {
    int cf = component_of_[e.from];
    int ct = component_of_[e.to];
    if (cf != ct) continue;
    Component& c = components_[cf];
    c.recursive = true;
    if (e.kind == EdgeKind::kAggregate) c.recursive_aggregation = true;
    if (e.kind == EdgeKind::kNegative) c.recursive_negation = true;
  }

  // Condensation depths. Bottom-up order guarantees every cross-component
  // edge points from a smaller to a larger index, so relaxing targets in
  // index order sees only finalized predecessor depths.
  std::map<int, std::vector<int>> preds_of;
  for (const DepEdge& e : edges_) {
    int cf = component_of_[e.from];
    int ct = component_of_[e.to];
    if (cf == ct) continue;
    assert(cf < ct);
    preds_of[ct].push_back(cf);
  }
  for (Component& c : components_) {
    auto it = preds_of.find(c.index);
    if (it == preds_of.end()) continue;
    for (int cf : it->second) {
      c.depth = std::max(c.depth, components_[cf].depth + 1);
    }
  }
}

int DependencyGraph::ComponentOf(const PredicateInfo* pred) const {
  auto it = component_of_.find(pred);
  assert(it != component_of_.end());
  return it->second;
}

bool DependencyGraph::IsCdbFor(const Rule& rule,
                               const PredicateInfo* pred) const {
  auto it = component_of_.find(pred);
  if (it == component_of_.end()) return false;
  return it->second == ComponentOf(rule.head.pred);
}

std::string DependencyGraph::ToString() const {
  std::string out;
  for (const Component& c : components_) {
    out += StrPrintf("component %d:", c.index);
    for (const PredicateInfo* p : c.predicates) out += " " + p->name;
    if (c.recursive) out += " [recursive]";
    if (c.recursive_aggregation) out += " [recursive-aggregation]";
    if (c.recursive_negation) out += " [recursive-negation]";
    out += "\n";
  }
  return out;
}

}  // namespace analysis
}  // namespace mad
