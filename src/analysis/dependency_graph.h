#ifndef MAD_ANALYSIS_DEPENDENCY_GRAPH_H_
#define MAD_ANALYSIS_DEPENDENCY_GRAPH_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "datalog/ast.h"

namespace mad {
namespace analysis {

using datalog::PredicateInfo;
using datalog::Program;
using datalog::Rule;

/// How a body predicate feeds a head predicate.
enum class EdgeKind {
  kPositive,   ///< ordinary positive subgoal
  kNegative,   ///< negated subgoal
  kAggregate,  ///< occurrence inside an aggregate subgoal
};

/// One dependency edge body-pred -> head-pred.
struct DepEdge {
  const PredicateInfo* from = nullptr;  ///< body predicate
  const PredicateInfo* to = nullptr;    ///< head predicate
  EdgeKind kind = EdgeKind::kPositive;
  int rule_index = -1;
};

/// A strongly connected component of the predicate dependency graph — the
/// paper's "program component" (Definition 2.2). Components are produced in
/// bottom-up (LDB-before-CDB) topological order, so evaluating them in index
/// order realizes the iterated minimal-model construction of Section 6.3.
struct Component {
  int index = -1;
  /// Predicates in this component (the component's CDB).
  std::vector<const PredicateInfo*> predicates;
  /// Indices into Program::rules() of rules whose head is in the component.
  std::vector<int> rule_indices;
  /// True iff some edge has both endpoints inside the component.
  bool recursive = false;
  /// True iff an *aggregate* edge is internal — recursion through
  /// aggregation, the paper's subject matter.
  bool recursive_aggregation = false;
  /// True iff a *negative* edge is internal — recursion through negation,
  /// outside this paper's monotone semantics (Proposition 6.1 requires
  /// negation only on LDB predicates).
  bool recursive_negation = false;
  /// Longest-path depth in the SCC condensation: 0 for components with no
  /// cross-component predecessor, else 1 + max over predecessors. Two
  /// components with equal depth admit no path between them in either
  /// direction, so their fixpoints are independent — the parallel evaluator
  /// pipelines equal-depth components concurrently.
  int depth = 0;

  bool ContainsPredicate(const PredicateInfo* p) const;
};

/// The predicate dependency graph of a program, its SCC condensation, and
/// per-rule CDB/LDB classification helpers.
class DependencyGraph {
 public:
  /// Builds the graph and runs Tarjan's SCC algorithm.
  explicit DependencyGraph(const Program& program);

  const std::vector<DepEdge>& edges() const { return edges_; }
  /// Components in bottom-up topological order.
  const std::vector<Component>& components() const { return components_; }
  /// Component index of `pred` (predicates that never occur get their own
  /// singleton component).
  int ComponentOf(const PredicateInfo* pred) const;

  /// True iff `pred` is a CDB predicate of the component containing the head
  /// of `rule` — i.e. mutually recursive with the rule's head.
  bool IsCdbFor(const Rule& rule, const PredicateInfo* pred) const;

  /// Renders components and edges for diagnostics.
  std::string ToString() const;

 private:
  void AddEdge(const PredicateInfo* from, const PredicateInfo* to,
               EdgeKind kind, int rule_index);
  void ComputeSccs();

  const Program* program_;
  std::vector<DepEdge> edges_;
  std::vector<Component> components_;
  std::map<const PredicateInfo*, int> component_of_;
  std::set<const PredicateInfo*> nodes_;
};

}  // namespace analysis
}  // namespace mad

#endif  // MAD_ANALYSIS_DEPENDENCY_GRAPH_H_
