// Lint passes MAD025–MAD027: findings of the demand-analysis layer
// (analysis/demand). All three are warnings or notes — never errors — so the
// error ⟺ overall()-reject equivalence of the paper passes is untouched: a
// bailed-out query still has a well-defined answer (full evaluation).

#include <memory>
#include <set>
#include <string>

#include "analysis/demand/demand.h"
#include "analysis/lint/passes.h"
#include "util/string_util.h"

namespace mad {
namespace analysis {
namespace lint {

namespace {

using datalog::Atom;
using datalog::Rule;
using datalog::SourceSpan;

const LintRuleDesc& DemandDesc(const char* code) {
  const LintRuleDesc* d = FindLintRule(code);
  // The registry is static; a miss is a programming error caught in tests.
  return *d;
}

SourceSpan QuerySpan(const LintContext& ctx, const Atom& q) {
  if (q.span.valid()) return q.span;
  (void)ctx;
  return SourceSpan{};
}

// ---------------------------------------------------------------------------
// MAD025: the demand transformation bailed out for a declared query
// ---------------------------------------------------------------------------

class UndemandableQueryPass : public LintPass {
 public:
  const LintRuleDesc& rule() const override { return DemandDesc("MAD025"); }
  void Run(const LintContext& ctx, DiagnosticList* out) const override {
    for (const Atom& q : ctx.program->queries()) {
      bool cost_widened = false;
      demand::DemandPattern pattern =
          demand::PatternForQuery(q, &cost_widened);
      if (pattern.pred == nullptr) continue;
      demand::DemandRewrite rw =
          demand::RewriteForPattern(*ctx.program, *ctx.graph, pattern);
      if (rw.ok) continue;
      out->Add(Make(
          ctx, QuerySpan(ctx, q),
          StrPrintf("query %s is answered by full evaluation: the demand "
                    "transformation for %s bailed out (%s)",
                    q.ToString().c_str(), pattern.ToString().c_str(),
                    rw.bailout_reason.c_str())));
    }
  }
};

// ---------------------------------------------------------------------------
// MAD026: rules outside the demand cone of every declared query
// ---------------------------------------------------------------------------

class DemandUnreachableRulePass : public LintPass {
 public:
  const LintRuleDesc& rule() const override { return DemandDesc("MAD026"); }
  void Run(const LintContext& ctx, DiagnosticList* out) const override {
    if (ctx.program->queries().empty()) return;
    // A rule is demand-unreachable only if *no* declared query's (successful)
    // rewrite keeps a copy of it. Any bailed-out query falls back to full
    // evaluation — which fires every rule — so it suppresses the pass.
    std::set<int> unreachable;
    bool first = true;
    for (const Atom& q : ctx.program->queries()) {
      bool cost_widened = false;
      demand::DemandPattern pattern =
          demand::PatternForQuery(q, &cost_widened);
      if (pattern.pred == nullptr) return;
      demand::DemandRewrite rw =
          demand::RewriteForPattern(*ctx.program, *ctx.graph, pattern);
      if (!rw.ok) return;
      std::set<int> here(rw.unreachable_rules.begin(),
                         rw.unreachable_rules.end());
      if (first) {
        unreachable = std::move(here);
        first = false;
      } else {
        std::set<int> both;
        for (int i : unreachable) {
          if (here.count(i)) both.insert(i);
        }
        unreachable = std::move(both);
      }
    }
    const auto& rules = ctx.program->rules();
    for (int i : unreachable) {
      if (i < 0 || i >= static_cast<int>(rules.size())) continue;
      const Rule& r = rules[i];
      if (r.head.pred == nullptr) continue;
      out->Add(Make(
          ctx, r.span,
          StrPrintf("rule for %s is outside the demand cone of every "
                    "declared query: no point query along the declared "
                    "patterns ever fires it",
                    r.head.pred->name.c_str())));
    }
  }
};

// ---------------------------------------------------------------------------
// MAD027: a query binds a cost column (demand widening + post-filter)
// ---------------------------------------------------------------------------

class CostColumnWideningPass : public LintPass {
 public:
  const LintRuleDesc& rule() const override { return DemandDesc("MAD027"); }
  void Run(const LintContext& ctx, DiagnosticList* out) const override {
    for (const Atom& q : ctx.program->queries()) {
      bool cost_widened = false;
      demand::DemandPattern pattern =
          demand::PatternForQuery(q, &cost_widened);
      if (pattern.pred == nullptr || !cost_widened) continue;
      out->Add(Make(
          ctx, QuerySpan(ctx, q),
          StrPrintf("query %s binds the cost column of %s: demand adornments "
                    "keep lattice columns free (pattern %s), so the slice is "
                    "computed unrestricted there and post-filtered",
                    q.ToString().c_str(), pattern.pred->name.c_str(),
                    pattern.ToString().c_str())));
    }
  }
};

}  // namespace

void AddDemandPasses(PassManager* pm) {
  pm->AddPass(std::make_unique<UndemandableQueryPass>());
  pm->AddPass(std::make_unique<DemandUnreachableRulePass>());
  pm->AddPass(std::make_unique<CostColumnWideningPass>());
}

}  // namespace lint
}  // namespace analysis
}  // namespace mad
