#include "analysis/lint/diagnostic.h"

#include <algorithm>
#include <tuple>

#include "util/string_util.h"

namespace mad {
namespace analysis {
namespace lint {

const char* SeverityName(Severity s) {
  switch (s) {
    case Severity::kError:
      return "error";
    case Severity::kWarning:
      return "warning";
    case Severity::kNote:
      return "note";
  }
  return "?";
}

const std::vector<LintRuleDesc>& AllLintRules() {
  static const std::vector<LintRuleDesc>* rules = new std::vector<LintRuleDesc>{
      {"MAD001", "range-restriction",
       "every variable must be limited (bound by a positive subgoal, a "
       "default-key position, or an equality with limited variables)",
       "Ross & Sagiv Definition 2.5", Severity::kError},
      {"MAD002", "cost-respecting",
       "the head cost variable must be functionally determined by the head "
       "key variables via the body's functional dependencies",
       "Ross & Sagiv Definition 2.7", Severity::kError},
      {"MAD003", "conflict-free",
       "two rules for the same cost predicate may derive different costs for "
       "one key tuple: no containment mapping or integrity constraint rules "
       "the overlap out",
       "Ross & Sagiv Definition 2.10", Severity::kError},
      {"MAD004", "admissibility",
       "the rule violates admissibility (well-typed + well-formed + monotone "
       "built-ins); an error when its component recurses through aggregation "
       "or negation, otherwise a warning",
       "Ross & Sagiv Definition 4.5", Severity::kError},
      {"MAD005", "pseudo-monotonic-no-default",
       "a pseudo-monotonic aggregate ranges over a recursive (CDB) predicate "
       "that is not declared with a default value, so its inner cardinality "
       "can grow during iteration",
       "Ross & Sagiv Section 4.1", Severity::kError},
      {"MAD006", "recursive-negation",
       "a negated subgoal refers to a predicate mutually recursive with the "
       "head; negation must be confined to lower (LDB) predicates",
       "Ross & Sagiv Proposition 6.1", Severity::kError},
      {"MAD007", "termination-unknown",
       "a recursive component carries cost values in a lattice with infinite "
       "ascending chains, so fixpoint iteration may not terminate without "
       "max_iterations/epsilon guards",
       "Ross & Sagiv Section 6.2", Severity::kWarning},
      {"MAD008", "non-prefix-sound",
       "the component is monotonic but uses a non-strictly-monotonic "
       "aggregate over a recursive predicate, so interrupted iterations are "
       "not certifiable partial models",
       "Ross & Sagiv Lemma 4.1", Severity::kNote},
      {"MAD009", "singleton-variable",
       "a named variable occurs exactly once in the rule — likely a typo; "
       "prefix it with '_' if intentional",
       "hygiene", Severity::kWarning},
      {"MAD010", "dead-predicate",
       "a declared predicate never occurs in any rule, fact, or constraint",
       "hygiene", Severity::kNote},
      {"MAD011", "unreachable-rule",
       "a body subgoal refers to a predicate with no facts and no rules, so "
       "the rule can never fire",
       "hygiene", Severity::kWarning},
      {"MAD012", "duplicate-rule",
       "two rules are identical up to variable renaming; the second never "
       "adds derivations",
       "hygiene", Severity::kWarning},
      {"MAD013", "cartesian-product",
       "the body joins relational subgoals that share no variables, forming "
       "an unconstrained cross product",
       "performance", Severity::kWarning},
      {"MAD014", "cost-domain-mismatch",
       "one variable is used as the cost argument of predicates with "
       "different cost lattices, so values mix unrelated orders",
       "Ross & Sagiv Section 2 (cost domains)", Severity::kWarning},
      {"MAD015", "semantically-monotonic",
       "the component is rejected by the syntactic admissibility check "
       "(Definition 4.5) but the abstract interpreter certified its T_P "
       "monotonic: every offending comparison is stable over the interval "
       "fixpoint, so the component evaluates under the certificate",
       "Zaniolo et al. PreM, arXiv:1707.05681", Severity::kNote},
      {"MAD016", "termination-verdict",
       "Section 6.2 termination verdict for a recursive cost-carrying "
       "component (guaranteed or bounded-chains); surfaced so round budgets "
       "can be sized from the report",
       "Ross & Sagiv Section 6.2", Severity::kNote},
      {"MAD017", "unbounded-ascent",
       "abstract interpretation widened a cost predicate to an unbounded "
       "interval and no selective-flow bound applies: derived values can "
       "ascend without limit (e.g. Example 5.1's halfsum)",
       "Ross & Sagiv Example 5.1 / Section 6.2", Severity::kWarning},
      {"MAD018", "uncertified-component",
       "a component that needs the monotone guarantee is neither "
       "syntactically admissible nor semantically certified; evaluation "
       "rejects it",
       "Ross & Sagiv Definition 4.5 + Zaniolo et al. PreM", Severity::kNote},
      {"MAD019", "type-conflict",
       "type inference unified two incompatible column types through "
       "variable dataflow: the same equivalence class carries, e.g., symbol "
       "and numeric evidence",
       "static typing (union-find inference)", Severity::kWarning},
      {"MAD020", "constant-type-mismatch",
       "a literal constant (in a fact or a rule) disagrees with the type "
       "inferred for the column it occupies",
       "static typing (union-find inference)", Severity::kWarning},
      {"MAD021", "statically-empty-rule",
       "a positive body predicate is transitively empty (no fact, default, "
       "or firable rule can ever populate it), so the rule never fires",
       "static planning (emptiness fixpoint)", Severity::kWarning},
      {"MAD022", "cross-join",
       "the planned join order must scan a relation with zero bound key "
       "positions after earlier relational steps — a cross join that "
       "multiplies intermediate results",
       "static planning (SIPS adornment)", Severity::kWarning},
      {"MAD023", "unbound-head-under-modes",
       "mode analysis found a head variable the planned body never binds; "
       "accompanies the range-restriction error with the planner's view",
       "static planning (SIPS adornment)", Severity::kNote},
      {"MAD024", "empty-aggregate-input",
       "an aggregate ranges over a transitively empty predicate: the '=' "
       "form always yields the lattice bottom and the '=r' form never "
       "holds",
       "static planning (emptiness fixpoint)", Severity::kWarning},
      {"MAD025", "undemandable-query",
       "the demand transformation conservatively bailed out for a declared "
       ".query (pattern explosion, unsafe adornment order, or the rewritten "
       "program failing re-certification); the query is answered by full "
       "evaluation",
       "demand analysis (magic sets)", Severity::kWarning},
      {"MAD026", "demand-unreachable-rule",
       "the rule is outside the demand cone of every declared .query: no "
       "point query along the declared patterns ever fires it",
       "demand analysis (magic sets)", Severity::kNote},
      {"MAD027", "free-cost-column-demand-widening",
       "a .query binds a cost column; demand adornments keep lattice cost "
       "columns free (slicing an aggregate's input multiset is unsound), so "
       "the slice is computed with the column free and post-filtered",
       "demand analysis (lattice-column policy)", Severity::kWarning},
  };
  return *rules;
}

const LintRuleDesc* FindLintRule(const std::string& code_or_id) {
  for (const LintRuleDesc& r : AllLintRules()) {
    if (code_or_id == r.code || code_or_id == r.FullId()) return &r;
  }
  return nullptr;
}

std::string Diagnostic::ToString() const {
  std::string out = file.empty() ? "<input>" : file;
  if (span.valid()) out += ":" + span.ToString();
  out += ": ";
  out += SeverityName(severity);
  out += ": " + message + " [" + rule_id + "]";
  for (const FixIt& f : fixits) {
    out += "\n    fix";
    if (f.span.valid()) out += " at " + f.span.ToString();
    out += ": " + f.description;
    if (!f.replacement.empty()) out += " -> `" + f.replacement + "`";
  }
  return out;
}

void DiagnosticList::Extend(DiagnosticList other) {
  for (Diagnostic& d : other.diagnostics_) {
    diagnostics_.push_back(std::move(d));
  }
}

int DiagnosticList::CountSeverity(Severity s) const {
  int n = 0;
  for (const Diagnostic& d : diagnostics_) {
    if (d.severity == s) ++n;
  }
  return n;
}

void DiagnosticList::Sort() {
  std::stable_sort(diagnostics_.begin(), diagnostics_.end(),
                   [](const Diagnostic& a, const Diagnostic& b) {
                     // Unlocated diagnostics (line 0 is "unknown") keep their
                     // emission order after located ones in the same file.
                     int al = a.span.valid() ? a.span.line : 1 << 30;
                     int bl = b.span.valid() ? b.span.line : 1 << 30;
                     return std::tie(a.file, al, a.span.col, a.rule_id) <
                            std::tie(b.file, bl, b.span.col, b.rule_id);
                   });
}

std::string DiagnosticList::RenderText() const {
  if (diagnostics_.empty()) return "";
  std::string out;
  for (const Diagnostic& d : diagnostics_) {
    out += d.ToString() + "\n";
  }
  out += StrPrintf("%d error(s), %d warning(s), %d note(s)\n",
                   CountSeverity(Severity::kError),
                   CountSeverity(Severity::kWarning),
                   CountSeverity(Severity::kNote));
  return out;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrPrintf("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

std::string SpanJson(const datalog::SourceSpan& s) {
  return StrPrintf("{\"line\": %d, \"col\": %d, \"endLine\": %d, \"endCol\": %d}",
                   s.line, s.col, s.end_line, s.end_col);
}

std::string SarifRegion(const datalog::SourceSpan& s) {
  // SARIF requires columns >= 1; fall back to the start of the line.
  int start_col = s.col > 0 ? s.col : 1;
  int end_line = s.end_line > 0 ? s.end_line : s.line;
  int end_col = s.end_col > 0 ? s.end_col : start_col;
  return StrPrintf(
      "{\"startLine\": %d, \"startColumn\": %d, \"endLine\": %d, "
      "\"endColumn\": %d}",
      s.line, start_col, end_line, end_col);
}

std::string ArtifactUri(const std::string& file) {
  return JsonEscape(file.empty() ? "<input>" : file);
}

}  // namespace

std::string DiagnosticList::RenderJson() const {
  std::string out = "{\n  \"version\": 1,\n  \"diagnostics\": [";
  bool first = true;
  for (const Diagnostic& d : diagnostics_) {
    if (!first) out += ",";
    first = false;
    out += StrPrintf(
        "\n    {\"ruleId\": \"%s\", \"severity\": \"%s\", \"message\": "
        "\"%s\", \"file\": \"%s\", \"span\": %s",
        JsonEscape(d.rule_id).c_str(), SeverityName(d.severity),
        JsonEscape(d.message).c_str(), JsonEscape(d.file).c_str(),
        SpanJson(d.span).c_str());
    if (!d.fixits.empty()) {
      out += ", \"fixits\": [";
      bool ffirst = true;
      for (const FixIt& f : d.fixits) {
        if (!ffirst) out += ", ";
        ffirst = false;
        out += StrPrintf(
            "{\"span\": %s, \"replacement\": \"%s\", \"description\": "
            "\"%s\"}",
            SpanJson(f.span).c_str(), JsonEscape(f.replacement).c_str(),
            JsonEscape(f.description).c_str());
      }
      out += "]";
    }
    out += "}";
  }
  out += StrPrintf(
      "\n  ],\n  \"summary\": {\"errors\": %d, \"warnings\": %d, "
      "\"notes\": %d}\n}\n",
      CountSeverity(Severity::kError), CountSeverity(Severity::kWarning),
      CountSeverity(Severity::kNote));
  return out;
}

std::string DiagnosticList::RenderSarif() const {
  const std::vector<LintRuleDesc>& rules = AllLintRules();
  std::string out =
      "{\n"
      "  \"$schema\": "
      "\"https://json.schemastore.org/sarif-2.1.0.json\",\n"
      "  \"version\": \"2.1.0\",\n"
      "  \"runs\": [\n"
      "    {\n"
      "      \"tool\": {\n"
      "        \"driver\": {\n"
      "          \"name\": \"madlint\",\n"
      "          \"rules\": [";
  for (size_t i = 0; i < rules.size(); ++i) {
    if (i > 0) out += ",";
    out += StrPrintf(
        "\n            {\"id\": \"%s\", \"name\": \"%s\", "
        "\"shortDescription\": {\"text\": \"%s\"}, "
        "\"help\": {\"text\": \"%s\"}, "
        "\"defaultConfiguration\": {\"level\": \"%s\"}}",
        JsonEscape(rules[i].FullId()).c_str(), JsonEscape(rules[i].slug).c_str(),
        JsonEscape(rules[i].summary).c_str(),
        JsonEscape(rules[i].paper_ref).c_str(),
        SeverityName(rules[i].default_severity));
  }
  out +=
      "\n          ]\n"
      "        }\n"
      "      },\n"
      "      \"results\": [";
  bool first = true;
  for (const Diagnostic& d : diagnostics_) {
    if (!first) out += ",";
    first = false;
    int rule_index = -1;
    for (size_t i = 0; i < rules.size(); ++i) {
      if (d.rule_id == rules[i].FullId() || d.rule_id == rules[i].code) {
        rule_index = static_cast<int>(i);
        break;
      }
    }
    out += StrPrintf(
        "\n        {\"ruleId\": \"%s\", \"ruleIndex\": %d, \"level\": "
        "\"%s\", \"message\": {\"text\": \"%s\"}, \"locations\": "
        "[{\"physicalLocation\": {\"artifactLocation\": {\"uri\": \"%s\"}",
        JsonEscape(d.rule_id).c_str(), rule_index, SeverityName(d.severity),
        JsonEscape(d.message).c_str(), ArtifactUri(d.file).c_str());
    if (d.span.valid()) {
      out += ", \"region\": " + SarifRegion(d.span);
    }
    out += "}}]";
    if (!d.fixits.empty()) {
      out += ", \"fixes\": [";
      bool ffirst = true;
      for (const FixIt& f : d.fixits) {
        if (!ffirst) out += ", ";
        ffirst = false;
        out += StrPrintf(
            "{\"description\": {\"text\": \"%s\"}, \"artifactChanges\": "
            "[{\"artifactLocation\": {\"uri\": \"%s\"}, \"replacements\": "
            "[{\"deletedRegion\": %s, \"insertedContent\": {\"text\": "
            "\"%s\"}}]}]}",
            JsonEscape(f.description).c_str(), ArtifactUri(d.file).c_str(),
            SarifRegion(f.span).c_str(), JsonEscape(f.replacement).c_str());
      }
      out += "]";
    }
    out += "}";
  }
  out +=
      "\n      ]\n"
      "    }\n"
      "  ]\n"
      "}\n";
  return out;
}

}  // namespace lint
}  // namespace analysis
}  // namespace mad
