#ifndef MAD_ANALYSIS_LINT_DIAGNOSTIC_H_
#define MAD_ANALYSIS_LINT_DIAGNOSTIC_H_

#include <string>
#include <vector>

#include "datalog/source_span.h"

namespace mad {
namespace analysis {
namespace lint {

/// How serious a finding is. Errors reject the program under the paper's
/// semantics (ProgramCheckResult::overall() fails iff an error-severity
/// diagnostic exists); warnings and notes never block evaluation.
enum class Severity {
  kError,
  kWarning,
  kNote,
};

/// "error" / "warning" / "note" — also the SARIF 2.1.0 `level` values.
const char* SeverityName(Severity s);

/// A suggested textual edit attached to a diagnostic. `replacement` may be
/// empty when the fix is a deletion; `description` explains the intent.
struct FixIt {
  datalog::SourceSpan span;
  std::string replacement;
  std::string description;
};

/// One structured finding: a stable rule ID, a severity, a message, and the
/// most specific source region the analysis could attribute it to.
struct Diagnostic {
  std::string rule_id;  ///< full stable ID, e.g. "MAD001-range-restriction"
  Severity severity = Severity::kWarning;
  std::string message;
  std::string file;  ///< source path; empty for programmatic input
  datalog::SourceSpan span;
  std::vector<FixIt> fixits;

  /// `file:12:5: error: message [MAD001-range-restriction]`.
  std::string ToString() const;
};

/// Static description of one lint rule, for --explain output and the SARIF
/// tool.driver.rules table.
struct LintRuleDesc {
  const char* code;       ///< "MAD001"
  const char* slug;       ///< "range-restriction"
  const char* summary;    ///< one-line description
  const char* paper_ref;  ///< e.g. "Ross & Sagiv Definition 2.5"
  Severity default_severity = Severity::kWarning;

  /// "MAD001-range-restriction" — what Diagnostic::rule_id carries.
  std::string FullId() const { return std::string(code) + "-" + slug; }
};

/// The complete rule registry, ordered by code. Indices into this vector are
/// the SARIF `ruleIndex` values.
const std::vector<LintRuleDesc>& AllLintRules();

/// Looks a rule up by code ("MAD001") or full ID ("MAD001-range-restriction");
/// nullptr if unknown.
const LintRuleDesc* FindLintRule(const std::string& code_or_id);

/// An ordered collection of diagnostics with the three renderers every
/// surface (madlint, mondl --check, Engine::Run) shares.
class DiagnosticList {
 public:
  void Add(Diagnostic d) { diagnostics_.push_back(std::move(d)); }
  void Extend(DiagnosticList other);

  const std::vector<Diagnostic>& diagnostics() const { return diagnostics_; }
  bool empty() const { return diagnostics_.empty(); }
  size_t size() const { return diagnostics_.size(); }

  int CountSeverity(Severity s) const;
  bool HasErrors() const { return CountSeverity(Severity::kError) > 0; }

  /// Stable-sorts by (file, line, col, rule ID); programmatic diagnostics
  /// (no span) sort after located ones in the same file.
  void Sort();

  /// One line per diagnostic plus a trailing summary line
  /// (`N error(s), M warning(s), K note(s)`); empty string when empty.
  std::string RenderText() const;
  /// Machine-readable report: {"version", "diagnostics": [...], "summary"}.
  std::string RenderJson() const;
  /// SARIF 2.1.0 log with the full rule registry in tool.driver.rules.
  std::string RenderSarif() const;

 private:
  std::vector<Diagnostic> diagnostics_;
};

/// Escapes `s` for embedding inside a JSON string literal (no quotes added).
std::string JsonEscape(const std::string& s);

}  // namespace lint
}  // namespace analysis
}  // namespace mad

#endif  // MAD_ANALYSIS_LINT_DIAGNOSTIC_H_
