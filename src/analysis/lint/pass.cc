#include "analysis/lint/pass.h"

namespace mad {
namespace analysis {
namespace lint {

Diagnostic LintPass::Make(const LintContext& ctx, datalog::SourceSpan span,
                          std::string message) const {
  Diagnostic d;
  d.rule_id = rule().FullId();
  d.severity = rule().default_severity;
  d.message = std::move(message);
  d.file = ctx.file;
  d.span = span;
  return d;
}

void PassManager::AddPass(std::unique_ptr<LintPass> pass) {
  passes_.push_back(std::move(pass));
}

DiagnosticList PassManager::Run(const LintContext& ctx) const {
  DiagnosticList out;
  for (const std::unique_ptr<LintPass>& pass : passes_) {
    pass->Run(ctx, &out);
  }
  out.Sort();
  return out;
}

}  // namespace lint
}  // namespace analysis
}  // namespace mad
