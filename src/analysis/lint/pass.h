#ifndef MAD_ANALYSIS_LINT_PASS_H_
#define MAD_ANALYSIS_LINT_PASS_H_

#include <memory>
#include <string>
#include <vector>

#include "analysis/absint/certificate.h"
#include "analysis/dependency_graph.h"
#include "analysis/lint/diagnostic.h"
#include "datalog/ast.h"

namespace mad {
namespace analysis {
namespace lint {

/// Everything a lint pass may look at. The program and graph outlive the
/// pass run; `file` is stamped into every emitted diagnostic.
struct LintContext {
  const datalog::Program* program = nullptr;
  const DependencyGraph* graph = nullptr;
  std::string file;  ///< source path for diagnostics; empty for programmatic
  /// Abstract-interpretation certificates for the program, when the caller
  /// has already computed them (checker.cc, madlint). Passes that need
  /// certificates compute their own when this is null.
  const absint::CertificateReport* certificates = nullptr;
};

/// One analysis rule. Passes are stateless between runs: Run() inspects the
/// context and appends zero or more diagnostics.
class LintPass {
 public:
  virtual ~LintPass() = default;
  /// The registry entry this pass implements (supplies the rule ID).
  virtual const LintRuleDesc& rule() const = 0;
  virtual void Run(const LintContext& ctx, DiagnosticList* out) const = 0;

 protected:
  /// Builds a diagnostic pre-filled with this pass's rule ID, its default
  /// severity, and the context's file name.
  Diagnostic Make(const LintContext& ctx, datalog::SourceSpan span,
                  std::string message) const;
};

/// Runs a sequence of passes and collects their diagnostics, sorted by
/// source position. Construct via MakePaperPassManager() /
/// MakeDefaultPassManager() in passes.h, or assemble a custom set.
class PassManager {
 public:
  PassManager() = default;
  PassManager(PassManager&&) = default;
  PassManager& operator=(PassManager&&) = default;

  void AddPass(std::unique_ptr<LintPass> pass);
  const std::vector<std::unique_ptr<LintPass>>& passes() const {
    return passes_;
  }

  /// Runs every pass over `ctx` and returns all findings in source order.
  /// Unlike the legacy Check* entry points this never stops at the first
  /// violation.
  DiagnosticList Run(const LintContext& ctx) const;

 private:
  std::vector<std::unique_ptr<LintPass>> passes_;
};

}  // namespace lint
}  // namespace analysis
}  // namespace mad

#endif  // MAD_ANALYSIS_LINT_PASS_H_
