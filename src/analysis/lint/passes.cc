#include "analysis/lint/passes.h"

#include <map>
#include <memory>
#include <set>
#include <vector>

#include "analysis/absint/engine.h"
#include "analysis/conflict_free.h"
#include "analysis/cost_respecting.h"
#include "analysis/range_restriction.h"
#include "analysis/termination.h"
#include "lattice/aggregate.h"
#include "util/string_util.h"

namespace mad {
namespace analysis {
namespace lint {

namespace {

using datalog::Atom;
using datalog::Expr;
using datalog::Program;
using datalog::Rule;
using datalog::SourceSpan;
using datalog::Subgoal;
using datalog::Term;

const LintRuleDesc& Desc(const char* code) {
  const LintRuleDesc* d = FindLintRule(code);
  // The registry is static; a miss is a programming error caught in tests.
  return *d;
}

/// Certificates for the context: the caller's (checker.cc / madlint compute
/// them once per file), or a locally computed report for standalone runs.
const absint::CertificateReport* EnsureCertificates(
    const LintContext& ctx, absint::CertificateReport* local) {
  if (ctx.certificates != nullptr) return ctx.certificates;
  *local = absint::CertifyProgram(*ctx.program, *ctx.graph);
  return local;
}

/// Span of a component's first rule (diagnostics without a finer anchor).
SourceSpan ComponentSpan(const LintContext& ctx, const Component& comp) {
  if (comp.rule_indices.empty()) return SourceSpan{};
  return ctx.program->rules()[comp.rule_indices.front()].span;
}

std::string ComponentNames(const Component& comp) {
  std::vector<std::string> names;
  for (const datalog::PredicateInfo* p : comp.predicates) {
    names.push_back(p->name);
  }
  return Join(names, ", ");
}

bool ComponentHasCost(const Component& comp) {
  for (const datalog::PredicateInfo* p : comp.predicates) {
    if (p->has_cost) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// MAD001 / MAD002: per-rule collectors
// ---------------------------------------------------------------------------

class RangeRestrictionPass : public LintPass {
 public:
  const LintRuleDesc& rule() const override { return Desc("MAD001"); }
  void Run(const LintContext& ctx, DiagnosticList* out) const override {
    for (const Rule& r : ctx.program->rules()) {
      for (const CheckViolation& v : CollectRangeRestrictionViolations(r)) {
        out->Add(Make(ctx, v.span, v.message));
      }
    }
  }
};

class CostRespectingPass : public LintPass {
 public:
  const LintRuleDesc& rule() const override { return Desc("MAD002"); }
  void Run(const LintContext& ctx, DiagnosticList* out) const override {
    for (const Rule& r : ctx.program->rules()) {
      for (const CheckViolation& v : CollectCostRespectingViolations(r)) {
        out->Add(Make(ctx, v.span, v.message));
      }
    }
  }
};

// ---------------------------------------------------------------------------
// MAD003: conflicting rule pairs
// ---------------------------------------------------------------------------

class ConflictFreePass : public LintPass {
 public:
  const LintRuleDesc& rule() const override { return Desc("MAD003"); }
  void Run(const LintContext& ctx, DiagnosticList* out) const override {
    for (const RuleConflict& c : CollectRuleConflicts(*ctx.program)) {
      out->Add(Make(ctx, c.span_1, c.message));
    }
  }
};

// ---------------------------------------------------------------------------
// MAD004 / MAD005 / MAD006: admissibility by aspect
// ---------------------------------------------------------------------------

bool ComponentRecursesThroughAggregationOrNegation(const Rule& rule,
                                                   const DependencyGraph& g) {
  int idx = g.ComponentOf(rule.head.pred);
  if (idx < 0 || idx >= static_cast<int>(g.components().size())) return false;
  const Component& c = g.components()[idx];
  return c.recursive_aggregation || c.recursive_negation;
}

class AdmissibilityPass : public LintPass {
 public:
  const LintRuleDesc& rule() const override { return Desc("MAD004"); }
  void Run(const LintContext& ctx, DiagnosticList* out) const override {
    absint::CertificateReport local;
    const absint::CertificateReport* certs = EnsureCertificates(ctx, &local);
    for (const Rule& r : ctx.program->rules()) {
      RuleAdmissibility a = CheckRuleAdmissible(r, *ctx.graph);
      for (const AdmissibilityViolation& v : a.violations) {
        out->Add(AdmissibilityDiagnostic(v, r, *ctx.graph, ctx.file, certs));
      }
    }
  }
};

// ---------------------------------------------------------------------------
// MAD007: termination analysis
// ---------------------------------------------------------------------------

class TerminationPass : public LintPass {
 public:
  const LintRuleDesc& rule() const override { return Desc("MAD007"); }
  void Run(const LintContext& ctx, DiagnosticList* out) const override {
    absint::CertificateReport local;
    const absint::CertificateReport* certs = EnsureCertificates(ctx, &local);
    TerminationReport report =
        AnalyzeTermination(*ctx.program, *ctx.graph, certs);
    for (const ComponentTermination& ct : report.components) {
      if (ct.verdict != TerminationVerdict::kUnknown) continue;
      if (ct.component_index < 0 ||
          ct.component_index >= static_cast<int>(ctx.graph->components().size()))
        continue;
      const Component& comp = ctx.graph->components()[ct.component_index];
      out->Add(Make(ctx, ComponentSpan(ctx, comp),
                    StrPrintf("component %d (%s) may not terminate: %s",
                              comp.index, ComponentNames(comp).c_str(),
                              ct.reason.c_str())));
    }
  }
};

// ---------------------------------------------------------------------------
// MAD015 / MAD016 / MAD017 / MAD018: semantic certification layer
// ---------------------------------------------------------------------------

class SemanticCertificatePass : public LintPass {
 public:
  const LintRuleDesc& rule() const override { return Desc("MAD015"); }
  void Run(const LintContext& ctx, DiagnosticList* out) const override {
    absint::CertificateReport local;
    const absint::CertificateReport* certs = EnsureCertificates(ctx, &local);
    for (const Component& comp : ctx.graph->components()) {
      const absint::ComponentCertificate* cert =
          certs->ForComponent(comp.index);
      if (cert == nullptr ||
          cert->kind != absint::CertificateKind::kSemanticallyMonotonic) {
        continue;
      }
      SourceSpan span =
          cert->span.valid() ? cert->span : ComponentSpan(ctx, comp);
      out->Add(Make(ctx, span,
                    StrPrintf("component %d (%s) is rejected by the "
                              "syntactic Definition 4.5 check but certified "
                              "semantically monotonic: %s",
                              comp.index, ComponentNames(comp).c_str(),
                              cert->reason.c_str())));
    }
  }
};

/// Satellite bugfix for the dropped TerminationReport: the report was
/// computed by CheckProgram but never rendered by madlint or mondl --check.
/// One note per recursive cost-carrying component surfaces the verdict
/// (kUnknown components already get a MAD007 warning instead).
class TerminationVerdictPass : public LintPass {
 public:
  const LintRuleDesc& rule() const override { return Desc("MAD016"); }
  void Run(const LintContext& ctx, DiagnosticList* out) const override {
    absint::CertificateReport local;
    const absint::CertificateReport* certs = EnsureCertificates(ctx, &local);
    TerminationReport report =
        AnalyzeTermination(*ctx.program, *ctx.graph, certs);
    for (const ComponentTermination& ct : report.components) {
      if (ct.verdict == TerminationVerdict::kUnknown) continue;
      if (ct.component_index < 0 ||
          ct.component_index >= static_cast<int>(ctx.graph->components().size()))
        continue;
      const Component& comp = ctx.graph->components()[ct.component_index];
      if (!comp.recursive || !ComponentHasCost(comp)) continue;
      out->Add(Make(ctx, ComponentSpan(ctx, comp),
                    StrPrintf("component %d (%s): termination %s — %s",
                              comp.index, ComponentNames(comp).c_str(),
                              TerminationVerdictName(ct.verdict),
                              ct.reason.c_str())));
    }
  }
};

class UnboundedAscentPass : public LintPass {
 public:
  const LintRuleDesc& rule() const override { return Desc("MAD017"); }
  void Run(const LintContext& ctx, DiagnosticList* out) const override {
    absint::CertificateReport local;
    const absint::CertificateReport* certs = EnsureCertificates(ctx, &local);
    for (const Component& comp : ctx.graph->components()) {
      if (!comp.recursive) continue;
      const absint::ComponentCertificate* cert =
          certs->ForComponent(comp.index);
      if (cert == nullptr || !cert->widened || cert->chains_bounded) continue;
      // Anchor on the first rule whose head predicate was widened — the
      // generative flow that defeats every static bound.
      SourceSpan span = ComponentSpan(ctx, comp);
      for (int ri : comp.rule_indices) {
        const Rule& r = ctx.program->rules()[ri];
        for (const std::string& name : cert->widened_predicates) {
          if (r.head.pred != nullptr && r.head.pred->name == name) {
            span = r.span;
            break;
          }
        }
      }
      out->Add(Make(ctx, span,
                    StrPrintf("component %d (%s): abstract interpretation "
                              "widened %s to an unbounded interval and no "
                              "selective-flow bound applies; cost values can "
                              "ascend without limit",
                              comp.index, ComponentNames(comp).c_str(),
                              Join(cert->widened_predicates, ", ").c_str())));
    }
  }
};

class UncertifiedComponentPass : public LintPass {
 public:
  const LintRuleDesc& rule() const override { return Desc("MAD018"); }
  void Run(const LintContext& ctx, DiagnosticList* out) const override {
    absint::CertificateReport local;
    const absint::CertificateReport* certs = EnsureCertificates(ctx, &local);
    for (const Component& comp : ctx.graph->components()) {
      // Only components that actually need the monotone guarantee.
      if (!comp.recursive_aggregation && !comp.recursive_negation) continue;
      const absint::ComponentCertificate* cert =
          certs->ForComponent(comp.index);
      if (cert == nullptr ||
          cert->kind != absint::CertificateKind::kUncertified) {
        continue;
      }
      SourceSpan span =
          cert->span.valid() ? cert->span : ComponentSpan(ctx, comp);
      out->Add(Make(ctx, span,
                    StrPrintf("component %d (%s) is neither syntactically "
                              "admissible nor semantically certified: %s",
                              comp.index, ComponentNames(comp).c_str(),
                              cert->reason.c_str())));
    }
  }
};

// ---------------------------------------------------------------------------
// MAD008: monotonic but not prefix-sound
// ---------------------------------------------------------------------------

/// The aggregate subgoal (if any) that makes `rule` rely on Lemma 4.1's
/// fixed-cardinality argument: a non-strictly-monotonic aggregate ranging
/// over a predicate recursive with the rule's head.
const datalog::AggregateSubgoal* NonMonotonicCdbAggregate(
    const Rule& rule, const DependencyGraph& graph) {
  for (const Subgoal& sg : rule.body) {
    if (sg.kind != Subgoal::Kind::kAggregate) continue;
    if (sg.aggregate.function == nullptr) continue;
    for (const Atom& a : sg.aggregate.atoms) {
      if (graph.IsCdbFor(rule, a.pred) &&
          sg.aggregate.function->monotonicity() !=
              lattice::Monotonicity::kMonotonic) {
        return &sg.aggregate;
      }
    }
  }
  return nullptr;
}

class PrefixSoundnessPass : public LintPass {
 public:
  const LintRuleDesc& rule() const override { return Desc("MAD008"); }
  void Run(const LintContext& ctx, DiagnosticList* out) const override {
    for (const Component& comp : ctx.graph->components()) {
      if (comp.recursive_negation) continue;  // not even monotonic
      bool monotonic = true;
      for (int ri : comp.rule_indices) {
        if (!CheckRuleAdmissible(ctx.program->rules()[ri], *ctx.graph)
                 .admissible()) {
          monotonic = false;
          break;
        }
      }
      if (!monotonic) continue;
      for (int ri : comp.rule_indices) {
        const Rule& r = ctx.program->rules()[ri];
        const datalog::AggregateSubgoal* agg =
            NonMonotonicCdbAggregate(r, *ctx.graph);
        if (agg == nullptr) continue;
        out->Add(Make(
            ctx, agg->span.valid() ? agg->span : r.span,
            StrPrintf("aggregate '%s' over a recursive predicate is not "
                      "strictly monotonic: interrupted iterations of this "
                      "component are not certifiable partial models",
                      agg->function_name.c_str())));
        break;  // one note per component
      }
    }
  }
};

// ---------------------------------------------------------------------------
// MAD009: singleton variables
// ---------------------------------------------------------------------------

struct VarUse {
  int count = 0;
  SourceSpan first_span;
};

void CountExprVars(const Expr& e, std::map<std::string, VarUse>* uses) {
  switch (e.kind) {
    case Expr::Kind::kVar:
      (*uses)[e.var].count++;
      break;
    case Expr::Kind::kConst:
      break;
    default:
      if (e.lhs) CountExprVars(*e.lhs, uses);
      if (e.rhs) CountExprVars(*e.rhs, uses);
  }
}

void CountTermVar(const Term& t, std::map<std::string, VarUse>* uses) {
  if (!t.is_var()) return;
  VarUse& u = (*uses)[t.var];
  u.count++;
  if (!u.first_span.valid()) u.first_span = t.span;
}

class SingletonVariablePass : public LintPass {
 public:
  const LintRuleDesc& rule() const override { return Desc("MAD009"); }
  void Run(const LintContext& ctx, DiagnosticList* out) const override {
    for (const Rule& r : ctx.program->rules()) {
      std::map<std::string, VarUse> uses;
      std::set<std::string> aggregate_local;
      for (const Term& t : r.head.args) CountTermVar(t, &uses);
      for (const Subgoal& sg : r.body) {
        switch (sg.kind) {
          case Subgoal::Kind::kAtom:
          case Subgoal::Kind::kNegatedAtom:
            for (const Term& t : sg.atom.args) CountTermVar(t, &uses);
            break;
          case Subgoal::Kind::kBuiltin:
            if (sg.builtin.lhs) CountExprVars(*sg.builtin.lhs, &uses);
            if (sg.builtin.rhs) CountExprVars(*sg.builtin.rhs, &uses);
            break;
          case Subgoal::Kind::kAggregate:
            CountTermVar(sg.aggregate.result, &uses);
            if (!sg.aggregate.multiset_var.empty()) {
              uses[sg.aggregate.multiset_var].count++;
            }
            for (const Atom& a : sg.aggregate.atoms) {
              for (const Term& t : a.args) CountTermVar(t, &uses);
            }
            aggregate_local.insert(sg.aggregate.local_vars.begin(),
                                   sg.aggregate.local_vars.end());
            break;
        }
      }
      for (const auto& [name, use] : uses) {
        if (use.count != 1) continue;
        if (!name.empty() && name[0] == '_') continue;  // marked intentional
        if (aggregate_local.count(name)) continue;  // scoped to the aggregate
        Diagnostic d =
            Make(ctx, use.first_span.valid() ? use.first_span : r.span,
                 StrPrintf("variable %s occurs only once in this rule",
                           name.c_str()));
        if (use.first_span.valid()) {
          d.fixits.push_back({use.first_span, "_" + name,
                              "prefix with '_' to mark the variable as "
                              "intentionally unused"});
        }
        out->Add(std::move(d));
      }
    }
  }
};

// ---------------------------------------------------------------------------
// MAD010 / MAD011: dead predicates and unreachable rules
// ---------------------------------------------------------------------------

void InsertAtomPred(const Atom& a, std::set<const datalog::PredicateInfo*>* s) {
  if (a.pred != nullptr) s->insert(a.pred);
}

std::set<const datalog::PredicateInfo*> OccurringPredicates(const Program& p) {
  std::set<const datalog::PredicateInfo*> used;
  for (const Rule& r : p.rules()) {
    InsertAtomPred(r.head, &used);
    for (const Subgoal& sg : r.body) {
      if (sg.kind == Subgoal::Kind::kAtom ||
          sg.kind == Subgoal::Kind::kNegatedAtom) {
        InsertAtomPred(sg.atom, &used);
      } else if (sg.kind == Subgoal::Kind::kAggregate) {
        for (const Atom& a : sg.aggregate.atoms) InsertAtomPred(a, &used);
      }
    }
  }
  for (const datalog::Fact& f : p.facts()) {
    if (f.pred != nullptr) used.insert(f.pred);
  }
  for (const datalog::IntegrityConstraint& c : p.constraints()) {
    for (const Subgoal& sg : c.body) {
      if (sg.kind == Subgoal::Kind::kAtom ||
          sg.kind == Subgoal::Kind::kNegatedAtom) {
        InsertAtomPred(sg.atom, &used);
      }
    }
  }
  return used;
}

class DeadPredicatePass : public LintPass {
 public:
  const LintRuleDesc& rule() const override { return Desc("MAD010"); }
  void Run(const LintContext& ctx, DiagnosticList* out) const override {
    std::set<const datalog::PredicateInfo*> used =
        OccurringPredicates(*ctx.program);
    for (const auto& p : ctx.program->predicates()) {
      if (used.count(p.get())) continue;
      out->Add(Make(ctx, SourceSpan{},
                    StrPrintf("predicate %s/%d is declared but never used in "
                              "any rule, fact, or constraint",
                              p->name.c_str(), p->arity)));
    }
  }
};

class UnreachableRulePass : public LintPass {
 public:
  const LintRuleDesc& rule() const override { return Desc("MAD011"); }
  void Run(const LintContext& ctx, DiagnosticList* out) const override {
    std::set<const datalog::PredicateInfo*> derivable;
    for (const Rule& r : ctx.program->rules()) {
      if (r.head.pred != nullptr) derivable.insert(r.head.pred);
    }
    for (const datalog::Fact& f : ctx.program->facts()) {
      if (f.pred != nullptr) derivable.insert(f.pred);
    }
    auto check_atom = [&](const Rule& r, const Atom& a) {
      if (a.pred == nullptr) return;
      // Default-value predicates carry bottom for every key, so they are
      // never empty; magic predicates are seeded from the query's bound
      // constants at evaluation time.
      if (a.pred->has_default || a.pred->is_magic ||
          derivable.count(a.pred)) {
        return;
      }
      out->Add(Make(ctx, a.span.valid() ? a.span : r.span,
                    StrPrintf("subgoal %s can never hold: predicate %s has "
                              "no facts and no rules, so this rule never "
                              "fires",
                              a.ToString().c_str(), a.pred->name.c_str())));
    };
    for (const Rule& r : ctx.program->rules()) {
      for (const Subgoal& sg : r.body) {
        if (sg.kind == Subgoal::Kind::kAtom) {
          check_atom(r, sg.atom);
        } else if (sg.kind == Subgoal::Kind::kAggregate) {
          for (const Atom& a : sg.aggregate.atoms) check_atom(r, a);
        }
      }
    }
  }
};

// ---------------------------------------------------------------------------
// MAD012: duplicate rules
// ---------------------------------------------------------------------------

/// Canonicalizes a rule's text by renaming variables (identifiers starting
/// with an upper-case letter or '_') to V0, V1, ... in order of first
/// occurrence. Two rules identical up to variable renaming canonicalize to
/// the same string. Quoted string constants are skipped verbatim.
std::string CanonicalRuleText(const Rule& r) {
  std::string in = r.ToString();
  std::string out;
  std::map<std::string, std::string> renames;
  size_t i = 0;
  while (i < in.size()) {
    char c = in[i];
    if (c == '"') {
      size_t j = i + 1;
      while (j < in.size() && in[j] != '"') ++j;
      out.append(in, i, j - i + 1);
      i = j + 1;
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t j = i;
      while (j < in.size() &&
             (std::isalnum(static_cast<unsigned char>(in[j])) ||
              in[j] == '_')) {
        ++j;
      }
      std::string ident = in.substr(i, j - i);
      if (std::isupper(static_cast<unsigned char>(c)) || c == '_') {
        auto [it, inserted] = renames.emplace(
            ident, StrPrintf("V%d", static_cast<int>(renames.size())));
        out += it->second;
      } else {
        out += ident;
      }
      i = j;
      continue;
    }
    out += c;
    ++i;
  }
  return out;
}

class DuplicateRulePass : public LintPass {
 public:
  const LintRuleDesc& rule() const override { return Desc("MAD012"); }
  void Run(const LintContext& ctx, DiagnosticList* out) const override {
    std::map<std::string, const Rule*> seen;
    for (const Rule& r : ctx.program->rules()) {
      std::string canon = CanonicalRuleText(r);
      auto [it, inserted] = seen.emplace(canon, &r);
      if (inserted) continue;
      out->Add(Make(ctx, r.span,
                    StrPrintf("rule duplicates the rule at line %d (identical "
                              "up to variable renaming) and adds no "
                              "derivations",
                              it->second->source_line)));
    }
  }
};

// ---------------------------------------------------------------------------
// MAD013: cartesian products
// ---------------------------------------------------------------------------

class JoinGraph {
 public:
  const std::string& Find(const std::string& v) {
    std::string* p = &parent_[v];
    if (p->empty()) *p = v;
    if (*p != v) *p = Find(*p);
    return parent_[v];
  }
  void Union(const std::string& a, const std::string& b) {
    std::string ra = Find(a), rb = Find(b);
    if (ra != rb) parent_[ra] = rb;
  }
  void UnionAll(const std::vector<std::string>& vars) {
    for (size_t i = 1; i < vars.size(); ++i) Union(vars[0], vars[i]);
  }

 private:
  std::map<std::string, std::string> parent_;
};

class CartesianProductPass : public LintPass {
 public:
  const LintRuleDesc& rule() const override { return Desc("MAD013"); }
  void Run(const LintContext& ctx, DiagnosticList* out) const override {
    for (const Rule& r : ctx.program->rules()) {
      // Relational nodes: positive atoms and aggregate subgoals; built-ins
      // and negated atoms act as connectors only (they filter, not enumerate).
      struct Node {
        std::vector<std::string> vars;
        const Atom* atom = nullptr;
        const datalog::AggregateSubgoal* agg = nullptr;
      };
      std::vector<Node> nodes;
      JoinGraph jg;
      for (const Subgoal& sg : r.body) {
        std::vector<std::string> vars = sg.Vars();
        jg.UnionAll(vars);
        if (sg.kind == Subgoal::Kind::kAtom) {
          Node n;
          n.atom = &sg.atom;
          for (const Term& t : sg.atom.args) {
            if (t.is_var()) n.vars.push_back(t.var);
          }
          if (!n.vars.empty()) nodes.push_back(std::move(n));
        } else if (sg.kind == Subgoal::Kind::kAggregate) {
          Node n;
          n.agg = &sg.aggregate;
          n.vars = vars;
          if (!n.vars.empty()) nodes.push_back(std::move(n));
        }
      }
      if (nodes.size() < 2) continue;
      std::map<std::string, std::vector<const Node*>> groups;
      for (const Node& n : nodes) {
        groups[jg.Find(n.vars.front())].push_back(&n);
      }
      if (groups.size() < 2) continue;
      // Report against the second group's first subgoal, naming one subgoal
      // from the first group for contrast.
      auto it = groups.begin();
      const Node* a = it->second.front();
      ++it;
      const Node* b = it->second.front();
      auto describe = [](const Node* n) {
        return n->atom != nullptr ? n->atom->ToString() : n->agg->ToString();
      };
      SourceSpan span = b->atom != nullptr ? b->atom->span : b->agg->span;
      out->Add(
          Make(ctx, span.valid() ? span : r.span,
               StrPrintf("body splits into %d independent join groups: %s "
                         "shares no variables with %s, forming a cartesian "
                         "product",
                         static_cast<int>(groups.size()),
                         describe(b).c_str(), describe(a).c_str())));
    }
  }
};

// ---------------------------------------------------------------------------
// MAD014: cost-domain mismatches
// ---------------------------------------------------------------------------

class CostDomainMismatchPass : public LintPass {
 public:
  const LintRuleDesc& rule() const override { return Desc("MAD014"); }
  void Run(const LintContext& ctx, DiagnosticList* out) const override {
    for (const Rule& r : ctx.program->rules()) {
      struct CostUse {
        const datalog::PredicateInfo* pred;
        SourceSpan span;
      };
      std::map<std::string, CostUse> first;
      std::set<std::string> reported;
      auto visit_atom = [&](const Atom& a) {
        if (a.pred == nullptr || !a.pred->has_cost) return;
        const Term* cost = a.CostTerm();
        if (cost == nullptr || !cost->is_var()) return;
        auto [it, inserted] =
            first.emplace(cost->var, CostUse{a.pred, cost->span});
        if (inserted) return;
        if (it->second.pred->domain == a.pred->domain) return;
        if (!reported.insert(cost->var).second) return;
        out->Add(Make(
            ctx, cost->span.valid() ? cost->span : r.span,
            StrPrintf("variable %s is the cost argument of %s (lattice %s) "
                      "and of %s (lattice %s); values from unrelated orders "
                      "are being conflated",
                      cost->var.c_str(), a.pred->name.c_str(),
                      std::string(a.pred->domain->name()).c_str(),
                      it->second.pred->name.c_str(),
                      std::string(it->second.pred->domain->name()).c_str())));
      };
      visit_atom(r.head);
      for (const Subgoal& sg : r.body) {
        if (sg.kind == Subgoal::Kind::kAtom ||
            sg.kind == Subgoal::Kind::kNegatedAtom) {
          visit_atom(sg.atom);
        } else if (sg.kind == Subgoal::Kind::kAggregate) {
          for (const Atom& a : sg.aggregate.atoms) visit_atom(a);
        }
      }
    }
  }
};

}  // namespace

Diagnostic AdmissibilityDiagnostic(const AdmissibilityViolation& v,
                                   const Rule& rule,
                                   const DependencyGraph& graph,
                                   const std::string& file,
                                   const absint::CertificateReport* certs) {
  Diagnostic d;
  d.message = v.message;
  d.file = file;
  d.span = v.span;
  switch (v.aspect) {
    case AdmissibilityAspect::kNegation:
      // A negated CDB subgoal makes the component recursive through
      // negation, which overall() always rejects.
      d.rule_id = Desc("MAD006").FullId();
      d.severity = Severity::kError;
      break;
    case AdmissibilityAspect::kPseudoMonotonicNoDefault:
      // The aggregate ranges over a CDB predicate, so the component is
      // recursive through aggregation and inadmissibility rejects it.
      d.rule_id = Desc("MAD005").FullId();
      d.severity = Severity::kError;
      break;
    default:
      d.rule_id = Desc("MAD004").FullId();
      d.severity = ComponentRecursesThroughAggregationOrNegation(rule, graph)
                       ? Severity::kError
                       : Severity::kWarning;
      // A semantic certificate means overall() accepts the component, so
      // the finding must not stay an error (error ⟺ reject is property-
      // tested). It remains visible as a warning next to the MAD015 note.
      if (d.severity == Severity::kError && certs != nullptr &&
          rule.head.pred != nullptr) {
        const absint::ComponentCertificate* cert =
            certs->ForComponent(graph.ComponentOf(rule.head.pred));
        if (cert != nullptr &&
            cert->kind == absint::CertificateKind::kSemanticallyMonotonic) {
          d.severity = Severity::kWarning;
          d.message += " (discharged by the semantic certificate; MAD015)";
        }
      }
      break;
  }
  return d;
}

PassManager MakePaperPassManager() {
  PassManager pm;
  pm.AddPass(std::make_unique<RangeRestrictionPass>());
  pm.AddPass(std::make_unique<CostRespectingPass>());
  pm.AddPass(std::make_unique<ConflictFreePass>());
  pm.AddPass(std::make_unique<AdmissibilityPass>());
  pm.AddPass(std::make_unique<TerminationPass>());
  pm.AddPass(std::make_unique<PrefixSoundnessPass>());
  pm.AddPass(std::make_unique<SemanticCertificatePass>());
  pm.AddPass(std::make_unique<TerminationVerdictPass>());
  pm.AddPass(std::make_unique<UnboundedAscentPass>());
  pm.AddPass(std::make_unique<UncertifiedComponentPass>());
  return pm;
}

PassManager MakeDefaultPassManager() {
  PassManager pm = MakePaperPassManager();
  pm.AddPass(std::make_unique<SingletonVariablePass>());
  pm.AddPass(std::make_unique<DeadPredicatePass>());
  pm.AddPass(std::make_unique<UnreachableRulePass>());
  pm.AddPass(std::make_unique<DuplicateRulePass>());
  pm.AddPass(std::make_unique<CartesianProductPass>());
  pm.AddPass(std::make_unique<CostDomainMismatchPass>());
  AddStaticPlanningPasses(&pm);
  AddDemandPasses(&pm);
  return pm;
}

}  // namespace lint
}  // namespace analysis
}  // namespace mad
