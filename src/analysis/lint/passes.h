#ifndef MAD_ANALYSIS_LINT_PASSES_H_
#define MAD_ANALYSIS_LINT_PASSES_H_

#include <string>

#include "analysis/admissibility.h"
#include "analysis/lint/pass.h"

namespace mad {
namespace analysis {
namespace lint {

/// The paper's checks as lint passes (MAD001–MAD008) plus the semantic
/// certification passes (MAD015–MAD018): range restriction, cost-respecting,
/// conflict freedom, admissibility (split into MAD004/MAD005/MAD006 by
/// aspect), termination, prefix soundness, and the abstract-interpretation
/// certificates. Exactly these passes carry error severity, and an error is
/// emitted iff ProgramCheckResult::overall() fails — the lint report and the
/// evaluator's accept/reject decision agree by construction.
PassManager MakePaperPassManager();

/// Paper passes plus the hygiene/performance passes (MAD009–MAD014) and the
/// static typing/planning passes (MAD019–MAD024), which only ever emit
/// warnings and notes. This is what the madlint tool runs.
PassManager MakeDefaultPassManager();

/// Appends the static typing/planning passes (MAD019–MAD024, defined in
/// plan_passes.cc): type-inference conflicts, statically empty rule and
/// aggregate inputs, planned cross joins, and unbound head modes.
void AddStaticPlanningPasses(PassManager* pm);

/// Appends the demand-analysis passes (MAD025–MAD027, defined in
/// demand_passes.cc): undemandable queries (magic-sets bail-out),
/// demand-unreachable rules, and free-cost-column demand widening. They only
/// fire on programs that declare `.query` directives.
void AddDemandPasses(PassManager* pm);

/// Maps one admissibility violation to its diagnostic. Aspect picks the rule
/// (negation → MAD006, missing default → MAD005, everything else → MAD004);
/// MAD004's severity is an error only when the head's component recurses
/// through aggregation or negation — exactly when overall() would reject.
/// When `certificates` marks the rule's component semantically monotonic,
/// the error downgrades to a warning (overall() accepts the component).
Diagnostic AdmissibilityDiagnostic(
    const AdmissibilityViolation& v, const datalog::Rule& rule,
    const DependencyGraph& graph, const std::string& file,
    const absint::CertificateReport* certificates = nullptr);

}  // namespace lint
}  // namespace analysis
}  // namespace mad

#endif  // MAD_ANALYSIS_LINT_PASSES_H_
