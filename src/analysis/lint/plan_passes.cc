// Lint passes MAD019–MAD024: findings of the static typing and planning
// layer (analysis/typing, analysis/plan). All of them are warnings or notes
// — never errors — so the error ⟺ overall()-reject equivalence of the paper
// passes is untouched.

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "analysis/lint/passes.h"
#include "analysis/plan/plan.h"
#include "analysis/typing/types.h"
#include "util/string_util.h"

namespace mad {
namespace analysis {
namespace lint {

namespace {

using datalog::Atom;
using datalog::PredicateInfo;
using datalog::Rule;
using datalog::SourceSpan;
using datalog::Subgoal;

const LintRuleDesc& PlanDesc(const char* code) {
  const LintRuleDesc* d = FindLintRule(code);
  // The registry is static; a miss is a programming error caught in tests.
  return *d;
}

/// Span for a type conflict: the offending evidence if located, else the
/// rule that supplied it, else nothing (inline-fact evidence).
SourceSpan ConflictSpan(const LintContext& ctx,
                        const typing::TypeConflict& c) {
  if (c.span.valid()) return c.span;
  if (c.rule_index >= 0 &&
      c.rule_index < static_cast<int>(ctx.program->rules().size())) {
    return ctx.program->rules()[c.rule_index].span;
  }
  return SourceSpan{};
}

std::string ConflictPlace(const typing::TypeConflict& c) {
  if (c.pred != nullptr) {
    return StrPrintf("argument %d of %s", c.column + 1, c.pred->name.c_str());
  }
  return "a rule variable";
}

// ---------------------------------------------------------------------------
// MAD019 / MAD020: type-inference conflicts
// ---------------------------------------------------------------------------

class TypeConflictPass : public LintPass {
 public:
  const LintRuleDesc& rule() const override { return PlanDesc("MAD019"); }
  void Run(const LintContext& ctx, DiagnosticList* out) const override {
    typing::TypeReport types = typing::InferTypes(*ctx.program);
    for (const typing::TypeConflict& c : types.conflicts()) {
      if (c.constant_evidence) continue;  // MAD020's finding
      out->Add(Make(
          ctx, ConflictSpan(ctx, c),
          StrPrintf("conflicting inferred types for %s: %s vs %s (%s)",
                    ConflictPlace(c).c_str(), c.existing.ToString().c_str(),
                    c.incoming.ToString().c_str(), c.detail.c_str())));
    }
  }
};

class ConstantTypeMismatchPass : public LintPass {
 public:
  const LintRuleDesc& rule() const override { return PlanDesc("MAD020"); }
  void Run(const LintContext& ctx, DiagnosticList* out) const override {
    typing::TypeReport types = typing::InferTypes(*ctx.program);
    for (const typing::TypeConflict& c : types.conflicts()) {
      if (!c.constant_evidence) continue;  // MAD019's finding
      out->Add(Make(
          ctx, ConflictSpan(ctx, c),
          StrPrintf("constant disagrees with the inferred type of %s: "
                    "%s vs %s (%s)",
                    ConflictPlace(c).c_str(), c.existing.ToString().c_str(),
                    c.incoming.ToString().c_str(), c.detail.c_str())));
    }
  }
};

// ---------------------------------------------------------------------------
// MAD021 / MAD024: statically empty inputs
// ---------------------------------------------------------------------------

/// MAD011's criterion: predicates some fact or rule head could ever populate
/// *directly*. MAD021 restricts itself to predicates that pass this test but
/// fail the transitive emptiness fixpoint, so the two rules never
/// double-report one subgoal.
std::set<const PredicateInfo*> DirectlyDerivable(
    const datalog::Program& program) {
  std::set<const PredicateInfo*> derivable;
  for (const Rule& r : program.rules()) {
    if (r.head.pred != nullptr) derivable.insert(r.head.pred);
  }
  for (const datalog::Fact& f : program.facts()) {
    if (f.pred != nullptr) derivable.insert(f.pred);
  }
  return derivable;
}

class StaticallyEmptyRulePass : public LintPass {
 public:
  const LintRuleDesc& rule() const override { return PlanDesc("MAD021"); }
  void Run(const LintContext& ctx, DiagnosticList* out) const override {
    std::set<const PredicateInfo*> nonempty =
        plan::PotentiallyNonEmpty(*ctx.program);
    std::set<const PredicateInfo*> derivable =
        DirectlyDerivable(*ctx.program);
    for (const Rule& r : ctx.program->rules()) {
      for (const Subgoal& sg : r.body) {
        if (sg.kind != Subgoal::Kind::kAtom) continue;
        const Atom& a = sg.atom;
        if (a.pred == nullptr || nonempty.count(a.pred)) continue;
        // A predicate with no facts and no rules is MAD011's finding.
        if (!derivable.count(a.pred)) continue;
        out->Add(Make(
            ctx, a.span.valid() ? a.span : r.span,
            StrPrintf("predicate %s is transitively empty (no chain of "
                      "rules can ever populate it), so this rule never "
                      "fires",
                      a.pred->name.c_str())));
      }
    }
  }
};

class EmptyAggregateInputPass : public LintPass {
 public:
  const LintRuleDesc& rule() const override { return PlanDesc("MAD024"); }
  void Run(const LintContext& ctx, DiagnosticList* out) const override {
    std::set<const PredicateInfo*> nonempty =
        plan::PotentiallyNonEmpty(*ctx.program);
    for (const Rule& r : ctx.program->rules()) {
      for (const Subgoal& sg : r.body) {
        if (sg.kind != Subgoal::Kind::kAggregate) continue;
        for (const Atom& a : sg.aggregate.atoms) {
          if (a.pred == nullptr || nonempty.count(a.pred)) continue;
          const char* consequence =
              sg.aggregate.restricted
                  ? "the '=r' subgoal never holds, so this rule never fires"
                  : "the aggregate always yields the lattice bottom";
          out->Add(Make(
              ctx, sg.aggregate.span.valid() ? sg.aggregate.span : r.span,
              StrPrintf("aggregate input %s is statically empty: %s",
                        a.pred->name.c_str(), consequence)));
        }
      }
    }
  }
};

// ---------------------------------------------------------------------------
// MAD022 / MAD023: planner findings (cross joins, unbound head modes)
// ---------------------------------------------------------------------------

class CrossJoinPass : public LintPass {
 public:
  const LintRuleDesc& rule() const override { return PlanDesc("MAD022"); }
  void Run(const LintContext& ctx, DiagnosticList* out) const override {
    plan::PlanReport report = plan::PlanProgram(
        *ctx.program, *ctx.graph,
        plan::CardinalityEstimates::FromProgram(*ctx.program));
    for (const plan::QueryPlan& qp : report.rules) {
      for (size_t pos = 0; pos < qp.steps.size(); ++pos) {
        const plan::PlanStep& step = qp.steps[pos];
        if (!step.cross_join) continue;
        const Subgoal& sg = qp.rule->body[step.subgoal_index];
        if (sg.atom.pred == nullptr) continue;
        out->Add(Make(
            ctx, sg.atom.span.valid() ? sg.atom.span : qp.rule->span,
            StrPrintf("no bound key position when %s is scanned at planned "
                      "step %d: a cross join with the earlier subgoals",
                      sg.atom.pred->name.c_str(),
                      static_cast<int>(pos) + 1)));
      }
    }
  }
};

class UnboundHeadModePass : public LintPass {
 public:
  const LintRuleDesc& rule() const override { return PlanDesc("MAD023"); }
  void Run(const LintContext& ctx, DiagnosticList* out) const override {
    plan::PlanReport report = plan::PlanProgram(
        *ctx.program, *ctx.graph,
        plan::CardinalityEstimates::FromProgram(*ctx.program));
    for (const plan::QueryPlan& qp : report.rules) {
      if (qp.unbound_head_vars.empty() || qp.rule->head.pred == nullptr) {
        continue;
      }
      out->Add(Make(
          ctx,
          qp.rule->head.span.valid() ? qp.rule->head.span : qp.rule->span,
          StrPrintf("under inferred modes the planned body never binds head "
                    "variable%s %s (head adornment %s^%s)",
                    qp.unbound_head_vars.size() > 1 ? "s" : "",
                    Join(qp.unbound_head_vars, ", ").c_str(),
                    qp.rule->head.pred->name.c_str(),
                    qp.head_adornment.c_str())));
    }
  }
};

}  // namespace

void AddStaticPlanningPasses(PassManager* pm) {
  pm->AddPass(std::make_unique<TypeConflictPass>());
  pm->AddPass(std::make_unique<ConstantTypeMismatchPass>());
  pm->AddPass(std::make_unique<StaticallyEmptyRulePass>());
  pm->AddPass(std::make_unique<CrossJoinPass>());
  pm->AddPass(std::make_unique<UnboundHeadModePass>());
  pm->AddPass(std::make_unique<EmptyAggregateInputPass>());
}

}  // namespace lint
}  // namespace analysis
}  // namespace mad
