#include "analysis/plan/plan.h"

#include <algorithm>
#include <cmath>
#include <optional>

#include "util/string_util.h"

namespace mad {
namespace analysis {
namespace plan {

using datalog::Atom;
using datalog::CmpOp;
using datalog::Expr;
using datalog::PredicateInfo;
using datalog::Program;
using datalog::Rule;
using datalog::Subgoal;
using datalog::Term;

namespace {

/// Selectivity of one bound key position: each bound column is assumed to
/// cut the scanned rows by this factor. Coarse, but monotone in boundness —
/// which is all the greedy order needs.
constexpr double kBoundFactor = 4.0;
/// Floor on a step's estimated match count (avoids zero-cost plans).
constexpr double kMinMatches = 0.0625;

int BoundKeyPositions(const Atom& a, const std::set<std::string>& bound) {
  int n = 0;
  int keys = a.pred->key_arity();
  for (int i = 0; i < keys; ++i) {
    const Term& t = a.args[i];
    if (t.is_const() || bound.count(t.var)) ++n;
  }
  return n;
}

bool KeysBound(const Atom& a, const std::set<std::string>& bound) {
  return BoundKeyPositions(a, bound) == a.pred->key_arity();
}

bool AtomFullyBound(const Atom& a, const std::set<std::string>& bound) {
  for (const Term& t : a.args) {
    if (t.is_var() && !bound.count(t.var)) return false;
  }
  return true;
}

bool ExprBound(const Expr& e, const std::set<std::string>& bound) {
  std::vector<std::string> vars;
  e.CollectVars(&vars);
  for (const std::string& v : vars) {
    if (!bound.count(v)) return false;
  }
  return true;
}

void BindAtomVars(const Atom& a, std::set<std::string>* bound) {
  for (const Term& t : a.args) {
    if (t.is_var()) bound->insert(t.var);
  }
}

std::string AtomAdornment(const Atom& a, const std::set<std::string>& bound) {
  std::string ad;
  ad.reserve(a.args.size());
  for (const Term& t : a.args) {
    ad += (t.is_const() || bound.count(t.var)) ? 'b' : 'f';
  }
  return ad;
}

double EstMatches(const PredicateInfo* pred, int nbound,
                  const CardinalityEstimates& cards) {
  double sel = cards.RowsFor(pred) / std::pow(kBoundFactor, nbound);
  return std::max(sel, kMinMatches);
}

/// A ready subgoal's assessed cost and effects.
struct Candidate {
  double cost = 0;
  double out_rows = 0;
  int nbound = 0;
  bool cross_join = false;
  std::string adornment;
  /// Variable the step newly binds via assignment (builtin `V = expr`).
  std::string assign_var;
};

/// Greedy cost of evaluating an aggregate's inner conjunction, mirroring
/// ScheduleInnerAtoms' safety condition (default-value atoms need bound
/// keys). Returns accumulated work for one outer binding.
double InnerConjunctionCost(const std::vector<Atom>& atoms,
                            std::set<std::string> bound,
                            const CardinalityEstimates& cards) {
  std::vector<bool> done(atoms.size(), false);
  double rows = 1.0;
  double cost = 0.0;
  for (size_t scheduled = 0; scheduled < atoms.size(); ++scheduled) {
    int pick = -1;
    double pick_matches = 0;
    for (size_t i = 0; i < atoms.size(); ++i) {
      if (done[i]) continue;
      if (atoms[i].pred->has_default && !KeysBound(atoms[i], bound)) continue;
      double m = EstMatches(atoms[i].pred, BoundKeyPositions(atoms[i], bound),
                            cards);
      if (pick < 0 || rows * m < rows * pick_matches) {
        pick = static_cast<int>(i);
        pick_matches = m;
      }
    }
    if (pick < 0) break;  // unsafe inner order; checker rejects the rule
    cost += rows * pick_matches;
    rows *= pick_matches;
    BindAtomVars(atoms[pick], &bound);
    done[pick] = true;
  }
  return std::max(cost, 1.0);
}

/// Assesses one pending subgoal against the current bindings; nullopt when
/// the subgoal is not safely executable yet. Readiness conditions are an
/// exact mirror of core's ScheduleBody so a planned preference order can
/// always be realized.
std::optional<Candidate> Assess(const Subgoal& sg,
                                const std::set<std::string>& bound,
                                double rows, bool saw_relational,
                                const CardinalityEstimates& cards) {
  Candidate c;
  switch (sg.kind) {
    case Subgoal::Kind::kAtom: {
      const Atom& a = sg.atom;
      if (a.pred->has_default && !KeysBound(a, bound)) return std::nullopt;
      c.nbound = BoundKeyPositions(a, bound);
      double m = a.pred->has_default && KeysBound(a, bound)
                     ? 1.0
                     : EstMatches(a.pred, c.nbound, cards);
      c.cost = rows * m;
      c.out_rows = rows * m;
      c.cross_join =
          saw_relational && c.nbound == 0 && a.pred->key_arity() > 0;
      c.adornment = AtomAdornment(a, bound);
      return c;
    }
    case Subgoal::Kind::kNegatedAtom: {
      if (!AtomFullyBound(sg.atom, bound)) return std::nullopt;
      c.cost = rows * 0.01;  // point lookups; cheap but not free
      c.out_rows = rows * 0.5;
      c.nbound = BoundKeyPositions(sg.atom, bound);
      c.adornment = AtomAdornment(sg.atom, bound);
      return c;
    }
    case Subgoal::Kind::kBuiltin: {
      const auto& b = sg.builtin;
      if (ExprBound(*b.lhs, bound) && ExprBound(*b.rhs, bound)) {
        c.cost = 0;
        c.out_rows = rows * 0.5;
        return c;
      }
      if (b.op != CmpOp::kEq) return std::nullopt;
      auto try_assign = [&](const Expr& var_side,
                            const Expr& expr_side) -> bool {
        if (var_side.kind != Expr::Kind::kVar) return false;
        if (bound.count(var_side.var)) return false;
        if (!ExprBound(expr_side, bound)) return false;
        c.cost = 0;
        c.out_rows = rows;
        c.assign_var = var_side.var;
        return true;
      };
      if (try_assign(*b.lhs, *b.rhs) || try_assign(*b.rhs, *b.lhs)) return c;
      return std::nullopt;
    }
    case Subgoal::Kind::kAggregate: {
      const auto& agg = sg.aggregate;
      if (!agg.restricted) {
        for (const std::string& g : agg.grouping_vars) {
          if (!bound.count(g)) return std::nullopt;
        }
      }
      c.cost = rows * InnerConjunctionCost(agg.atoms, bound, cards);
      c.out_rows = rows;
      std::string ad;
      for (const std::string& g : agg.grouping_vars) {
        ad += bound.count(g) ? 'b' : 'f';
      }
      c.adornment = ad;
      return c;
    }
  }
  return std::nullopt;
}

void ApplyEffects(const Subgoal& sg, const Candidate& c,
                  std::set<std::string>* bound) {
  switch (sg.kind) {
    case Subgoal::Kind::kAtom:
      BindAtomVars(sg.atom, bound);
      break;
    case Subgoal::Kind::kNegatedAtom:
      break;
    case Subgoal::Kind::kBuiltin:
      if (!c.assign_var.empty()) bound->insert(c.assign_var);
      break;
    case Subgoal::Kind::kAggregate:
      for (const std::string& g : sg.aggregate.grouping_vars) {
        bound->insert(g);
      }
      if (sg.aggregate.result.is_var()) bound->insert(sg.aggregate.result.var);
      break;
  }
}

const char* KindName(Subgoal::Kind k) {
  switch (k) {
    case Subgoal::Kind::kAtom:
      return "atom";
    case Subgoal::Kind::kNegatedAtom:
      return "negation";
    case Subgoal::Kind::kAggregate:
      return "aggregate";
    case Subgoal::Kind::kBuiltin:
      return "builtin";
  }
  return "?";
}

std::string StepDescription(const Subgoal& sg) {
  switch (sg.kind) {
    case Subgoal::Kind::kAtom:
      return "scan " + sg.atom.ToString();
    case Subgoal::Kind::kNegatedAtom:
      return "check " + sg.ToString();
    case Subgoal::Kind::kAggregate:
      return "aggregate " + sg.aggregate.function_name;
    case Subgoal::Kind::kBuiltin:
      return "filter " + sg.builtin.ToString();
  }
  return sg.ToString();
}

QueryPlan PlanRuleImpl(const Rule& rule, int rule_index,
                       const DependencyGraph& graph,
                       const CardinalityEstimates& cards,
                       std::set<std::string> bound) {
  QueryPlan plan;
  plan.rule_index = rule_index;
  plan.rule = &rule;
  plan.component = graph.ComponentOf(rule.head.pred);

  std::vector<bool> done(rule.body.size(), false);
  double rows = 1.0;
  bool saw_relational = false;
  size_t remaining = rule.body.size();

  while (remaining > 0) {
    int pick = -1;
    Candidate best;
    for (size_t i = 0; i < rule.body.size(); ++i) {
      if (done[i]) continue;
      std::optional<Candidate> c =
          Assess(rule.body[i], bound, rows, saw_relational, cards);
      if (!c.has_value()) continue;
      // Strict < keeps the earliest textual subgoal on ties — plans stay
      // deterministic and invariant under predicate renaming.
      if (pick < 0 || c->cost < best.cost) {
        pick = static_cast<int>(i);
        best = std::move(*c);
      }
    }
    if (pick < 0) {
      // No safe next subgoal (the checker rejects such rules); fall back to
      // the textual tail so the plan still covers every subgoal.
      plan.complete = false;
      for (size_t i = 0; i < rule.body.size(); ++i) {
        if (done[i]) continue;
        const Subgoal& sg = rule.body[i];
        PlanStep step;
        step.subgoal_index = static_cast<int>(i);
        step.kind = sg.kind;
        if (sg.kind == Subgoal::Kind::kAtom ||
            sg.kind == Subgoal::Kind::kNegatedAtom) {
          step.adornment = AtomAdornment(sg.atom, bound);
          step.bound_positions = BoundKeyPositions(sg.atom, bound);
        }
        step.est_rows = rows;
        step.description = StepDescription(sg);
        ApplyEffects(sg, Candidate{}, &bound);
        plan.steps.push_back(std::move(step));
      }
      break;
    }

    const Subgoal& sg = rule.body[pick];
    PlanStep step;
    step.subgoal_index = pick;
    step.kind = sg.kind;
    step.adornment = best.adornment;
    step.bound_positions = best.nbound;
    step.est_rows = best.out_rows;
    step.est_cost = best.cost;
    step.cross_join = best.cross_join;
    step.description = StepDescription(sg);
    plan.est_cost += best.cost;
    rows = best.out_rows;
    if (sg.kind == Subgoal::Kind::kAtom ||
        sg.kind == Subgoal::Kind::kAggregate) {
      saw_relational = true;
    }
    ApplyEffects(sg, best, &bound);
    plan.steps.push_back(std::move(step));
    done[pick] = true;
    --remaining;
  }

  for (const Term& t : rule.head.args) {
    bool b = t.is_const() || bound.count(t.var);
    plan.head_adornment += b ? 'b' : 'f';
    if (!b && std::find(plan.unbound_head_vars.begin(),
                        plan.unbound_head_vars.end(),
                        t.var) == plan.unbound_head_vars.end()) {
      plan.unbound_head_vars.push_back(t.var);
    }
  }
  return plan;
}

std::string JsonEscapeStr(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char ch : s) {
    switch (ch) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          out += StrPrintf("\\u%04x", ch);
        } else {
          out += ch;
        }
    }
  }
  return out;
}

}  // namespace

double CardinalityEstimates::RowsFor(const PredicateInfo* pred) const {
  auto it = rows.find(pred);
  return it == rows.end() ? kDefaultRows : std::max(it->second, 1.0);
}

CardinalityEstimates CardinalityEstimates::FromProgram(
    const Program& program) {
  CardinalityEstimates out;
  for (const datalog::Fact& f : program.facts()) {
    out.rows[f.pred] += 1.0;
  }
  return out;
}

CardinalityEstimates CardinalityEstimates::FromDatabase(
    const Program& program, const datalog::Database& db) {
  CardinalityEstimates out;
  for (const auto& p : program.predicates()) {
    const datalog::Relation* rel = db.Find(p.get());
    if (rel != nullptr && rel->size() > 0) {
      out.rows[p.get()] = static_cast<double>(rel->size());
    }
  }
  return out;
}

std::string PlanStep::ToString() const {
  std::string out = StrPrintf("[%d] %s", subgoal_index, description.c_str());
  if (!adornment.empty()) out += "^" + adornment;
  out += StrPrintf("  est_rows=%.1f est_cost=%.1f", est_rows, est_cost);
  if (cross_join) out += "  CROSS JOIN";
  return out;
}

std::vector<int> QueryPlan::Order() const {
  std::vector<int> order;
  order.reserve(steps.size());
  for (const PlanStep& s : steps) order.push_back(s.subgoal_index);
  return order;
}

std::string QueryPlan::ToString() const {
  std::string out = StrPrintf("rule %d (line %d, component %d): %s\n",
                              rule_index, rule != nullptr ? rule->source_line : 0,
                              component,
                              rule != nullptr ? rule->ToString().c_str() : "?");
  std::string order;
  for (const PlanStep& s : steps) {
    if (!order.empty()) order += " -> ";
    order += StrPrintf("%d", s.subgoal_index);
  }
  out += "  join order: " + (order.empty() ? std::string("(empty body)") : order);
  out += "\n";
  int n = 0;
  for (const PlanStep& s : steps) {
    out += StrPrintf("  step %d: %s\n", ++n, s.ToString().c_str());
  }
  out += StrPrintf("  head: %s^%s",
                   rule != nullptr ? rule->head.pred->name.c_str() : "?",
                   head_adornment.c_str());
  if (!unbound_head_vars.empty()) {
    out += "  UNBOUND:";
    for (const std::string& v : unbound_head_vars) out += " " + v;
  }
  if (!complete) out += "  (incomplete: textual tail)";
  out += StrPrintf("  est_total=%.1f\n", est_cost);
  return out;
}

std::string PlanReport::ToString() const {
  std::string out = "== inferred column types ==\n";
  out += types.ToString();
  out += "== query plans ==\n";
  for (const QueryPlan& p : rules) {
    out += p.ToString();
  }
  return out;
}

std::string PlanReport::ToJson() const {
  std::string out = "{\"types\":[";
  bool first = true;
  for (const auto& [pred, cols] : types.Rows()) {
    if (!first) out += ",";
    first = false;
    out += "{\"pred\":\"" + JsonEscapeStr(pred->name) + "\",\"columns\":[";
    for (size_t i = 0; i < cols.size(); ++i) {
      if (i > 0) out += ",";
      out += "\"" + JsonEscapeStr(cols[i].ToString()) + "\"";
    }
    out += "]}";
  }
  out += "],\"plans\":[";
  first = true;
  for (const QueryPlan& p : rules) {
    if (!first) out += ",";
    first = false;
    out += StrPrintf("{\"rule\":%d,\"line\":%d,\"component\":%d", p.rule_index,
                     p.rule != nullptr ? p.rule->source_line : 0, p.component);
    out += ",\"text\":\"" +
           JsonEscapeStr(p.rule != nullptr ? p.rule->ToString() : "") + "\"";
    out += StrPrintf(",\"complete\":%s,\"est_cost\":%.6g",
                     p.complete ? "true" : "false", p.est_cost);
    out += ",\"head_adornment\":\"" + p.head_adornment + "\"";
    out += ",\"unbound_head_vars\":[";
    for (size_t i = 0; i < p.unbound_head_vars.size(); ++i) {
      if (i > 0) out += ",";
      out += "\"" + JsonEscapeStr(p.unbound_head_vars[i]) + "\"";
    }
    out += "],\"order\":[";
    for (size_t i = 0; i < p.steps.size(); ++i) {
      if (i > 0) out += ",";
      out += StrPrintf("%d", p.steps[i].subgoal_index);
    }
    out += "],\"steps\":[";
    for (size_t i = 0; i < p.steps.size(); ++i) {
      const PlanStep& s = p.steps[i];
      if (i > 0) out += ",";
      out += StrPrintf("{\"subgoal\":%d,\"kind\":\"%s\"", s.subgoal_index,
                       KindName(s.kind));
      out += ",\"adornment\":\"" + s.adornment + "\"";
      out += StrPrintf(
          ",\"bound_positions\":%d,\"est_rows\":%.6g,\"est_cost\":%.6g,"
          "\"cross_join\":%s",
          s.bound_positions, s.est_rows, s.est_cost,
          s.cross_join ? "true" : "false");
      out += ",\"description\":\"" + JsonEscapeStr(s.description) + "\"}";
    }
    out += "]}";
  }
  out += "]}";
  return out;
}

PlanReport PlanProgram(const Program& program, const DependencyGraph& graph,
                       const CardinalityEstimates& cards) {
  PlanReport report;
  report.types = typing::InferTypes(program);
  const auto& rules = program.rules();
  report.rules.reserve(rules.size());
  for (size_t ri = 0; ri < rules.size(); ++ri) {
    report.rules.push_back(
        PlanRuleImpl(rules[ri], static_cast<int>(ri), graph, cards, {}));
  }
  return report;
}

QueryPlan PlanRuleWithBound(const datalog::Rule& rule, int rule_index,
                            const DependencyGraph& graph,
                            const CardinalityEstimates& cards,
                            const std::set<std::string>& initial_bound) {
  return PlanRuleImpl(rule, rule_index, graph, cards, initial_bound);
}

std::set<const PredicateInfo*> PotentiallyNonEmpty(const Program& program) {
  std::set<const PredicateInfo*> nonempty;
  for (const auto& p : program.predicates()) {
    // Magic predicates are seeded from outside the program text (the query's
    // bound constants arrive as an EDB fact at Engine::Query time), so they
    // count as potentially non-empty exactly like default-value predicates.
    if (p->has_default || p->is_magic) nonempty.insert(p.get());
  }
  for (const datalog::Fact& f : program.facts()) nonempty.insert(f.pred);
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Rule& r : program.rules()) {
      if (nonempty.count(r.head.pred)) continue;
      bool fires = true;
      for (const Subgoal& sg : r.body) {
        if (sg.kind == Subgoal::Kind::kAtom &&
            !nonempty.count(sg.atom.pred)) {
          fires = false;
          break;
        }
        if (sg.kind == Subgoal::Kind::kAggregate && sg.aggregate.restricted) {
          for (const Atom& a : sg.aggregate.atoms) {
            if (!nonempty.count(a.pred)) {
              fires = false;
              break;
            }
          }
          if (!fires) break;
        }
      }
      if (fires) {
        nonempty.insert(r.head.pred);
        changed = true;
      }
    }
  }
  return nonempty;
}

}  // namespace plan
}  // namespace analysis
}  // namespace mad
