#ifndef MAD_ANALYSIS_PLAN_PLAN_H_
#define MAD_ANALYSIS_PLAN_PLAN_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "analysis/dependency_graph.h"
#include "analysis/typing/types.h"
#include "datalog/ast.h"
#include "datalog/database.h"

namespace mad {
namespace analysis {
namespace plan {

/// Per-predicate row-count estimates feeding the join-order planner. Any
/// predicate without an entry (typically IDB) falls back to kDefaultRows —
/// estimates steer preferences only, never correctness, so a coarse default
/// is fine.
struct CardinalityEstimates {
  static constexpr double kDefaultRows = 32.0;

  std::map<const datalog::PredicateInfo*, double> rows;

  /// Counts inline facts per predicate (static / pre-database planning).
  static CardinalityEstimates FromProgram(const datalog::Program& program);
  /// Live relation sizes — what Engine::Run uses after loading the EDB.
  static CardinalityEstimates FromDatabase(const datalog::Program& program,
                                           const datalog::Database& db);

  double RowsFor(const datalog::PredicateInfo* pred) const;
};

/// One scheduled step of a rule body. The adornment is the bound ('b') /
/// free ('f') pattern of the subgoal's arguments *at the time the step
/// runs* (constants are 'b'): atom and negated-atom steps adorn every
/// argument, aggregate steps adorn their grouping variables, builtins have
/// no adornment.
struct PlanStep {
  int subgoal_index = -1;  ///< position in Rule::body (textual order)
  datalog::Subgoal::Kind kind = datalog::Subgoal::Kind::kAtom;
  std::string adornment;
  int bound_positions = 0;  ///< bound key positions when the step runs
  double est_rows = 0;      ///< estimated bindings alive after the step
  double est_cost = 0;      ///< estimated work of the step
  /// Atom step scanning a non-trivial relation with zero bound positions
  /// after earlier relational steps — a cross join (MAD022).
  bool cross_join = false;
  std::string description;

  std::string ToString() const;
};

/// The planned evaluation order of one rule, with per-step estimates — the
/// auditable artifact behind `mondl --explain` and the executor seam.
struct QueryPlan {
  int rule_index = -1;
  const datalog::Rule* rule = nullptr;
  int component = -1;  ///< SCC of the head predicate (evaluation stage)
  std::vector<PlanStep> steps;
  /// Head argument adornment after the full body ran ('b' everywhere for a
  /// range-restricted rule).
  std::string head_adornment;
  /// Head variables the planned body never binds (MAD023; implies the
  /// checker's range-restriction error).
  std::vector<std::string> unbound_head_vars;
  /// False iff the SIPS got stuck (no safe next subgoal) and the tail was
  /// emitted in textual order.
  bool complete = true;
  double est_cost = 0;

  /// Subgoal indices in planned execution order.
  std::vector<int> Order() const;
  std::string ToString() const;
};

/// Whole-program plan: inferred column types plus one QueryPlan per rule
/// (indexed by position in Program::rules()).
struct PlanReport {
  typing::TypeReport types;
  std::vector<QueryPlan> rules;

  const QueryPlan* ForRule(int rule_index) const {
    if (rule_index < 0 || rule_index >= static_cast<int>(rules.size())) {
      return nullptr;
    }
    return &rules[rule_index];
  }

  /// The `mondl --explain` dump: column types, then per-rule plans.
  std::string ToString() const;
  /// Machine-readable variant (`mondl --explain --format=json`).
  std::string ToJson() const;
};

/// Plans every rule of `program`: runs type inference, then a greedy
/// sideways-information-passing pass per rule — repeatedly picking the
/// cheapest *safe* subgoal under the same readiness conditions the executor
/// enforces (builtins need bound operands or act as assignments, negation
/// needs full boundness, default-value atoms need bound keys, "=" aggregates
/// need bound grouping variables). Estimates come from `cards`; ties break
/// by textual subgoal index, so plans are deterministic and invariant under
/// predicate renaming and rule reordering.
PlanReport PlanProgram(const datalog::Program& program,
                       const DependencyGraph& graph,
                       const CardinalityEstimates& cards);

/// Plans one rule with `initial_bound` variables already bound before the
/// first step runs — the SIPS under a head adornment. analysis/demand uses
/// this to propagate demand from a rule head into its body: the bound head
/// key variables seed the sideways information passing, and each planned
/// step's adornment tells the rewrite which (pred, pattern) to demand next.
QueryPlan PlanRuleWithBound(const datalog::Rule& rule, int rule_index,
                            const DependencyGraph& graph,
                            const CardinalityEstimates& cards,
                            const std::set<std::string>& initial_bound);

/// Predicates that can possibly hold at least one fact in the least model:
/// the fixpoint of "has inline facts, or a default value, or a rule whose
/// positive atoms (and restricted-aggregate inner atoms) are all potentially
/// non-empty". Complement = statically empty (MAD021/MAD024). Negated
/// subgoals and "=" aggregates never block a rule here — both can succeed
/// against empty inputs.
std::set<const datalog::PredicateInfo*> PotentiallyNonEmpty(
    const datalog::Program& program);

}  // namespace plan
}  // namespace analysis
}  // namespace mad

#endif  // MAD_ANALYSIS_PLAN_PLAN_H_
