#include "analysis/range_restriction.h"

#include <algorithm>

#include "util/string_util.h"

namespace mad {
namespace analysis {

using datalog::AggregateSubgoal;
using datalog::Atom;
using datalog::CmpOp;
using datalog::Expr;
using datalog::Rule;
using datalog::Subgoal;
using datalog::Term;

namespace {

/// True iff `arg_index` is a "limited argument" of `atom` — a non-cost
/// argument of a predicate with no default declaration (Definition 2.5).
bool IsLimitedArgument(const Atom& atom, int arg_index) {
  if (atom.pred->has_default) return false;
  return arg_index < atom.pred->key_arity();
}

/// Adds every variable in a limited argument of `atom` to `out`.
void AddLimitedArgVars(const Atom& atom, std::set<std::string>* out) {
  for (int i = 0; i < static_cast<int>(atom.args.size()); ++i) {
    if (IsLimitedArgument(atom, i) && atom.args[i].is_var()) {
      out->insert(atom.args[i].var);
    }
  }
}

/// If `e` is a bare variable, returns its name; otherwise nullptr.
const std::string* AsBareVar(const Expr& e) {
  return e.kind == Expr::Kind::kVar ? &e.var : nullptr;
}

bool IsConst(const Expr& e) { return e.kind == Expr::Kind::kConst; }

}  // namespace

VariableClassification ClassifyVariables(const Rule& rule) {
  VariableClassification out;
  bool changed = true;
  while (changed) {
    changed = false;
    auto add_limited = [&](const std::string& v) {
      if (out.limited.insert(v).second) changed = true;
    };
    auto add_quasi = [&](const std::string& v) {
      if (out.quasi_limited.insert(v).second) changed = true;
    };

    for (const Subgoal& sg : rule.body) {
      switch (sg.kind) {
        case Subgoal::Kind::kAtom: {
          std::set<std::string> vars;
          AddLimitedArgVars(sg.atom, &vars);
          for (const std::string& v : vars) add_limited(v);
          // Cost arguments of positive LDB/CDB atoms are quasi-limited.
          const Term* cost = sg.atom.CostTerm();
          if (cost != nullptr && cost->is_var()) add_quasi(cost->var);
          break;
        }
        case Subgoal::Kind::kNegatedAtom:
          break;  // negation limits nothing
        case Subgoal::Kind::kAggregate: {
          const AggregateSubgoal& agg = sg.aggregate;
          // Aggregate variables are quasi-limited.
          if (agg.result.is_var()) add_quasi(agg.result.var);
          std::set<std::string> inside_limited;
          for (const Atom& a : agg.atoms) {
            AddLimitedArgVars(a, &inside_limited);
            const Term* cost = a.CostTerm();
            if (cost != nullptr && cost->is_var()) add_quasi(cost->var);
          }
          // Local variables limited inside are limited; grouping variables
          // only become limited from the inside under the "=r" form.
          for (const std::string& v : agg.local_vars) {
            if (inside_limited.count(v)) add_limited(v);
          }
          if (agg.restricted) {
            for (const std::string& v : agg.grouping_vars) {
              if (inside_limited.count(v)) add_limited(v);
            }
          }
          break;
        }
        case Subgoal::Kind::kBuiltin: {
          if (sg.builtin.op != CmpOp::kEq) break;
          const std::string* lv = AsBareVar(*sg.builtin.lhs);
          const std::string* rv = AsBareVar(*sg.builtin.rhs);
          // V = Y / Y = V with Y limited; V = a / a = V with a constant.
          if (lv != nullptr && rv != nullptr) {
            if (out.limited.count(*rv)) add_limited(*lv);
            if (out.limited.count(*lv)) add_limited(*rv);
          } else if (lv != nullptr && IsConst(*sg.builtin.rhs)) {
            add_limited(*lv);
          } else if (rv != nullptr && IsConst(*sg.builtin.lhs)) {
            add_limited(*rv);
          }
          // V = E / E = V where E's variables are all (quasi-)limited.
          auto expr_determined = [&](const Expr& e) {
            std::vector<std::string> vars;
            e.CollectVars(&vars);
            return std::all_of(vars.begin(), vars.end(),
                               [&](const std::string& v) {
                                 return out.limited.count(v) > 0 ||
                                        out.quasi_limited.count(v) > 0;
                               });
          };
          if (lv != nullptr && expr_determined(*sg.builtin.rhs)) {
            add_quasi(*lv);
          }
          if (rv != nullptr && expr_determined(*sg.builtin.lhs)) {
            add_quasi(*rv);
          }
          break;
        }
      }
    }
  }
  return out;
}

namespace {

/// Falls back to the rule span when the more specific span is unknown.
datalog::SourceSpan SpanOr(const datalog::SourceSpan& specific,
                           const Rule& rule) {
  return specific.valid() ? specific : rule.span;
}

}  // namespace

std::vector<CheckViolation> CollectRangeRestrictionViolations(
    const Rule& rule) {
  std::vector<CheckViolation> out;
  auto add = [&](datalog::SourceSpan span, std::string message) {
    out.push_back({std::move(message), SpanOr(span, rule)});
  };

  VariableClassification cls = ClassifyVariables(rule);
  auto limited = [&](const std::string& v) { return cls.limited.count(v) > 0; };
  auto quasi = [&](const std::string& v) {
    return cls.quasi_limited.count(v) > 0 || limited(v);
  };

  for (const Subgoal& sg : rule.body) {
    switch (sg.kind) {
      case Subgoal::Kind::kAtom:
        // Positive default-value subgoals must have limited key arguments.
        if (sg.atom.pred->has_default) {
          for (int i = 0; i < sg.atom.pred->key_arity(); ++i) {
            const Term& t = sg.atom.args[i];
            if (t.is_var() && !limited(t.var)) {
              add(t.span,
                  StrPrintf("variable %s in a non-cost argument of "
                            "default-value predicate %s is not limited",
                            t.var.c_str(), sg.atom.pred->name.c_str()));
            }
          }
        }
        break;
      case Subgoal::Kind::kNegatedAtom: {
        for (int i = 0; i < static_cast<int>(sg.atom.args.size()); ++i) {
          const Term& t = sg.atom.args[i];
          if (!t.is_var()) continue;
          bool is_cost = sg.atom.pred->has_cost &&
                         i == sg.atom.pred->cost_position();
          if (is_cost ? !quasi(t.var) : !limited(t.var)) {
            add(t.span,
                StrPrintf("variable %s in negated subgoal !%s is not %s",
                          t.var.c_str(), sg.atom.pred->name.c_str(),
                          is_cost ? "quasi-limited" : "limited"));
          }
        }
        break;
      }
      case Subgoal::Kind::kAggregate: {
        const AggregateSubgoal& agg = sg.aggregate;
        for (const std::string& v : agg.grouping_vars) {
          if (!limited(v)) {
            add(agg.span,
                StrPrintf("grouping variable %s of aggregate subgoal "
                          "'%s' is not limited",
                          v.c_str(), agg.ToString().c_str()));
          }
        }
        // Local variables in non-cost arguments must be limited, and key
        // arguments of default-value predicates inside the aggregate must be
        // limited too.
        for (const Atom& a : agg.atoms) {
          for (int i = 0; i < a.pred->key_arity(); ++i) {
            const Term& t = a.args[i];
            if (!t.is_var()) continue;
            bool is_local =
                std::find(agg.local_vars.begin(), agg.local_vars.end(),
                          t.var) != agg.local_vars.end();
            if ((is_local || a.pred->has_default) && !limited(t.var)) {
              add(t.span,
                  StrPrintf("variable %s inside aggregate subgoal is not "
                            "limited (atom %s)",
                            t.var.c_str(), a.ToString().c_str()));
            }
          }
        }
        break;
      }
      case Subgoal::Kind::kBuiltin: {
        for (const std::string& v : sg.builtin.Vars()) {
          if (!quasi(v)) {
            add(rule.span,
                StrPrintf("variable %s in built-in subgoal '%s' is "
                          "neither limited nor quasi-limited",
                          v.c_str(), sg.builtin.ToString().c_str()));
          }
        }
        break;
      }
    }
  }

  // Head: non-cost variables limited, cost variable quasi-limited.
  const Atom& head = rule.head;
  for (int i = 0; i < static_cast<int>(head.args.size()); ++i) {
    const Term& t = head.args[i];
    if (!t.is_var()) continue;
    bool is_cost = head.pred->has_cost && i == head.pred->cost_position();
    if (is_cost ? !quasi(t.var) : !limited(t.var)) {
      add(t.span, StrPrintf("head variable %s is not %s", t.var.c_str(),
                            is_cost ? "quasi-limited" : "limited"));
    }
  }
  return out;
}

Status CheckRuleRangeRestricted(const Rule& rule) {
  std::vector<CheckViolation> violations =
      CollectRangeRestrictionViolations(rule);
  if (violations.empty()) return Status::OK();
  return Status::AnalysisError(
      StrPrintf("rule '%s' (line %d) is not range-restricted: %s",
                rule.ToString().c_str(), rule.source_line,
                violations.front().message.c_str()));
}

Status CheckRangeRestricted(const datalog::Program& program) {
  for (const Rule& rule : program.rules()) {
    MAD_RETURN_IF_ERROR(CheckRuleRangeRestricted(rule));
  }
  return Status::OK();
}

}  // namespace analysis
}  // namespace mad
