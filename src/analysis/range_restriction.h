#ifndef MAD_ANALYSIS_RANGE_RESTRICTION_H_
#define MAD_ANALYSIS_RANGE_RESTRICTION_H_

#include <set>
#include <string>
#include <vector>

#include "analysis/violation.h"
#include "datalog/ast.h"
#include "util/status.h"

namespace mad {
namespace analysis {

/// Result of classifying one rule's variables per Definition 2.5.
struct VariableClassification {
  /// Variables bound to active-domain constants by positive occurrences.
  std::set<std::string> limited;
  /// Variables whose value is functionally determined by limited ones
  /// (cost arguments, aggregate results, arithmetic over such).
  std::set<std::string> quasi_limited;
};

/// Computes the limited / quasi-limited fixpoint of Definition 2.5 for one
/// rule.
VariableClassification ClassifyVariables(const datalog::Rule& rule);

/// Collects *every* range-restriction violation of one rule (Definition
/// 2.5), with a span pointing at the offending subgoal or argument. Empty
/// iff the rule is range-restricted.
std::vector<CheckViolation> CollectRangeRestrictionViolations(
    const datalog::Rule& rule);

/// Checks one rule for range restriction (Definition 2.5). Returns OK or an
/// AnalysisError naming the offending variable and position (first violation
/// only; use CollectRangeRestrictionViolations for all of them).
Status CheckRuleRangeRestricted(const datalog::Rule& rule);

/// Checks every rule of the program; reports the first violation.
Status CheckRangeRestricted(const datalog::Program& program);

}  // namespace analysis
}  // namespace mad

#endif  // MAD_ANALYSIS_RANGE_RESTRICTION_H_
