#include "analysis/termination.h"

#include "util/string_util.h"

namespace mad {
namespace analysis {

const char* TerminationVerdictName(TerminationVerdict v) {
  switch (v) {
    case TerminationVerdict::kGuaranteed:
      return "guaranteed";
    case TerminationVerdict::kBoundedChains:
      return "bounded-chains";
    case TerminationVerdict::kUnknown:
      return "unknown";
  }
  return "?";
}

bool TerminationReport::AllGuaranteed() const {
  for (const ComponentTermination& c : components) {
    if (c.verdict == TerminationVerdict::kUnknown) return false;
  }
  return true;
}

std::string TerminationReport::ToString() const {
  std::string out;
  for (const ComponentTermination& c : components) {
    out += StrPrintf("component %d: %s (%s)\n", c.component_index,
                     TerminationVerdictName(c.verdict), c.reason.c_str());
  }
  return out;
}

TerminationReport AnalyzeTermination(
    const datalog::Program& program, const DependencyGraph& graph,
    const absint::CertificateReport* certificates) {
  TerminationReport report;
  for (const Component& component : graph.components()) {
    ComponentTermination ct;
    ct.component_index = component.index;
    if (component.rule_indices.empty()) {
      ct.verdict = TerminationVerdict::kGuaranteed;
      ct.reason = "no rules";
    } else if (!component.recursive) {
      ct.verdict = TerminationVerdict::kGuaranteed;
      ct.reason = "non-recursive: a single pass suffices";
    } else {
      // Recursive: keys are from the finite active domain (Lemma 2.2), so
      // termination hinges on the cost lattices' chain lengths.
      ct.verdict = TerminationVerdict::kGuaranteed;
      ct.reason = "finite key space and finite ascending chains";
      for (const datalog::PredicateInfo* pred : component.predicates) {
        if (!pred->has_cost) continue;
        if (!pred->domain->HasFiniteAscendingChains()) {
          ct.verdict = TerminationVerdict::kUnknown;
          ct.reason = StrPrintf(
              "cost lattice '%s' of predicate '%s' admits infinite "
              "ascending chains; rely on max_iterations/epsilon",
              std::string(pred->domain->name()).c_str(), pred->name.c_str());
          break;
        }
      }
      if (ct.verdict == TerminationVerdict::kUnknown &&
          certificates != nullptr) {
        const absint::ComponentCertificate* cert =
            certificates->ForComponent(component.index);
        if (cert != nullptr && cert->chains_bounded) {
          ct.verdict = TerminationVerdict::kBoundedChains;
          ct.chain_height = cert->static_chain_height;
          ct.selective = cert->static_chain_height < 0;
          ct.reason =
              cert->static_chain_height >= 0
                  ? StrPrintf(
                        "infinite lattice, but the abstract fixpoint pins "
                        "every cost value to a finite integral interval "
                        "(chain height %lld)",
                        cert->static_chain_height)
                  : "infinite lattice, but all cost flows are selective: "
                    "derived values are drawn from the values at component "
                    "entry, bounding per-key chains";
        }
      }
    }
    report.components.push_back(std::move(ct));
  }
  return report;
}

}  // namespace analysis
}  // namespace mad
