#include "analysis/termination.h"

#include "util/string_util.h"

namespace mad {
namespace analysis {

const char* TerminationVerdictName(TerminationVerdict v) {
  switch (v) {
    case TerminationVerdict::kGuaranteed:
      return "guaranteed";
    case TerminationVerdict::kUnknown:
      return "unknown";
  }
  return "?";
}

bool TerminationReport::AllGuaranteed() const {
  for (const ComponentTermination& c : components) {
    if (c.verdict != TerminationVerdict::kGuaranteed) return false;
  }
  return true;
}

std::string TerminationReport::ToString() const {
  std::string out;
  for (const ComponentTermination& c : components) {
    out += StrPrintf("component %d: %s (%s)\n", c.component_index,
                     TerminationVerdictName(c.verdict), c.reason.c_str());
  }
  return out;
}

TerminationReport AnalyzeTermination(const datalog::Program& program,
                                     const DependencyGraph& graph) {
  TerminationReport report;
  for (const Component& component : graph.components()) {
    ComponentTermination ct;
    ct.component_index = component.index;
    if (component.rule_indices.empty()) {
      ct.verdict = TerminationVerdict::kGuaranteed;
      ct.reason = "no rules";
    } else if (!component.recursive) {
      ct.verdict = TerminationVerdict::kGuaranteed;
      ct.reason = "non-recursive: a single pass suffices";
    } else {
      // Recursive: keys are from the finite active domain (Lemma 2.2), so
      // termination hinges on the cost lattices' chain lengths.
      ct.verdict = TerminationVerdict::kGuaranteed;
      ct.reason = "finite key space and finite ascending chains";
      for (const datalog::PredicateInfo* pred : component.predicates) {
        if (!pred->has_cost) continue;
        if (!pred->domain->HasFiniteAscendingChains()) {
          ct.verdict = TerminationVerdict::kUnknown;
          ct.reason = StrPrintf(
              "cost lattice '%s' of predicate '%s' admits infinite "
              "ascending chains; rely on max_iterations/epsilon",
              std::string(pred->domain->name()).c_str(), pred->name.c_str());
          break;
        }
      }
    }
    report.components.push_back(std::move(ct));
  }
  return report;
}

}  // namespace analysis
}  // namespace mad
