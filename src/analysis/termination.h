#ifndef MAD_ANALYSIS_TERMINATION_H_
#define MAD_ANALYSIS_TERMINATION_H_

#include <string>
#include <vector>

#include "analysis/absint/certificate.h"
#include "analysis/dependency_graph.h"
#include "datalog/ast.h"

namespace mad {
namespace analysis {

/// Whether bottom-up evaluation of a component is guaranteed to reach its
/// fixpoint in finitely many rounds (Section 6.2).
enum class TerminationVerdict {
  /// Guaranteed: the language is function-free, so the active domain — and
  /// hence the key space — is finite, and every cost lattice in the
  /// component has finite ascending chains (or the component carries no
  /// cost values at all). Values can then only step finitely often.
  kGuaranteed,
  /// The lattice itself has infinite chains, but the abstract interpreter
  /// certified that the component's cost flows are selective (or its
  /// widened fixpoint is a finite integral interval): per-key chains are
  /// bounded by the distinct cost values in play, so the engine can derive
  /// a concrete round bound from the database at component entry.
  kBoundedChains,
  /// No guarantee from this analysis: some cost lattice admits infinite
  /// ascending chains (e.g. min over the reals with negative cycles, or
  /// Example 5.1's halfsum), so the iteration may need the engine's
  /// max_iterations / epsilon guards.
  kUnknown,
};

const char* TerminationVerdictName(TerminationVerdict v);

struct ComponentTermination {
  int component_index = -1;
  TerminationVerdict verdict = TerminationVerdict::kUnknown;
  std::string reason;
  /// For kBoundedChains: statically known chain height (e.g. 2 for a
  /// boolean lattice), or -1 when the height is |distinct cost values| at
  /// component entry and only known at runtime.
  long long chain_height = -1;
  /// For kBoundedChains: true when the bound comes from selective cost
  /// flows (min/max/and/or + pass-through copies, no arithmetic).
  bool selective = false;
};

struct TerminationReport {
  std::vector<ComponentTermination> components;

  /// True iff every component is kGuaranteed or kBoundedChains.
  bool AllGuaranteed() const;
  std::string ToString() const;
};

/// Conservative, sound termination analysis per Section 6.2: non-recursive
/// components always terminate (one pass); recursive components terminate
/// when the key space is finite (always true: the language is function-free
/// and range-restricted, Lemma 2.2) and every CDB cost value lives in a
/// lattice with finite ascending chains. When `certificates` is provided,
/// components whose lattice has infinite chains but whose certificate
/// proves bounded ascent are upgraded from kUnknown to kBoundedChains.
TerminationReport AnalyzeTermination(
    const datalog::Program& program, const DependencyGraph& graph,
    const absint::CertificateReport* certificates = nullptr);

}  // namespace analysis
}  // namespace mad

#endif  // MAD_ANALYSIS_TERMINATION_H_
