#include "analysis/typing/types.h"

#include <algorithm>
#include <optional>
#include <utility>

#include "util/string_util.h"

namespace mad {
namespace analysis {
namespace typing {

using datalog::Atom;
using datalog::CmpOp;
using datalog::ColumnType;
using datalog::Expr;
using datalog::PredicateInfo;
using datalog::Program;
using datalog::Rule;
using datalog::SourceSpan;
using datalog::Subgoal;
using datalog::Term;
using datalog::Value;

std::string TypeDesc::ToString() const {
  if (kind == ColumnType::kLattice && domain != nullptr) {
    return std::string(domain->name());
  }
  return ColumnTypeName(kind);
}

std::string TypeConflict::ToString() const {
  std::string where = pred != nullptr
                          ? StrPrintf("%s argument %d", pred->name.c_str(),
                                      column + 1)
                          : std::string("rule-local variable");
  return StrPrintf("%s: %s vs %s (%s)", where.c_str(),
                   existing.ToString().c_str(), incoming.ToString().c_str(),
                   detail.c_str());
}

namespace {

ColumnType KindOfValue(const Value& v) {
  switch (v.kind()) {
    case Value::Kind::kSymbol:
      return ColumnType::kSymbol;
    case Value::Kind::kInt:
      return ColumnType::kInt;
    case Value::Kind::kDouble:
      return ColumnType::kReal;
    case Value::Kind::kBool:
      return ColumnType::kBool;
    case Value::Kind::kSet:
      return ColumnType::kSet;
    default:
      return ColumnType::kUnknown;
  }
}

/// The carrier kind of a cost domain's elements, from its least element.
ColumnType DomainBaseKind(const lattice::CostDomain* d) {
  switch (d->Bottom().kind()) {
    case Value::Kind::kInt:
    case Value::Kind::kDouble:
      return ColumnType::kNumeric;
    case Value::Kind::kBool:
      return ColumnType::kBool;
    case Value::Kind::kSet:
      return ColumnType::kSet;
    case Value::Kind::kSymbol:
      return ColumnType::kSymbol;
    default:
      return ColumnType::kUnknown;
  }
}

bool IsNumericKind(ColumnType k) {
  return k == ColumnType::kInt || k == ColumnType::kReal ||
         k == ColumnType::kNumeric;
}

/// Joins two type descriptions; nullopt marks a genuine contradiction.
/// kNumeric is weak evidence ("must be a number") refined by kInt/kReal;
/// lattice elements absorb evidence matching their carrier kind; two
/// *different* numeric-carrier lattices are deliberately NOT a conflict
/// (cross-domain flow is MAD014's finding) and weaken to kNumeric.
std::optional<TypeDesc> JoinTypes(const TypeDesc& a, const TypeDesc& b) {
  if (a.kind == ColumnType::kUnknown) return b;
  if (b.kind == ColumnType::kUnknown) return a;
  if (a.kind == ColumnType::kConflict) return a;
  if (b.kind == ColumnType::kConflict) return b;

  if (a.kind == ColumnType::kLattice && b.kind == ColumnType::kLattice) {
    if (a.domain == b.domain) return a;
    ColumnType ab = DomainBaseKind(a.domain);
    ColumnType bb = DomainBaseKind(b.domain);
    if (ab == ColumnType::kNumeric && bb == ColumnType::kNumeric) {
      return TypeDesc{ColumnType::kNumeric, nullptr};
    }
    if (ab == bb) return TypeDesc{ab, nullptr};
    return std::nullopt;
  }
  if (a.kind == ColumnType::kLattice || b.kind == ColumnType::kLattice) {
    const TypeDesc& lat = a.kind == ColumnType::kLattice ? a : b;
    const TypeDesc& other = a.kind == ColumnType::kLattice ? b : a;
    ColumnType base = DomainBaseKind(lat.domain);
    if (base == ColumnType::kNumeric &&
        (IsNumericKind(other.kind) || other.kind == ColumnType::kBool)) {
      return lat;
    }
    if (base == ColumnType::kBool && (other.kind == ColumnType::kBool ||
                                      other.kind == ColumnType::kNumeric)) {
      return lat;
    }
    if (base == other.kind) return lat;
    return std::nullopt;
  }

  if (a.kind == b.kind) return a;
  // Numeric refinement and widening.
  if (a.kind == ColumnType::kNumeric &&
      (IsNumericKind(b.kind) || b.kind == ColumnType::kBool)) {
    return b;
  }
  if (b.kind == ColumnType::kNumeric &&
      (IsNumericKind(a.kind) || a.kind == ColumnType::kBool)) {
    return a;
  }
  if ((a.kind == ColumnType::kInt && b.kind == ColumnType::kReal) ||
      (a.kind == ColumnType::kReal && b.kind == ColumnType::kInt)) {
    return TypeDesc{ColumnType::kNumeric, nullptr};
  }
  return std::nullopt;
}

/// Provenance of one piece of evidence, for conflict reports.
struct Evidence {
  bool constant = false;
  int rule_index = -1;
  SourceSpan span;
  std::string detail;
};

/// Union-find over type equivalence classes: one node per predicate column
/// (global) and per rule-local variable (fresh per rule).
class Inference {
 public:
  explicit Inference(const Program& program) : program_(program) {}

  void Run() {
    // Declared cost columns.
    for (const auto& p : program_.predicates()) {
      if (p->has_cost) {
        Apply(ColumnNode(p.get(), p->cost_position()),
              TypeDesc{ColumnType::kLattice, p->domain},
              {false, -1, SourceSpan{},
               StrPrintf("declared cost column of %s", p->name.c_str())});
      }
    }
    // Inline facts.
    for (const datalog::Fact& f : program_.facts()) {
      for (size_t i = 0; i < f.key.size(); ++i) {
        Apply(ColumnNode(f.pred, static_cast<int>(i)),
              TypeDesc{KindOfValue(f.key[i]), nullptr},
              {true, -1, SourceSpan{},
               StrPrintf("inline fact constant %s",
                         f.key[i].ToString().c_str())});
      }
      if (f.cost.has_value()) {
        Apply(ColumnNode(f.pred, f.pred->cost_position()),
              TypeDesc{KindOfValue(*f.cost), nullptr},
              {true, -1, SourceSpan{},
               StrPrintf("inline fact cost %s", f.cost->ToString().c_str())});
      }
    }
    // Rules.
    const auto& rules = program_.rules();
    for (size_t ri = 0; ri < rules.size(); ++ri) {
      var_nodes_.clear();
      rule_index_ = static_cast<int>(ri);
      ProcessRule(rules[ri]);
    }
    Emit();
  }

  std::map<const PredicateInfo*, std::vector<TypeDesc>>& columns() {
    return out_columns_;
  }
  std::vector<TypeConflict>& conflicts() { return conflicts_; }

 private:
  struct Node {
    int parent = -1;
    int rank = 0;
    TypeDesc type;
    const PredicateInfo* anchor_pred = nullptr;  ///< first column in class
    int anchor_col = -1;
  };

  int NewNode() {
    int id = static_cast<int>(nodes_.size());
    Node n;
    n.parent = id;
    nodes_.push_back(std::move(n));
    return id;
  }

  int ColumnNode(const PredicateInfo* pred, int col) {
    auto key = std::make_pair(pred, col);
    auto it = column_nodes_.find(key);
    if (it != column_nodes_.end()) return it->second;
    int id = NewNode();
    nodes_[id].anchor_pred = pred;
    nodes_[id].anchor_col = col;
    column_nodes_.emplace(key, id);
    return id;
  }

  int VarNode(const std::string& name) {
    auto it = var_nodes_.find(name);
    if (it != var_nodes_.end()) return it->second;
    int id = NewNode();
    var_nodes_.emplace(name, id);
    return id;
  }

  int Find(int x) {
    while (nodes_[x].parent != x) {
      nodes_[x].parent = nodes_[nodes_[x].parent].parent;
      x = nodes_[x].parent;
    }
    return x;
  }

  void Conflict(const Node& root, const TypeDesc& incoming,
                const Evidence& ev) {
    TypeConflict c;
    c.pred = root.anchor_pred;
    c.column = root.anchor_col;
    c.existing = root.type;
    c.incoming = incoming;
    c.constant_evidence = ev.constant;
    c.rule_index = ev.rule_index;
    c.span = ev.span;
    c.detail = ev.detail;
    conflicts_.push_back(std::move(c));
  }

  /// Joins `t` into x's class; a failed join records a conflict once and
  /// poisons the class with kConflict.
  void Apply(int x, const TypeDesc& t, const Evidence& ev) {
    Node& root = nodes_[Find(x)];
    std::optional<TypeDesc> joined = JoinTypes(root.type, t);
    if (!joined.has_value()) {
      Conflict(root, t, ev);
      root.type = TypeDesc{ColumnType::kConflict, nullptr};
      return;
    }
    root.type = *joined;
  }

  void Union(int a, int b, const Evidence& ev) {
    int ra = Find(a);
    int rb = Find(b);
    if (ra == rb) return;
    std::optional<TypeDesc> joined =
        JoinTypes(nodes_[ra].type, nodes_[rb].type);
    if (nodes_[ra].rank < nodes_[rb].rank) std::swap(ra, rb);
    Node& keep = nodes_[ra];
    Node& gone = nodes_[rb];
    if (!joined.has_value()) {
      // Anchor the report to whichever side names a column.
      Conflict(keep.anchor_pred != nullptr ? keep : gone,
               keep.anchor_pred != nullptr ? gone.type : keep.type, ev);
      keep.type = TypeDesc{ColumnType::kConflict, nullptr};
    } else {
      keep.type = *joined;
    }
    if (keep.anchor_pred == nullptr) {
      keep.anchor_pred = gone.anchor_pred;
      keep.anchor_col = gone.anchor_col;
    }
    gone.parent = ra;
    if (keep.rank == gone.rank) ++keep.rank;
  }

  void ProcessAtom(const Atom& atom) {
    if (atom.pred == nullptr) return;
    for (size_t i = 0; i < atom.args.size(); ++i) {
      const Term& t = atom.args[i];
      int col = ColumnNode(atom.pred, static_cast<int>(i));
      if (t.is_const()) {
        Apply(col, TypeDesc{KindOfValue(t.constant), nullptr},
              {true, rule_index_, t.span,
               StrPrintf("constant %s at argument %d of %s",
                         t.constant.ToString().c_str(),
                         static_cast<int>(i) + 1, atom.pred->name.c_str())});
      } else {
        Union(VarNode(t.var), col,
              {false, rule_index_, t.span,
               StrPrintf("variable %s at argument %d of %s", t.var.c_str(),
                         static_cast<int>(i) + 1, atom.pred->name.c_str())});
      }
    }
  }

  void NumericVars(const Expr& e, const Evidence& ev) {
    std::vector<std::string> vars;
    e.CollectVars(&vars);
    for (const std::string& v : vars) {
      Apply(VarNode(v), TypeDesc{ColumnType::kNumeric, nullptr}, ev);
    }
  }

  void ProcessBuiltin(const datalog::BuiltinSubgoal& b, const SourceSpan& span) {
    Evidence ev{false, rule_index_, span,
                StrPrintf("builtin %s", b.ToString().c_str())};
    const bool lhs_bare = b.lhs->kind == Expr::Kind::kVar;
    const bool rhs_bare = b.rhs->kind == Expr::Kind::kVar;
    // Variables inside arithmetic must be numbers.
    if (!lhs_bare && b.lhs->kind != Expr::Kind::kConst) NumericVars(*b.lhs, ev);
    if (!rhs_bare && b.rhs->kind != Expr::Kind::kConst) NumericVars(*b.rhs, ev);
    // Ordered comparisons force bare operands numeric too.
    if (b.op == CmpOp::kLt || b.op == CmpOp::kLe || b.op == CmpOp::kGt ||
        b.op == CmpOp::kGe) {
      if (lhs_bare) Apply(VarNode(b.lhs->var), {ColumnType::kNumeric, nullptr}, ev);
      if (rhs_bare) Apply(VarNode(b.rhs->var), {ColumnType::kNumeric, nullptr}, ev);
    }
    if (b.op != CmpOp::kEq) return;
    // Equalities: unify bare variables; constants type their variable side.
    if (lhs_bare && rhs_bare) {
      Union(VarNode(b.lhs->var), VarNode(b.rhs->var), ev);
      return;
    }
    auto eq_side = [&](bool bare, const Expr& var_side, const Expr& other) {
      if (!bare) return;
      int v = VarNode(var_side.var);
      if (other.kind == Expr::Kind::kConst) {
        Apply(v, TypeDesc{KindOfValue(other.constant), nullptr},
              {true, rule_index_, span,
               StrPrintf("equality with constant %s",
                         other.constant.ToString().c_str())});
      } else {
        Apply(v, TypeDesc{ColumnType::kNumeric, nullptr}, ev);
      }
    };
    eq_side(lhs_bare, *b.lhs, *b.rhs);
    eq_side(rhs_bare, *b.rhs, *b.lhs);
  }

  void ProcessRule(const Rule& rule) {
    ProcessAtom(rule.head);
    for (const Subgoal& sg : rule.body) {
      switch (sg.kind) {
        case Subgoal::Kind::kAtom:
        case Subgoal::Kind::kNegatedAtom:
          ProcessAtom(sg.atom);
          break;
        case Subgoal::Kind::kAggregate: {
          const auto& agg = sg.aggregate;
          for (const Atom& a : agg.atoms) ProcessAtom(a);
          if (agg.result.is_var() && agg.function != nullptr &&
              agg.function->output_domain() != nullptr) {
            Apply(VarNode(agg.result.var),
                  TypeDesc{ColumnType::kLattice, agg.function->output_domain()},
                  {false, rule_index_, agg.span,
                   StrPrintf("result of aggregate %s",
                             agg.function_name.c_str())});
          }
          break;
        }
        case Subgoal::Kind::kBuiltin:
          ProcessBuiltin(sg.builtin, rule.span);
          break;
      }
    }
  }

  void Emit() {
    for (const auto& p : program_.predicates()) {
      std::vector<TypeDesc> cols(p->arity);
      for (int i = 0; i < p->arity; ++i) {
        auto it = column_nodes_.find(std::make_pair(p.get(), i));
        if (it != column_nodes_.end()) cols[i] = nodes_[Find(it->second)].type;
      }
      out_columns_.emplace(p.get(), std::move(cols));
    }
  }

  const Program& program_;
  std::vector<Node> nodes_;
  std::map<std::pair<const PredicateInfo*, int>, int> column_nodes_;
  std::map<std::string, int> var_nodes_;  ///< rule-local, cleared per rule
  int rule_index_ = -1;
  std::vector<TypeConflict> conflicts_;
  std::map<const PredicateInfo*, std::vector<TypeDesc>> out_columns_;
};

}  // namespace

const std::vector<TypeDesc>* TypeReport::ForPredicate(
    const PredicateInfo* pred) const {
  auto it = columns_.find(pred);
  return it == columns_.end() ? nullptr : &it->second;
}

void TypeReport::Annotate(const Program& program) const {
  for (const auto& p : program.predicates()) {
    const std::vector<TypeDesc>* cols = ForPredicate(p.get());
    p->col_types.assign(p->arity, ColumnType::kUnknown);
    if (cols == nullptr) continue;
    for (int i = 0; i < p->arity && i < static_cast<int>(cols->size()); ++i) {
      p->col_types[i] = (*cols)[i].kind;
    }
  }
}

std::vector<std::pair<const PredicateInfo*, std::vector<TypeDesc>>>
TypeReport::Rows() const {
  // columns_ is keyed by pointer; emit in predicate-id order so dumps follow
  // declaration order deterministically.
  std::vector<std::pair<const PredicateInfo*, std::vector<TypeDesc>>> rows(
      columns_.begin(), columns_.end());
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    return a.first->id < b.first->id;
  });
  return rows;
}

std::string TypeReport::ToString() const {
  std::string out;
  for (const auto& [pred, cols] : Rows()) {
    out += pred->name;
    out += "(";
    for (size_t i = 0; i < cols.size(); ++i) {
      if (i > 0) out += ", ";
      out += cols[i].ToString();
    }
    out += ")\n";
  }
  return out;
}

TypeReport InferTypes(const Program& program) {
  TypeReport report;
  Inference inf(program);
  inf.Run();
  report.columns_ = std::move(inf.columns());
  report.conflicts_ = std::move(inf.conflicts());
  return report;
}

}  // namespace typing
}  // namespace analysis
}  // namespace mad
