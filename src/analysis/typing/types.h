#ifndef MAD_ANALYSIS_TYPING_TYPES_H_
#define MAD_ANALYSIS_TYPING_TYPES_H_

#include <map>
#include <string>
#include <vector>

#include "datalog/ast.h"
#include "datalog/source_span.h"

namespace mad {
namespace analysis {
namespace typing {

/// One inferred type: a ColumnType kind plus, for kLattice, the cost domain
/// the element ranges over.
struct TypeDesc {
  datalog::ColumnType kind = datalog::ColumnType::kUnknown;
  /// Set iff kind == kLattice.
  const lattice::CostDomain* domain = nullptr;

  /// "symbol", "int", ..., or the domain name ("min_real") for lattices.
  std::string ToString() const;
  bool operator==(const TypeDesc& o) const {
    return kind == o.kind && domain == o.domain;
  }
};

/// A contradiction found while unifying type evidence: two incompatible
/// TypeDescs flowed into the same column / variable equivalence class.
struct TypeConflict {
  /// The predicate column the class is anchored to (the first column merged
  /// into the class); null if the class contains only rule-local variables.
  const datalog::PredicateInfo* pred = nullptr;
  int column = -1;  ///< 0-based argument position; -1 iff pred is null
  TypeDesc existing;
  TypeDesc incoming;
  /// True when the offending evidence is a literal constant (a fact argument
  /// or a rule constant) rather than variable dataflow. Splits MAD020
  /// (constant/type mismatch) from MAD019 (conflicting uses).
  bool constant_evidence = false;
  /// Rule that supplied the offending evidence; -1 for fact evidence.
  int rule_index = -1;
  /// Span of the offending evidence (invalid for inline-fact evidence).
  datalog::SourceSpan span;
  std::string detail;  ///< human-readable "what flowed where"

  std::string ToString() const;
};

/// Result of whole-program type inference: per-predicate column types plus
/// every conflict encountered. Conflicted classes resolve to kConflict.
class TypeReport {
 public:
  /// Inferred types for `pred`'s columns (size == arity), or null if the
  /// predicate was not seen (never occurs in facts or rules).
  const std::vector<TypeDesc>* ForPredicate(
      const datalog::PredicateInfo* pred) const;

  const std::vector<TypeConflict>& conflicts() const { return conflicts_; }

  /// (predicate, column types) pairs in declaration (predicate-id) order.
  std::vector<std::pair<const datalog::PredicateInfo*, std::vector<TypeDesc>>>
  Rows() const;

  /// Stamps ColumnType kinds into PredicateInfo::col_types for every
  /// predicate of `program` (kUnknown columns included).
  void Annotate(const datalog::Program& program) const;

  /// One line per predicate: "arc(symbol, symbol, min_real)".
  std::string ToString() const;

 private:
  friend TypeReport InferTypes(const datalog::Program& program);
  std::map<const datalog::PredicateInfo*, std::vector<TypeDesc>> columns_;
  std::vector<TypeConflict> conflicts_;
};

/// Flow-insensitive column type inference over EDB facts and rule dataflow.
/// Evidence sources, in order of application:
///   - declarations: a cost column is kLattice(domain);
///   - inline facts: each argument contributes its Value kind;
///   - rule constants: each literal argument contributes its kind;
///   - variables: an occurrence in an atom unifies the variable's class with
///     the column's class (rule-locally; columns are global);
///   - builtins: arithmetic operands and ordered comparisons contribute
///     kNumeric; `V = <expr>` equalities unify or constrain V;
///   - aggregates: the multiset variable unifies with the inner cost
///     columns; the result variable gets the function's output domain.
/// Joins are tolerant where evaluation is: int⊔real = numeric, numeric
/// evidence is absorbed by any numeric-carrier lattice, and two different
/// numeric-carrier lattices join to kNumeric (cross-domain *flow* is
/// MAD014's business, not a type conflict). Everything else cross-kind is a
/// conflict; conflicted classes absorb further evidence silently so each
/// contradiction is reported once.
TypeReport InferTypes(const datalog::Program& program);

}  // namespace typing
}  // namespace analysis
}  // namespace mad

#endif  // MAD_ANALYSIS_TYPING_TYPES_H_
