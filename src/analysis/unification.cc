#include "analysis/unification.h"

#include <algorithm>
#include <functional>

namespace mad {
namespace analysis {

using datalog::AggregateSubgoal;
using datalog::Atom;
using datalog::Expr;
using datalog::IntegrityConstraint;
using datalog::Rule;
using datalog::Subgoal;
using datalog::Term;

Term Resolve(const Term& t, const Substitution& s) {
  Term cur = t;
  while (cur.is_var()) {
    auto it = s.find(cur.var);
    if (it == s.end()) break;
    cur = it->second;
  }
  return cur;
}

bool UnifyTerms(const Term& a, const Term& b, Substitution* s) {
  Term ra = Resolve(a, *s);
  Term rb = Resolve(b, *s);
  if (ra.is_var()) {
    if (rb.is_var() && rb.var == ra.var) return true;
    (*s)[ra.var] = rb;
    return true;
  }
  if (rb.is_var()) {
    (*s)[rb.var] = ra;
    return true;
  }
  return ra.constant == rb.constant;
}

std::optional<Substitution> UnifyHeadsOnKeys(const Atom& a, const Atom& b) {
  if (a.pred != b.pred) return std::nullopt;
  Substitution s;
  for (int i = 0; i < a.pred->key_arity(); ++i) {
    if (!UnifyTerms(a.args[i], b.args[i], &s)) return std::nullopt;
  }
  return s;
}

Term ApplySubst(const Term& t, const Substitution& s) { return Resolve(t, s); }

Atom ApplySubst(const Atom& a, const Substitution& s) {
  Atom out = a;
  for (Term& t : out.args) t = Resolve(t, s);
  return out;
}

namespace {

std::unique_ptr<Expr> ApplySubstExpr(const Expr& e, const Substitution& s) {
  if (e.kind == Expr::Kind::kVar) {
    Term t = Resolve(Term::Var(e.var), s);
    return t.is_var() ? Expr::Var(t.var) : Expr::Const(t.constant);
  }
  auto out = e.Clone();
  if (out->lhs) out->lhs = ApplySubstExpr(*out->lhs, s);
  if (out->rhs) out->rhs = ApplySubstExpr(*out->rhs, s);
  return out;
}

}  // namespace

Subgoal ApplySubst(const Subgoal& sg, const Substitution& s) {
  Subgoal out = sg.Clone();
  switch (out.kind) {
    case Subgoal::Kind::kAtom:
    case Subgoal::Kind::kNegatedAtom:
      out.atom = ApplySubst(out.atom, s);
      break;
    case Subgoal::Kind::kAggregate: {
      out.aggregate.result = Resolve(out.aggregate.result, s);
      for (Atom& a : out.aggregate.atoms) a = ApplySubst(a, s);
      // Local and multiset variables are bound variables of the subgoal and
      // are never renamed by an outer substitution in our callers (callers
      // rename whole rules first, which keeps namespaces disjoint).
      Term mv = Resolve(Term::Var(out.aggregate.multiset_var), s);
      if (mv.is_var()) out.aggregate.multiset_var = mv.var;
      break;
    }
    case Subgoal::Kind::kBuiltin:
      out.builtin.lhs = ApplySubstExpr(*out.builtin.lhs, s);
      out.builtin.rhs = ApplySubstExpr(*out.builtin.rhs, s);
      break;
  }
  return out;
}

Rule ApplySubst(const Rule& r, const Substitution& s) {
  Rule out;
  out.source_line = r.source_line;
  out.head = ApplySubst(r.head, s);
  for (const Subgoal& sg : r.body) out.body.push_back(ApplySubst(sg, s));
  out.Finalize();
  return out;
}

Rule RenameVariables(const Rule& r, const std::string& suffix) {
  Substitution s;
  for (const std::string& v : r.AllVars()) s[v] = Term::Var(v + suffix);
  return ApplySubst(r, s);
}

// ---------------------------------------------------------------------------
// Containment mappings (Definition 2.8)
// ---------------------------------------------------------------------------

namespace {

/// Mapping search state: h maps variables of the source rule to terms of the
/// target rule. Mapping a term means: constants map to equal constants,
/// variables map consistently to one target term.
struct MappingState {
  std::map<std::string, Term> h;

  bool MapTerm(const Term& src, const Term& dst) {
    if (src.is_const()) {
      return dst.is_const() && src.constant == dst.constant;
    }
    auto it = h.find(src.var);
    if (it != h.end()) return it->second == dst;
    h.emplace(src.var, dst);
    return true;
  }
};

bool MapAtom(const Atom& src, const Atom& dst, MappingState* state) {
  if (src.pred != dst.pred) return false;
  MappingState saved = *state;
  for (size_t i = 0; i < src.args.size(); ++i) {
    if (!state->MapTerm(src.args[i], dst.args[i])) {
      *state = saved;
      return false;
    }
  }
  return true;
}

bool MapExpr(const Expr& src, const Expr& dst, MappingState* state) {
  if (src.kind == Expr::Kind::kVar) {
    Term dst_term = dst.kind == Expr::Kind::kVar
                        ? Term::Var(dst.var)
                        : (dst.kind == Expr::Kind::kConst
                               ? Term::Const(dst.constant)
                               : Term());
    if (dst.kind != Expr::Kind::kVar && dst.kind != Expr::Kind::kConst) {
      return false;
    }
    return state->MapTerm(Term::Var(src.var), dst_term);
  }
  if (src.kind != dst.kind) return false;
  if (src.kind == Expr::Kind::kConst) return src.constant == dst.constant;
  return MapExpr(*src.lhs, *dst.lhs, state) &&
         MapExpr(*src.rhs, *dst.rhs, state);
}

/// Matches the inner atom multiset of an aggregate subgoal (order
/// insensitive, backtracking).
bool MapAggregateAtoms(const std::vector<Atom>& src,
                       const std::vector<Atom>& dst, size_t i,
                       std::vector<bool>* used, MappingState* state) {
  if (i == src.size()) return true;
  for (size_t j = 0; j < dst.size(); ++j) {
    if ((*used)[j]) continue;
    MappingState saved = *state;
    if (MapAtom(src[i], dst[j], state)) {
      (*used)[j] = true;
      if (MapAggregateAtoms(src, dst, i + 1, used, state)) return true;
      (*used)[j] = false;
    }
    *state = saved;
  }
  return false;
}

bool MapSubgoal(const Subgoal& src, const Subgoal& dst, MappingState* state) {
  if (src.kind != dst.kind) return false;
  MappingState saved = *state;
  bool ok = false;
  switch (src.kind) {
    case Subgoal::Kind::kAtom:
    case Subgoal::Kind::kNegatedAtom:
      ok = MapAtom(src.atom, dst.atom, state);
      break;
    case Subgoal::Kind::kAggregate: {
      const AggregateSubgoal& a = src.aggregate;
      const AggregateSubgoal& b = dst.aggregate;
      if (a.function_name != b.function_name || a.restricted != b.restricted ||
          a.atoms.size() != b.atoms.size()) {
        break;
      }
      if (!state->MapTerm(a.result, b.result)) break;
      if (!a.multiset_var.empty() &&
          !state->MapTerm(Term::Var(a.multiset_var),
                          Term::Var(b.multiset_var))) {
        break;
      }
      std::vector<bool> used(b.atoms.size(), false);
      ok = MapAggregateAtoms(a.atoms, b.atoms, 0, &used, state);
      break;
    }
    case Subgoal::Kind::kBuiltin:
      ok = src.builtin.op == dst.builtin.op &&
           MapExpr(*src.builtin.lhs, *dst.builtin.lhs, state) &&
           MapExpr(*src.builtin.rhs, *dst.builtin.rhs, state);
      break;
  }
  if (!ok) *state = saved;
  return ok;
}

bool MapBody(const std::vector<Subgoal>& src, const std::vector<Subgoal>& dst,
             size_t i, MappingState* state) {
  if (i == src.size()) return true;
  for (const Subgoal& candidate : dst) {
    MappingState saved = *state;
    if (MapSubgoal(src[i], candidate, state)) {
      if (MapBody(src, dst, i + 1, state)) return true;
    }
    *state = saved;
  }
  return false;
}

}  // namespace

bool HasContainmentMapping(const Rule& r1, const Rule& r2) {
  MappingState state;
  if (!MapAtom(r1.head, r2.head, &state)) return false;
  return MapBody(r1.body, r2.body, 0, &state);
}

bool ContainsConstraintInstance(const std::vector<Subgoal>& body,
                                const IntegrityConstraint& constraint) {
  MappingState state;
  return MapBody(constraint.body, body, 0, &state);
}

}  // namespace analysis
}  // namespace mad
