#ifndef MAD_ANALYSIS_UNIFICATION_H_
#define MAD_ANALYSIS_UNIFICATION_H_

#include <map>
#include <optional>
#include <string>

#include "datalog/ast.h"

namespace mad {
namespace analysis {

/// A substitution over rule variables. Terms are flat (no function symbols),
/// so unification is the simple variable/constant case.
using Substitution = std::map<std::string, datalog::Term>;

/// Resolves `t` through `s` until it is a constant or an unbound variable.
datalog::Term Resolve(const datalog::Term& t, const Substitution& s);

/// Extends `s` to make `a` and `b` equal; returns false on clash.
bool UnifyTerms(const datalog::Term& a, const datalog::Term& b,
                Substitution* s);

/// Most general unifier of the two atoms' *non-cost* arguments (the heads
/// comparison of Definition 2.10 ignores cost arguments). Returns
/// std::nullopt if the predicates differ or the keys clash.
std::optional<Substitution> UnifyHeadsOnKeys(const datalog::Atom& a,
                                             const datalog::Atom& b);

/// Applies `s` (fully resolved) to terms / atoms / subgoals / rules.
datalog::Term ApplySubst(const datalog::Term& t, const Substitution& s);
datalog::Atom ApplySubst(const datalog::Atom& a, const Substitution& s);
datalog::Subgoal ApplySubst(const datalog::Subgoal& sg, const Substitution& s);
datalog::Rule ApplySubst(const datalog::Rule& r, const Substitution& s);

/// Renames every variable of `r` by appending `suffix`, so two rules can be
/// unified without accidental capture.
datalog::Rule RenameVariables(const datalog::Rule& r,
                              const std::string& suffix);

/// Searches for a containment mapping (Definition 2.8) from `r1` to `r2`:
/// a variable mapping h with h(head(r1)) = head(r2) and every subgoal of r1
/// mapped onto some subgoal of r2. Aggregate subgoals must match in function,
/// form and (up to reordering) inner atoms; built-ins must match structurally.
bool HasContainmentMapping(const datalog::Rule& r1, const datalog::Rule& r2);

/// True iff the conjunction `body` contains an instance of `constraint`
/// (Definition 2.10 case 2): there is a substitution of the constraint's
/// variables by terms of `body` making every constraint subgoal literally
/// present.
bool ContainsConstraintInstance(
    const std::vector<datalog::Subgoal>& body,
    const datalog::IntegrityConstraint& constraint);

}  // namespace analysis
}  // namespace mad

#endif  // MAD_ANALYSIS_UNIFICATION_H_
