#ifndef MAD_ANALYSIS_VIOLATION_H_
#define MAD_ANALYSIS_VIOLATION_H_

#include <string>
#include <vector>

#include "datalog/source_span.h"

namespace mad {
namespace analysis {

/// One violation found by a static check, before it is turned into either a
/// first-failure Status (the legacy Check* entry points) or a structured
/// lint::Diagnostic (the pass manager). `message` carries only the detail —
/// the caller prefixes the rule/line context it wants.
struct CheckViolation {
  std::string message;
  /// Most specific source region available: the offending term or atom when
  /// known, otherwise the whole rule.
  datalog::SourceSpan span;
};

}  // namespace analysis
}  // namespace mad

#endif  // MAD_ANALYSIS_VIOLATION_H_
