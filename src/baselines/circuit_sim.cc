#include "baselines/circuit_sim.h"

namespace mad {
namespace baselines {

CircuitResult SimulateCircuit(const Circuit& c) {
  CircuitResult out;
  out.wire_values.assign(c.num_wires, false);
  for (int i = 0; i < c.num_inputs; ++i) {
    out.wire_values[i] = c.input_values[i];
  }
  bool changed = true;
  while (changed) {
    changed = false;
    ++out.iterations;
    for (const Circuit::Gate& g : c.gates) {
      bool v = g.type == Circuit::GateType::kAnd;
      for (int w : g.input_wires) {
        if (g.type == Circuit::GateType::kAnd) {
          v = v && out.wire_values[w];
        } else {
          v = v || out.wire_values[w];
        }
      }
      // Monotone update only (0 -> 1); the default-value semantics never
      // lowers a wire.
      if (v && !out.wire_values[g.output_wire]) {
        out.wire_values[g.output_wire] = true;
        changed = true;
      }
    }
  }
  return out;
}

}  // namespace baselines
}  // namespace mad
