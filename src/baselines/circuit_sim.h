#ifndef MAD_BASELINES_CIRCUIT_SIM_H_
#define MAD_BASELINES_CIRCUIT_SIM_H_

#include <string>
#include <vector>

namespace mad {
namespace baselines {

/// A boolean circuit of AND/OR gates with arbitrary fan-in/fan-out and
/// possibly cyclic wiring (Example 4.4). Wires 0..num_inputs-1 are primary
/// inputs; wires num_inputs..num_wires-1 are gate outputs.
struct Circuit {
  enum class GateType { kAnd, kOr };
  struct Gate {
    GateType type = GateType::kAnd;
    int output_wire = 0;
    std::vector<int> input_wires;
  };

  int num_wires = 0;
  int num_inputs = 0;
  std::vector<bool> input_values;  ///< size num_inputs
  std::vector<Gate> gates;

  static std::string WireName(int w) { return "w" + std::to_string(w); }
};

/// Result of the direct least-fixpoint simulation.
struct CircuitResult {
  std::vector<bool> wire_values;  ///< size num_wires
  int iterations = 0;
};

/// Direct minimal-fixpoint simulation: every wire starts at the default
/// value 0 (false) and gates are re-evaluated until stable. Because values
/// only flip 0 -> 1, this computes the paper's minimal behaviour — a cyclic
/// AND gate feeding itself stays false.
CircuitResult SimulateCircuit(const Circuit& c);

}  // namespace baselines
}  // namespace mad

#endif  // MAD_BASELINES_CIRCUIT_SIM_H_
