#include "baselines/company_control.h"

namespace mad {
namespace baselines {

ControlResult SolveCompanyControl(const OwnershipNetwork& net) {
  int n = net.num_companies;
  ControlResult out;
  out.controls.assign(n, std::vector<bool>(n, false));
  out.controlled_fraction.assign(n, std::vector<double>(n, 0.0));

  bool changed = true;
  while (changed) {
    changed = false;
    ++out.iterations;
    for (int x = 0; x < n; ++x) {
      for (int y = 0; y < n; ++y) {
        double m = net.shares[x][y];
        for (int z = 0; z < n; ++z) {
          // z == x contributes through the first cv rule already; the
          // Datalog program keys cv by (x, z, y), so it is not re-counted.
          if (z != x && out.controls[x][z]) m += net.shares[z][y];
        }
        if (m > out.controlled_fraction[x][y]) {
          out.controlled_fraction[x][y] = m;
          changed = true;
        }
        if (m > 0.5 && !out.controls[x][y]) {
          out.controls[x][y] = true;
          changed = true;
        }
      }
    }
  }
  return out;
}

}  // namespace baselines
}  // namespace mad
