#ifndef MAD_BASELINES_COMPANY_CONTROL_H_
#define MAD_BASELINES_COMPANY_CONTROL_H_

#include <vector>

#include "baselines/graph.h"

namespace mad {
namespace baselines {

/// An ownership network: shares[x][y] is the fraction of company y's shares
/// owned directly by company x (Example 2.7's s relation).
struct OwnershipNetwork {
  int num_companies = 0;
  /// Dense matrix; entries in [0, 1], column sums <= 1.
  std::vector<std::vector<double>> shares;

  void Resize(int n) {
    num_companies = n;
    shares.assign(n, std::vector<double>(n, 0.0));
  }
  static std::string CompanyName(int i) { return "c" + std::to_string(i); }
};

/// Result of the direct company-control fixpoint.
struct ControlResult {
  /// controls[x][y]: x controls y (Example 2.7's c relation).
  std::vector<std::vector<bool>> controls;
  /// controlled_fraction[x][y]: fraction of y controlled by x directly or
  /// through controlled intermediaries (the m relation).
  std::vector<std::vector<double>> controlled_fraction;
  int iterations = 0;
};

/// Direct iterative solver for Example 2.7, independent of the Datalog
/// engine: repeatedly recomputes m(x, y) = Σ_{z ∈ {x} ∪ controls(x)} s(z, y)
/// and c(x, y) = [m(x, y) > 0.5] until stable. Monotone, so the fixpoint is
/// the paper's least model.
ControlResult SolveCompanyControl(const OwnershipNetwork& net);

}  // namespace baselines
}  // namespace mad

#endif  // MAD_BASELINES_COMPANY_CONTROL_H_
