#include "baselines/fully_defined.h"

#include <algorithm>
#include <cassert>

#include "lattice/cost_domain.h"
#include "util/string_util.h"

namespace mad {
namespace baselines {

using datalog::AggregateSubgoal;
using datalog::Atom;
using datalog::CmpOp;
using datalog::Expr;
using datalog::PredicateInfo;
using datalog::Program;
using datalog::Relation;
using datalog::Rule;
using datalog::Subgoal;
using datalog::Term;
using datalog::Tuple;
using datalog::Value;

namespace {

using Binding = std::map<std::string, Value>;

/// Evaluates an arithmetic expression under `binding`; nullopt when a
/// variable is unbound or the arithmetic is undefined.
std::optional<Value> EvalExpr(const Expr& e, const Binding& binding) {
  switch (e.kind) {
    case Expr::Kind::kConst:
      return e.constant;
    case Expr::Kind::kVar: {
      auto it = binding.find(e.var);
      if (it == binding.end()) return std::nullopt;
      return it->second;
    }
    default: {
      auto l = EvalExpr(*e.lhs, binding);
      auto r = EvalExpr(*e.rhs, binding);
      if (!l || !r) return std::nullopt;
      if (!(l->is_numeric() || l->is_bool()) ||
          !(r->is_numeric() || r->is_bool())) {
        return std::nullopt;
      }
      double a = l->AsDouble();
      double b = r->AsDouble();
      switch (e.kind) {
        case Expr::Kind::kAdd:
          return Value::Real(a + b);
        case Expr::Kind::kSub:
          return Value::Real(a - b);
        case Expr::Kind::kMul:
          return Value::Real(a * b);
        case Expr::Kind::kDiv:
          if (b == 0) return std::nullopt;
          return Value::Real(a / b);
        case Expr::Kind::kMin2:
          return Value::Real(std::min(a, b));
        case Expr::Kind::kMax2:
          return Value::Real(std::max(a, b));
        default:
          return std::nullopt;
      }
    }
  }
}

bool EvalCompare(CmpOp op, const Value& a, const Value& b) {
  bool numeric = (a.is_numeric() || a.is_bool()) &&
                 (b.is_numeric() || b.is_bool());
  if (numeric) {
    int c = Value::NumericCompare(a, b);
    switch (op) {
      case CmpOp::kEq:
        return c == 0;
      case CmpOp::kNe:
        return c != 0;
      case CmpOp::kLt:
        return c < 0;
      case CmpOp::kLe:
        return c <= 0;
      case CmpOp::kGt:
        return c > 0;
      case CmpOp::kGe:
        return c >= 0;
    }
  }
  switch (op) {
    case CmpOp::kEq:
      return a == b;
    case CmpOp::kNe:
      return !(a == b);
    default:
      return false;
  }
}

/// Binds `term` to `value` or checks consistency; returns the variable name
/// newly bound (to undo later), or nullopt on mismatch / no-op.
bool BindTerm(const Term& term, const Value& value, Binding* binding,
              std::vector<std::string>* trail) {
  if (term.is_const()) {
    // Cost constants may need domain normalization; key constants compare
    // directly. Callers handle cost positions separately, so plain equality
    // suffices here.
    return term.constant == value;
  }
  auto it = binding->find(term.var);
  if (it != binding->end()) return it->second == value;
  binding->emplace(term.var, value);
  trail->push_back(term.var);
  return true;
}

void Undo(Binding* binding, std::vector<std::string>* trail, size_t mark) {
  while (trail->size() > mark) {
    binding->erase(trail->back());
    trail->pop_back();
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// FullyDefinedEvaluator
// ---------------------------------------------------------------------------

FullyDefinedEvaluator::FullyDefinedEvaluator(
    const Program& program, const datalog::Database& least_model)
    : program_(&program), db_(&least_model) {}

bool FullyDefinedEvaluator::IsEdb(const PredicateInfo* pred) const {
  for (const Rule& rule : program_->rules()) {
    if (rule.head.pred == pred) return false;
  }
  return true;
}

bool FullyDefinedEvaluator::RowSettled(const PredicateInfo* pred,
                                       const Tuple& key) const {
  if (IsEdb(pred)) return true;
  const Relation* rel = db_->Find(pred);
  std::optional<uint32_t> row =
      rel != nullptr ? rel->FindRow(key) : std::nullopt;
  // Keys outside the least model can never become true in any approximation
  // (the least model is the limit): they are determined (false / bottom).
  if (!row.has_value()) return true;
  auto it = state_.find(pred->id);
  if (it == state_.end()) return false;
  return *row < it->second.settled.size() && it->second.settled[*row];
}

Status FullyDefinedEvaluator::Evaluate() {
  for (const Rule& rule : program_->rules()) {
    for (const Subgoal& sg : rule.body) {
      if (sg.kind == Subgoal::Kind::kNegatedAtom) {
        return Status::InvalidArgument(
            "the fully-defined evaluator handles negation-free programs");
      }
    }
  }
  // Initialize per-derived-predicate settled bits.
  for (const auto& [id, rel] : db_->relations()) {
    if (IsEdb(rel->pred())) continue;
    state_[id].settled.assign(rel->size(), false);
  }
  // Seed: program facts whose value survived to the least model are true
  // immediately (growth through rules would have raised them).
  for (const datalog::Fact& f : program_->facts()) {
    if (IsEdb(f.pred)) continue;
    const Relation* rel = db_->Find(f.pred);
    std::optional<uint32_t> row =
        rel != nullptr ? rel->FindRow(f.key) : std::nullopt;
    if (!row.has_value()) continue;
    bool final_value =
        !f.pred->has_cost ||
        f.pred->domain->Equal(f.pred->domain->Normalize(*f.cost),
                              rel->cost_at(*row));
    if (final_value) state_[f.pred->id].settled[*row] = true;
  }

  while (Pass()) {
  }
  return Status::OK();
}

bool FullyDefinedEvaluator::Pass() {
  changed_ = false;
  for (const Rule& rule : program_->rules()) {
    SettleFromRule(rule);
  }
  return changed_;
}

void FullyDefinedEvaluator::SettleFromRule(const Rule& rule) {
  const PredicateInfo* head = rule.head.pred;
  const Relation* rel = db_->Find(head);
  if (rel == nullptr) return;
  PredState& st = state_[head->id];
  for (uint32_t row = 0; row < rel->size(); ++row) {
    if (st.settled[row]) continue;
    // Bind the head arguments (keys and, for cost predicates, the final
    // least-model value) and look for a fully settled body instance.
    Binding binding;
    bool ok = true;
    const Tuple& key = rel->key_at(row);
    for (int i = 0; i < head->key_arity() && ok; ++i) {
      const Term& t = rule.head.args[i];
      if (t.is_const()) {
        ok = t.constant == key[i];
      } else {
        binding[t.var] = key[i];
      }
    }
    if (ok && head->has_cost) {
      const Term& t = rule.head.args.back();
      if (t.is_const()) {
        ok = head->domain->Equal(head->domain->Normalize(t.constant),
                                 rel->cost_at(row));
      } else {
        binding[t.var] = rel->cost_at(row);
      }
    }
    if (!ok) continue;
    settle_target_ = {head->id, row};
    EnumerateSettled(rule, 0, &binding);
  }
}

void FullyDefinedEvaluator::EnumerateSettled(const Rule& rule,
                                             size_t subgoal_index,
                                             Binding* binding) {
  PredState& st = state_[settle_target_.first];
  if (st.settled[settle_target_.second]) return;  // already done
  if (subgoal_index == rule.body.size()) {
    st.settled[settle_target_.second] = true;
    changed_ = true;
    return;
  }
  const Subgoal& sg = rule.body[subgoal_index];
  switch (sg.kind) {
    case Subgoal::Kind::kNegatedAtom:
      return;  // rejected earlier
    case Subgoal::Kind::kAtom: {
      MatchAtom(sg.atom, binding, [&](bool settled) {
        if (settled) EnumerateSettled(rule, subgoal_index + 1, binding);
      });
      return;
    }
    case Subgoal::Kind::kBuiltin: {
      // With the head pre-bound, equalities act as checks or assignments.
      auto l = EvalExpr(*sg.builtin.lhs, *binding);
      auto r = EvalExpr(*sg.builtin.rhs, *binding);
      if (sg.builtin.op == CmpOp::kEq && (!l.has_value()) != (!r.has_value())) {
        // One side unbound bare variable: assignment.
        const Expr& unbound = l.has_value() ? *sg.builtin.rhs : *sg.builtin.lhs;
        const Value& val = l.has_value() ? *l : *r;
        if (unbound.kind != Expr::Kind::kVar) return;
        binding->emplace(unbound.var, val);
        EnumerateSettled(rule, subgoal_index + 1, binding);
        binding->erase(unbound.var);
        return;
      }
      if (!l || !r) return;
      if (EvalCompare(sg.builtin.op, *l, *r)) {
        EnumerateSettled(rule, subgoal_index + 1, binding);
      }
      return;
    }
    case Subgoal::Kind::kAggregate: {
      const AggregateSubgoal& agg = sg.aggregate;
      std::vector<Value> multiset;
      if (!AggregateGroupSettled(agg, binding, &multiset)) return;
      if (agg.restricted && multiset.empty()) return;
      auto applied = agg.function->Apply(multiset);
      if (!applied.ok()) return;
      const lattice::CostDomain* out = agg.function->output_domain();
      Value value = out->Normalize(*applied);
      if (agg.result.is_const()) {
        if (!out->Contains(agg.result.constant) ||
            !out->Equal(out->Normalize(agg.result.constant), value)) {
          return;
        }
        EnumerateSettled(rule, subgoal_index + 1, binding);
        return;
      }
      auto it = binding->find(agg.result.var);
      if (it != binding->end()) {
        if (!out->Contains(it->second) ||
            !out->Equal(out->Normalize(it->second), value)) {
          return;
        }
        EnumerateSettled(rule, subgoal_index + 1, binding);
        return;
      }
      binding->emplace(agg.result.var, value);
      EnumerateSettled(rule, subgoal_index + 1, binding);
      binding->erase(agg.result.var);
      return;
    }
  }
}

bool FullyDefinedEvaluator::AggregateGroupSettled(
    const AggregateSubgoal& agg, Binding* binding,
    std::vector<Value>* multiset) {
  // Order inner atoms with default-value predicates last so their keys are
  // bound when we synthesize implicit bottom rows.
  std::vector<Atom> ordered = agg.atoms;
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const Atom& a, const Atom& b) {
                     return !a.pred->has_default && b.pred->has_default;
                   });
  bool all_settled = true;
  if (!EnumerateInner(ordered, 0, binding, &all_settled, multiset,
                      agg.multiset_var)) {
    return false;
  }
  return all_settled;
}

bool FullyDefinedEvaluator::EnumerateInner(const std::vector<Atom>& atoms,
                                           size_t index, Binding* binding,
                                           bool* all_settled,
                                           std::vector<Value>* multiset,
                                           const std::string& multiset_var) {
  if (index == atoms.size()) {
    if (multiset_var.empty()) {
      multiset->push_back(Value::Bool(true));
    } else {
      auto it = binding->find(multiset_var);
      if (it == binding->end()) return false;  // malformed subgoal
      multiset->push_back(it->second);
    }
    return true;
  }
  bool ok = true;
  MatchAtom(atoms[index], binding, [&](bool settled) {
    // Every *potential* contributor counts toward settledness, settled or
    // not — an unsettled one means the multiset may still change.
    *all_settled = *all_settled && settled;
    if (!EnumerateInner(atoms, index + 1, binding, all_settled, multiset,
                        multiset_var)) {
      ok = false;
    }
  });
  return ok;
}

template <typename Fn>
void FullyDefinedEvaluator::MatchAtom(const Atom& atom, Binding* binding,
                                      Fn&& fn) {
  const PredicateInfo* pred = atom.pred;
  const Relation* rel = db_->Find(pred);

  auto match_row = [&](const Tuple& key, const Value& cost, bool settled) {
    std::vector<std::string> trail;
    bool ok = true;
    for (int i = 0; i < pred->key_arity() && ok; ++i) {
      ok = BindTerm(atom.args[i], key[i], binding, &trail);
    }
    if (ok && pred->has_cost) {
      const Term& t = atom.args.back();
      if (t.is_const()) {
        ok = pred->domain->Contains(t.constant) &&
             pred->domain->Equal(pred->domain->Normalize(t.constant), cost);
      } else {
        auto it = binding->find(t.var);
        if (it != binding->end()) {
          ok = pred->domain->Contains(it->second) &&
               pred->domain->Equal(pred->domain->Normalize(it->second), cost);
        } else {
          binding->emplace(t.var, cost);
          trail.push_back(t.var);
        }
      }
    }
    if (ok) fn(settled);
    Undo(binding, &trail, 0);
  };

  // Default-value predicates with fully bound keys synthesize the implicit
  // bottom row when the core has no entry; implicit rows are settled iff
  // absent from the least model (nothing will ever derive them).
  if (pred->has_default) {
    Tuple key;
    bool keys_bound = true;
    for (int i = 0; i < pred->key_arity(); ++i) {
      const Term& t = atom.args[i];
      if (t.is_const()) {
        key.push_back(t.constant);
      } else {
        auto it = binding->find(t.var);
        if (it == binding->end()) {
          keys_bound = false;
          break;
        }
        key.push_back(it->second);
      }
    }
    if (keys_bound) {
      std::optional<uint32_t> row =
          rel != nullptr ? rel->FindRow(key) : std::nullopt;
      if (row.has_value()) {
        match_row(key, rel->cost_at(*row), RowSettled(pred, key));
      } else {
        match_row(key, pred->domain->Bottom(), true);
      }
      return;
    }
  }

  if (rel == nullptr) return;
  for (uint32_t row = 0; row < rel->size(); ++row) {
    match_row(rel->key_at(row), rel->cost_at(row),
              RowSettled(pred, rel->key_at(row)));
  }
}

// ---------------------------------------------------------------------------
// Reporting
// ---------------------------------------------------------------------------

Definedness FullyDefinedEvaluator::StatusOf(const PredicateInfo* pred,
                                            const Tuple& key) const {
  const Relation* rel = db_->Find(pred);
  std::optional<uint32_t> row =
      rel != nullptr ? rel->FindRow(key) : std::nullopt;
  if (!row.has_value()) return Definedness::kFalse;
  if (RowSettled(pred, key)) return Definedness::kTrue;
  return Definedness::kUndefined;
}

int FullyDefinedEvaluator::CountSettled() const {
  int n = 0;
  for (const auto& [_, st] : state_) {
    for (bool b : st.settled) n += b ? 1 : 0;
  }
  return n;
}

int FullyDefinedEvaluator::CountUndefined() const {
  int n = 0;
  for (const auto& [_, st] : state_) {
    for (bool b : st.settled) n += b ? 0 : 1;
  }
  return n;
}

double FullyDefinedEvaluator::DefinedFraction() const {
  int settled = CountSettled();
  int total = settled + CountUndefined();
  return total == 0 ? 1.0 : static_cast<double>(settled) / total;
}

}  // namespace baselines
}  // namespace mad
