#ifndef MAD_BASELINES_FULLY_DEFINED_H_
#define MAD_BASELINES_FULLY_DEFINED_H_

#include <map>
#include <string>
#include <vector>

#include "baselines/kemp_stuckey.h"  // Definedness
#include "datalog/ast.h"
#include "datalog/database.h"
#include "util/status.h"

namespace mad {
namespace baselines {

/// The generic "fully defined before aggregation" evaluator — the semantics
/// family of Kemp & Stuckey [8] that the paper's Section 5.3 contrasts
/// against, implemented for arbitrary negation-free, conflict-free programs
/// rather than the shape-specific simulators in kemp_stuckey.h.
///
/// Discipline: a derived atom *settles* (becomes two-valued with a final
/// value) only when some rule instance derives it from premises that are
/// all settled, and — crucially — every aggregate subgoal in that instance
/// ranges over a group whose *potential contributors are all settled*, so
/// the multiset can no longer change. Atoms that never settle are
/// `kUndefined`; ground atoms absent from the monotone least model are
/// `kFalse` (they are false in every approximation-consistent semantics).
///
/// On modularly stratified inputs (acyclic ground dependencies) everything
/// settles and the result coincides with the least model; on cyclic inputs
/// the atoms whose support runs through a cycle stay undefined — exactly
/// the Section 5.3 behaviour, now measurable for any program.
///
/// Known approximation: atoms *absent* from the least model are reported
/// kFalse using the least model as an oracle. A true Kemp-Stuckey evaluator
/// can only conclude falsity through the unfounded-set construction and
/// would leave cycle-dependent false atoms (like Section 5.6's c(a,b))
/// undefined; the shape-specific simulators in kemp_stuckey.h model that
/// false side exactly for the shortest-path and company-control programs.
/// This class therefore measures definedness of the *true* fragment.
class FullyDefinedEvaluator {
 public:
  /// `program` must be negation-free; `least_model` must be the engine's
  /// least fixpoint for it (used as the universe of candidate atoms and the
  /// source of final values).
  FullyDefinedEvaluator(const datalog::Program& program,
                        const datalog::Database& least_model);

  /// Runs the settledness fixpoint. Fails (InvalidArgument) on negation.
  Status Evaluate();

  /// Status of a ground atom: kTrue if it settled, kFalse if absent from
  /// the least model, kUndefined otherwise.
  Definedness StatusOf(const datalog::PredicateInfo* pred,
                       const datalog::Tuple& key) const;

  /// Number of settled / undefined atoms among the least model's derived
  /// (non-EDB) rows.
  int CountSettled() const;
  int CountUndefined() const;
  /// settled / (settled + undefined) over derived rows.
  double DefinedFraction() const;

 private:
  struct PredState {
    /// settled[row] for the least-model relation of this predicate.
    std::vector<bool> settled;
  };

  bool IsEdb(const datalog::PredicateInfo* pred) const;
  bool RowSettled(const datalog::PredicateInfo* pred,
                  const datalog::Tuple& key) const;

  /// One settling pass over all rules; returns true if anything settled.
  bool Pass();

  /// Tries to settle the head of `rule` from fully settled instances.
  /// Backtracking enumeration over the least model with settledness checks.
  void SettleFromRule(const datalog::Rule& rule);
  void EnumerateSettled(const datalog::Rule& rule, size_t subgoal_index,
                        std::map<std::string, datalog::Value>* binding);

  /// True iff every potential contributor to the aggregate's group (under
  /// the current grouping binding) is settled. Also appends the multiset.
  bool AggregateGroupSettled(const datalog::AggregateSubgoal& agg,
                             std::map<std::string, datalog::Value>* binding,
                             std::vector<datalog::Value>* multiset);
  bool EnumerateInner(const std::vector<datalog::Atom>& atoms, size_t index,
                      std::map<std::string, datalog::Value>* binding,
                      bool* all_settled,
                      std::vector<datalog::Value>* multiset,
                      const std::string& multiset_var);

  /// Enumerates least-model rows matching `atom` under `binding`;
  /// `require_settled` skips unsettled rows (for rule premises) while the
  /// aggregate path visits all rows and reports their settledness.
  template <typename Fn>
  void MatchAtom(const datalog::Atom& atom,
                 std::map<std::string, datalog::Value>* binding, Fn&& fn);

  const datalog::Program* program_;
  const datalog::Database* db_;
  std::map<int, PredState> state_;
  /// The (pred id, row) currently being settled by SettleFromRule.
  std::pair<int, uint32_t> settle_target_{-1, 0};
  bool changed_ = false;
};

}  // namespace baselines
}  // namespace mad

#endif  // MAD_BASELINES_FULLY_DEFINED_H_
