#ifndef MAD_BASELINES_GRAPH_H_
#define MAD_BASELINES_GRAPH_H_

#include <limits>
#include <string>
#include <vector>

namespace mad {
namespace baselines {

/// A weighted directed graph with dense integer vertex ids, shared between
/// the classical shortest-path baselines and the workload generators.
struct Graph {
  struct Edge {
    int to = 0;
    double weight = 0;
  };

  int num_nodes = 0;
  std::vector<std::vector<Edge>> adj;

  void Resize(int n) {
    num_nodes = n;
    adj.assign(n, {});
  }
  void AddEdge(int from, int to, double weight) {
    adj[from].push_back({to, weight});
    ++num_edges;
  }
  int num_edges = 0;

  /// Node name used when emitting the graph as Datalog facts ("n<i>").
  static std::string NodeName(int i) { return "n" + std::to_string(i); }
};

/// Distance value used by the baselines; +inf = unreachable.
constexpr double kUnreachable = std::numeric_limits<double>::infinity();

}  // namespace baselines
}  // namespace mad

#endif  // MAD_BASELINES_GRAPH_H_
