#include "baselines/kemp_stuckey.h"

#include <queue>

namespace mad {
namespace baselines {

double WellFoundedShortestPaths::DefinedFraction() const {
  int relevant = 0;
  int defined = 0;
  for (const auto& row : status) {
    for (Definedness d : row) {
      if (d == Definedness::kFalse) continue;  // vacuously determined
      ++relevant;
      if (d == Definedness::kTrue) ++defined;
    }
  }
  return relevant == 0 ? 1.0 : static_cast<double>(defined) / relevant;
}

int WellFoundedShortestPaths::CountUndefined() const {
  int n = 0;
  for (const auto& row : status) {
    for (Definedness d : row) n += d == Definedness::kUndefined ? 1 : 0;
  }
  return n;
}

WellFoundedShortestPaths KempStuckeyShortestPaths(const Graph& g) {
  int n = g.num_nodes;
  WellFoundedShortestPaths out;
  out.status.assign(n, std::vector<Definedness>(n, Definedness::kFalse));
  out.dist.assign(n, std::vector<double>(n, kUnreachable));

  // Reachability via >= 1 edge (pure Horn consequence; two-valued even for
  // the well-founded semantics).
  std::vector<std::vector<bool>> reach(n, std::vector<bool>(n, false));
  for (int s = 0; s < n; ++s) {
    std::queue<int> q;
    for (const Graph::Edge& e : g.adj[s]) {
      if (!reach[s][e.to]) {
        reach[s][e.to] = true;
        q.push(e.to);
      }
    }
    while (!q.empty()) {
      int u = q.front();
      q.pop();
      for (const Graph::Edge& e : g.adj[u]) {
        if (!reach[s][e.to]) {
          reach[s][e.to] = true;
          q.push(e.to);
        }
      }
    }
  }

  // Ground dependency: s(x, y) needs s(x, z) determined for every in-edge
  // (z, y) with z reachable from x. Kahn-style propagation: a pair becomes
  // defined when its last dependency resolves; pairs on or behind dependency
  // cycles never do, and stay kUndefined.
  std::vector<std::vector<Graph::Edge>> in_edges(n);
  for (int u = 0; u < n; ++u) {
    for (const Graph::Edge& e : g.adj[u]) in_edges[e.to].push_back({u, e.weight});
  }

  auto id = [n](int x, int y) { return x * n + y; };
  std::vector<int> pending(static_cast<size_t>(n) * n, 0);
  std::queue<int> ready;
  for (int x = 0; x < n; ++x) {
    for (int y = 0; y < n; ++y) {
      if (!reach[x][y]) continue;  // s(x, y) is false, already determined
      out.status[x][y] = Definedness::kUndefined;
      int deps = 0;
      for (const Graph::Edge& in : in_edges[y]) {
        if (reach[x][in.to]) ++deps;  // in.to here is the source z
      }
      pending[id(x, y)] = deps;
      if (deps == 0) ready.push(id(x, y));
    }
  }

  // Dependents of s(x, z): all s(x, y) with an edge z -> y.
  while (!ready.empty()) {
    int pair = ready.front();
    ready.pop();
    int x = pair / n;
    int z = pair % n;
    // Determine dist(x, z): direct arcs plus defined sub-paths.
    double best = kUnreachable;
    for (const Graph::Edge& in : in_edges[z]) {
      int mid = in.to;  // arc (mid, z)
      if (x == mid || (reach[x][mid] &&
                       out.status[x][mid] == Definedness::kTrue)) {
        double base = x == mid ? 0.0 : out.dist[x][mid];
        if (base + in.weight < best) best = base + in.weight;
      }
    }
    out.status[x][z] = Definedness::kTrue;
    out.dist[x][z] = best;
    for (const Graph::Edge& e : g.adj[z]) {
      int y = e.to;
      if (!reach[x][y] || out.status[x][y] != Definedness::kUndefined) {
        continue;
      }
      if (--pending[id(x, y)] == 0) ready.push(id(x, y));
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Company control under the fully-defined discipline
// ---------------------------------------------------------------------------

double WellFoundedCompanyControl::DefinedFraction() const {
  int total = 0;
  int defined = 0;
  for (const auto& row : status) {
    for (Definedness d : row) {
      ++total;
      defined += d != Definedness::kUndefined ? 1 : 0;
    }
  }
  return total == 0 ? 1.0 : static_cast<double>(defined) / total;
}

int WellFoundedCompanyControl::CountUndefined() const {
  int n = 0;
  for (const auto& row : status) {
    for (Definedness d : row) n += d == Definedness::kUndefined ? 1 : 0;
  }
  return n;
}

WellFoundedCompanyControl KempStuckeyCompanyControl(
    const OwnershipNetwork& net) {
  int n = net.num_companies;
  WellFoundedCompanyControl out;
  out.status.assign(n, std::vector<Definedness>(n, Definedness::kUndefined));
  out.controls.assign(n, std::vector<bool>(n, false));

  // c(x, y) aggregates cv(x, z, y) over every z with s(z, y) > 0, and each
  // such instance needs c(x, z) determined. Kahn-style resolution: a pair
  // becomes decidable once all its dependencies are; ownership cycles never
  // resolve and stay undefined.
  auto id = [n](int x, int y) { return x * n + y; };
  std::vector<int> pending(static_cast<size_t>(n) * n, 0);
  std::queue<int> ready;
  for (int x = 0; x < n; ++x) {
    for (int y = 0; y < n; ++y) {
      int deps = 0;
      for (int z = 0; z < n; ++z) {
        if (z != x && net.shares[z][y] > 0) ++deps;
      }
      pending[id(x, y)] = deps;
      if (deps == 0) ready.push(id(x, y));
    }
  }
  while (!ready.empty()) {
    int pair = ready.front();
    ready.pop();
    int x = pair / n;
    int z = pair % n;
    double m = net.shares[x][z];
    for (int w = 0; w < n; ++w) {
      if (w != x && out.status[x][w] == Definedness::kTrue &&
          out.controls[x][w]) {
        m += net.shares[w][z];
      }
    }
    out.status[x][z] = Definedness::kTrue;  // the *status* is decided...
    out.controls[x][z] = m > 0.5;
    if (!out.controls[x][z]) out.status[x][z] = Definedness::kFalse;
    // Dependents: every c(x, y) with s(z, y) > 0. The z == x instances flow
    // through the first cv rule and were never counted as dependencies.
    if (z == x) continue;
    for (int y = 0; y < n; ++y) {
      if (net.shares[z][y] <= 0) continue;
      if (out.status[x][y] != Definedness::kUndefined) continue;
      if (--pending[id(x, y)] == 0) ready.push(id(x, y));
    }
  }
  return out;
}

}  // namespace baselines
}  // namespace mad
