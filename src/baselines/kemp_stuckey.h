#ifndef MAD_BASELINES_KEMP_STUCKEY_H_
#define MAD_BASELINES_KEMP_STUCKEY_H_

#include <vector>

#include "baselines/company_control.h"
#include "baselines/graph.h"

namespace mad {
namespace baselines {

/// Three-valued status of an atom under an aggregate-through-recursion
/// semantics that insists the aggregated relation be *fully determined*
/// before the aggregate may fire (Kemp & Stuckey [8], Section 5.3).
enum class Definedness {
  kTrue,
  kFalse,
  kUndefined,
};

/// Result of the definedness computation for the shortest-path program.
struct WellFoundedShortestPaths {
  /// status[x][y] of s(x, y, _): kTrue with `dist[x][y]` when determined,
  /// kFalse when no path exists, kUndefined when the atom's aggregate
  /// depends (transitively) on a cyclic ground-dependency.
  std::vector<std::vector<Definedness>> status;
  std::vector<std::vector<double>> dist;  ///< valid where status == kTrue

  /// Fraction of reachable (x, y) pairs whose s atom is defined; 1.0 on
  /// acyclic (modularly stratified) graphs, dropping as cycle coverage
  /// grows — the quantitative version of the paper's Section 5.3 critique.
  double DefinedFraction() const;
  int CountUndefined() const;
};

/// Evaluates the shortest-path program the way a fully-defined-before-
/// aggregation semantics can: s(x, y) is computable only when every ground
/// atom path(x, z, y) it aggregates over is determined, i.e. when the ground
/// dependency s(x,y) -> s(x,z) for each arc (z, y) is acyclic below (x, y).
///
/// On DAGs this reproduces the two-valued well-founded model (and agrees
/// with Dijkstra); on cyclic graphs the atoms whose ground support reaches a
/// dependency cycle come out kUndefined — exactly the behaviour the paper
/// contrasts against in Section 5.3.
///
/// Requires non-negative weights for the defined distances to be meaningful.
WellFoundedShortestPaths KempStuckeyShortestPaths(const Graph& g);

/// The same fully-defined-before-aggregation discipline applied to the
/// company-control program (Example 2.7 / Section 5.3): m(x, y) sums
/// cv(x, z, y) over all z, and cv(x, z, y) needs c(x, z) determined, so
/// c(x, y) is computable only when every c(x, z) with s(z, y) > 0 is
/// determined first. Mutual-ownership cycles (like Section 5.6's b/c pair)
/// therefore come out kUndefined, while the paper's least model decides
/// them.
struct WellFoundedCompanyControl {
  /// status[x][y] of c(x, y).
  std::vector<std::vector<Definedness>> status;
  /// controls[x][y], valid where status == kTrue.
  std::vector<std::vector<bool>> controls;

  double DefinedFraction() const;
  int CountUndefined() const;
};

WellFoundedCompanyControl KempStuckeyCompanyControl(
    const OwnershipNetwork& net);

}  // namespace baselines
}  // namespace mad

#endif  // MAD_BASELINES_KEMP_STUCKEY_H_
