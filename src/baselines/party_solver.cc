#include "baselines/party_solver.h"

namespace mad {
namespace baselines {

PartyResult SolveParty(const PartyInstance& instance) {
  PartyResult out;
  out.coming.assign(instance.num_people, false);
  bool changed = true;
  while (changed) {
    changed = false;
    ++out.iterations;
    for (int p = 0; p < instance.num_people; ++p) {
      if (out.coming[p]) continue;
      int committed = 0;
      for (int q : instance.knows[p]) {
        if (out.coming[q]) ++committed;
      }
      if (committed >= instance.threshold[p]) {
        out.coming[p] = true;
        changed = true;
      }
    }
  }
  return out;
}

}  // namespace baselines
}  // namespace mad
