#ifndef MAD_BASELINES_PARTY_SOLVER_H_
#define MAD_BASELINES_PARTY_SOLVER_H_

#include <string>
#include <vector>

namespace mad {
namespace baselines {

/// An instance of the party-invitation problem (Example 4.3).
struct PartyInstance {
  int num_people = 0;
  /// threshold[p]: how many committed acquaintances p needs before coming.
  std::vector<int> threshold;
  /// knows[p]: the people p knows.
  std::vector<std::vector<int>> knows;

  static std::string PersonName(int p) { return "p" + std::to_string(p); }
};

struct PartyResult {
  std::vector<bool> coming;
  int iterations = 0;
};

/// Direct monotone fixpoint: start with nobody coming; a person comes once
/// enough of their acquaintances are committed; repeat until stable. This
/// works on cyclic `knows` relations (where modular stratification fails).
PartyResult SolveParty(const PartyInstance& instance);

}  // namespace baselines
}  // namespace mad

#endif  // MAD_BASELINES_PARTY_SOLVER_H_
