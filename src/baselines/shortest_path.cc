#include "baselines/shortest_path.h"

#include <queue>

namespace mad {
namespace baselines {

std::vector<double> Dijkstra(const Graph& g, int source) {
  std::vector<double> dist(g.num_nodes, kUnreachable);
  dist[source] = 0;
  using Item = std::pair<double, int>;
  std::priority_queue<Item, std::vector<Item>, std::greater<Item>> pq;
  pq.push({0, source});
  while (!pq.empty()) {
    auto [d, u] = pq.top();
    pq.pop();
    if (d > dist[u]) continue;
    for (const Graph::Edge& e : g.adj[u]) {
      double nd = d + e.weight;
      if (nd < dist[e.to]) {
        dist[e.to] = nd;
        pq.push({nd, e.to});
      }
    }
  }
  return dist;
}

std::optional<std::vector<double>> BellmanFord(const Graph& g, int source) {
  std::vector<double> dist(g.num_nodes, kUnreachable);
  dist[source] = 0;
  for (int round = 0; round < g.num_nodes - 1; ++round) {
    bool changed = false;
    for (int u = 0; u < g.num_nodes; ++u) {
      if (dist[u] == kUnreachable) continue;
      for (const Graph::Edge& e : g.adj[u]) {
        double nd = dist[u] + e.weight;
        if (nd < dist[e.to]) {
          dist[e.to] = nd;
          changed = true;
        }
      }
    }
    if (!changed) break;
  }
  // One more relaxation detects reachable negative cycles.
  for (int u = 0; u < g.num_nodes; ++u) {
    if (dist[u] == kUnreachable) continue;
    for (const Graph::Edge& e : g.adj[u]) {
      if (dist[u] + e.weight < dist[e.to]) return std::nullopt;
    }
  }
  return dist;
}

std::vector<std::vector<double>> AllPairsDijkstra(const Graph& g) {
  std::vector<std::vector<double>> out;
  out.reserve(g.num_nodes);
  for (int s = 0; s < g.num_nodes; ++s) out.push_back(Dijkstra(g, s));
  return out;
}

std::vector<std::vector<double>> AllPairsNonEmptyDijkstra(const Graph& g) {
  std::vector<std::vector<double>> dist = AllPairsDijkstra(g);
  std::vector<std::vector<double>> out(
      g.num_nodes, std::vector<double>(g.num_nodes, kUnreachable));
  // A non-empty x→y path decomposes as first edge (x, u) plus a (possibly
  // empty) u→y path.
  for (int x = 0; x < g.num_nodes; ++x) {
    for (const Graph::Edge& e : g.adj[x]) {
      for (int y = 0; y < g.num_nodes; ++y) {
        double d = e.weight + dist[e.to][y];
        if (d < out[x][y]) out[x][y] = d;
      }
    }
  }
  return out;
}

}  // namespace baselines
}  // namespace mad
