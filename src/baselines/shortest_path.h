#ifndef MAD_BASELINES_SHORTEST_PATH_H_
#define MAD_BASELINES_SHORTEST_PATH_H_

#include <optional>
#include <vector>

#include "baselines/graph.h"

namespace mad {
namespace baselines {

/// Dijkstra's algorithm from `source`. Requires non-negative weights (the
/// same applicability envelope as greedy/GGZ evaluation, Section 5.4).
std::vector<double> Dijkstra(const Graph& g, int source);

/// Bellman–Ford from `source`; handles negative weights. Returns
/// std::nullopt if a negative cycle is reachable from `source` (the case
/// where the paper's least model assigns -inf, Section 6.1).
std::optional<std::vector<double>> BellmanFord(const Graph& g, int source);

/// All-pairs shortest distances via repeated Dijkstra (non-negative
/// weights). result[u][v] = distance or kUnreachable.
std::vector<std::vector<double>> AllPairsDijkstra(const Graph& g);

/// All-pairs shortest *non-empty* path distances (>= 1 edge) — this is what
/// the paper's s relation computes: s(x, x) is the shortest cycle through x,
/// not 0. Non-negative weights.
std::vector<std::vector<double>> AllPairsNonEmptyDijkstra(const Graph& g);

}  // namespace baselines
}  // namespace mad

#endif  // MAD_BASELINES_SHORTEST_PATH_H_
