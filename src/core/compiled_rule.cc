#include "core/compiled_rule.h"

#include <algorithm>
#include <map>
#include <optional>
#include <set>

#include "util/string_util.h"

namespace mad {
namespace core {

using datalog::AggregateSubgoal;
using datalog::Atom;
using datalog::CmpOp;
using datalog::Expr;
using datalog::Subgoal;
using datalog::Term;

namespace {

/// Assigns dense slot ids to variable names on first use.
class SlotMap {
 public:
  int SlotOf(const std::string& var) {
    auto it = slots_.find(var);
    if (it != slots_.end()) return it->second;
    int s = static_cast<int>(names_.size());
    slots_.emplace(var, s);
    names_.push_back(var);
    return s;
  }
  SlotTerm Compile(const Term& t) {
    return t.is_var() ? SlotTerm::Slot(SlotOf(t.var))
                      : SlotTerm::Const(t.constant);
  }
  const std::vector<std::string>& names() const { return names_; }

 private:
  std::map<std::string, int> slots_;
  std::vector<std::string> names_;
};

CompiledAtom CompileAtom(const Atom& a, SlotMap* slots) {
  CompiledAtom out;
  out.pred = a.pred;
  int keys = a.pred->key_arity();
  for (int i = 0; i < keys; ++i) out.key_args.push_back(slots->Compile(a.args[i]));
  if (a.pred->has_cost) out.cost_arg = slots->Compile(a.args.back());
  return out;
}

/// Fills scan_positions: key positions bound at execution time.
void ComputeScanPositions(CompiledAtom* atom, const std::set<int>& bound) {
  atom->scan_positions.clear();
  for (int i = 0; i < static_cast<int>(atom->key_args.size()); ++i) {
    const SlotTerm& t = atom->key_args[i];
    if (!t.is_slot || bound.count(t.slot)) atom->scan_positions.push_back(i);
  }
}

/// Slots an atom binds (all of its slot arguments).
void AtomSlots(const CompiledAtom& atom, std::set<int>* out) {
  for (const SlotTerm& t : atom.key_args) {
    if (t.is_slot) out->insert(t.slot);
  }
  if (atom.cost_arg.has_value() && atom.cost_arg->is_slot) {
    out->insert(atom.cost_arg->slot);
  }
}

bool AtomKeysBound(const CompiledAtom& atom, const std::set<int>& bound) {
  for (const SlotTerm& t : atom.key_args) {
    if (t.is_slot && !bound.count(t.slot)) return false;
  }
  return true;
}

bool AtomFullyBound(const CompiledAtom& atom, const std::set<int>& bound) {
  if (!AtomKeysBound(atom, bound)) return false;
  if (atom.cost_arg.has_value() && atom.cost_arg->is_slot &&
      !bound.count(atom.cost_arg->slot)) {
    return false;
  }
  return true;
}

bool ExprBound(const Expr& e, SlotMap* slots, const std::set<int>& bound) {
  std::vector<std::string> vars;
  e.CollectVars(&vars);
  for (const std::string& v : vars) {
    if (!bound.count(slots->SlotOf(v))) return false;
  }
  return true;
}

/// Schedules the inner atom conjunction of an aggregate. `bound` is extended
/// with the slots the atoms bind.
Status ScheduleInnerAtoms(const std::vector<Atom>& atoms, SlotMap* slots,
                          std::set<int>* bound,
                          std::vector<CompiledAtom>* out) {
  std::vector<CompiledAtom> pending;
  pending.reserve(atoms.size());
  for (const Atom& a : atoms) pending.push_back(CompileAtom(a, slots));
  std::vector<bool> done(pending.size(), false);
  for (size_t scheduled = 0; scheduled < pending.size(); ++scheduled) {
    // Pick the ready atom with the most bound key positions (selectivity
    // heuristic); default-value atoms require fully bound keys.
    int best = -1;
    int best_bound = -1;
    for (size_t i = 0; i < pending.size(); ++i) {
      if (done[i]) continue;
      if (pending[i].pred->has_default && !AtomKeysBound(pending[i], *bound)) {
        continue;
      }
      int nbound = 0;
      for (const SlotTerm& t : pending[i].key_args) {
        if (!t.is_slot || bound->count(t.slot)) ++nbound;
      }
      if (nbound > best_bound) {
        best = static_cast<int>(i);
        best_bound = nbound;
      }
    }
    if (best < 0) {
      return Status::Internal(
          "no safe order for aggregate inner conjunction (default-value "
          "keys unbound); is the rule range-restricted?");
    }
    ComputeScanPositions(&pending[best], *bound);
    AtomSlots(pending[best], bound);
    out->push_back(pending[best]);
    done[best] = true;
  }
  return Status::OK();
}

/// Compiles one aggregate subgoal given the currently bound slots.
StatusOr<CompiledAggregate> CompileAggregate(const AggregateSubgoal& agg,
                                             SlotMap* slots,
                                             std::set<int>* bound) {
  CompiledAggregate out;
  out.fn = agg.function;
  out.restricted = agg.restricted;
  out.result = slots->Compile(agg.result);
  if (!agg.multiset_var.empty()) {
    out.multiset_slot = slots->SlotOf(agg.multiset_var);
  }
  for (const std::string& g : agg.grouping_vars) {
    out.grouping_slots.push_back(slots->SlotOf(g));
  }
  std::set<int> inner_bound = *bound;
  MAD_RETURN_IF_ERROR(
      ScheduleInnerAtoms(agg.atoms, slots, &inner_bound, &out.inner));
  // Everything newly bound inside is scoped to the aggregation — except
  // grouping slots, which a "=r" subgoal may legitimately bind for the
  // rest of the rule.
  for (int s : inner_bound) {
    if (bound->count(s)) continue;
    if (std::find(out.grouping_slots.begin(), out.grouping_slots.end(), s) !=
        out.grouping_slots.end()) {
      continue;
    }
    out.scoped_slots.push_back(s);
  }
  for (int g : out.grouping_slots) bound->insert(g);
  if (out.result.is_slot) bound->insert(out.result.slot);
  return out;
}

/// The aggregate step's readiness condition. The "=" form needs every
/// grouping variable bound beforehand (else the group space is unbounded);
/// the "=r" form can enumerate its own non-empty groups from the inner
/// conjunction (Definition 2.5 limits =r grouping variables from inside).
bool AggregateReady(const AggregateSubgoal& agg, SlotMap* slots,
                    const std::set<int>& bound) {
  if (agg.restricted) return true;
  for (const std::string& g : agg.grouping_vars) {
    if (!bound.count(slots->SlotOf(g))) return false;
  }
  return true;
}

/// Side-effect-free readiness probe: mirrors exactly the conditions under
/// which the tiered scheduler below would accept the subgoal. (SlotMap
/// lazily allocates slot ids for probed variables; that is idempotent and
/// harmless — every rule variable receives a slot eventually.)
bool SubgoalReady(const Subgoal& sg, SlotMap* slots,
                  const std::set<int>& bound) {
  switch (sg.kind) {
    case Subgoal::Kind::kBuiltin: {
      const auto& b = sg.builtin;
      if (ExprBound(*b.lhs, slots, bound) && ExprBound(*b.rhs, slots, bound)) {
        return true;
      }
      if (b.op != CmpOp::kEq) return false;
      auto assignable = [&](const Expr& var_side, const Expr& expr_side) {
        return var_side.kind == Expr::Kind::kVar &&
               !bound.count(slots->SlotOf(var_side.var)) &&
               ExprBound(expr_side, slots, bound);
      };
      return assignable(*b.lhs, *b.rhs) || assignable(*b.rhs, *b.lhs);
    }
    case Subgoal::Kind::kNegatedAtom:
      return AtomFullyBound(CompileAtom(sg.atom, slots), bound);
    case Subgoal::Kind::kAtom:
      return !sg.atom.pred->has_default ||
             AtomKeysBound(CompileAtom(sg.atom, slots), bound);
    case Subgoal::Kind::kAggregate:
      return AggregateReady(sg.aggregate, slots, bound);
  }
  return false;
}

/// Compiles the already-readiness-checked subgoal `sg` into a schedule step,
/// applying its binding effects to `bound`.
StatusOr<CompiledSubgoal> CompileStep(const Subgoal& sg, SlotMap* slots,
                                      std::set<int>* bound) {
  CompiledSubgoal step;
  switch (sg.kind) {
    case Subgoal::Kind::kBuiltin: {
      const auto& b = sg.builtin;
      step.kind = CompiledSubgoal::Kind::kBuiltin;
      if (ExprBound(*b.lhs, slots, *bound) &&
          ExprBound(*b.rhs, slots, *bound)) {
        step.builtin = {b.op, b.lhs.get(), b.rhs.get(), -1, nullptr};
        return step;
      }
      // Assignment form; try lhs as the defined variable first, like the
      // tiered scheduler.
      auto try_assign = [&](const Expr& var_side,
                            const Expr& expr_side) -> bool {
        if (var_side.kind != Expr::Kind::kVar) return false;
        int s = slots->SlotOf(var_side.var);
        if (bound->count(s)) return false;
        if (!ExprBound(expr_side, slots, *bound)) return false;
        step.builtin = {b.op, b.lhs.get(), b.rhs.get(), s, &expr_side};
        bound->insert(s);
        return true;
      };
      if (try_assign(*b.lhs, *b.rhs) || try_assign(*b.rhs, *b.lhs)) {
        return step;
      }
      return Status::Internal("builtin scheduled while unready");
    }
    case Subgoal::Kind::kNegatedAtom: {
      CompiledAtom atom = CompileAtom(sg.atom, slots);
      ComputeScanPositions(&atom, *bound);
      step.kind = CompiledSubgoal::Kind::kNegatedAtom;
      step.atom = std::move(atom);
      return step;
    }
    case Subgoal::Kind::kAtom: {
      CompiledAtom atom = CompileAtom(sg.atom, slots);
      ComputeScanPositions(&atom, *bound);
      AtomSlots(atom, bound);
      step.kind = CompiledSubgoal::Kind::kAtom;
      step.atom = std::move(atom);
      return step;
    }
    case Subgoal::Kind::kAggregate: {
      MAD_ASSIGN_OR_RETURN(CompiledAggregate agg,
                           CompileAggregate(sg.aggregate, slots, bound));
      step.kind = CompiledSubgoal::Kind::kAggregate;
      step.aggregate = std::move(agg);
      return step;
    }
  }
  return Status::Internal("unknown subgoal kind");
}

/// Greedy safe-order scheduling of a rule body. `skip` may name one subgoal
/// index to omit (the seed of an atom driver). `pref` (nullable) ranks the
/// body subgoals — lower rank first among the *ready* ones; readiness always
/// wins over preference, so any rank vector yields a safe schedule. Null
/// keeps the legacy tiered heuristic.
StatusOr<Schedule> ScheduleBody(const Rule& rule, SlotMap* slots,
                                std::set<int> bound,
                                const std::vector<int>* pref, int skip = -1) {
  const std::vector<Subgoal>& body = rule.body;
  std::vector<bool> done(body.size(), false);
  if (skip >= 0) done[skip] = true;
  size_t remaining = body.size() - (skip >= 0 ? 1 : 0);

  Schedule schedule;
  if (pref != nullptr) {
    while (remaining > 0) {
      int pick = -1;
      for (size_t i = 0; i < body.size(); ++i) {
        if (done[i]) continue;
        if (pick >= 0 && (*pref)[i] >= (*pref)[pick]) continue;
        if (SubgoalReady(body[i], slots, bound)) pick = static_cast<int>(i);
      }
      if (pick < 0) {
        return Status::Internal(StrPrintf(
            "no safe evaluation order for rule '%s'; is it range-restricted?",
            rule.ToString().c_str()));
      }
      MAD_ASSIGN_OR_RETURN(CompiledSubgoal step,
                           CompileStep(body[pick], slots, &bound));
      done[pick] = true;
      --remaining;
      schedule.push_back(std::move(step));
    }
    return schedule;
  }
  while (remaining > 0) {
    // Priority 1: built-ins (tests or assignments) — cheap filters first.
    int pick = -1;
    CompiledSubgoal step;
    for (size_t i = 0; i < body.size() && pick < 0; ++i) {
      if (done[i] || body[i].kind != Subgoal::Kind::kBuiltin) continue;
      const auto& b = body[i].builtin;
      if (ExprBound(*b.lhs, slots, bound) && ExprBound(*b.rhs, slots, bound)) {
        step.kind = CompiledSubgoal::Kind::kBuiltin;
        step.builtin = {b.op, b.lhs.get(), b.rhs.get(), -1, nullptr};
        pick = static_cast<int>(i);
      } else if (b.op == CmpOp::kEq) {
        auto try_assign = [&](const Expr& var_side, const Expr& expr_side) {
          if (pick >= 0) return;
          if (var_side.kind != Expr::Kind::kVar) return;
          int s = slots->SlotOf(var_side.var);
          if (bound.count(s)) return;
          if (!ExprBound(expr_side, slots, bound)) return;
          step.kind = CompiledSubgoal::Kind::kBuiltin;
          step.builtin = {b.op, b.lhs.get(), b.rhs.get(), s, &expr_side};
          pick = static_cast<int>(i);
          bound.insert(s);
        };
        try_assign(*b.lhs, *b.rhs);
        try_assign(*b.rhs, *b.lhs);
      }
    }
    // Priority 2: negated atoms once fully bound.
    for (size_t i = 0; i < body.size() && pick < 0; ++i) {
      if (done[i] || body[i].kind != Subgoal::Kind::kNegatedAtom) continue;
      CompiledAtom atom = CompileAtom(body[i].atom, slots);
      if (!AtomFullyBound(atom, bound)) continue;
      ComputeScanPositions(&atom, bound);
      step.kind = CompiledSubgoal::Kind::kNegatedAtom;
      step.atom = std::move(atom);
      pick = static_cast<int>(i);
    }
    // Priority 3: positive atoms; prefer most-bound keys; default-value
    // atoms require fully bound keys.
    if (pick < 0) {
      int best = -1;
      int best_bound = -1;
      for (size_t i = 0; i < body.size(); ++i) {
        if (done[i] || body[i].kind != Subgoal::Kind::kAtom) continue;
        CompiledAtom atom = CompileAtom(body[i].atom, slots);
        if (atom.pred->has_default && !AtomKeysBound(atom, bound)) continue;
        int nbound = 0;
        for (const SlotTerm& t : atom.key_args) {
          if (!t.is_slot || bound.count(t.slot)) ++nbound;
        }
        if (nbound > best_bound) {
          best = static_cast<int>(i);
          best_bound = nbound;
        }
      }
      if (best >= 0) {
        CompiledAtom atom = CompileAtom(body[best].atom, slots);
        ComputeScanPositions(&atom, bound);
        AtomSlots(atom, &bound);
        step.kind = CompiledSubgoal::Kind::kAtom;
        step.atom = std::move(atom);
        pick = best;
      }
    }
    // Priority 4: aggregates once their grouping variables are bound.
    for (size_t i = 0; i < body.size() && pick < 0; ++i) {
      if (done[i] || body[i].kind != Subgoal::Kind::kAggregate) continue;
      if (!AggregateReady(body[i].aggregate, slots, bound)) continue;
      MAD_ASSIGN_OR_RETURN(CompiledAggregate agg,
                           CompileAggregate(body[i].aggregate, slots, &bound));
      step.kind = CompiledSubgoal::Kind::kAggregate;
      step.aggregate = std::move(agg);
      pick = static_cast<int>(i);
    }

    if (pick < 0) {
      return Status::Internal(StrPrintf(
          "no safe evaluation order for rule '%s'; is it range-restricted?",
          rule.ToString().c_str()));
    }
    done[pick] = true;
    --remaining;
    schedule.push_back(std::move(step));
  }
  return schedule;
}

}  // namespace

StatusOr<CompiledRule> CompileRule(const Rule& rule,
                                   const analysis::DependencyGraph& graph,
                                   JoinOrderMode mode,
                                   const analysis::plan::QueryPlan* plan) {
  CompiledRule out;
  out.source = &rule;
  SlotMap slots;

  // Preference ranks per body subgoal (lower = earlier among ready ones).
  // kHeuristic keeps the tiered scheduler (null ranks); kTextual ranks by
  // source position; kPlanned overlays the static plan's order when it
  // covers the body exactly, falling back to textual otherwise.
  std::optional<std::vector<int>> pref;
  if (mode != JoinOrderMode::kHeuristic) {
    std::vector<int> ranks(rule.body.size());
    for (size_t i = 0; i < ranks.size(); ++i) ranks[i] = static_cast<int>(i);
    if (mode == JoinOrderMode::kPlanned && plan != nullptr) {
      std::vector<int> order = plan->Order();
      std::vector<bool> seen(rule.body.size(), false);
      bool usable = order.size() == rule.body.size();
      for (int idx : order) {
        if (!usable) break;
        if (idx < 0 || idx >= static_cast<int>(rule.body.size()) ||
            seen[idx]) {
          usable = false;
          break;
        }
        seen[idx] = true;
      }
      if (usable) {
        for (size_t pos = 0; pos < order.size(); ++pos) {
          ranks[order[pos]] = static_cast<int>(pos);
        }
      }
    }
    pref = std::move(ranks);
  }
  const std::vector<int>* prefp = pref.has_value() ? &*pref : nullptr;

  // Compile the head first so head variables get low slot ids.
  out.head_pred = rule.head.pred;
  for (int i = 0; i < rule.head.pred->key_arity(); ++i) {
    out.head_key.push_back(slots.Compile(rule.head.args[i]));
  }
  if (rule.head.pred->has_cost) {
    out.head_cost = slots.Compile(rule.head.args.back());
  }

  MAD_ASSIGN_OR_RETURN(out.base, ScheduleBody(rule, &slots, {}, prefp));

  // Drivers: one per positive/aggregate-inner occurrence. CDB occurrences
  // drive ordinary semi-naive rounds; LDB ones only fire when Engine::Update
  // inserts new extensional facts.
  for (size_t i = 0; i < rule.body.size(); ++i) {
    const Subgoal& sg = rule.body[i];
    if (sg.kind == Subgoal::Kind::kAtom) {
      DriverVariant d;
      d.delta_pred = sg.atom.pred;
      d.cdb = graph.IsCdbFor(rule, sg.atom.pred);
      d.seed = CompileAtom(sg.atom, &slots);
      std::set<int> bound;
      AtomSlots(d.seed, &bound);
      MAD_ASSIGN_OR_RETURN(
          d.rest,
          ScheduleBody(rule, &slots, bound, prefp, static_cast<int>(i)));
      out.drivers.push_back(std::move(d));
    } else if (sg.kind == Subgoal::Kind::kAggregate) {
      const AggregateSubgoal& agg = sg.aggregate;
      for (size_t j = 0; j < agg.atoms.size(); ++j) {
        DriverVariant d;
        d.via_aggregate = true;
        d.delta_pred = agg.atoms[j].pred;
        d.cdb = graph.IsCdbFor(rule, agg.atoms[j].pred);
        d.seed = CompileAtom(agg.atoms[j], &slots);
        for (const std::string& g : agg.grouping_vars) {
          d.grouping_slots.push_back(slots.SlotOf(g));
        }
        std::set<int> bound;
        AtomSlots(d.seed, &bound);
        // If the seed already binds all grouping variables the finder is
        // empty; otherwise join the remaining inner atoms to locate groups.
        bool need_finder = false;
        for (int g : d.grouping_slots) need_finder |= !bound.count(g);
        if (need_finder) {
          std::vector<Atom> others;
          for (size_t k = 0; k < agg.atoms.size(); ++k) {
            if (k != j) others.push_back(agg.atoms[k]);
          }
          MAD_RETURN_IF_ERROR(
              ScheduleInnerAtoms(others, &slots, &bound, &d.group_finder));
        }
        std::set<int> group_bound(d.grouping_slots.begin(),
                                  d.grouping_slots.end());
        MAD_ASSIGN_OR_RETURN(
            d.rest, ScheduleBody(rule, &slots, group_bound, prefp));
        out.drivers.push_back(std::move(d));
      }
    }
  }

  out.num_slots = static_cast<int>(slots.names().size());
  out.slot_names = slots.names();
  for (int s = 0; s < out.num_slots; ++s) {
    out.var_slots[out.slot_names[s]] = s;
  }
  return out;
}

StatusOr<std::vector<CompiledRule>> CompileComponent(
    const datalog::Program& program, const analysis::Component& component,
    const analysis::DependencyGraph& graph, const CompileOrder& order) {
  std::vector<CompiledRule> rules;
  rules.reserve(component.rule_indices.size());
  for (int ri : component.rule_indices) {
    const analysis::plan::QueryPlan* plan =
        order.plans != nullptr ? order.plans->ForRule(ri) : nullptr;
    MAD_ASSIGN_OR_RETURN(
        CompiledRule cr,
        CompileRule(program.rules()[ri], graph, order.mode, plan));
    cr.rule_index = ri;
    rules.push_back(std::move(cr));
  }
  return rules;
}

namespace {

void CollectFromAtoms(const std::vector<CompiledAtom>& atoms,
                      std::vector<ScanPattern>* out) {
  for (const CompiledAtom& a : atoms) {
    out->push_back({a.pred, a.scan_positions});
  }
}

void CollectFromSchedule(const Schedule& schedule,
                         std::vector<ScanPattern>* out) {
  for (const CompiledSubgoal& sg : schedule) {
    switch (sg.kind) {
      case CompiledSubgoal::Kind::kAtom:
        out->push_back({sg.atom.pred, sg.atom.scan_positions});
        break;
      case CompiledSubgoal::Kind::kNegatedAtom:
        break;  // point lookup on the primary map, no secondary index
      case CompiledSubgoal::Kind::kAggregate:
        CollectFromAtoms(sg.aggregate.inner, out);
        break;
      case CompiledSubgoal::Kind::kBuiltin:
        break;
    }
  }
}

}  // namespace

void CollectScanPatterns(const CompiledRule& rule,
                         std::vector<ScanPattern>* out) {
  CollectFromSchedule(rule.base, out);
  for (const DriverVariant& d : rule.drivers) {
    CollectFromAtoms(d.group_finder, out);
    CollectFromSchedule(d.rest, out);
  }
}

}  // namespace core
}  // namespace mad
