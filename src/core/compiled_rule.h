#ifndef MAD_CORE_COMPILED_RULE_H_
#define MAD_CORE_COMPILED_RULE_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "analysis/dependency_graph.h"
#include "analysis/plan/plan.h"
#include "datalog/ast.h"
#include "util/status.h"

namespace mad {
namespace core {

using datalog::PredicateInfo;
using datalog::Rule;
using datalog::Value;

/// How the scheduler picks among the safely-executable body subgoals. The
/// safety (readiness) conditions are identical in every mode — only the
/// preference among ready subgoals differs — so all three modes compute the
/// same least model for monotone programs (certified by the planned-vs-
/// textual differential gate); they differ only in work performed.
enum class JoinOrderMode {
  /// Legacy greedy tiers: builtins first, then fully-bound negation, then
  /// the positive atom with the most bound key positions, then ready
  /// aggregates.
  kHeuristic,
  /// The earliest safe subgoal in source order — the differential oracle.
  kTextual,
  /// Follow the static planner's per-rule QueryPlan order (analysis/plan).
  kPlanned,
};

/// Join-order directive for rule compilation. `plans` must outlive the
/// compiled rules when mode == kPlanned; a rule without a usable plan falls
/// back to textual preference.
struct CompileOrder {
  JoinOrderMode mode = JoinOrderMode::kHeuristic;
  const analysis::plan::PlanReport* plans = nullptr;
};

/// A term compiled to either a variable slot or an inline constant.
struct SlotTerm {
  bool is_slot = false;
  int slot = -1;
  Value constant;

  static SlotTerm Slot(int s) {
    SlotTerm t;
    t.is_slot = true;
    t.slot = s;
    return t;
  }
  static SlotTerm Const(Value v) {
    SlotTerm t;
    t.constant = std::move(v);
    return t;
  }
};

/// A body atom compiled for execution. `scan_positions` lists the key
/// positions statically known to be bound when this step runs — the scan
/// pattern handed to Relation::Scan; all positions are additionally verified
/// dynamically during row matching.
struct CompiledAtom {
  const PredicateInfo* pred = nullptr;
  std::vector<SlotTerm> key_args;
  std::optional<SlotTerm> cost_arg;
  std::vector<int> scan_positions;
};

/// A built-in comparison, possibly acting as an assignment of one slot.
struct CompiledBuiltin {
  datalog::CmpOp op = datalog::CmpOp::kEq;
  const datalog::Expr* lhs = nullptr;  ///< owned by the source Rule
  const datalog::Expr* rhs = nullptr;
  /// If >= 0, this equality defines `assign_slot` from `value_expr`.
  int assign_slot = -1;
  const datalog::Expr* value_expr = nullptr;
};

/// An aggregate subgoal compiled for execution: the inner conjunction is
/// itself a scheduled atom list over the same slot space; local slots (and
/// the multiset slot) are scoped to the aggregation and cleared afterwards.
struct CompiledAggregate {
  const lattice::AggregateFunction* fn = nullptr;
  bool restricted = false;
  SlotTerm result;
  int multiset_slot = -1;  ///< slot of E, or -1 for implicit-presence
  std::vector<CompiledAtom> inner;  ///< scheduled execution order
  std::vector<int> grouping_slots;
  /// Slots bound only inside the aggregation (locals, E, and any inner-only
  /// helper slots); cleared when the aggregation finishes.
  std::vector<int> scoped_slots;
};

/// One executable step of a schedule.
struct CompiledSubgoal {
  enum class Kind { kAtom, kNegatedAtom, kAggregate, kBuiltin };
  Kind kind = Kind::kAtom;
  CompiledAtom atom;
  CompiledAggregate aggregate;
  CompiledBuiltin builtin;
};

using Schedule = std::vector<CompiledSubgoal>;

/// A semi-naive evaluation entry point: re-derives everything a changed row
/// of `delta_pred` can contribute through one particular CDB occurrence.
struct DriverVariant {
  const PredicateInfo* delta_pred = nullptr;
  /// True iff delta_pred is mutually recursive with the rule head. CDB
  /// drivers power ordinary semi-naive rounds; LDB drivers only fire during
  /// incremental updates (Engine::Update), where extensional facts change.
  bool cdb = false;
  /// The occurrence the delta row is matched against. For an atom driver
  /// this is the body atom itself; for an aggregate driver it is one inner
  /// atom of the aggregate subgoal.
  CompiledAtom seed;
  bool via_aggregate = false;
  /// Aggregate drivers: after seeding, these scheduled atoms (the remaining
  /// inner conjunction) bind the rest of the grouping variables.
  std::vector<CompiledAtom> group_finder;
  /// Aggregate drivers: the grouping slots to retain; all other slots are
  /// cleared before running `rest` (the aggregate re-aggregates its full
  /// group — seeding local variables would truncate the multiset).
  std::vector<int> grouping_slots;
  /// The schedule to run after seeding. Atom drivers: the rule body minus
  /// the seed occurrence. Aggregate drivers: the full rule body.
  Schedule rest;
};

/// A rule compiled against one component's CDB classification.
struct CompiledRule {
  const Rule* source = nullptr;
  /// Index of the source rule within Program::rules() (provenance).
  int rule_index = -1;
  int num_slots = 0;
  std::vector<std::string> slot_names;
  /// Variable-name -> slot map (built-in expressions refer to names).
  std::map<std::string, int> var_slots;

  const PredicateInfo* head_pred = nullptr;
  std::vector<SlotTerm> head_key;
  std::optional<SlotTerm> head_cost;

  /// Full evaluation order (used by naive rounds and semi-naive round 0).
  Schedule base;
  /// One driver per positive-atom or aggregate-inner occurrence — CDB
  /// occurrences (semi-naive delta rounds) and LDB occurrences (incremental
  /// updates) alike; see DriverVariant::cdb.
  std::vector<DriverVariant> drivers;

  /// True iff the body mentions a CDB predicate anywhere; rules without CDB
  /// occurrences are exhausted by round 0.
  bool has_cdb_occurrence() const {
    for (const DriverVariant& d : drivers) {
      if (d.cdb) return true;
    }
    return false;
  }
};

/// Compiles `rule` for evaluation inside the component identified by
/// `graph`'s classification. Fails (Internal) only if no safe subgoal order
/// exists — which range restriction rules out. `mode`/`plan` select the
/// subgoal preference order (see JoinOrderMode); `plan`, when given, is the
/// static QueryPlan for this rule and is only consulted under kPlanned.
StatusOr<CompiledRule> CompileRule(
    const Rule& rule, const analysis::DependencyGraph& graph,
    JoinOrderMode mode = JoinOrderMode::kHeuristic,
    const analysis::plan::QueryPlan* plan = nullptr);

/// Compiles every rule of `component` (in rule_indices order), stamping each
/// CompiledRule::rule_index. One compilation path for batch evaluation and
/// incremental maintenance alike.
StatusOr<std::vector<CompiledRule>> CompileComponent(
    const datalog::Program& program, const analysis::Component& component,
    const analysis::DependencyGraph& graph, const CompileOrder& order = {});

/// One (predicate, scan-position-set) pattern a schedule may hand to
/// Relation::Scan.
using ScanPattern = std::pair<const PredicateInfo*, std::vector<int>>;

/// Appends every scan pattern reachable from `rule`'s schedules — the base
/// schedule, each driver's rest schedule and group finder, and aggregate
/// inner lists. The parallel evaluator forces these secondary indexes before
/// each round's fan-out so concurrent scans are pure reads (patterns the
/// static schedule under-approximates are still built safely, just under the
/// exclusive lock). Duplicates are not removed.
void CollectScanPatterns(const CompiledRule& rule,
                         std::vector<ScanPattern>* out);

}  // namespace core
}  // namespace mad

#endif  // MAD_CORE_COMPILED_RULE_H_
