#include "core/engine.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <queue>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "lattice/cost_domain.h"
#include "util/string_util.h"

namespace mad {
namespace core {

using datalog::Relation;
using datalog::Tuple;
using datalog::TupleHash;
using lattice::NumericDomain;

const char* StrategyName(Strategy s) {
  switch (s) {
    case Strategy::kNaive:
      return "naive";
    case Strategy::kSemiNaive:
      return "semi-naive";
    case Strategy::kGreedy:
      return "greedy";
  }
  return "?";
}

const char* CompletenessName(Completeness c) {
  switch (c) {
    case Completeness::kLeastModel:
      return "least-model";
    case Completeness::kUnderApproximation:
      return "under-approximation";
  }
  return "?";
}

void EvalStats::Accumulate(const EvalStats& other) {
  iterations += other.iterations;
  rule_evaluations += other.rule_evaluations;
  derivations += other.derivations;
  merges_new += other.merges_new;
  merges_increased += other.merges_increased;
  subgoal_evals += other.subgoal_evals;
  index_reuses += other.index_reuses;
  greedy_violations += other.greedy_violations;
  reached_fixpoint = reached_fixpoint && other.reached_fixpoint;
  if (limit_tripped == LimitKind::kNone) limit_tripped = other.limit_tripped;
  wall_seconds += other.wall_seconds;
}

std::string EvalStats::ToString() const {
  std::string out = StrPrintf(
      "iterations=%lld rule_evals=%lld derivations=%lld new=%lld "
      "increased=%lld subgoals=%lld index_reuses=%lld "
      "greedy_violations=%lld fixpoint=%s wall=%.4fs",
      static_cast<long long>(iterations),
      static_cast<long long>(rule_evaluations),
      static_cast<long long>(derivations),
      static_cast<long long>(merges_new),
      static_cast<long long>(merges_increased),
      static_cast<long long>(subgoal_evals),
      static_cast<long long>(index_reuses),
      static_cast<long long>(greedy_violations),
      reached_fixpoint ? "yes" : "NO", wall_seconds);
  if (limit_tripped != LimitKind::kNone) {
    out += StrPrintf(" limit=%s", LimitKindName(limit_tripped));
  }
  return out;
}

// ---------------------------------------------------------------------------
// Engine
// ---------------------------------------------------------------------------

namespace {

void CollectExprConstants(const datalog::Expr& e, std::set<Value>* out) {
  switch (e.kind) {
    case datalog::Expr::Kind::kConst:
      out->insert(e.constant);
      return;
    case datalog::Expr::Kind::kVar:
      return;
    default:
      CollectExprConstants(*e.lhs, out);
      CollectExprConstants(*e.rhs, out);
  }
}

void CollectRuleConstants(const datalog::Rule& rule, std::set<Value>* out) {
  auto from_atom = [&](const datalog::Atom& a) {
    for (const datalog::Term& t : a.args) {
      if (t.is_const()) out->insert(t.constant);
    }
  };
  from_atom(rule.head);
  for (const datalog::Subgoal& sg : rule.body) {
    switch (sg.kind) {
      case datalog::Subgoal::Kind::kAtom:
      case datalog::Subgoal::Kind::kNegatedAtom:
        from_atom(sg.atom);
        break;
      case datalog::Subgoal::Kind::kAggregate:
        for (const datalog::Atom& a : sg.aggregate.atoms) from_atom(a);
        if (sg.aggregate.result.is_const()) {
          out->insert(sg.aggregate.result.constant);
        }
        break;
      case datalog::Subgoal::Kind::kBuiltin:
        CollectExprConstants(*sg.builtin.lhs, out);
        CollectExprConstants(*sg.builtin.rhs, out);
        break;
    }
  }
}

/// A provable upper bound on the fixpoint rounds of a bounded-chains
/// component, from the database at component entry. Every non-final round
/// performs at least one merge (a new key or a ⊑-increase), so
///   rounds  ≤  (#derivable keys) × (per-key chain height) + 2.
/// Keys are drawn from the active domain (every value in the database plus
/// the component's rule constants): at most A^arity per predicate. The
/// chain height is the certificate's static height, or — for selective cost
/// flows, which never mint new values — the number of distinct values in
/// play plus the lattice endpoints. Overflow saturates to INT64_MAX, which
/// the caller min()s with the configured guard.
int64_t BoundedChainRoundCap(const Program& program,
                             const analysis::Component& component,
                             const analysis::ComponentTermination& term,
                             const Database& db) {
  std::set<Value> values;  // active domain: keys, costs, rule constants
  for (const auto& [_, rel] : db.relations()) {
    rel->ForEach([&](const Tuple& key, const Value& cost) {
      for (const Value& v : key) values.insert(v);
      if (rel->pred()->has_cost) values.insert(cost);
    });
  }
  for (int ri : component.rule_indices) {
    CollectRuleConstants(program.rules()[ri], &values);
  }
  long double active = static_cast<long double>(values.size()) + 1.0L;

  long double height;
  if (term.chain_height >= 0) {
    height = static_cast<long double>(term.chain_height);
  } else {
    // Selective flow: per-key values ⊆ values in play ∪ {⊥, ⊤}.
    height = static_cast<long double>(values.size()) + 2.0L;
  }

  long double keys = 0.0L;
  for (const PredicateInfo* pred : component.predicates) {
    long double k = 1.0L;
    for (int i = 0; i < pred->key_arity(); ++i) k *= active;
    keys += k;
  }
  long double cap = keys * height + 2.0L;
  if (!std::isfinite(static_cast<double>(cap)) || cap > 9.0e18L) {
    return std::numeric_limits<int64_t>::max();
  }
  return static_cast<int64_t>(cap);
}

}  // namespace

Engine::Engine(const Program& program, EvalOptions options)
    : program_(&program), options_(options), graph_(program) {}

StatusOr<EvalResult> Engine::Run(Database edb) const {
  EvalResult result;
  // The database is assembled BEFORE the static checks: semantic
  // certificates (and the bounded-chain round caps derived from them) are
  // only valid for the fact values the abstract interpreter has seen.
  result.db = std::move(edb);
  for (const datalog::Fact& f : program_->facts()) {
    MAD_RETURN_IF_ERROR(result.db.AddFact(f));
  }
  result.check = analysis::CheckProgram(*program_, graph_, "", &result.db);
  if (options_.validate) {
    // overall() fails exactly when check.diagnostics carries error-severity
    // findings. Warning- and note-level findings (termination, prefix
    // soundness, hygiene) stay recorded in result.check and evaluation
    // proceeds.
    MAD_RETURN_IF_ERROR(result.check.overall());
  }

  Provenance* prov = options_.track_provenance ? &result.provenance : nullptr;
  if (prov != nullptr) {
    // Everything present before evaluation is an EDB fact.
    for (const auto& [_, rel] : result.db.relations()) {
      for (size_t row = 0; row < rel->size(); ++row) {
        prov->Record(rel->pred(), static_cast<uint32_t>(row),
                     Provenance::kEdbFact);
      }
    }
  }

  result.component_stats.resize(graph_.components().size());
  ResourceGuard guard(options_.limits);

  // Static join-order planning: one PlanReport per run, costed from the
  // live EDB relation sizes, consumed read-only by every CompileComponent
  // below (including concurrent same-depth pipelining).
  CompileOrder order;
  order.mode = options_.join_order;
  std::unique_ptr<analysis::plan::PlanReport> plans;
  if (options_.join_order == JoinOrderMode::kPlanned) {
    plans = std::make_unique<analysis::plan::PlanReport>(
        analysis::plan::PlanProgram(
            *program_, graph_,
            analysis::plan::CardinalityEstimates::FromDatabase(*program_,
                                                               result.db)));
    order.plans = plans.get();
  }

  // Parallel evaluation applies to semi-naive fixpoints without provenance
  // (Provenance is single-writer). A pool of 1 would be pure overhead, so
  // anything else stays on the untouched serial path.
  std::unique_ptr<ThreadPool> pool;
  if (options_.num_threads > 1 && options_.strategy == Strategy::kSemiNaive &&
      !options_.track_provenance) {
    pool = std::make_unique<ThreadPool>(options_.num_threads);
    // Pre-create every head relation so evaluation never mutates the
    // relation map: concurrent merge shards and pipelined components then
    // only ever FindMutable existing nodes.
    for (const datalog::Rule& r : program_->rules()) {
      result.db.GetOrCreate(r.head.pred);
    }
  }
  int64_t index_reuses_before = 0;
  for (const auto& [_, rel] : result.db.relations()) {
    index_reuses_before += rel->index_reuses();
  }

  // Round-cap helper: components with a bounded-chains certificate get a
  // concrete cap derived from the database at component entry — hitting it
  // would falsify the certificate, whereas the blanket max_iterations guard
  // is merely a heuristic stop. Scans the whole database, so it must run
  // serially (before any same-depth fan-out).
  auto round_cap = [&](const analysis::Component& component) -> int64_t {
    int64_t max_iters = options_.max_iterations;
    for (const analysis::ComponentTermination& t :
         result.check.termination.components) {
      if (t.component_index != component.index ||
          t.verdict != analysis::TerminationVerdict::kBoundedChains) {
        continue;
      }
      max_iters = std::min(
          max_iters, BoundedChainRoundCap(*program_, component, t, result.db));
      break;
    }
    return max_iters;
  };

  auto run_one = [&](const analysis::Component& component,
                     int64_t max_iters) -> Status {
    EvalStats& cstats = result.component_stats[component.index];
    auto c0 = std::chrono::steady_clock::now();
    Status st = RunComponent(component, order, &result.db, &cstats, prov,
                             &guard, max_iters, pool.get());
    cstats.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - c0)
            .count();
    return st;
  };

  // Folds one finished component's stats into the aggregate and translates a
  // tripped resource limit: certifiable (prefix-sound, non-greedy) trips
  // degrade the run to an under-approximation, everything else fails hard.
  // Returns true when the outer loop should stop.
  Status hard_error;
  auto settle = [&](const analysis::Component& component,
                    const Status& st) -> bool {
    EvalStats& cstats = result.component_stats[component.index];
    // Accumulate without double-counting wall time (it is re-measured).
    double saved = result.stats.wall_seconds;
    result.stats.Accumulate(cstats);
    result.stats.wall_seconds = saved;
    if (st.ok()) return false;
    if (st.code() != StatusCode::kResourceExhausted) {
      hard_error = st;
      return true;
    }
    // A resource limit tripped inside this component. The partial database
    // is certifiable exactly when the interrupted iteration is a prefix of
    // a monotone fixpoint computation: the component must be prefix-sound
    // and the strategy must actually iterate T_P from ⊥ (greedy settles
    // keys speculatively, so its intermediate states carry no guarantee).
    const analysis::ComponentVerdict& verdict =
        result.check.components[component.index];
    if (options_.strategy == Strategy::kGreedy || !verdict.prefix_sound) {
      hard_error = st;
      return true;
    }
    cstats.limit_tripped = guard.tripped();
    result.completeness = Completeness::kUnderApproximation;
    result.limit_tripped = guard.tripped();
    if (result.tripped_component < 0) {
      result.tripped_component = component.index;
    }
    result.stats.limit_tripped = guard.tripped();
    result.stats.reached_fixpoint = false;
    return true;
  };

  auto t0 = std::chrono::steady_clock::now();
  const std::vector<analysis::Component>& components = graph_.components();
  size_t ci = 0;
  bool stopped = false;
  while (ci < components.size() && !stopped) {
    // Maximal run of consecutive equal-depth components. Equal condensation
    // depth admits no path between the components in either direction, so
    // their fixpoints read disjoint inputs and write disjoint relations —
    // they may pipeline concurrently through the pool.
    size_t cj = ci + 1;
    while (cj < components.size() &&
           components[cj].depth == components[ci].depth) {
      ++cj;
    }
    std::vector<const analysis::Component*> group;
    for (size_t k = ci; k < cj; ++k) {
      if (!components[k].rule_indices.empty()) group.push_back(&components[k]);
    }
    ci = cj;
    if (group.empty()) continue;

    if (pool != nullptr && group.size() > 1) {
      std::vector<int64_t> caps(group.size());
      for (size_t g = 0; g < group.size(); ++g) caps[g] = round_cap(*group[g]);
      std::vector<Status> statuses(group.size());
      pool->ParallelFor(static_cast<int64_t>(group.size()),
                        [&](int, int64_t g) {
                          statuses[g] = run_one(*group[g], caps[g]);
                        });
      // Settle in component-index order so tripped_component is the
      // smallest interrupted index, matching the serial contract that
      // lower-indexed components hold their full least model.
      for (size_t g = 0; g < group.size(); ++g) {
        if (settle(*group[g], statuses[g])) stopped = true;
      }
    } else {
      for (const analysis::Component* component : group) {
        if (settle(*component, run_one(*component, round_cap(*component)))) {
          stopped = true;
          break;
        }
      }
    }
  }
  if (!hard_error.ok()) return hard_error;
  int64_t index_reuses_after = 0;
  for (const auto& [_, rel] : result.db.relations()) {
    index_reuses_after += rel->index_reuses();
  }
  result.stats.index_reuses = index_reuses_after - index_reuses_before;
  result.stats.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return result;
}

Status Engine::RunComponent(const analysis::Component& component,
                            const CompileOrder& order, Database* db,
                            EvalStats* stats, Provenance* prov,
                            ResourceGuard* guard, int64_t max_iterations,
                            ThreadPool* pool) const {
  MAD_ASSIGN_OR_RETURN(std::vector<CompiledRule> rules,
                       CompileComponent(*program_, component, graph_, order));
  switch (options_.strategy) {
    case Strategy::kNaive:
      return RunNaive(rules, db, stats, prov, guard, max_iterations);
    case Strategy::kSemiNaive:
      return RunSemiNaive(rules, db, stats, prov, guard, max_iterations, pool);
    case Strategy::kGreedy:
      return RunGreedy(component, rules, db, stats, prov, guard);
  }
  return Status::Internal("unknown strategy");
}

// ---------------------------------------------------------------------------
// Merging
// ---------------------------------------------------------------------------

void Engine::MergeOneDerivation(const Derivation& d, Database* db,
                                EvalStats* stats,
                                std::map<int, std::vector<uint32_t>>* delta,
                                Provenance* prov) const {
  Relation* rel = db->FindMutable(d.pred);
  if (rel == nullptr) rel = db->GetOrCreate(d.pred);
  if (options_.epsilon > 0 && d.pred->has_cost) {
    const Value* cur = rel->Find(d.key);
    if (cur != nullptr) {
      Value joined = d.pred->domain->Join(*cur, d.cost);
      if ((joined.is_numeric() || joined.is_bool()) &&
          (cur->is_numeric() || cur->is_bool()) &&
          std::fabs(joined.AsDouble() - cur->AsDouble()) < options_.epsilon) {
        return;  // converged within tolerance
      }
    }
  }
  uint32_t row = 0;
  Relation::MergeResult mr = rel->Merge(d.key, d.cost, &row);
  switch (mr) {
    case Relation::MergeResult::kNew:
      ++stats->merges_new;
      if (delta != nullptr) (*delta)[d.pred->id].push_back(row);
      if (prov != nullptr) prov->Record(d.pred, row, d.rule_index);
      break;
    case Relation::MergeResult::kIncreased:
      ++stats->merges_increased;
      if (delta != nullptr) (*delta)[d.pred->id].push_back(row);
      if (prov != nullptr) prov->Record(d.pred, row, d.rule_index);
      break;
    case Relation::MergeResult::kUnchanged:
      break;
  }
}

Status Engine::MergeDerivations(
    const std::vector<Derivation>& derivations, Database* db,
    EvalStats* stats, std::map<int, std::vector<uint32_t>>* delta,
    Provenance* prov, ResourceGuard* guard) const {
  for (const Derivation& d : derivations) {
    MergeOneDerivation(d, db, stats, delta, prov);
  }
  // Charge after merging: the batch is already safely in the database (any
  // subset of derivations stays ⊑-below the least model under monotone T_P),
  // so a trip loses no work.
  if (guard->active()) {
    LimitKind k = guard->ChargeTuples(static_cast<int64_t>(derivations.size()));
    if (k == LimitKind::kNone && guard->memory_limited()) {
      k = guard->ChargeMemory(db->ApproxBytes());
    }
    if (k != LimitKind::kNone) {
      return Status::ResourceExhausted(guard->Describe());
    }
  }
  return Status::OK();
}

namespace {

void DedupeDelta(std::map<int, std::vector<uint32_t>>* delta) {
  for (auto& [_, rows] : *delta) {
    std::sort(rows.begin(), rows.end());
    rows.erase(std::unique(rows.begin(), rows.end()), rows.end());
  }
}

size_t DeltaSize(const std::map<int, std::vector<uint32_t>>& delta) {
  size_t n = 0;
  for (const auto& [_, rows] : delta) n += rows.size();
  return n;
}

}  // namespace

// ---------------------------------------------------------------------------
// Naive: J <- T_P(J, I) until fixpoint
// ---------------------------------------------------------------------------

Status Engine::RunNaive(const std::vector<CompiledRule>& rules, Database* db,
                        EvalStats* stats, Provenance* prov,
                        ResourceGuard* guard, int64_t max_iterations) const {
  RuleExecutor exec(db);
  if (guard->active()) exec.set_guard(guard);
  std::vector<Derivation> buffer;
  // Unwinds on a tripped limit, keeping the stats coherent for the partial
  // run (Engine::Run decides whether the result is certifiable).
  auto stop = [&](Status st) {
    stats->subgoal_evals = exec.subgoal_evals();
    stats->reached_fixpoint = false;
    return st;
  };
  while (true) {
    if (stats->iterations >= max_iterations) {
      stats->reached_fixpoint = false;
      return Status::OK();
    }
    if (guard->ChargeRound(stats->iterations + 1) != LimitKind::kNone) {
      return stop(Status::ResourceExhausted(guard->Describe()));
    }
    ++stats->iterations;
    buffer.clear();
    for (const CompiledRule& rule : rules) {
      ++stats->rule_evaluations;
      exec.RunBase(rule, &buffer);
    }
    stats->derivations += static_cast<int64_t>(buffer.size());

    if (options_.check_cost_consistency) {
      // A single application of T_P may not derive two different costs for
      // one key (Definition 3.7).
      std::map<int, std::unordered_map<Tuple, Value, TupleHash>> seen;
      for (const Derivation& d : buffer) {
        if (!d.pred->has_cost) continue;
        auto [it, inserted] = seen[d.pred->id].emplace(d.key, d.cost);
        if (!inserted && !d.pred->domain->Equal(it->second, d.cost)) {
          return Status::CostConsistencyViolation(StrPrintf(
              "T_P derived both %s and %s for %s%s in one application",
              it->second.ToString().c_str(), d.cost.ToString().c_str(),
              d.pred->name.c_str(), datalog::TupleToString(d.key).c_str()));
        }
      }
    }

    std::map<int, std::vector<uint32_t>> delta;
    Status st = MergeDerivations(buffer, db, stats, &delta, prov, guard);
    if (st.code() == StatusCode::kResourceExhausted) return stop(st);
    MAD_RETURN_IF_ERROR(st);
    if (DeltaSize(delta) == 0) break;
  }
  stats->subgoal_evals = exec.subgoal_evals();
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Semi-naive: delta-driven rounds
// ---------------------------------------------------------------------------

Status Engine::RunSemiNaive(const std::vector<CompiledRule>& rules,
                            Database* db, EvalStats* stats, Provenance* prov,
                            ResourceGuard* guard, int64_t max_iterations,
                            ThreadPool* pool) const {
  if (pool != nullptr && pool->num_participants() > 1 && prov == nullptr) {
    return RunSemiNaiveParallel(rules, db, stats, guard, max_iterations, pool);
  }
  RuleExecutor exec(db);
  if (guard->active()) exec.set_guard(guard);
  std::vector<Derivation> buffer;
  std::map<int, std::vector<uint32_t>> delta;
  auto stop = [&](Status st) {
    stats->subgoal_evals = exec.subgoal_evals();
    stats->reached_fixpoint = false;
    return st;
  };

  // Round 0: full evaluation against the (empty-CDB) initial interpretation;
  // the default extensions J_∅ are synthesized by the executor.
  if (guard->ChargeRound(1) != LimitKind::kNone) {
    return stop(Status::ResourceExhausted(guard->Describe()));
  }
  ++stats->iterations;
  for (const CompiledRule& rule : rules) {
    ++stats->rule_evaluations;
    buffer.clear();
    exec.RunBase(rule, &buffer);
    stats->derivations += static_cast<int64_t>(buffer.size());
    Status st = MergeDerivations(buffer, db, stats, &delta, prov, guard);
    if (st.code() == StatusCode::kResourceExhausted) return stop(st);
    MAD_RETURN_IF_ERROR(st);
  }

  while (DeltaSize(delta) > 0) {
    if (stats->iterations >= max_iterations) {
      stats->reached_fixpoint = false;
      return Status::OK();
    }
    if (guard->ChargeRound(stats->iterations + 1) != LimitKind::kNone) {
      return stop(Status::ResourceExhausted(guard->Describe()));
    }
    ++stats->iterations;
    DedupeDelta(&delta);
    std::map<int, std::vector<uint32_t>> next_delta;
    for (const CompiledRule& rule : rules) {
      for (const DriverVariant& driver : rule.drivers) {
        auto it = delta.find(driver.delta_pred->id);
        if (it == delta.end()) continue;
        const Relation* rel = db->Find(driver.delta_pred);
        for (uint32_t row : it->second) {
          ++stats->rule_evaluations;
          buffer.clear();
          // Current cost (possibly fresher than at delta-recording time —
          // monotonicity makes that harmless).
          exec.RunDriver(rule, driver, rel->key_at(row), rel->cost_at(row),
                         &buffer);
          stats->derivations += static_cast<int64_t>(buffer.size());
          Status st =
              MergeDerivations(buffer, db, stats, &next_delta, prov, guard);
          if (st.code() == StatusCode::kResourceExhausted) return stop(st);
          MAD_RETURN_IF_ERROR(st);
        }
      }
    }
    delta = std::move(next_delta);
  }
  stats->subgoal_evals = exec.subgoal_evals();
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Parallel semi-naive: phased fan-out / sharded merge
// ---------------------------------------------------------------------------
//
// Soundness rests on two facts. (1) Relation::Merge is the lattice join, and
// joins commute and associate, so the set of derivations produced by a round
// can be folded into the database in any order — including split across
// shard owners — without changing the resulting interpretation (Tarski's
// theorem makes the least fixpoint unique regardless of the T_P application
// schedule). (2) Rounds are strictly phased: every executor of a fan-out
// phase reads the database frozen at the end of the previous merge phase.
// The serial evaluator lets later rules see earlier rules' merges within a
// round; phasing drops that intra-round visibility, but any derivation
// thereby missed is recovered through the delta drivers of a later round —
// the fixpoint, and hence Database::ToString(), is identical.
//
// Within a merge phase, derivations are sharded by head-predicate id, so
// each relation is touched by exactly one shard owner: merging needs no
// per-relation locks, and delta membership (row ∈ delta iff the join
// strictly raised the stored value) is independent of merge order.

Status Engine::RunSemiNaiveParallel(const std::vector<CompiledRule>& rules,
                                    Database* db, EvalStats* stats,
                                    ResourceGuard* guard,
                                    int64_t max_iterations,
                                    ThreadPool* pool) const {
  const int participants = pool->num_participants();
  const int shards = participants;  // shard key: pred->id % shards

  struct WorkerCtx {
    std::unique_ptr<RuleExecutor> exec;
    std::vector<Derivation> buffer;  ///< fan-out scratch, scattered per item
    std::vector<std::vector<Derivation>> by_shard;
    int64_t rule_evaluations = 0;
    int64_t derivations = 0;
  };
  std::vector<WorkerCtx> ctxs(participants);
  for (WorkerCtx& c : ctxs) {
    c.exec = std::make_unique<RuleExecutor>(db);
    if (guard->active()) c.exec->set_guard(guard);
    c.by_shard.resize(shards);
  }

  // Scan patterns this component's schedules can issue; forced before every
  // fan-out so concurrent scans find complete indexes under the shared lock.
  std::vector<ScanPattern> patterns;
  for (const CompiledRule& rule : rules) CollectScanPatterns(rule, &patterns);
  std::sort(patterns.begin(), patterns.end());
  patterns.erase(std::unique(patterns.begin(), patterns.end()),
                 patterns.end());
  auto force_indexes = [&]() {
    for (const ScanPattern& p : patterns) {
      const Relation* rel = db->Find(p.first);
      if (rel != nullptr) rel->ForceIndex(p.second);
    }
  };

  auto scatter = [&](WorkerCtx& c) {
    for (Derivation& d : c.buffer) {
      c.by_shard[d.pred->id % shards].push_back(std::move(d));
    }
    c.derivations += static_cast<int64_t>(c.buffer.size());
    c.buffer.clear();
  };

  // Merge phase: shard s folds every worker's bin s into the database.
  // Workers are visited in participant order for cache-friendly streaming;
  // the order is irrelevant to the outcome (joins commute).
  auto merge_phase =
      [&](std::map<int, std::vector<uint32_t>>* out_delta) -> Status {
    struct ShardOut {
      EvalStats stats;
      std::map<int, std::vector<uint32_t>> delta;
    };
    std::vector<ShardOut> outs(shards);
    pool->ParallelFor(shards, [&](int, int64_t s) {
      ShardOut& out = outs[s];
      for (WorkerCtx& c : ctxs) {
        for (const Derivation& d : c.by_shard[s]) {
          MergeOneDerivation(d, db, &out.stats, &out.delta, nullptr);
        }
      }
    });
    int64_t batch = 0;
    for (WorkerCtx& c : ctxs) {
      for (std::vector<Derivation>& bin : c.by_shard) {
        batch += static_cast<int64_t>(bin.size());
        bin.clear();
      }
    }
    for (ShardOut& out : outs) {
      stats->merges_new += out.stats.merges_new;
      stats->merges_increased += out.stats.merges_increased;
      // Shards partition predicate ids, so these delta maps are disjoint.
      for (auto& [pred_id, rows] : out.delta) {
        (*out_delta)[pred_id] = std::move(rows);
      }
    }
    // Charge after merging, like the serial path: the batch is already
    // safely in the database, so a trip loses no work.
    if (guard->active()) {
      LimitKind k = guard->ChargeTuples(batch);
      if (k == LimitKind::kNone && guard->memory_limited()) {
        k = guard->ChargeMemory(db->ApproxBytes());
      }
      if (k != LimitKind::kNone) {
        return Status::ResourceExhausted(guard->Describe());
      }
    }
    return Status::OK();
  };

  auto drain_ctx_stats = [&]() {
    for (WorkerCtx& c : ctxs) {
      stats->rule_evaluations += c.rule_evaluations;
      stats->derivations += c.derivations;
      stats->subgoal_evals += c.exec->subgoal_evals();
    }
  };
  auto stop = [&](Status st) {
    drain_ctx_stats();
    stats->reached_fixpoint = false;
    return st;
  };

  // Round 0: full evaluation of every rule against the (empty-CDB) initial
  // interpretation, one rule per work item.
  std::map<int, std::vector<uint32_t>> delta;
  if (guard->ChargeRound(1) != LimitKind::kNone) {
    return stop(Status::ResourceExhausted(guard->Describe()));
  }
  ++stats->iterations;
  force_indexes();
  pool->ParallelFor(static_cast<int64_t>(rules.size()),
                    [&](int p, int64_t i) {
                      WorkerCtx& c = ctxs[p];
                      ++c.rule_evaluations;
                      c.exec->RunBase(rules[i], &c.buffer);
                      scatter(c);
                    });
  {
    Status st = merge_phase(&delta);
    if (st.code() == StatusCode::kResourceExhausted) return stop(st);
    MAD_RETURN_IF_ERROR(st);
  }

  // Delta rounds: the driver work of a round — every (rule, driver,
  // delta-row) triple — is one flat item list fanned out across the pool.
  struct DriverItem {
    const CompiledRule* rule;
    const DriverVariant* driver;
    const Relation* rel;
    uint32_t row;
  };
  std::vector<DriverItem> items;
  while (DeltaSize(delta) > 0) {
    if (stats->iterations >= max_iterations) {
      drain_ctx_stats();
      stats->reached_fixpoint = false;
      return Status::OK();
    }
    if (guard->ChargeRound(stats->iterations + 1) != LimitKind::kNone) {
      return stop(Status::ResourceExhausted(guard->Describe()));
    }
    ++stats->iterations;
    DedupeDelta(&delta);
    items.clear();
    for (const CompiledRule& rule : rules) {
      for (const DriverVariant& driver : rule.drivers) {
        auto it = delta.find(driver.delta_pred->id);
        if (it == delta.end()) continue;
        const Relation* rel = db->Find(driver.delta_pred);
        for (uint32_t row : it->second) {
          items.push_back({&rule, &driver, rel, row});
        }
      }
    }
    force_indexes();
    pool->ParallelFor(static_cast<int64_t>(items.size()),
                      [&](int p, int64_t i) {
                        WorkerCtx& c = ctxs[p];
                        const DriverItem& item = items[i];
                        ++c.rule_evaluations;
                        // Current cost (possibly fresher than at
                        // delta-recording time — monotonicity makes that
                        // harmless).
                        c.exec->RunDriver(*item.rule, *item.driver,
                                          item.rel->key_at(item.row),
                                          item.rel->cost_at(item.row),
                                          &c.buffer);
                        scatter(c);
                      });
    std::map<int, std::vector<uint32_t>> next_delta;
    Status st = merge_phase(&next_delta);
    if (st.code() == StatusCode::kResourceExhausted) return stop(st);
    MAD_RETURN_IF_ERROR(st);
    delta = std::move(next_delta);
  }
  drain_ctx_stats();
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Greedy (generalized Dijkstra, Section 5.4 / Ganguly-Greco-Zaniolo style)
// ---------------------------------------------------------------------------

Status Engine::RunGreedy(const analysis::Component& component,
                         const std::vector<CompiledRule>& rules, Database* db,
                         EvalStats* stats, Provenance* prov,
                         ResourceGuard* guard) const {
  // Applicability: every CDB predicate carries a cost from one *totally
  // ordered numeric* lattice family (all ascending or all descending).
  std::optional<bool> ascending;
  for (const PredicateInfo* p : component.predicates) {
    if (!p->has_cost) {
      return Status::InvalidArgument(StrPrintf(
          "greedy evaluation needs cost predicates; '%s' has no cost "
          "argument",
          p->name.c_str()));
    }
    const auto* num = dynamic_cast<const NumericDomain*>(p->domain);
    if (num == nullptr) {
      return Status::InvalidArgument(StrPrintf(
          "greedy evaluation needs numeric cost domains; '%s' uses %s",
          p->name.c_str(), std::string(p->domain->name()).c_str()));
    }
    if (ascending.has_value() && *ascending != num->ascending()) {
      return Status::InvalidArgument(
          "greedy evaluation needs one lattice direction per component");
    }
    ascending = num->ascending();
  }

  RuleExecutor exec(db);
  if (guard->active()) exec.set_guard(guard);
  std::vector<Derivation> buffer;

  // Entries ordered final-value-first: numeric ascending for min-style
  // (descending ⊑) domains, numeric descending for max-style domains.
  struct Entry {
    double sort_key;
    int pred_id;
    uint32_t row;
    double pushed_value;
    bool operator>(const Entry& o) const { return sort_key > o.sort_key; }
  };
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> queue;
  std::map<int, std::vector<bool>> settled;
  std::map<int, const PredicateInfo*> pred_by_id;
  for (const PredicateInfo* p : component.predicates) pred_by_id[p->id] = p;

  auto push_row = [&](const PredicateInfo* pred, uint32_t row) {
    const Relation* rel = db->Find(pred);
    double v = rel->cost_at(row).AsDouble();
    queue.push({*ascending ? -v : v, pred->id, row, v});
  };

  auto merge_greedy = [&]() -> Status {
    for (const Derivation& d : buffer) {
      Relation* rel = db->GetOrCreate(d.pred);
      uint32_t row = 0;
      // Peek: would this merge change a settled key?
      const Value* cur = rel->Find(d.key);
      if (cur != nullptr) {
        auto sit = settled.find(d.pred->id);
        std::optional<uint32_t> existing_row = rel->FindRow(d.key);
        if (sit != settled.end() && existing_row.has_value() &&
            *existing_row < sit->second.size() &&
            sit->second[*existing_row]) {
          if (!d.pred->domain->Equal(d.pred->domain->Join(*cur, d.cost),
                                     *cur)) {
            ++stats->greedy_violations;  // late improvement: greedy is lossy
          }
          continue;
        }
      }
      Relation::MergeResult mr = rel->Merge(d.key, d.cost, &row);
      if (mr == Relation::MergeResult::kNew) {
        ++stats->merges_new;
        if (prov != nullptr) prov->Record(d.pred, row, d.rule_index);
        push_row(d.pred, row);
      } else if (mr == Relation::MergeResult::kIncreased) {
        ++stats->merges_increased;
        if (prov != nullptr) prov->Record(d.pred, row, d.rule_index);
        push_row(d.pred, row);
      }
    }
    // Greedy intermediate states are never certifiable (settled keys may
    // already sit above the least model), so this trip becomes a hard
    // ResourceExhausted at the Run level — but it must still stop the run.
    if (guard->active()) {
      LimitKind k =
          guard->ChargeTuples(static_cast<int64_t>(buffer.size()));
      if (k == LimitKind::kNone && guard->memory_limited()) {
        k = guard->ChargeMemory(db->ApproxBytes());
      }
      if (k != LimitKind::kNone) {
        stats->reached_fixpoint = false;
        return Status::ResourceExhausted(guard->Describe());
      }
    }
    return Status::OK();
  };

  // Seed: full evaluation once.
  for (const CompiledRule& rule : rules) {
    ++stats->rule_evaluations;
    buffer.clear();
    exec.RunBase(rule, &buffer);
    stats->derivations += static_cast<int64_t>(buffer.size());
    MAD_RETURN_IF_ERROR(merge_greedy());
  }

  while (!queue.empty()) {
    Entry e = queue.top();
    queue.pop();
    const PredicateInfo* pred = pred_by_id[e.pred_id];
    const Relation* rel = db->Find(pred);
    double current = rel->cost_at(e.row).AsDouble();
    if (current != e.pushed_value) continue;  // stale entry
    std::vector<bool>& s = settled[e.pred_id];
    if (e.row >= s.size()) s.resize(rel->size(), false);
    if (s[e.row]) continue;
    s[e.row] = true;
    ++stats->iterations;
    // A pop is this strategy's round; poll occasionally so deadline and
    // cancellation bite even when few derivations are produced.
    if (guard->active() && (stats->iterations & 1023) == 0 &&
        guard->Poll() != LimitKind::kNone) {
      stats->reached_fixpoint = false;
      return Status::ResourceExhausted(guard->Describe());
    }

    for (const CompiledRule& rule : rules) {
      for (const DriverVariant& driver : rule.drivers) {
        if (driver.delta_pred != pred) continue;
        ++stats->rule_evaluations;
        buffer.clear();
        exec.RunDriver(rule, driver, rel->key_at(e.row), rel->cost_at(e.row),
                       &buffer);
        stats->derivations += static_cast<int64_t>(buffer.size());
        MAD_RETURN_IF_ERROR(merge_greedy());
      }
    }
  }
  stats->subgoal_evals = exec.subgoal_evals();
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Incremental maintenance (monotone inserts)
// ---------------------------------------------------------------------------

StatusOr<EvalStats> Engine::Update(EvalResult* result,
                                   const std::vector<datalog::Fact>& facts,
                                   const ResourceLimits& limits) const {
  // Insert-only maintenance is exact only under the update-safety
  // discipline: no negation, fully monotonic aggregates, and no value
  // *increase* on a predicate some rule consumes antitonically (new keys
  // for such predicates are still fine — they only add ground instances).
  analysis::UpdateSafety safety = analysis::AnalyzeUpdateSafety(*program_);
  MAD_RETURN_IF_ERROR(safety.basic);

  EvalStats stats;
  ResourceGuard guard(limits);
  Provenance* prov =
      options_.track_provenance ? &result->provenance : nullptr;

  auto guard_increase = [&](const PredicateInfo* pred,
                            Relation::MergeResult mr) -> Status {
    if (mr == Relation::MergeResult::kIncreased &&
        safety.IncreaseUnsafe(pred)) {
      return Status::InvalidArgument(StrPrintf(
          "incremental update raised the value of an existing '%s' key, but "
          "a rule uses that value antitonically; recompute from scratch",
          pred->name.c_str()));
    }
    return Status::OK();
  };

  // Merge the new facts, recording the changed rows per predicate.
  std::map<int, std::vector<uint32_t>> global_delta;
  for (const datalog::Fact& f : facts) {
    Relation* rel = result->db.GetOrCreate(f.pred);
    Value cost;
    if (f.pred->has_cost) {
      if (!f.cost.has_value() || !f.pred->domain->Contains(*f.cost)) {
        return Status::InvalidArgument(StrPrintf(
            "bad incremental fact for '%s'", f.pred->name.c_str()));
      }
      cost = f.pred->domain->Normalize(*f.cost);
    }
    uint32_t row = 0;
    Relation::MergeResult mr = rel->Merge(f.key, cost, &row);
    MAD_RETURN_IF_ERROR(guard_increase(f.pred, mr));
    if (mr != Relation::MergeResult::kUnchanged) {
      global_delta[f.pred->id].push_back(row);
      if (prov != nullptr) prov->Record(f.pred, row, Provenance::kEdbFact);
      ++stats.merges_new;
    }
  }

  RuleExecutor exec(&result->db);
  if (guard.active()) exec.set_guard(&guard);
  std::vector<Derivation> buffer;

  // Update safety already guarantees full input-monotonicity, so a tripped
  // limit always degrades gracefully: the database is ⊑-below the
  // post-insert least model and the result is marked accordingly.
  auto degrade = [&](int component_index) -> EvalStats {
    stats.reached_fixpoint = false;
    stats.limit_tripped = guard.tripped();
    stats.subgoal_evals = exec.subgoal_evals();
    result->completeness = Completeness::kUnderApproximation;
    result->limit_tripped = guard.tripped();
    result->tripped_component = component_index;
    result->stats.Accumulate(stats);
    return stats;
  };

  // Plan join orders against the post-insert database (incremental deltas
  // see the same relation shapes batch evaluation would).
  CompileOrder order;
  order.mode = options_.join_order;
  std::unique_ptr<analysis::plan::PlanReport> plans;
  if (options_.join_order == JoinOrderMode::kPlanned) {
    plans = std::make_unique<analysis::plan::PlanReport>(
        analysis::plan::PlanProgram(
            *program_, graph_,
            analysis::plan::CardinalityEstimates::FromDatabase(*program_,
                                                               result->db)));
    order.plans = plans.get();
  }

  for (const analysis::Component& component : graph_.components()) {
    if (component.rule_indices.empty()) continue;
    MAD_ASSIGN_OR_RETURN(std::vector<CompiledRule> rules,
                         CompileComponent(*program_, component, graph_, order));
    // Seed with everything changed so far (EDB inserts + lower components),
    // then run delta rounds; changes feed both the next round and the
    // global delta consumed by higher components.
    std::map<int, std::vector<uint32_t>> delta = global_delta;
    int64_t component_rounds = 0;
    while (DeltaSize(delta) > 0) {
      if (stats.iterations >= options_.max_iterations) {
        stats.reached_fixpoint = false;
        result->stats.Accumulate(stats);
        return stats;
      }
      if (guard.ChargeRound(++component_rounds) != LimitKind::kNone) {
        return degrade(component.index);
      }
      ++stats.iterations;
      DedupeDelta(&delta);
      std::map<int, std::vector<uint32_t>> next_delta;
      for (const CompiledRule& rule : rules) {
        for (const DriverVariant& driver : rule.drivers) {
          auto it = delta.find(driver.delta_pred->id);
          if (it == delta.end()) continue;
          const Relation* rel = result->db.Find(driver.delta_pred);
          for (uint32_t row : it->second) {
            ++stats.rule_evaluations;
            buffer.clear();
            exec.RunDriver(rule, driver, rel->key_at(row),
                           rel->cost_at(row), &buffer);
            stats.derivations += static_cast<int64_t>(buffer.size());
            // Merge with the increase guard (derived increases on unsafe
            // predicates are just as unsound as inserted ones).
            for (const Derivation& d : buffer) {
              Relation* target = result->db.GetOrCreate(d.pred);
              uint32_t drow = 0;
              Relation::MergeResult mr = target->Merge(d.key, d.cost, &drow);
              MAD_RETURN_IF_ERROR(guard_increase(d.pred, mr));
              if (mr == Relation::MergeResult::kUnchanged) continue;
              if (mr == Relation::MergeResult::kNew) {
                ++stats.merges_new;
              } else {
                ++stats.merges_increased;
              }
              next_delta[d.pred->id].push_back(drow);
              if (prov != nullptr) prov->Record(d.pred, drow, d.rule_index);
            }
            if (guard.active()) {
              LimitKind k =
                  guard.ChargeTuples(static_cast<int64_t>(buffer.size()));
              if (k == LimitKind::kNone && guard.memory_limited()) {
                k = guard.ChargeMemory(result->db.ApproxBytes());
              }
              if (k != LimitKind::kNone) return degrade(component.index);
            }
          }
        }
      }
      for (const auto& [pred_id, rows] : next_delta) {
        auto& acc = global_delta[pred_id];
        acc.insert(acc.end(), rows.begin(), rows.end());
      }
      delta = std::move(next_delta);
    }
  }
  stats.subgoal_evals = exec.subgoal_evals();
  result->stats.Accumulate(stats);
  return stats;
}

// ---------------------------------------------------------------------------
// Point queries (demand analysis)
// ---------------------------------------------------------------------------

std::string QueryResult::ToString() const {
  std::vector<std::string> lines;
  lines.reserve(rows.size());
  for (const datalog::Fact& f : rows) lines.push_back(f.ToString());
  std::sort(lines.begin(), lines.end());
  std::string out;
  for (const std::string& l : lines) {
    out += l;
    out += "\n";
  }
  return out;
}

std::shared_ptr<const analysis::demand::DemandRewrite> Engine::CachedRewrite(
    const analysis::demand::DemandPattern& pattern,
    std::string* bailout_reason) const {
  const std::string key = pattern.pred->name + "^" + pattern.adornment;
  {
    std::lock_guard<std::mutex> lock(demand_mu_);
    auto it = demand_cache_.find(key);
    if (it != demand_cache_.end()) {
      if (it->second->ok) return it->second;
      *bailout_reason = it->second->bailout_reason;
      return nullptr;
    }
  }
  // Rewrite outside the lock — the analysis walks the whole cone and two
  // threads racing to the same pattern just produce identical entries.
  auto rw = std::make_shared<const analysis::demand::DemandRewrite>(
      analysis::demand::RewriteForPattern(*program_, graph_, pattern));
  {
    std::lock_guard<std::mutex> lock(demand_mu_);
    demand_cache_.emplace(key, rw);
  }
  if (!rw->ok) {
    *bailout_reason = rw->bailout_reason;
    return nullptr;
  }
  return rw;
}

StatusOr<QueryResult> Engine::Query(const datalog::Atom& query, Database edb,
                                    const QueryOptions& qopts) const {
  if (query.pred == nullptr) {
    return Status::InvalidArgument("query atom has no predicate");
  }
  if (program_->FindPredicate(query.pred->name) != query.pred) {
    return Status::InvalidArgument(StrPrintf(
        "query predicate '%s' does not belong to this engine's program",
        query.pred->name.c_str()));
  }
  if (static_cast<int>(query.args.size()) != query.pred->arity) {
    return Status::InvalidArgument(StrPrintf(
        "query %s: expected %d arguments", query.ToString().c_str(),
        query.pred->arity));
  }

  QueryResult out;
  out.pred = query.pred;
  analysis::demand::DemandPattern pattern =
      analysis::demand::PatternForQuery(query, &out.cost_widened);
  out.adornment = pattern.adornment;

  std::shared_ptr<const analysis::demand::DemandRewrite> rw;
  if (qopts.mode != QueryOptions::Mode::kFull) {
    rw = CachedRewrite(pattern, &out.bailout_reason);
    if (rw == nullptr && qopts.mode == QueryOptions::Mode::kDemand) {
      return Status::AnalysisError(StrPrintf(
          "demand mode requested but the rewrite for %s bailed out: %s",
          pattern.ToString().c_str(), out.bailout_reason.c_str()));
    }
  }

  EvalResult eval;
  const PredicateInfo* eval_pred = query.pred;
  if (rw != nullptr) {
    if (rw->seed_pred != nullptr) {
      datalog::Fact seed;
      seed.pred = rw->seed_pred;
      for (int pos : rw->bound_key_positions) {
        seed.key.push_back(query.args[pos].constant);
      }
      MAD_RETURN_IF_ERROR(edb.AddFact(seed));
    }
    // The rewrite already re-ran the full static checker on the rewritten
    // program (RewriteForPattern bails out otherwise) — skip re-validating
    // on every point query.
    EvalOptions demand_options = options_;
    demand_options.validate = false;
    if (qopts.limits != nullptr) demand_options.limits = *qopts.limits;
    Engine demand_engine(rw->rewritten, demand_options);
    MAD_ASSIGN_OR_RETURN(eval, demand_engine.Run(std::move(edb)));
    eval_pred = rw->rewritten.FindPredicate(query.pred->name);
    out.used_demand = true;
  } else if (qopts.limits != nullptr) {
    EvalOptions full_options = options_;
    full_options.limits = *qopts.limits;
    Engine full_engine(*program_, full_options);
    MAD_ASSIGN_OR_RETURN(eval, full_engine.Run(std::move(edb)));
  } else {
    MAD_ASSIGN_OR_RETURN(eval, Run(std::move(edb)));
  }
  out.stats = eval.stats;
  out.completeness = eval.completeness;

  // Read the answer off the (sliced or full) least model: rows matching the
  // query's bound key constants, post-filtered by a bound cost column.
  const datalog::Relation* rel = eval.db.Find(eval_pred);
  if (rel != nullptr) {
    std::vector<int> bound_pos;
    datalog::Tuple bound_vals;
    for (int i = 0; i < query.pred->key_arity(); ++i) {
      if (query.args[i].is_const()) {
        bound_pos.push_back(i);
        bound_vals.push_back(query.args[i].constant);
      }
    }
    const datalog::Term* cost_term = query.CostTerm();
    const bool filter_cost =
        cost_term != nullptr && cost_term->is_const();
    rel->Scan(bound_pos, bound_vals,
              [&](const datalog::Tuple& tkey, const datalog::Value& cost) {
                if (filter_cost && !(cost == cost_term->constant)) return;
                datalog::Fact f;
                f.pred = query.pred;
                f.key = tkey;
                if (query.pred->has_cost) f.cost = cost;
                out.rows.push_back(std::move(f));
              });
    std::sort(out.rows.begin(), out.rows.end(),
              [](const datalog::Fact& a, const datalog::Fact& b) {
                return a.key < b.key;
              });
  }
  return out;
}

// ---------------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------------

StatusOr<ParsedRun> ParseAndRun(std::string_view program_text,
                                EvalOptions options) {
  MAD_ASSIGN_OR_RETURN(Program parsed, datalog::ParseProgram(program_text));
  ParsedRun run;
  run.program = std::make_unique<Program>(std::move(parsed));
  Engine engine(*run.program, options);
  MAD_ASSIGN_OR_RETURN(run.result, engine.Run(Database()));
  return run;
}

std::optional<datalog::Value> LookupCost(const Program& program,
                                         const Database& db,
                                         std::string_view pred_name,
                                         const datalog::Tuple& key) {
  const PredicateInfo* pred = program.FindPredicate(pred_name);
  if (pred == nullptr) return std::nullopt;
  const Relation* rel = db.Find(pred);
  const Value* stored = rel != nullptr ? rel->Find(key) : nullptr;
  if (stored != nullptr) {
    return pred->has_cost ? *stored : Value::Bool(true);
  }
  if (pred->has_default) return pred->domain->Bottom();
  return std::nullopt;
}

}  // namespace core
}  // namespace mad
