#ifndef MAD_CORE_ENGINE_H_
#define MAD_CORE_ENGINE_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "analysis/admissibility.h"
#include "analysis/checker.h"
#include "analysis/demand/demand.h"
#include "analysis/dependency_graph.h"
#include "core/compiled_rule.h"
#include "core/executor.h"
#include "core/provenance.h"
#include "datalog/database.h"
#include "datalog/parser.h"
#include "util/resource_guard.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace mad {
namespace core {

using datalog::Database;
using datalog::Program;

/// How a component's least fixpoint is computed (Section 6.2).
enum class Strategy {
  /// Literal iteration J <- T_P(J, I): every rule fully re-evaluated each
  /// round. Reference semantics; also the mode that can dynamically detect
  /// cost-consistency violations within a single T_P application.
  kNaive,
  /// Delta-driven: each round only re-derives what changed rows can newly
  /// contribute, including re-aggregating only affected groups.
  kSemiNaive,
  /// Ganguly-Greco-Zaniolo-style greedy (generalized Dijkstra): settle keys
  /// in final-value-first order. Sound only for extremal programs whose
  /// cost composition never moves a settled key (e.g. shortest paths with
  /// non-negative weights); violations are counted in EvalStats.
  kGreedy,
};

const char* StrategyName(Strategy s);

/// Knobs for one evaluation.
struct EvalOptions {
  Strategy strategy = Strategy::kSemiNaive;
  /// Run the full static checker and refuse non-monotonic programs. Turn
  /// off to reproduce the behaviour of *rejected* programs in experiments.
  bool validate = true;
  /// Upper bound on fixpoint rounds per component (naive/semi-naive) — the
  /// guard for monotone-but-not-continuous operators (Example 5.1).
  int64_t max_iterations = 1'000'000;
  /// Treat numeric cost increases smaller than this as converged. 0 = exact.
  double epsilon = 0.0;
  /// Naive only: verify that each single T_P application derives at most one
  /// cost per key (dynamic cost-consistency check, Definition 3.7).
  bool check_cost_consistency = false;
  /// Record rule-level provenance (which rule set each row's value); see
  /// Provenance::Explain.
  bool track_provenance = false;
  /// Resource budgets (deadline, round/tuple/byte caps, cancellation). The
  /// default imposes nothing. When a limit trips mid-evaluation the engine
  /// stops at the next check boundary; whether that yields a certified
  /// partial result or an error depends on the component — see Completeness.
  ResourceLimits limits = {};
  /// Evaluation parallelism: number of pool participants (the calling
  /// thread plus num_threads-1 workers). 1 (default) runs the untouched
  /// serial code path. With >1, semi-naive rounds partition their
  /// (rule × delta-row) driver work across the pool and merge through
  /// predicate-sharded owners, and independent same-depth components
  /// pipeline concurrently. Sound for any monotone program: Relation::Merge
  /// is a lattice join, so derivation batches commute and the least model —
  /// hence Database::ToString() — is identical for every thread count
  /// (Tarski; see DESIGN.md "Parallel evaluation"). Ignored (serial
  /// fallback) for the naive/greedy strategies, whose semantics are
  /// order-sensitive, and when track_provenance is set.
  int num_threads = 1;
  /// Body join order (see core/compiled_rule.h). kPlanned (default) follows
  /// the static planner's per-rule order, costed at Run()/Update() entry
  /// from the live EDB relation sizes; kTextual evaluates subgoals in
  /// source order (the differential oracle); kHeuristic is the pre-planner
  /// greedy most-bound-first scheduler. Safety conditions are identical in
  /// every mode, so the least model — hence Database::ToString() — is
  /// byte-identical across modes for monotone programs (certified by the
  /// plan differential gate); only the work to reach it changes.
  JoinOrderMode join_order = JoinOrderMode::kPlanned;
};

/// How much of the least model an EvalResult is guaranteed to contain.
enum class Completeness {
  /// The full least model: no resource limit tripped (or limits were unset).
  kLeastModel,
  /// A resource limit stopped the fixpoint early, but every interrupted
  /// component was *prefix-sound* (monotone T_P, strictly monotonic CDB
  /// aggregates — ComponentVerdict::prefix_sound), so the returned database
  /// is certified ⊑-below the least model: every present key is real and no
  /// cost overshoots its true value. Components ordered before the
  /// interrupted one are complete; later ones may be missing entirely.
  kUnderApproximation,
};

const char* CompletenessName(Completeness c);

/// Counters for one evaluation (or one component).
struct EvalStats {
  int64_t iterations = 0;       ///< fixpoint rounds (greedy: queue pops)
  int64_t rule_evaluations = 0; ///< base/driver executions
  int64_t derivations = 0;      ///< head tuples emitted (pre-merge)
  int64_t merges_new = 0;       ///< keys first derived
  int64_t merges_increased = 0; ///< cost strictly raised in ⊑
  int64_t subgoal_evals = 0;
  /// Scans served by an already-complete secondary index (no extension
  /// work) across the run's database — a measure of how well the lazily
  /// built indexes amortize. Aggregate-level only (not per component).
  int64_t index_reuses = 0;
  /// Greedy only: merges that would have raised an already-settled key —
  /// each one is a place where greedy evaluation lost the least model.
  int64_t greedy_violations = 0;
  bool reached_fixpoint = true;
  /// The resource limit that stopped this (component's) evaluation, or
  /// kNone. For the aggregate stats of a run, the limit that ended the run.
  LimitKind limit_tripped = LimitKind::kNone;
  double wall_seconds = 0;

  void Accumulate(const EvalStats& other);
  std::string ToString() const;
};

/// The outcome of Engine::Run.
struct EvalResult {
  /// EDB plus every derived relation (the minimal model M_I^P of each
  /// component, computed bottom-up per Section 6.3).
  Database db;
  EvalStats stats;
  std::vector<EvalStats> component_stats;  ///< indexed like graph components
  analysis::ProgramCheckResult check;
  /// Populated when EvalOptions::track_provenance is set.
  Provenance provenance;
  /// kLeastModel unless a resource limit certified-degraded the run.
  Completeness completeness = Completeness::kLeastModel;
  /// Which limit ended the run (kNone when completeness == kLeastModel).
  LimitKind limit_tripped = LimitKind::kNone;
  /// Index of the component whose fixpoint was interrupted, or -1. Components
  /// with a smaller bottom-up index hold their full least model.
  int tripped_component = -1;
};

/// Knobs for one point query (Engine::Query).
struct QueryOptions {
  enum class Mode {
    /// Use the demand rewrite when it certifies; fall back to evaluating the
    /// full program otherwise (QueryResult::bailout_reason says why).
    kAuto,
    /// Require the demand rewrite: a bail-out is an error, never a silent
    /// full evaluation. For tests and latency-sensitive callers.
    kDemand,
    /// Always evaluate the full program (the oracle the differential gate
    /// compares the demand path against).
    kFull,
  };
  Mode mode = Mode::kAuto;
  /// Per-call resource limits overriding EvalOptions::limits — the serving
  /// layer threads each request's deadline/budget through here. Not owned;
  /// must outlive the Query call. nullptr = use the engine's own limits.
  const ResourceLimits* limits = nullptr;
};

/// The answer to one point query: the matching facts of the queried
/// predicate, plus how they were computed.
struct QueryResult {
  /// The queried predicate (the engine's program's instance, not the
  /// rewrite's copy — callers can use it against their own Program).
  const datalog::PredicateInfo* pred = nullptr;
  /// Matching facts, sorted by key tuple. Each fact's key/cost layout is
  /// the predicate's own; constants in the query atom (including a bound
  /// cost column) have been applied as filters.
  std::vector<datalog::Fact> rows;

  bool used_demand = false;
  /// The key adornment the query induced (e.g. "bf").
  std::string adornment;
  /// Under Mode::kAuto, why the demand path was not taken (empty when it
  /// was). Mirrors MAD025's payload.
  std::string bailout_reason;
  /// True when the query bound a cost column: the demand slice was computed
  /// with that column free and post-filtered (MAD027 widening).
  bool cost_widened = false;

  EvalStats stats;
  /// kLeastModel unless a resource limit certified-degraded the underlying
  /// evaluation (then the rows are a ⊑-under-approximation of the answer).
  Completeness completeness = Completeness::kLeastModel;

  /// Sorted fact lines, one per row — the same rendering Database::ToString
  /// uses, so a query answer is byte-comparable against a full model's
  /// restriction (the demand differential gate relies on this).
  std::string ToString() const;
};

/// Evaluates a program under the paper's minimal-model semantics: components
/// in bottom-up order, each component to its least fixpoint via the selected
/// strategy.
class Engine {
 public:
  explicit Engine(const Program& program, EvalOptions options = {});

  const analysis::DependencyGraph& graph() const { return graph_; }
  const EvalOptions& options() const { return options_; }

  /// Runs to fixpoint. `edb` supplies the extensional relations (the
  /// program's inline facts are added automatically). On success the result
  /// owns the full database.
  ///
  /// With EvalOptions::limits set, a tripped limit ends the run early. If
  /// every component evaluated so far is prefix-sound (and the strategy is
  /// not greedy, whose settled-key semantics void the prefix argument), the
  /// partial database is returned as OK with
  /// Completeness::kUnderApproximation; otherwise the partial state cannot
  /// be certified and the run fails with Status::ResourceExhausted.
  StatusOr<EvalResult> Run(Database edb) const;

  /// Convenience: run with only the program's inline facts as EDB.
  StatusOr<EvalResult> Run() const { return Run(Database()); }

  /// Incremental view maintenance for *monotone inserts*: merges `facts`
  /// into `result` (which must come from a prior Run/Update of this engine)
  /// and continues the fixpoint from the changed rows only, component by
  /// component, instead of recomputing. When every rule is monotone in the
  /// *inputs* too, inserting facts can only move the least model up in ⊑,
  /// so the old model plus the delta-closure is exactly the new least model.
  ///
  /// Rejected (InvalidArgument) when analysis::AnalyzeUpdateSafety finds the
  /// program unsound for inserts (negation, pseudo-monotonic aggregates,
  /// antitonically-used aggregate values), or at merge time when an update
  /// would raise an existing key of an increase-unsafe predicate.
  ///
  /// Honors EvalOptions::limits. Update safety already implies every rule is
  /// monotone in all inputs, so a tripped limit always degrades gracefully:
  /// `result` is marked Completeness::kUnderApproximation (⊑-below the
  /// post-insert least model) and the stats are returned as OK.
  StatusOr<EvalStats> Update(EvalResult* result,
                             const std::vector<datalog::Fact>& facts) const {
    return Update(result, facts, options_.limits);
  }

  /// Update with per-call resource limits overriding EvalOptions::limits —
  /// the serving layer threads each insert request's own deadline/budget
  /// through here so one expensive update degrades (certified) instead of
  /// stalling the writer behind a global knob.
  StatusOr<EvalStats> Update(EvalResult* result,
                             const std::vector<datalog::Fact>& facts,
                             const ResourceLimits& limits) const;

  /// Answers a point query: the facts of `query.pred` matching the query
  /// atom's constants, over the least model of the program on `edb`.
  ///
  /// `edb` is the genuine extensional database — the same thing Run takes —
  /// NOT a materialized result. When the demand rewrite for the query's
  /// adornment certifies (cached per (predicate, adornment), so repeated
  /// point queries pay the static analysis once), only the query's cone is
  /// evaluated: the rewritten program runs against the same EDB plus one
  /// seed fact holding the query's bound key constants. Otherwise — or under
  /// QueryOptions::Mode::kFull — the full program is evaluated and the
  /// answer read off the complete least model.
  ///
  /// The demand path's answer is certified byte-identical to the full path's
  /// (analysis::demand::CertifyRewrite statically, the demand differential
  /// gate dynamically). Thread-safe: concurrent Query calls on one Engine
  /// only share the rewrite cache (mutex-guarded) and the immutable program.
  StatusOr<QueryResult> Query(const datalog::Atom& query, Database edb,
                              const QueryOptions& qopts = {}) const;

 private:
  /// The cached demand rewrite for `pattern` (computing and caching it on
  /// first use — bail-outs are cached too, so repeated undemandable queries
  /// don't re-run the analysis). Returns nullptr and sets `bailout_reason`
  /// when the rewrite bailed out.
  std::shared_ptr<const analysis::demand::DemandRewrite> CachedRewrite(
      const analysis::demand::DemandPattern& pattern,
      std::string* bailout_reason) const;

  /// `max_iterations` is the effective per-component round cap: the global
  /// EvalOptions::max_iterations, or — for components whose certificate
  /// proves bounded chains — the smaller certificate-derived bound (see
  /// BoundedChainRoundCap in engine.cc). `pool` (nullable) enables parallel
  /// semi-naive rounds.
  Status RunComponent(const analysis::Component& component,
                      const CompileOrder& order, Database* db,
                      EvalStats* stats, Provenance* prov, ResourceGuard* guard,
                      int64_t max_iterations, ThreadPool* pool) const;
  Status RunNaive(const std::vector<CompiledRule>& rules, Database* db,
                  EvalStats* stats, Provenance* prov, ResourceGuard* guard,
                  int64_t max_iterations) const;
  Status RunSemiNaive(const std::vector<CompiledRule>& rules, Database* db,
                      EvalStats* stats, Provenance* prov, ResourceGuard* guard,
                      int64_t max_iterations, ThreadPool* pool) const;
  /// Parallel semi-naive: rounds are strictly phased — a fan-out phase runs
  /// (rule × delta-row) driver work on per-participant executors against a
  /// frozen database, then a merge phase shards the buffered derivations by
  /// predicate id so each relation has exactly one writer. Never tracks
  /// provenance (Engine::Run falls back to serial instead).
  Status RunSemiNaiveParallel(const std::vector<CompiledRule>& rules,
                              Database* db, EvalStats* stats,
                              ResourceGuard* guard, int64_t max_iterations,
                              ThreadPool* pool) const;
  Status RunGreedy(const analysis::Component& component,
                   const std::vector<CompiledRule>& rules, Database* db,
                   EvalStats* stats, Provenance* prov,
                   ResourceGuard* guard) const;

  /// Lattice-merges one derivation into `db`, updating `stats` counters and
  /// appending the changed row (if any) to `delta`. The single-writer
  /// building block shared by the serial batch path and the sharded
  /// parallel merge.
  void MergeOneDerivation(const Derivation& d, Database* db, EvalStats* stats,
                          std::map<int, std::vector<uint32_t>>* delta,
                          Provenance* prov) const;

  /// Merges buffered derivations; returns changed row ids per predicate.
  /// `delta` maps predicate id -> row ids changed by this merge batch.
  /// `prov` (nullable) records the producing rule per changed row.
  /// The whole batch is merged *before* `guard` is charged — partial work is
  /// kept (sound under monotonicity) and a trip surfaces as
  /// Status::ResourceExhausted for the strategy loop to unwind.
  Status MergeDerivations(const std::vector<Derivation>& derivations,
                          Database* db, EvalStats* stats,
                          std::map<int, std::vector<uint32_t>>* delta,
                          Provenance* prov, ResourceGuard* guard) const;

  const Program* program_;
  EvalOptions options_;
  analysis::DependencyGraph graph_;

  /// Demand rewrites keyed by "pred^adornment". Value-independent (the same
  /// rewrite serves every bound constant), so one entry per pattern.
  mutable std::mutex demand_mu_;
  mutable std::map<std::string,
                   std::shared_ptr<const analysis::demand::DemandRewrite>>
      demand_cache_;
};

/// A parsed program together with its evaluation result. The database's
/// rows reference PredicateInfo objects owned by the program, so the two
/// must travel together.
struct ParsedRun {
  std::unique_ptr<Program> program;
  EvalResult result;
};

/// One-call helper used by examples and tests: parse, run, return both the
/// program and the result.
StatusOr<ParsedRun> ParseAndRun(std::string_view program_text,
                                EvalOptions options = {});

/// Looks up the cost stored for `key` in predicate `pred_name`, or
/// std::nullopt if the key is absent (for default-value predicates the
/// lattice bottom is substituted). For cost-free predicates, returns
/// Value::Bool(true) when the key is present.
std::optional<datalog::Value> LookupCost(const Program& program,
                                         const Database& db,
                                         std::string_view pred_name,
                                         const datalog::Tuple& key);

}  // namespace core
}  // namespace mad

#endif  // MAD_CORE_ENGINE_H_
