#include "core/executor.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "lattice/cost_domain.h"

namespace mad {
namespace core {

using datalog::CmpOp;
using datalog::Expr;
using lattice::CostDomain;

// ---------------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------------

void RuleExecutor::RunBase(const CompiledRule& rule,
                           std::vector<Derivation>* out) {
  if (stopped_) return;
  current_rule_ = &rule;
  Binding& binding = scratch_;
  binding.Reset(rule.num_slots);
  RunSchedule(rule, rule.base, 0, &binding, out);
}

void RuleExecutor::RunDriver(const CompiledRule& rule,
                             const DriverVariant& driver,
                             const Tuple& delta_key, const Value& delta_cost,
                             std::vector<Derivation>* out) {
  if (stopped_) return;
  current_rule_ = &rule;
  Binding& binding = scratch_;
  binding.Reset(rule.num_slots);
  if (!MatchSeed(driver.seed, delta_key, delta_cost, &binding)) return;

  if (!driver.via_aggregate) {
    RunSchedule(rule, driver.rest, 0, &binding, out);
    return;
  }

  // Aggregate driver: locate the affected groups, then re-evaluate the rule
  // per group with *only* the grouping slots bound (the aggregate must see
  // its full multiset, so the seed's local bindings are dropped).
  std::vector<Tuple> groups;
  auto collect_group = [&]() {
    Tuple g;
    g.reserve(driver.grouping_slots.size());
    for (int s : driver.grouping_slots) {
      assert(binding.IsBound(s));
      g.push_back(binding.Get(s));
    }
    groups.push_back(std::move(g));
  };
  if (driver.group_finder.empty()) {
    collect_group();
  } else {
    EnumAtomList(driver.group_finder, 0, &binding, collect_group);
  }
  // Dedupe groups (a delta row can reach the same group many ways).
  std::sort(groups.begin(), groups.end());
  groups.erase(std::unique(groups.begin(), groups.end()), groups.end());

  for (const Tuple& g : groups) {
    binding.Reset(rule.num_slots);
    for (size_t i = 0; i < driver.grouping_slots.size(); ++i) {
      binding.Set(driver.grouping_slots[i], g[i]);
    }
    RunSchedule(rule, driver.rest, 0, &binding, out);
  }
}

// ---------------------------------------------------------------------------
// Schedule interpretation
// ---------------------------------------------------------------------------

void RuleExecutor::RunSchedule(const CompiledRule& rule,
                               const Schedule& schedule, size_t idx,
                               Binding* binding,
                               std::vector<Derivation>* out) {
  if (stopped_) return;
  if (idx == schedule.size()) {
    EmitHead(rule, *binding, out);
    return;
  }
  const CompiledSubgoal& step = schedule[idx];
  ++subgoal_evals_;
  // Amortized deadline/cancellation poll: a single rule evaluation can be a
  // huge join, so round boundaries alone would make deadlines unresponsive.
  if (guard_ != nullptr && (subgoal_evals_ & 4095) == 0 &&
      guard_->Poll() != LimitKind::kNone) {
    stopped_ = true;
    return;
  }
  switch (step.kind) {
    case CompiledSubgoal::Kind::kAtom:
      EnumAtom(step.atom, binding,
               [&]() { RunSchedule(rule, schedule, idx + 1, binding, out); });
      return;
    case CompiledSubgoal::Kind::kNegatedAtom:
      if (NegationHolds(step.atom, *binding)) {
        RunSchedule(rule, schedule, idx + 1, binding, out);
      }
      return;
    case CompiledSubgoal::Kind::kBuiltin: {
      const CompiledBuiltin& b = step.builtin;
      if (b.assign_slot >= 0 && !binding->IsBound(b.assign_slot)) {
        std::optional<Value> v = EvalExpr(*b.value_expr, rule, *binding);
        if (!v.has_value()) return;
        binding->Set(b.assign_slot, std::move(*v));
        RunSchedule(rule, schedule, idx + 1, binding, out);
        binding->Clear(b.assign_slot);
        return;
      }
      std::optional<Value> l = EvalExpr(*b.lhs, rule, *binding);
      std::optional<Value> r = EvalExpr(*b.rhs, rule, *binding);
      if (!l.has_value() || !r.has_value()) return;
      if (EvalCompare(b.op, *l, *r)) {
        RunSchedule(rule, schedule, idx + 1, binding, out);
      }
      return;
    }
    case CompiledSubgoal::Kind::kAggregate: {
      const CompiledAggregate& agg = step.aggregate;

      // "=r" subgoals may reach this step with unbound grouping variables;
      // enumerate the non-empty groups from the inner conjunction, then
      // evaluate once per group.
      std::vector<int> unbound_groups;
      for (int g : agg.grouping_slots) {
        if (!binding->IsBound(g)) unbound_groups.push_back(g);
      }
      if (!unbound_groups.empty()) {
        std::vector<Tuple> groups;
        EnumAtomList(agg.inner, 0, binding, [&]() {
          Tuple g;
          g.reserve(agg.grouping_slots.size());
          for (int s : agg.grouping_slots) g.push_back(binding->Get(s));
          groups.push_back(std::move(g));
        });
        std::sort(groups.begin(), groups.end());
        groups.erase(std::unique(groups.begin(), groups.end()),
                     groups.end());
        for (const Tuple& g : groups) {
          for (size_t i = 0; i < agg.grouping_slots.size(); ++i) {
            binding->Set(agg.grouping_slots[i], g[i]);
          }
          EvalBoundAggregate(rule, schedule, idx, agg, binding, out);
        }
        for (int s : unbound_groups) binding->Clear(s);
        return;
      }
      EvalBoundAggregate(rule, schedule, idx, agg, binding, out);
      return;
    }
  }
}

void RuleExecutor::EvalBoundAggregate(const CompiledRule& rule,
                                      const Schedule& schedule, size_t idx,
                                      const CompiledAggregate& agg,
                                      Binding* binding,
                                      std::vector<Derivation>* out) {
  std::optional<Value> result;
  if (!EvalAggregateInto(agg, binding, &result)) return;
  const CostDomain* domain = agg.fn->output_domain();
  Value normalized = domain->Normalize(*result);
  if (agg.result.is_slot && !binding->IsBound(agg.result.slot)) {
    binding->Set(agg.result.slot, std::move(normalized));
    RunSchedule(rule, schedule, idx + 1, binding, out);
    binding->Clear(agg.result.slot);
    return;
  }
  const Value& expected = Resolve(agg.result, *binding);
  if (domain->Contains(expected) &&
      domain->Equal(domain->Normalize(expected), normalized)) {
    RunSchedule(rule, schedule, idx + 1, binding, out);
  }
}

void RuleExecutor::EmitHead(const CompiledRule& rule, const Binding& binding,
                            std::vector<Derivation>* out) {
  Derivation d;
  d.rule_index = rule.rule_index;
  d.pred = rule.head_pred;
  d.key.reserve(rule.head_key.size());
  for (const SlotTerm& t : rule.head_key) {
    d.key.push_back(Resolve(t, binding));
  }
  if (rule.head_cost.has_value()) {
    const Value& raw = Resolve(*rule.head_cost, binding);
    // Out-of-domain head costs (e.g. a negative value flowing into a
    // non-negative lattice) mean the ground instance has no satisfying cost;
    // drop the derivation rather than corrupting the lattice.
    if (!rule.head_pred->domain->Contains(raw)) return;
    d.cost = rule.head_pred->domain->Normalize(raw);
  }
  out->push_back(std::move(d));
}

// ---------------------------------------------------------------------------
// Atom enumeration
// ---------------------------------------------------------------------------

void RuleExecutor::EnumAtom(const CompiledAtom& atom, Binding* binding,
                            const std::function<void()>& cont) {
  const Relation* rel = db_->Find(atom.pred);

  if (atom.pred->has_default) {
    // Keys are fully bound (the scheduler guarantees it); the value is the
    // stored core value or the lattice bottom.
    Tuple key;
    key.reserve(atom.key_args.size());
    for (const SlotTerm& t : atom.key_args) {
      assert(!t.is_slot || binding->IsBound(t.slot));
      key.push_back(Resolve(t, *binding));
    }
    const Value* stored = rel != nullptr ? rel->Find(key) : nullptr;
    Value cost = stored != nullptr ? *stored : atom.pred->domain->Bottom();
    if (!atom.cost_arg.has_value()) {
      cont();
      return;
    }
    const SlotTerm& ct = *atom.cost_arg;
    if (ct.is_slot && !binding->IsBound(ct.slot)) {
      binding->Set(ct.slot, std::move(cost));
      cont();
      binding->Clear(ct.slot);
    } else {
      const Value& expected = Resolve(ct, *binding);
      if (atom.pred->domain->Contains(expected) &&
          atom.pred->domain->Equal(atom.pred->domain->Normalize(expected),
                                   cost)) {
        cont();
      }
    }
    return;
  }

  if (rel == nullptr) return;

  // Dynamic scan pattern: every key position whose term is currently ground.
  std::vector<int> positions;
  Tuple values;
  for (int i = 0; i < static_cast<int>(atom.key_args.size()); ++i) {
    const SlotTerm& t = atom.key_args[i];
    if (!t.is_slot) {
      positions.push_back(i);
      values.push_back(t.constant);
    } else if (binding->IsBound(t.slot)) {
      positions.push_back(i);
      values.push_back(binding->Get(t.slot));
    }
  }

  rel->Scan(positions, values, [&](const Tuple& key, const Value& cost) {
    // Match and bind; track which slots this row bound so we can undo.
    std::vector<int> trail;
    bool ok = true;
    for (int i = 0; i < static_cast<int>(atom.key_args.size()) && ok; ++i) {
      const SlotTerm& t = atom.key_args[i];
      if (!t.is_slot) {
        ok = t.constant == key[i];
      } else if (binding->IsBound(t.slot)) {
        ok = binding->Get(t.slot) == key[i];
      } else {
        binding->Set(t.slot, key[i]);
        trail.push_back(t.slot);
      }
    }
    if (ok && atom.cost_arg.has_value()) {
      const SlotTerm& ct = *atom.cost_arg;
      if (ct.is_slot && !binding->IsBound(ct.slot)) {
        binding->Set(ct.slot, cost);
        trail.push_back(ct.slot);
      } else {
        const Value& expected = Resolve(ct, *binding);
        ok = atom.pred->domain->Contains(expected) &&
             atom.pred->domain->Equal(atom.pred->domain->Normalize(expected),
                                      cost);
      }
    }
    if (ok) cont();
    for (int s : trail) binding->Clear(s);
  });
}

void RuleExecutor::EnumAtomList(const std::vector<CompiledAtom>& atoms,
                                size_t idx, Binding* binding,
                                const std::function<void()>& cont) {
  if (stopped_) return;
  if (idx == atoms.size()) {
    cont();
    return;
  }
  EnumAtom(atoms[idx], binding,
           [&]() { EnumAtomList(atoms, idx + 1, binding, cont); });
}

bool RuleExecutor::NegationHolds(const CompiledAtom& atom,
                                 const Binding& binding) {
  Tuple key;
  key.reserve(atom.key_args.size());
  for (const SlotTerm& t : atom.key_args) {
    assert(!t.is_slot || binding.IsBound(t.slot));
    key.push_back(Resolve(t, binding));
  }
  const Relation* rel = db_->Find(atom.pred);
  const Value* stored = rel != nullptr ? rel->Find(key) : nullptr;

  if (!atom.pred->has_cost) {
    return stored == nullptr && (rel == nullptr || !rel->Contains(key));
  }
  // ¬p(k, c): default predicates always carry a value (stored or bottom);
  // others are absent when the key is absent.
  std::optional<Value> actual;
  if (stored != nullptr) {
    actual = *stored;
  } else if (atom.pred->has_default) {
    actual = atom.pred->domain->Bottom();
  }
  if (!actual.has_value()) return true;  // no atom with this key at all
  const Value& expected = Resolve(*atom.cost_arg, binding);
  if (!atom.pred->domain->Contains(expected)) return true;
  return !atom.pred->domain->Equal(atom.pred->domain->Normalize(expected),
                                   *actual);
}

// ---------------------------------------------------------------------------
// Aggregates
// ---------------------------------------------------------------------------

bool RuleExecutor::EvalAggregateInto(const CompiledAggregate& agg,
                                     Binding* binding,
                                     std::optional<Value>* result) {
  std::vector<Value> multiset;
  EnumAtomList(agg.inner, 0, binding, [&]() {
    if (agg.multiset_slot >= 0) {
      multiset.push_back(binding->Get(agg.multiset_slot));
    } else {
      // Implicit-presence aggregation (e.g. `N = count : q(X)`).
      multiset.push_back(Value::Bool(true));
    }
  });
  for (int s : agg.scoped_slots) binding->Clear(s);

  if (agg.restricted && multiset.empty()) return false;
  StatusOr<Value> applied = agg.fn->Apply(multiset);
  if (!applied.ok()) return false;  // e.g. avg over an empty "=" group
  *result = std::move(applied).value();
  return true;
}

// ---------------------------------------------------------------------------
// Seeds, expressions, comparisons
// ---------------------------------------------------------------------------

bool RuleExecutor::MatchSeed(const CompiledAtom& seed, const Tuple& delta_key,
                             const Value& delta_cost, Binding* binding) {
  for (int i = 0; i < static_cast<int>(seed.key_args.size()); ++i) {
    const SlotTerm& t = seed.key_args[i];
    if (!t.is_slot) {
      if (!(t.constant == delta_key[i])) return false;
    } else if (binding->IsBound(t.slot)) {
      if (!(binding->Get(t.slot) == delta_key[i])) return false;
    } else {
      binding->Set(t.slot, delta_key[i]);
    }
  }
  if (seed.cost_arg.has_value()) {
    const SlotTerm& ct = *seed.cost_arg;
    if (ct.is_slot && !binding->IsBound(ct.slot)) {
      binding->Set(ct.slot, delta_cost);
    } else {
      const Value& expected = Resolve(ct, *binding);
      if (!seed.pred->domain->Contains(expected) ||
          !seed.pred->domain->Equal(seed.pred->domain->Normalize(expected),
                                    delta_cost)) {
        return false;
      }
    }
  }
  return true;
}

std::optional<Value> RuleExecutor::EvalExpr(const Expr& e,
                                            const CompiledRule& rule,
                                            const Binding& binding) {
  switch (e.kind) {
    case Expr::Kind::kConst:
      return e.constant;
    case Expr::Kind::kVar: {
      auto it = rule.var_slots.find(e.var);
      if (it == rule.var_slots.end() || !binding.IsBound(it->second)) {
        return std::nullopt;
      }
      return binding.Get(it->second);
    }
    default: {
      std::optional<Value> l = EvalExpr(*e.lhs, rule, binding);
      std::optional<Value> r = EvalExpr(*e.rhs, rule, binding);
      if (!l.has_value() || !r.has_value()) return std::nullopt;
      bool lnum = l->is_numeric() || l->is_bool();
      bool rnum = r->is_numeric() || r->is_bool();
      if (!lnum || !rnum) return std::nullopt;
      bool as_int = l->is_int() && r->is_int();
      switch (e.kind) {
        case Expr::Kind::kAdd:
          return as_int ? Value::Int(l->int_value() + r->int_value())
                        : Value::Real(l->AsDouble() + r->AsDouble());
        case Expr::Kind::kSub:
          return as_int ? Value::Int(l->int_value() - r->int_value())
                        : Value::Real(l->AsDouble() - r->AsDouble());
        case Expr::Kind::kMul:
          return as_int ? Value::Int(l->int_value() * r->int_value())
                        : Value::Real(l->AsDouble() * r->AsDouble());
        case Expr::Kind::kDiv: {
          double denom = r->AsDouble();
          if (denom == 0.0) return std::nullopt;
          return Value::Real(l->AsDouble() / denom);
        }
        case Expr::Kind::kMin2:
          return Value::NumericCompare(*l, *r) <= 0 ? *l : *r;
        case Expr::Kind::kMax2:
          return Value::NumericCompare(*l, *r) >= 0 ? *l : *r;
        default:
          return std::nullopt;
      }
    }
  }
}

bool RuleExecutor::EvalCompare(CmpOp op, const Value& a, const Value& b) {
  bool anum = a.is_numeric() || a.is_bool();
  bool bnum = b.is_numeric() || b.is_bool();
  if (anum && bnum) {
    int c = Value::NumericCompare(a, b);
    switch (op) {
      case CmpOp::kEq:
        return c == 0;
      case CmpOp::kNe:
        return c != 0;
      case CmpOp::kLt:
        return c < 0;
      case CmpOp::kLe:
        return c <= 0;
      case CmpOp::kGt:
        return c > 0;
      case CmpOp::kGe:
        return c >= 0;
    }
    return false;
  }
  // Symbols and sets support only (in)equality.
  switch (op) {
    case CmpOp::kEq:
      return a == b;
    case CmpOp::kNe:
      return !(a == b);
    default:
      return false;
  }
}

}  // namespace core
}  // namespace mad
