#ifndef MAD_CORE_EXECUTOR_H_
#define MAD_CORE_EXECUTOR_H_

#include <functional>
#include <optional>
#include <vector>

#include "core/compiled_rule.h"
#include "datalog/database.h"
#include "util/resource_guard.h"

namespace mad {
namespace core {

using datalog::Database;
using datalog::Relation;
using datalog::Tuple;

/// A variable assignment over a compiled rule's slots. Reset() reuses the
/// vectors' capacity, so a long-lived Binding (one per executor) stops
/// allocating after the first few rules. The bound flags are bytes, not
/// std::vector<bool> bits: IsBound/Set/Clear sit on the innermost join loop
/// and a byte store beats a read-modify-write bit twiddle there.
class Binding {
 public:
  void Reset(int num_slots) {
    values_.assign(num_slots, Value());
    bound_.assign(num_slots, 0);
  }
  bool IsBound(int slot) const { return bound_[slot] != 0; }
  const Value& Get(int slot) const { return values_[slot]; }
  void Set(int slot, Value v) {
    values_[slot] = std::move(v);
    bound_[slot] = 1;
  }
  void Clear(int slot) {
    bound_[slot] = 0;
    values_[slot] = Value();
  }

 private:
  std::vector<Value> values_;
  std::vector<uint8_t> bound_;
};

/// One head derivation produced by a rule evaluation.
struct Derivation {
  const PredicateInfo* pred = nullptr;
  Tuple key;
  Value cost;  ///< normalized; unset for cost-free predicates
  int rule_index = -1;
};

/// Evaluates compiled rules against a database, emitting derivations into a
/// caller-supplied buffer. The executor never mutates the database — callers
/// merge the buffered derivations afterwards, which keeps relation scans and
/// inserts strictly phased (T_P reads J, then J is advanced).
///
/// Default-value cost predicates are synthesized on the fly: a lookup of an
/// absent key yields the domain's Bottom(), so only the core is ever stored
/// (Section 2.3.3) while aggregates see the full default extension
/// (Example 4.4 depends on this).
class RuleExecutor {
 public:
  explicit RuleExecutor(const Database* db) : db_(db) {}

  /// Full evaluation of the rule (naive rounds, semi-naive round 0).
  void RunBase(const CompiledRule& rule, std::vector<Derivation>* out);

  /// Semi-naive: derive everything the changed row (delta_key, delta_cost)
  /// of `driver.delta_pred` can newly contribute through this occurrence.
  void RunDriver(const CompiledRule& rule, const DriverVariant& driver,
                 const Tuple& delta_key, const Value& delta_cost,
                 std::vector<Derivation>* out);

  /// Number of subgoal evaluations performed (for EvalStats).
  int64_t subgoal_evals() const { return subgoal_evals_; }

  /// Attaches an *active* resource guard: the executor polls it once per
  /// ~4096 subgoal evaluations and, on a trip, abandons the remaining
  /// enumeration mid-rule. Derivations already buffered stay valid — under a
  /// monotone T_P any subset of one application's derivations is still
  /// ⊑-below the least model, so the caller merges the partial buffer and
  /// then observes the trip through its own guard checks.
  void set_guard(ResourceGuard* guard) { guard_ = guard; }

  /// True once an attached guard tripped during evaluation; subsequent
  /// RunBase/RunDriver calls return immediately.
  bool stopped() const { return stopped_; }

 private:
  void RunSchedule(const CompiledRule& rule, const Schedule& schedule,
                   size_t idx, Binding* binding,
                   std::vector<Derivation>* out);
  /// Evaluates an aggregate step whose grouping slots are all bound, then
  /// continues the schedule.
  void EvalBoundAggregate(const CompiledRule& rule, const Schedule& schedule,
                          size_t idx, const CompiledAggregate& agg,
                          Binding* binding, std::vector<Derivation>* out);
  void EmitHead(const CompiledRule& rule, const Binding& binding,
                std::vector<Derivation>* out);

  /// Enumerates rows of `atom` compatible with `binding`, invoking `cont`
  /// with the newly bound slots set; restores the binding afterwards.
  void EnumAtom(const CompiledAtom& atom, Binding* binding,
                const std::function<void()>& cont);
  /// Enumerates solutions of a scheduled atom list starting at `idx`.
  void EnumAtomList(const std::vector<CompiledAtom>& atoms, size_t idx,
                    Binding* binding, const std::function<void()>& cont);

  bool NegationHolds(const CompiledAtom& atom, const Binding& binding);
  bool EvalAggregateInto(const CompiledAggregate& agg, Binding* binding,
                         std::optional<Value>* result);

  /// Binds the delta row against the seed occurrence; false on mismatch.
  bool MatchSeed(const CompiledAtom& seed, const Tuple& delta_key,
                 const Value& delta_cost, Binding* binding);

  std::optional<Value> EvalExpr(const datalog::Expr& e,
                                const CompiledRule& rule,
                                const Binding& binding);
  bool EvalCompare(datalog::CmpOp op, const Value& a, const Value& b);

  /// Resolves a SlotTerm to its current value; the slot must be bound.
  const Value& Resolve(const SlotTerm& t, const Binding& binding) const {
    return t.is_slot ? binding.Get(t.slot) : t.constant;
  }

  const Database* db_;
  const CompiledRule* current_rule_ = nullptr;
  /// Reused across RunBase/RunDriver calls so the per-rule Reset touches
  /// warm, already-sized vectors instead of allocating. The executor is
  /// single-threaded (the parallel evaluator gives each pool participant its
  /// own executor), so one scratch binding suffices.
  Binding scratch_;
  int64_t subgoal_evals_ = 0;
  ResourceGuard* guard_ = nullptr;
  bool stopped_ = false;
};

}  // namespace core
}  // namespace mad

#endif  // MAD_CORE_EXECUTOR_H_
