#include "core/provenance.h"

#include "util/string_util.h"

namespace mad {
namespace core {

void Provenance::Record(const datalog::PredicateInfo* pred, uint32_t row,
                        int rule_index) {
  std::vector<int>& rows = rule_by_row_[pred->id];
  if (rows.size() <= row) rows.resize(row + 1, kEdbFact);
  rows[row] = rule_index;
}

std::optional<int> Provenance::RuleFor(const datalog::PredicateInfo* pred,
                                       uint32_t row) const {
  auto it = rule_by_row_.find(pred->id);
  if (it == rule_by_row_.end() || row >= it->second.size()) {
    return std::nullopt;
  }
  return it->second[row];
}

std::string Provenance::Explain(const datalog::Program& program,
                                const datalog::Database& db,
                                std::string_view pred_name,
                                const datalog::Tuple& key) const {
  const datalog::PredicateInfo* pred = program.FindPredicate(pred_name);
  if (pred == nullptr) return "unknown predicate";
  const datalog::Relation* rel = db.Find(pred);
  std::optional<uint32_t> row =
      rel != nullptr ? rel->FindRow(key) : std::nullopt;
  if (!row.has_value()) {
    if (pred->has_default) {
      return StrPrintf("%s%s carries the default value %s (Section 2.3.2)",
                       pred->name.c_str(),
                       datalog::TupleToString(key).c_str(),
                       pred->domain->Bottom().ToString().c_str());
    }
    return "unknown fact";
  }
  std::string fact = pred->name + datalog::TupleToString(key);
  if (pred->has_cost) {
    fact += " = " + rel->cost_at(*row).ToString();
  }
  std::optional<int> rule = RuleFor(pred, *row);
  if (!rule.has_value()) {
    return fact + " — provenance not recorded";
  }
  if (*rule == kEdbFact) {
    return fact + " — EDB fact";
  }
  const datalog::Rule& r = program.rules()[*rule];
  return StrPrintf("%s — derived by rule %d (line %d): %s", fact.c_str(),
                   *rule, r.source_line, r.ToString().c_str());
}

}  // namespace core
}  // namespace mad
