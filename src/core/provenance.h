#ifndef MAD_CORE_PROVENANCE_H_
#define MAD_CORE_PROVENANCE_H_

#include <map>
#include <string>
#include <vector>

#include "datalog/ast.h"
#include "datalog/database.h"

namespace mad {
namespace core {

/// Rule-level "why" provenance: for every stored row, which rule produced
/// its current cost value (the *last* merge that changed the row — earlier
/// contributions were superseded in ⊑).
///
/// This is deliberately lightweight (one int per row) so it can stay on
/// during production runs; full derivation-tree provenance would have to
/// record body bindings per merge.
class Provenance {
 public:
  static constexpr int kEdbFact = -1;

  /// Records that `rule_index` set the current value of (pred, row).
  void Record(const datalog::PredicateInfo* pred, uint32_t row,
              int rule_index);

  /// Rule index that last changed the row, kEdbFact for EDB inserts, or
  /// std::nullopt if the row was never recorded (provenance was off).
  std::optional<int> RuleFor(const datalog::PredicateInfo* pred,
                             uint32_t row) const;

  /// Human-readable one-line explanation for a fact, e.g.
  ///   "s(a, b, 1) — derived by rule 3 (line 9): s(X, Y, C) :- ..."
  /// Returns "unknown fact" if the key is absent.
  std::string Explain(const datalog::Program& program,
                      const datalog::Database& db, std::string_view pred_name,
                      const datalog::Tuple& key) const;

  bool empty() const { return rule_by_row_.empty(); }

 private:
  /// pred id -> per-row rule index (kEdbFact for EDB).
  std::map<int, std::vector<int>> rule_by_row_;
};

}  // namespace core
}  // namespace mad

#endif  // MAD_CORE_PROVENANCE_H_
