#include "datalog/ast.h"

#include <algorithm>
#include <cassert>
#include <cctype>

#include "util/string_util.h"

namespace mad {
namespace datalog {

namespace {

/// Appends `name` to `out` if not already present (stable first-occurrence
/// order matters for readable diagnostics).
void AddVar(std::vector<std::string>* out, const std::string& name) {
  if (std::find(out->begin(), out->end(), name) == out->end()) {
    out->push_back(name);
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// PredicateInfo / Term / Expr
// ---------------------------------------------------------------------------

const char* ColumnTypeName(ColumnType t) {
  switch (t) {
    case ColumnType::kUnknown:
      return "unknown";
    case ColumnType::kSymbol:
      return "symbol";
    case ColumnType::kInt:
      return "int";
    case ColumnType::kReal:
      return "real";
    case ColumnType::kBool:
      return "bool";
    case ColumnType::kSet:
      return "set";
    case ColumnType::kNumeric:
      return "numeric";
    case ColumnType::kLattice:
      return "lattice";
    case ColumnType::kConflict:
      return "conflict";
  }
  return "unknown";
}

std::string PredicateInfo::ToString() const {
  std::string out = ".decl " + name + "(";
  for (int i = 0; i < key_arity(); ++i) {
    if (i > 0) out += ", ";
    out += StrPrintf("a%d", i);
  }
  if (has_cost) {
    if (key_arity() > 0) out += ", ";
    out += "c: ";
    out += domain->name();
  }
  out += ")";
  if (has_default) out += " default";
  return out;
}

std::string Term::ToString() const {
  if (is_var()) return var;
  if (constant.is_symbol()) {
    // Quote symbols that would not re-lex as a lowercase identifier.
    std::string_view n = constant.symbol_name();
    bool plain = !n.empty() && (std::islower(static_cast<unsigned char>(n[0])));
    for (char c : n) {
      if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '_')) {
        plain = false;
      }
    }
    return plain ? std::string(n) : "\"" + std::string(n) + "\"";
  }
  return constant.ToString();
}

std::unique_ptr<Expr> Expr::Const(Value v) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kConst;
  e->constant = std::move(v);
  return e;
}

std::unique_ptr<Expr> Expr::Var(std::string name) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kVar;
  e->var = std::move(name);
  return e;
}

std::unique_ptr<Expr> Expr::Binary(Kind k, std::unique_ptr<Expr> l,
                                   std::unique_ptr<Expr> r) {
  auto e = std::make_unique<Expr>();
  e->kind = k;
  e->lhs = std::move(l);
  e->rhs = std::move(r);
  return e;
}

std::unique_ptr<Expr> Expr::Clone() const {
  auto e = std::make_unique<Expr>();
  e->kind = kind;
  e->constant = constant;
  e->var = var;
  if (lhs) e->lhs = lhs->Clone();
  if (rhs) e->rhs = rhs->Clone();
  return e;
}

void Expr::CollectVars(std::vector<std::string>* out) const {
  switch (kind) {
    case Kind::kConst:
      return;
    case Kind::kVar:
      AddVar(out, var);
      return;
    default:
      lhs->CollectVars(out);
      rhs->CollectVars(out);
  }
}

std::string Expr::ToString() const {
  switch (kind) {
    case Kind::kConst:
      return constant.ToString();
    case Kind::kVar:
      return var;
    case Kind::kAdd:
      return "(" + lhs->ToString() + " + " + rhs->ToString() + ")";
    case Kind::kSub:
      return "(" + lhs->ToString() + " - " + rhs->ToString() + ")";
    case Kind::kMul:
      return "(" + lhs->ToString() + " * " + rhs->ToString() + ")";
    case Kind::kDiv:
      return "(" + lhs->ToString() + " / " + rhs->ToString() + ")";
    case Kind::kMin2:
      return "min2(" + lhs->ToString() + ", " + rhs->ToString() + ")";
    case Kind::kMax2:
      return "max2(" + lhs->ToString() + ", " + rhs->ToString() + ")";
  }
  return "?";
}

const char* CmpOpName(CmpOp op) {
  switch (op) {
    case CmpOp::kEq:
      return "=";
    case CmpOp::kNe:
      return "!=";
    case CmpOp::kLt:
      return "<";
    case CmpOp::kLe:
      return "<=";
    case CmpOp::kGt:
      return ">";
    case CmpOp::kGe:
      return ">=";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// Atom
// ---------------------------------------------------------------------------

std::vector<std::string> Atom::KeyVars() const {
  std::vector<std::string> out;
  int n = pred->key_arity();
  for (int i = 0; i < n; ++i) {
    if (args[i].is_var()) AddVar(&out, args[i].var);
  }
  return out;
}

const Term* Atom::CostTerm() const {
  if (!pred->has_cost) return nullptr;
  return &args.back();
}

std::string Atom::ToString() const {
  std::string out = pred->name + "(";
  for (size_t i = 0; i < args.size(); ++i) {
    if (i > 0) out += ", ";
    out += args[i].ToString();
  }
  return out + ")";
}

// ---------------------------------------------------------------------------
// AggregateSubgoal / BuiltinSubgoal / Subgoal
// ---------------------------------------------------------------------------

std::vector<std::string> AggregateSubgoal::AtomVars() const {
  std::vector<std::string> out;
  for (const Atom& a : atoms) {
    for (const Term& t : a.args) {
      if (t.is_var()) AddVar(&out, t.var);
    }
  }
  return out;
}

std::string AggregateSubgoal::ToString() const {
  std::string out = result.ToString();
  out += restricted ? " =r " : " = ";
  out += function_name;
  if (!multiset_var.empty()) out += " " + multiset_var;
  out += " : ";
  if (atoms.size() == 1) {
    out += atoms[0].ToString();
  } else {
    out += "(";
    for (size_t i = 0; i < atoms.size(); ++i) {
      if (i > 0) out += ", ";
      out += atoms[i].ToString();
    }
    out += ")";
  }
  return out;
}

BuiltinSubgoal BuiltinSubgoal::Clone() const {
  BuiltinSubgoal b;
  b.op = op;
  b.lhs = lhs->Clone();
  b.rhs = rhs->Clone();
  return b;
}

std::vector<std::string> BuiltinSubgoal::Vars() const {
  std::vector<std::string> out;
  lhs->CollectVars(&out);
  rhs->CollectVars(&out);
  return out;
}

std::string BuiltinSubgoal::ToString() const {
  return lhs->ToString() + " " + CmpOpName(op) + " " + rhs->ToString();
}

Subgoal Subgoal::Positive(Atom a) {
  Subgoal s;
  s.kind = Kind::kAtom;
  s.atom = std::move(a);
  return s;
}

Subgoal Subgoal::Negative(Atom a) {
  Subgoal s;
  s.kind = Kind::kNegatedAtom;
  s.atom = std::move(a);
  return s;
}

Subgoal Subgoal::Aggregate(AggregateSubgoal agg) {
  Subgoal s;
  s.kind = Kind::kAggregate;
  s.aggregate = std::move(agg);
  return s;
}

Subgoal Subgoal::Builtin(BuiltinSubgoal b) {
  Subgoal s;
  s.kind = Kind::kBuiltin;
  s.builtin = std::move(b);
  return s;
}

Subgoal Subgoal::Clone() const {
  Subgoal s;
  s.kind = kind;
  s.atom = atom;
  s.aggregate = aggregate;
  if (kind == Kind::kBuiltin) s.builtin = builtin.Clone();
  return s;
}

std::vector<std::string> Subgoal::Vars() const {
  std::vector<std::string> out;
  switch (kind) {
    case Kind::kAtom:
    case Kind::kNegatedAtom:
      for (const Term& t : atom.args) {
        if (t.is_var()) AddVar(&out, t.var);
      }
      break;
    case Kind::kAggregate: {
      if (aggregate.result.is_var()) AddVar(&out, aggregate.result.var);
      for (const std::string& v : aggregate.AtomVars()) AddVar(&out, v);
      break;
    }
    case Kind::kBuiltin:
      for (const std::string& v : builtin.Vars()) AddVar(&out, v);
      break;
  }
  return out;
}

std::string Subgoal::ToString() const {
  switch (kind) {
    case Kind::kAtom:
      return atom.ToString();
    case Kind::kNegatedAtom:
      return "!" + atom.ToString();
    case Kind::kAggregate:
      return aggregate.ToString();
    case Kind::kBuiltin:
      return builtin.ToString();
  }
  return "?";
}

// ---------------------------------------------------------------------------
// Rule / IntegrityConstraint / Fact
// ---------------------------------------------------------------------------

void Rule::Finalize() {
  for (Subgoal& sg : body) {
    if (sg.kind != Subgoal::Kind::kAggregate) continue;
    AggregateSubgoal& agg = sg.aggregate;
    agg.grouping_vars.clear();
    agg.local_vars.clear();

    // Variables occurring anywhere in the rule outside this aggregate
    // subgoal's atom conjunction.
    std::vector<std::string> outside;
    for (const Term& t : head.args) {
      if (t.is_var()) AddVar(&outside, t.var);
    }
    for (const Subgoal& other : body) {
      if (&other == &sg) continue;
      for (const std::string& v : other.Vars()) AddVar(&outside, v);
    }
    // The result variable C also counts as an "outside" occurrence for the
    // inner atoms — but C must differ from the local variables anyway.
    if (agg.result.is_var()) AddVar(&outside, agg.result.var);

    for (const std::string& v : agg.AtomVars()) {
      if (v == agg.multiset_var) continue;  // E is neither grouping nor local
      bool is_outside =
          std::find(outside.begin(), outside.end(), v) != outside.end();
      if (is_outside) {
        AddVar(&agg.grouping_vars, v);
      } else {
        AddVar(&agg.local_vars, v);
      }
    }
  }
}

Rule Rule::Clone() const {
  Rule r;
  r.head = head;
  r.source_line = source_line;
  r.span = span;
  r.body.reserve(body.size());
  for (const Subgoal& sg : body) r.body.push_back(sg.Clone());
  return r;
}

std::vector<std::string> Rule::AllVars() const {
  std::vector<std::string> out;
  for (const Term& t : head.args) {
    if (t.is_var()) AddVar(&out, t.var);
  }
  for (const Subgoal& sg : body) {
    for (const std::string& v : sg.Vars()) AddVar(&out, v);
    if (sg.kind == Subgoal::Kind::kAggregate &&
        !sg.aggregate.multiset_var.empty()) {
      AddVar(&out, sg.aggregate.multiset_var);
    }
  }
  return out;
}

std::string Rule::ToString() const {
  std::string out = head.ToString();
  if (!body.empty()) {
    out += " :- ";
    for (size_t i = 0; i < body.size(); ++i) {
      if (i > 0) out += ", ";
      out += body[i].ToString();
    }
  }
  out += ".";
  return out;
}

std::string IntegrityConstraint::ToString() const {
  std::string out = ".constraint ";
  for (size_t i = 0; i < body.size(); ++i) {
    if (i > 0) out += ", ";
    out += body[i].ToString();
  }
  out += ".";
  return out;
}

std::string Fact::ToString() const {
  std::string out = pred->name + "(";
  for (size_t i = 0; i < key.size(); ++i) {
    if (i > 0) out += ", ";
    out += key[i].ToString();
  }
  if (cost.has_value()) {
    if (!key.empty()) out += ", ";
    out += cost->ToString();
  }
  return out + ").";
}

// ---------------------------------------------------------------------------
// Program
// ---------------------------------------------------------------------------

StatusOr<const PredicateInfo*> Program::DeclarePredicate(PredicateInfo info) {
  auto it = by_name_.find(info.name);
  if (it != by_name_.end()) {
    const PredicateInfo* old = it->second;
    if (old->arity != info.arity || old->has_cost != info.has_cost ||
        old->domain != info.domain || old->has_default != info.has_default) {
      return Status::InvalidArgument(
          StrPrintf("predicate '%s' redeclared with a different signature",
                    info.name.c_str()));
    }
    return old;
  }
  info.id = static_cast<int>(predicates_.size());
  predicates_.push_back(std::make_unique<PredicateInfo>(std::move(info)));
  PredicateInfo* p = predicates_.back().get();
  by_name_.emplace(p->name, p);
  return const_cast<const PredicateInfo*>(p);
}

const PredicateInfo* Program::FindPredicate(std::string_view name) const {
  auto it = by_name_.find(name);
  return it == by_name_.end() ? nullptr : it->second;
}

StatusOr<const PredicateInfo*> Program::FindOrDeclare(std::string_view name,
                                                      int arity) {
  const PredicateInfo* existing = FindPredicate(name);
  if (existing != nullptr) {
    if (existing->arity != arity) {
      return Status::InvalidArgument(
          StrPrintf("predicate '%s' used with arity %d but declared/used "
                    "with arity %d",
                    std::string(name).c_str(), arity, existing->arity));
    }
    return existing;
  }
  PredicateInfo info;
  info.name = std::string(name);
  info.arity = arity;
  return DeclarePredicate(std::move(info));
}

std::set<const PredicateInfo*> Program::HeadPredicates() const {
  std::set<const PredicateInfo*> out;
  for (const Rule& r : rules_) out.insert(r.head.pred);
  return out;
}

std::string Program::ToString() const {
  std::string out;
  for (const auto& p : predicates_) {
    out += p->ToString() + "\n";
  }
  for (const auto& c : constraints_) out += c.ToString() + "\n";
  for (const auto& q : queries_) out += ".query " + q.ToString() + ".\n";
  for (const auto& f : facts_) out += f.ToString() + "\n";
  for (const auto& r : rules_) out += r.ToString() + "\n";
  return out;
}

}  // namespace datalog
}  // namespace mad
