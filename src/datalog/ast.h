#ifndef MAD_DATALOG_AST_H_
#define MAD_DATALOG_AST_H_

#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "datalog/source_span.h"
#include "datalog/value.h"
#include "lattice/aggregate.h"
#include "lattice/cost_domain.h"
#include "util/status.h"

namespace mad {
namespace datalog {

// ---------------------------------------------------------------------------
// Predicates
// ---------------------------------------------------------------------------

/// Statically inferred kind of one predicate column. Produced by the
/// flow-insensitive inference in analysis/typing (union-find over fact and
/// rule dataflow) and stamped onto PredicateInfo::col_types by
/// typing::TypeReport::Annotate(). Purely an annotation: evaluation never
/// reads it, so kUnknown everywhere is always safe.
enum class ColumnType : uint8_t {
  kUnknown,   ///< no evidence reached this column
  kSymbol,    ///< interned symbol constants
  kInt,       ///< integer constants
  kReal,      ///< floating-point constants
  kBool,      ///< boolean constants
  kSet,       ///< set values
  kNumeric,   ///< some number: mixed int/real evidence or arithmetic-only use
  kLattice,   ///< cost-lattice element (domain given by PredicateInfo::domain)
  kConflict,  ///< contradictory evidence — see typing::TypeReport::conflicts()
};

/// Short lowercase name ("symbol", "int", ...) for diagnostics and dumps.
const char* ColumnTypeName(ColumnType t);

/// Everything declared about one predicate (Section 2.3): arity, whether the
/// final argument is a cost argument, which complete lattice it ranges over,
/// and whether the predicate carries a default cost value (Section 2.3.2 —
/// the default is always the lattice's Bottom()).
struct PredicateInfo {
  int id = -1;
  std::string name;
  /// Total number of arguments, including the cost argument if present.
  int arity = 0;
  bool has_cost = false;
  /// Lattice of the cost argument; null iff !has_cost.
  const lattice::CostDomain* domain = nullptr;
  /// Default-value cost predicate: semantically every key tuple carries
  /// domain->Bottom() until a rule derives something larger.
  bool has_default = false;
  /// Magic (demand) predicate introduced by the analysis/demand rewrite. Its
  /// facts arrive from outside the program (the query seed plus magic rules),
  /// so emptiness analyses must treat it like an EDB predicate (MAD021).
  bool is_magic = false;
  /// Inferred column types, one per argument (cost column last). Empty until
  /// typing::TypeReport::Annotate() stamps it; mutable because inference is
  /// an annotation pass over an otherwise-const Program.
  mutable std::vector<ColumnType> col_types;

  /// Number of non-cost ("key") arguments.
  int key_arity() const { return has_cost ? arity - 1 : arity; }
  /// Index of the cost argument (always last); -1 if none.
  int cost_position() const { return has_cost ? arity - 1 : -1; }

  std::string ToString() const;
};

// ---------------------------------------------------------------------------
// Terms and expressions
// ---------------------------------------------------------------------------

/// A term in an atom: either a rule-local variable (identified by name) or a
/// ground constant.
struct Term {
  enum class Kind { kVariable, kConstant };
  Kind kind = Kind::kConstant;
  std::string var;  ///< variable name, valid iff kind == kVariable
  Value constant;   ///< valid iff kind == kConstant
  /// Source region of the term; invalid for programmatically built terms.
  /// Ignored by operator== — two terms are equal wherever they were written.
  SourceSpan span;

  static Term Var(std::string name) {
    Term t;
    t.kind = Kind::kVariable;
    t.var = std::move(name);
    return t;
  }
  static Term Const(Value v) {
    Term t;
    t.kind = Kind::kConstant;
    t.constant = std::move(v);
    return t;
  }

  bool is_var() const { return kind == Kind::kVariable; }
  bool is_const() const { return kind == Kind::kConstant; }
  bool operator==(const Term& o) const {
    if (kind != o.kind) return false;
    return is_var() ? var == o.var : constant == o.constant;
  }
  std::string ToString() const;
};

/// Arithmetic expression appearing in built-in subgoals (Section 2.2 permits
/// built-in functions only as arguments of built-in predicates).
struct Expr {
  enum class Kind { kConst, kVar, kAdd, kSub, kMul, kDiv, kMin2, kMax2 };
  Kind kind = Kind::kConst;
  Value constant;                    ///< kConst
  std::string var;                   ///< kVar
  std::unique_ptr<Expr> lhs, rhs;    ///< binary nodes

  static std::unique_ptr<Expr> Const(Value v);
  static std::unique_ptr<Expr> Var(std::string name);
  static std::unique_ptr<Expr> Binary(Kind k, std::unique_ptr<Expr> l,
                                      std::unique_ptr<Expr> r);
  std::unique_ptr<Expr> Clone() const;

  /// Collects variable names (in order of first occurrence) into `out`.
  void CollectVars(std::vector<std::string>* out) const;
  std::string ToString() const;
};

/// Comparison operator of a built-in subgoal.
enum class CmpOp { kEq, kNe, kLt, kLe, kGt, kGe };
const char* CmpOpName(CmpOp op);

// ---------------------------------------------------------------------------
// Subgoals
// ---------------------------------------------------------------------------

/// An atom p(t1, ..., tn); the cost argument, if p has one, is args.back().
struct Atom {
  const PredicateInfo* pred = nullptr;
  std::vector<Term> args;
  /// Source region of the whole atom (predicate name through ')').
  SourceSpan span;

  /// Variables in key (non-cost) positions.
  std::vector<std::string> KeyVars() const;
  /// The cost-argument term, or nullptr if the predicate has no cost arg.
  const Term* CostTerm() const;
  std::string ToString() const;
};

/// Aggregate subgoal (Definition 2.4):
///   C  =  F E : (p1(...), ..., pk(...))     — the "=" form, or
///   C  =r F E : ...                          — the "=r" form (false on empty
///                                              multisets, like SQL).
struct AggregateSubgoal {
  /// Aggregate result: the aggregate variable C (well-formed rules require a
  /// variable here, Definition 4.2(2)).
  Term result;
  /// True for the "=r" (restricted) form.
  bool restricted = false;
  std::string function_name;
  /// Resolved against the multiset's cost domain; set by the parser/builder.
  const lattice::AggregateFunction* function = nullptr;
  /// The multiset variable E; empty when aggregating a predicate with an
  /// implicit boolean cost argument (e.g. `N = count : q(X)`).
  std::string multiset_var;
  /// Conjunction of positive atoms inside the subgoal (no negation allowed,
  /// Definition 2.4).
  std::vector<Atom> atoms;
  /// Source region of the whole aggregate subgoal (result term through the
  /// closing atom).
  SourceSpan span;

  /// Variables of `atoms` that also occur elsewhere in the rule — the
  /// grouping variables X1..Xn. Computed by Rule::Finalize().
  std::vector<std::string> grouping_vars;
  /// Variables of `atoms` occurring nowhere else in the rule (and not E) —
  /// the local variables Y1..Ym. Computed by Rule::Finalize().
  std::vector<std::string> local_vars;

  /// All variable names occurring in `atoms`.
  std::vector<std::string> AtomVars() const;
  std::string ToString() const;
};

/// Built-in subgoal: lhs ⟨op⟩ rhs over arithmetic expressions.
struct BuiltinSubgoal {
  CmpOp op = CmpOp::kEq;
  std::unique_ptr<Expr> lhs;
  std::unique_ptr<Expr> rhs;

  BuiltinSubgoal Clone() const;
  std::vector<std::string> Vars() const;
  std::string ToString() const;
};

/// A body subgoal: exactly one of the four alternatives is active.
struct Subgoal {
  enum class Kind { kAtom, kNegatedAtom, kAggregate, kBuiltin };
  Kind kind = Kind::kAtom;
  Atom atom;                  ///< kAtom / kNegatedAtom
  AggregateSubgoal aggregate; ///< kAggregate
  BuiltinSubgoal builtin;     ///< kBuiltin

  static Subgoal Positive(Atom a);
  static Subgoal Negative(Atom a);
  static Subgoal Aggregate(AggregateSubgoal agg);
  static Subgoal Builtin(BuiltinSubgoal b);

  Subgoal Clone() const;

  /// All variable names occurring anywhere in the subgoal.
  std::vector<std::string> Vars() const;
  std::string ToString() const;
};

// ---------------------------------------------------------------------------
// Rules, constraints, programs
// ---------------------------------------------------------------------------

/// A rule  head :- body  (Definition 2.2). Facts are rules with empty bodies
/// and ground heads, though the parser routes ground facts directly into the
/// Database.
struct Rule {
  Atom head;
  std::vector<Subgoal> body;
  /// 1-based line in the source text (0 for programmatically built rules).
  int source_line = 0;
  /// Source region of the whole clause (head through the terminating '.').
  SourceSpan span;

  /// Recomputes grouping/local variable classifications of every aggregate
  /// subgoal (Definition 2.4's X/Y split depends on the whole rule).
  void Finalize();

  Rule Clone() const;

  /// All variables in the rule body + head, in first-occurrence order.
  std::vector<std::string> AllVars() const;
  std::string ToString() const;
};

/// Integrity constraint ":- S1, ..., Sn" (Definition 2.9): the conjunction is
/// guaranteed unsatisfiable by the application. Used by the conflict-freedom
/// check (Definition 2.10).
struct IntegrityConstraint {
  std::vector<Subgoal> body;
  std::string ToString() const;
};

/// A ground fact destined for the extensional database.
struct Fact {
  const PredicateInfo* pred = nullptr;
  Tuple key;                    ///< non-cost arguments
  std::optional<Value> cost;    ///< set iff pred->has_cost
  std::string ToString() const;
};

/// A parsed program (one or more components' worth of rules) plus its
/// declarations, constraints and inline facts.
class Program {
 public:
  Program() = default;
  Program(Program&&) = default;
  Program& operator=(Program&&) = default;

  /// Declares a predicate; rejects redeclaration with a different signature.
  StatusOr<const PredicateInfo*> DeclarePredicate(PredicateInfo info);
  /// Looks a predicate up by name; nullptr if unknown.
  const PredicateInfo* FindPredicate(std::string_view name) const;
  /// Finds an existing declaration or creates an implicit cost-free one of
  /// the given arity (convenience for EDB predicates in terse programs).
  StatusOr<const PredicateInfo*> FindOrDeclare(std::string_view name,
                                               int arity);

  void AddRule(Rule rule) {
    rule.Finalize();
    rules_.push_back(std::move(rule));
  }
  void AddConstraint(IntegrityConstraint c) {
    constraints_.push_back(std::move(c));
  }
  void AddFact(Fact f) { facts_.push_back(std::move(f)); }
  /// Records a `.query` directive: an atom whose constant arguments are the
  /// bound positions of a point query the program expects to serve.
  /// Consumed by analysis/demand; evaluation ignores it.
  void AddQuery(Atom query) { queries_.push_back(std::move(query)); }

  /// Moves facts_[first..] out and truncates the inline-fact list back to
  /// `first` entries. Lets ParseFacts() reuse the parser for transient fact
  /// payloads (e.g. server inserts) without permanently growing the program.
  std::vector<Fact> TakeFactsFrom(size_t first) {
    if (first >= facts_.size()) return {};
    std::vector<Fact> out(std::make_move_iterator(facts_.begin() + first),
                          std::make_move_iterator(facts_.end()));
    facts_.resize(first);
    return out;
  }

  const std::vector<Rule>& rules() const { return rules_; }
  std::vector<Rule>& mutable_rules() { return rules_; }
  const std::vector<IntegrityConstraint>& constraints() const {
    return constraints_;
  }
  const std::vector<Fact>& facts() const { return facts_; }
  const std::vector<Atom>& queries() const { return queries_; }
  const std::vector<std::unique_ptr<PredicateInfo>>& predicates() const {
    return predicates_;
  }

  /// Predicates appearing in some rule head.
  std::set<const PredicateInfo*> HeadPredicates() const;

  /// Pretty-prints declarations, constraints and rules (round-trips through
  /// the parser).
  std::string ToString() const;

 private:
  std::vector<std::unique_ptr<PredicateInfo>> predicates_;
  std::map<std::string, PredicateInfo*, std::less<>> by_name_;
  std::vector<Rule> rules_;
  std::vector<IntegrityConstraint> constraints_;
  std::vector<Fact> facts_;
  std::vector<Atom> queries_;
};

}  // namespace datalog
}  // namespace mad

#endif  // MAD_DATALOG_AST_H_
