#include "datalog/database.h"

#include <algorithm>
#include <cassert>
#include <mutex>
#include <shared_mutex>

#include "lattice/cost_domain.h"
#include "util/string_util.h"

namespace mad {
namespace datalog {

// ---------------------------------------------------------------------------
// Relation
// ---------------------------------------------------------------------------

namespace {

/// Approximate heap footprint of one Value (16-byte tagged union plus any
/// shared set payload; the payload is attributed to every holder, which
/// over-counts shared sets — acceptable for budget enforcement).
int64_t ApproxValueBytes(const Value& v) {
  int64_t n = static_cast<int64_t>(sizeof(Value));
  if (v.is_set()) {
    n += static_cast<int64_t>(v.set_value().size() * sizeof(Value));
  }
  return n;
}

int64_t ApproxTupleBytes(const Tuple& t) {
  int64_t n = static_cast<int64_t>(sizeof(Tuple));
  for (const Value& v : t) n += ApproxValueBytes(v);
  return n;
}

/// Per-row bookkeeping outside the tuples themselves: the primary-map entry
/// (key copy is counted separately) plus hash-table node overhead.
constexpr int64_t kRowOverheadBytes = 64;

}  // namespace

Relation::MergeResult Relation::Merge(const Tuple& key, const Value& cost,
                                      uint32_t* row_out) {
  // try_emplace hashes the key exactly once for the combined lookup+insert
  // (the old find-then-emplace hashed twice on every novel fact).
  auto [it, inserted] = rows_.try_emplace(key, static_cast<uint32_t>(keys_.size()));
  if (inserted) {
    keys_.push_back(key);
    costs_.push_back(pred_->has_cost ? cost : Value());
    if (row_out != nullptr) *row_out = it->second;
    // Two key copies live here (dense vector + primary map) plus the cost.
    approx_bytes_.fetch_add(
        2 * ApproxTupleBytes(key) + ApproxValueBytes(costs_.back()) +
            kRowOverheadBytes,
        std::memory_order_relaxed);
    // Newly appended rows are picked up lazily by GetIndex; nothing to do.
    return MergeResult::kNew;
  }
  if (row_out != nullptr) *row_out = it->second;
  if (!pred_->has_cost) return MergeResult::kUnchanged;
  Value& current = costs_[it->second];
  Value joined = pred_->domain->Join(current, cost);
  if (pred_->domain->Equal(joined, current)) return MergeResult::kUnchanged;
  approx_bytes_.fetch_add(ApproxValueBytes(joined) - ApproxValueBytes(current),
                          std::memory_order_relaxed);
  current = std::move(joined);
  return MergeResult::kIncreased;
}

const Value* Relation::Find(const Tuple& key) const {
  auto it = rows_.find(key);
  if (it == rows_.end()) return nullptr;
  return &costs_[it->second];
}

void Relation::ForEach(
    const std::function<void(const Tuple&, const Value&)>& cb) const {
  for (size_t i = 0; i < keys_.size(); ++i) cb(keys_[i], costs_[i]);
}

const Relation::Index& Relation::GetIndex(
    const std::vector<int>& bound_pos) const {
  {
    std::shared_lock<std::shared_mutex> lk(index_mu_);
    auto it = indexes_.find(bound_pos);
    if (it != indexes_.end() && it->second.built_rows == keys_.size()) {
      index_reuses_.fetch_add(1, std::memory_order_relaxed);
      return it->second;
    }
  }
  std::unique_lock<std::shared_mutex> lk(index_mu_);
  Index& index = indexes_[bound_pos];
  for (size_t row = index.built_rows; row < keys_.size(); ++row) {
    Tuple proj;
    proj.reserve(bound_pos.size());
    for (int p : bound_pos) proj.push_back(keys_[row][p]);
    approx_bytes_.fetch_add(ApproxTupleBytes(proj) + sizeof(uint32_t),
                            std::memory_order_relaxed);
    index.buckets[std::move(proj)].push_back(static_cast<uint32_t>(row));
  }
  index.built_rows = keys_.size();
  return index;
}

void Relation::ForceIndex(const std::vector<int>& bound_pos) const {
  if (bound_pos.empty()) return;
  if (static_cast<int>(bound_pos.size()) == pred_->key_arity()) return;
  GetIndex(bound_pos);
}

void Relation::Scan(
    const std::vector<int>& bound_pos, const Tuple& bound_vals,
    const std::function<void(const Tuple&, const Value&)>& cb) const {
  ScanRows(bound_pos, bound_vals,
           [&](size_t row) { cb(keys_[row], costs_[row]); });
}

void Relation::ScanRows(const std::vector<int>& bound_pos,
                        const Tuple& bound_vals,
                        const std::function<void(size_t row)>& cb) const {
  assert(bound_pos.size() == bound_vals.size());
  if (bound_pos.empty()) {
    for (size_t row = 0; row < keys_.size(); ++row) cb(row);
    return;
  }
  // One hash for the whole lookup, whichever container serves it.
  const PrehashedTuple probe{&bound_vals, TupleHash{}(bound_vals)};
  if (static_cast<int>(bound_pos.size()) == pred_->key_arity()) {
    // Fully bound: point lookup on the primary map.
    auto it = rows_.find(probe);
    if (it != rows_.end()) cb(it->second);
    return;
  }
  const Index& index = GetIndex(bound_pos);
  auto it = index.buckets.find(probe);
  if (it == index.buckets.end()) return;
  for (uint32_t row : it->second) cb(row);
}

// ---------------------------------------------------------------------------
// Database
// ---------------------------------------------------------------------------

Relation* Database::Unshared(std::shared_ptr<Relation>* slot) {
  if ((*slot)->frozen()) {
    // Shared with a published snapshot: clone before the first write. The
    // clone starts unfrozen, so COW fires at most once per relation per
    // snapshot; the snapshot keeps the old (now immutable) version alive.
    *slot = std::make_shared<Relation>(**slot);
  }
  return slot->get();
}

Relation* Database::GetOrCreate(const PredicateInfo* pred) {
  auto& slot = relations_[pred->id];
  if (!slot) {
    slot = std::make_shared<Relation>(pred);
    return slot.get();
  }
  return Unshared(&slot);
}

const Relation* Database::Find(const PredicateInfo* pred) const {
  auto it = relations_.find(pred->id);
  return it == relations_.end() ? nullptr : it->second.get();
}

Relation* Database::FindMutable(const PredicateInfo* pred) {
  auto it = relations_.find(pred->id);
  return it == relations_.end() ? nullptr : Unshared(&it->second);
}

Status Database::AddFact(const Fact& fact) {
  Relation* rel = GetOrCreate(fact.pred);
  Value cost;
  if (fact.pred->has_cost) {
    if (!fact.cost.has_value()) {
      return Status::InvalidArgument(StrPrintf(
          "fact for cost predicate '%s' lacks a cost", fact.pred->name.c_str()));
    }
    if (!fact.pred->domain->Contains(*fact.cost)) {
      return Status::InvalidArgument(StrPrintf(
          "fact for '%s': cost %s outside domain %s", fact.pred->name.c_str(),
          fact.cost->ToString().c_str(),
          std::string(fact.pred->domain->name()).c_str()));
    }
    cost = fact.pred->domain->Normalize(*fact.cost);
  }
  rel->Merge(fact.key, cost);
  return Status::OK();
}

Status Database::AddFacts(const Program& program) {
  for (const Fact& f : program.facts()) {
    MAD_RETURN_IF_ERROR(AddFact(f));
  }
  return Status::OK();
}

Database Database::Clone() const {
  Database out;
  for (const auto& [id, rel] : relations_) {
    out.relations_[id] = std::make_shared<Relation>(*rel);
  }
  return out;
}

Database Database::Snapshot() const {
  Database out;
  for (const auto& [id, rel] : relations_) {
    rel->freeze();
    out.relations_[id] = rel;
  }
  return out;
}

Database Database::ShareForRead() const {
  Database out;
  for (const auto& [id, rel] : relations_) {
    // Already-frozen relations are immutable, so sharing the pointer without
    // re-freezing is race-free even when many readers share concurrently.
    // An unfrozen relation (a database that was never published) is deep
    // copied instead — never write cow_frozen_ from a reader thread.
    out.relations_[id] =
        rel->frozen() ? rel : std::make_shared<Relation>(*rel);
  }
  return out;
}

size_t Database::TotalRows() const {
  size_t n = 0;
  for (const auto& [_, rel] : relations_) n += rel->size();
  return n;
}

int64_t Database::ApproxBytes() const {
  int64_t n = 0;
  for (const auto& [_, rel] : relations_) n += rel->ApproxBytes();
  return n;
}

std::string Database::ToString() const {
  std::vector<std::string> lines;
  for (const auto& [_, rel] : relations_) {
    rel->ForEach([&](const Tuple& key, const Value& cost) {
      std::string line = rel->pred()->name + "(";
      for (size_t i = 0; i < key.size(); ++i) {
        if (i > 0) line += ", ";
        line += key[i].ToString();
      }
      if (rel->pred()->has_cost) {
        if (!key.empty()) line += ", ";
        line += cost.ToString();
      }
      line += ").";
      lines.push_back(std::move(line));
    });
  }
  std::sort(lines.begin(), lines.end());
  std::string out;
  for (const std::string& l : lines) {
    out += l;
    out += "\n";
  }
  return out;
}

}  // namespace datalog
}  // namespace mad
