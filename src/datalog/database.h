#ifndef MAD_DATALOG_DATABASE_H_
#define MAD_DATALOG_DATABASE_H_

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "datalog/ast.h"
#include "datalog/value.h"
#include "util/status.h"

namespace mad {
namespace datalog {

/// The stored extension of one predicate.
///
/// A relation for a cost predicate maps key tuples (the non-cost arguments)
/// to a single cost value — the functional dependency of Section 2.3.1 is
/// enforced *structurally*. Inserting a second cost for an existing key joins
/// the two values in the predicate's lattice (the core never shrinks under
/// monotone evaluation, and lattice programs only ever move up ⊑).
///
/// Storage is append-only: rows keep stable dense ids, which lets secondary
/// indexes extend lazily instead of rebuilding. Only the *core* (Section 2.3.3)
/// is stored: default-value predicates' implicit ⊥ rows are synthesized by
/// the evaluator, never materialized here.
///
/// Concurrency contract: mutation (Merge) is exclusive — callers serialize it
/// (the parallel evaluator shards relations across merge workers so each
/// relation has one writer). Reads (Scan/Find/Contains) may run concurrently
/// from many threads *while no Merge is in flight*; lazily built secondary
/// indexes follow a build-once-then-read-concurrently discipline guarded by a
/// shared_mutex, and the evaluator forces the round's index patterns
/// (ForceIndexes) before fanning out so the hot read path takes only the
/// shared lock.
class Relation {
 public:
  explicit Relation(const PredicateInfo* pred) : pred_(pred) {}

  /// Deep copy; the clone starts with the source's rows and indexes but
  /// fresh synchronization state (and is never frozen — see freeze()). Row
  /// storage must not race with writers, but concurrent *readers* of the
  /// source are fine: the secondary indexes (the only state mutated through
  /// const access) are copied under the source's index lock.
  Relation(const Relation& other)
      : pred_(other.pred_),
        keys_(other.keys_),
        costs_(other.costs_),
        rows_(other.rows_),
        index_reuses_(other.index_reuses_.load(std::memory_order_relaxed)),
        approx_bytes_(other.approx_bytes_.load(std::memory_order_relaxed)) {
    std::shared_lock<std::shared_mutex> lk(other.index_mu_);
    indexes_ = other.indexes_;
  }
  Relation& operator=(const Relation&) = delete;

  /// Copy-on-write support for Database::Snapshot. A frozen relation is
  /// shared with at least one published snapshot: the next mutable access
  /// through the owning Database clones it instead of writing in place.
  /// The flag is only ever touched by the single writer thread (Snapshot,
  /// GetOrCreate, FindMutable all run on the writer), so it needs no
  /// synchronization; readers of a snapshot never consult it.
  void freeze() { cow_frozen_ = true; }
  bool frozen() const { return cow_frozen_; }

  const PredicateInfo* pred() const { return pred_; }

  /// Effect of a Merge call on the stored extension.
  enum class MergeResult {
    kNew,        ///< key was absent and is now present
    kIncreased,  ///< key present; cost strictly increased in ⊑
    kUnchanged,  ///< no change (duplicate fact / cost not above current)
  };

  /// Inserts or lattice-merges. `cost` must already be normalized for cost
  /// predicates and is ignored for cost-free predicates. If `row` is
  /// non-null it receives the stable row id of the (new or existing) key.
  MergeResult Merge(const Tuple& key, const Value& cost,
                    uint32_t* row = nullptr);

  /// True iff `key` is explicitly present (ignores default values).
  bool Contains(const Tuple& key) const { return rows_.count(key) > 0; }

  /// Stored cost for `key`, or nullptr if the key is absent. For cost-free
  /// predicates the returned value is unspecified (presence is the answer).
  const Value* Find(const Tuple& key) const;

  /// Stable row id for `key`, or std::nullopt if absent.
  std::optional<uint32_t> FindRow(const Tuple& key) const {
    auto it = rows_.find(key);
    if (it == rows_.end()) return std::nullopt;
    return it->second;
  }

  size_t size() const { return keys_.size(); }
  bool empty() const { return keys_.empty(); }

  /// Approximate bytes held by this relation: rows (keys, costs, primary
  /// map) plus lazily built secondary indexes. Maintained incrementally so
  /// the resource governor can poll it at merge granularity; set payloads
  /// count their element vectors, interned symbols count as their 16-byte
  /// handles (the symbol table is process-global and shared). Atomic so the
  /// governor can poll while other relations' shards are still merging.
  int64_t ApproxBytes() const {
    return approx_bytes_.load(std::memory_order_relaxed);
  }

  /// Times a Scan was served by an already-complete secondary index (no
  /// extension work). Monotone over the relation's lifetime; the engine
  /// diffs it around a run to report EvalStats::index_reuses.
  int64_t index_reuses() const {
    return index_reuses_.load(std::memory_order_relaxed);
  }

  /// Stable row access (row ids are dense, 0-based, insertion-ordered).
  const Tuple& key_at(size_t row) const { return keys_[row]; }
  const Value& cost_at(size_t row) const { return costs_[row]; }

  /// Calls `cb(key, cost)` for every stored row.
  void ForEach(
      const std::function<void(const Tuple&, const Value&)>& cb) const;

  /// Enumerates rows whose key matches `bound_vals` at positions
  /// `bound_pos` (strictly increasing position list over key columns).
  /// Uses a lazily maintained hash index per position-set; an empty
  /// position list degenerates to a full scan and a full position list to a
  /// point lookup.
  void Scan(const std::vector<int>& bound_pos, const Tuple& bound_vals,
            const std::function<void(const Tuple&, const Value&)>& cb) const;

  /// Row ids matching the pattern, for callers that need stable handles
  /// (the semi-naive evaluator's delta scans).
  void ScanRows(const std::vector<int>& bound_pos, const Tuple& bound_vals,
                const std::function<void(size_t row)>& cb) const;

  /// Builds (or extends to current size) the secondary index for
  /// `bound_pos`, so subsequent concurrent Scans with that pattern are pure
  /// reads. The parallel evaluator calls this for every scan pattern of the
  /// round before fanning work out. No-op for the empty and fully-bound
  /// patterns, which never touch a secondary index.
  void ForceIndex(const std::vector<int>& bound_pos) const;

 private:
  struct Index {
    std::unordered_map<Tuple, std::vector<uint32_t>, TupleHash, TupleEq>
        buckets;
    size_t built_rows = 0;  ///< rows [0, built_rows) are indexed
  };

  /// Returns the index for `bound_pos` extended to cover all current rows.
  /// Fast path: shared lock, index already complete. Slow path: exclusive
  /// lock, extend. The returned reference stays valid after the lock drops
  /// (node-based std::map) and its buckets are safe to read concurrently as
  /// long as no rows are appended — which the phased evaluator guarantees.
  const Index& GetIndex(const std::vector<int>& bound_pos) const;

  const PredicateInfo* pred_;
  std::vector<Tuple> keys_;
  std::vector<Value> costs_;
  std::unordered_map<Tuple, uint32_t, TupleHash, TupleEq> rows_;
  bool cow_frozen_ = false;  ///< writer-thread-only; see freeze()
  mutable std::shared_mutex index_mu_;  ///< guards indexes_ map + extension
  mutable std::map<std::vector<int>, Index> indexes_;
  mutable std::atomic<int64_t> index_reuses_{0};
  mutable std::atomic<int64_t> approx_bytes_{0};
};

/// A set of relations — the extension of an LDB, a CDB, or both. This is the
/// "aggregate Herbrand interpretation" (Definition 3.3) restricted to its
/// finite core.
///
/// Relations are held by shared_ptr so a database can be *snapshotted* in
/// O(#relations): Snapshot() shares every relation and freezes it; the next
/// mutable access through this database clones the frozen relation
/// (copy-on-write), so published snapshots are immutable while the writer
/// keeps evolving its working set. This is what gives the serving layer
/// snapshot isolation for free: T_P is monotone, inserts only move the model
/// up in ⊑, and readers pin whichever immutable snapshot was current when
/// their request arrived (DESIGN.md "Serving").
class Database {
 public:
  Database() = default;
  Database(Database&&) = default;
  Database& operator=(Database&&) = default;

  /// The relation for `pred`, creating an empty one on first touch (and
  /// un-freezing a snapshot-shared one via copy-on-write). NOT safe to call
  /// concurrently — the parallel evaluator pre-creates every head relation
  /// before fanning out and uses FindMutable from workers.
  Relation* GetOrCreate(const PredicateInfo* pred);
  /// Read access; returns nullptr if the predicate has no relation yet.
  const Relation* Find(const PredicateInfo* pred) const;
  /// Write access without the inserting side effect of GetOrCreate, so
  /// concurrent merge shards never mutate the relation map itself. Applies
  /// the same copy-on-write unsharing as GetOrCreate; safe from concurrent
  /// merge shards because shards partition predicates (each map slot has
  /// exactly one writer) and slot replacement never rebalances the map.
  Relation* FindMutable(const PredicateInfo* pred);

  /// Inserts a fact (normalizing the cost into the predicate's domain).
  /// Rejects facts whose cost lies outside the declared domain.
  Status AddFact(const Fact& fact);
  /// Convenience: adds all of `program`'s inline facts.
  Status AddFacts(const Program& program);

  /// Total number of stored rows across all relations.
  size_t TotalRows() const;

  /// Approximate bytes across all relations (sum of Relation::ApproxBytes;
  /// each relation maintains its figure incrementally, so this is cheap
  /// enough to poll at merge granularity).
  int64_t ApproxBytes() const;

  /// Deep copy of every relation.
  Database Clone() const;

  /// O(#relations) copy that *shares* every relation with this database and
  /// freezes them: the snapshot is immutable from then on (reads only, which
  /// Relation supports concurrently), while the next write to a shared
  /// relation through *this* database copy-on-writes it. Must be called
  /// from the (single) writer thread; the returned snapshot may be read
  /// from any number of threads.
  Database Snapshot() const;

  /// Read-only share for *reader* threads: relations that are already frozen
  /// (a published serving snapshot) are shared by pointer without touching
  /// the COW freeze flag — unlike Snapshot(), which re-writes `cow_frozen_`
  /// and is therefore writer-thread-only. Unfrozen relations are deep-copied
  /// so the result never aliases a mutable extension. Used by the demand
  /// query path, where many readers evaluate against the same snapshot.
  Database ShareForRead() const;

  /// All relations (iteration order: predicate id).
  const std::map<int, std::shared_ptr<Relation>>& relations() const {
    return relations_;
  }

  /// Renders the database as sorted fact lines (tests compare these).
  std::string ToString() const;

 private:
  /// Slot access with copy-on-write: clones the relation if it is frozen
  /// (shared with a snapshot). Row ids are dense and insertion-ordered, so
  /// they survive the clone — deltas recorded against the old version stay
  /// valid against the new one.
  Relation* Unshared(std::shared_ptr<Relation>* slot);

  std::map<int, std::shared_ptr<Relation>> relations_;
};

}  // namespace datalog
}  // namespace mad

#endif  // MAD_DATALOG_DATABASE_H_
