#include "datalog/parser.h"

#include <cctype>
#include <cmath>
#include <string>
#include <vector>

#include "lattice/aggregate.h"
#include "lattice/cost_domain.h"
#include "util/string_util.h"

namespace mad {
namespace datalog {

namespace {

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

enum class Tok {
  kEnd,
  kIdent,     // lower-case identifier: predicate / symbol constant / keyword
  kVar,       // Upper-case or _ identifier: variable
  kString,    // "quoted symbol"
  kNumber,    // integer or real literal
  kLParen,
  kRParen,
  kComma,
  kDot,       // statement terminator '.'
  kColon,
  kTurnstile, // :-
  kBang,      // !
  kEq,        // =
  kEqR,       // =r
  kNe,        // !=
  kLt,
  kLe,
  kGt,
  kGe,
  kPlus,
  kMinus,
  kStar,
  kSlash,
  kLBrace,    // { — set literal
  kRBrace,    // }
  kDirective, // .decl / .constraint (ident carries the name)
};

struct Token {
  Tok kind = Tok::kEnd;
  std::string text;   // identifier / string payload
  double number = 0;  // kNumber payload
  bool is_integer = false;
  int line = 0;
  int col = 0;  // 1-based column of the token's first character
  int end_line = 0;  // 1-based line just past the token's last character
  int end_col = 0;   // 1-based column just past the token's last character

  SourceSpan Span() const {
    SourceSpan s;
    s.line = line;
    s.col = col;
    s.end_line = end_line;
    s.end_col = end_col;
    return s;
  }
};

class Lexer {
 public:
  explicit Lexer(std::string_view src) : src_(src) {}

  StatusOr<std::vector<Token>> Tokenize() {
    std::vector<Token> out;
    while (true) {
      SkipSpaceAndComments();
      if (pos_ >= src_.size()) break;
      MAD_ASSIGN_OR_RETURN(Token t, Next());
      t.end_line = line_;
      t.end_col = Col();
      out.push_back(std::move(t));
    }
    Token end;
    end.kind = Tok::kEnd;
    end.line = line_;
    end.col = Col();
    end.end_line = end.line;
    end.end_col = end.col;
    out.push_back(end);
    return out;
  }

 private:
  /// 1-based column of the character at pos_.
  int Col() const { return static_cast<int>(pos_ - line_start_) + 1; }

  void SkipSpaceAndComments() {
    while (pos_ < src_.size()) {
      char c = src_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
        line_start_ = pos_;
      } else if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '%' ||
                 (c == '/' && pos_ + 1 < src_.size() && src_[pos_ + 1] == '/')) {
        while (pos_ < src_.size() && src_[pos_] != '\n') ++pos_;
      } else {
        break;
      }
    }
  }

  StatusOr<Token> Next() {
    Token t;
    t.line = line_;
    t.col = Col();
    char c = src_[pos_];

    if (c == '.') {
      // Either a directive (".decl"), or the statement terminator.
      if (pos_ + 1 < src_.size() &&
          std::isalpha(static_cast<unsigned char>(src_[pos_ + 1]))) {
        ++pos_;
        t.kind = Tok::kDirective;
        t.text = LexIdentText();
        return t;
      }
      ++pos_;
      t.kind = Tok::kDot;
      return t;
    }

    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '-' && pos_ + 1 < src_.size() &&
         std::isdigit(static_cast<unsigned char>(src_[pos_ + 1])) &&
         NumberContext())) {
      return LexNumber();
    }

    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::string text = LexIdentText();
      t.text = std::move(text);
      t.kind = (std::isupper(static_cast<unsigned char>(t.text[0])) ||
                t.text[0] == '_')
                   ? Tok::kVar
                   : Tok::kIdent;
      return t;
    }

    if (c == '"') {
      ++pos_;
      std::string s;
      while (pos_ < src_.size() && src_[pos_] != '"') {
        if (src_[pos_] == '\n') {
          ++line_;
          line_start_ = pos_ + 1;
        }
        s += src_[pos_++];
      }
      if (pos_ >= src_.size()) {
        return Status::ParseError(StrPrintf(
            "line %d col %d: unterminated string literal", t.line, t.col));
      }
      ++pos_;  // closing quote
      t.kind = Tok::kString;
      t.text = std::move(s);
      return t;
    }

    auto two = [&](char a, char b) {
      return c == a && pos_ + 1 < src_.size() && src_[pos_ + 1] == b;
    };

    if (two(':', '-')) {
      pos_ += 2;
      t.kind = Tok::kTurnstile;
      return t;
    }
    if (two('=', 'r')) {
      // "=r" only when not part of a longer identifier (e.g. "=rest" is not
      // possible since identifiers can't follow '=' anyway, but guard "=r2").
      if (pos_ + 2 >= src_.size() ||
          !(std::isalnum(static_cast<unsigned char>(src_[pos_ + 2])) ||
            src_[pos_ + 2] == '_')) {
        pos_ += 2;
        t.kind = Tok::kEqR;
        return t;
      }
    }
    if (two('!', '=')) {
      pos_ += 2;
      t.kind = Tok::kNe;
      return t;
    }
    if (two('<', '=')) {
      pos_ += 2;
      t.kind = Tok::kLe;
      return t;
    }
    if (two('>', '=')) {
      pos_ += 2;
      t.kind = Tok::kGe;
      return t;
    }

    ++pos_;
    switch (c) {
      case '(':
        t.kind = Tok::kLParen;
        return t;
      case ')':
        t.kind = Tok::kRParen;
        return t;
      case '{':
        t.kind = Tok::kLBrace;
        return t;
      case '}':
        t.kind = Tok::kRBrace;
        return t;
      case ',':
        t.kind = Tok::kComma;
        return t;
      case ':':
        t.kind = Tok::kColon;
        return t;
      case '!':
        t.kind = Tok::kBang;
        return t;
      case '=':
        t.kind = Tok::kEq;
        return t;
      case '<':
        t.kind = Tok::kLt;
        return t;
      case '>':
        t.kind = Tok::kGt;
        return t;
      case '+':
        t.kind = Tok::kPlus;
        return t;
      case '-':
        t.kind = Tok::kMinus;
        return t;
      case '*':
        t.kind = Tok::kStar;
        return t;
      case '/':
        t.kind = Tok::kSlash;
        return t;
      default:
        return Status::ParseError(StrPrintf(
            "line %d col %d: unexpected character '%c'", t.line, t.col, c));
    }
  }

  /// Heuristic: a '-' begins a negative number literal only where a term can
  /// start (after '(', ',', comparison, arithmetic op, ':', or at start).
  bool NumberContext() const {
    // Look back for the previous non-space char.
    size_t i = pos_;
    while (i > 0) {
      char p = src_[i - 1];
      if (std::isspace(static_cast<unsigned char>(p))) {
        --i;
        continue;
      }
      return !(std::isalnum(static_cast<unsigned char>(p)) || p == ')' ||
               p == '"' || p == '_');
    }
    return true;
  }

  std::string LexIdentText() {
    size_t start = pos_;
    while (pos_ < src_.size() &&
           (std::isalnum(static_cast<unsigned char>(src_[pos_])) ||
            src_[pos_] == '_')) {
      ++pos_;
    }
    return std::string(src_.substr(start, pos_ - start));
  }

  StatusOr<Token> LexNumber() {
    Token t;
    t.line = line_;
    t.col = Col();
    t.kind = Tok::kNumber;
    size_t start = pos_;
    if (src_[pos_] == '-') ++pos_;
    bool saw_dot = false;
    while (pos_ < src_.size()) {
      char c = src_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '.' && !saw_dot && pos_ + 1 < src_.size() &&
                 std::isdigit(static_cast<unsigned char>(src_[pos_ + 1]))) {
        // A '.' is part of the number only when followed by a digit; plain
        // "3." is the integer 3 followed by the statement terminator.
        saw_dot = true;
        ++pos_;
      } else {
        break;
      }
    }
    std::string text(src_.substr(start, pos_ - start));
    t.number = std::stod(text);
    t.is_integer = !saw_dot;
    return t;
  }

  std::string_view src_;
  size_t pos_ = 0;
  size_t line_start_ = 0;
  int line_ = 1;
};

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

class Parser {
 public:
  Parser(Program* program, std::vector<Token> tokens)
      : program_(program), tokens_(std::move(tokens)) {}

  Status ParseAll() {
    while (Peek().kind != Tok::kEnd) {
      MAD_RETURN_IF_ERROR(ParseItem());
    }
    return Status::OK();
  }

  /// Parses exactly one atom (optionally '.'-terminated) against existing
  /// declarations — the query-atom payload of `mondl --query` / madc.
  StatusOr<Atom> ParseSingleAtom() {
    if (Peek().kind != Tok::kIdent) return Error("expected predicate name");
    if (program_->FindPredicate(Peek().text) == nullptr) {
      return Error(StrPrintf("query references undeclared predicate '%s'",
                             Peek().text.c_str()));
    }
    MAD_ASSIGN_OR_RETURN(Atom a, ParseAtom());
    Accept(Tok::kDot);
    if (Peek().kind != Tok::kEnd) return Error("trailing input after atom");
    return a;
  }

  Status ParseFactsOnly() {
    while (Peek().kind != Tok::kEnd) {
      MAD_ASSIGN_OR_RETURN(Atom head, ParseAtom());
      if (Peek().kind != Tok::kDot) {
        return Error("expected '.' after fact");
      }
      Advance();
      MAD_RETURN_IF_ERROR(AddClause(std::move(head), {}, /*had_body=*/false));
    }
    return Status::OK();
  }

 private:
  const Token& Peek(int ahead = 0) const {
    size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& Advance() { return tokens_[pos_++]; }
  bool Accept(Tok k) {
    if (Peek().kind == k) {
      ++pos_;
      return true;
    }
    return false;
  }
  Status Expect(Tok k, const char* what) {
    if (!Accept(k)) return Error(StrPrintf("expected %s", what));
    return Status::OK();
  }
  Status Error(const std::string& msg) const {
    return Status::ParseError(StrPrintf("line %d col %d: %s", Peek().line,
                                        Peek().col, msg.c_str()));
  }

  /// Source region from the token at index `start_tok` through the most
  /// recently consumed token.
  SourceSpan SpanFrom(size_t start_tok) const {
    const Token& s = tokens_[start_tok < tokens_.size() ? start_tok
                                                        : tokens_.size() - 1];
    const Token& e = tokens_[pos_ > start_tok ? pos_ - 1 : start_tok];
    SourceSpan sp;
    sp.line = s.line;
    sp.col = s.col;
    sp.end_line = e.end_line;
    sp.end_col = e.end_col;
    return sp;
  }

  Status ParseItem() {
    if (Peek().kind == Tok::kDirective) {
      const std::string& d = Peek().text;
      if (d == "decl") return ParseDecl();
      if (d == "constraint") return ParseConstraint();
      if (d == "query") return ParseQuery();
      return Error(StrPrintf("unknown directive '.%s'", d.c_str()));
    }
    return ParseClause();
  }

  // .decl p(a, b, c: min_real) [default]
  Status ParseDecl() {
    Advance();  // .decl
    if (Peek().kind != Tok::kIdent) return Error("expected predicate name");
    PredicateInfo info;
    info.name = Advance().text;
    MAD_RETURN_IF_ERROR(Expect(Tok::kLParen, "'('"));
    bool first = true;
    while (!Accept(Tok::kRParen)) {
      if (!first) MAD_RETURN_IF_ERROR(Expect(Tok::kComma, "','"));
      first = false;
      if (Peek().kind != Tok::kIdent && Peek().kind != Tok::kVar) {
        return Error("expected column name");
      }
      Advance();  // column name (documentation only)
      ++info.arity;
      if (Accept(Tok::kColon)) {
        if (info.has_cost) {
          return Error("only the final argument may be a cost argument");
        }
        if (Peek().kind != Tok::kIdent) return Error("expected domain name");
        std::string domain_name = Advance().text;
        const lattice::CostDomain* domain =
            lattice::DomainRegistry::Global().Find(domain_name);
        if (domain == nullptr) {
          return Error(
              StrPrintf("unknown cost domain '%s'", domain_name.c_str()));
        }
        info.has_cost = true;
        info.domain = domain;
      } else if (info.has_cost) {
        return Error("cost argument must be the final argument");
      }
    }
    if (Peek().kind == Tok::kIdent && Peek().text == "default") {
      Advance();
      if (!info.has_cost) {
        return Error("'default' requires a cost argument");
      }
      info.has_default = true;
    }
    auto declared = program_->DeclarePredicate(std::move(info));
    if (!declared.ok()) return declared.status();
    return Status::OK();
  }

  // .query p(bound, X, _).  — constants are the bound positions of a point
  // query the program expects to serve (consumed by analysis/demand). The
  // predicate must already be declared so a typo'd name fails loudly instead
  // of implicitly declaring a fresh empty predicate.
  Status ParseQuery() {
    Advance();  // .query
    if (Peek().kind != Tok::kIdent) return Error("expected predicate name");
    if (program_->FindPredicate(Peek().text) == nullptr) {
      return Error(StrPrintf(".query references undeclared predicate '%s'",
                             Peek().text.c_str()));
    }
    MAD_ASSIGN_OR_RETURN(Atom a, ParseAtom());
    MAD_RETURN_IF_ERROR(Expect(Tok::kDot, "'.'"));
    program_->AddQuery(std::move(a));
    return Status::OK();
  }

  // .constraint S1, ..., Sn.
  Status ParseConstraint() {
    Advance();  // .constraint
    IntegrityConstraint ic;
    MAD_ASSIGN_OR_RETURN(ic.body, ParseSubgoals());
    MAD_RETURN_IF_ERROR(Expect(Tok::kDot, "'.'"));
    program_->AddConstraint(std::move(ic));
    return Status::OK();
  }

  // head [:- body] .
  Status ParseClause() {
    int clause_line = Peek().line;
    size_t clause_start = pos_;
    MAD_ASSIGN_OR_RETURN(Atom head, ParseAtom());
    last_clause_line_ = clause_line;
    std::vector<Subgoal> body;
    bool had_body = false;
    if (Accept(Tok::kTurnstile)) {
      had_body = true;
      MAD_ASSIGN_OR_RETURN(body, ParseSubgoals());
    }
    MAD_RETURN_IF_ERROR(Expect(Tok::kDot, "'.'"));
    last_clause_line_ = clause_line;
    return AddClause(std::move(head), std::move(body), had_body,
                     SpanFrom(clause_start));
  }

  Status AddClause(Atom head, std::vector<Subgoal> body, bool had_body,
                   SourceSpan span = {}) {
    if (!had_body) {
      // Ground heads become EDB facts; nonground bodyless clauses are rules
      // (caught later by the range-restriction check if unsafe).
      bool ground = true;
      for (const Term& t : head.args) ground = ground && t.is_const();
      if (ground) {
        Fact f;
        f.pred = head.pred;
        int n = head.pred->key_arity();
        for (int i = 0; i < n; ++i) f.key.push_back(head.args[i].constant);
        if (head.pred->has_cost) {
          Value cost = head.args.back().constant;
          if (!head.pred->domain->Contains(cost)) {
            return Status::ParseError(StrPrintf(
                "fact %s: cost value %s outside domain %s",
                f.pred->name.c_str(), cost.ToString().c_str(),
                std::string(head.pred->domain->name()).c_str()));
          }
          f.cost = head.pred->domain->Normalize(cost);
        }
        program_->AddFact(std::move(f));
        return Status::OK();
      }
    }
    Rule rule;
    rule.head = std::move(head);
    rule.body = std::move(body);
    rule.source_line = last_clause_line_;
    rule.span = span;
    program_->AddRule(std::move(rule));
    return Status::OK();
  }

  StatusOr<std::vector<Subgoal>> ParseSubgoals() {
    std::vector<Subgoal> out;
    while (true) {
      MAD_ASSIGN_OR_RETURN(Subgoal sg, ParseSubgoal());
      out.push_back(std::move(sg));
      if (!Accept(Tok::kComma)) break;
    }
    return out;
  }

  StatusOr<Subgoal> ParseSubgoal() {
    if (Accept(Tok::kBang)) {
      MAD_ASSIGN_OR_RETURN(Atom a, ParseAtom());
      return Subgoal::Negative(std::move(a));
    }
    // An atom iff: lower-ident followed by '(' that is not an expression
    // function, OR lower-ident NOT followed by a comparison operator
    // (0-arity predicate).
    if (Peek().kind == Tok::kIdent && !IsExprFunction(Peek().text)) {
      if (Peek(1).kind == Tok::kLParen) {
        MAD_ASSIGN_OR_RETURN(Atom a, ParseAtom());
        return Subgoal::Positive(std::move(a));
      }
      if (!IsComparison(Peek(1).kind)) {
        MAD_ASSIGN_OR_RETURN(Atom a, ParseAtom());
        return Subgoal::Positive(std::move(a));
      }
    }
    // Otherwise: an expression followed by a comparison — either a built-in
    // subgoal or (for '='/'=r' + aggregate name) an aggregate subgoal.
    size_t subgoal_start = pos_;
    MAD_ASSIGN_OR_RETURN(std::unique_ptr<Expr> lhs, ParseExpr());
    Tok op_tok = Peek().kind;
    if (!IsComparison(op_tok)) {
      return Error("expected comparison operator in subgoal");
    }
    Advance();
    bool restricted = op_tok == Tok::kEqR;
    if ((op_tok == Tok::kEq || op_tok == Tok::kEqR) &&
        Peek().kind == Tok::kIdent &&
        lattice::AggregateRegistry::Global().IsAggregateName(Peek().text)) {
      return ParseAggregateSubgoal(std::move(lhs), restricted, subgoal_start);
    }
    if (op_tok == Tok::kEqR) {
      return Error("'=r' is only valid in aggregate subgoals");
    }
    BuiltinSubgoal b;
    MAD_ASSIGN_OR_RETURN(b.op, ToCmpOp(op_tok));
    b.lhs = std::move(lhs);
    MAD_ASSIGN_OR_RETURN(b.rhs, ParseExpr());
    return Subgoal::Builtin(std::move(b));
  }

  StatusOr<Subgoal> ParseAggregateSubgoal(std::unique_ptr<Expr> lhs,
                                          bool restricted,
                                          size_t subgoal_start) {
    AggregateSubgoal agg;
    agg.restricted = restricted;
    // The result term must be a simple variable or constant.
    if (lhs->kind == Expr::Kind::kVar) {
      agg.result = Term::Var(lhs->var);
    } else if (lhs->kind == Expr::Kind::kConst) {
      agg.result = Term::Const(lhs->constant);
    } else {
      return Error("aggregate result must be a variable or constant");
    }
    // A simple result is exactly one token, the one at subgoal_start.
    agg.result.span = tokens_[subgoal_start].Span();
    agg.function_name = Advance().text;
    if (Peek().kind == Tok::kVar) {
      agg.multiset_var = Advance().text;
    }
    MAD_RETURN_IF_ERROR(Expect(Tok::kColon, "':' in aggregate subgoal"));
    if (Accept(Tok::kLParen)) {
      while (true) {
        MAD_ASSIGN_OR_RETURN(Atom a, ParseAtom());
        agg.atoms.push_back(std::move(a));
        if (!Accept(Tok::kComma)) break;
      }
      MAD_RETURN_IF_ERROR(Expect(Tok::kRParen, "')'"));
    } else {
      MAD_ASSIGN_OR_RETURN(Atom a, ParseAtom());
      agg.atoms.push_back(std::move(a));
    }
    agg.span = SpanFrom(subgoal_start);
    MAD_RETURN_IF_ERROR(ResolveAggregate(&agg));
    return Subgoal::Aggregate(std::move(agg));
  }

  /// Determines the multiset's cost domain and resolves the aggregate
  /// function. With an explicit multiset variable E, the domain is the cost
  /// domain of the atoms in which E occupies the cost argument (all such
  /// atoms must agree — the "well typed" requirement of Section 4.2).
  /// Without E, the aggregation is over atom presence, i.e. (B, ≤).
  Status ResolveAggregate(AggregateSubgoal* agg) {
    const lattice::CostDomain* domain = nullptr;
    if (!agg->multiset_var.empty()) {
      for (const Atom& a : agg->atoms) {
        const Term* cost = a.CostTerm();
        if (cost != nullptr && cost->is_var() &&
            cost->var == agg->multiset_var) {
          if (domain != nullptr && domain != a.pred->domain) {
            return Error(StrPrintf(
                "multiset variable %s spans distinct cost domains '%s'/'%s'",
                agg->multiset_var.c_str(), std::string(domain->name()).c_str(),
                std::string(a.pred->domain->name()).c_str()));
          }
          domain = a.pred->domain;
        }
        // E must not occur outside cost arguments.
        for (int i = 0; i < a.pred->key_arity(); ++i) {
          if (a.args[i].is_var() && a.args[i].var == agg->multiset_var) {
            return Error(StrPrintf(
                "multiset variable %s appears in a non-cost argument",
                agg->multiset_var.c_str()));
          }
        }
      }
      if (domain == nullptr) {
        return Error(StrPrintf(
            "multiset variable %s does not appear in any cost argument",
            agg->multiset_var.c_str()));
      }
    } else {
      domain = lattice::BoolOrDomain();
    }
    auto fn = lattice::AggregateRegistry::Global().FindOrCreate(
        agg->function_name, domain);
    if (!fn.ok()) {
      return Error(fn.status().message());
    }
    agg->function = fn.value();
    return Status::OK();
  }

  StatusOr<Atom> ParseAtom() {
    if (Peek().kind != Tok::kIdent) return Error("expected predicate name");
    last_clause_line_ = Peek().line;
    size_t atom_start = pos_;
    std::string name = Advance().text;
    std::vector<Term> args;
    if (Accept(Tok::kLParen)) {
      bool first = true;
      while (!Accept(Tok::kRParen)) {
        if (!first) MAD_RETURN_IF_ERROR(Expect(Tok::kComma, "','"));
        first = false;
        MAD_ASSIGN_OR_RETURN(Term t, ParseTerm());
        args.push_back(std::move(t));
      }
    }
    auto pred = program_->FindOrDeclare(name, static_cast<int>(args.size()));
    if (!pred.ok()) return pred.status();
    Atom a;
    a.pred = pred.value();
    a.args = std::move(args);
    a.span = SpanFrom(atom_start);
    return a;
  }

  /// Parses a set literal "{elem, ...}" of ground terms (numbers, symbols,
  /// booleans, nested sets) into a normalized set value.
  StatusOr<Value> ParseSetLiteral() {
    MAD_RETURN_IF_ERROR(Expect(Tok::kLBrace, "'{'"));
    ValueSet elems;
    bool first = true;
    while (!Accept(Tok::kRBrace)) {
      if (!first) MAD_RETURN_IF_ERROR(Expect(Tok::kComma, "','"));
      first = false;
      MAD_ASSIGN_OR_RETURN(Term t, ParseTerm());
      if (!t.is_const()) {
        return Error("set literals may contain only constants");
      }
      elems.push_back(std::move(t.constant));
    }
    return Value::Set(std::move(elems));
  }

  StatusOr<Term> ParseTerm() {
    const Token& t = Peek();
    size_t term_start = pos_;
    auto spanned = [&](Term term) {
      term.span = SpanFrom(term_start);
      return term;
    };
    switch (t.kind) {
      case Tok::kLBrace: {
        MAD_ASSIGN_OR_RETURN(Value set, ParseSetLiteral());
        return spanned(Term::Const(std::move(set)));
      }
      case Tok::kVar: {
        std::string name = Advance().text;
        if (name == "_") {
          // Anonymous variable: each '_' is a fresh variable.
          return spanned(Term::Var(StrPrintf("_anon%d", anon_counter_++)));
        }
        return spanned(Term::Var(std::move(name)));
      }
      case Tok::kIdent: {
        std::string text = Advance().text;
        if (text == "true") return spanned(Term::Const(Value::Bool(true)));
        if (text == "false") return spanned(Term::Const(Value::Bool(false)));
        return spanned(Term::Const(Value::Symbol(text)));
      }
      case Tok::kString:
        return spanned(Term::Const(Value::Symbol(Advance().text)));
      case Tok::kNumber: {
        const Token& num = Advance();
        return spanned(Term::Const(
            num.is_integer ? Value::Int(static_cast<int64_t>(num.number))
                           : Value::Real(num.number)));
      }
      default:
        return Error("expected term");
    }
  }

  static bool IsExprFunction(const std::string& name) {
    return name == "min2" || name == "max2";
  }

  static bool IsComparison(Tok k) {
    switch (k) {
      case Tok::kEq:
      case Tok::kEqR:
      case Tok::kNe:
      case Tok::kLt:
      case Tok::kLe:
      case Tok::kGt:
      case Tok::kGe:
        return true;
      default:
        return false;
    }
  }

  /// Maps a comparison token to its CmpOp. A non-comparison token (including
  /// '=r', which only callers that already handled aggregates may pass) is a
  /// parse error, never an abort: this runs on untrusted program text, and
  /// under NDEBUG a silent fallback would misparse the subgoal as '='.
  StatusOr<CmpOp> ToCmpOp(Tok k) const {
    switch (k) {
      case Tok::kEq:
        return CmpOp::kEq;
      case Tok::kNe:
        return CmpOp::kNe;
      case Tok::kLt:
        return CmpOp::kLt;
      case Tok::kLe:
        return CmpOp::kLe;
      case Tok::kGt:
        return CmpOp::kGt;
      case Tok::kGe:
        return CmpOp::kGe;
      default:
        return Error("expected comparison operator in subgoal");
    }
  }

  StatusOr<std::unique_ptr<Expr>> ParseExpr() {
    MAD_ASSIGN_OR_RETURN(std::unique_ptr<Expr> lhs, ParseMulExpr());
    while (Peek().kind == Tok::kPlus || Peek().kind == Tok::kMinus) {
      Expr::Kind k = Advance().kind == Tok::kPlus ? Expr::Kind::kAdd
                                                  : Expr::Kind::kSub;
      MAD_ASSIGN_OR_RETURN(std::unique_ptr<Expr> rhs, ParseMulExpr());
      lhs = Expr::Binary(k, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  StatusOr<std::unique_ptr<Expr>> ParseMulExpr() {
    MAD_ASSIGN_OR_RETURN(std::unique_ptr<Expr> lhs, ParsePrimary());
    while (Peek().kind == Tok::kStar || Peek().kind == Tok::kSlash) {
      Expr::Kind k = Advance().kind == Tok::kStar ? Expr::Kind::kMul
                                                  : Expr::Kind::kDiv;
      MAD_ASSIGN_OR_RETURN(std::unique_ptr<Expr> rhs, ParsePrimary());
      lhs = Expr::Binary(k, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  StatusOr<std::unique_ptr<Expr>> ParsePrimary() {
    const Token& t = Peek();
    switch (t.kind) {
      case Tok::kNumber: {
        const Token& num = Advance();
        return Expr::Const(num.is_integer
                               ? Value::Int(static_cast<int64_t>(num.number))
                               : Value::Real(num.number));
      }
      case Tok::kVar:
        return Expr::Var(Advance().text);
      case Tok::kString:
        return Expr::Const(Value::Symbol(Advance().text));
      case Tok::kLParen: {
        Advance();
        MAD_ASSIGN_OR_RETURN(std::unique_ptr<Expr> e, ParseExpr());
        MAD_RETURN_IF_ERROR(Expect(Tok::kRParen, "')'"));
        return e;
      }
      case Tok::kIdent: {
        if (IsExprFunction(t.text)) {
          Expr::Kind k =
              t.text == "min2" ? Expr::Kind::kMin2 : Expr::Kind::kMax2;
          Advance();
          MAD_RETURN_IF_ERROR(Expect(Tok::kLParen, "'('"));
          MAD_ASSIGN_OR_RETURN(std::unique_ptr<Expr> a, ParseExpr());
          MAD_RETURN_IF_ERROR(Expect(Tok::kComma, "','"));
          MAD_ASSIGN_OR_RETURN(std::unique_ptr<Expr> b, ParseExpr());
          MAD_RETURN_IF_ERROR(Expect(Tok::kRParen, "')'"));
          return Expr::Binary(k, std::move(a), std::move(b));
        }
        std::string text = Advance().text;
        if (text == "true") return Expr::Const(Value::Bool(true));
        if (text == "false") return Expr::Const(Value::Bool(false));
        return Expr::Const(Value::Symbol(text));
      }
      default:
        return Error("expected expression");
    }
  }

  Program* program_;
  std::vector<Token> tokens_;
  size_t pos_ = 0;
  int anon_counter_ = 0;
  int last_clause_line_ = 0;
};

}  // namespace

StatusOr<Program> ParseProgram(std::string_view source) {
  Program program;
  Lexer lexer(source);
  MAD_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Tokenize());
  Parser parser(&program, std::move(tokens));
  MAD_RETURN_IF_ERROR(parser.ParseAll());
  return program;
}

Status ParseRuleInto(Program* program, std::string_view rule_text) {
  Lexer lexer(rule_text);
  MAD_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Tokenize());
  Parser parser(program, std::move(tokens));
  return parser.ParseAll();
}

Status ParseFactsInto(Program* program, std::string_view facts_text) {
  Lexer lexer(facts_text);
  MAD_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Tokenize());
  Parser parser(program, std::move(tokens));
  return parser.ParseFactsOnly();
}

StatusOr<Atom> ParseQueryAtom(const Program& program,
                              std::string_view atom_text) {
  Lexer lexer(atom_text);
  MAD_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Tokenize());
  // ParseSingleAtom only reads declarations (it rejects undeclared predicate
  // names before FindOrDeclare could mutate), so the const_cast is safe.
  Parser parser(const_cast<Program*>(&program), std::move(tokens));
  return parser.ParseSingleAtom();
}

StatusOr<std::vector<Fact>> ParseFacts(Program* program,
                                       std::string_view facts_text) {
  const size_t before = program->facts().size();
  Status st = ParseFactsInto(program, facts_text);
  // Drain whatever was appended even on error, so a half-parsed payload
  // never leaks facts into the program.
  std::vector<Fact> out = program->TakeFactsFrom(before);
  MAD_RETURN_IF_ERROR(st);
  return out;
}

}  // namespace datalog
}  // namespace mad
