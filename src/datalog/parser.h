#ifndef MAD_DATALOG_PARSER_H_
#define MAD_DATALOG_PARSER_H_

#include <string_view>

#include "datalog/ast.h"
#include "util/status.h"

namespace mad {
namespace datalog {

/// Parses the textual rule language into a Program.
///
/// Syntax (Prolog-flavoured; see README for the full grammar):
///
///   // shortest paths (Example 2.6 of the paper)
///   .decl arc(from, to, c: min_real)
///   .decl path(from, mid, to, c: min_real)
///   .decl s(from, to, c: min_real)
///   .constraint arc(direct, Z, C).
///   path(X, direct, Y, C) :- arc(X, Y, C).
///   path(X, Z, Y, C) :- s(X, Z, C1), arc(Z, Y, C2), C = C1 + C2.
///   s(X, Y, C) :- C =r min D : path(X, Z, Y, D).
///
/// Conventions:
///  * identifiers starting with an upper-case letter (or `_`) are variables;
///    lower-case identifiers and quoted strings are symbol constants;
///  * `.decl p(a, b, c: DOMAIN) [default]` declares a cost predicate whose
///    final argument ranges over the named lattice (see DomainRegistry);
///    `default` makes it a default-value cost predicate (Section 2.3.2);
///  * an aggregate subgoal is `C = fn E : body` or `C =r fn E : body` where
///    body is an atom or a parenthesized conjunction of atoms; `E` may be
///    omitted when aggregating predicates without cost arguments
///    (`N = count : q(X)`);
///  * built-in subgoals compare arithmetic expressions: `C = C1 + C2`,
///    `N > 0.5`, `N >= K`; expressions may use + - * / and min2/max2;
///  * ground bodyless clauses are facts and land in Program::facts();
///  * `//` and `%` start line comments.
StatusOr<Program> ParseProgram(std::string_view source);

/// Parses a single rule in the context of an existing program's
/// declarations. Used by tests to build programs incrementally.
Status ParseRuleInto(Program* program, std::string_view rule_text);

/// Parses facts only (e.g. a generated EDB listing) into `program`.
Status ParseFactsInto(Program* program, std::string_view facts_text);

/// Parses a single query atom like `sp("a", X, _)` against `program`'s
/// existing declarations (constants = bound positions, variables/`_` = free).
/// The predicate must already be declared; `program` is never mutated. Used
/// by `mondl --query`, `madc query` and the madd `query` verb.
StatusOr<Atom> ParseQueryAtom(const Program& program,
                              std::string_view atom_text);

/// Parses facts against `program`'s declarations and returns them *without*
/// leaving them in Program::facts() — the transient-payload variant used by
/// the serving layer for insert requests. Facts must reference predicates
/// the program already declares (implicit cost-free declarations still
/// happen for unknown names, matching ParseFactsInto).
StatusOr<std::vector<Fact>> ParseFacts(Program* program,
                                       std::string_view facts_text);

}  // namespace datalog
}  // namespace mad

#endif  // MAD_DATALOG_PARSER_H_
