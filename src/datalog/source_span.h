#ifndef MAD_DATALOG_SOURCE_SPAN_H_
#define MAD_DATALOG_SOURCE_SPAN_H_

#include <string>

namespace mad {
namespace datalog {

/// A half-open region of program source text, in 1-based lines and columns.
/// Default-constructed spans (line == 0) mean "no source location" — the AST
/// node was built programmatically rather than parsed. Diagnostics carry
/// spans so they can point at the offending argument, not just its line.
struct SourceSpan {
  int line = 0;      ///< 1-based start line; 0 = unknown
  int col = 0;       ///< 1-based start column
  int end_line = 0;  ///< 1-based line of the character just past the span
  int end_col = 0;   ///< 1-based column just past the span (exclusive)

  bool valid() const { return line > 0; }

  /// Spans the region covering both `a` and `b` (either may be invalid).
  static SourceSpan Cover(const SourceSpan& a, const SourceSpan& b) {
    if (!a.valid()) return b;
    if (!b.valid()) return a;
    SourceSpan out = a;
    if (b.line < out.line || (b.line == out.line && b.col < out.col)) {
      out.line = b.line;
      out.col = b.col;
    }
    if (b.end_line > out.end_line ||
        (b.end_line == out.end_line && b.end_col > out.end_col)) {
      out.end_line = b.end_line;
      out.end_col = b.end_col;
    }
    return out;
  }

  bool operator==(const SourceSpan& o) const {
    return line == o.line && col == o.col && end_line == o.end_line &&
           end_col == o.end_col;
  }

  /// "12:5-12:18", "12:5-14:2", or "<unknown>".
  std::string ToString() const {
    if (!valid()) return "<unknown>";
    std::string out =
        std::to_string(line) + ":" + std::to_string(col);
    if (end_line > 0) {
      out += "-";
      if (end_line != line) out += std::to_string(end_line) + ":";
      out += std::to_string(end_col);
    }
    return out;
  }
};

}  // namespace datalog
}  // namespace mad

#endif  // MAD_DATALOG_SOURCE_SPAN_H_
