#include "datalog/value.h"

#include <algorithm>
#include <cassert>
#include <deque>
#include <mutex>
#include <unordered_map>

#include "util/string_util.h"

namespace mad {
namespace datalog {

// ---------------------------------------------------------------------------
// SymbolTable
// ---------------------------------------------------------------------------

struct SymbolTable::Impl {
  mutable std::mutex mu;
  // deque keeps string addresses stable as the table grows.
  std::deque<std::string> names;
  std::unordered_map<std::string_view, uint32_t> ids;
};

SymbolTable& SymbolTable::Global() {
  static SymbolTable table;
  return table;
}

SymbolTable::Impl& SymbolTable::impl() const {
  static Impl impl;
  return impl;
}

uint32_t SymbolTable::Intern(std::string_view name) {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mu);
  auto it = i.ids.find(name);
  if (it != i.ids.end()) return it->second;
  i.names.emplace_back(name);
  uint32_t id = static_cast<uint32_t>(i.names.size() - 1);
  i.ids.emplace(std::string_view(i.names.back()), id);
  return id;
}

std::string_view SymbolTable::NameOf(uint32_t id) const {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mu);
  assert(id < i.names.size());
  return i.names[id];
}

size_t SymbolTable::size() const {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mu);
  return i.names.size();
}

// ---------------------------------------------------------------------------
// Value
// ---------------------------------------------------------------------------

Value Value::Symbol(std::string_view name) {
  return SymbolId(SymbolTable::Global().Intern(name));
}

Value Value::Set(ValueSet elems) {
  std::sort(elems.begin(), elems.end());
  elems.erase(std::unique(elems.begin(), elems.end()), elems.end());
  Value v;
  v.kind_ = Kind::kSet;
  v.int_ = 0;
  v.set_ = std::make_shared<const ValueSet>(std::move(elems));
  return v;
}

Value Value::SetShared(std::shared_ptr<const ValueSet> set) {
  Value v;
  v.kind_ = Kind::kSet;
  v.int_ = 0;
  v.set_ = std::move(set);
  return v;
}

std::string_view Value::symbol_name() const {
  return SymbolTable::Global().NameOf(symbol_id());
}

bool Value::operator==(const Value& other) const {
  if (kind_ != other.kind_) return false;
  switch (kind_) {
    case Kind::kNone:
      return true;
    case Kind::kSymbol:
    case Kind::kInt:
    case Kind::kBool:
      return int_ == other.int_;
    case Kind::kDouble:
      return double_ == other.double_;
    case Kind::kSet:
      return set_ == other.set_ || *set_ == *other.set_;
  }
  return false;
}

bool Value::operator<(const Value& other) const {
  if (kind_ != other.kind_) return kind_ < other.kind_;
  switch (kind_) {
    case Kind::kNone:
      return false;
    case Kind::kSymbol:
    case Kind::kInt:
    case Kind::kBool:
      return int_ < other.int_;
    case Kind::kDouble:
      return double_ < other.double_;
    case Kind::kSet:
      return std::lexicographical_compare(set_->begin(), set_->end(),
                                          other.set_->begin(),
                                          other.set_->end());
  }
  return false;
}

size_t Value::Hash() const {
  uint64_t h = HashMix64(static_cast<uint64_t>(kind_));
  switch (kind_) {
    case Kind::kNone:
      break;
    case Kind::kSymbol:
    case Kind::kInt:
    case Kind::kBool:
      h = HashMix64(h ^ static_cast<uint64_t>(int_));
      break;
    case Kind::kDouble: {
      uint64_t bits;
      static_assert(sizeof(bits) == sizeof(double_));
      // Normalize -0.0 to +0.0 so x == y implies Hash(x) == Hash(y).
      double d = double_ == 0.0 ? 0.0 : double_;
      __builtin_memcpy(&bits, &d, sizeof(bits));
      h = HashMix64(h ^ bits);
      break;
    }
    case Kind::kSet: {
      size_t seed = 0xabcdef12u ^ set_->size();
      for (const Value& v : *set_) HashCombine(&seed, v.Hash());
      h = HashMix64(h ^ seed);
      break;
    }
  }
  return static_cast<size_t>(h);
}

std::string Value::ToString() const {
  switch (kind_) {
    case Kind::kNone:
      return "<none>";
    case Kind::kSymbol:
      return std::string(symbol_name());
    case Kind::kInt:
      return std::to_string(int_);
    case Kind::kDouble:
      return FormatDouble(double_);
    case Kind::kBool:
      return int_ ? "true" : "false";
    case Kind::kSet: {
      std::string out = "{";
      for (size_t i = 0; i < set_->size(); ++i) {
        if (i > 0) out += ", ";
        out += (*set_)[i].ToString();
      }
      out += "}";
      return out;
    }
  }
  return "<?>";
}

int Value::NumericCompare(const Value& a, const Value& b) {
  assert((a.is_numeric() || a.is_bool()) && (b.is_numeric() || b.is_bool()));
  if (a.is_int() && b.is_int()) {
    if (a.int_value() < b.int_value()) return -1;
    if (a.int_value() > b.int_value()) return 1;
    return 0;
  }
  double x = a.AsDouble();
  double y = b.AsDouble();
  if (x < y) return -1;
  if (x > y) return 1;
  return 0;
}

std::string TupleToString(const Tuple& t) {
  std::string out = "(";
  for (size_t i = 0; i < t.size(); ++i) {
    if (i > 0) out += ", ";
    out += t[i].ToString();
  }
  out += ")";
  return out;
}

}  // namespace datalog
}  // namespace mad
