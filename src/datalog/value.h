#ifndef MAD_DATALOG_VALUE_H_
#define MAD_DATALOG_VALUE_H_

#include <cstdint>
#include <memory>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "util/hash.h"

namespace mad {
namespace datalog {

class Value;

/// Immutable, sorted, duplicate-free set of values. Set-valued costs are what
/// Figure 1's `union` / `intersection` rows aggregate over.
using ValueSet = std::vector<Value>;

/// The runtime value of a ground term: an interned symbol, a 64-bit integer,
/// a double, a boolean, or a finite set of values.
///
/// Values are small (16 bytes + optional shared set payload), cheaply
/// copyable, totally ordered (by kind, then payload) so they can serve as
/// hash/tree keys, and hash-consistent with operator==.
///
/// NOTE: Value's total order is a *representation* order used for indexing;
/// the semantic cost order (⊑ of the paper) always comes from a
/// lattice::CostDomain and may be the dual of the numeric order (Example 3.1).
class Value {
 public:
  enum class Kind : uint8_t {
    kNone = 0,   ///< default-constructed placeholder; never stored in a DB
    kSymbol = 1,
    kInt = 2,
    kDouble = 3,
    kBool = 4,
    kSet = 5,
  };

  Value() : kind_(Kind::kNone), int_(0) {}

  /// Interns `name` and returns the symbol value for it.
  static Value Symbol(std::string_view name);
  /// Builds a symbol value from an already-interned id.
  static Value SymbolId(uint32_t id) {
    Value v;
    v.kind_ = Kind::kSymbol;
    v.int_ = id;
    return v;
  }
  static Value Int(int64_t i) {
    Value v;
    v.kind_ = Kind::kInt;
    v.int_ = i;
    return v;
  }
  static Value Real(double d) {
    Value v;
    v.kind_ = Kind::kDouble;
    v.double_ = d;
    return v;
  }
  static Value Bool(bool b) {
    Value v;
    v.kind_ = Kind::kBool;
    v.int_ = b ? 1 : 0;
    return v;
  }
  /// Sorts and dedupes `elems` into a set value.
  static Value Set(ValueSet elems);
  /// Wraps an already-normalized (sorted, unique) set without copying.
  static Value SetShared(std::shared_ptr<const ValueSet> set);

  Kind kind() const { return kind_; }
  bool is_none() const { return kind_ == Kind::kNone; }
  bool is_symbol() const { return kind_ == Kind::kSymbol; }
  bool is_int() const { return kind_ == Kind::kInt; }
  bool is_double() const { return kind_ == Kind::kDouble; }
  bool is_numeric() const { return is_int() || is_double(); }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_set() const { return kind_ == Kind::kSet; }

  uint32_t symbol_id() const { return static_cast<uint32_t>(int_); }
  /// Name of the interned symbol (valid for the process lifetime).
  std::string_view symbol_name() const;
  int64_t int_value() const { return int_; }
  double double_value() const { return double_; }
  bool bool_value() const { return int_ != 0; }
  const ValueSet& set_value() const { return *set_; }
  const std::shared_ptr<const ValueSet>& set_ptr() const { return set_; }

  /// Numeric payload as double; valid for kInt/kDouble/kBool.
  double AsDouble() const {
    return kind_ == Kind::kDouble ? double_ : static_cast<double>(int_);
  }

  bool operator==(const Value& other) const;
  bool operator!=(const Value& other) const { return !(*this == other); }
  /// Representation order: kind first, payload second.
  bool operator<(const Value& other) const;

  size_t Hash() const;

  /// Human-readable form: symbols print their name, sets print "{a, b}".
  std::string ToString() const;

  /// Numeric comparison across kInt/kDouble (and kBool as 0/1).
  /// Returns -1, 0, 1. Both values must be numeric or boolean.
  static int NumericCompare(const Value& a, const Value& b);

 private:
  Kind kind_;
  union {
    int64_t int_;
    double double_;
  };
  std::shared_ptr<const ValueSet> set_;
};

inline std::ostream& operator<<(std::ostream& os, const Value& v) {
  return os << v.ToString();
}

/// Process-wide symbol interner. Symbol ids are dense and stable for the
/// process lifetime, which lets Value stay 16 bytes and makes joins compare
/// integers rather than strings (the standard Datalog-engine trick).
class SymbolTable {
 public:
  static SymbolTable& Global();

  /// Returns the id for `name`, interning it if new.
  uint32_t Intern(std::string_view name);
  /// Name for an id; the reference is valid for the process lifetime.
  std::string_view NameOf(uint32_t id) const;
  size_t size() const;

 private:
  SymbolTable() = default;
  struct Impl;
  Impl& impl() const;
};

}  // namespace datalog
}  // namespace mad

namespace std {
template <>
struct hash<mad::datalog::Value> {
  size_t operator()(const mad::datalog::Value& v) const { return v.Hash(); }
};
}  // namespace std

namespace mad {
namespace datalog {

/// A tuple of ground values; the key of a fact (all non-cost arguments).
using Tuple = std::vector<Value>;

/// A probe carrying a tuple together with its precomputed TupleHash, so a
/// lookup that touches several hash containers (primary row map, secondary
/// index buckets) hashes the tuple exactly once.
struct PrehashedTuple {
  const Tuple* tuple;
  size_t hash;
};

struct TupleHash {
  using is_transparent = void;
  size_t operator()(const Tuple& t) const {
    size_t seed = 0x12345678u ^ t.size();
    for (const Value& v : t) HashCombine(&seed, v.Hash());
    return seed;
  }
  size_t operator()(const PrehashedTuple& p) const { return p.hash; }
};

/// Transparent equality companion to TupleHash: containers declared with
/// (TupleHash, TupleEq) accept PrehashedTuple probes in find().
struct TupleEq {
  using is_transparent = void;
  bool operator()(const Tuple& a, const Tuple& b) const { return a == b; }
  bool operator()(const PrehashedTuple& a, const Tuple& b) const {
    return *a.tuple == b;
  }
  bool operator()(const Tuple& a, const PrehashedTuple& b) const {
    return a == *b.tuple;
  }
  bool operator()(const PrehashedTuple& a, const PrehashedTuple& b) const {
    return *a.tuple == *b.tuple;
  }
};

/// Renders "(a, b, 3)".
std::string TupleToString(const Tuple& t);

}  // namespace datalog
}  // namespace mad

#endif  // MAD_DATALOG_VALUE_H_
