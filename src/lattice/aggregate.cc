#include "lattice/aggregate.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <map>
#include <mutex>
#include <set>

#include "util/string_util.h"

namespace mad {
namespace lattice {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

const char* MonotonicityName(Monotonicity m) {
  switch (m) {
    case Monotonicity::kMonotonic:
      return "monotonic";
    case Monotonicity::kPseudoMonotonic:
      return "pseudo-monotonic";
    case Monotonicity::kNone:
      return "non-monotonic";
  }
  return "?";
}

namespace {

// ---------------------------------------------------------------------------
// Concrete aggregate implementations
// ---------------------------------------------------------------------------

/// Base carrying the (name, D, R, monotonicity) quadruple.
class AggregateBase : public AggregateFunction {
 public:
  AggregateBase(std::string name, const CostDomain* in, const CostDomain* out,
                Monotonicity mono)
      : name_(std::move(name)), in_(in), out_(out), mono_(mono) {}

  std::string_view name() const override { return name_; }
  const CostDomain* input_domain() const override { return in_; }
  const CostDomain* output_domain() const override { return out_; }
  Monotonicity monotonicity() const override { return mono_; }

 private:
  std::string name_;
  const CostDomain* in_;
  const CostDomain* out_;
  Monotonicity mono_;
};

/// min/max/and/or/union/intersection: F = ⊔ of the *output* lattice when the
/// aggregate agrees with the lattice join (min over ⊑=≥ folds Join = numeric
/// min, and so on). F(∅) = ⊥, which is exactly what monotonicity forces.
class LatticeJoinAggregate : public AggregateBase {
 public:
  using AggregateBase::AggregateBase;
  StatusOr<Value> Apply(const std::vector<Value>& multiset) const override {
    return output_domain()->JoinAll(multiset);
  }
};

/// The dual: folds Meet. This realizes the *pseudo-monotonic* pairings (min
/// under ≤, max under ≥, AND under ≤): the fold computes the same numeric
/// min/max/conjunction but the declared lattice points the other way.
class LatticeMeetAggregate : public AggregateBase {
 public:
  using AggregateBase::AggregateBase;
  StatusOr<Value> Apply(const std::vector<Value>& multiset) const override {
    if (multiset.empty()) {
      // Meet over nothing would be ⊤; an empty group has no defined extremum
      // under the pseudo-monotonic pairing, which is precisely why Def. 4.5
      // confines these to fixed-size (default-value) multisets.
      return Status::InvalidArgument(
          StrPrintf("%s of an empty multiset", std::string(name()).c_str()));
    }
    return output_domain()->MeetAll(multiset);
  }
};

/// sum over non-negative reals (Figure 1 row 4), with ∞ as the limit value.
class SumAggregate : public AggregateBase {
 public:
  using AggregateBase::AggregateBase;
  StatusOr<Value> Apply(const std::vector<Value>& multiset) const override {
    double acc = 0.0;
    for (const Value& v : multiset) {
      if (!v.is_numeric() && !v.is_bool()) {
        return Status::InvalidArgument("sum over non-numeric value");
      }
      acc += v.AsDouble();
    }
    return Value::Real(acc);
  }
};

/// halfsum (Example 5.1): half the sum. Monotonic on non-negative reals but
/// its T_P is not continuous — the engine's iteration-budget machinery exists
/// for exactly this function.
class HalfSumAggregate : public AggregateBase {
 public:
  using AggregateBase::AggregateBase;
  StatusOr<Value> Apply(const std::vector<Value>& multiset) const override {
    double acc = 0.0;
    for (const Value& v : multiset) acc += v.AsDouble();
    return Value::Real(acc / 2.0);
  }
};

/// count (Figure 1 row 8): multiset cardinality, any element domain.
class CountAggregate : public AggregateBase {
 public:
  using AggregateBase::AggregateBase;
  StatusOr<Value> Apply(const std::vector<Value>& multiset) const override {
    return Value::Real(static_cast<double>(multiset.size()));
  }
};

/// product over positive naturals (Figure 1 row 7); saturates at ∞.
class ProductAggregate : public AggregateBase {
 public:
  using AggregateBase::AggregateBase;
  StatusOr<Value> Apply(const std::vector<Value>& multiset) const override {
    double acc = 1.0;
    for (const Value& v : multiset) {
      double d = v.AsDouble();
      if (d < 1.0) {
        return Status::InvalidArgument("product over value below 1");
      }
      acc *= d;
      if (std::isinf(acc)) break;
    }
    return Value::Real(acc);
  }
};

/// average — pseudo-monotonic (Section 4.1.1); undefined on empty groups.
class AverageAggregate : public AggregateBase {
 public:
  using AggregateBase::AggregateBase;
  StatusOr<Value> Apply(const std::vector<Value>& multiset) const override {
    if (multiset.empty()) {
      return Status::InvalidArgument("avg of an empty multiset");
    }
    double acc = 0.0;
    for (const Value& v : multiset) acc += v.AsDouble();
    return Value::Real(acc / static_cast<double>(multiset.size()));
  }
};

/// Figure 1 row 11: a monotonically increasing multigraph property P.
/// Each multiset element is a set of vertices inducing a clique; P holds iff
/// the union multigraph contains a simple path with >= 4 edges. Adding
/// elements or enlarging an element (⊆) can only add edges, so P is monotone.
class HasPath4Aggregate : public AggregateBase {
 public:
  using AggregateBase::AggregateBase;

  StatusOr<Value> Apply(const std::vector<Value>& multiset) const override {
    // Build the simple-graph union of all cliques.
    std::map<Value, std::set<Value>> adj;
    for (const Value& elem : multiset) {
      if (!elem.is_set()) {
        return Status::InvalidArgument("has_path4 over non-set element");
      }
      const ValueSet& verts = elem.set_value();
      for (size_t i = 0; i < verts.size(); ++i) {
        for (size_t j = i + 1; j < verts.size(); ++j) {
          adj[verts[i]].insert(verts[j]);
          adj[verts[j]].insert(verts[i]);
        }
      }
    }
    for (const auto& [start, _] : adj) {
      std::set<Value> visited{start};
      if (Dfs(adj, start, 0, &visited)) return Value::Real(1.0);
    }
    return Value::Real(0.0);
  }

 private:
  static constexpr int kTargetLength = 4;

  static bool Dfs(const std::map<Value, std::set<Value>>& adj,
                  const Value& at, int depth, std::set<Value>* visited) {
    if (depth == kTargetLength) return true;
    auto it = adj.find(at);
    if (it == adj.end()) return false;
    for (const Value& next : it->second) {
      if (visited->count(next)) continue;
      visited->insert(next);
      if (Dfs(adj, next, depth + 1, visited)) return true;
      visited->erase(next);
    }
    return false;
  }
};

const NumericDomain* AsNumeric(const CostDomain* d) {
  return dynamic_cast<const NumericDomain*>(d);
}
const SetDomain* AsSet(const CostDomain* d) {
  return dynamic_cast<const SetDomain*>(d);
}

}  // namespace

// ---------------------------------------------------------------------------
// MakeAggregate
// ---------------------------------------------------------------------------

StatusOr<std::shared_ptr<const AggregateFunction>> MakeAggregate(
    std::string_view name, const CostDomain* in) {
  if (in == nullptr) {
    return Status::InvalidArgument("aggregate requires an input domain");
  }
  const NumericDomain* num = AsNumeric(in);
  const SetDomain* set = AsSet(in);
  std::string n(name);

  auto need_numeric = [&]() -> Status {
    if (num == nullptr) {
      return Status::InvalidArgument(
          StrPrintf("aggregate '%s' needs a numeric domain, got '%s'",
                    n.c_str(), std::string(in->name()).c_str()));
    }
    return Status::OK();
  };

  if (name == "min" || name == "and") {
    MAD_RETURN_IF_ERROR(need_numeric());
    if (name == "and" && !(num->lo() == 0.0 && num->hi() == 1.0)) {
      return Status::InvalidArgument("'and' needs a boolean domain");
    }
    // Numeric minimum: the lattice join of a descending (⊑ = ≥) domain,
    // monotonic there; only pseudo-monotonic on an ascending domain.
    if (!num->ascending()) {
      return std::shared_ptr<const AggregateFunction>(
          std::make_shared<LatticeJoinAggregate>(n, in, in,
                                                 Monotonicity::kMonotonic));
    }
    return std::shared_ptr<const AggregateFunction>(
        std::make_shared<LatticeMeetAggregate>(
            n, in, in, Monotonicity::kPseudoMonotonic));
  }

  if (name == "max" || name == "or") {
    MAD_RETURN_IF_ERROR(need_numeric());
    if (name == "or" && !(num->lo() == 0.0 && num->hi() == 1.0)) {
      return Status::InvalidArgument("'or' needs a boolean domain");
    }
    if (num->ascending()) {
      return std::shared_ptr<const AggregateFunction>(
          std::make_shared<LatticeJoinAggregate>(n, in, in,
                                                 Monotonicity::kMonotonic));
    }
    return std::shared_ptr<const AggregateFunction>(
        std::make_shared<LatticeMeetAggregate>(
            n, in, in, Monotonicity::kPseudoMonotonic));
  }

  if (name == "sum" || name == "halfsum") {
    MAD_RETURN_IF_ERROR(need_numeric());
    if (!num->ascending() || num->lo() < 0.0) {
      return Status::InvalidArgument(StrPrintf(
          "'%s' is monotonic only over non-negative ascending domains",
          n.c_str()));
    }
    if (name == "sum") {
      return std::shared_ptr<const AggregateFunction>(
          std::make_shared<SumAggregate>(n, in, in,
                                         Monotonicity::kMonotonic));
    }
    return std::shared_ptr<const AggregateFunction>(
        std::make_shared<HalfSumAggregate>(n, in, in,
                                           Monotonicity::kMonotonic));
  }

  if (name == "count") {
    // Any input domain; output is N∪{∞} under ≤.
    return std::shared_ptr<const AggregateFunction>(
        std::make_shared<CountAggregate>(n, in, CountNatDomain(),
                                         Monotonicity::kMonotonic));
  }

  if (name == "product") {
    MAD_RETURN_IF_ERROR(need_numeric());
    if (!num->ascending() || num->lo() < 1.0) {
      return Status::InvalidArgument(
          "'product' is monotonic only over domains bounded below by 1");
    }
    return std::shared_ptr<const AggregateFunction>(
        std::make_shared<ProductAggregate>(n, in, in,
                                           Monotonicity::kMonotonic));
  }

  if (name == "avg") {
    MAD_RETURN_IF_ERROR(need_numeric());
    return std::shared_ptr<const AggregateFunction>(
        std::make_shared<AverageAggregate>(
            n, in, in,
            num->ascending() ? Monotonicity::kPseudoMonotonic
                             : Monotonicity::kNone));
  }

  if (name == "union") {
    if (set == nullptr || !set->ascending()) {
      return Status::InvalidArgument(
          "'union' needs an ascending (⊆) set domain");
    }
    return std::shared_ptr<const AggregateFunction>(
        std::make_shared<LatticeJoinAggregate>(n, in, in,
                                               Monotonicity::kMonotonic));
  }

  if (name == "intersection") {
    if (set == nullptr || set->ascending()) {
      return Status::InvalidArgument(
          "'intersection' needs a descending (⊇) set domain with a universe");
    }
    return std::shared_ptr<const AggregateFunction>(
        std::make_shared<LatticeJoinAggregate>(n, in, in,
                                               Monotonicity::kMonotonic));
  }

  if (name == "has_path4") {
    if (set == nullptr || !set->ascending()) {
      return Status::InvalidArgument(
          "'has_path4' needs an ascending (⊆) set domain of vertex sets");
    }
    return std::shared_ptr<const AggregateFunction>(
        std::make_shared<HasPath4Aggregate>(n, in, BoolOrDomain(),
                                            Monotonicity::kMonotonic));
  }

  return Status::InvalidArgument(
      StrPrintf("unknown aggregate function '%s'", n.c_str()));
}

// ---------------------------------------------------------------------------
// AggregateRegistry
// ---------------------------------------------------------------------------

struct AggregateRegistry::Impl {
  mutable std::mutex mu;
  std::map<std::pair<std::string, std::string>,
           std::shared_ptr<const AggregateFunction>>
      cache;
};

AggregateRegistry::Impl& AggregateRegistry::impl() const {
  static Impl impl;
  return impl;
}

AggregateRegistry& AggregateRegistry::Global() {
  static AggregateRegistry registry;
  return registry;
}

StatusOr<const AggregateFunction*> AggregateRegistry::FindOrCreate(
    std::string_view name, const CostDomain* in) {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mu);
  auto key = std::make_pair(std::string(name),
                            in ? std::string(in->name()) : std::string());
  auto it = i.cache.find(key);
  if (it != i.cache.end()) return it->second.get();
  MAD_ASSIGN_OR_RETURN(auto fn, MakeAggregate(name, in));
  const AggregateFunction* raw = fn.get();
  i.cache.emplace(std::move(key), std::move(fn));
  return raw;
}

bool AggregateRegistry::IsAggregateName(std::string_view name) const {
  static const std::set<std::string, std::less<>> kNames = {
      "min",  "max",     "sum",   "count",        "product",  "avg",
      "halfsum", "and",  "or",    "union",        "intersection",
      "has_path4"};
  return kNames.count(name) > 0;
}

// ---------------------------------------------------------------------------
// Figure 1
// ---------------------------------------------------------------------------

const std::vector<Figure1Row>& Figure1() {
  static const std::vector<Figure1Row>* rows = [] {
    auto get = [](std::string_view name, const CostDomain* in) {
      auto r = AggregateRegistry::Global().FindOrCreate(name, in);
      assert(r.ok());
      return r.value();
    };
    // Row 10 needs a concrete finite universe to have a representable ⊥ = S.
    ValueSet universe;
    for (int i = 0; i < 16; ++i) {
      universe.push_back(Value::Symbol(StrPrintf("s%d", i)));
    }
    static std::shared_ptr<const CostDomain> intersect_domain =
        MakeSetIntersectionDomain("set_intersection_sample",
                                  std::move(universe));

    auto* v = new std::vector<Figure1Row>{
        {1, "maximum over R∪{±∞} under ≤", get("max", MaxRealDomain())},
        {2, "maximum over R*∪{∞} under ≤", get("max", MaxNonNegDomain())},
        {3, "minimum over R∪{±∞} under ≥", get("min", MinRealDomain())},
        {4, "sum over R*∪{∞} under ≤", get("sum", SumNonNegDomain())},
        {5, "AND over B under ≥", get("and", BoolAndDomain())},
        {6, "OR over B under ≤", get("or", BoolOrDomain())},
        {7, "product over N⁺∪{∞} under ≤", get("product", ProductPosDomain())},
        {8, "count from (B, ≤) into (N∪{∞}, ≤)", get("count", BoolOrDomain())},
        {9, "union over 2^S under ⊆", get("union", SetUnionDomain())},
        {10, "intersection over 2^S under ⊇",
         get("intersection", intersect_domain.get())},
        {11, "monotone multigraph property P (simple path of length 4)",
         get("has_path4", SetUnionDomain())},
    };
    return v;
  }();
  return *rows;
}

}  // namespace lattice
}  // namespace mad
