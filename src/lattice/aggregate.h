#ifndef MAD_LATTICE_AGGREGATE_H_
#define MAD_LATTICE_AGGREGATE_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "lattice/cost_domain.h"
#include "util/status.h"

namespace mad {
namespace lattice {

/// Monotonicity class of an aggregate function (Section 4.1).
enum class Monotonicity {
  /// I ⊑ I' ⇒ F(I) ⊑ F(I') for all finite multisets (Definition in 4.1).
  kMonotonic,
  /// Monotone only between equal-cardinality multisets (Definition 4.1);
  /// usable in admissible rules only over default-value cost predicates.
  kPseudoMonotonic,
  /// Neither; such an aggregate can never appear in a CDB aggregate subgoal
  /// of an admissible rule.
  kNone,
};

const char* MonotonicityName(Monotonicity m);

/// An aggregate function F : M(D) -> R together with its input lattice D and
/// output lattice R (one conceptual row of Figure 1).
///
/// Instances are immutable and shared; obtain them via MakeAggregate() or the
/// AggregateRegistry.
class AggregateFunction {
 public:
  virtual ~AggregateFunction() = default;

  /// Surface name used in rule text, e.g. "min", "sum", "count".
  virtual std::string_view name() const = 0;
  virtual const CostDomain* input_domain() const = 0;
  virtual const CostDomain* output_domain() const = 0;
  virtual Monotonicity monotonicity() const = 0;

  /// Applies F to a finite multiset. Values need not be normalized.
  /// Returns InvalidArgument for inputs outside F's domain (e.g. avg of the
  /// empty multiset); the evaluator treats that as "subgoal unsatisfied".
  virtual StatusOr<Value> Apply(const std::vector<Value>& multiset) const = 0;
};

/// Builds the aggregate named `name` over the given input lattice, checking
/// compatibility (e.g. `sum` requires a non-negative ascending numeric
/// domain) and deriving the correct monotonicity class for that pairing —
/// `min` is monotonic on the ≥-ordered lattice but only pseudo-monotonic on
/// the ≤-ordered one, exactly as Section 4.1 lays out.
///
/// Supported names: min, max, sum, count, product, avg, halfsum, and, or,
/// union, intersection, has_path4.
StatusOr<std::shared_ptr<const AggregateFunction>> MakeAggregate(
    std::string_view name, const CostDomain* input_domain);

/// Cache of MakeAggregate results keyed by (name, input domain name); this is
/// what the parser consults when it resolves an aggregate subgoal.
class AggregateRegistry {
 public:
  static AggregateRegistry& Global();

  /// Finds or creates the aggregate; forwards MakeAggregate errors.
  StatusOr<const AggregateFunction*> FindOrCreate(
      std::string_view name, const CostDomain* input_domain);

  /// True iff `name` is one of the supported aggregate names.
  bool IsAggregateName(std::string_view name) const;

 private:
  AggregateRegistry() = default;
  struct Impl;
  Impl& impl() const;
};

/// One row of the paper's Figure 1, realized with concrete objects so tests
/// and benchmarks can sweep the whole table.
struct Figure1Row {
  int row_number;                  ///< 1-based row index in the paper's table
  std::string description;        ///< e.g. "maximum over R∪{±∞} under ≤"
  const AggregateFunction* fn;
};

/// The full Figure 1 table (11 rows). Row 10 (intersection) is instantiated
/// with a canonical 16-element universe; row 11 (monotone multigraph property
/// P) is instantiated as "has a simple path of length 4".
const std::vector<Figure1Row>& Figure1();

}  // namespace lattice
}  // namespace mad

#endif  // MAD_LATTICE_AGGREGATE_H_
