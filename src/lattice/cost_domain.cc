#include "lattice/cost_domain.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <map>
#include <mutex>

namespace mad {
namespace lattice {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

// ---------------------------------------------------------------------------
// CostDomain
// ---------------------------------------------------------------------------

Value CostDomain::JoinAll(const std::vector<Value>& values) const {
  Value acc = Bottom();
  for (const Value& v : values) acc = Join(acc, Normalize(v));
  return acc;
}

Value CostDomain::MeetAll(const std::vector<Value>& values) const {
  Value acc = Top();
  for (const Value& v : values) acc = Meet(acc, Normalize(v));
  return acc;
}

// ---------------------------------------------------------------------------
// NumericDomain
// ---------------------------------------------------------------------------

bool NumericDomain::Contains(const Value& v) const {
  if (!(v.is_numeric() || v.is_bool())) return false;
  double d = v.AsDouble();
  if (std::isnan(d)) return false;
  if (d < lo_ || d > hi_) return false;
  if (integral_ && std::isfinite(d) && d != std::floor(d)) return false;
  return true;
}

Value NumericDomain::Normalize(const Value& v) const {
  assert(v.is_numeric() || v.is_bool());
  return Value::Real(v.AsDouble());
}

bool NumericDomain::LessEq(const Value& a, const Value& b) const {
  double x = a.AsDouble();
  double y = b.AsDouble();
  return ascending_ ? x <= y : x >= y;
}

Value NumericDomain::Join(const Value& a, const Value& b) const {
  return LessEq(a, b) ? Normalize(b) : Normalize(a);
}

Value NumericDomain::Meet(const Value& a, const Value& b) const {
  return LessEq(a, b) ? Normalize(a) : Normalize(b);
}

// ---------------------------------------------------------------------------
// SetDomain
// ---------------------------------------------------------------------------

SetDomain::SetDomain(std::string name, bool ascending,
                     std::shared_ptr<const ValueSet> universe)
    : name_(std::move(name)),
      ascending_(ascending),
      universe_(std::move(universe)),
      empty_(std::make_shared<const ValueSet>()) {
  // The ⊇ ("intersection") variant needs a concrete bottom = universe.
  assert(ascending_ || universe_ != nullptr);
}

Value SetDomain::Bottom() const {
  return ascending_ ? Value::SetShared(empty_) : Value::SetShared(universe_);
}

Value SetDomain::Top() const {
  if (ascending_) {
    assert(universe_ != nullptr &&
           "Top() of an unbounded union lattice is not representable");
    return Value::SetShared(universe_);
  }
  return Value::SetShared(empty_);
}

bool SetDomain::Subset(const Value& a, const Value& b) {
  return std::includes(b.set_value().begin(), b.set_value().end(),
                       a.set_value().begin(), a.set_value().end());
}

bool SetDomain::LessEq(const Value& a, const Value& b) const {
  return ascending_ ? Subset(a, b) : Subset(b, a);
}

Value SetDomain::Union(const Value& a, const Value& b) {
  ValueSet out;
  out.reserve(a.set_value().size() + b.set_value().size());
  std::set_union(a.set_value().begin(), a.set_value().end(),
                 b.set_value().begin(), b.set_value().end(),
                 std::back_inserter(out));
  return Value::Set(std::move(out));
}

Value SetDomain::Intersect(const Value& a, const Value& b) {
  ValueSet out;
  std::set_intersection(a.set_value().begin(), a.set_value().end(),
                        b.set_value().begin(), b.set_value().end(),
                        std::back_inserter(out));
  return Value::Set(std::move(out));
}

Value SetDomain::Join(const Value& a, const Value& b) const {
  return ascending_ ? Union(a, b) : Intersect(a, b);
}

Value SetDomain::Meet(const Value& a, const Value& b) const {
  return ascending_ ? Intersect(a, b) : Union(a, b);
}

// ---------------------------------------------------------------------------
// DomainRegistry
// ---------------------------------------------------------------------------

struct DomainRegistry::Impl {
  mutable std::mutex mu;
  std::map<std::string, std::shared_ptr<const CostDomain>, std::less<>> domains;
};

DomainRegistry::Impl& DomainRegistry::impl() const {
  static Impl impl;
  return impl;
}

DomainRegistry::DomainRegistry() = default;

DomainRegistry& DomainRegistry::Global() {
  static DomainRegistry* registry = [] {
    auto* r = new DomainRegistry();
    // Pre-register every Figure-1 domain.
    r->Register(std::make_shared<NumericDomain>("max_real", -kInf, kInf,
                                                /*ascending=*/true));
    r->Register(std::make_shared<NumericDomain>("max_nonneg", 0.0, kInf,
                                                /*ascending=*/true));
    r->Register(std::make_shared<NumericDomain>("min_real", -kInf, kInf,
                                                /*ascending=*/false));
    r->Register(std::make_shared<NumericDomain>("sum_real", 0.0, kInf,
                                                /*ascending=*/true));
    r->Register(std::make_shared<NumericDomain>("bool_and", 0.0, 1.0,
                                                /*ascending=*/false,
                                                /*integral=*/true));
    r->Register(std::make_shared<NumericDomain>("bool_or", 0.0, 1.0,
                                                /*ascending=*/true,
                                                /*integral=*/true));
    r->Register(std::make_shared<NumericDomain>("product_pos", 1.0, kInf,
                                                /*ascending=*/true,
                                                /*integral=*/true));
    r->Register(std::make_shared<NumericDomain>("count_nat", 0.0, kInf,
                                                /*ascending=*/true,
                                                /*integral=*/true));
    r->Register(std::make_shared<SetDomain>("set_union", /*ascending=*/true));
    return r;
  }();
  return *registry;
}

void DomainRegistry::Register(std::shared_ptr<const CostDomain> domain) {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mu);
  i.domains[std::string(domain->name())] = std::move(domain);
}

const CostDomain* DomainRegistry::Find(std::string_view name) const {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mu);
  auto it = i.domains.find(name);
  return it == i.domains.end() ? nullptr : it->second.get();
}

std::vector<std::string> DomainRegistry::Names() const {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mu);
  std::vector<std::string> names;
  names.reserve(i.domains.size());
  for (const auto& [name, _] : i.domains) names.push_back(name);
  return names;
}

const CostDomain* MaxRealDomain() {
  return DomainRegistry::Global().Find("max_real");
}
const CostDomain* MaxNonNegDomain() {
  return DomainRegistry::Global().Find("max_nonneg");
}
const CostDomain* MinRealDomain() {
  return DomainRegistry::Global().Find("min_real");
}
const CostDomain* SumNonNegDomain() {
  return DomainRegistry::Global().Find("sum_real");
}
const CostDomain* BoolAndDomain() {
  return DomainRegistry::Global().Find("bool_and");
}
const CostDomain* BoolOrDomain() {
  return DomainRegistry::Global().Find("bool_or");
}
const CostDomain* ProductPosDomain() {
  return DomainRegistry::Global().Find("product_pos");
}
const CostDomain* CountNatDomain() {
  return DomainRegistry::Global().Find("count_nat");
}
const CostDomain* SetUnionDomain() {
  return DomainRegistry::Global().Find("set_union");
}

std::shared_ptr<const CostDomain> MakeSetIntersectionDomain(
    std::string name, ValueSet universe) {
  std::sort(universe.begin(), universe.end());
  universe.erase(std::unique(universe.begin(), universe.end()),
                 universe.end());
  auto domain = std::make_shared<SetDomain>(
      std::move(name), /*ascending=*/false,
      std::make_shared<const ValueSet>(std::move(universe)));
  DomainRegistry::Global().Register(domain);
  return domain;
}

}  // namespace lattice
}  // namespace mad
