#ifndef MAD_LATTICE_COST_DOMAIN_H_
#define MAD_LATTICE_COST_DOMAIN_H_

#include <cmath>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "datalog/value.h"
#include "util/status.h"

namespace mad {
namespace lattice {

using datalog::Value;
using datalog::ValueSet;

/// A complete lattice of cost values (Definition 2.1).
///
/// Every cost argument of a cost predicate is declared to range over one of
/// these. The semantic order ⊑ is *not* the numeric order in general: for
/// `min`-programs ⊑ is ≥ (Example 3.1 stresses this — "minimal models have
/// larger cost values"). Bottom() is the least element of ⊑ and is also the
/// default value of default-value cost predicates (Section 2.3.2).
class CostDomain {
 public:
  virtual ~CostDomain() = default;

  /// Registry name, e.g. "min_real" or "bool_or".
  virtual std::string_view name() const = 0;

  /// Least element of ⊑ (exists: the lattice is complete).
  virtual Value Bottom() const = 0;
  /// Greatest element of ⊑.
  virtual Value Top() const = 0;

  /// True iff `v` is a member of the carrier set.
  virtual bool Contains(const Value& v) const = 0;

  /// Canonicalizes a raw parsed/computed value into the domain's carrier
  /// representation (numeric domains normalize int -> double so that equal
  /// costs compare equal as map values).
  virtual Value Normalize(const Value& v) const { return v; }

  /// The partial order ⊑: returns true iff a ⊑ b.
  virtual bool LessEq(const Value& a, const Value& b) const = 0;

  /// Least upper bound (⊔) of two elements.
  virtual Value Join(const Value& a, const Value& b) const = 0;
  /// Greatest lower bound (⊓) of two elements.
  virtual Value Meet(const Value& a, const Value& b) const = 0;

  /// True for totally ordered domains (all numeric/boolean rows of Figure 1);
  /// false for the powerset lattices.
  virtual bool IsTotalOrder() const { return true; }

  /// True if every strictly increasing ⊑-chain from Bottom() is finite.
  /// Used by the evaluator to predict guaranteed termination (Section 6.2).
  virtual bool HasFiniteAscendingChains() const { return false; }

  bool Equal(const Value& a, const Value& b) const {
    return LessEq(a, b) && LessEq(b, a);
  }
  bool StrictlyLess(const Value& a, const Value& b) const {
    return LessEq(a, b) && !LessEq(b, a);
  }

  /// ⊔ of a whole multiset; returns Bottom() for the empty multiset.
  Value JoinAll(const std::vector<Value>& values) const;
  /// ⊓ of a whole multiset; returns Top() for the empty multiset.
  Value MeetAll(const std::vector<Value>& values) const;
};

/// A totally ordered numeric lattice over an interval of the extended reals.
///
/// `ascending` selects the direction of ⊑: ascending means ⊑ is numeric ≤
/// (bottom = lo), descending means ⊑ is numeric ≥ (bottom = hi). This one
/// class realizes Figure 1's real, integer and boolean rows.
class NumericDomain : public CostDomain {
 public:
  NumericDomain(std::string name, double lo, double hi, bool ascending,
                bool integral = false)
      : name_(std::move(name)),
        lo_(lo),
        hi_(hi),
        ascending_(ascending),
        integral_(integral) {}

  std::string_view name() const override { return name_; }
  Value Bottom() const override { return Value::Real(ascending_ ? lo_ : hi_); }
  Value Top() const override { return Value::Real(ascending_ ? hi_ : lo_); }
  bool Contains(const Value& v) const override;
  Value Normalize(const Value& v) const override;
  bool LessEq(const Value& a, const Value& b) const override;
  Value Join(const Value& a, const Value& b) const override;
  Value Meet(const Value& a, const Value& b) const override;
  bool HasFiniteAscendingChains() const override {
    // Bounded integral domains (booleans, bounded ints) have finite chains.
    return integral_ && std::isfinite(ascending_ ? hi_ : lo_);
  }

  double lo() const { return lo_; }
  double hi() const { return hi_; }
  bool ascending() const { return ascending_; }
  bool integral() const { return integral_; }

 private:
  std::string name_;
  double lo_;
  double hi_;
  bool ascending_;
  bool integral_;
};

/// Powerset lattice 2^S. `ascending` true means ⊑ is ⊆ (union row of
/// Figure 1, bottom = ∅); false means ⊑ is ⊇ (intersection row, bottom = S).
/// The ⊇ variant requires a finite universe so Bottom() is representable.
class SetDomain : public CostDomain {
 public:
  /// `universe` may be null for the ⊆ variant (Top() then unavailable).
  SetDomain(std::string name, bool ascending,
            std::shared_ptr<const ValueSet> universe = nullptr);

  std::string_view name() const override { return name_; }
  Value Bottom() const override;
  Value Top() const override;
  bool Contains(const Value& v) const override { return v.is_set(); }
  bool LessEq(const Value& a, const Value& b) const override;
  Value Join(const Value& a, const Value& b) const override;
  Value Meet(const Value& a, const Value& b) const override;
  bool IsTotalOrder() const override { return false; }
  bool HasFiniteAscendingChains() const override { return universe_ != nullptr; }

  bool ascending() const { return ascending_; }
  const std::shared_ptr<const ValueSet>& universe() const { return universe_; }

  /// Set-algebra helpers on normalized (sorted, unique) set values.
  static Value Union(const Value& a, const Value& b);
  static Value Intersect(const Value& a, const Value& b);
  static bool Subset(const Value& a, const Value& b);

 private:
  std::string name_;
  bool ascending_;
  std::shared_ptr<const ValueSet> universe_;
  std::shared_ptr<const ValueSet> empty_;
};

/// Name -> domain registry. The built-in Figure-1 domains are pre-registered;
/// programs may additionally register custom domains (e.g. an intersection
/// domain with a concrete universe) before parsing declarations.
class DomainRegistry {
 public:
  static DomainRegistry& Global();

  /// Registers `domain` under domain->name(); overwrites any existing entry
  /// with the same name (used by tests and by universe-specialized domains).
  void Register(std::shared_ptr<const CostDomain> domain);

  /// Returns nullptr if unknown.
  const CostDomain* Find(std::string_view name) const;

  std::vector<std::string> Names() const;

 private:
  DomainRegistry();
  struct Impl;
  Impl& impl() const;
};

/// Canonical built-in domains (also reachable through the registry).
const CostDomain* MaxRealDomain();      ///< R∪{±∞}, ⊑ = ≤, ⊥ = -∞   (row 1)
const CostDomain* MaxNonNegDomain();    ///< R*∪{∞}, ⊑ = ≤, ⊥ = 0    (row 2)
const CostDomain* MinRealDomain();      ///< R∪{±∞}, ⊑ = ≥, ⊥ = +∞   (row 3)
const CostDomain* SumNonNegDomain();    ///< R*∪{∞}, ⊑ = ≤, ⊥ = 0    (row 4)
const CostDomain* BoolAndDomain();      ///< B, ⊑ = ≥, ⊥ = 1          (row 5)
const CostDomain* BoolOrDomain();       ///< B, ⊑ = ≤, ⊥ = 0          (row 6)
const CostDomain* ProductPosDomain();   ///< N⁺∪{∞}, ⊑ = ≤, ⊥ = 1     (row 7)
const CostDomain* CountNatDomain();     ///< N∪{∞}, ⊑ = ≤, ⊥ = 0      (row 8)
const CostDomain* SetUnionDomain();     ///< 2^S, ⊑ = ⊆, ⊥ = ∅        (row 9)

/// Creates (and registers under `name`) an intersection lattice 2^S with the
/// given finite universe: ⊑ = ⊇, ⊥ = S (row 10).
std::shared_ptr<const CostDomain> MakeSetIntersectionDomain(
    std::string name, ValueSet universe);

}  // namespace lattice
}  // namespace mad

#endif  // MAD_LATTICE_COST_DOMAIN_H_
