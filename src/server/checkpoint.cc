#include "server/checkpoint.h"

#include <cstring>

#include "util/crc32c.h"
#include "util/string_util.h"

namespace mad {
namespace server {

using datalog::Tuple;
using datalog::Value;

namespace {

constexpr char kMagic[] = "MADCKPT1";  // 8 bytes, no terminator
constexpr size_t kMagicBytes = 8;
constexpr uint32_t kVersion = 1;

// --- little-endian primitives -------------------------------------------

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

void PutStr(std::string* out, std::string_view s) {
  PutU64(out, s.size());
  out->append(s);
}

/// Bounds-checked cursor over the payload; every Get fails cleanly on a
/// truncated or lying buffer instead of reading past the end (the CRC makes
/// this unlikely, but a decoder must not trust its input's lengths).
class Cursor {
 public:
  Cursor(const std::string& data, size_t off) : data_(data), off_(off) {}

  bool ok() const { return ok_; }
  size_t off() const { return off_; }
  bool done() const { return off_ == data_.size(); }

  uint32_t U32() {
    if (!Need(4)) return 0;
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<uint32_t>(
               static_cast<unsigned char>(data_[off_ + i]))
           << (8 * i);
    }
    off_ += 4;
    return v;
  }

  uint64_t U64() {
    if (!Need(8)) return 0;
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(
               static_cast<unsigned char>(data_[off_ + i]))
           << (8 * i);
    }
    off_ += 8;
    return v;
  }

  uint8_t U8() {
    if (!Need(1)) return 0;
    return static_cast<uint8_t>(data_[off_++]);
  }

  std::string Str() {
    uint64_t n = U64();
    if (!ok_ || !Need(n)) return {};
    std::string s = data_.substr(off_, n);
    off_ += n;
    return s;
  }

 private:
  bool Need(uint64_t n) {
    if (!ok_ || n > data_.size() - off_) {
      ok_ = false;
      return false;
    }
    return true;
  }

  const std::string& data_;
  size_t off_;
  bool ok_ = true;
};

// --- Value encoding ------------------------------------------------------

enum : uint8_t {
  kValNone = 0,
  kValSymbol = 1,
  kValInt = 2,
  kValDouble = 3,
  kValBool = 4,
  kValSet = 5,
};

void PutValue(std::string* out, const Value& v) {
  switch (v.kind()) {
    case Value::Kind::kNone:
      out->push_back(kValNone);
      return;
    case Value::Kind::kSymbol:
      out->push_back(kValSymbol);
      PutStr(out, v.symbol_name());
      return;
    case Value::Kind::kInt:
      out->push_back(kValInt);
      PutU64(out, static_cast<uint64_t>(v.int_value()));
      return;
    case Value::Kind::kDouble: {
      out->push_back(kValDouble);
      uint64_t bits = 0;
      double d = v.double_value();
      std::memcpy(&bits, &d, sizeof(bits));
      PutU64(out, bits);
      return;
    }
    case Value::Kind::kBool:
      out->push_back(kValBool);
      out->push_back(v.bool_value() ? 1 : 0);
      return;
    case Value::Kind::kSet: {
      out->push_back(kValSet);
      const datalog::ValueSet& set = v.set_value();
      PutU64(out, set.size());
      for (const Value& e : set) PutValue(out, e);
      return;
    }
  }
}

Value GetValue(Cursor* c, int depth = 0) {
  if (depth > 16) return Value();  // hostile nesting; Cursor goes !ok below
  switch (c->U8()) {
    case kValNone:
      return Value();
    case kValSymbol:
      return Value::Symbol(c->Str());
    case kValInt:
      return Value::Int(static_cast<int64_t>(c->U64()));
    case kValDouble: {
      uint64_t bits = c->U64();
      double d = 0;
      std::memcpy(&d, &bits, sizeof(d));
      return Value::Real(d);
    }
    case kValBool:
      return Value::Bool(c->U8() != 0);
    case kValSet: {
      uint64_t n = c->U64();
      datalog::ValueSet elems;
      for (uint64_t i = 0; i < n && c->ok(); ++i) {
        elems.push_back(GetValue(c, depth + 1));
      }
      return Value::Set(std::move(elems));
    }
    default:
      return Value();
  }
}

}  // namespace

std::string CheckpointFileName(int64_t epoch) {
  return StrPrintf("checkpoint-%010lld.ckpt", static_cast<long long>(epoch));
}

bool ParseCheckpointFileName(const std::string& name, int64_t* epoch) {
  constexpr size_t kPrefix = 11;  // "checkpoint-"
  if (name.size() != kPrefix + 10 + 5 || name.rfind("checkpoint-", 0) != 0 ||
      name.compare(name.size() - 5, 5, ".ckpt") != 0) {
    return false;
  }
  int64_t v = 0;
  for (size_t i = kPrefix; i < kPrefix + 10; ++i) {
    char ch = name[i];
    if (ch < '0' || ch > '9') return false;
    v = v * 10 + (ch - '0');
  }
  *epoch = v;
  return true;
}

void DumpRelations(const datalog::Database& db, CheckpointData* out) {
  for (const auto& [id, rel] : db.relations()) {
    (void)id;
    const datalog::PredicateInfo* pred = rel->pred();
    CheckpointData::RelationDump dump;
    dump.name = pred->name;
    dump.arity = pred->arity;
    dump.has_cost = pred->has_cost;
    dump.has_default = pred->has_default;
    if (pred->has_cost) dump.domain = std::string(pred->domain->name());
    dump.rows.reserve(rel->size());
    rel->ForEach([&](const Tuple& key, const Value& cost) {
      dump.rows.emplace_back(key, cost);
    });
    out->relations.push_back(std::move(dump));
  }
}

Status RestoreRelations(const CheckpointData& ckpt, datalog::Program* program,
                        datalog::Database* db) {
  for (const auto& dump : ckpt.relations) {
    const datalog::PredicateInfo* pred = program->FindPredicate(dump.name);
    if (pred == nullptr) {
      // Only implicitly-declared (cost-free) predicates can be absent from
      // the program text — ParseFacts creates exactly these on insert.
      if (dump.has_cost) {
        return Status::Internal(StrPrintf(
            "checkpoint relation '%s' has a cost argument but the program "
            "does not declare it",
            dump.name.c_str()));
      }
      MAD_ASSIGN_OR_RETURN(pred,
                           program->FindOrDeclare(dump.name, dump.arity));
    }
    if (pred->arity != dump.arity || pred->has_cost != dump.has_cost ||
        pred->has_default != dump.has_default ||
        (pred->has_cost &&
         std::string(pred->domain->name()) != dump.domain)) {
      return Status::Internal(StrPrintf(
          "checkpoint relation '%s' does not match the program's declaration"
          " (checkpoint from a different program?)",
          dump.name.c_str()));
    }
    datalog::Relation* rel = db->GetOrCreate(pred);
    for (const auto& [key, cost] : dump.rows) {
      if (static_cast<int>(key.size()) != pred->key_arity()) {
        return Status::Internal(StrPrintf(
            "checkpoint row arity mismatch in '%s'", dump.name.c_str()));
      }
      // Stored costs were normalized before serialization; merging into the
      // (⊑-smaller) working model is a lattice join, so restore lands on
      // exactly the checkpointed state.
      rel->Merge(key, cost);
    }
  }
  return Status::OK();
}

std::string EncodeCheckpoint(const CheckpointData& ckpt) {
  std::string payload;
  PutU64(&payload, static_cast<uint64_t>(ckpt.epoch));
  PutStr(&payload, ckpt.program_text);
  PutStr(&payload, ckpt.facts_text);
  PutStr(&payload, ckpt.completeness);
  PutStr(&payload, ckpt.certificate_summary);
  PutU64(&payload, ckpt.relations.size());
  for (const auto& dump : ckpt.relations) {
    PutStr(&payload, dump.name);
    PutU32(&payload, static_cast<uint32_t>(dump.arity));
    payload.push_back(dump.has_cost ? 1 : 0);
    payload.push_back(dump.has_default ? 1 : 0);
    PutStr(&payload, dump.domain);
    PutU64(&payload, dump.rows.size());
    for (const auto& [key, cost] : dump.rows) {
      PutU32(&payload, static_cast<uint32_t>(key.size()));
      for (const Value& v : key) PutValue(&payload, v);
      PutValue(&payload, cost);
    }
  }

  std::string file;
  file.append(kMagic, kMagicBytes);
  PutU32(&file, kVersion);
  PutU64(&file, payload.size());
  file.append(payload);
  PutU32(&file, util::MaskCrc(util::Crc32c(payload)));
  return file;
}

StatusOr<CheckpointData> DecodeCheckpoint(const std::string& bytes,
                                          const std::string& origin) {
  auto corrupt = [&origin](const char* why) {
    return Status::Internal(
        StrPrintf("%s: invalid checkpoint (%s)", origin.c_str(), why));
  };
  if (bytes.size() < kMagicBytes + 4 + 8 + 4 ||
      std::memcmp(bytes.data(), kMagic, kMagicBytes) != 0) {
    return corrupt("bad magic or truncated header");
  }
  Cursor header(bytes, kMagicBytes);
  const uint32_t version = header.U32();
  if (version != kVersion) return corrupt("unsupported version");
  const uint64_t payload_len = header.U64();
  const size_t payload_off = header.off();
  if (payload_len != bytes.size() - payload_off - 4) {
    return corrupt("length mismatch");
  }
  {
    Cursor tail(bytes, payload_off + payload_len);
    const uint32_t stored = tail.U32();
    const uint32_t got =
        util::Crc32c(bytes.data() + payload_off, payload_len);
    if (util::UnmaskCrc(stored) != got) return corrupt("CRC mismatch");
  }

  CheckpointData ckpt;
  Cursor c(bytes, payload_off);
  ckpt.epoch = static_cast<int64_t>(c.U64());
  ckpt.program_text = c.Str();
  ckpt.facts_text = c.Str();
  ckpt.completeness = c.Str();
  ckpt.certificate_summary = c.Str();
  const uint64_t nrel = c.U64();
  for (uint64_t r = 0; r < nrel && c.ok(); ++r) {
    CheckpointData::RelationDump dump;
    dump.name = c.Str();
    dump.arity = static_cast<int32_t>(c.U32());
    dump.has_cost = c.U8() != 0;
    dump.has_default = c.U8() != 0;
    dump.domain = c.Str();
    const uint64_t nrows = c.U64();
    for (uint64_t i = 0; i < nrows && c.ok(); ++i) {
      Tuple key;
      const uint32_t klen = c.U32();
      for (uint32_t k = 0; k < klen && c.ok(); ++k) {
        key.push_back(GetValue(&c));
      }
      Value cost = GetValue(&c);
      dump.rows.emplace_back(std::move(key), std::move(cost));
    }
    ckpt.relations.push_back(std::move(dump));
  }
  if (!c.ok()) return corrupt("truncated payload");
  return ckpt;
}

Status WriteCheckpoint(const std::string& dir, const CheckpointData& ckpt,
                       util::IoHooks* hooks) {
  return util::WriteFileAtomic(dir + "/" + CheckpointFileName(ckpt.epoch),
                               EncodeCheckpoint(ckpt), hooks);
}

StatusOr<CheckpointData> ReadCheckpoint(const std::string& path) {
  MAD_ASSIGN_OR_RETURN(std::string bytes, util::ReadFileToString(path));
  return DecodeCheckpoint(bytes, path);
}

}  // namespace server
}  // namespace mad
