#ifndef MAD_SERVER_CHECKPOINT_H_
#define MAD_SERVER_CHECKPOINT_H_

// Checkpoints: periodic durable images of the served least model, so
// recovery replays a short WAL suffix instead of the whole insert history.
//
// A checkpoint file `checkpoint-<epoch>.ckpt` carries everything needed to
// reconstruct (and cross-check) the serving state at that epoch:
//
//   * the program text as loaded (recovery refuses to replay a WAL written
//     by a different program — the least model is a function of both),
//   * the cumulative accepted insert history in `.mdl` fact syntax (this is
//     what makes recovery *certifiable*: from-scratch re-evaluation of
//     program + history must reproduce the materialized relations below,
//     byte-identical in Database::ToString — the same differential-oracle
//     discipline madcert applies to certificates),
//   * every materialized relation (keys + normalized lattice costs), the
//     fast path that skips re-running the fixpoint,
//   * epoch, completeness, and a per-component certificate summary.
//
// Atomicity: checkpoints are written to a temp file, fsync'd, renamed into
// place, and the directory fsync'd (util::WriteFileAtomic). A crash between
// write and rename leaves a `.tmp` that recovery ignores. The payload is
// CRC32C-framed; a checkpoint that fails validation is skipped in favor of
// an older one plus a longer WAL replay.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "datalog/ast.h"
#include "datalog/database.h"
#include "util/posix_file.h"
#include "util/status.h"

namespace mad {
namespace server {

struct CheckpointData {
  int64_t epoch = 0;
  std::string program_text;
  /// Concatenated accepted insert batches ('\n'-joined `.mdl` fact text).
  std::string facts_text;
  /// core::CompletenessName at checkpoint time (recovery refuses to
  /// checkpoint-restore an under-approximation as if it were the model).
  std::string completeness;
  /// Human-readable per-component certificate kinds, e.g.
  /// "c0:syntactically-admissible c1:semantically-monotonic".
  std::string certificate_summary;

  struct RelationDump {
    std::string name;
    int32_t arity = 0;
    bool has_cost = false;
    bool has_default = false;
    std::string domain;  ///< CostDomain registry name; empty iff !has_cost
    std::vector<std::pair<datalog::Tuple, datalog::Value>> rows;
  };
  std::vector<RelationDump> relations;
};

std::string CheckpointFileName(int64_t epoch);
bool ParseCheckpointFileName(const std::string& name, int64_t* epoch);

/// Captures `db` (a published snapshot — read-only access) into dump form.
void DumpRelations(const datalog::Database& db, CheckpointData* out);

/// Merges the checkpoint's relations into `db`, declaring implicitly-created
/// (cost-free) predicates on `program` as the insert parser would have.
/// Fails on any signature mismatch with an existing declaration — replaying
/// someone else's checkpoint must not silently corrupt the model.
Status RestoreRelations(const CheckpointData& ckpt, datalog::Program* program,
                        datalog::Database* db);

/// Binary encoding: magic + version + CRC32C-framed payload.
std::string EncodeCheckpoint(const CheckpointData& ckpt);
StatusOr<CheckpointData> DecodeCheckpoint(const std::string& bytes,
                                          const std::string& origin);

/// Crash-atomically writes `checkpoint-<epoch>.ckpt` into `dir`.
Status WriteCheckpoint(const std::string& dir, const CheckpointData& ckpt,
                       util::IoHooks* hooks);
/// Reads and validates one checkpoint file.
StatusOr<CheckpointData> ReadCheckpoint(const std::string& path);

}  // namespace server
}  // namespace mad

#endif  // MAD_SERVER_CHECKPOINT_H_
