#include "server/client.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <utility>

#include "server/wire.h"
#include "util/string_util.h"

namespace mad {
namespace server {

StatusOr<Client> Client::Connect(const std::string& host, int port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(StrPrintf("socket: %s", std::strerror(errno)));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument(
        StrPrintf("not an IPv4 address: '%s'", host.c_str()));
  }
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) {
    Status st =
        Status::Internal(StrPrintf("connect %s:%d: %s", host.c_str(), port,
                                   std::strerror(errno)));
    ::close(fd);
    return st;
  }
  Client c;
  c.fd_ = fd;
  return c;
}

Client::~Client() { Close(); }

Client::Client(Client&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Client::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

StatusOr<Json> Client::Call(const Json& request) {
  if (fd_ < 0) return Status::InvalidArgument("client is not connected");
  MAD_RETURN_IF_ERROR(WriteFrame(fd_, request.Dump()));
  std::string payload;
  MAD_ASSIGN_OR_RETURN(bool got, ReadFrame(fd_, &payload));
  if (!got) return Status::Internal("server closed before responding");
  std::optional<Json> response = ParseJson(payload);
  if (!response.has_value()) {
    return Status::Internal("response is not valid JSON");
  }
  return *std::move(response);
}

namespace {

Json VerbRequest(const char* verb) {
  Json j = Json::Object();
  j.Set("verb", Json::Str(verb));
  return j;
}

}  // namespace

StatusOr<Json> Client::Ping() { return Call(VerbRequest("ping")); }

StatusOr<Json> Client::Insert(const std::string& facts_text) {
  Json j = VerbRequest("insert");
  j.Set("facts", Json::Str(facts_text));
  return Call(j);
}

StatusOr<Json> Client::Dump() { return Call(VerbRequest("dump")); }

StatusOr<Json> Client::Stats() { return Call(VerbRequest("stats")); }

StatusOr<Json> Client::Shutdown() { return Call(VerbRequest("shutdown")); }

}  // namespace server
}  // namespace mad
