#include "server/client.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <thread>
#include <utility>

#include "server/wire.h"
#include "util/random.h"
#include "util/string_util.h"

namespace mad {
namespace server {

namespace {

/// Socket-level errno values that mean "the connection, not the request,
/// failed" — the server may be mid-restart or briefly overloaded, so a
/// fresh connection can succeed.
bool TransientErrno(int err) {
  return err == ECONNREFUSED || err == ECONNRESET || err == ECONNABORTED ||
         err == EPIPE || err == ETIMEDOUT || err == EHOSTUNREACH ||
         err == ENETUNREACH || err == EAGAIN;
}

std::chrono::milliseconds BackoffDelay(const RetryOptions& retry, int attempt,
                                       Random* rng) {
  double base = static_cast<double>(retry.initial_backoff.count());
  for (int i = 0; i < attempt; ++i) {
    base *= 2;
    if (base >= static_cast<double>(retry.max_backoff.count())) break;
  }
  base = std::min(base, static_cast<double>(retry.max_backoff.count()));
  const double lo = 1.0 - retry.jitter;
  const double hi = 1.0 + retry.jitter;
  double scaled = base * (retry.jitter > 0 ? rng->UniformReal(lo, hi) : 1.0);
  return std::chrono::milliseconds(
      std::max<int64_t>(0, static_cast<int64_t>(scaled)));
}

uint64_t RetrySeed(const RetryOptions& retry) {
  if (retry.seed != 0) return retry.seed;
  return static_cast<uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
}

}  // namespace

StatusOr<Client> Client::Connect(const std::string& host, int port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(StrPrintf("socket: %s", std::strerror(errno)));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument(
        StrPrintf("not an IPv4 address: '%s'", host.c_str()));
  }
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) {
    const int err = errno;
    const std::string msg = StrPrintf("connect %s:%d: %s", host.c_str(), port,
                                      std::strerror(err));
    ::close(fd);
    return TransientErrno(err) ? Status::Unavailable(msg)
                               : Status::Internal(msg);
  }
  Client c;
  c.fd_ = fd;
  c.host_ = host;
  c.port_ = port;
  return c;
}

StatusOr<Client> Client::ConnectWithRetry(const std::string& host, int port,
                                          const RetryOptions& retry) {
  Random rng(RetrySeed(retry));
  Status last;
  for (int attempt = 0; attempt < std::max(1, retry.max_attempts); ++attempt) {
    if (attempt > 0) {
      std::this_thread::sleep_for(BackoffDelay(retry, attempt - 1, &rng));
    }
    auto client = Connect(host, port);
    if (client.ok()) return client;
    if (client.status().code() != StatusCode::kUnavailable) return client;
    last = client.status();
  }
  return Status::Unavailable(StrPrintf(
      "still unreachable after %d attempts: %s",
      std::max(1, retry.max_attempts), last.message().c_str()));
}

Client::~Client() { Close(); }

Client::Client(Client&& other) noexcept
    : fd_(other.fd_), host_(std::move(other.host_)), port_(other.port_) {
  other.fd_ = -1;
}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    host_ = std::move(other.host_);
    port_ = other.port_;
    other.fd_ = -1;
  }
  return *this;
}

void Client::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

StatusOr<Json> Client::Call(const Json& request) {
  if (fd_ < 0) return Status::InvalidArgument("client is not connected");
  Status written = WriteFrame(fd_, request.Dump());
  if (!written.ok()) {
    // A failed write is always a connection problem (the bytes never made it
    // out); a fresh connection may succeed.
    return Status::Unavailable(written.message());
  }
  std::string payload;
  auto got = ReadFrame(fd_, &payload);
  if (!got.ok()) {
    // Distinguish the dead connection from a live peer speaking garbage:
    // framing violations are kInvalidArgument from the wire layer and must
    // not be retried (the server is broken, not briefly away).
    if (got.status().code() == StatusCode::kInvalidArgument) {
      return got.status();
    }
    return Status::Unavailable(got.status().message());
  }
  if (!*got) {
    return Status::Unavailable("server closed before responding");
  }
  std::optional<Json> response = ParseJson(payload);
  if (!response.has_value()) {
    return Status::Internal("response is not valid JSON");
  }
  return *std::move(response);
}

StatusOr<Json> Client::CallWithRetry(const Json& request,
                                     const RetryOptions& retry) {
  Random rng(RetrySeed(retry));
  Status last;
  for (int attempt = 0; attempt < std::max(1, retry.max_attempts); ++attempt) {
    if (attempt > 0) {
      std::this_thread::sleep_for(BackoffDelay(retry, attempt - 1, &rng));
      // Reconnect and resend. Sound because every verb is idempotent: the
      // server may have applied the previous send before dying mid-response,
      // but inserts are lattice joins (a ⊔ a = a), so the resend lands on
      // the same model.
      auto fresh = Connect(host_, port_);
      if (!fresh.ok()) {
        if (fresh.status().code() != StatusCode::kUnavailable) {
          return fresh.status();
        }
        last = fresh.status();
        continue;
      }
      *this = std::move(fresh).value();
    }
    auto response = Call(request);
    if (response.ok()) return response;
    if (response.status().code() != StatusCode::kUnavailable) return response;
    last = response.status();
    Close();
  }
  return Status::Unavailable(StrPrintf(
      "request failed after %d attempts: %s", std::max(1, retry.max_attempts),
      last.message().c_str()));
}

namespace {

Json VerbRequest(const char* verb) {
  Json j = Json::Object();
  j.Set("verb", Json::Str(verb));
  return j;
}

}  // namespace

StatusOr<Json> Client::Ping() { return Call(VerbRequest("ping")); }

StatusOr<Json> Client::Insert(const std::string& facts_text) {
  Json j = VerbRequest("insert");
  j.Set("facts", Json::Str(facts_text));
  return Call(j);
}

StatusOr<Json> Client::Dump() { return Call(VerbRequest("dump")); }

StatusOr<Json> Client::Stats() { return Call(VerbRequest("stats")); }

StatusOr<Json> Client::Sync(bool checkpoint) {
  Json j = VerbRequest("sync");
  if (checkpoint) j.Set("checkpoint", Json::Bool(true));
  return Call(j);
}

StatusOr<Json> Client::DumpAtLeast(int64_t min_epoch, int64_t wait_ms) {
  Json j = VerbRequest("dump");
  j.Set("min_epoch", Json::Int(min_epoch));
  if (wait_ms >= 0) j.Set("min_epoch_wait_ms", Json::Int(wait_ms));
  return Call(j);
}

StatusOr<Json> Client::Recover() { return Call(VerbRequest("recover")); }

StatusOr<Json> Client::Shutdown() { return Call(VerbRequest("shutdown")); }

StatusOr<Json> Client::ReplSubscribe(int64_t have_epoch, bool probe) {
  Json j = VerbRequest("repl_subscribe");
  j.Set("have_epoch", Json::Int(have_epoch));
  if (probe) j.Set("probe", Json::Bool(true));
  return Call(j);
}

StatusOr<Json> Client::ReplFrames(int64_t seq, int64_t offset,
                                  int64_t max_records, int64_t max_bytes,
                                  int64_t wait_ms) {
  Json j = VerbRequest("repl_frames");
  j.Set("seq", Json::Int(seq));
  j.Set("offset", Json::Int(offset));
  j.Set("max_records", Json::Int(max_records));
  j.Set("max_bytes", Json::Int(max_bytes));
  if (wait_ms > 0) j.Set("wait_ms", Json::Int(wait_ms));
  return Call(j);
}

}  // namespace server
}  // namespace mad
