#ifndef MAD_SERVER_CLIENT_H_
#define MAD_SERVER_CLIENT_H_

// Client side of the madd protocol: one blocking connection, synchronous
// request/response. This is all madc, the tests, and bench_server need; a
// caller that wants pipelining can open more clients — the server gives
// every connection its own thread anyway.
//
// Transient transport failures (connection refused while the server
// restarts, a peer reset mid-call) surface as kUnavailable; everything else
// — bad arguments, protocol violations, malformed responses — is
// non-retryable and fails fast. CallWithRetry layers capped exponential
// backoff with jitter on top, reconnecting and *resending* on kUnavailable:
// resending is safe here by construction, because every write verb is a
// lattice join and joins are idempotent (a ⊔ a = a) — the monotone
// semantics, not the transport, is what makes at-least-once delivery exact.

#include <chrono>
#include <memory>
#include <string>

#include "server/json.h"
#include "util/status.h"

namespace mad {
namespace server {

/// Backoff schedule for CallWithRetry / ConnectWithRetry. Attempt n sleeps
/// min(initial * 2^n, max), scaled by a uniform jitter in [1-jitter,
/// 1+jitter] so a thundering herd of clients decorrelates.
struct RetryOptions {
  int max_attempts = 5;
  std::chrono::milliseconds initial_backoff{50};
  std::chrono::milliseconds max_backoff{2000};
  double jitter = 0.2;
  /// RNG seed for the jitter; 0 derives one from the clock (fine for real
  /// clients, tests pass a fixed seed).
  uint64_t seed = 0;
};

class Client {
 public:
  static StatusOr<Client> Connect(const std::string& host, int port);

  /// Connect, retrying kUnavailable failures (connection refused, host
  /// briefly unreachable) per `retry`. Non-retryable errors return at once.
  static StatusOr<Client> ConnectWithRetry(const std::string& host, int port,
                                           const RetryOptions& retry);

  Client() = default;
  ~Client();
  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  bool connected() const { return fd_ >= 0; }

  /// Sends one request frame and reads the response frame. Transport or
  /// framing failures are an error Status — kUnavailable when the connection
  /// is the problem (retry may help), kInternal when the peer's bytes are
  /// malformed (retrying will not help). Application-level failures come
  /// back as a parsed response with ok:false, not as an error Status.
  StatusOr<Json> Call(const Json& request);

  /// Call, but on kUnavailable: reconnect to the original host:port and
  /// resend, with backoff per `retry`. Safe for every madd verb — inserts
  /// are idempotent lattice joins, reads are reads.
  StatusOr<Json> CallWithRetry(const Json& request, const RetryOptions& retry);

  /// Convenience wrappers over Call.
  StatusOr<Json> Ping();
  StatusOr<Json> Insert(const std::string& facts_text);
  StatusOr<Json> Dump();
  /// Dump, gated on a read-your-writes token: the server holds the request
  /// until its published epoch reaches `min_epoch` (an epoch returned by an
  /// insert acknowledgment) or `wait_ms` expires, then answers with
  /// kReplicaLagging instead of a stale snapshot. wait_ms < 0 keeps the
  /// server default.
  StatusOr<Json> DumpAtLeast(int64_t min_epoch, int64_t wait_ms = -1);
  StatusOr<Json> Stats();
  StatusOr<Json> Sync(bool checkpoint = false);
  StatusOr<Json> Recover();
  StatusOr<Json> Shutdown();
  /// Replication handshake (see ServerState::HandleReplSubscribe).
  StatusOr<Json> ReplSubscribe(int64_t have_epoch, bool probe = false);
  /// One log-shipping window from (seq, offset); zeros mean "oldest".
  StatusOr<Json> ReplFrames(int64_t seq, int64_t offset, int64_t max_records,
                            int64_t max_bytes, int64_t wait_ms = 0);

  void Close();

 private:
  int fd_ = -1;
  std::string host_;
  int port_ = 0;
};

}  // namespace server
}  // namespace mad

#endif  // MAD_SERVER_CLIENT_H_
