#ifndef MAD_SERVER_CLIENT_H_
#define MAD_SERVER_CLIENT_H_

// Client side of the madd protocol: one blocking connection, synchronous
// request/response. This is all madc, the tests, and bench_server need; a
// caller that wants pipelining can open more clients — the server gives
// every connection its own thread anyway.

#include <memory>
#include <string>

#include "server/json.h"
#include "util/status.h"

namespace mad {
namespace server {

class Client {
 public:
  static StatusOr<Client> Connect(const std::string& host, int port);

  Client() = default;
  ~Client();
  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  bool connected() const { return fd_ >= 0; }

  /// Sends one request frame and reads the response frame. Transport or
  /// framing failures are an error Status; application-level failures come
  /// back as a parsed response with ok:false.
  StatusOr<Json> Call(const Json& request);

  /// Convenience wrappers over Call.
  StatusOr<Json> Ping();
  StatusOr<Json> Insert(const std::string& facts_text);
  StatusOr<Json> Dump();
  StatusOr<Json> Stats();
  StatusOr<Json> Shutdown();

  void Close();

 private:
  int fd_ = -1;
};

}  // namespace server
}  // namespace mad

#endif  // MAD_SERVER_CLIENT_H_
