#include "server/json.h"

#include <cctype>
#include <cmath>

#include "util/string_util.h"

namespace mad {
namespace server {

const Json& Json::At(const std::string& key) const {
  static const Json missing;
  if (!is_object()) return missing;
  auto it = obj.find(key);
  return it == obj.end() ? missing : it->second;
}

int64_t Json::IntOr(const std::string& key, int64_t fallback) const {
  const Json& v = At(key);
  return v.is_number() ? v.AsInt() : fallback;
}

std::string Json::StrOr(const std::string& key,
                        const std::string& fallback) const {
  const Json& v = At(key);
  return v.is_string() ? v.str : fallback;
}

void AppendJsonString(std::string* out, std::string_view s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          *out += StrPrintf("\\u%04x", c);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

namespace {

void DumpTo(const Json& j, std::string* out) {
  switch (j.kind) {
    case Json::Kind::kNull:
      *out += "null";
      return;
    case Json::Kind::kBool:
      *out += j.boolean ? "true" : "false";
      return;
    case Json::Kind::kInt:
      *out += StrPrintf("%lld", static_cast<long long>(j.integer));
      return;
    case Json::Kind::kDouble:
      if (std::isfinite(j.number)) {
        *out += StrPrintf("%.17g", j.number);
      } else {
        // JSON has no infinity; the cost domains do (±∞ bounds). Encode as
        // strings, matching Value::ToString's "inf"/"-inf" spelling.
        AppendJsonString(out, j.number > 0 ? "inf" : "-inf");
      }
      return;
    case Json::Kind::kString:
      AppendJsonString(out, j.str);
      return;
    case Json::Kind::kArray: {
      out->push_back('[');
      bool first = true;
      for (const Json& e : j.arr) {
        if (!first) out->push_back(',');
        first = false;
        DumpTo(e, out);
      }
      out->push_back(']');
      return;
    }
    case Json::Kind::kObject: {
      out->push_back('{');
      bool first = true;
      for (const auto& [k, v] : j.obj) {
        if (!first) out->push_back(',');
        first = false;
        AppendJsonString(out, k);
        out->push_back(':');
        DumpTo(v, out);
      }
      out->push_back('}');
      return;
    }
  }
}

class Reader {
 public:
  explicit Reader(std::string_view text) : text_(text) {}

  std::optional<Json> Parse() {
    std::optional<Json> v = Value(0);
    Skip();
    if (!v.has_value() || pos_ != text_.size()) return std::nullopt;
    return v;
  }

 private:
  static constexpr int kMaxDepth = 64;

  void Skip() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Eat(char c) {
    Skip();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool EatWord(std::string_view w) {
    Skip();
    if (text_.compare(pos_, w.size(), w) == 0) {
      pos_ += w.size();
      return true;
    }
    return false;
  }

  std::optional<Json> Value(int depth) {
    if (depth > kMaxDepth) return std::nullopt;
    Skip();
    if (pos_ >= text_.size()) return std::nullopt;
    char c = text_[pos_];
    if (c == '{') return ObjectValue(depth);
    if (c == '[') return ArrayValue(depth);
    if (c == '"') return StringValue();
    if (EatWord("true")) return Json::Bool(true);
    if (EatWord("false")) return Json::Bool(false);
    if (EatWord("null")) return Json::Null();
    return NumberValue();
  }

  std::optional<Json> ObjectValue(int depth) {
    if (!Eat('{')) return std::nullopt;
    Json j = Json::Object();
    Skip();
    if (Eat('}')) return j;
    while (true) {
      std::optional<Json> key = StringValue();
      if (!key.has_value() || !Eat(':')) return std::nullopt;
      std::optional<Json> val = Value(depth + 1);
      if (!val.has_value()) return std::nullopt;
      j.obj[key->str] = std::move(*val);
      if (Eat(',')) continue;
      if (Eat('}')) return j;
      return std::nullopt;
    }
  }

  std::optional<Json> ArrayValue(int depth) {
    if (!Eat('[')) return std::nullopt;
    Json j = Json::Array();
    Skip();
    if (Eat(']')) return j;
    while (true) {
      std::optional<Json> val = Value(depth + 1);
      if (!val.has_value()) return std::nullopt;
      j.arr.push_back(std::move(*val));
      if (Eat(',')) continue;
      if (Eat(']')) return j;
      return std::nullopt;
    }
  }

  std::optional<Json> StringValue() {
    Skip();
    if (pos_ >= text_.size() || text_[pos_] != '"') return std::nullopt;
    ++pos_;
    Json j;
    j.kind = Json::Kind::kString;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c != '\\') {
        j.str += c;
        continue;
      }
      if (pos_ >= text_.size()) return std::nullopt;
      char esc = text_[pos_++];
      switch (esc) {
        case '"':
        case '\\':
        case '/':
          j.str += esc;
          break;
        case 'n':
          j.str += '\n';
          break;
        case 'r':
          j.str += '\r';
          break;
        case 't':
          j.str += '\t';
          break;
        case 'b':
          j.str += '\b';
          break;
        case 'f':
          j.str += '\f';
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return std::nullopt;
          int code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_ + i];
            int digit;
            if (h >= '0' && h <= '9') {
              digit = h - '0';
            } else if (h >= 'a' && h <= 'f') {
              digit = h - 'a' + 10;
            } else if (h >= 'A' && h <= 'F') {
              digit = h - 'A' + 10;
            } else {
              return std::nullopt;
            }
            code = code * 16 + digit;
          }
          pos_ += 4;
          // The emitter only \u-escapes control bytes; decode those and map
          // anything wider to '?' rather than growing a UTF-8 encoder.
          j.str += code < 0x80 ? static_cast<char>(code) : '?';
          break;
        }
        default:
          return std::nullopt;
      }
    }
    if (pos_ >= text_.size()) return std::nullopt;
    ++pos_;
    return j;
  }

  std::optional<Json> NumberValue() {
    Skip();
    size_t start = pos_;
    bool integral = true;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '-' || c == '+') {
        integral = false;
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) return std::nullopt;
    const std::string lexeme(text_.substr(start, pos_ - start));
    try {
      if (integral) {
        return Json::Int(std::stoll(lexeme));
      }
      return Json::Double(std::stod(lexeme));
    } catch (...) {
      return std::nullopt;
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

std::string Json::Dump() const {
  std::string out;
  DumpTo(*this, &out);
  return out;
}

std::optional<Json> ParseJson(std::string_view text) {
  return Reader(text).Parse();
}

}  // namespace server
}  // namespace mad
