#ifndef MAD_SERVER_JSON_H_
#define MAD_SERVER_JSON_H_

// A minimal JSON value with a recursive-descent parser and a deterministic
// emitter — the whole wire vocabulary of the madd protocol. Hand-rolled like
// the lint JSON/SARIF renderers: the project takes no JSON dependency, and
// tests decode server output with the *independent* tests/json_lite.h reader
// to keep this emitter honest.
//
// Unlike json_lite, numbers remember whether their lexeme was integral: the
// protocol maps JSON integers to datalog Value::Int and everything else
// numeric to Value::Real, so the distinction must survive a round trip.

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace mad {
namespace server {

struct Json {
  enum class Kind { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  int64_t integer = 0;
  double number = 0;
  std::string str;
  std::vector<Json> arr;
  std::map<std::string, Json> obj;  // sorted keys => deterministic output

  static Json Null() { return Json{}; }
  static Json Bool(bool b) {
    Json j;
    j.kind = Kind::kBool;
    j.boolean = b;
    return j;
  }
  static Json Int(int64_t i) {
    Json j;
    j.kind = Kind::kInt;
    j.integer = i;
    j.number = static_cast<double>(i);
    return j;
  }
  static Json Double(double d) {
    Json j;
    j.kind = Kind::kDouble;
    j.number = d;
    return j;
  }
  static Json Str(std::string s) {
    Json j;
    j.kind = Kind::kString;
    j.str = std::move(s);
    return j;
  }
  static Json Array() {
    Json j;
    j.kind = Kind::kArray;
    return j;
  }
  static Json Object() {
    Json j;
    j.kind = Kind::kObject;
    return j;
  }

  bool is_null() const { return kind == Kind::kNull; }
  bool is_bool() const { return kind == Kind::kBool; }
  bool is_int() const { return kind == Kind::kInt; }
  bool is_number() const { return kind == Kind::kInt || kind == Kind::kDouble; }
  bool is_string() const { return kind == Kind::kString; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_object() const { return kind == Kind::kObject; }

  /// Numeric payload regardless of int/double representation.
  double AsDouble() const {
    return kind == Kind::kInt ? static_cast<double>(integer) : number;
  }
  int64_t AsInt() const {
    return kind == Kind::kInt ? integer : static_cast<int64_t>(number);
  }

  bool Has(const std::string& key) const {
    return is_object() && obj.count(key) > 0;
  }
  /// Member access; a shared null value when absent (or not an object).
  const Json& At(const std::string& key) const;
  /// Convenience accessors with defaults, for optional request fields.
  int64_t IntOr(const std::string& key, int64_t fallback) const;
  std::string StrOr(const std::string& key, const std::string& fallback) const;

  Json& Set(const std::string& key, Json value) {
    kind = Kind::kObject;
    obj[key] = std::move(value);
    return *this;
  }
  Json& Push(Json value) {
    kind = Kind::kArray;
    arr.push_back(std::move(value));
    return *this;
  }

  /// Compact single-line serialization (objects keyed in sorted order, so
  /// output is deterministic — tests golden-match frames).
  std::string Dump() const;
};

/// Appends a JSON string literal (quotes + escapes) to `out`.
void AppendJsonString(std::string* out, std::string_view s);

/// Parses one JSON document; std::nullopt on any syntax error or trailing
/// garbage. Depth-limited so hostile payloads cannot blow the stack.
std::optional<Json> ParseJson(std::string_view text);

}  // namespace server
}  // namespace mad

#endif  // MAD_SERVER_JSON_H_
