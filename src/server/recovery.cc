#include "server/recovery.h"

#include <algorithm>

#include "server/replication/wal_cursor.h"
#include "util/string_util.h"

namespace mad {
namespace server {

StatusOr<RecoveryPlan> PlanRecovery(const std::string& dir) {
  MAD_RETURN_IF_ERROR(util::EnsureDir(dir));
  MAD_ASSIGN_OR_RETURN(std::vector<std::string> names, util::ListDir(dir));

  RecoveryPlan plan;
  std::vector<int64_t> checkpoint_epochs;
  for (const std::string& name : names) {
    int64_t epoch = 0;
    if (ParseCheckpointFileName(name, &epoch)) {
      checkpoint_epochs.push_back(epoch);
    } else if (name.size() > 4 &&
               name.compare(name.size() - 4, 4, ".tmp") == 0) {
      // Crash between checkpoint-write and rename: the temp never became a
      // checkpoint, so it is garbage by the atomicity protocol.
      (void)util::RemoveFile(dir + "/" + name);
    }
    // Anything else in the directory is left alone.
  }

  // Newest checkpoint that validates wins; invalid ones are skipped in
  // favor of older ones (longer replay, same least model).
  std::sort(checkpoint_epochs.rbegin(), checkpoint_epochs.rend());
  for (int64_t epoch : checkpoint_epochs) {
    auto ckpt = ReadCheckpoint(dir + "/" + CheckpointFileName(epoch));
    if (ckpt.ok()) {
      plan.checkpoint = std::move(ckpt).value();
      break;
    }
    ++plan.invalid_checkpoints;
  }

  const int64_t base_epoch =
      plan.checkpoint.has_value() ? plan.checkpoint->epoch : 0;

  // The shared cursor walks segments in sequence order with the same
  // torn-tail / interior-corruption discipline replica streaming uses.
  MAD_ASSIGN_OR_RETURN(WalCursor cursor, WalCursor::Open(dir));
  MAD_ASSIGN_OR_RETURN(WalScan scan, cursor.Scan(WalPosition{}, 0, 0));
  plan.segments_scanned = scan.segments_scanned;
  plan.truncated_tail_records = scan.truncated_tail_records;
  plan.next_segment_seq = std::max<uint64_t>(1, scan.max_seq_seen + 1);

  ReplaySelection sel = SelectReplayRecords(std::move(scan.records), base_epoch);
  plan.replay = std::move(sel.replay);
  plan.skipped_aborted_batches = sel.skipped_aborted_batches;
  return plan;
}

Status PruneDataDir(const std::string& dir, uint64_t keep_seq,
                    int64_t keep_epoch) {
  MAD_ASSIGN_OR_RETURN(std::vector<std::string> names, util::ListDir(dir));
  Status first_error;
  for (const std::string& name : names) {
    int64_t epoch = 0;
    uint64_t seq = 0;
    bool drop = false;
    if (ParseCheckpointFileName(name, &epoch)) {
      drop = epoch != keep_epoch;
    } else if (ParseWalSegmentName(name, &seq)) {
      drop = seq < keep_seq;
    }
    if (!drop) continue;
    Status st = util::RemoveFile(dir + "/" + name);
    if (!st.ok() && first_error.ok()) first_error = st;
  }
  return first_error;
}

}  // namespace server
}  // namespace mad
