#include "server/recovery.h"

#include <algorithm>

#include "util/string_util.h"

namespace mad {
namespace server {

StatusOr<RecoveryPlan> PlanRecovery(const std::string& dir) {
  MAD_RETURN_IF_ERROR(util::EnsureDir(dir));
  MAD_ASSIGN_OR_RETURN(std::vector<std::string> names, util::ListDir(dir));

  RecoveryPlan plan;
  std::vector<int64_t> checkpoint_epochs;
  std::vector<uint64_t> segment_seqs;
  for (const std::string& name : names) {
    int64_t epoch = 0;
    uint64_t seq = 0;
    if (ParseCheckpointFileName(name, &epoch)) {
      checkpoint_epochs.push_back(epoch);
    } else if (ParseWalSegmentName(name, &seq)) {
      segment_seqs.push_back(seq);
    } else if (name.size() > 4 &&
               name.compare(name.size() - 4, 4, ".tmp") == 0) {
      // Crash between checkpoint-write and rename: the temp never became a
      // checkpoint, so it is garbage by the atomicity protocol.
      (void)util::RemoveFile(dir + "/" + name);
    }
    // Anything else in the directory is left alone.
  }

  // Newest checkpoint that validates wins; invalid ones are skipped in
  // favor of older ones (longer replay, same least model).
  std::sort(checkpoint_epochs.rbegin(), checkpoint_epochs.rend());
  for (int64_t epoch : checkpoint_epochs) {
    auto ckpt = ReadCheckpoint(dir + "/" + CheckpointFileName(epoch));
    if (ckpt.ok()) {
      plan.checkpoint = std::move(ckpt).value();
      break;
    }
    ++plan.invalid_checkpoints;
  }

  const int64_t base_epoch =
      plan.checkpoint.has_value() ? plan.checkpoint->epoch : 0;

  // Collect records across segments in sequence order, then filter.
  std::sort(segment_seqs.begin(), segment_seqs.end());
  std::vector<WalRecord> records;
  for (uint64_t seq : segment_seqs) {
    MAD_ASSIGN_OR_RETURN(
        WalReadResult one,
        ReadWalSegment(dir + "/" + WalSegmentName(seq)));
    ++plan.segments_scanned;
    if (one.truncated_tail) ++plan.truncated_tail_records;
    for (WalRecord& rec : one.records) records.push_back(std::move(rec));
    plan.next_segment_seq = std::max(plan.next_segment_seq, seq + 1);
  }

  for (size_t i = 0; i < records.size(); ++i) {
    WalRecord& rec = records[i];
    if (rec.type == WalRecordType::kAbort) continue;  // pair consumed below
    if (rec.epoch <= base_epoch) continue;  // covered by the checkpoint
    // An insert immediately followed by its abort marker failed mid-merge
    // and was never acknowledged: skip the pair. (The single-writer lane
    // guarantees the abort, if written at all, is the very next record.)
    if (i + 1 < records.size() &&
        records[i + 1].type == WalRecordType::kAbort &&
        records[i + 1].epoch == rec.epoch) {
      ++plan.skipped_aborted_batches;
      continue;
    }
    plan.replay.push_back(std::move(rec));
  }
  return plan;
}

Status PruneDataDir(const std::string& dir, uint64_t keep_seq,
                    int64_t keep_epoch) {
  MAD_ASSIGN_OR_RETURN(std::vector<std::string> names, util::ListDir(dir));
  Status first_error;
  for (const std::string& name : names) {
    int64_t epoch = 0;
    uint64_t seq = 0;
    bool drop = false;
    if (ParseCheckpointFileName(name, &epoch)) {
      drop = epoch != keep_epoch;
    } else if (ParseWalSegmentName(name, &seq)) {
      drop = seq < keep_seq;
    }
    if (!drop) continue;
    Status st = util::RemoveFile(dir + "/" + name);
    if (!st.ok() && first_error.ok()) first_error = st;
  }
  return first_error;
}

}  // namespace server
}  // namespace mad
