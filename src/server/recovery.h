#ifndef MAD_SERVER_RECOVERY_H_
#define MAD_SERVER_RECOVERY_H_

// Startup-time crash recovery: scan the data directory, load the newest
// *valid* checkpoint, and plan the WAL replay past it. The replay itself
// (ParseFacts + Engine::Update per batch) runs in ServerState::Load, which
// owns the program and engine; this module is the pure filesystem/log side
// so the fault-injection tests can drive it without a server.
//
// Invariants the scan enforces:
//   * `.tmp` files (a crash between checkpoint-write and rename) are
//     ignored and deleted.
//   * A checkpoint that fails CRC/decode is skipped with a note; an older
//     checkpoint plus a longer replay takes over. Only if *no* checkpoint
//     validates does recovery start from epoch 0.
//   * WAL segments replay in sequence order. A torn tail record in any
//     segment is truncated (the expected crash signature); corruption in the
//     middle of a segment hard-fails the recovery — silently skipping
//     interior history would violate the prefix-replay soundness argument.
//   * Records at or below the checkpoint epoch (from segments the pruner
//     did not get to) are dropped; an insert immediately followed by its
//     abort marker is skipped as a pair.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "server/checkpoint.h"
#include "server/wal.h"
#include "util/posix_file.h"
#include "util/status.h"

namespace mad {
namespace server {

/// Durability knobs threaded through ServerState::LoadOptions. An empty
/// `data_dir` disables the subsystem entirely (the pre-durability loopback
/// behaviour, used by most unit tests).
struct DurabilityOptions {
  std::string data_dir;
  FsyncPolicy fsync = FsyncPolicy::kAlways;
  /// Checkpoint after this many epochs since the last one (0 = never by
  /// epoch count).
  int64_t checkpoint_every_epochs = 256;
  /// ... or once the WAL grows past this many bytes since the last
  /// checkpoint (0 = never by size).
  int64_t checkpoint_every_bytes = 16ll << 20;
  /// After recovery, re-evaluate program + full insert history from scratch
  /// and require Database::ToString() equality with the restored state —
  /// the differential-oracle certification of the prefix-replay argument.
  /// Costs one extra evaluation at startup.
  bool verify_recovery = true;
  /// Fault-injection seam; null uses pass-through hooks.
  util::IoHooks* hooks = nullptr;
};

/// Everything recovery learned from the data directory.
struct RecoveryPlan {
  /// Newest checkpoint that validated, if any.
  std::optional<CheckpointData> checkpoint;
  /// Insert records to replay, in order, already filtered: epochs above the
  /// checkpoint only, abort-marked batches removed.
  std::vector<WalRecord> replay;
  /// Sequence number the writer should use for its fresh segment (one past
  /// every segment seen — recovery never appends to an old segment).
  uint64_t next_segment_seq = 1;
  /// Diagnostics for stats/logs.
  int64_t segments_scanned = 0;
  int64_t truncated_tail_records = 0;
  int64_t skipped_aborted_batches = 0;
  int64_t invalid_checkpoints = 0;
};

/// Scans `dir` (creating it if absent) and builds the replay plan.
StatusOr<RecoveryPlan> PlanRecovery(const std::string& dir);

/// Deletes WAL segments strictly below `keep_seq` and all checkpoints other
/// than `keep_epoch` (called after a successful checkpoint+rotation; best
/// effort — an undeletable file is reported but must not fail the writer).
Status PruneDataDir(const std::string& dir, uint64_t keep_seq,
                    int64_t keep_epoch);

}  // namespace server
}  // namespace mad

#endif  // MAD_SERVER_RECOVERY_H_
