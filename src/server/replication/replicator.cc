#include "server/replication/replicator.h"

#include <algorithm>
#include <random>

#include "server/replication/wal_cursor.h"
#include "server/wal.h"
#include "util/crc32c.h"
#include "util/string_util.h"

namespace mad {
namespace server {

namespace {

bool ResponseOk(const Json& resp) {
  const Json& ok = resp.At("ok");
  return ok.is_bool() && ok.boolean;
}

/// Lifts an ok:false response back into a Status, preserving the two codes
/// the session loop dispatches on.
Status ResponseError(const std::string& verb, const Json& resp) {
  const Json& err = resp.At("error");
  const std::string code = err.StrOr("code", "");
  const std::string msg = err.StrOr("message", "unknown error");
  if (code == "NotPrimary") return Status::NotPrimary(msg);
  if (code == "InvalidArgument") return Status::InvalidArgument(msg);
  return Status::Internal(
      StrPrintf("primary rejected %s: %s: %s", verb.c_str(), code.c_str(),
                msg.c_str()));
}

}  // namespace

StatusOr<std::string> Replicator::FetchProgram(const std::string& host,
                                               int port,
                                               const RetryOptions& retry) {
  MAD_ASSIGN_OR_RETURN(Client client,
                       Client::ConnectWithRetry(host, port, retry));
  Json req = Json::Object();
  req.Set("verb", Json::Str("repl_subscribe"));
  req.Set("probe", Json::Bool(true));
  MAD_ASSIGN_OR_RETURN(Json resp, client.CallWithRetry(req, retry));
  if (!ResponseOk(resp)) return ResponseError("repl_subscribe", resp);
  const Json& program = resp.At("program");
  if (!program.is_string()) {
    return Status::Internal(
        "malformed repl_subscribe response: missing program text");
  }
  return program.str;
}

Replicator::Replicator(ServerState* state, Options options)
    : state_(state), opts_(std::move(options)) {
  host_ = opts_.primary_host;
  port_ = opts_.primary_port;
}

Replicator::~Replicator() { Stop(); }

void Replicator::Start() {
  if (thread_.joinable()) return;
  stop_.store(false, std::memory_order_release);
  thread_ = std::thread([this] { Run(); });
}

void Replicator::Stop() {
  stop_.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_cv_.notify_all();
  }
  if (thread_.joinable()) thread_.join();
}

void Replicator::SetEndpoint(const std::string& host, int port) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    host_ = host;
    port_ = port;
  }
  // Drop the live connection so the next session dials the new endpoint.
  drop_.store(true, std::memory_order_release);
}

void Replicator::InjectDisconnect() {
  drop_.store(true, std::memory_order_release);
}

void Replicator::PushProgressLocked() { state_->ReportReplication(progress_); }

bool Replicator::SleepFor(std::chrono::milliseconds delay) {
  std::unique_lock<std::mutex> lk(mu_);
  stop_cv_.wait_for(lk, delay,
                    [&] { return stop_.load(std::memory_order_acquire); });
  return !stop_.load(std::memory_order_acquire);
}

void Replicator::Run() {
  std::mt19937_64 rng(opts_.seed != 0
                          ? opts_.seed
                          : static_cast<uint64_t>(
                                std::chrono::steady_clock::now()
                                    .time_since_epoch()
                                    .count()));
  std::uniform_real_distribution<double> jitter(0.8, 1.2);
  int attempt = 0;
  while (!stop_.load(std::memory_order_acquire)) {
    Status session = Session();
    if (stop_.load(std::memory_order_acquire)) break;

    bool had_connected = false;
    {
      std::lock_guard<std::mutex> lk(mu_);
      had_connected = progress_.connected;
      progress_.connected = false;
      if (!session.ok()) progress_.last_error = session.ToString();
      if (broken_.load(std::memory_order_acquire)) progress_.broken = true;
      ++progress_.reconnects;
      PushProgressLocked();
    }
    // Terminal: wrong program or a failed apply. The pump stops; the
    // replica keeps serving its last sound snapshot (stats say why).
    if (broken_.load(std::memory_order_acquire)) break;

    // Capped exponential backoff with jitter; a session that actually
    // connected counts as progress and resets the schedule.
    if (had_connected) attempt = 0;
    const auto base = std::min<std::chrono::milliseconds>(
        opts_.initial_backoff * (int64_t{1} << std::min(attempt, 6)),
        opts_.max_backoff);
    const auto delay = std::chrono::milliseconds(std::max<int64_t>(
        1, static_cast<int64_t>(static_cast<double>(base.count()) *
                                jitter(rng))));
    ++attempt;
    if (!SleepFor(delay)) break;
  }
}

Status Replicator::Session() {
  std::string host;
  int port = 0;
  {
    std::lock_guard<std::mutex> lk(mu_);
    // Consume the drop flag *before* reading the endpoint, in the same
    // critical section: a concurrent SetEndpoint then either lands its new
    // endpoint before the read, or sets drop_ afterwards and the stream
    // loop tears this session down. Clearing after the read could erase a
    // retarget whose endpoint this session never saw, leaving the pump on
    // the stale primary until the next transport error.
    drop_.store(false, std::memory_order_release);
    host = host_;
    port = port_;
  }
  MAD_ASSIGN_OR_RETURN(Client client, Client::Connect(host, port));

  const uint32_t local_crc = util::Crc32c(opts_.program_text);

  while (!stop_.load(std::memory_order_acquire)) {
    // --- subscribe: program check, maybe bootstrap, stream position -------
    Json sub = Json::Object();
    sub.Set("verb", Json::Str("repl_subscribe"));
    sub.Set("have_epoch", Json::Int(state_->epoch()));
    MAD_ASSIGN_OR_RETURN(Json resp, client.Call(sub));
    if (!ResponseOk(resp)) {
      Status err = ResponseError("repl_subscribe", resp);
      // Pointed at a replica: follow its redirect to the primary, then let
      // the outer loop reconnect there.
      const Json& redirect = resp.At("redirect");
      if (err.code() == StatusCode::kNotPrimary && redirect.is_object()) {
        SetEndpoint(redirect.StrOr("host", host),
                    static_cast<int>(redirect.IntOr("port", port)));
        return Status::Unavailable("following redirect to the primary");
      }
      return err;
    }
    if (static_cast<uint32_t>(resp.IntOr("program_crc", 0)) != local_crc) {
      // The least model is a function of program AND history; applying a
      // different program's log would serve wrong answers forever.
      broken_.store(true, std::memory_order_release);
      return Status::InvalidArgument(
          "primary serves a different program; refusing to replicate "
          "(restart the replica to re-fetch)");
    }
    {
      std::lock_guard<std::mutex> lk(mu_);
      progress_.connected = true;
      progress_.primary_epoch =
          std::max(progress_.primary_epoch, resp.IntOr("epoch", 0));
      PushProgressLocked();
    }
    const Json& bootstrap = resp.At("bootstrap");
    if (bootstrap.is_object()) {
      Status applied = state_->ApplyBootstrap(bootstrap.IntOr("epoch", 0),
                                              bootstrap.At("facts").str);
      if (!applied.ok()) {
        broken_.store(true, std::memory_order_release);
        return applied;
      }
      std::lock_guard<std::mutex> lk(mu_);
      ++progress_.bootstraps;
      PushProgressLocked();
    }
    int64_t seq = resp.IntOr("seq", 0);
    int64_t offset = resp.IntOr("offset", 0);

    // --- stream frames until pruned (re-subscribe) or torn (reconnect) ----
    bool resubscribe = false;
    while (!stop_.load(std::memory_order_acquire)) {
      if (drop_.load(std::memory_order_acquire)) {
        drop_.store(false, std::memory_order_release);
        return Status::Unavailable("connection dropped (injected or retargeted)");
      }
      Json req = Json::Object();
      req.Set("verb", Json::Str("repl_frames"));
      req.Set("seq", Json::Int(seq));
      req.Set("offset", Json::Int(offset));
      req.Set("max_records", Json::Int(opts_.max_records));
      req.Set("max_bytes", Json::Int(opts_.max_bytes));
      req.Set("wait_ms", Json::Int(opts_.poll_wait_ms));
      MAD_ASSIGN_OR_RETURN(Json frame, client.Call(req));
      if (!ResponseOk(frame)) return ResponseError("repl_frames", frame);

      const Json& pruned = frame.At("position_pruned");
      if (pruned.is_bool() && pruned.boolean) {
        // Our segment was checkpointed away; ask the primary where to go
        // (typically: take a bootstrap, restart from the oldest segment).
        resubscribe = true;
        break;
      }

      int64_t applied_here = 0;
      for (const Json& r : frame.At("records").arr) {
        WalRecord rec;
        rec.type = WalRecordType::kInsert;
        rec.epoch = r.IntOr("epoch", 0);
        rec.facts_text = r.At("facts").str;
        // End-to-end integrity: re-derive the payload CRC the primary read
        // off its disk. A mismatch means the bytes were damaged somewhere
        // between the primary's WAL and here — drop the connection and
        // re-fetch rather than apply a corrupt batch.
        if (WalPayloadCrc(rec) != static_cast<uint32_t>(r.IntOr("crc", 0))) {
          std::lock_guard<std::mutex> lk(mu_);
          ++progress_.crc_failures;
          PushProgressLocked();
          return Status::Internal(StrPrintf(
              "shipped record for epoch %lld failed CRC re-verification",
              static_cast<long long>(rec.epoch)));
        }
        Status applied = state_->ApplyReplicated(rec.epoch, rec.facts_text);
        if (!applied.ok()) {
          broken_.store(true, std::memory_order_release);
          return applied;
        }
        ++applied_here;
      }
      seq = frame.IntOr("seq", seq);
      offset = frame.IntOr("offset", offset);
      {
        std::lock_guard<std::mutex> lk(mu_);
        ++progress_.frames;
        progress_.records_applied += applied_here;
        progress_.primary_epoch =
            std::max(progress_.primary_epoch, frame.IntOr("epoch", 0));
        PushProgressLocked();
      }
    }
    if (!resubscribe) break;
  }
  return Status::OK();  // stop requested
}

}  // namespace server
}  // namespace mad
