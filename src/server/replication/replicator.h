#ifndef MAD_SERVER_REPLICATION_REPLICATOR_H_
#define MAD_SERVER_REPLICATION_REPLICATOR_H_

// The replica-side pump: a background thread that subscribes to a primary,
// pulls its WAL over the wire protocol (repl_subscribe / repl_frames), and
// applies each acknowledged batch through ServerState's writer lane.
//
// Why this is allowed to be simple (DESIGN.md "Replication"): every shipped
// record is a lattice join, and joins commute and are idempotent. So the
// pump may re-send after a torn connection, re-apply after a restart, and
// even re-play the primary's whole history after a prune-forced bootstrap —
// the replica's model is always the least model of some prefix of the
// primary's insert stream, and it only ever moves up in ⊑. The protocol
// therefore needs no acknowledgment tracking, no exactly-once machinery,
// and no session state beyond a (segment, offset) resume position.
//
// Failure handling: the loop never gives up on transport errors — it
// reconnects with capped exponential backoff and re-subscribes (the primary
// decides whether the WAL still covers the replica's epoch or a bootstrap
// is needed). Only two conditions are terminal: the primary serves a
// different program (the least model is a function of program AND history,
// so following it would be wrong), and a local apply failure (the working
// set may be under-closed). Both mark the replica `broken` in stats; reads
// keep serving the last sound snapshot.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>

#include "server/client.h"
#include "server/state.h"

namespace mad {
namespace server {

class Replicator {
 public:
  struct Options {
    std::string primary_host;
    int primary_port = 0;
    /// The program text the replica serves; sessions verify the primary
    /// still runs the same program (by CRC) before applying anything.
    std::string program_text;
    /// Per-frame window sent to repl_frames.
    int64_t max_records = 256;
    int64_t max_bytes = 4 << 20;
    /// Server-side long-poll budget per frame request. Also bounds how long
    /// Stop() can block behind an idle poll.
    int64_t poll_wait_ms = 500;
    /// Reconnect backoff (capped exponential with jitter).
    std::chrono::milliseconds initial_backoff{50};
    std::chrono::milliseconds max_backoff{2000};
    /// Jitter seed; 0 derives one from the clock (tests pin it).
    uint64_t seed = 0;
  };

  /// One probe round trip fetching the primary's program text, so
  /// `madd --replica-of` needs no local .mdl file. Fails fast on an
  /// endpoint that is not a durable primary.
  static StatusOr<std::string> FetchProgram(const std::string& host, int port,
                                            const RetryOptions& retry);

  /// `state` must outlive the Replicator and have been loaded in replica
  /// mode (ReplicaOptions::enabled).
  Replicator(ServerState* state, Options options);
  ~Replicator();

  void Start();
  /// Idempotent; joins the pump thread.
  void Stop();

  /// Retargets the primary endpoint (e.g. after a primary restart on a new
  /// port) and drops the current connection so the loop re-subscribes.
  void SetEndpoint(const std::string& host, int port);
  /// Test hook: tears the current connection as if the peer vanished,
  /// forcing a reconnect + re-subscribe cycle.
  void InjectDisconnect();

  /// Unrecoverable (program mismatch or apply failure): the pump has
  /// stopped; the replica keeps serving its last sound snapshot.
  bool broken() const { return broken_.load(std::memory_order_acquire); }

 private:
  void Run();
  /// One connect → subscribe → stream session. Returns on any error (the
  /// caller reconnects) or when stop/drop is requested.
  Status Session();
  /// Pushes the progress mirror into ServerState for the stats verb.
  /// Requires mu_.
  void PushProgressLocked();
  /// Interruptible sleep; returns false if stop was requested meanwhile.
  bool SleepFor(std::chrono::milliseconds delay);

  ServerState* state_;
  Options opts_;
  std::thread thread_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> drop_{false};
  std::atomic<bool> broken_{false};

  mutable std::mutex mu_;  ///< endpoint, progress mirror, stop_cv_
  std::condition_variable stop_cv_;
  std::string host_;
  int port_ = 0;
  ServerState::ReplicationProgress progress_;
};

}  // namespace server
}  // namespace mad

#endif  // MAD_SERVER_REPLICATION_REPLICATOR_H_
