#include "server/replication/wal_cursor.h"

#include <algorithm>

#include "util/posix_file.h"
#include "util/string_util.h"

namespace mad {
namespace server {

StatusOr<WalCursor> WalCursor::Open(const std::string& dir) {
  MAD_ASSIGN_OR_RETURN(std::vector<std::string> names, util::ListDir(dir));
  std::vector<uint64_t> seqs;
  for (const std::string& name : names) {
    uint64_t seq = 0;
    if (ParseWalSegmentName(name, &seq)) seqs.push_back(seq);
  }
  std::sort(seqs.begin(), seqs.end());
  return WalCursor(dir, std::move(seqs));
}

StatusOr<WalScan> WalCursor::Scan(const WalPosition& from, int64_t max_records,
                                  int64_t max_bytes) const {
  WalScan out;
  out.next = from;
  if (seqs_.empty()) {
    out.exhausted = true;
    return out;
  }
  out.max_seq_seen = seqs_.back();

  // Locate the starting segment. A zero position means "oldest available";
  // a positive one must name a segment that still exists — anything else is
  // a prune (or a position from some other directory), and resuming at a
  // different segment would silently skip interior history.
  size_t start = 0;
  if (from.seq != 0) {
    auto it = std::lower_bound(seqs_.begin(), seqs_.end(), from.seq);
    if (it == seqs_.end() || *it != from.seq) {
      out.position_pruned = true;
      return out;
    }
    start = static_cast<size_t>(it - seqs_.begin());
  }

  int64_t bytes = 0;
  bool byte_overscan = false;
  for (size_t si = start; si < seqs_.size(); ++si) {
    const uint64_t seq = seqs_[si];
    const int64_t offset = (from.seq != 0 && seq == from.seq) ? from.offset : 0;
    MAD_ASSIGN_OR_RETURN(
        WalReadResult one,
        ReadWalSegmentFrom(dir_ + "/" + WalSegmentName(seq), offset));
    ++out.segments_scanned;
    if (one.truncated_tail) ++out.truncated_tail_records;
    for (size_t i = 0; i < one.records.size(); ++i) {
      const bool record_cap =
          max_records > 0 &&
          static_cast<int64_t>(out.records.size()) >= max_records;
      // Byte budget with one-record overscan: the first record past the
      // budget still rides along, so the selection layer's window-final
      // withholding rule always has its abort-lookahead record. Cutting
      // right at the budget instead would stall shipping forever on any
      // record larger than the whole budget (its window would be a lone
      // withheld insert making no progress).
      const bool over_budget =
          max_bytes > 0 && !out.records.empty() &&
          bytes + static_cast<int64_t>(one.records[i].facts_text.size()) >
              max_bytes;
      if (record_cap || (over_budget && byte_overscan)) {
        return out;  // exhausted stays false
      }
      if (over_budget) byte_overscan = true;
      bytes += static_cast<int64_t>(one.records[i].facts_text.size());
      out.records.push_back(std::move(one.records[i]));
      out.boundaries.push_back(WalPosition{seq, one.record_ends[i]});
      out.next = out.boundaries.back();
    }
    // Advance past any recordless valid prefix (an empty fresh segment, or
    // a resume offset already at the segment's end).
    out.next = WalPosition{seq, std::max(one.valid_bytes, offset)};
    if (one.truncated_tail && si + 1 == seqs_.size()) {
      out.tail_truncated = true;
    }
  }
  // A scan that ends on the overscan record reports limit-cut even at the
  // log's end (bytes only grow, so overscan ⇒ the very next record would
  // have been the cut): the selection layer then withholds that record, a
  // shipped window never exceeds the budget by more than one record, and
  // the next window re-reads it as its budget-exempt first record.
  out.exhausted = !byte_overscan;
  return out;
}

ReplaySelection SelectReplayRecords(std::vector<WalRecord> records,
                                    int64_t base_epoch) {
  ReplaySelection out;
  for (size_t i = 0; i < records.size(); ++i) {
    WalRecord& rec = records[i];
    if (rec.type == WalRecordType::kAbort) continue;  // pair consumed below
    if (rec.epoch <= base_epoch) continue;  // covered by the checkpoint
    // An insert immediately followed by its abort marker failed mid-merge
    // and was never acknowledged: skip the pair. (The single-writer lane
    // guarantees the abort, if written at all, is the very next record.)
    if (i + 1 < records.size() &&
        records[i + 1].type == WalRecordType::kAbort &&
        records[i + 1].epoch == rec.epoch) {
      ++out.skipped_aborted_batches;
      continue;
    }
    out.replay.push_back(std::move(rec));
  }
  return out;
}

ShipSelection SelectShippableRecords(const WalScan& scan,
                                     const WalPosition& from,
                                     int64_t committed_epoch) {
  ShipSelection out;
  out.next = from;
  for (size_t i = 0; i < scan.records.size(); ++i) {
    const WalRecord& rec = scan.records[i];
    if (rec.type == WalRecordType::kAbort) {
      // A lone abort means the paired insert was consumed by an earlier
      // window — impossible under the withholding rule below, but consuming
      // it keeps the position moving if it ever happens.
      out.next = scan.boundaries[i];
      continue;
    }
    const bool has_lookahead = i + 1 < scan.records.size();
    if (has_lookahead &&
        scan.records[i + 1].type == WalRecordType::kAbort &&
        scan.records[i + 1].epoch == rec.epoch) {
      // Failed merge: skip the pair, exactly as recovery would.
      out.next = scan.boundaries[i + 1];
      ++i;
      continue;
    }
    // The log runs ahead of the model (write-ahead): an insert past the
    // committed epoch may yet gain an abort marker. Leave it for later.
    if (rec.epoch > committed_epoch) break;
    // A window-final insert in a limit-cut window has unknown abort status
    // (the marker, if any, is the next record). Withhold; the one-record
    // overscan — the caller's +1 on the record cap, Scan's own on the byte
    // budget — guarantees the withheld record is pure lookahead, so the
    // records before it still ship and the position still advances.
    if (!has_lookahead && !scan.exhausted) break;
    out.records.push_back(rec);
    out.next = scan.boundaries[i];
  }
  return out;
}

}  // namespace server
}  // namespace mad
