#ifndef MAD_SERVER_REPLICATION_WAL_CURSOR_H_
#define MAD_SERVER_REPLICATION_WAL_CURSOR_H_

// WalCursor: the one place that walks a data directory's WAL segments in
// sequence order. Startup recovery and primary-side log shipping both read
// the insert history through it, so torn-tail truncation, mid-segment
// corruption hard-fails, and CRC verification exist exactly once.
//
// A position is (segment sequence, byte offset within that segment). Offsets
// are `valid_bytes` values from previous reads, so resuming never re-parses
// (or worse, re-interprets) bytes it already consumed. Segment sequence
// numbers are never reused — recovery always rotates to a fresh one — which
// makes positions stable across primary restarts; a position whose segment
// has been pruned away is reported (position_pruned), not silently skipped,
// because skipping interior history would break the prefix-replay argument.
//
// Two selection policies sit on top of the raw scan:
//
//   * SelectReplayRecords — recovery semantics: drop records at or below the
//     checkpoint epoch, skip insert+abort pairs. If an abort marker was lost
//     (degraded WAL), the unacknowledged batch replays anyway: at-least-once
//     for failed writes, sound because joins are monotone and idempotent.
//   * SelectShippableRecords — streaming semantics: additionally withhold
//     records beyond the primary's committed epoch (an insert is logged
//     *before* it is applied, so the log's tail may run ahead of the model)
//     and withhold a window-final insert whose abort status is not yet
//     visible. Replicas therefore never apply a batch the primary has not
//     committed, except in the same lost-abort corner recovery accepts.

#include <cstdint>
#include <string>
#include <vector>

#include "server/wal.h"
#include "util/status.h"

namespace mad {
namespace server {

/// A resumable location in the WAL: segment sequence + byte offset. The
/// zero value means "the oldest data available".
struct WalPosition {
  uint64_t seq = 0;
  int64_t offset = 0;
};

/// One Scan's worth of records plus everything a caller needs to resume,
/// diagnose, or decide it has fallen off the retained log.
struct WalScan {
  std::vector<WalRecord> records;
  /// boundaries[i] is the position just past records[i]; resuming there
  /// yields records[i+1] onward.
  std::vector<WalPosition> boundaries;
  /// Position just past the last intact byte consumed (== boundaries.back()
  /// when records were read past the last one's segment-mates).
  WalPosition next;
  /// True when the scan consumed every intact record currently on disk
  /// (rather than stopping at max_records/max_bytes). A scan whose final
  /// record is the byte-budget overscan record reports false even at the
  /// log's end, so ship layers withhold it and re-read it as the next
  /// window's (budget-exempt) first record.
  bool exhausted = false;
  /// The newest scanned segment ends in a partial or CRC-failing record —
  /// a live writer mid-append, or the frozen signature of a crash.
  bool tail_truncated = false;
  /// Segments whose tail was torn, across the whole scan (recovery stat).
  int64_t truncated_tail_records = 0;
  int64_t segments_scanned = 0;
  /// Highest segment sequence present in the directory at scan time (0 when
  /// the directory holds no segments).
  uint64_t max_seq_seen = 0;
  /// The requested position's segment no longer exists (pruned after a
  /// checkpoint). The caller must re-bootstrap; resuming anywhere else
  /// would skip history.
  bool position_pruned = false;
};

/// Snapshot of a data directory's segment listing plus scan machinery. Cheap
/// to construct; shippers open a fresh cursor per request so rotation and
/// pruning between requests are handled by construction.
class WalCursor {
 public:
  /// Lists `dir` and indexes its WAL segments. The directory must exist.
  static StatusOr<WalCursor> Open(const std::string& dir);

  /// Reads intact records from `from` onward, in segment order, stopping
  /// after `max_records` records or once shipped facts text exceeds
  /// `max_bytes` (either cap <= 0 means unlimited). The byte budget
  /// overscans by exactly one record — the first record past the budget is
  /// included, the cut lands before the next — so the ship-side withholding
  /// rule always has a lookahead record and a record larger than the whole
  /// budget cannot stall the stream. The first record of a window is always
  /// included regardless of size. Torn tails on sealed (non-final) segments
  /// are skipped and counted, exactly as recovery does; mid-segment
  /// corruption is a hard error.
  StatusOr<WalScan> Scan(const WalPosition& from, int64_t max_records,
                         int64_t max_bytes) const;

  const std::vector<uint64_t>& segment_seqs() const { return seqs_; }
  bool empty() const { return seqs_.empty(); }

 private:
  WalCursor(std::string dir, std::vector<uint64_t> seqs)
      : dir_(std::move(dir)), seqs_(std::move(seqs)) {}

  std::string dir_;
  std::vector<uint64_t> seqs_;  ///< sorted ascending
};

/// Recovery-side filter: keep inserts with epoch > base_epoch, skipping an
/// insert immediately followed by its abort marker (the pair of a failed
/// merge). Shared by PlanRecovery and by bootstrap certification tests.
struct ReplaySelection {
  std::vector<WalRecord> replay;
  int64_t skipped_aborted_batches = 0;
};
ReplaySelection SelectReplayRecords(std::vector<WalRecord> records,
                                    int64_t base_epoch);

/// Shipping-side filter over one scan window. Withholds (leaves for the
/// next poll) any insert whose epoch exceeds `committed_epoch`, and a
/// window-final insert when the window was cut by limits (its abort status
/// is unknowable without one record of lookahead — ship layers should scan
/// one record beyond their advertised cap). `next` covers exactly the
/// consumed prefix, so resuming there neither skips nor re-ships.
struct ShipSelection {
  std::vector<WalRecord> records;  ///< committed inserts, in log order
  WalPosition next;
};
ShipSelection SelectShippableRecords(const WalScan& scan,
                                     const WalPosition& from,
                                     int64_t committed_epoch);

}  // namespace server
}  // namespace mad

#endif  // MAD_SERVER_REPLICATION_WAL_CURSOR_H_
