#include "server/result_json.h"

#include <string>

namespace mad {
namespace server {

using datalog::Relation;
using datalog::Tuple;
using datalog::Value;

Json ValueToJson(const Value& v) {
  switch (v.kind()) {
    case Value::Kind::kNone:
      return Json::Null();
    case Value::Kind::kSymbol:
      return Json::Str(std::string(v.symbol_name()));
    case Value::Kind::kInt:
      return Json::Int(v.int_value());
    case Value::Kind::kDouble:
      return Json::Double(v.double_value());
    case Value::Kind::kBool:
      return Json::Bool(v.bool_value());
    case Value::Kind::kSet: {
      Json arr = Json::Array();
      for (const Value& e : v.set_value()) arr.Push(ValueToJson(e));
      return arr;
    }
  }
  return Json::Null();
}

std::optional<Value> JsonToValue(const Json& j) {
  switch (j.kind) {
    case Json::Kind::kBool:
      return Value::Bool(j.boolean);
    case Json::Kind::kInt:
      return Value::Int(j.integer);
    case Json::Kind::kDouble:
      return Value::Real(j.number);
    case Json::Kind::kString:
      return Value::Symbol(j.str);
    default:
      return std::nullopt;
  }
}

Json EvalStatsToJson(const core::EvalStats& stats) {
  Json j = Json::Object();
  j.Set("iterations", Json::Int(stats.iterations));
  j.Set("rule_evaluations", Json::Int(stats.rule_evaluations));
  j.Set("derivations", Json::Int(stats.derivations));
  j.Set("merges_new", Json::Int(stats.merges_new));
  j.Set("merges_increased", Json::Int(stats.merges_increased));
  j.Set("subgoal_evals", Json::Int(stats.subgoal_evals));
  j.Set("index_reuses", Json::Int(stats.index_reuses));
  j.Set("greedy_violations", Json::Int(stats.greedy_violations));
  j.Set("reached_fixpoint", Json::Bool(stats.reached_fixpoint));
  j.Set("limit_tripped", Json::Str(LimitKindName(stats.limit_tripped)));
  j.Set("wall_seconds", Json::Double(stats.wall_seconds));
  return j;
}

Json RelationToJson(const Relation& rel) {
  Json j = Json::Object();
  j.Set("pred", Json::Str(rel.pred()->name));
  j.Set("arity", Json::Int(rel.pred()->arity));
  j.Set("has_cost", Json::Bool(rel.pred()->has_cost));
  Json rows = Json::Array();
  rel.ForEach([&](const Tuple& key, const Value& cost) {
    Json row = Json::Object();
    Json key_arr = Json::Array();
    for (const Value& v : key) key_arr.Push(ValueToJson(v));
    row.Set("key", std::move(key_arr));
    if (rel.pred()->has_cost) row.Set("cost", ValueToJson(cost));
    rows.Push(std::move(row));
  });
  j.Set("rows", std::move(rows));
  return j;
}

Json ResultToJson(const datalog::Program& program,
                  const core::EvalResult& result) {
  Json j = Json::Object();
  j.Set("completeness", Json::Str(core::CompletenessName(result.completeness)));
  j.Set("limit_tripped", Json::Str(LimitKindName(result.limit_tripped)));
  j.Set("tripped_component", Json::Int(result.tripped_component));
  j.Set("stats", EvalStatsToJson(result.stats));
  Json relations = Json::Array();
  for (const auto& [_, rel] : result.db.relations()) {
    relations.Push(RelationToJson(*rel));
  }
  j.Set("relations", std::move(relations));
  (void)program;
  return j;
}

}  // namespace server
}  // namespace mad
