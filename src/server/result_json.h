#ifndef MAD_SERVER_RESULT_JSON_H_
#define MAD_SERVER_RESULT_JSON_H_

// JSON views of evaluation artifacts: datalog values, EvalStats, relations,
// and whole evaluation results. Shared by `mondl --format=json` and the madd
// wire protocol so the two surfaces cannot drift apart; the schema is locked
// by tests decoding with the independent tests/json_lite.h reader.

#include <optional>
#include <string>

#include "core/engine.h"
#include "datalog/ast.h"
#include "datalog/database.h"
#include "datalog/value.h"
#include "server/json.h"

namespace mad {
namespace server {

/// Value -> JSON: symbols as strings, ints as JSON integers, reals as JSON
/// numbers, bools as bools, sets as (sorted) arrays.
Json ValueToJson(const datalog::Value& v);

/// JSON -> Value, the request direction: strings intern as symbols, integral
/// numbers become Value::Int, other numbers Value::Real, bools Value::Bool.
/// Arrays/objects/null are not valid key components -> std::nullopt.
std::optional<datalog::Value> JsonToValue(const Json& j);

/// EvalStats as a flat object (field names match EvalStats members).
Json EvalStatsToJson(const core::EvalStats& stats);

/// One relation as {"pred": ..., "arity": N, "has_cost": b, "rows":
/// [{"key": [...], "cost": ...}, ...]} with rows in stable row-id order.
Json RelationToJson(const datalog::Relation& rel);

/// The whole `mondl --format=json` document: program name, completeness,
/// tripped limit, stats, and every relation of the model.
Json ResultToJson(const datalog::Program& program,
                  const core::EvalResult& result);

}  // namespace server
}  // namespace mad

#endif  // MAD_SERVER_RESULT_JSON_H_
