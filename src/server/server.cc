#include "server/server.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <utility>

#include "server/wire.h"
#include "util/string_util.h"

namespace mad {
namespace server {

namespace {

Status SocketError(const char* op) {
  return Status::Internal(StrPrintf("%s: %s", op, std::strerror(errno)));
}

}  // namespace

StatusOr<std::unique_ptr<Server>> Server::Start(
    std::unique_ptr<ServerState> state, Options options) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return SocketError("socket");

  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options.port));
  if (::inet_pton(AF_INET, options.host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument(
        StrPrintf("not an IPv4 address: '%s'", options.host.c_str()));
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Status st = SocketError("bind");
    ::close(fd);
    return st;
  }
  if (::listen(fd, 128) < 0) {
    Status st = SocketError("listen");
    ::close(fd);
    return st;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    Status st = SocketError("getsockname");
    ::close(fd);
    return st;
  }

  auto server = std::unique_ptr<Server>(new Server());
  server->state_ = std::move(state);
  server->listen_fd_ = fd;
  server->port_ = ntohs(addr.sin_port);
  server->accept_thread_ = std::thread([s = server.get()] { s->AcceptLoop(); });
  return server;
}

Server::~Server() {
  RequestShutdown();
  Wait();
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

void Server::RequestShutdown() {
  if (stopping_.exchange(true, std::memory_order_acq_rel)) return;
  // Unblocks the accept() below (Linux: blocked accept returns EINVAL after
  // shutdown on the listening socket).
  ::shutdown(listen_fd_, SHUT_RDWR);
  // Half-close every live connection: an idle ReadFrame wakes with clean
  // EOF, while a thread mid-response still writes its answer out.
  std::lock_guard<std::mutex> lk(conns_mu_);
  for (Connection& c : conns_) ::shutdown(c.fd, SHUT_RD);
}

void Server::Wait() {
  if (accept_thread_.joinable()) accept_thread_.join();
  Reap(/*all=*/true);
}

void Server::Reap(bool all) {
  // Joining with conns_mu_ held would deadlock against a connection thread
  // blocked on the same mutex inside RequestShutdown's half-close sweep
  // (the shutdown-verb path), so splice candidates out under the lock and
  // join them after releasing it.
  std::list<Connection> dead;
  {
    std::lock_guard<std::mutex> lk(conns_mu_);
    for (auto it = conns_.begin(); it != conns_.end();) {
      auto next = std::next(it);
      if (all || it->finished.load(std::memory_order_acquire)) {
        dead.splice(dead.end(), conns_, it);
      }
      it = next;
    }
  }
  for (Connection& c : dead) {
    // A drain can race the sweep that half-closes live fds; re-issuing the
    // (idempotent) half-close guarantees this thread's blocking read wakes
    // even if the sweep ran before the connection was listed.
    if (all) ::shutdown(c.fd, SHUT_RD);
    if (c.thread.joinable()) c.thread.join();
    ::close(c.fd);
  }
}

void Server::AcceptLoop() {
  while (!stopping()) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listener shut down (or unrecoverable) — start draining
    }
    if (stopping()) {
      ::close(fd);
      break;
    }
    Reap(/*all=*/false);
    std::lock_guard<std::mutex> lk(conns_mu_);
    conns_.emplace_back();
    Connection* conn = &conns_.back();
    conn->fd = fd;
    conn->thread = std::thread([this, conn] { ServeConnection(conn); });
    // A shutdown racing this accept may have missed the new fd in its
    // half-close sweep; repair under the same lock that sweep takes.
    if (stopping()) ::shutdown(fd, SHUT_RD);
  }
}

void Server::ServeConnection(Connection* conn) {
  std::string payload;
  for (;;) {
    StatusOr<bool> got = ReadFrame(conn->fd, &payload);
    if (!got.ok() || !*got) break;  // EOF, half-close, or malformed framing

    Json response;
    std::optional<Json> request = ParseJson(payload);
    if (!request.has_value()) {
      response = Json::Object();
      response.Set("ok", Json::Bool(false));
      response.Set("verb", Json::Str(""));
      Json err = Json::Object();
      err.Set("code", Json::Str("InvalidArgument"));
      err.Set("message", Json::Str("request is not valid JSON"));
      response.Set("error", std::move(err));
    } else {
      response = state_->Handle(*request);
    }

    const bool shutdown_verb =
        request.has_value() && request->StrOr("verb", "") == "shutdown";
    if (!WriteFrame(conn->fd, response.Dump()).ok()) break;
    if (shutdown_verb) {
      RequestShutdown();
      break;
    }
  }
  // Reap() owns the close, but it may not run until the next accept; without
  // this half-close an abusive peer that broke framing would wait on a dead
  // connection indefinitely. Signal EOF now, reclaim the fd later.
  ::shutdown(conn->fd, SHUT_RDWR);
  conn->finished.store(true, std::memory_order_release);
}

}  // namespace server
}  // namespace mad
