#ifndef MAD_SERVER_SERVER_H_
#define MAD_SERVER_SERVER_H_

// The madd transport: a loopback TCP listener speaking the wire.h framed
// JSON protocol, one thread per connection, graceful drain on shutdown.
//
// Threading model: an accept thread hands each connection to its own
// serving thread; all of them call ServerState::Handle, which is the layer
// that actually provides snapshot isolation (reads pin, the one insert lane
// serializes internally). Shutdown — whether from the `shutdown` verb, a
// SIGINT-driven RequestShutdown, or the destructor — closes the listener,
// then half-closes (SHUT_RD) every live connection: blocked reads wake with
// a clean EOF while responses already being computed still write out, so no
// accepted request is ever dropped mid-flight.

#include <atomic>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "server/state.h"
#include "util/status.h"

namespace mad {
namespace server {

class Server {
 public:
  struct Options {
    /// Loopback only by design: madd is a serving layer, not an internet
    /// daemon — no TLS, no auth, no reason to listen wider.
    std::string host = "127.0.0.1";
    /// 0 picks an ephemeral port (read it back via port()).
    int port = 0;
  };

  /// Binds, listens, and starts the accept thread. Takes ownership of the
  /// loaded state.
  static StatusOr<std::unique_ptr<Server>> Start(
      std::unique_ptr<ServerState> state, Options options);

  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// The bound port (resolves ephemeral binds).
  int port() const { return port_; }
  ServerState& state() { return *state_; }

  /// Begins the graceful drain described above. Idempotent; safe to call
  /// from any thread, including a connection thread and a signal-watcher.
  void RequestShutdown();

  /// True once RequestShutdown has been called (by any path).
  bool stopping() const { return stopping_.load(std::memory_order_acquire); }

  /// Blocks until the accept thread and every connection thread have
  /// finished. Call RequestShutdown first (or rely on the `shutdown` verb);
  /// must not be called from a connection thread.
  void Wait();

 private:
  Server() = default;

  struct Connection {
    int fd = -1;
    std::thread thread;
    std::atomic<bool> finished{false};
  };

  void AcceptLoop();
  void ServeConnection(Connection* conn);
  /// Joins and closes finished connections (accept thread + Wait).
  void Reap(bool all);

  std::unique_ptr<ServerState> state_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::thread accept_thread_;
  std::atomic<bool> stopping_{false};

  std::mutex conns_mu_;
  std::list<Connection> conns_;
};

}  // namespace server
}  // namespace mad

#endif  // MAD_SERVER_SERVER_H_
