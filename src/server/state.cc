#include "server/state.h"

#include <algorithm>
#include <cmath>

#include "analysis/admissibility.h"
#include "datalog/parser.h"
#include "server/result_json.h"
#include "util/string_util.h"

namespace mad {
namespace server {

using datalog::PredicateInfo;
using datalog::Relation;
using datalog::Tuple;
using datalog::Value;

// ---------------------------------------------------------------------------
// LatencyRecorder
// ---------------------------------------------------------------------------

void LatencyRecorder::Record(const std::string& verb, double micros) {
  std::lock_guard<std::mutex> lk(mu_);
  PerVerb& pv = verbs_[verb];
  ++pv.count;
  pv.total_us += micros;
  if (pv.recent.size() < kReservoir) {
    pv.recent.push_back(micros);
  } else {
    pv.recent[pv.next] = micros;
    pv.next = (pv.next + 1) % kReservoir;
  }
}

namespace {

double Percentile(std::vector<double>* sorted, double p) {
  if (sorted->empty()) return 0;
  size_t idx = static_cast<size_t>(p * static_cast<double>(sorted->size() - 1));
  return (*sorted)[idx];
}

}  // namespace

Json LatencyRecorder::ToJson() const {
  std::lock_guard<std::mutex> lk(mu_);
  Json out = Json::Object();
  for (const auto& [verb, pv] : verbs_) {
    std::vector<double> samples = pv.recent;
    std::sort(samples.begin(), samples.end());
    Json v = Json::Object();
    v.Set("count", Json::Int(pv.count));
    v.Set("mean_us",
          Json::Double(pv.count > 0 ? pv.total_us / static_cast<double>(pv.count)
                                    : 0));
    v.Set("p50_us", Json::Double(Percentile(&samples, 0.50)));
    v.Set("p95_us", Json::Double(Percentile(&samples, 0.95)));
    v.Set("p99_us", Json::Double(Percentile(&samples, 0.99)));
    out.Set(verb, std::move(v));
  }
  return out;
}

// ---------------------------------------------------------------------------
// ServerState
// ---------------------------------------------------------------------------

namespace {

Json ErrorResponse(const std::string& verb, const Status& status) {
  Json j = Json::Object();
  j.Set("ok", Json::Bool(false));
  j.Set("verb", Json::Str(verb));
  Json err = Json::Object();
  err.Set("code", Json::Str(StatusCodeName(status.code())));
  err.Set("message", Json::Str(status.message()));
  j.Set("error", std::move(err));
  return j;
}

Json OkResponse(const std::string& verb, int64_t epoch) {
  Json j = Json::Object();
  j.Set("ok", Json::Bool(true));
  j.Set("verb", Json::Str(verb));
  j.Set("epoch", Json::Int(epoch));
  return j;
}

}  // namespace

StatusOr<std::unique_ptr<ServerState>> ServerState::Load(
    std::string_view program_text, LoadOptions options) {
  MAD_ASSIGN_OR_RETURN(datalog::Program parsed,
                       datalog::ParseProgram(program_text));
  // The unique_ptr dance: Engine keeps a Program*, so give the program a
  // stable address before constructing the engine.
  auto state = std::unique_ptr<ServerState>(new ServerState());
  state->program_ = std::make_unique<datalog::Program>(std::move(parsed));
  state->cancellation_ = options.cancellation;
  if (state->cancellation_ != nullptr &&
      options.eval.limits.cancellation == nullptr) {
    options.eval.limits.cancellation = state->cancellation_;
  }
  state->engine_ =
      std::make_unique<core::Engine>(*state->program_, options.eval);

  // The check-and-certify pipeline runs inside Run (validate=true): a
  // rejected program returns an error here and never serves.
  MAD_ASSIGN_OR_RETURN(state->work_, state->engine_->Run(datalog::Database()));

  for (const auto& pred : state->program_->predicates()) {
    state->preds_.emplace(pred->name, pred.get());
  }
  state->updates_safe_ =
      analysis::AnalyzeUpdateSafety(*state->program_).basic.ok();
  state->start_ = std::chrono::steady_clock::now();
  state->Publish();
  return state;
}

void ServerState::Publish() {
  auto snap = std::make_shared<ServingSnapshot>();
  snap->epoch = epoch_;
  snap->db = work_.db.Snapshot();
  snap->stats = work_.stats;
  snap->completeness = work_.completeness;
  snap->limit_tripped = work_.limit_tripped;
  std::lock_guard<std::mutex> lk(snap_mu_);
  snapshot_ = std::move(snap);
}

std::shared_ptr<const ServingSnapshot> ServerState::Pin() const {
  std::lock_guard<std::mutex> lk(snap_mu_);
  return snapshot_;
}

int64_t ServerState::epoch() const { return Pin()->epoch; }

ResourceLimits ServerState::RequestResourceLimits(const Json& request) const {
  ResourceLimits limits;
  const Json& l = request.At("limits");
  int64_t deadline_ms = l.IntOr("deadline_ms", 0);
  if (deadline_ms > 0) {
    limits.deadline = std::chrono::milliseconds(deadline_ms);
  }
  int64_t max_tuples = l.IntOr("max_tuples", 0);
  if (max_tuples > 0) limits.max_derived_tuples = max_tuples;
  limits.cancellation = cancellation_;
  return limits;
}

Json ServerState::Handle(const Json& request) {
  const std::string verb = request.StrOr("verb", "");
  const auto t0 = std::chrono::steady_clock::now();
  Json response;
  if (verb == "ping") {
    response = HandlePing();
  } else if (verb == "query") {
    response = HandleQuery(request);
  } else if (verb == "insert") {
    response = HandleInsert(request);
  } else if (verb == "dump") {
    response = HandleDump();
  } else if (verb == "stats") {
    response = HandleStats();
  } else if (verb == "shutdown") {
    // Transport-level: the server loop sees this verb and starts draining;
    // the response acknowledges the request against the final epoch.
    response = OkResponse("shutdown", epoch());
  } else {
    response = ErrorResponse(verb, Status::InvalidArgument(StrPrintf(
                                       "unknown verb '%s'", verb.c_str())));
  }
  const double us = std::chrono::duration<double, std::micro>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
  latency_.Record(verb.empty() ? "<none>" : verb, us);
  return response;
}

Json ServerState::HandlePing() {
  auto snap = Pin();
  Json j = OkResponse("ping", snap->epoch);
  j.Set("completeness", Json::Str(core::CompletenessName(snap->completeness)));
  return j;
}

Json ServerState::HandleQuery(const Json& request) {
  auto snap = Pin();
  const std::string pred_name = request.StrOr("pred", "");
  auto it = preds_.find(pred_name);
  if (it == preds_.end()) {
    return ErrorResponse("query", Status::NotFound(StrPrintf(
                                      "no predicate '%s'", pred_name.c_str())));
  }
  const PredicateInfo* pred = it->second;

  // "key": array of key_arity entries, null = unbound. Missing key = full
  // scan.
  std::vector<int> bound_pos;
  Tuple bound_vals;
  const Json& key = request.At("key");
  if (key.is_array()) {
    if (static_cast<int>(key.arr.size()) != pred->key_arity()) {
      return ErrorResponse(
          "query", Status::InvalidArgument(StrPrintf(
                       "'%s' takes %d key arguments, got %zu",
                       pred_name.c_str(), pred->key_arity(), key.arr.size())));
    }
    for (size_t i = 0; i < key.arr.size(); ++i) {
      if (key.arr[i].is_null()) continue;
      std::optional<Value> v = JsonToValue(key.arr[i]);
      if (!v.has_value()) {
        return ErrorResponse("query",
                             Status::InvalidArgument(StrPrintf(
                                 "key position %zu is not a ground value", i)));
      }
      bound_pos.push_back(static_cast<int>(i));
      bound_vals.push_back(*v);
    }
  } else if (!key.is_null()) {
    return ErrorResponse(
        "query", Status::InvalidArgument("'key' must be an array or absent"));
  }

  ResourceGuard guard(RequestResourceLimits(request));
  const int64_t max_rows = request.At("limits").IntOr("max_rows", 0);

  Json rows = Json::Array();
  int64_t matched = 0;
  bool truncated = false;
  const Relation* rel = snap->db.Find(pred);
  if (rel != nullptr) {
    rel->Scan(bound_pos, bound_vals, [&](const Tuple& k, const Value& cost) {
      ++matched;
      if (truncated) return;
      if (max_rows > 0 && static_cast<int64_t>(rows.arr.size()) >= max_rows) {
        truncated = true;
        return;
      }
      if (guard.active() && (matched & 127) == 0 &&
          guard.Poll() != LimitKind::kNone) {
        truncated = true;
        return;
      }
      Json row = Json::Object();
      Json key_arr = Json::Array();
      for (const Value& v : k) key_arr.Push(ValueToJson(v));
      row.Set("key", std::move(key_arr));
      if (pred->has_cost) row.Set("cost", ValueToJson(cost));
      rows.Push(std::move(row));
    });
  }
  // Default-value cost predicates: a fully-bound miss still has a defined
  // answer — the lattice bottom (Section 2.3.2).
  bool defaulted = false;
  if (rows.arr.empty() && pred->has_default &&
      static_cast<int>(bound_pos.size()) == pred->key_arity()) {
    Json row = Json::Object();
    Json key_arr = Json::Array();
    for (const Value& v : bound_vals) key_arr.Push(ValueToJson(v));
    row.Set("key", std::move(key_arr));
    row.Set("cost", ValueToJson(pred->domain->Bottom()));
    rows.Push(std::move(row));
    defaulted = true;
  }

  Json j = OkResponse("query", snap->epoch);
  j.Set("pred", Json::Str(pred_name));
  j.Set("row_count", Json::Int(static_cast<int64_t>(rows.arr.size())));
  j.Set("rows", std::move(rows));
  // A truncated enumeration is still certified: every returned row is in the
  // snapshot's least model, which is itself ⊑ the live least model.
  j.Set("complete", Json::Bool(!truncated));
  if (defaulted) j.Set("defaulted", Json::Bool(true));
  j.Set("completeness", Json::Str(core::CompletenessName(snap->completeness)));
  if (guard.tripped() != LimitKind::kNone) {
    j.Set("limit_tripped", Json::Str(LimitKindName(guard.tripped())));
  }
  return j;
}

Json ServerState::HandleInsert(const Json& request) {
  const Json& facts_field = request.At("facts");
  if (!facts_field.is_string()) {
    return ErrorResponse("insert", Status::InvalidArgument(
                                       "'facts' must be a string of fact "
                                       "clauses in .mdl syntax"));
  }
  if (!updates_safe_) {
    return ErrorResponse(
        "insert",
        Status::InvalidArgument(
            "program is not update-safe (negation or pseudo-monotonic "
            "aggregates): incremental inserts are disabled"));
  }

  std::lock_guard<std::mutex> lk(writer_mu_);
  if (poisoned_) {
    return ErrorResponse(
        "insert", Status::Internal(
                      "a previous insert failed mid-merge; the working set "
                      "is no longer a certified model, restart the server"));
  }
  // Parsing may implicitly declare unknown predicates on the Program, but
  // readers resolve names against the load-time frozen map, so this is
  // writer-private state.
  auto facts = datalog::ParseFacts(program_.get(), facts_field.str);
  if (!facts.ok()) return ErrorResponse("insert", facts.status());

  auto stats =
      engine_->Update(&work_, *facts, RequestResourceLimits(request));
  if (!stats.ok()) {
    // Update merges facts before closing over them, so a failure here can
    // leave the working set under-closed. Refuse further writes; reads keep
    // serving the last published (still sound) snapshot.
    poisoned_ = true;
    return ErrorResponse("insert", stats.status());
  }
  ++epoch_;
  Publish();

  Json j = OkResponse("insert", epoch_);
  j.Set("facts_parsed", Json::Int(static_cast<int64_t>(facts->size())));
  j.Set("stats", EvalStatsToJson(*stats));
  j.Set("completeness",
        Json::Str(core::CompletenessName(work_.completeness)));
  return j;
}

Json ServerState::HandleDump() {
  auto snap = Pin();
  Json j = OkResponse("dump", snap->epoch);
  j.Set("model", Json::Str(snap->db.ToString()));
  j.Set("completeness", Json::Str(core::CompletenessName(snap->completeness)));
  return j;
}

Json ServerState::HandleStats() {
  auto snap = Pin();
  Json j = OkResponse("stats", snap->epoch);
  j.Set("completeness", Json::Str(core::CompletenessName(snap->completeness)));
  j.Set("limit_tripped", Json::Str(LimitKindName(snap->limit_tripped)));
  j.Set("stats", EvalStatsToJson(snap->stats));
  j.Set("total_rows", Json::Int(static_cast<int64_t>(snap->db.TotalRows())));
  j.Set("approx_bytes", Json::Int(snap->db.ApproxBytes()));
  j.Set("strategy",
        Json::Str(core::StrategyName(engine_->options().strategy)));
  j.Set("num_threads", Json::Int(engine_->options().num_threads));
  j.Set("uptime_seconds",
        Json::Double(std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - start_)
                         .count()));
  j.Set("verbs", latency_.ToJson());
  return j;
}

}  // namespace server
}  // namespace mad
