#include "server/state.h"

#include <algorithm>
#include <cmath>

#include "analysis/admissibility.h"
#include "datalog/parser.h"
#include "server/replication/wal_cursor.h"
#include "server/result_json.h"
#include "util/crc32c.h"
#include "util/string_util.h"

namespace mad {
namespace server {

using datalog::PredicateInfo;
using datalog::Relation;
using datalog::Tuple;
using datalog::Value;

// ---------------------------------------------------------------------------
// LatencyRecorder
// ---------------------------------------------------------------------------

void LatencyRecorder::Record(const std::string& verb, double micros) {
  std::lock_guard<std::mutex> lk(mu_);
  PerVerb& pv = verbs_[verb];
  ++pv.count;
  pv.total_us += micros;
  if (pv.recent.size() < kReservoir) {
    pv.recent.push_back(micros);
  } else {
    pv.recent[pv.next] = micros;
    pv.next = (pv.next + 1) % kReservoir;
  }
}

namespace {

double Percentile(std::vector<double>* sorted, double p) {
  if (sorted->empty()) return 0;
  size_t idx = static_cast<size_t>(p * static_cast<double>(sorted->size() - 1));
  return (*sorted)[idx];
}

}  // namespace

Json LatencyRecorder::ToJson() const {
  std::lock_guard<std::mutex> lk(mu_);
  Json out = Json::Object();
  for (const auto& [verb, pv] : verbs_) {
    std::vector<double> samples = pv.recent;
    std::sort(samples.begin(), samples.end());
    Json v = Json::Object();
    v.Set("count", Json::Int(pv.count));
    v.Set("mean_us",
          Json::Double(pv.count > 0 ? pv.total_us / static_cast<double>(pv.count)
                                    : 0));
    v.Set("p50_us", Json::Double(Percentile(&samples, 0.50)));
    v.Set("p95_us", Json::Double(Percentile(&samples, 0.95)));
    v.Set("p99_us", Json::Double(Percentile(&samples, 0.99)));
    out.Set(verb, std::move(v));
  }
  return out;
}

// ---------------------------------------------------------------------------
// ServerState
// ---------------------------------------------------------------------------

namespace {

Json ErrorResponse(const std::string& verb, const Status& status) {
  Json j = Json::Object();
  j.Set("ok", Json::Bool(false));
  j.Set("verb", Json::Str(verb));
  Json err = Json::Object();
  err.Set("code", Json::Str(StatusCodeName(status.code())));
  err.Set("message", Json::Str(status.message()));
  j.Set("error", std::move(err));
  return j;
}

Json OkResponse(const std::string& verb, int64_t epoch) {
  Json j = Json::Object();
  j.Set("ok", Json::Bool(true));
  j.Set("verb", Json::Str(verb));
  j.Set("epoch", Json::Int(epoch));
  return j;
}

/// Default and ceiling for how long a min_epoch read (or a long-polled
/// repl_frames request) may block. The ceiling keeps a bad token from
/// parking a connection thread forever.
constexpr int64_t kDefaultMinEpochWaitMs = 2000;
constexpr int64_t kMaxWaitMs = 60 * 1000;

constexpr int64_t kDefaultFrameRecords = 256;
constexpr int64_t kDefaultFrameBytes = 4 << 20;

}  // namespace

StatusOr<std::unique_ptr<ServerState>> ServerState::Load(
    std::string_view program_text, LoadOptions options) {
  MAD_ASSIGN_OR_RETURN(datalog::Program parsed,
                       datalog::ParseProgram(program_text));
  // The unique_ptr dance: Engine keeps a Program*, so give the program a
  // stable address before constructing the engine.
  auto state = std::unique_ptr<ServerState>(new ServerState());
  state->program_ = std::make_unique<datalog::Program>(std::move(parsed));
  state->program_text_ = std::string(program_text);
  state->cancellation_ = options.cancellation;
  state->durability_ = std::move(options.durability);
  state->replica_ = std::move(options.replica);
  if (state->replica_.enabled && !state->durability_.data_dir.empty()) {
    return Status::InvalidArgument(
        "replica mode and a data dir are mutually exclusive: the primary's "
        "WAL is the log of record, and a restarted replica re-bootstraps "
        "from the primary");
  }
  if (state->cancellation_ != nullptr &&
      options.eval.limits.cancellation == nullptr) {
    options.eval.limits.cancellation = state->cancellation_;
  }
  state->engine_ =
      std::make_unique<core::Engine>(*state->program_, options.eval);

  // The check-and-certify pipeline runs inside Run (validate=true): a
  // rejected program returns an error here and never serves.
  MAD_ASSIGN_OR_RETURN(state->work_, state->engine_->Run(datalog::Database()));

  state->updates_safe_ =
      analysis::AnalyzeUpdateSafety(*state->program_).basic.ok();
  for (const auto& verdict : state->work_.check.components) {
    if (!state->certificate_summary_.empty()) {
      state->certificate_summary_.push_back(' ');
    }
    state->certificate_summary_ += StrPrintf(
        "c%d:%s", verdict.index,
        analysis::absint::CertificateKindName(verdict.certificate));
  }

  if (!state->durability_.data_dir.empty()) {
    MAD_RETURN_IF_ERROR(state->RecoverAndOpenWal());
  }

  // The demand-query base: program facts plus the full accepted insert
  // history (cumulative_facts_ is exactly that after recovery — checkpoint
  // facts plus WAL replay). Live inserts append to it under writer_mu_.
  MAD_RETURN_IF_ERROR(state->base_facts_.AddFacts(*state->program_));
  if (!state->cumulative_facts_.empty()) {
    MAD_ASSIGN_OR_RETURN(
        std::vector<datalog::Fact> history,
        datalog::ParseFacts(state->program_.get(), state->cumulative_facts_));
    for (const datalog::Fact& f : history) {
      MAD_RETURN_IF_ERROR(state->base_facts_.AddFact(f));
    }
  }

  // Build the frozen name map only after recovery: WAL replay may implicitly
  // declare cost-free predicates exactly like live inserts do, and those
  // must be queryable.
  for (const auto& pred : state->program_->predicates()) {
    state->preds_.emplace(pred->name, pred.get());
  }
  state->start_ = std::chrono::steady_clock::now();
  state->Publish();
  return state;
}

Status ServerState::RecoverAndOpenWal() {
  const auto t0 = std::chrono::steady_clock::now();
  MAD_ASSIGN_OR_RETURN(RecoveryPlan plan, PlanRecovery(durability_.data_dir));

  if (plan.checkpoint.has_value()) {
    const CheckpointData& ckpt = *plan.checkpoint;
    // The least model is a function of program AND insert history; a WAL
    // written under a different program must not be silently replayed.
    if (ckpt.program_text != program_text_) {
      return Status::InvalidArgument(StrPrintf(
          "data dir '%s' holds a checkpoint for a different program; refusing "
          "to recover (move the data dir aside or restore the original .mdl)",
          durability_.data_dir.c_str()));
    }
    MAD_RETURN_IF_ERROR(RestoreRelations(ckpt, program_.get(), &work_.db));
    epoch_ = ckpt.epoch;
    cumulative_facts_ = ckpt.facts_text;
    history_bytes_.store(static_cast<int64_t>(cumulative_facts_.size()),
                         std::memory_order_relaxed);
  }

  int64_t replayed = 0;
  for (const WalRecord& rec : plan.replay) {
    auto facts = datalog::ParseFacts(program_.get(), rec.facts_text);
    if (!facts.ok()) {
      return Status::Internal(StrPrintf(
          "WAL replay: the batch for epoch %lld no longer parses against the "
          "program: %s",
          static_cast<long long>(rec.epoch), facts.status().message().c_str()));
    }
    ResourceLimits limits;
    limits.cancellation = cancellation_;
    auto stats = engine_->Update(&work_, *facts, limits);
    if (!stats.ok()) {
      return Status::Internal(StrPrintf(
          "WAL replay failed applying the batch for epoch %lld: %s",
          static_cast<long long>(rec.epoch), stats.status().message().c_str()));
    }
    epoch_ = rec.epoch;
    cumulative_facts_.append(rec.facts_text);
    cumulative_facts_.push_back('\n');
    history_bytes_.store(static_cast<int64_t>(cumulative_facts_.size()),
                         std::memory_order_relaxed);
    ++replayed;
  }

  if (durability_.verify_recovery &&
      (plan.checkpoint.has_value() || replayed > 0)) {
    MAD_RETURN_IF_ERROR(VerifyRecoveredState());
  }

  // Always rotate: recovery never appends to a segment it read, so a torn
  // tail stays frozen in place instead of being overwritten.
  MAD_ASSIGN_OR_RETURN(
      WalWriter wal,
      WalWriter::Create(durability_.data_dir, plan.next_segment_seq,
                        durability_.fsync, hooks()));
  wal_ = std::make_unique<WalWriter>(std::move(wal));

  std::lock_guard<std::mutex> lk(dur_mu_);
  dur_.durable_epoch = epoch_;
  dur_.wal_seq = wal_->seq();
  dur_.last_checkpoint_epoch =
      plan.checkpoint.has_value() ? plan.checkpoint->epoch : 0;
  dur_.replayed_records = replayed;
  dur_.truncated_tail_records = plan.truncated_tail_records;
  dur_.skipped_aborted_batches = plan.skipped_aborted_batches;
  dur_.invalid_checkpoints = plan.invalid_checkpoints;
  dur_.recovery_seconds = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - t0)
                              .count();
  return Status::OK();
}

Status ServerState::VerifyRecoveredState() {
  // Differential oracle: the recovered model must equal a from-scratch
  // evaluation of program + full insert history. Confluence of lattice joins
  // makes the history order-insensitive, so one bulk Update of the
  // concatenated batches reaches the same least model the incremental
  // sequence did — and ToString() is sorted, so equality is byte-equality.
  MAD_ASSIGN_OR_RETURN(core::EvalResult fresh,
                       engine_->Run(datalog::Database()));
  if (!cumulative_facts_.empty()) {
    MAD_ASSIGN_OR_RETURN(std::vector<datalog::Fact> facts,
                         datalog::ParseFacts(program_.get(), cumulative_facts_));
    ResourceLimits limits;
    limits.cancellation = cancellation_;
    auto stats = engine_->Update(&fresh, facts, limits);
    if (!stats.ok()) return stats.status();
  }
  if (fresh.db.ToString() != work_.db.ToString()) {
    return Status::Internal(
        "recovery certification failed: the replayed state differs from a "
        "from-scratch evaluation of program + insert history (corrupt "
        "checkpoint or non-deterministic evaluation)");
  }
  return Status::OK();
}

void ServerState::SyncDurabilityCounters() {
  if (wal_ == nullptr) return;
  std::lock_guard<std::mutex> lk(dur_mu_);
  dur_.wal_seq = wal_->seq();
  dur_.wal_records = wal_->records();
  dur_.wal_bytes = wal_->bytes();
}

void ServerState::MaybeCheckpoint(bool force) {
  if (wal_ == nullptr) return;
  // Only exact least models are checkpointed: a limit-degraded working set
  // is sound but not the state the differential verifier would reproduce.
  if (work_.completeness != core::Completeness::kLeastModel) return;
  if (!force) {
    int64_t last = 0;
    {
      std::lock_guard<std::mutex> lk(dur_mu_);
      last = dur_.last_checkpoint_epoch;
    }
    const bool by_epochs = durability_.checkpoint_every_epochs > 0 &&
                           epoch_ - last >= durability_.checkpoint_every_epochs;
    const bool by_bytes = durability_.checkpoint_every_bytes > 0 &&
                          wal_->bytes() >= durability_.checkpoint_every_bytes;
    if (!by_epochs && !by_bytes) return;
  }

  CheckpointData ckpt;
  ckpt.epoch = epoch_;
  ckpt.program_text = program_text_;
  ckpt.facts_text = cumulative_facts_;
  ckpt.completeness = core::CompletenessName(work_.completeness);
  ckpt.certificate_summary = certificate_summary_;
  DumpRelations(work_.db, &ckpt);

  // Failures here are counted, never fatal: the WAL remains authoritative
  // and a later attempt (or restart) can still checkpoint.
  Status written = WriteCheckpoint(durability_.data_dir, ckpt, hooks());
  if (written.ok()) {
    auto rotated = WalWriter::Create(durability_.data_dir, wal_->seq() + 1,
                                     durability_.fsync, hooks());
    if (rotated.ok()) {
      *wal_ = std::move(rotated).value();
      (void)PruneDataDir(durability_.data_dir, wal_->seq(), epoch_);
      std::lock_guard<std::mutex> lk(dur_mu_);
      dur_.last_checkpoint_epoch = epoch_;
      ++dur_.checkpoints_written;
      return;
    }
  }
  std::lock_guard<std::mutex> lk(dur_mu_);
  ++dur_.checkpoint_failures;
}

void ServerState::Publish() {
  auto snap = std::make_shared<ServingSnapshot>();
  snap->epoch = epoch_;
  snap->db = work_.db.Snapshot();
  snap->base = base_facts_.Snapshot();
  snap->stats = work_.stats;
  snap->completeness = work_.completeness;
  snap->limit_tripped = work_.limit_tripped;
  std::lock_guard<std::mutex> lk(snap_mu_);
  snapshot_ = std::move(snap);
  snap_cv_.notify_all();
}

bool ServerState::WaitForEpoch(int64_t min_epoch,
                               std::chrono::milliseconds timeout) const {
  std::unique_lock<std::mutex> lk(snap_mu_);
  return snap_cv_.wait_for(lk, timeout, [&] {
    return snapshot_ != nullptr && snapshot_->epoch >= min_epoch;
  });
}

std::shared_ptr<const ServingSnapshot> ServerState::Pin() const {
  std::lock_guard<std::mutex> lk(snap_mu_);
  return snapshot_;
}

int64_t ServerState::epoch() const { return Pin()->epoch; }

ResourceLimits ServerState::RequestResourceLimits(const Json& request) const {
  ResourceLimits limits;
  const Json& l = request.At("limits");
  int64_t deadline_ms = l.IntOr("deadline_ms", 0);
  if (deadline_ms > 0) {
    limits.deadline = std::chrono::milliseconds(deadline_ms);
  }
  int64_t max_tuples = l.IntOr("max_tuples", 0);
  if (max_tuples > 0) limits.max_derived_tuples = max_tuples;
  limits.cancellation = cancellation_;
  return limits;
}

Json ServerState::Handle(const Json& request) {
  const std::string verb = request.StrOr("verb", "");
  const auto t0 = std::chrono::steady_clock::now();

  // Read-your-writes: a read carrying a min_epoch token (the epoch an
  // insert acknowledgment returned) must never be served from an older
  // snapshot. A primary satisfies the bar trivially; a lagging replica
  // blocks until the shipped log catches up or the deadline expires, then
  // reports structured lag instead of silently answering stale.
  const bool is_read = verb == "query" || verb == "dump" || verb == "stats";
  const int64_t min_epoch = request.IntOr("min_epoch", 0);
  bool lagging = false;
  if (is_read && min_epoch > 0) {
    const int64_t wait_ms = std::clamp<int64_t>(
        request.IntOr("min_epoch_wait_ms", kDefaultMinEpochWaitMs), 0,
        kMaxWaitMs);
    lagging = !WaitForEpoch(min_epoch, std::chrono::milliseconds(wait_ms));
  }

  Json response;
  if (lagging) {
    const int64_t have = epoch();
    response = ErrorResponse(
        verb, Status::ReplicaLagging(StrPrintf(
                  "read requires epoch >= %lld but only %lld is applied "
                  "here; retry, raise min_epoch_wait_ms, or read the primary",
                  static_cast<long long>(min_epoch),
                  static_cast<long long>(have))));
    response.Set("epoch", Json::Int(have));
    response.Set("min_epoch", Json::Int(min_epoch));
  } else if (verb == "ping") {
    response = HandlePing();
  } else if (verb == "query") {
    response = HandleQuery(request);
  } else if (verb == "insert") {
    response = replica_.enabled ? NotPrimaryResponse(verb)
                                : HandleInsert(request);
  } else if (verb == "dump") {
    response = HandleDump();
  } else if (verb == "stats") {
    response = HandleStats();
  } else if (verb == "sync") {
    response = replica_.enabled ? NotPrimaryResponse(verb)
                                : HandleSync(request);
  } else if (verb == "recover") {
    response = replica_.enabled ? NotPrimaryResponse(verb) : HandleRecover();
  } else if (verb == "repl_subscribe") {
    // Replica chaining is not supported; the redirect sends second-tier
    // subscribers to the primary.
    response = replica_.enabled ? NotPrimaryResponse(verb)
                                : HandleReplSubscribe(request);
  } else if (verb == "repl_frames") {
    response = replica_.enabled ? NotPrimaryResponse(verb)
                                : HandleReplFrames(request);
  } else if (verb == "shutdown") {
    // Transport-level: the server loop sees this verb and starts draining;
    // the response acknowledges the request against the final epoch.
    response = OkResponse("shutdown", epoch());
  } else {
    response = ErrorResponse(verb, Status::InvalidArgument(StrPrintf(
                                       "unknown verb '%s'", verb.c_str())));
  }
  const double us = std::chrono::duration<double, std::micro>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
  latency_.Record(verb.empty() ? "<none>" : verb, us);
  return response;
}

Json ServerState::HandlePing() {
  auto snap = Pin();
  Json j = OkResponse("ping", snap->epoch);
  j.Set("completeness", Json::Str(core::CompletenessName(snap->completeness)));
  j.Set("role", Json::Str(replica_.enabled ? "replica" : "primary"));
  return j;
}

Json ServerState::HandleQuery(const Json& request) {
  if (request.At("atom").is_string()) return HandleDemandQuery(request);
  auto snap = Pin();
  const std::string pred_name = request.StrOr("pred", "");
  auto it = preds_.find(pred_name);
  if (it == preds_.end()) {
    return ErrorResponse("query", Status::NotFound(StrPrintf(
                                      "no predicate '%s'", pred_name.c_str())));
  }
  const PredicateInfo* pred = it->second;

  // "key": array of key_arity entries, null = unbound. Missing key = full
  // scan.
  std::vector<int> bound_pos;
  Tuple bound_vals;
  const Json& key = request.At("key");
  if (key.is_array()) {
    if (static_cast<int>(key.arr.size()) != pred->key_arity()) {
      return ErrorResponse(
          "query", Status::InvalidArgument(StrPrintf(
                       "'%s' takes %d key arguments, got %zu",
                       pred_name.c_str(), pred->key_arity(), key.arr.size())));
    }
    for (size_t i = 0; i < key.arr.size(); ++i) {
      if (key.arr[i].is_null()) continue;
      std::optional<Value> v = JsonToValue(key.arr[i]);
      if (!v.has_value()) {
        return ErrorResponse("query",
                             Status::InvalidArgument(StrPrintf(
                                 "key position %zu is not a ground value", i)));
      }
      bound_pos.push_back(static_cast<int>(i));
      bound_vals.push_back(*v);
    }
  } else if (!key.is_null()) {
    return ErrorResponse(
        "query", Status::InvalidArgument("'key' must be an array or absent"));
  }

  ResourceGuard guard(RequestResourceLimits(request));
  const int64_t max_rows = request.At("limits").IntOr("max_rows", 0);

  Json rows = Json::Array();
  int64_t matched = 0;
  bool truncated = false;
  const Relation* rel = snap->db.Find(pred);
  if (rel != nullptr) {
    rel->Scan(bound_pos, bound_vals, [&](const Tuple& k, const Value& cost) {
      ++matched;
      if (truncated) return;
      if (max_rows > 0 && static_cast<int64_t>(rows.arr.size()) >= max_rows) {
        truncated = true;
        return;
      }
      if (guard.active() && (matched & 127) == 0 &&
          guard.Poll() != LimitKind::kNone) {
        truncated = true;
        return;
      }
      Json row = Json::Object();
      Json key_arr = Json::Array();
      for (const Value& v : k) key_arr.Push(ValueToJson(v));
      row.Set("key", std::move(key_arr));
      if (pred->has_cost) row.Set("cost", ValueToJson(cost));
      rows.Push(std::move(row));
    });
  }
  // Default-value cost predicates: a fully-bound miss still has a defined
  // answer — the lattice bottom (Section 2.3.2).
  bool defaulted = false;
  if (rows.arr.empty() && pred->has_default &&
      static_cast<int>(bound_pos.size()) == pred->key_arity()) {
    Json row = Json::Object();
    Json key_arr = Json::Array();
    for (const Value& v : bound_vals) key_arr.Push(ValueToJson(v));
    row.Set("key", std::move(key_arr));
    row.Set("cost", ValueToJson(pred->domain->Bottom()));
    rows.Push(std::move(row));
    defaulted = true;
  }

  Json j = OkResponse("query", snap->epoch);
  j.Set("pred", Json::Str(pred_name));
  j.Set("row_count", Json::Int(static_cast<int64_t>(rows.arr.size())));
  j.Set("rows", std::move(rows));
  // A truncated enumeration is still certified: every returned row is in the
  // snapshot's least model, which is itself ⊑ the live least model.
  j.Set("complete", Json::Bool(!truncated));
  if (defaulted) j.Set("defaulted", Json::Bool(true));
  j.Set("completeness", Json::Str(core::CompletenessName(snap->completeness)));
  if (guard.tripped() != LimitKind::kNone) {
    j.Set("limit_tripped", Json::Str(LimitKindName(guard.tripped())));
  }
  return j;
}

Json ServerState::HandleDemandQuery(const Json& request) {
  auto snap = Pin();
  const std::string atom_text = request.StrOr("atom", "");
  const std::string mode_name = request.StrOr("mode", "auto");
  core::QueryOptions qopts;
  if (mode_name == "auto") {
    qopts.mode = core::QueryOptions::Mode::kAuto;
  } else if (mode_name == "demand") {
    qopts.mode = core::QueryOptions::Mode::kDemand;
  } else if (mode_name == "full") {
    qopts.mode = core::QueryOptions::Mode::kFull;
  } else {
    return ErrorResponse(
        "query", Status::InvalidArgument(StrPrintf(
                     "unknown mode '%s' (want auto, demand or full)",
                     mode_name.c_str())));
  }

  // Answers are a pure function of (snapshot, atom, mode); requests with
  // per-call limits are excluded (their truncation is request-specific).
  const bool memoizable = request.At("limits").is_null();
  const std::string memo_key = atom_text + "|" + mode_name;
  if (memoizable) {
    std::lock_guard<std::mutex> lk(memo_mu_);
    if (memo_epoch_ == snap->epoch) {
      auto it = demand_memo_.find(memo_key);
      if (it != demand_memo_.end()) {
        Json hit = it->second;
        hit.Set("memo_hit", Json::Bool(true));
        return hit;
      }
    }
  }

  // Parse under writer_mu_: the insert path may be implicitly declaring
  // predicates on the Program concurrently, and the parser reads its
  // declaration table. The critical section is the parse only — the
  // evaluation below runs lock-free against the pinned snapshot.
  StatusOr<datalog::Atom> atom = Status::Internal("unparsed");
  {
    std::lock_guard<std::mutex> lk(writer_mu_);
    atom = datalog::ParseQueryAtom(*program_, atom_text);
  }
  if (!atom.ok()) return ErrorResponse("query", atom.status());

  ResourceLimits limits = RequestResourceLimits(request);
  qopts.limits = &limits;
  auto result = engine_->Query(*atom, snap->base.ShareForRead(), qopts);
  if (!result.ok()) return ErrorResponse("query", result.status());

  Json rows = Json::Array();
  for (const datalog::Fact& f : result->rows) {
    Json row = Json::Object();
    Json key_arr = Json::Array();
    for (const Value& v : f.key) key_arr.Push(ValueToJson(v));
    row.Set("key", std::move(key_arr));
    if (f.cost.has_value()) row.Set("cost", ValueToJson(*f.cost));
    rows.Push(std::move(row));
  }

  Json j = OkResponse("query", snap->epoch);
  j.Set("pred", Json::Str(result->pred->name));
  j.Set("mode", Json::Str(mode_name));
  j.Set("adornment", Json::Str(result->adornment));
  j.Set("used_demand", Json::Bool(result->used_demand));
  if (!result->bailout_reason.empty()) {
    j.Set("bailout_reason", Json::Str(result->bailout_reason));
  }
  if (result->cost_widened) j.Set("cost_widened", Json::Bool(true));
  j.Set("row_count", Json::Int(static_cast<int64_t>(rows.arr.size())));
  j.Set("rows", std::move(rows));
  j.Set("stats", EvalStatsToJson(result->stats));
  j.Set("completeness",
        Json::Str(core::CompletenessName(result->completeness)));

  if (memoizable && result->completeness == core::Completeness::kLeastModel) {
    std::lock_guard<std::mutex> lk(memo_mu_);
    if (memo_epoch_ != snap->epoch) {
      demand_memo_.clear();
      memo_epoch_ = snap->epoch;
    }
    demand_memo_[memo_key] = j;
  }
  return j;
}

Json ServerState::HandleInsert(const Json& request) {
  const Json& facts_field = request.At("facts");
  if (!facts_field.is_string()) {
    return ErrorResponse("insert", Status::InvalidArgument(
                                       "'facts' must be a string of fact "
                                       "clauses in .mdl syntax"));
  }
  if (!updates_safe_) {
    return ErrorResponse(
        "insert",
        Status::InvalidArgument(
            "program is not update-safe (negation or pseudo-monotonic "
            "aggregates): incremental inserts are disabled"));
  }

  std::lock_guard<std::mutex> lk(writer_mu_);
  if (poisoned_.load(std::memory_order_acquire)) {
    return ErrorResponse(
        "insert", Status::Internal(
                      "a previous insert failed mid-merge; the working set "
                      "is no longer a certified model — send the 'recover' "
                      "verb to rebuild the writer from the last published "
                      "snapshot, or restart the server"));
  }
  if (degraded_.load(std::memory_order_acquire)) {
    return ErrorResponse(
        "insert",
        Status::DurabilityDegraded(
            "the write-ahead log can no longer persist writes (disk full or "
            "I/O error); writes are refused while reads keep serving — free "
            "space and send the 'recover' verb"));
  }
  // Parsing may implicitly declare unknown predicates on the Program, but
  // readers resolve names against the load-time frozen map, so this is
  // writer-private state.
  auto facts = datalog::ParseFacts(program_.get(), facts_field.str);
  if (!facts.ok()) return ErrorResponse("insert", facts.status());

  // Write-ahead: the batch must be on stable storage before the model moves.
  // An append/fsync failure degrades the server instead of acknowledging a
  // write that a crash could silently lose.
  if (wal_ != nullptr) {
    WalRecord rec;
    rec.type = WalRecordType::kInsert;
    rec.epoch = epoch_ + 1;
    rec.facts_text = facts_field.str;
    Status appended = wal_->Append(rec);
    if (!appended.ok()) {
      degraded_.store(true, std::memory_order_release);
      SyncDurabilityCounters();
      return ErrorResponse(
          "insert", Status::DurabilityDegraded(StrPrintf(
                        "WAL append failed (%s); writes are refused while "
                        "reads keep serving — free space and send 'recover'",
                        appended.message().c_str())));
    }
  }

  auto stats =
      engine_->Update(&work_, *facts, RequestResourceLimits(request));
  if (!stats.ok()) {
    // Update merges facts before closing over them, so a failure here can
    // leave the working set under-closed. Refuse further writes; reads keep
    // serving the last published (still sound) snapshot. The abort record
    // tells replay to skip the logged batch — if logging the abort itself
    // fails, recovery replays an unacknowledged batch, which is monotone-
    // sound (at-least-once for failed writes).
    poisoned_.store(true, std::memory_order_release);
    if (wal_ != nullptr) {
      WalRecord abort;
      abort.type = WalRecordType::kAbort;
      abort.epoch = epoch_ + 1;
      Status aborted = wal_->Append(abort);
      if (!aborted.ok()) degraded_.store(true, std::memory_order_release);
      SyncDurabilityCounters();
    }
    return ErrorResponse("insert", stats.status());
  }
  ++epoch_;
  cumulative_facts_.append(facts_field.str);
  cumulative_facts_.push_back('\n');
  history_bytes_.store(static_cast<int64_t>(cumulative_facts_.size()),
                       std::memory_order_relaxed);
  // ParseFacts already validated these against the declarations, so the
  // merge into the demand base cannot fail.
  for (const datalog::Fact& f : *facts) (void)base_facts_.AddFact(f);
  Publish();
  if (wal_ != nullptr) {
    MaybeCheckpoint(/*force=*/false);
    SyncDurabilityCounters();
    if (durability_.fsync == FsyncPolicy::kAlways) {
      std::lock_guard<std::mutex> dlk(dur_mu_);
      dur_.durable_epoch = epoch_;
    }
  }

  Json j = OkResponse("insert", epoch_);
  j.Set("facts_parsed", Json::Int(static_cast<int64_t>(facts->size())));
  j.Set("stats", EvalStatsToJson(*stats));
  j.Set("completeness",
        Json::Str(core::CompletenessName(work_.completeness)));
  if (wal_ != nullptr) {
    j.Set("durable",
          Json::Bool(durability_.fsync == FsyncPolicy::kAlways));
  }
  return j;
}

Json ServerState::HandleSync(const Json& request) {
  std::lock_guard<std::mutex> lk(writer_mu_);
  if (wal_ == nullptr) {
    Json j = OkResponse("sync", epoch_);
    j.Set("durability_enabled", Json::Bool(false));
    return j;
  }
  Status synced = wal_->Sync();
  if (!synced.ok()) {
    degraded_.store(true, std::memory_order_release);
    return ErrorResponse(
        "sync", Status::DurabilityDegraded(StrPrintf(
                    "fsync failed (%s); writes are refused while reads keep "
                    "serving", synced.message().c_str())));
  }
  {
    std::lock_guard<std::mutex> dlk(dur_mu_);
    dur_.durable_epoch = epoch_;
  }
  const Json& ckpt = request.At("checkpoint");
  if (ckpt.is_bool() && ckpt.boolean) MaybeCheckpoint(/*force=*/true);
  SyncDurabilityCounters();
  Json j = OkResponse("sync", epoch_);
  j.Set("durability_enabled", Json::Bool(true));
  j.Set("durable_epoch", Json::Int(epoch_));
  return j;
}

Json ServerState::HandleRecover() {
  std::lock_guard<std::mutex> lk(writer_mu_);
  bool poison_cleared = false;
  bool wal_restored = false;

  if (poisoned_.load(std::memory_order_acquire)) {
    // The published snapshot is exactly the least model of every acknowledged
    // batch (the poisoning batch was never published), so cloning it rebuilds
    // a certified writer state. Clone, not Snapshot: the writer needs its own
    // mutable relations, detached from what readers are pinning.
    auto snap = Pin();
    work_.db = snap->db.Clone();
    work_.completeness = snap->completeness;
    work_.limit_tripped = snap->limit_tripped;
    poisoned_.store(false, std::memory_order_release);
    poison_cleared = true;
  }

  if (degraded_.load(std::memory_order_acquire) && wal_ != nullptr) {
    // The old segment keeps every acknowledged batch (its tail may be torn;
    // recovery truncates that). Rotate to a fresh segment — if the disk is
    // still full this fails and the server stays degraded.
    auto rotated = WalWriter::Create(durability_.data_dir, wal_->seq() + 1,
                                     durability_.fsync, hooks());
    if (rotated.ok()) {
      *wal_ = std::move(rotated).value();
      degraded_.store(false, std::memory_order_release);
      wal_restored = true;
    }
  }
  SyncDurabilityCounters();

  Json j = OkResponse("recover", epoch_);
  j.Set("poison_cleared", Json::Bool(poison_cleared));
  j.Set("wal_restored", Json::Bool(wal_restored));
  j.Set("poisoned", Json::Bool(poisoned_.load(std::memory_order_acquire)));
  j.Set("degraded", Json::Bool(degraded_.load(std::memory_order_acquire)));
  return j;
}

Json ServerState::NotPrimaryResponse(const std::string& verb) const {
  Json j = ErrorResponse(
      verb, Status::NotPrimary(StrPrintf(
                "this node is a read replica of %s:%d; send writes to the "
                "primary",
                replica_.primary_host.c_str(), replica_.primary_port)));
  Json redirect = Json::Object();
  redirect.Set("host", Json::Str(replica_.primary_host));
  redirect.Set("port", Json::Int(replica_.primary_port));
  j.Set("redirect", std::move(redirect));
  return j;
}

Json ServerState::HandleReplSubscribe(const Json& request) {
  if (wal_ == nullptr) {
    return ErrorResponse(
        "repl_subscribe",
        Status::InvalidArgument("replication requires durability: start the "
                                "primary with --data-dir"));
  }
  const int64_t have_epoch = request.IntOr("have_epoch", 0);
  // A probe wants the program and the committed epoch only (madd
  // --replica-of fetches the program this way before it can subscribe for
  // real); skip the gap check so no bootstrap payload is assembled.
  const Json& probe = request.At("probe");
  const bool probe_only = probe.is_bool() && probe.boolean;

  // Does the retained WAL still cover every acknowledged epoch past
  // have_epoch? Acknowledged epochs are dense, so it suffices that the
  // earliest replayable epoch past have_epoch is exactly have_epoch + 1.
  // Otherwise checkpointing pruned part of the gap and the subscriber needs
  // a full-history bootstrap (over-sending is always safe: joins are
  // idempotent). The scan runs *outside* writer_mu_ — it is O(retained
  // history) of disk I/O and must not stall inserts. That makes the verdict
  // racy against a concurrent checkpoint prune, which is why the response
  // anchors streaming to the CONCRETE oldest segment this cursor saw
  // (stream_seq) instead of the floating "oldest available" position {0,0}:
  // a prune that could invalidate the verdict also removes that segment, so
  // the subscriber's next repl_frames reports position_pruned and it comes
  // back here for a fresh verdict, rather than silently resuming past a
  // hole in the stream.
  //
  // The scan must also run BEFORE the (epoch_, cumulative_facts_) snapshot
  // below: the snapshot epoch then upper-bounds every record the scan could
  // have seen, so a record absent from the anchored stream is either old
  // (covered by the bootstrap facts) or was appended after the snapshot (at
  // the tail, position >= stream_seq). The reverse order could prune a
  // post-snapshot record out of both the bootstrap and the stream.
  bool need_bootstrap = false;
  uint64_t stream_seq = 0;
  if (!probe_only) {
    auto cursor = WalCursor::Open(durability_.data_dir);
    if (!cursor.ok()) return ErrorResponse("repl_subscribe", cursor.status());
    if (!cursor->empty()) stream_seq = cursor->segment_seqs().front();
    if (epoch() > have_epoch) {
      auto scan = cursor->Scan(WalPosition{}, 0, 0);
      if (!scan.ok()) return ErrorResponse("repl_subscribe", scan.status());
      ReplaySelection sel =
          SelectReplayRecords(std::move(scan->records), have_epoch);
      need_bootstrap =
          sel.replay.empty() || sel.replay.front().epoch != have_epoch + 1;
    }
  }

  // Under writer_mu_ the (epoch_, cumulative_facts_) pair is mutually
  // consistent; copy both and serialize outside the lock so a large history
  // blocks the writer lane for a memcpy, not for JSON encoding.
  int64_t committed_epoch = 0;
  std::string bootstrap_facts;
  {
    std::lock_guard<std::mutex> lk(writer_mu_);
    committed_epoch = epoch_;
    if (need_bootstrap) bootstrap_facts = cumulative_facts_;
  }

  Json j = OkResponse("repl_subscribe", committed_epoch);
  j.Set("program", Json::Str(program_text_));
  j.Set("program_crc",
        Json::Int(static_cast<int64_t>(util::Crc32c(program_text_))));
  j.Set("fsync_policy", Json::Str(FsyncPolicyName(durability_.fsync)));
  if (need_bootstrap) {
    Json b = Json::Object();
    b.Set("epoch", Json::Int(committed_epoch));
    b.Set("facts", Json::Str(std::move(bootstrap_facts)));
    j.Set("bootstrap", std::move(b));
  }
  // Streaming starts at the oldest segment retained when the gap was
  // checked: re-shipping batches the subscriber already holds is a
  // lattice-join no-op (and the replica's epoch filter drops them without
  // re-deriving), so the position-based protocol needs no epoch-to-offset
  // index. Naming the segment — rather than the symbolic {0,0} start, which
  // can never report position_pruned — turns a prune that races this
  // response into an explicit re-subscribe instead of a silent skip.
  j.Set("seq", Json::Int(static_cast<int64_t>(stream_seq)));
  j.Set("offset", Json::Int(0));

  std::lock_guard<std::mutex> rlk(repl_mu_);
  ++subscribes_served_;
  if (need_bootstrap) ++bootstraps_served_;
  return j;
}

Json ServerState::HandleReplFrames(const Json& request) {
  if (wal_ == nullptr) {
    return ErrorResponse(
        "repl_frames",
        Status::InvalidArgument("replication requires durability: start the "
                                "primary with --data-dir"));
  }
  WalPosition from;
  from.seq = static_cast<uint64_t>(std::max<int64_t>(0, request.IntOr("seq", 0)));
  from.offset = std::max<int64_t>(0, request.IntOr("offset", 0));
  int64_t max_records = request.IntOr("max_records", kDefaultFrameRecords);
  if (max_records <= 0) max_records = kDefaultFrameRecords;
  int64_t max_bytes = request.IntOr("max_bytes", kDefaultFrameBytes);
  if (max_bytes <= 0) max_bytes = kDefaultFrameBytes;
  const int64_t wait_ms =
      std::clamp<int64_t>(request.IntOr("wait_ms", 0), 0, kMaxWaitMs);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(wait_ms);

  for (;;) {
    // The committed gate: the log runs ahead of the model (write-ahead), so
    // only records at or below the *published* epoch are shippable — those
    // are exactly the acknowledged batches.
    const int64_t committed = epoch();
    auto cursor = WalCursor::Open(durability_.data_dir);
    if (!cursor.ok()) return ErrorResponse("repl_frames", cursor.status());
    // One-record overscan so the selection's abort-lookahead rule can decide
    // the window-final insert instead of stalling at the cap.
    auto scan = cursor->Scan(from, max_records + 1, max_bytes);
    if (!scan.ok()) return ErrorResponse("repl_frames", scan.status());
    if (scan->position_pruned) {
      // The subscriber's segment was checkpointed away; it must re-subscribe
      // (and typically bootstrap). Never ship from a different position —
      // that would silently skip interior history.
      Json j = OkResponse("repl_frames", committed);
      j.Set("position_pruned", Json::Bool(true));
      return j;
    }
    ShipSelection sel = SelectShippableRecords(*scan, from, committed);

    const bool advanced =
        sel.next.seq != from.seq || sel.next.offset != from.offset;
    if (!sel.records.empty() || advanced || wait_ms == 0 ||
        std::chrono::steady_clock::now() >= deadline) {
      Json records = Json::Array();
      for (const WalRecord& rec : sel.records) {
        Json r = Json::Object();
        r.Set("epoch", Json::Int(rec.epoch));
        r.Set("facts", Json::Str(rec.facts_text));
        r.Set("crc", Json::Int(static_cast<int64_t>(rec.crc)));
        records.Push(std::move(r));
      }
      const int64_t count = static_cast<int64_t>(sel.records.size());
      Json j = OkResponse("repl_frames", committed);
      j.Set("count", Json::Int(count));
      j.Set("records", std::move(records));
      j.Set("seq", Json::Int(static_cast<int64_t>(sel.next.seq)));
      j.Set("offset", Json::Int(sel.next.offset));
      std::lock_guard<std::mutex> rlk(repl_mu_);
      ++frames_served_;
      records_shipped_ += count;
      return j;
    }
    // Long poll: nothing shippable yet. Block until the next publish (or
    // the deadline) instead of making the replica busy-poll an idle log.
    const auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - std::chrono::steady_clock::now());
    if (remaining.count() <= 0) continue;  // loops once more, then returns
    WaitForEpoch(committed + 1, remaining);
  }
}

Status ServerState::ApplyReplicated(int64_t epoch, const std::string& facts_text) {
  return ApplyShipped(epoch, facts_text, /*bootstrap=*/false);
}

Status ServerState::ApplyBootstrap(int64_t epoch, const std::string& facts_text) {
  return ApplyShipped(epoch, facts_text, /*bootstrap=*/true);
}

Status ServerState::ApplyShipped(int64_t epoch, const std::string& facts_text,
                                 bool bootstrap) {
  if (!replica_.enabled) {
    return Status::InvalidArgument(
        "not a replica: shipped batches are only applied in replica mode");
  }
  std::lock_guard<std::mutex> lk(writer_mu_);
  if (poisoned_.load(std::memory_order_acquire)) {
    return Status::Internal(
        "a previous shipped batch failed mid-merge; the replica's working "
        "set is no longer certified — restart the replica to re-bootstrap");
  }
  // Every reconnect re-streams the whole retained WAL (repl_subscribe hands
  // out no resume position), so already-covered batches arrive again on
  // each session. Committed epochs are dense and never reused, so a batch
  // at or below our epoch is already joined into the model AND recorded in
  // cumulative_facts_: re-applying would be a no-op, but re-appending would
  // grow the history copy without bound. Skip the whole batch.
  if (!bootstrap && epoch <= epoch_) return Status::OK();
  auto facts = datalog::ParseFacts(program_.get(), facts_text);
  if (!facts.ok()) return facts.status();
  ResourceLimits limits;
  limits.cancellation = cancellation_;
  auto stats = engine_->Update(&work_, *facts, limits);
  if (!stats.ok()) {
    // Same discipline as a primary-side mid-merge failure: the working set
    // may be under-closed, so stop applying; reads keep serving the last
    // sound snapshot.
    poisoned_.store(true, std::memory_order_release);
    return stats.status();
  }
  if (epoch > epoch_) epoch_ = epoch;
  if (bootstrap) {
    // The bootstrap IS the full accepted history; stream records past it
    // append below, records at or below its epoch are skipped above.
    cumulative_facts_ = facts_text;
  } else {
    cumulative_facts_.append(facts_text);
    cumulative_facts_.push_back('\n');
  }
  history_bytes_.store(static_cast<int64_t>(cumulative_facts_.size()),
                       std::memory_order_relaxed);
  for (const datalog::Fact& f : *facts) (void)base_facts_.AddFact(f);
  Publish();
  return Status::OK();
}

void ServerState::ReportReplication(const ReplicationProgress& progress) {
  std::lock_guard<std::mutex> lk(repl_mu_);
  repl_ = progress;
}

ServerState::ReplicationProgress ServerState::replication_progress() const {
  std::lock_guard<std::mutex> lk(repl_mu_);
  return repl_;
}

Json ServerState::HandleDump() {
  auto snap = Pin();
  Json j = OkResponse("dump", snap->epoch);
  j.Set("model", Json::Str(snap->db.ToString()));
  j.Set("completeness", Json::Str(core::CompletenessName(snap->completeness)));
  return j;
}

Json ServerState::HandleStats() {
  auto snap = Pin();
  Json j = OkResponse("stats", snap->epoch);
  j.Set("completeness", Json::Str(core::CompletenessName(snap->completeness)));
  j.Set("limit_tripped", Json::Str(LimitKindName(snap->limit_tripped)));
  j.Set("stats", EvalStatsToJson(snap->stats));
  j.Set("total_rows", Json::Int(static_cast<int64_t>(snap->db.TotalRows())));
  j.Set("approx_bytes", Json::Int(snap->db.ApproxBytes()));
  j.Set("strategy",
        Json::Str(core::StrategyName(engine_->options().strategy)));
  j.Set("num_threads", Json::Int(engine_->options().num_threads));
  j.Set("uptime_seconds",
        Json::Double(std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - start_)
                         .count()));
  j.Set("poisoned", Json::Bool(poisoned_.load(std::memory_order_acquire)));
  j.Set("role", Json::Str(replica_.enabled ? "replica" : "primary"));
  j.Set("verbs", latency_.ToJson());

  Json r = Json::Object();
  // Size of the retained insert history (the bootstrap payload). On a
  // replica this must track the primary's, not grow with reconnects.
  r.Set("history_bytes",
        Json::Int(history_bytes_.load(std::memory_order_relaxed)));
  if (replica_.enabled) {
    r.Set("role", Json::Str("replica"));
    r.Set("primary", Json::Str(StrPrintf("%s:%d", replica_.primary_host.c_str(),
                                         replica_.primary_port)));
    std::lock_guard<std::mutex> rlk(repl_mu_);
    r.Set("connected", Json::Bool(repl_.connected));
    r.Set("broken", Json::Bool(repl_.broken));
    r.Set("primary_epoch", Json::Int(repl_.primary_epoch));
    r.Set("lag_epochs",
          Json::Int(std::max<int64_t>(0, repl_.primary_epoch - snap->epoch)));
    r.Set("reconnects", Json::Int(repl_.reconnects));
    r.Set("bootstraps", Json::Int(repl_.bootstraps));
    r.Set("frames_applied", Json::Int(repl_.frames));
    r.Set("records_applied", Json::Int(repl_.records_applied));
    r.Set("crc_failures", Json::Int(repl_.crc_failures));
    if (!repl_.last_error.empty()) {
      r.Set("last_error", Json::Str(repl_.last_error));
    }
  } else {
    r.Set("role", Json::Str("primary"));
    std::lock_guard<std::mutex> rlk(repl_mu_);
    r.Set("subscribes_served", Json::Int(subscribes_served_));
    r.Set("bootstraps_served", Json::Int(bootstraps_served_));
    r.Set("frames_served", Json::Int(frames_served_));
    r.Set("records_shipped", Json::Int(records_shipped_));
  }
  j.Set("replication", std::move(r));

  Json d = Json::Object();
  const bool enabled = !durability_.data_dir.empty();
  d.Set("enabled", Json::Bool(enabled));
  if (enabled) {
    d.Set("data_dir", Json::Str(durability_.data_dir));
    d.Set("fsync_policy", Json::Str(FsyncPolicyName(durability_.fsync)));
    d.Set("degraded", Json::Bool(degraded_.load(std::memory_order_acquire)));
    std::lock_guard<std::mutex> dlk(dur_mu_);
    d.Set("durable_epoch", Json::Int(dur_.durable_epoch));
    d.Set("wal_segment_seq", Json::Int(static_cast<int64_t>(dur_.wal_seq)));
    d.Set("wal_records", Json::Int(dur_.wal_records));
    d.Set("wal_bytes", Json::Int(dur_.wal_bytes));
    d.Set("last_checkpoint_epoch", Json::Int(dur_.last_checkpoint_epoch));
    d.Set("checkpoints_written", Json::Int(dur_.checkpoints_written));
    d.Set("checkpoint_failures", Json::Int(dur_.checkpoint_failures));
    d.Set("replayed_records", Json::Int(dur_.replayed_records));
    d.Set("truncated_tail_records", Json::Int(dur_.truncated_tail_records));
    d.Set("skipped_aborted_batches", Json::Int(dur_.skipped_aborted_batches));
    d.Set("invalid_checkpoints", Json::Int(dur_.invalid_checkpoints));
    d.Set("recovery_seconds", Json::Double(dur_.recovery_seconds));
  }
  j.Set("durability", std::move(d));
  return j;
}

}  // namespace server
}  // namespace mad
